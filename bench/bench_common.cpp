#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/event.h"
#include "obs/json.h"
#include "obs/snapshot.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "par/thread_pool.h"

namespace rn::bench {

namespace {

// Wall clock for the whole bench run, started by init_bench_telemetry.
obs::Stopwatch& bench_watch() {
  static obs::Stopwatch watch;
  return watch;
}

// Publishes the training cost of the (possibly cached) model into the
// registry, so BENCH_*.json always carries the training telemetry that
// produced the model — fresh or replayed.
void record_train_telemetry(double wall_s, double epochs, double final_loss,
                            double samples, bool from_cache) {
  obs::Registry& reg = obs::Registry::global();
  reg.gauge("bench.train.wall_s").set(wall_s);
  reg.gauge("bench.train.epochs").set(epochs);
  reg.gauge("bench.train.final_loss").set(final_loss);
  reg.gauge("bench.train.samples").set(samples);
  reg.gauge("bench.train.from_cache").set(from_cache ? 1.0 : 0.0);
  obs::EventSink& sink = obs::EventSink::global();
  if (sink.enabled()) {
    obs::Event ev(from_cache ? "bench.cache.replay" : "bench.train");
    ev.f("wall_s", wall_s)
        .f("epochs", epochs)
        .f("final_train_loss", final_loss)
        .f("samples", samples);
    sink.emit(ev);
  }
}

void save_train_telemetry(const std::string& path, double wall_s,
                          double epochs, double final_loss, double samples) {
  std::ofstream out(path);
  if (!out.good()) return;  // telemetry cache is best-effort
  out << "{\"train_wall_s\":" << obs::json_number(wall_s)
      << ",\"epochs\":" << obs::json_number(epochs)
      << ",\"final_train_loss\":" << obs::json_number(final_loss)
      << ",\"samples\":" << obs::json_number(samples) << "}\n";
}

// Replays `<model>.telemetry.json` written when the cached model was
// trained. Returns false when the sidecar is missing or unparseable (old
// caches), in which case the registry reports from_cache with zero cost.
bool replay_train_telemetry(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return false;
  std::stringstream buf;
  buf << in.rdbuf();
  obs::JsonValue root;
  std::string err;
  if (!obs::parse_json(buf.str(), &root, &err) || !root.is_object()) {
    return false;
  }
  auto num = [&root](const char* key) {
    const obs::JsonValue* v = root.find(key);
    return v != nullptr && v->is_number() ? v->number : 0.0;
  };
  record_train_telemetry(num("train_wall_s"), num("epochs"),
                         num("final_train_loss"), num("samples"),
                         /*from_cache=*/true);
  return true;
}

}  // namespace

ExperimentScale scale_from_env() {
  ExperimentScale s;
  const char* env = std::getenv("RN_BENCH_SCALE");
  const std::string mode = env != nullptr ? env : "standard";
  if (mode == "smoke") {
    // Minutes-to-seconds tier for CI smokes (obs_diff_smoke): just enough
    // work to populate every BENCH_*.json key, no statistical value.
    s = ExperimentScale{"smoke", 6, 2, 2, 1, 2, 2, 30.0};
  } else if (mode == "quick") {
    s = ExperimentScale{"quick", 24, 4, 6, 2, 5, 10, 80.0};
  } else if (mode == "large") {
    s = ExperimentScale{"large", 400, 60, 40, 12, 40, 40, 150.0};
  } else {
    s.name = "standard";
  }
  return s;
}

std::string cache_dir() {
  const char* env = std::getenv("RN_BENCH_CACHE");
  const std::string dir = env != nullptr ? env : "bench_cache";
  std::filesystem::create_directories(dir);
  return dir;
}

dataset::GeneratorConfig paper_generator_config(const ExperimentScale& scale) {
  dataset::GeneratorConfig cfg;
  cfg.k_paths = 3;                 // routing-scheme variety per sample
  cfg.min_util = 0.3;              // traffic-intensity sweep
  cfg.max_util = 0.8;
  cfg.target_pkts_per_flow = scale.pkts_per_flow;
  cfg.warmup_s = 1.0;
  cfg.min_delivered = 15;
  return cfg;
}

core::RouteNetConfig paper_model_config() {
  // The reference RouteNet's tuned setting for larger topologies (§2.1):
  // 32-dim link/path states and 8 message-passing iterations.
  core::RouteNetConfig cfg;
  cfg.link_state_dim = 32;
  cfg.path_state_dim = 32;
  cfg.iterations = 8;
  cfg.readout_hidden = 64;
  cfg.seed = 7;
  return cfg;
}

std::shared_ptr<const topo::Topology> nsfnet_topology() {
  return std::make_shared<const topo::Topology>(topo::nsfnet());
}

std::shared_ptr<const topo::Topology> syn50_topology() {
  // The paper's "50-node synthetically-generated topology": seeded BA graph.
  Rng rng(50);
  return std::make_shared<const topo::Topology>(topo::synthetic_ba(50, 2, rng));
}

std::shared_ptr<const topo::Topology> geant2_topology() {
  return std::make_shared<const topo::Topology>(topo::geant2());
}

namespace {

std::vector<dataset::Sample> load_or_generate(
    const std::string& path, dataset::DatasetGenerator& gen,
    std::shared_ptr<const topo::Topology> topology, int count,
    const char* label) {
  if (std::filesystem::exists(path)) {
    std::printf("  [cache] %-18s <- %s\n", label, path.c_str());
    return dataset::load_dataset(path);
  }
  std::printf("  generating %-3d %s samples...\n", count, label);
  std::fflush(stdout);
  std::vector<dataset::Sample> samples =
      gen.generate_many(std::move(topology), count);
  dataset::save_dataset(path, samples);
  return samples;
}

}  // namespace

PaperSetup load_or_train_paper_setup(const ExperimentScale& scale) {
  const std::string dir = cache_dir();
  const std::string tag = "_" + scale.name;
  const std::string model_path = dir + "/routenet" + tag + ".model";

  dataset::GeneratorConfig gcfg = paper_generator_config(scale);
  dataset::DatasetGenerator train_gen(gcfg, 101);
  dataset::DatasetGenerator eval_gen(gcfg, 202);

  std::printf("== RouteNet paper setup (scale: %s) ==\n", scale.name.c_str());
  PaperSetup setup{
      core::RouteNet(paper_model_config()),
      load_or_generate(dir + "/eval_nsfnet" + tag + ".ds", eval_gen,
                       nsfnet_topology(), scale.eval_nsfnet, "eval-NSFNET"),
      load_or_generate(dir + "/eval_syn50" + tag + ".ds", eval_gen,
                       syn50_topology(), scale.eval_syn50, "eval-50node"),
      load_or_generate(dir + "/eval_geant2" + tag + ".ds", eval_gen,
                       geant2_topology(), scale.eval_geant2, "eval-Geant2"),
  };

  if (std::filesystem::exists(model_path)) {
    std::printf("  [cache] trained model <- %s\n", model_path.c_str());
    setup.model = core::RouteNet::load(model_path);
    if (!replay_train_telemetry(model_path + ".telemetry.json")) {
      // Sidecar missing (pre-telemetry cache): report the hit honestly
      // rather than a fake zero-cost training run.
      record_train_telemetry(0.0, 0.0, 0.0, 0.0, /*from_cache=*/true);
    }
    return setup;
  }

  std::vector<dataset::Sample> train =
      load_or_generate(dir + "/train_nsfnet" + tag + ".ds", train_gen,
                       nsfnet_topology(), scale.train_nsfnet, "train-NSFNET");
  {
    std::vector<dataset::Sample> syn =
        load_or_generate(dir + "/train_syn50" + tag + ".ds", train_gen,
                         syn50_topology(), scale.train_syn50, "train-50node");
    for (dataset::Sample& s : syn) train.push_back(std::move(s));
  }

  core::TrainConfig tcfg;
  tcfg.epochs = scale.epochs;
  tcfg.batch_size = 4;
  tcfg.learning_rate = 4e-3f;
  tcfg.lr_decay = 0.92f;
  tcfg.jitter_loss_weight = 0.3f;
  tcfg.verbose = true;
  std::printf("  training RouteNet on %zu samples (14-node + 50-node)...\n",
              train.size());
  std::fflush(stdout);
  core::Trainer trainer(setup.model, tcfg);
  obs::Stopwatch train_watch;
  const core::TrainReport report = trainer.fit(train);
  const double train_wall_s = train_watch.elapsed_s();
  record_train_telemetry(train_wall_s,
                         static_cast<double>(report.epochs.size()),
                         report.final_train_loss,
                         static_cast<double>(train.size()),
                         /*from_cache=*/false);
  setup.model.save(model_path);
  save_train_telemetry(model_path + ".telemetry.json", train_wall_s,
                       static_cast<double>(report.epochs.size()),
                       report.final_train_loss,
                       static_cast<double>(train.size()));
  std::printf("  model saved -> %s (%.1fs training)\n", model_path.c_str(),
              train_wall_s);
  return setup;
}

void init_bench_telemetry(int argc, char** argv) {
  std::string path;
  std::string trace_path;
  std::string trace_sample;
  double trace_min_us = -1.0;
  double stats_every_s = -1.0;
  int threads = 0;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--metrics-out") path = argv[i + 1];
    if (std::string(argv[i]) == "--trace-out") trace_path = argv[i + 1];
    if (std::string(argv[i]) == "--trace-min-us") {
      trace_min_us = std::atof(argv[i + 1]);
    }
    if (std::string(argv[i]) == "--trace-sample") trace_sample = argv[i + 1];
    if (std::string(argv[i]) == "--stats-every-s") {
      stats_every_s = std::atof(argv[i + 1]);
    }
    if (std::string(argv[i]) == "--threads") threads = std::atoi(argv[i + 1]);
  }
  obs::EventSink::global().open_or_env(path);
  obs::Tracer::global().configure_sampling_or_env(trace_min_us, trace_sample);
  obs::Tracer::global().open_or_env(trace_path);
  obs::StatsReporter::global().start_or_env(stats_every_s);
  par::set_global_threads(threads);
  bench_watch().restart();
}

std::string finish_bench_telemetry(const std::string& bench_name,
                                   const ExperimentScale& scale) {
  obs::Registry::global().gauge("bench.wall_s").set(
      bench_watch().elapsed_s());
  // Drain the stats reporter first: its final obs.snapshot must precede
  // the sink close, and its totals belong in the registry snapshot below.
  obs::StatsReporter::global().stop();
  // Spans are drained once here; the summary lands in BENCH_*.json whether
  // or not a --trace-out file captures the full timeline. The telemetry
  // section now carries histogram p99s and sliding-window quantiles, so
  // `routenet obs diff` sees stable keys across runs.
  obs::Tracer& tracer = obs::Tracer::global();
  const std::vector<obs::TraceRecord> spans = tracer.collect();
  const std::string path = cache_dir() + "/BENCH_" + bench_name + ".json";
  {
    std::ofstream out(path);
    if (out.good()) {
      out << "{\"bench\":\"" << obs::json_escape(bench_name)
          << "\",\"scale\":\"" << obs::json_escape(scale.name)
          << "\",\"trace\":"
          << obs::trace_summary_json(spans, tracer.dropped(),
                                     tracer.sampled_out())
          << ",\"telemetry\":"
          << obs::Registry::global().snapshot().to_json() << "}\n";
    }
  }
  std::printf("\ntelemetry -> %s\n", path.c_str());
  obs::emit_registry_snapshot();
  obs::EventSink::global().close();
  if (!tracer.out_path().empty()) {
    obs::Tracer::write_chrome_trace(tracer.out_path(), spans,
                                    /*merge_existing=*/false,
                                    tracer.dropped(), tracer.sampled_out());
    tracer.disable();
  }
  return path;
}

}  // namespace rn::bench
