// Dataset-I/O bench: sharded RNDS1 generation rate (samples/s across a
// 4-shard run), streamed read bandwidth through the mmap-backed
// StreamingDataset (MB/s of CRC-checked decode), and the two correctness
// gates the container's headline guarantees rest on — a 4-shard merge must
// be bitwise identical to one unsharded run, and a model trained from the
// streamed corpus must be bitwise identical to in-RAM training. Writes
// BENCH_dataset.json for the `routenet obs diff` regression gate; under
// RN_BENCH_ENFORCE=1 a failed bitwise gate fails the process.
//
//   ./dataset_io [--metrics-out PATH] [--threads N]
//
// RN_BENCH_SCALE sizes the corpus (smoke | quick | standard | large).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/trainer.h"
#include "dataset/shard.h"
#include "dataset/stream.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace {

std::uint64_t corpus_size(const rn::bench::ExperimentScale& scale) {
  if (scale.name == "smoke") return 8;
  if (scale.name == "quick") return 16;
  if (scale.name == "large") return 128;
  return 48;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

bool params_bitwise_equal(rn::core::RouteNet& a, rn::core::RouteNet& b) {
  const std::vector<rn::ag::Parameter*> pa = a.params();
  const std::vector<rn::ag::Parameter*> pb = b.params();
  if (pa.size() != pb.size()) return false;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    if (std::memcmp(pa[i]->value.data(), pb[i]->value.data(),
                    sizeof(float) * static_cast<std::size_t>(
                                        pa[i]->value.size())) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  rn::bench::init_bench_telemetry(argc, argv);
  const rn::bench::ExperimentScale scale = rn::bench::scale_from_env();
  const std::string dir = rn::bench::cache_dir();
  const std::uint64_t total = corpus_size(scale);
  const rn::dataset::GeneratorConfig cfg =
      rn::bench::paper_generator_config(scale);
  const auto topology = rn::bench::nsfnet_topology();
  const std::uint64_t seed = 7;
  rn::obs::Registry& reg = rn::obs::Registry::global();

  std::printf("dataset-I/O bench (%s tier): %llu samples on %s\n",
              scale.name.c_str(), static_cast<unsigned long long>(total),
              topology->name().c_str());

  // Phase 1 — sharded generation rate: the paper-scale workflow is N
  // processes each owning one index range; here the 4 shards run back to
  // back so samples/s is directly comparable across PRs.
  std::vector<std::string> shards;
  rn::obs::Stopwatch gen_watch;
  for (std::uint32_t i = 0; i < 4; ++i) {
    const std::string path =
        dir + "/bench_shard_" + std::to_string(i) + ".rnds";
    rn::dataset::generate_shard(path, cfg, seed, topology, total, i, 4);
    shards.push_back(path);
  }
  const double gen_s = gen_watch.elapsed_s();
  const double gen_rate = static_cast<double>(total) / gen_s;
  std::printf("  4-shard generation: %llu samples in %.3fs (%.1f/s)\n",
              static_cast<unsigned long long>(total), gen_s, gen_rate);

  // Gate 1 — merge bitwise equals one unsharded run.
  const std::string single = dir + "/bench_single.rnds";
  const std::string merged = dir + "/bench_merged.rnds";
  rn::dataset::generate_shard(single, cfg, seed, topology, total, 0, 1);
  rn::dataset::verify_shards(shards);
  rn::dataset::merge_shards(merged, shards);
  const bool merge_ok = read_file(single) == read_file(merged);
  std::printf("  merge vs single: %s\n",
              merge_ok ? "bitwise identical" : "MISMATCH");

  // Phase 2 — streamed read bandwidth: CRC-checked decode of every record
  // through the mmap-backed source, repeated until the clock is stable.
  double read_bytes = 0.0;
  rn::obs::Stopwatch read_watch;
  {
    rn::dataset::StreamingDataset stream(single);
    std::vector<const rn::dataset::Sample*> out;
    std::vector<std::uint64_t> batch;
    do {
      for (std::uint64_t i = 0; i < stream.size(); i += 4) {
        batch.clear();
        for (std::uint64_t j = i; j < stream.size() && j < i + 4; ++j) {
          batch.push_back(j);
        }
        for (const std::uint64_t j : batch) {
          read_bytes +=
              static_cast<double>(stream.reader().record(j).size());
        }
        stream.materialize(batch.data(), batch.size(), out);
      }
    } while (read_watch.elapsed_s() < 0.2);
  }
  const double read_mb_per_s =
      read_bytes / (1024.0 * 1024.0) / read_watch.elapsed_s();
  std::printf("  streamed read: %.1f MB/s (CRC-checked decode)\n",
              read_mb_per_s);

  // Gate 2 — streamed training bitwise equals in-RAM training.
  rn::core::RouteNetConfig mcfg;
  mcfg.link_state_dim = 8;
  mcfg.path_state_dim = 8;
  mcfg.iterations = 2;
  mcfg.readout_hidden = 12;
  rn::core::TrainConfig tcfg;
  tcfg.epochs = 1;
  tcfg.batch_size = 4;
  tcfg.threads = 1;
  rn::core::RouteNet in_ram_model(mcfg);
  {
    std::vector<rn::dataset::Sample> samples =
        rn::dataset::load_any_dataset(single);
    rn::dataset::VectorSampleSource source(samples);
    rn::core::Trainer trainer(in_ram_model, tcfg);
    trainer.fit(source);
  }
  rn::core::RouteNet streamed_model(mcfg);
  {
    rn::dataset::StreamingDataset source(single);
    rn::core::Trainer trainer(streamed_model, tcfg);
    trainer.fit(source);
  }
  const bool train_ok = params_bitwise_equal(in_ram_model, streamed_model);
  std::printf("  streamed vs in-RAM training: %s\n",
              train_ok ? "bitwise identical" : "MISMATCH");

  reg.gauge("bench.dataset.gen_samples_per_s").set(gen_rate);
  reg.gauge("bench.dataset.stream_read_mb_per_s").set(read_mb_per_s);
  reg.gauge("bench.dataset.merge_bitwise_ok").set(merge_ok ? 1.0 : 0.0);
  reg.gauge("bench.dataset.streamed_train_bitwise_ok")
      .set(train_ok ? 1.0 : 0.0);
  rn::bench::finish_bench_telemetry("dataset", scale);

  if (!merge_ok || !train_ok) {
    if (std::getenv("RN_BENCH_ENFORCE") != nullptr) {
      std::printf("RN_BENCH_ENFORCE set: failing on a bitwise gate\n");
      return 1;
    }
    std::printf("bitwise gate FAILED (set RN_BENCH_ENFORCE=1 to hard-fail)\n");
  }
  return 0;
}
