// Baseline contrast — the paper's motivation (§1):
//  * "Analytic models (e.g., Queuing Theory) fail ... with complex
//    configurations (e.g., real traffic distributions)". We drive this with
//    heavy-tailed (truncated Pareto) packet sizes and bursty ON/OFF
//    arrivals: a Poisson/exponential-assumption analytic model ("naive")
//    underestimates queueing sharply, and even an M/G/1 given the true size
//    moments ("informed") cannot capture arrival correlation.
//  * "early ML-based attempts [fully-connected NNs] did not fulfill
//    expectations" → the FCNN fits its training topology but cannot even
//    accept a different topology size.
//
// Prints delay MRE for RouteNet / naive M/G/1 / informed M/G/1 / FCNN
// across traffic models, on the seen (NSFNET) and unseen (Geant2) topology.
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>

#include "baseline/fcnn.h"
#include "baseline/path_mlp.h"
#include "bench_common.h"
#include "core/trainer.h"
#include "queueing/queueing.h"
#include "topology/generators.h"

namespace {

double queueing_mre(const std::vector<rn::dataset::Sample>& samples,
                    const rn::traffic::TrafficModel& assumed_model) {
  const rn::queueing::QueueingPredictor predictor{assumed_model};
  double total = 0.0;
  std::size_t count = 0;
  for (const rn::dataset::Sample& s : samples) {
    const rn::queueing::AnalyticPrediction pred =
        predictor.predict(*s.topology, s.routing, s.tm);
    for (int idx = 0; idx < s.num_pairs(); ++idx) {
      if (!s.valid[static_cast<std::size_t>(idx)]) continue;
      const double truth = s.delay_s[static_cast<std::size_t>(idx)];
      total += std::abs(pred.delay_s[static_cast<std::size_t>(idx)] - truth) /
               truth;
      ++count;
    }
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

struct TrafficCase {
  const char* label;
  rn::traffic::TrafficModel model;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rn;
  bench::init_bench_telemetry(argc, argv);
  const bench::ExperimentScale scale = bench::scale_from_env();
  const int train_n = scale.name == "quick" ? 12 : 32;
  const int eval_n = scale.name == "quick" ? 4 : 8;
  const int epochs = scale.name == "quick" ? 15 : 30;

  auto nsf = bench::nsfnet_topology();
  auto geant = bench::geant2_topology();

  std::vector<TrafficCase> cases;
  cases.push_back({"Poisson + exponential sizes", traffic::TrafficModel{}});
  {
    traffic::TrafficModel m;
    m.arrivals = traffic::ArrivalProcess::kOnOff;
    m.on_fraction = 0.3;
    m.mean_on_s = 0.5;
    m.sizes = traffic::PacketSizeModel::kBimodal;
    cases.push_back({"bursty ON/OFF + bimodal sizes", m});
  }
  {
    traffic::TrafficModel m;
    m.sizes = traffic::PacketSizeModel::kTruncatedPareto;
    m.pareto_alpha = 1.2;
    m.pareto_max_factor = 200.0;
    cases.push_back({"heavy-tailed Pareto sizes", m});
  }

  std::printf("=== Baseline comparison: delay MRE (lower is better) ===\n\n");
  std::printf("%-44s %9s %11s %11s %9s %8s\n", "scenario", "RouteNet",
              "M/G/1 naive", "M/G/1 true", "PathMLP", "FCNN");

  std::uint64_t seed = 60;
  for (const TrafficCase& tc : cases) {
    dataset::GeneratorConfig gcfg;
    gcfg.target_pkts_per_flow = scale.pkts_per_flow;
    gcfg.warmup_s = 1.0;
    gcfg.min_delivered = 10;
    gcfg.max_util = 0.7;
    gcfg.model = tc.model;
    dataset::DatasetGenerator gen(gcfg, seed++);
    std::vector<dataset::Sample> train = gen.generate_many(nsf, train_n);
    const std::vector<dataset::Sample> eval_seen =
        gen.generate_many(nsf, eval_n);
    const std::vector<dataset::Sample> eval_unseen =
        gen.generate_many(geant, eval_n);

    core::RouteNet model(bench::paper_model_config());
    core::TrainConfig tcfg;
    tcfg.epochs = epochs;
    tcfg.batch_size = 4;
    tcfg.learning_rate = 4e-3f;
    core::Trainer trainer(model, tcfg);
    trainer.fit(train);

    baseline::FcnnConfig fcfg;
    fcfg.epochs = epochs * 2;
    baseline::FcnnBaseline fcnn(train.front().num_pairs(), fcfg);
    fcnn.fit(train);

    baseline::PathMlpConfig pcfg;
    pcfg.epochs = epochs * 2;
    baseline::PathMlpBaseline path_mlp(pcfg);
    path_mlp.fit(train);

    // "Naive" analytic assumes Poisson/exponential regardless of the truth;
    // "informed" gets the true size distribution (but still assumes Poisson
    // arrivals and independent links — all it can do).
    const traffic::TrafficModel naive{};
    for (const auto& [topo_label, eval_set] :
         {std::pair<const char*, const std::vector<dataset::Sample>*>{
              "NSFNET (seen)", &eval_seen},
          std::pair<const char*, const std::vector<dataset::Sample>*>{
              "Geant2 (unseen)", &eval_unseen}}) {
      const bool seen = eval_set == &eval_seen;
      std::printf("%-44s %9.3f %11.3f %11.3f %9.3f %8s\n",
                  (std::string(topo_label) + ", " + tc.label).c_str(),
                  core::Trainer::evaluate_delay_mre(model, *eval_set),
                  queueing_mre(*eval_set, naive),
                  queueing_mre(*eval_set, tc.model),
                  path_mlp.evaluate_delay_mre(*eval_set),
                  seen ? std::to_string(fcnn.evaluate_delay_mre(*eval_set))
                             .substr(0, 5)
                             .c_str()
                       : "n/a*");
      std::fflush(stdout);
    }
  }
  std::printf("\n*the FCNN's fixed-width input cannot encode a different "
              "topology size at all — the architectural limitation the "
              "paper contrasts RouteNet against.\n");
  std::printf("paper shape check: analytic queueing holds up on Markovian "
              "traffic but degrades once sizes are heavy-tailed or arrivals "
              "are correlated, while the learned model tracks the simulator "
              "on both topologies.\n");
  bench::finish_bench_telemetry("baseline_comparison", scale);
  return 0;
}
