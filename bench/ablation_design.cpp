// Design-choice ablations (DESIGN.md "key design choices"):
//
//   1. Link-message aggregation: sum (reference RouteNet) vs mean. Sum
//      carries "how many path-hops load this link" — the quantity that
//      drives queueing — so mean should generalize worse.
//   2. Target space: log z-score (default; aligns with relative error and
//      guarantees positive predictions) vs raw-seconds z-score.
//
// Each variant trains on NSFNET(14) and is evaluated on unseen GBN(17).
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/trainer.h"
#include "topology/generators.h"

namespace {

struct Variant {
  const char* name;
  rn::core::Aggregation aggregation;
  bool log_targets;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rn;
  bench::init_bench_telemetry(argc, argv);
  const bench::ExperimentScale scale = bench::scale_from_env();
  const bool quick = scale.name == "quick";

  dataset::GeneratorConfig gcfg = bench::paper_generator_config(scale);
  gcfg.target_pkts_per_flow = quick ? 60.0 : 100.0;
  dataset::DatasetGenerator gen(gcfg, 41);
  auto nsf = bench::nsfnet_topology();
  auto gbn = std::make_shared<const topo::Topology>(topo::gbn());
  const int train_n = quick ? 10 : 28;
  std::printf("generating %d NSFNET train + %d GBN eval scenarios...\n",
              train_n, quick ? 3 : 6);
  const std::vector<dataset::Sample> train = gen.generate_many(nsf, train_n);
  const std::vector<dataset::Sample> eval =
      gen.generate_many(gbn, quick ? 3 : 6);

  const std::vector<Variant> variants = {
      {"sum aggregation + log targets (reference)",
       core::Aggregation::kSum, true},
      {"mean aggregation + log targets", core::Aggregation::kMean, true},
      {"sum aggregation + linear targets", core::Aggregation::kSum, false},
      {"mean aggregation + linear targets", core::Aggregation::kMean, false},
  };

  std::printf("\n=== Design ablations (train NSFNET-14, eval GBN-17 "
              "unseen) ===\n");
  std::printf("%-44s %12s %12s %12s\n", "variant", "train loss",
              "seen MRE", "unseen MRE");
  for (const Variant& v : variants) {
    core::RouteNetConfig mcfg;
    mcfg.link_state_dim = 16;
    mcfg.path_state_dim = 16;
    mcfg.iterations = 4;
    mcfg.readout_hidden = 32;
    mcfg.aggregation = v.aggregation;
    core::RouteNet model(mcfg);
    core::TrainConfig tcfg;
    tcfg.epochs = quick ? 8 : 15;
    tcfg.batch_size = 4;
    tcfg.learning_rate = 4e-3f;
    tcfg.log_space_targets = v.log_targets;
    core::Trainer trainer(model, tcfg);
    const core::TrainReport report = trainer.fit(train);
    std::printf("%-44s %12.5f %12.4f %12.4f\n", v.name,
                report.final_train_loss,
                core::Trainer::evaluate_delay_mre(model, train),
                core::Trainer::evaluate_delay_mre(model, eval));
    std::fflush(stdout);
  }
  std::printf("\nexpected shape: the reference configuration (sum + log) "
              "wins on the unseen topology; linear targets inflate relative "
              "error on short paths and can predict negative delays.\n");
  bench::finish_bench_telemetry("ablation_design", scale);
  return 0;
}
