// Serving bench: closed-loop load against the in-process InferenceServer at
// micro-batch caps 1, 8, and 32 with a fixed worker count, reporting
// throughput and p50/p99 request latency per cap. Coalescing amortizes the
// per-forward tape overhead, so cap 32 must beat cap 1 — BENCH_serving.json
// records the sweep (plus the registry's serve.* counters) so the serving
// trajectory is tracked across PRs.
//
//   ./serving [--metrics-out PATH] [--threads N]
//
// The workload is many small independent queries (a ring-8 scenario with a
// compact model) — the regime serving batches for: per-forward fixed costs
// (tape construction, per-op dispatch and small-tensor allocation) dominate,
// and coalescing spreads them over the whole batch. Weights are untrained:
// inference cost per request is identical either way, and this bench only
// measures the serving path.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "obs/event.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "par/thread_pool.h"
#include "serve/server.h"
#include "topology/generators.h"
#include "util/stats.h"

namespace {

constexpr int kRequests = 512;
// Twice the largest batch cap: while one batch computes, the other half of
// the clients refill the queue, so a worker never idles at a batch boundary
// waiting for the convoy it just released to resubmit.
constexpr int kClients = 64;

struct ConfigResult {
  int batch_max = 1;
  double wall_s = 0.0;
  double throughput_rps = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  double mean_batch = 0.0;
  std::uint64_t served = 0;
  std::uint64_t rejected = 0;
  std::uint64_t batches = 0;

  std::string to_json() const {
    std::string out = "{\"batch_max\":" + std::to_string(batch_max);
    out += ",\"wall_s\":" + rn::obs::json_number(wall_s);
    out += ",\"throughput_rps\":" + rn::obs::json_number(throughput_rps);
    out += ",\"p50_s\":" + rn::obs::json_number(p50_s);
    out += ",\"p99_s\":" + rn::obs::json_number(p99_s);
    out += ",\"mean_batch\":" + rn::obs::json_number(mean_batch);
    out += ",\"served\":" + std::to_string(served);
    out += ",\"rejected\":" + std::to_string(rejected);
    out += ",\"batches\":" + std::to_string(batches) + "}";
    return out;
  }
};

ConfigResult run_config(const rn::core::RouteNet& model,
                        const std::vector<rn::dataset::Sample>& requests,
                        int batch_max) {
  rn::serve::ServerConfig cfg;
  cfg.max_batch = batch_max;
  cfg.batch_deadline_s = 0.001;
  cfg.queue_capacity = requests.size();  // throughput run: nothing rejects
  rn::serve::InferenceServer server(model, cfg);

  std::atomic<int> next{0};
  std::mutex lat_mu;
  std::vector<double> latencies;
  latencies.reserve(requests.size());
  rn::obs::Stopwatch wall;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      std::vector<double> mine;
      for (;;) {
        const int i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= static_cast<int>(requests.size())) break;
        rn::obs::Stopwatch watch;
        server.submit(requests[static_cast<std::size_t>(i)]).get();
        mine.push_back(watch.elapsed_s());
      }
      std::lock_guard<std::mutex> lock(lat_mu);
      latencies.insert(latencies.end(), mine.begin(), mine.end());
    });
  }
  for (std::thread& t : clients) t.join();
  ConfigResult res;
  res.batch_max = batch_max;
  res.wall_s = wall.elapsed_s();
  server.stop();

  const rn::serve::ServerStats stats = server.stats();
  res.served = stats.served;
  res.rejected = stats.rejected;
  res.batches = stats.batches;
  res.mean_batch =
      stats.batches > 0
          ? static_cast<double>(stats.served) / static_cast<double>(stats.batches)
          : 0.0;
  res.throughput_rps =
      res.wall_s > 0.0 ? static_cast<double>(stats.served) / res.wall_s : 0.0;
  res.p50_s = rn::quantile(latencies, 0.5);
  res.p99_s = rn::quantile(latencies, 0.99);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  rn::bench::init_bench_telemetry(argc, argv);
  rn::obs::Registry& reg = rn::obs::Registry::global();

  auto topology =
      std::make_shared<const rn::topo::Topology>(rn::topo::ring(8));
  rn::core::RouteNetConfig mcfg;
  mcfg.link_state_dim = 8;
  mcfg.path_state_dim = 8;
  mcfg.iterations = 3;
  mcfg.readout_hidden = 16;
  rn::core::RouteNet model(mcfg);
  rn::Rng rng(7);
  const rn::routing::RoutingScheme scheme =
      rn::routing::random_k_shortest_routing(*topology, 2, rng);
  rn::traffic::TrafficMatrix base =
      rn::traffic::uniform_traffic(topology->num_nodes(), 50.0, 150.0, rng);
  std::vector<rn::dataset::Sample> requests;
  requests.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    rn::traffic::TrafficMatrix tm = base;
    tm.scale(rng.uniform(0.5, 1.5));
    requests.push_back(
        rn::dataset::make_inference_sample(topology, scheme, std::move(tm)));
  }

  std::printf("== serving bench (%d requests, %d clients, %d pool threads) "
              "==\n",
              kRequests, kClients, rn::par::global_threads());
  std::printf("%10s %14s %12s %12s %12s\n", "batch-max", "req/s", "p50 (ms)",
              "p99 (ms)", "mean batch");
  std::vector<ConfigResult> results;
  for (int batch_max : {1, 8, 32}) {
    results.push_back(run_config(model, requests, batch_max));
    const ConfigResult& r = results.back();
    std::printf("%10d %14.1f %12.3f %12.3f %12.2f\n", r.batch_max,
                r.throughput_rps, r.p50_s * 1e3, r.p99_s * 1e3, r.mean_batch);
  }

  const double batched_speedup =
      results.front().throughput_rps > 0.0
          ? results.back().throughput_rps / results.front().throughput_rps
          : 0.0;
  const bool batched_faster =
      results.back().throughput_rps > results.front().throughput_rps;
  reg.gauge("bench.serving.batched_speedup").set(batched_speedup);
  std::printf("\nbatch-max 32 over batch-max 1: %.2fx throughput%s\n",
              batched_speedup,
              batched_faster ? "" : "  ** NOT faster — regression **");

  const std::string path = rn::bench::cache_dir() + "/BENCH_serving.json";
  {
    std::ofstream out(path);
    if (out.good()) {
      out << "{\"bench\":\"serving\",\"topology\":\"ring8\""
          << ",\"requests\":" << kRequests << ",\"clients\":" << kClients
          << ",\"threads\":" << rn::par::global_threads() << ",\"configs\":[";
      for (std::size_t i = 0; i < results.size(); ++i) {
        if (i > 0) out << ',';
        out << results[i].to_json();
      }
      out << "],\"batched_speedup\":" << rn::obs::json_number(batched_speedup)
          << ",\"batched_faster\":" << (batched_faster ? "true" : "false")
          << ",\"telemetry\":" << reg.snapshot().to_json() << "}\n";
    }
  }
  std::printf("telemetry -> %s\n", path.c_str());
  rn::obs::emit_registry_snapshot();
  rn::obs::EventSink::global().close();
  return 0;
}
