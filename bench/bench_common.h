// Shared experiment pipeline for the figure/table benches.
//
// The paper's setup (§2.1): train RouteNet on samples from the 14-node
// NSFNET and a 50-node synthetic topology, evaluate on unseen samples from
// those two plus the 24-node Geant2. The public datasets hold 480k/120k/300k
// samples; one laptop core cannot regenerate that, so the scale below is a
// CLI/env-tunable miniature (RN_BENCH_SCALE=quick|standard|large) that
// preserves the experiment's structure. Training artifacts are cached under
// RN_BENCH_CACHE (default ./bench_cache) so the three figure benches share
// one trained model.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "dataset/dataset.h"
#include "topology/generators.h"

namespace rn::bench {

struct ExperimentScale {
  std::string name = "standard";
  int train_nsfnet = 150;
  int train_syn50 = 24;
  int eval_nsfnet = 20;
  int eval_syn50 = 6;
  int eval_geant2 = 16;
  int epochs = 30;
  double pkts_per_flow = 120.0;
};

// Reads RN_BENCH_SCALE (smoke | quick | standard | large); standard by
// default. "smoke" is a seconds-scale tier for CI smokes that only needs
// to populate every BENCH_*.json key.
ExperimentScale scale_from_env();

// Cache directory (created if missing).
std::string cache_dir();

dataset::GeneratorConfig paper_generator_config(const ExperimentScale& scale);
core::RouteNetConfig paper_model_config();

struct PaperSetup {
  core::RouteNet model;
  std::vector<dataset::Sample> eval_nsfnet;
  std::vector<dataset::Sample> eval_syn50;
  std::vector<dataset::Sample> eval_geant2;
};

// Trains (or loads from cache) the paper's experiment and returns the model
// plus the three evaluation sets. Prints progress to stdout. Training wall
// time and final loss are recorded in the obs registry; on a cache hit the
// telemetry that produced the cached model is replayed from
// `<model>.telemetry.json` instead of reporting zero training time.
PaperSetup load_or_train_paper_setup(const ExperimentScale& scale);

// Opens the global JSONL telemetry sink from a `--metrics-out PATH` argv
// pair (or the RN_METRICS_OUT env var), sizes the worker pool from a
// `--threads N` pair (default: RN_THREADS, then hardware_concurrency), and
// starts the bench wall clock. Call first in every report bench's main().
void init_bench_telemetry(int argc, char** argv);

// Writes `BENCH_<name>.json` into the cache dir — run metadata plus the
// metrics-registry snapshot as a stable `telemetry` section every perf PR
// reports against — then emits the final metrics.snapshot event and closes
// the sink. Returns the JSON path.
std::string finish_bench_telemetry(const std::string& bench_name,
                                   const ExperimentScale& scale);

// The three topologies of the experiment.
std::shared_ptr<const topo::Topology> nsfnet_topology();
std::shared_ptr<const topo::Topology> syn50_topology();
std::shared_ptr<const topo::Topology> geant2_topology();

}  // namespace rn::bench
