// Throughput bench: dataset-generation samples/s, matmul-kernel GFLOP/s,
// and training step time at 1, 2, and N worker threads, plus the
// single-threaded blocked-vs-naive kernel ratio. Writes
// BENCH_throughput.json so the perf trajectory (and the determinism
// contract) is tracked across PRs.
//
//   ./throughput [--metrics-out PATH] [--threads N]
//
// N defaults to RN_THREADS / hardware_concurrency; RN_BENCH_SCALE sizes the
// dataset-generation and training phases as usual.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "ag/tensor.h"
#include "bench_common.h"
#include "obs/event.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "par/thread_pool.h"
#include "util/rng.h"

namespace {

using rn::ag::Tensor;

std::vector<int> thread_sweep() {
  std::vector<int> t = {1, 2, rn::par::default_threads()};
  std::sort(t.begin(), t.end());
  t.erase(std::unique(t.begin(), t.end()), t.end());
  return t;
}

Tensor random_tensor(int rows, int cols, rn::Rng& rng) {
  Tensor t(rows, cols);
  for (int i = 0; i < t.size(); ++i) {
    t[static_cast<std::size_t>(i)] =
        static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

// Times fn until it has run for at least min_wall_s; returns seconds/call.
template <typename Fn>
double time_per_call(const Fn& fn, double min_wall_s = 0.15) {
  fn();  // warm caches and the pool
  int reps = 0;
  rn::obs::Stopwatch watch;
  do {
    fn();
    ++reps;
  } while (watch.elapsed_s() < min_wall_s);
  return watch.elapsed_s() / reps;
}

// The original pre-blocking kernels, kept verbatim as the single-threaded
// regression baseline: the blocked kernels must stay within 10% of these.
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  Tensor c(a.rows(), b.cols());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  for (int i = 0; i < m; ++i) {
    float* crow = c.row(i);
    const float* arow = a.row(i);
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.row(p);
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor naive_matmul_tn(const Tensor& a, const Tensor& b) {
  Tensor c(a.cols(), b.cols());
  const int m = a.cols(), k = a.rows(), n = b.cols();
  (void)m;
  for (int p = 0; p < k; ++p) {
    const float* arow = a.row(p);
    const float* brow = b.row(p);
    for (int i = 0; i < c.rows(); ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c.row(i);
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor naive_matmul_nt(const Tensor& a, const Tensor& b) {
  Tensor c(a.rows(), b.rows());
  const int m = a.rows(), k = a.cols(), n = b.rows();
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (int j = 0; j < n; ++j) {
      const float* brow = b.row(j);
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
  return c;
}

struct Series {
  std::vector<int> threads;
  std::vector<double> value;  // samples/s or GFLOP/s or step seconds

  std::string to_json(const char* value_key) const {
    std::string out = "{\"threads\":[";
    for (std::size_t i = 0; i < threads.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(threads[i]);
    }
    out += "],\"";
    out += value_key;
    out += "\":[";
    for (std::size_t i = 0; i < value.size(); ++i) {
      if (i > 0) out += ',';
      out += rn::obs::json_number(value[i]);
    }
    out += "]}";
    return out;
  }

  // value at max threads over value at 1 thread (or its inverse for
  // durations, chosen by the caller feeding "rate" values).
  double speedup() const {
    return value.front() > 0.0 ? value.back() / value.front() : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  rn::bench::init_bench_telemetry(argc, argv);
  const rn::bench::ExperimentScale scale = rn::bench::scale_from_env();
  const std::vector<int> sweep = thread_sweep();
  rn::obs::Registry& reg = rn::obs::Registry::global();

  std::printf("== throughput bench (scale: %s, sweep:", scale.name.c_str());
  for (int t : sweep) std::printf(" %d", t);
  std::printf(" threads) ==\n");

  // --- Phase 1: dataset generation -------------------------------------
  const int gen_count = std::max(4, scale.eval_nsfnet);
  Series gen_series;
  bool gen_deterministic = true;
  std::vector<std::vector<double>> first_delays;
  for (int t : sweep) {
    rn::par::set_global_threads(t);
    rn::dataset::DatasetGenerator gen(
        rn::bench::paper_generator_config(scale), 101);
    rn::obs::Stopwatch watch;
    const std::vector<rn::dataset::Sample> samples =
        gen.generate_many(rn::bench::nsfnet_topology(), gen_count);
    const double wall_s = watch.elapsed_s();
    gen_series.threads.push_back(t);
    gen_series.value.push_back(wall_s > 0.0 ? gen_count / wall_s : 0.0);
    std::printf("  gen  %2d thread(s): %6.2f samples/s (%.2fs)\n", t,
                gen_series.value.back(), wall_s);
    if (first_delays.empty()) {
      for (const rn::dataset::Sample& s : samples) {
        first_delays.push_back(s.delay_s);
      }
    } else {
      for (std::size_t i = 0; i < samples.size(); ++i) {
        if (samples[i].delay_s != first_delays[i]) gen_deterministic = false;
      }
    }
  }
  std::printf("  gen  deterministic across thread counts: %s\n",
              gen_deterministic ? "yes" : "NO — BUG");

  // --- Phase 2: matmul kernel GFLOP/s ----------------------------------
  // RouteNet-batch-shaped operands: thousands of path/link rows times
  // 32/64-wide states.
  const int m = 4096, k = 64, n = 64;
  const double gflop = 2.0 * m * k * n / 1e9;
  rn::Rng rng(17);
  const Tensor a = random_tensor(m, k, rng);
  const Tensor b = random_tensor(k, n, rng);
  const Tensor at = random_tensor(k, m, rng);
  const Tensor bt = random_tensor(n, k, rng);

  Series mm, mm_tn, mm_nt;
  for (int t : sweep) {
    rn::par::set_global_threads(t);
    mm.threads.push_back(t);
    mm_tn.threads.push_back(t);
    mm_nt.threads.push_back(t);
    mm.value.push_back(gflop /
                       time_per_call([&] { rn::ag::matmul(a, b); }));
    mm_tn.value.push_back(gflop /
                          time_per_call([&] { rn::ag::matmul_tn(at, b); }));
    mm_nt.value.push_back(gflop /
                          time_per_call([&] { rn::ag::matmul_nt(a, bt); }));
    std::printf("  mm   %2d thread(s): nn %6.2f / tn %6.2f / nt %6.2f "
                "GFLOP/s\n",
                t, mm.value.back(), mm_tn.value.back(), mm_nt.value.back());
  }

  // Multi-thread regression: adding a second worker must never cost
  // throughput. The shape-aware matmul grain gives 2 threads 2 halves
  // instead of dozens of tile-sized slivers; this assertion is what keeps
  // that property. Each ratio is the median of interleaved 1t/2t pairs —
  // pairing cancels the frequency drift that makes two separate sweep
  // points noisy — and the 0.90 bar tolerates CPU-quota parity while still
  // catching a real grain regression (slivers cost 2-3x, not 10%).
  const auto paired_2t_ratio = [&](auto&& fn) {
    std::vector<double> ratios;
    for (int rep = 0; rep < 5; ++rep) {
      rn::par::set_global_threads(1);
      const double t1 = time_per_call(fn, 0.1);
      rn::par::set_global_threads(2);
      const double t2 = time_per_call(fn, 0.1);
      ratios.push_back(t2 > 0.0 ? t1 / t2 : 0.0);
    }
    std::sort(ratios.begin(), ratios.end());
    return ratios[ratios.size() / 2];
  };
  const double scale_nn = paired_2t_ratio([&] { rn::ag::matmul(a, b); });
  const double scale_tn = paired_2t_ratio([&] { rn::ag::matmul_tn(at, b); });
  const double scale_nt = paired_2t_ratio([&] { rn::ag::matmul_nt(a, bt); });
  std::printf("  mm   2-thread/1-thread (median of pairs): nn %.2fx / "
              "tn %.2fx / nt %.2fx\n",
              scale_nn, scale_tn, scale_nt);
  int mm_violations = 0;
  for (const double s : {scale_nn, scale_tn, scale_nt}) {
    if (s < 0.90) ++mm_violations;
  }
  if (mm_violations > 0) {
    std::printf("WARNING: %d matmul kernel(s) slower at 2 threads than 1\n",
                mm_violations);
    if (std::getenv("RN_BENCH_ENFORCE") == nullptr) mm_violations = 0;
  }

  // Single-thread regression: blocked vs the original unblocked kernels
  // (ratio > 1 means the blocked kernel is faster).
  rn::par::set_global_threads(1);
  const double r_nn = time_per_call([&] { naive_matmul(a, b); }) /
                      time_per_call([&] { rn::ag::matmul(a, b); });
  const double r_tn = time_per_call([&] { naive_matmul_tn(at, b); }) /
                      time_per_call([&] { rn::ag::matmul_tn(at, b); });
  const double r_nt = time_per_call([&] { naive_matmul_nt(a, bt); }) /
                      time_per_call([&] { rn::ag::matmul_nt(a, bt); });
  std::printf("  mm   blocked/naive single-thread speedup: nn %.2fx / "
              "tn %.2fx / nt %.2fx\n",
              r_nn, r_tn, r_nt);

  // --- Phase 3: training step time -------------------------------------
  rn::par::set_global_threads(sweep.front());
  rn::dataset::DatasetGenerator train_gen(
      rn::bench::paper_generator_config(scale), 303);
  const std::vector<rn::dataset::Sample> train =
      train_gen.generate_many(rn::bench::nsfnet_topology(), gen_count);
  Series step_series;
  for (int t : sweep) {
    rn::core::RouteNet model(rn::bench::paper_model_config());
    rn::core::TrainConfig tcfg;
    tcfg.epochs = 2;
    tcfg.batch_size = 4;
    tcfg.threads = t;
    rn::core::Trainer trainer(model, tcfg);
    rn::obs::Stopwatch watch;
    trainer.fit(train);
    const double wall_s = watch.elapsed_s();
    const int batches =
        tcfg.epochs * ((gen_count + tcfg.batch_size - 1) / tcfg.batch_size);
    step_series.threads.push_back(t);
    step_series.value.push_back(wall_s / batches);
    std::printf("  trn  %2d thread(s): %7.2f ms/step\n", t,
                1e3 * step_series.value.back());
  }
  const double train_speedup =
      step_series.value.back() > 0.0
          ? step_series.value.front() / step_series.value.back()
          : 0.0;

  // --- Report -----------------------------------------------------------
  reg.gauge("bench.throughput.gen_speedup").set(gen_series.speedup());
  reg.gauge("bench.throughput.train_step_speedup").set(train_speedup);
  reg.gauge("bench.throughput.gen_deterministic")
      .set(gen_deterministic ? 1.0 : 0.0);
  reg.gauge("bench.throughput.single_thread_ratio_nn").set(r_nn);
  reg.gauge("bench.throughput.single_thread_ratio_tn").set(r_tn);
  reg.gauge("bench.throughput.single_thread_ratio_nt").set(r_nt);
  reg.gauge("bench.throughput.two_thread_ratio_nn").set(scale_nn);
  reg.gauge("bench.throughput.two_thread_ratio_tn").set(scale_tn);
  reg.gauge("bench.throughput.two_thread_ratio_nt").set(scale_nt);

  const std::string path =
      rn::bench::cache_dir() + "/BENCH_throughput.json";
  {
    std::ofstream out(path);
    if (out.good()) {
      out << "{\"bench\":\"throughput\",\"scale\":\""
          << rn::obs::json_escape(scale.name) << "\""
          << ",\"dataset_gen\":" << gen_series.to_json("samples_per_s")
          << ",\"dataset_gen_speedup\":"
          << rn::obs::json_number(gen_series.speedup())
          << ",\"dataset_gen_deterministic\":"
          << (gen_deterministic ? "true" : "false")
          << ",\"matmul_gflops\":" << mm.to_json("gflops")
          << ",\"matmul_tn_gflops\":" << mm_tn.to_json("gflops")
          << ",\"matmul_nt_gflops\":" << mm_nt.to_json("gflops")
          << ",\"single_thread_blocked_over_naive\":{\"nn\":"
          << rn::obs::json_number(r_nn)
          << ",\"tn\":" << rn::obs::json_number(r_tn)
          << ",\"nt\":" << rn::obs::json_number(r_nt) << "}"
          << ",\"two_thread_speedup\":{\"nn\":"
          << rn::obs::json_number(scale_nn)
          << ",\"tn\":" << rn::obs::json_number(scale_tn)
          << ",\"nt\":" << rn::obs::json_number(scale_nt) << "}"
          << ",\"train_step_s\":" << step_series.to_json("seconds")
          << ",\"train_step_speedup\":" << rn::obs::json_number(train_speedup)
          << ",\"telemetry\":" << reg.snapshot().to_json() << "}\n";
    }
  }
  std::printf("\nspeedups at %d threads: gen %.2fx, train step %.2fx\n",
              sweep.back(), gen_series.speedup(), train_speedup);
  std::printf("telemetry -> %s\n", path.c_str());
  rn::obs::emit_registry_snapshot();
  rn::obs::EventSink::global().close();
  if (mm_violations > 0) {
    std::printf("RN_BENCH_ENFORCE set: failing on 2-thread regression\n");
    return 1;
  }
  return gen_deterministic ? 0 : 1;
}
