// Scalability of the GNN itself — the demo's point is generalization "to
// larger topologies of variable size (up to 50 nodes)", which only matters
// if message passing scales with graph size.
//
// google-benchmark: full RouteNet forward pass (inference) across topology
// sizes and message-passing iteration counts; plus the packet simulator's
// event throughput as the cost yardstick.
#include <benchmark/benchmark.h>

#include <memory>

#include "ag/optim.h"
#include "bench_common.h"
#include "sim/simulator.h"
#include "topology/generators.h"

namespace {

using namespace rn;

dataset::Sample sample_for_nodes(int n, std::uint64_t seed) {
  Rng rng(seed);
  auto topology = std::make_shared<const topo::Topology>(
      topo::synthetic_ba(n, 2, rng));
  routing::RoutingScheme scheme =
      routing::random_k_shortest_routing(*topology, 2, rng);
  traffic::TrafficMatrix tm =
      traffic::uniform_traffic(n, 50.0, 150.0, rng);
  traffic::scale_to_max_utilization(tm, *topology, scheme, 0.6);
  dataset::Sample s{topology, std::move(scheme), std::move(tm), {}, {}, {},
                    0.6};
  const int pairs = topology->num_pairs();
  s.delay_s.assign(static_cast<std::size_t>(pairs), 0.01);
  s.jitter_s.assign(static_cast<std::size_t>(pairs), 0.001);
  s.valid.assign(static_cast<std::size_t>(pairs), 1);
  return s;
}

void BM_ForwardByTopologySize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const dataset::Sample sample = sample_for_nodes(n, 11);
  core::RouteNet model(bench::paper_model_config());
  const core::GraphBatch batch =
      core::GraphBatch::from_sample(sample, model.normalizer(), false);
  for (auto _ : state) {
    ag::Tape tape;
    benchmark::DoNotOptimize(model.forward(tape, batch));
  }
  state.counters["paths"] = static_cast<double>(batch.num_paths);
  state.counters["links"] = static_cast<double>(batch.num_links);
}
BENCHMARK(BM_ForwardByTopologySize)->Arg(10)->Arg(14)->Arg(24)->Arg(50)
    ->Unit(benchmark::kMillisecond);

void BM_ForwardByIterations(benchmark::State& state) {
  const dataset::Sample sample = sample_for_nodes(24, 12);
  core::RouteNetConfig cfg = bench::paper_model_config();
  cfg.iterations = static_cast<int>(state.range(0));
  core::RouteNet model(cfg);
  const core::GraphBatch batch =
      core::GraphBatch::from_sample(sample, model.normalizer(), false);
  for (auto _ : state) {
    ag::Tape tape;
    benchmark::DoNotOptimize(model.forward(tape, batch));
  }
}
BENCHMARK(BM_ForwardByIterations)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_TrainingStep(benchmark::State& state) {
  const dataset::Sample sample = sample_for_nodes(14, 13);
  core::RouteNet model(bench::paper_model_config());
  const core::GraphBatch batch =
      core::GraphBatch::from_sample(sample, model.normalizer(), true);
  ag::Adam opt(model.params(), 1e-3f);
  for (auto _ : state) {
    ag::Tape tape;
    const core::RouteNet::Output out = model.forward(tape, batch);
    const ag::ValueId sel = tape.gather_rows(out.delay, batch.valid_paths);
    const ag::ValueId loss = tape.mse(sel, batch.delay_targets);
    opt.zero_grad();
    tape.backward(loss);
    opt.step();
  }
}
BENCHMARK(BM_TrainingStep)->Unit(benchmark::kMillisecond);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(14);
  auto topology = std::make_shared<const topo::Topology>(
      topo::synthetic_ba(n, 2, rng));
  routing::RoutingScheme scheme = routing::shortest_path_routing(*topology);
  traffic::TrafficMatrix tm = traffic::uniform_traffic(n, 50.0, 150.0, rng);
  traffic::scale_to_max_utilization(tm, *topology, scheme, 0.6);
  sim::SimConfig cfg;
  cfg.warmup_s = 0.5;
  cfg.horizon_s =
      sim::horizon_for_target_packets(tm, cfg.model, cfg.warmup_s, 40.0);
  const sim::PacketSimulator simulator(cfg);
  std::size_t events = 0;
  for (auto _ : state) {
    const sim::SimResult res = simulator.run(*topology, scheme, tm);
    events += res.total_events;
    benchmark::DoNotOptimize(res);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorEventThroughput)->Arg(14)->Arg(24)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

BENCHMARK_MAIN();
