// Microbenchmark for the blocked matmul kernels against the original
// unblocked loops — the single-threaded regression guard for the parallel
// execution layer (no blocked kernel may be >10% slower than its naive
// counterpart at 1 thread), plus the threaded variants at the default pool
// width.
//
// Before the google-benchmark tables run, main() times each blocked kernel
// against its naive counterpart (median of 5) and checks the 1.10x bound —
// the nt kernel used to lose to the naive loop (0.95x) until the small-B
// untiled fallback. A violation always prints a WARNING; it fails the run
// (exit 1) when RN_BENCH_ENFORCE is set, so CI machines with steady clocks
// can turn the expectation into a gate without flaking laptops.
//
//   ./matmul_kernels [--benchmark_filter=...]
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "ag/tensor.h"
#include "obs/timer.h"
#include "par/thread_pool.h"
#include "util/rng.h"

namespace {

using rn::ag::Tensor;

// RouteNet batch shape: thousands of path/link rows, 32–64-wide states.
constexpr int kM = 4096, kK = 64, kN = 64;

Tensor random_tensor(int rows, int cols, std::uint64_t seed) {
  rn::Rng rng(seed);
  Tensor t(rows, cols);
  for (int i = 0; i < t.size(); ++i) {
    t[static_cast<std::size_t>(i)] =
        static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

const Tensor& A() {
  static const Tensor t = random_tensor(kM, kK, 1);
  return t;
}
const Tensor& B() {
  static const Tensor t = random_tensor(kK, kN, 2);
  return t;
}
const Tensor& At() {
  static const Tensor t = random_tensor(kK, kM, 3);
  return t;
}
const Tensor& Bt() {
  static const Tensor t = random_tensor(kN, kK, 4);
  return t;
}

void set_flops(benchmark::State& state) {
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * kM * kK * kN * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}

// The pre-blocking kernels, kept verbatim as the baseline.
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  Tensor c(a.rows(), b.cols());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  for (int i = 0; i < m; ++i) {
    float* crow = c.row(i);
    const float* arow = a.row(i);
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.row(p);
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor naive_matmul_tn(const Tensor& a, const Tensor& b) {
  Tensor c(a.cols(), b.cols());
  const int k = a.rows(), n = b.cols();
  for (int p = 0; p < k; ++p) {
    const float* arow = a.row(p);
    const float* brow = b.row(p);
    for (int i = 0; i < c.rows(); ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c.row(i);
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor naive_matmul_nt(const Tensor& a, const Tensor& b) {
  Tensor c(a.rows(), b.rows());
  const int m = a.rows(), k = a.cols(), n = b.rows();
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (int j = 0; j < n; ++j) {
      const float* brow = b.row(j);
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
  return c;
}

void BM_naive_matmul(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(naive_matmul(A(), B()));
  set_flops(state);
}

void BM_naive_matmul_tn(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(naive_matmul_tn(At(), B()));
  set_flops(state);
}

void BM_naive_matmul_nt(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(naive_matmul_nt(A(), Bt()));
  set_flops(state);
}

// Blocked kernels pinned to one thread: compare directly against BM_naive_*
// — the regression bound is 1.10x.
void BM_blocked_matmul_1t(benchmark::State& state) {
  rn::par::set_global_threads(1);
  for (auto _ : state) benchmark::DoNotOptimize(rn::ag::matmul(A(), B()));
  set_flops(state);
}

void BM_blocked_matmul_tn_1t(benchmark::State& state) {
  rn::par::set_global_threads(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rn::ag::matmul_tn(At(), B()));
  }
  set_flops(state);
}

void BM_blocked_matmul_nt_1t(benchmark::State& state) {
  rn::par::set_global_threads(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rn::ag::matmul_nt(A(), Bt()));
  }
  set_flops(state);
}

// Blocked kernels on the full pool (RN_THREADS / hardware width).
void BM_blocked_matmul_nt_pool(benchmark::State& state) {
  rn::par::set_global_threads(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rn::ag::matmul_nt(A(), Bt()));
  }
  set_flops(state);
}

void BM_blocked_matmul_pool(benchmark::State& state) {
  rn::par::set_global_threads(0);
  for (auto _ : state) benchmark::DoNotOptimize(rn::ag::matmul(A(), B()));
  set_flops(state);
}

BENCHMARK(BM_naive_matmul);
BENCHMARK(BM_blocked_matmul_1t);
BENCHMARK(BM_blocked_matmul_pool);
BENCHMARK(BM_naive_matmul_tn);
BENCHMARK(BM_blocked_matmul_tn_1t);
BENCHMARK(BM_naive_matmul_nt);
BENCHMARK(BM_blocked_matmul_nt_1t);
BENCHMARK(BM_blocked_matmul_nt_pool);

// Median-of-reps seconds per call; the median shrugs off one-off scheduler
// blips that would make a guard on the mean flaky.
template <typename Fn>
double median_time_s(const Fn& fn, int reps = 5) {
  fn();  // warm caches (and the pool, for the blocked kernels)
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    rn::obs::Stopwatch watch;
    benchmark::DoNotOptimize(fn());
    times.push_back(watch.elapsed_s());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

// The guarded expectation: every blocked kernel stays within 10% of its
// naive counterpart single-threaded. Returns the number of violations.
int check_blocked_vs_naive() {
  rn::par::set_global_threads(1);
  const bool enforce = std::getenv("RN_BENCH_ENFORCE") != nullptr;
  struct Row {
    const char* name;
    double naive_s;
    double blocked_s;
  };
  const Row rows[] = {
      {"nn", median_time_s([] { return naive_matmul(A(), B()); }),
       median_time_s([] { return rn::ag::matmul(A(), B()); })},
      {"tn", median_time_s([] { return naive_matmul_tn(At(), B()); }),
       median_time_s([] { return rn::ag::matmul_tn(At(), B()); })},
      {"nt", median_time_s([] { return naive_matmul_nt(A(), Bt()); }),
       median_time_s([] { return rn::ag::matmul_nt(A(), Bt()); })},
  };
  int violations = 0;
  for (const Row& row : rows) {
    const double ratio =
        row.blocked_s > 0.0 ? row.naive_s / row.blocked_s : 0.0;
    std::printf("guard %s: blocked/naive speedup %.2fx%s\n", row.name, ratio,
                ratio < 1.0 / 1.10 ? "  <-- REGRESSION (>1.10x slower)" : "");
    if (row.blocked_s > row.naive_s * 1.10) {
      ++violations;
      std::printf("WARNING: blocked %s kernel is %.0f%% slower than the "
                  "naive loop at 1 thread\n",
                  row.name, 100.0 * (row.blocked_s / row.naive_s - 1.0));
    }
  }
  if (violations > 0 && enforce) {
    std::printf("RN_BENCH_ENFORCE set: failing on kernel regression\n");
    return violations;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const int rc = check_blocked_vs_naive();
  if (rc != 0) return 1;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
