// Microbenchmark for the kernel layer.
//
// Three jobs:
//   1. The original single-threaded regression guard — no blocked kernel
//      may be >10% slower than its naive counterpart (median of 5; WARNING
//      always, exit 1 under RN_BENCH_ENFORCE).
//   2. A backend report: every compiled-in kernel backend
//      (scalar / avx2 / avx2fma) timed on the three matmul shapes at paper
//      sizes (state dims 16–64, Geant2-scale row counts), the gather /
//      scatter / segment_sum / scale_rows family, and the fused-vs-composed
//      GRU step — written to BENCH_kernels.json in the bench cache. Under
//      RN_BENCH_ENFORCE the report is also a gate: the avx2 backend must be
//      ≥1.5x scalar on the nn matmul at paper shapes and must produce
//      bitwise-identical results.
//   3. The google-benchmark tables (skipped at RN_BENCH_SCALE=smoke, where
//      only the guard + report run so CI stays seconds-scale).
//
//   ./matmul_kernels [--benchmark_filter=...]
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "ag/kernels.h"
#include "ag/nn.h"
#include "ag/tape.h"
#include "ag/tensor.h"
#include "bench_common.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "par/thread_pool.h"
#include "util/rng.h"

namespace {

using rn::ag::Tensor;
namespace kern = rn::ag::kern;

// RouteNet batch shape: thousands of path/link rows, 32–64-wide states.
constexpr int kM = 4096, kK = 64, kN = 64;

Tensor random_tensor(int rows, int cols, std::uint64_t seed) {
  rn::Rng rng(seed);
  Tensor t(rows, cols);
  for (int i = 0; i < t.size(); ++i) {
    t[static_cast<std::size_t>(i)] =
        static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

const Tensor& A() {
  static const Tensor t = random_tensor(kM, kK, 1);
  return t;
}
const Tensor& B() {
  static const Tensor t = random_tensor(kK, kN, 2);
  return t;
}
const Tensor& At() {
  static const Tensor t = random_tensor(kK, kM, 3);
  return t;
}
const Tensor& Bt() {
  static const Tensor t = random_tensor(kN, kK, 4);
  return t;
}

void set_flops(benchmark::State& state) {
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * kM * kK * kN * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}

// The pre-blocking kernels, kept verbatim as the baseline.
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  Tensor c(a.rows(), b.cols());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  for (int i = 0; i < m; ++i) {
    float* crow = c.row(i);
    const float* arow = a.row(i);
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.row(p);
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor naive_matmul_tn(const Tensor& a, const Tensor& b) {
  Tensor c(a.cols(), b.cols());
  const int k = a.rows(), n = b.cols();
  for (int p = 0; p < k; ++p) {
    const float* arow = a.row(p);
    const float* brow = b.row(p);
    for (int i = 0; i < c.rows(); ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c.row(i);
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor naive_matmul_nt(const Tensor& a, const Tensor& b) {
  Tensor c(a.rows(), b.rows());
  const int m = a.rows(), k = a.cols(), n = b.rows();
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (int j = 0; j < n; ++j) {
      const float* brow = b.row(j);
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
  return c;
}

void BM_naive_matmul(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(naive_matmul(A(), B()));
  set_flops(state);
}

void BM_naive_matmul_tn(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(naive_matmul_tn(At(), B()));
  set_flops(state);
}

void BM_naive_matmul_nt(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(naive_matmul_nt(A(), Bt()));
  set_flops(state);
}

// Blocked kernels pinned to one thread: compare directly against BM_naive_*
// — the regression bound is 1.10x.
void BM_blocked_matmul_1t(benchmark::State& state) {
  rn::par::set_global_threads(1);
  for (auto _ : state) benchmark::DoNotOptimize(rn::ag::matmul(A(), B()));
  set_flops(state);
}

void BM_blocked_matmul_tn_1t(benchmark::State& state) {
  rn::par::set_global_threads(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rn::ag::matmul_tn(At(), B()));
  }
  set_flops(state);
}

void BM_blocked_matmul_nt_1t(benchmark::State& state) {
  rn::par::set_global_threads(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rn::ag::matmul_nt(A(), Bt()));
  }
  set_flops(state);
}

// Blocked kernels on the full pool (RN_THREADS / hardware width).
void BM_blocked_matmul_nt_pool(benchmark::State& state) {
  rn::par::set_global_threads(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rn::ag::matmul_nt(A(), Bt()));
  }
  set_flops(state);
}

void BM_blocked_matmul_pool(benchmark::State& state) {
  rn::par::set_global_threads(0);
  for (auto _ : state) benchmark::DoNotOptimize(rn::ag::matmul(A(), B()));
  set_flops(state);
}

BENCHMARK(BM_naive_matmul);
BENCHMARK(BM_blocked_matmul_1t);
BENCHMARK(BM_blocked_matmul_pool);
BENCHMARK(BM_naive_matmul_tn);
BENCHMARK(BM_blocked_matmul_tn_1t);
BENCHMARK(BM_naive_matmul_nt);
BENCHMARK(BM_blocked_matmul_nt_1t);
BENCHMARK(BM_blocked_matmul_nt_pool);

// Median-of-reps seconds per call; the median shrugs off one-off scheduler
// blips that would make a guard on the mean flaky.
template <typename Fn>
double median_time_s(const Fn& fn, int reps = 5) {
  fn();  // warm caches (and the pool, for the blocked kernels)
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    rn::obs::Stopwatch watch;
    benchmark::DoNotOptimize(fn());
    times.push_back(watch.elapsed_s());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

// The guarded expectation: every blocked kernel stays within 10% of its
// naive counterpart single-threaded. Returns the number of violations.
int check_blocked_vs_naive() {
  rn::par::set_global_threads(1);
  const bool enforce = std::getenv("RN_BENCH_ENFORCE") != nullptr;
  struct Row {
    const char* name;
    double naive_s;
    double blocked_s;
  };
  const Row rows[] = {
      {"nn", median_time_s([] { return naive_matmul(A(), B()); }),
       median_time_s([] { return rn::ag::matmul(A(), B()); })},
      {"tn", median_time_s([] { return naive_matmul_tn(At(), B()); }),
       median_time_s([] { return rn::ag::matmul_tn(At(), B()); })},
      {"nt", median_time_s([] { return naive_matmul_nt(A(), Bt()); }),
       median_time_s([] { return rn::ag::matmul_nt(A(), Bt()); })},
  };
  int violations = 0;
  for (const Row& row : rows) {
    const double ratio =
        row.blocked_s > 0.0 ? row.naive_s / row.blocked_s : 0.0;
    std::printf("guard %s: blocked/naive speedup %.2fx%s\n", row.name, ratio,
                ratio < 1.0 / 1.10 ? "  <-- REGRESSION (>1.10x slower)" : "");
    if (row.blocked_s > row.naive_s * 1.10) {
      ++violations;
      std::printf("WARNING: blocked %s kernel is %.0f%% slower than the "
                  "naive loop at 1 thread\n",
                  row.name, 100.0 * (row.blocked_s / row.naive_s - 1.0));
    }
  }
  if (violations > 0 && enforce) {
    std::printf("RN_BENCH_ENFORCE set: failing on kernel regression\n");
    return violations;
  }
  return 0;
}

// --- Backend report ---------------------------------------------------------

const char* scale_name() {
  static const std::string name = rn::bench::scale_from_env().name;
  return name.c_str();
}

bool smoke_scale() { return std::strcmp(scale_name(), "smoke") == 0; }

// Per-(backend, shape) matmul GFLOP/s at one thread, plus the index-op
// family and the fused GRU step. All timings single-threaded so the numbers
// isolate the kernel, not the chunking.
struct ShapeReport {
  int m, k, n;
  // [backend] -> gflops, in kernel Backend enum order; -1 = unavailable.
  double nn[3] = {-1, -1, -1};
  double tn[3] = {-1, -1, -1};
  double nt[3] = {-1, -1, -1};
  double nn_speedup = -1;  // paired avx2/scalar median, -1 = no avx2
};

constexpr kern::Backend kBackends[] = {
    kern::Backend::kScalar, kern::Backend::kAvx2, kern::Backend::kAvx2Fma};

bool tensors_bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.size()) * sizeof(float)) == 0;
}

// One GRU step on a fresh tape, fused or composed. Returns the new-hidden
// value so the two variants can also be compared bitwise.
Tensor gru_once(const rn::ag::GruCell& cell, const Tensor& x, const Tensor& h,
                bool fused) {
  rn::ag::set_fused_gru(fused);
  rn::ag::Tape tape;
  const rn::ag::ValueId out =
      cell.step(tape, tape.constant(x), tape.constant(h));
  return tape.value(out);
}

int run_backend_report() {
  const bool enforce = std::getenv("RN_BENCH_ENFORCE") != nullptr;
  rn::par::set_global_threads(1);
  const kern::Backend saved_backend = kern::active_backend();
  const bool fused_saved = rn::ag::fused_gru_enabled();
  int violations = 0;

  // Geant2-scale row count (every path-hop row of a merged batch) over the
  // paper's state-dim range; smoke shrinks rows, not shapes.
  const int rows = smoke_scale() ? 512 : kM;
  std::vector<ShapeReport> shapes;
  for (const int dim : {16, 32, 64}) {
    shapes.push_back(ShapeReport{rows, dim, dim});
  }

  std::printf("\n== kernel backends (1 thread, %d rows) ==\n", rows);
  for (ShapeReport& shape : shapes) {
    const Tensor a = random_tensor(shape.m, shape.k, 11);
    const Tensor b = random_tensor(shape.k, shape.n, 12);
    const Tensor at = random_tensor(shape.k, shape.m, 13);
    const Tensor bt = random_tensor(shape.n, shape.k, 14);
    const double gflop =
        2.0 * shape.m * shape.k * shape.n / 1e9;
    Tensor ref_nn, ref_tn, ref_nt;
    for (int bi = 0; bi < 3; ++bi) {
      if (!kern::backend_available(kBackends[bi])) continue;
      kern::set_kernel_backend(kBackends[bi]);
      shape.nn[bi] =
          gflop / median_time_s([&] { return rn::ag::matmul(a, b); });
      shape.tn[bi] =
          gflop / median_time_s([&] { return rn::ag::matmul_tn(at, b); });
      shape.nt[bi] =
          gflop / median_time_s([&] { return rn::ag::matmul_nt(a, bt); });
      std::printf("  %4dx%2dx%2d %-8s nn %6.2f / tn %6.2f / nt %6.2f "
                  "GFLOP/s\n",
                  shape.m, shape.k, shape.n,
                  kern::backend_name(kBackends[bi]), shape.nn[bi],
                  shape.tn[bi], shape.nt[bi]);
      // Bitwise contract: scalar and avx2 must agree exactly; avx2fma is
      // the documented divergent opt-in and is not checked.
      if (kBackends[bi] == kern::Backend::kScalar) {
        ref_nn = rn::ag::matmul(a, b);
        ref_tn = rn::ag::matmul_tn(at, b);
        ref_nt = rn::ag::matmul_nt(a, bt);
      } else if (kBackends[bi] == kern::Backend::kAvx2) {
        if (!tensors_bitwise_equal(ref_nn, rn::ag::matmul(a, b)) ||
            !tensors_bitwise_equal(ref_tn, rn::ag::matmul_tn(at, b)) ||
            !tensors_bitwise_equal(ref_nt, rn::ag::matmul_nt(a, bt))) {
          std::printf("WARNING: avx2 backend diverges bitwise from scalar "
                      "at %dx%dx%d\n",
                      shape.m, shape.k, shape.n);
          ++violations;
        }
      }
    }
    // The acceptance gate: avx2 ≥ 1.5x scalar on the nn matmul. Measured
    // as the median of interleaved scalar/avx2 pairs — pairing cancels the
    // clock drift and scheduler noise that two separately-timed sweeps
    // pick up (this also runs under a parallel ctest).
    if (shape.nn[1] > 0.0) {
      std::vector<double> ratios;
      for (int rep = 0; rep < 5; ++rep) {
        kern::set_kernel_backend(kern::Backend::kScalar);
        const double ts =
            median_time_s([&] { return rn::ag::matmul(a, b); }, 3);
        kern::set_kernel_backend(kern::Backend::kAvx2);
        const double tv =
            median_time_s([&] { return rn::ag::matmul(a, b); }, 3);
        ratios.push_back(tv > 0.0 ? ts / tv : 0.0);
      }
      std::sort(ratios.begin(), ratios.end());
      const double speedup = ratios[ratios.size() / 2];
      shape.nn_speedup = speedup;
      std::printf("  %4dx%2dx%2d avx2/scalar nn speedup: %.2fx%s\n", shape.m,
                  shape.k, shape.n, speedup,
                  speedup < 1.5 ? "  <-- BELOW 1.5x" : "");
      if (speedup < 1.5) ++violations;
    }
  }

  // Fused vs composed GRU step at a paper-sized hop batch (tape recording
  // included — node elimination is the point of the fusion).
  rn::Rng gru_rng(77);
  rn::ag::GruCell cell(32, 32, gru_rng, "bench.gru");
  const Tensor gx = random_tensor(rows, 32, 21);
  const Tensor gh = random_tensor(rows, 32, 22);
  const double composed_s =
      median_time_s([&] { return gru_once(cell, gx, gh, false); });
  const double fused_s =
      median_time_s([&] { return gru_once(cell, gx, gh, true); });
  const bool gru_bitwise = tensors_bitwise_equal(
      gru_once(cell, gx, gh, false), gru_once(cell, gx, gh, true));
  const double gru_speedup = fused_s > 0.0 ? composed_s / fused_s : 0.0;
  std::printf("  gru  fused/composed speedup: %.2fx (bitwise %s)\n",
              gru_speedup, gru_bitwise ? "identical" : "DIVERGENT");
  if (!gru_bitwise) ++violations;
  rn::ag::set_fused_gru(fused_saved);

  // Index-op family: bytes moved per second at the 64-wide state, strided
  // access pattern of a merged Geant2 batch.
  const int idx_rows = smoke_scale() ? 4096 : 65536;
  const int idx_cols = 64;
  const Tensor src = random_tensor(idx_rows, idx_cols, 31);
  std::vector<int> idx(static_cast<std::size_t>(idx_rows));
  rn::Rng idx_rng(32);
  for (int i = 0; i < idx_rows; ++i) {
    idx[static_cast<std::size_t>(i)] = idx_rng.uniform_int(0, idx_rows - 1);
  }
  std::vector<float> factors(static_cast<std::size_t>(idx_rows));
  for (auto& f : factors) {
    f = static_cast<float>(idx_rng.uniform(0.25, 4.0));
  }
  const double bytes =
      2.0 * idx_rows * idx_cols * sizeof(float);  // read + write
  struct IndexRow {
    const char* name;
    double gb_per_s[3] = {-1, -1, -1};
  };
  IndexRow index_rows[] = {{"gather_rows"}, {"indexed_row_add"},
                           {"scale_rows"}};
  Tensor dst(idx_rows, idx_cols);
  for (int bi = 0; bi < 3; ++bi) {
    if (!kern::backend_available(kBackends[bi])) continue;
    const kern::Ops& ops = kern::ops(kBackends[bi]);
    index_rows[0].gb_per_s[bi] =
        bytes / 1e9 / median_time_s([&] {
          ops.gather_rows(src.data(), idx.data(), idx_rows, idx_cols,
                          dst.data());
          return dst.data();
        });
    index_rows[1].gb_per_s[bi] =
        bytes / 1e9 / median_time_s([&] {
          ops.indexed_row_add(dst.data(), idx.data(), idx_rows, idx_cols,
                              src.data());
          return dst.data();
        });
    index_rows[2].gb_per_s[bi] =
        bytes / 1e9 / median_time_s([&] {
          ops.scale_rows(dst.data(), factors.data(), idx_rows, idx_cols);
          return dst.data();
        });
  }
  for (const IndexRow& row : index_rows) {
    std::printf("  %-16s scalar %6.2f / avx2 %6.2f / avx2fma %6.2f GB/s\n",
                row.name, row.gb_per_s[0], row.gb_per_s[1],
                row.gb_per_s[2]);
  }

  kern::set_kernel_backend(saved_backend);

  // --- BENCH_kernels.json -------------------------------------------------
  const std::string path = rn::bench::cache_dir() + "/BENCH_kernels.json";
  {
    std::ofstream out(path);
    if (out.good()) {
      out << "{\"bench\":\"kernels\",\"scale\":\""
          << rn::obs::json_escape(scale_name()) << "\""
          << ",\"active_backend\":\""
          << kern::backend_name(saved_backend) << "\"";
      out << ",\"matmul_shapes\":[";
      for (std::size_t s = 0; s < shapes.size(); ++s) {
        const ShapeReport& shape = shapes[s];
        if (s > 0) out << ',';
        out << "{\"m\":" << shape.m << ",\"k\":" << shape.k
            << ",\"n\":" << shape.n;
        for (int bi = 0; bi < 3; ++bi) {
          if (shape.nn[bi] < 0.0) continue;
          const char* name = kern::backend_name(kBackends[bi]);
          out << ",\"" << name << "_nn_gflops\":"
              << rn::obs::json_number(shape.nn[bi]) << ",\"" << name
              << "_tn_gflops\":" << rn::obs::json_number(shape.tn[bi])
              << ",\"" << name
              << "_nt_gflops\":" << rn::obs::json_number(shape.nt[bi]);
        }
        if (shape.nn_speedup > 0.0) {
          out << ",\"avx2_nn_speedup\":"
              << rn::obs::json_number(shape.nn_speedup);
        }
        out << "}";
      }
      out << "]";
      out << ",\"index_ops\":{";
      bool first = true;
      for (const IndexRow& row : index_rows) {
        for (int bi = 0; bi < 3; ++bi) {
          if (row.gb_per_s[bi] < 0.0) continue;
          if (!first) out << ',';
          first = false;
          out << "\"" << kern::backend_name(kBackends[bi]) << "_"
              << row.name << "_gb_per_s\":"
              << rn::obs::json_number(row.gb_per_s[bi]);
        }
      }
      out << "}";
      out << ",\"gru_step\":{\"rows\":" << rows
          << ",\"composed_s\":" << rn::obs::json_number(composed_s)
          << ",\"fused_s\":" << rn::obs::json_number(fused_s)
          << ",\"fused_speedup\":" << rn::obs::json_number(gru_speedup)
          << ",\"bitwise_identical\":" << (gru_bitwise ? "true" : "false")
          << "}";
      out << ",\"telemetry\":"
          << rn::obs::Registry::global().snapshot().to_json() << "}\n";
    }
  }
  std::printf("report -> %s\n", path.c_str());

  if (violations > 0) {
    if (enforce) {
      std::printf(
          "RN_BENCH_ENFORCE set: failing on %d backend violation(s)\n",
          violations);
      return violations;
    }
    std::printf("(%d backend violation(s); not enforced)\n", violations);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int rc = check_blocked_vs_naive();
  rc += run_backend_report();
  if (rc != 0) return 1;
  if (smoke_scale()) return 0;  // CI smoke: guard + report only
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
