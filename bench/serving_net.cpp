// Network-serving bench: closed-loop RNP/1 load over loopback TCP against
// the real NetServer + ModelRegistry, in three phases that prove the
// adaptive batching policy earns its keep:
//
//   fixed     — a long fixed batch deadline (40ms): every request waits the
//               coalescing window out, so the client-observed p99 breaches
//               the 25ms SLO by construction.
//   adaptive  — the same server shape with AdaptiveBatchPolicy attached:
//               after a warmup that lets the AIMD loop converge, the main
//               measured run (10k+ requests at the standard tier) must hold
//               the client p99 at or under the SLO with zero errors.
//   overload  — a two-slot queue with single-request batches under 16
//               hammering clients: rejects must happen (backpressure is
//               real), stay bounded (some requests are still served), and a
//               fresh probe after the storm must succeed.
//
// BENCH_serving_net.json records all three phases; under RN_BENCH_ENFORCE=1
// the fixed-breaches / adaptive-holds / overload-bounded checks become exit
// codes instead of report lines.
//
//   ./serving_net [--metrics-out PATH] [--threads N]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "obs/event.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/window.h"
#include "par/thread_pool.h"
#include "serve/net.h"
#include "serve/policy.h"
#include "serve/registry.h"
#include "topology/generators.h"
#include "util/stats.h"

namespace {

constexpr double kSloP99S = 0.025;
// AIMD probes additively up to its target and oscillates around it, so the
// policy aims below the gate: server-side p99 hovers near 15ms, leaving the
// client-observed p99 (queue + compute + loopback round trip) real headroom
// under the 25ms SLO instead of riding the boundary.
constexpr double kPolicyTargetS = 0.015;
constexpr double kFixedDeadlineS = 0.040;

struct PhaseResult {
  std::string name;
  int requests = 0;
  int clients = 0;
  double wall_s = 0.0;
  double throughput_rps = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failed = 0;
  // Server-attributed share of client rtt spent in the batching queue
  // (sum of echoed queue_wait_s over sum of rtt_s) — how much of what the
  // client feels the server could shed by batching less.
  double queue_wait_share = 0.0;

  std::string to_json() const {
    std::string out = "{\"phase\":\"" + name + "\"";
    out += ",\"requests\":" + std::to_string(requests);
    out += ",\"clients\":" + std::to_string(clients);
    out += ",\"wall_s\":" + rn::obs::json_number(wall_s);
    out += ",\"throughput_rps\":" + rn::obs::json_number(throughput_rps);
    out += ",\"p50_s\":" + rn::obs::json_number(p50_s);
    out += ",\"p99_s\":" + rn::obs::json_number(p99_s);
    out += ",\"queue_wait_share\":" + rn::obs::json_number(queue_wait_share);
    out += ",\"ok\":" + std::to_string(ok);
    out += ",\"rejected\":" + std::to_string(rejected);
    out += ",\"failed\":" + std::to_string(failed) + "}";
    return out;
  }
};

// Closed-loop load: `clients` threads, one RNP/1 connection each, pulling
// request indices off a shared counter until `total` round trips have been
// issued. Rejected submissions (server backpressure) count separately from
// hard failures.
PhaseResult run_load(const std::string& name, const std::string& address,
                     const std::vector<rn::dataset::Sample>& pool, int total,
                     int clients) {
  std::atomic<int> next{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> failed{0};
  std::mutex lat_mu;
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(total));
  double queue_wait_sum = 0.0;
  double rtt_sum = 0.0;
  rn::obs::Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      rn::serve::NetClient client(address);
      std::vector<double> mine;
      double my_queue_wait = 0.0;
      double my_rtt = 0.0;
      for (;;) {
        const int i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= total) break;
        const rn::dataset::Sample& s =
            pool[static_cast<std::size_t>(i) % pool.size()];
        try {
          const rn::serve::NetClient::PredictOutcome outcome =
              client.predict_traced("default", s);
          mine.push_back(outcome.rtt_s);
          my_rtt += outcome.rtt_s;
          my_queue_wait += outcome.queue_wait_s;
          ok.fetch_add(1, std::memory_order_relaxed);
        } catch (const rn::serve::RemoteError& e) {
          if (e.code() == rn::serve::wire::ErrorCode::kRejected) {
            rejected.fetch_add(1, std::memory_order_relaxed);
          } else {
            failed.fetch_add(1, std::memory_order_relaxed);
          }
        } catch (const std::exception&) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
      std::lock_guard<std::mutex> lock(lat_mu);
      latencies.insert(latencies.end(), mine.begin(), mine.end());
      queue_wait_sum += my_queue_wait;
      rtt_sum += my_rtt;
    });
  }
  for (std::thread& t : threads) t.join();
  PhaseResult res;
  res.name = name;
  res.requests = total;
  res.clients = clients;
  res.wall_s = wall.elapsed_s();
  res.ok = ok.load();
  res.rejected = rejected.load();
  res.failed = failed.load();
  res.throughput_rps =
      res.wall_s > 0.0 ? static_cast<double>(res.ok) / res.wall_s : 0.0;
  res.p50_s = rn::quantile(latencies, 0.5);
  res.p99_s = rn::quantile(latencies, 0.99);
  res.queue_wait_share = rtt_sum > 0.0 ? queue_wait_sum / rtt_sum : 0.0;
  return res;
}

void print_phase(const PhaseResult& r) {
  std::printf("%10s %8d %14.1f %12.3f %12.3f %8llu %8llu\n", r.name.c_str(),
              r.requests, r.throughput_rps, r.p50_s * 1e3, r.p99_s * 1e3,
              static_cast<unsigned long long>(r.rejected),
              static_cast<unsigned long long>(r.failed));
}

}  // namespace

int main(int argc, char** argv) {
  rn::bench::init_bench_telemetry(argc, argv);
  rn::obs::Registry& reg = rn::obs::Registry::global();
  const rn::bench::ExperimentScale scale = rn::bench::scale_from_env();
  const bool smoke = scale.name == "smoke";
  const int kWarmup = smoke ? 200 : 1500;
  const int kMain = smoke ? 600 : 10000;
  const int kFixed = smoke ? 64 : 200;
  const int kOverload = smoke ? 128 : 512;
  const int kClients = 8;

  // Compact model + request pool: the regime network serving batches for —
  // many small independent queries where per-request fixed costs dominate.
  auto topology =
      std::make_shared<const rn::topo::Topology>(rn::topo::ring(8));
  rn::core::RouteNetConfig mcfg;
  mcfg.link_state_dim = 8;
  mcfg.path_state_dim = 8;
  mcfg.iterations = 3;
  mcfg.readout_hidden = 16;
  rn::Rng rng(7);
  const rn::routing::RoutingScheme scheme =
      rn::routing::random_k_shortest_routing(*topology, 2, rng);
  rn::traffic::TrafficMatrix base =
      rn::traffic::uniform_traffic(topology->num_nodes(), 50.0, 150.0, rng);
  std::vector<rn::dataset::Sample> pool;
  pool.reserve(64);
  for (int i = 0; i < 64; ++i) {
    rn::traffic::TrafficMatrix tm = base;
    tm.scale(rng.uniform(0.5, 1.5));
    pool.push_back(
        rn::dataset::make_inference_sample(topology, scheme, std::move(tm)));
  }

  std::printf("== network serving bench (loopback RNP/1, %d clients, "
              "SLO p99 %.0fms, tier %s) ==\n",
              kClients, kSloP99S * 1e3, scale.name.c_str());
  std::printf("%10s %8s %14s %12s %12s %8s %8s\n", "phase", "reqs", "req/s",
              "p50 (ms)", "p99 (ms)", "rejects", "failed");
  std::vector<PhaseResult> results;

  // Phase 1: fixed long deadline, no policy. Batches of 8 clients never
  // fill max_batch 16, so every batch waits the full 40ms out.
  {
    rn::serve::ServerConfig scfg;
    scfg.max_batch = 16;
    scfg.batch_deadline_s = kFixedDeadlineS;
    scfg.queue_capacity = 4096;
    rn::serve::ModelRegistry registry(scfg);
    registry.install("default",
                     std::make_unique<rn::core::RouteNet>(mcfg));
    rn::serve::NetServerConfig ncfg;
    rn::serve::NetServer server(registry, ncfg);
    server.start();
    results.push_back(
        run_load("fixed", server.address(), pool, kFixed, kClients));
    print_phase(results.back());
    server.stop();
  }

  // Phase 2: same shape with the AIMD policy attached. Warmup lets the
  // controller converge (40ms halves under the SLO within ~4 ticks), then
  // the latency window is cleared and the main run is measured clean.
  double deadline_final_s = 0.0;
  {
    rn::serve::ServerConfig scfg;
    scfg.max_batch = 16;
    scfg.batch_deadline_s = kFixedDeadlineS;
    scfg.queue_capacity = 4096;
    rn::serve::ModelRegistry registry(scfg);
    registry.install("default",
                     std::make_unique<rn::core::RouteNet>(mcfg));
    rn::serve::PolicyConfig pcfg;
    pcfg.slo_p99_s = kPolicyTargetS;
    pcfg.initial_deadline_s = kFixedDeadlineS;
    pcfg.max_deadline_s = 0.100;
    pcfg.interval_s = 0.02;  // fast ticks: converge within the warmup
    rn::obs::WindowedHistogram& window = reg.windowed("serve.latency_s");
    rn::serve::AdaptiveBatchPolicy policy(
        pcfg,
        [&window] {
          const rn::obs::WindowedHistogram::Stats w = window.stats();
          return rn::serve::AdaptiveBatchPolicy::WindowSample{w.count,
                                                             w.p99};
        },
        [&registry](double d) { registry.set_batch_deadline(d); });
    rn::serve::NetServerConfig ncfg;
    rn::serve::NetServer server(registry, ncfg, &policy);
    server.start();
    run_load("warmup", server.address(), pool, kWarmup, kClients);
    window.reset();
    results.push_back(
        run_load("adaptive", server.address(), pool, kMain, kClients));
    print_phase(results.back());
    deadline_final_s = registry.batch_deadline_s();
    server.stop();
  }

  // Phase 3: overload. Two queue slots, single-request batches, 16 clients:
  // backpressure must reject, the server must keep serving, and a fresh
  // probe after the storm must succeed.
  bool probe_ok = false;
  {
    rn::serve::ServerConfig scfg;
    scfg.max_batch = 1;
    scfg.batch_deadline_s = 0.0;
    scfg.queue_capacity = 2;
    scfg.workers = 1;
    rn::serve::ModelRegistry registry(scfg);
    registry.install("default",
                     std::make_unique<rn::core::RouteNet>(mcfg));
    rn::serve::NetServerConfig ncfg;
    rn::serve::NetServer server(registry, ncfg);
    server.start();
    results.push_back(
        run_load("overload", server.address(), pool, kOverload, 16));
    print_phase(results.back());
    try {
      rn::serve::NetClient probe(server.address());
      probe_ok = !probe.predict("default", pool[0]).delay_s.empty();
    } catch (const std::exception& e) {
      std::printf("post-overload probe failed: %s\n", e.what());
    }
    server.stop();
  }

  const PhaseResult& fixed = results[0];
  const PhaseResult& adaptive = results[1];
  const PhaseResult& overload = results[2];
  const bool fixed_breaches = fixed.p99_s > kSloP99S;
  const bool adaptive_holds =
      adaptive.p99_s <= kSloP99S && adaptive.failed == 0 &&
      adaptive.ok == static_cast<std::uint64_t>(adaptive.requests);
  const bool overload_bounded = overload.rejected > 0 && overload.ok > 0 &&
                                overload.failed == 0 && probe_ok;
  reg.gauge("bench.serving_net.fixed_p99_s").set(fixed.p99_s);
  reg.gauge("bench.serving_net.adaptive_p99_s").set(adaptive.p99_s);
  reg.gauge("bench.serving_net.deadline_final_s").set(deadline_final_s);

  std::printf("\nfixed p99 %.1fms vs SLO %.0fms: %s\n", fixed.p99_s * 1e3,
              kSloP99S * 1e3,
              fixed_breaches ? "breaches (as constructed)"
                             : "** did not breach — phase is not probing **");
  std::printf("adaptive p99 %.1fms vs SLO %.0fms (final deadline %.2fms): "
              "%s\n",
              adaptive.p99_s * 1e3, kSloP99S * 1e3, deadline_final_s * 1e3,
              adaptive_holds ? "holds" : "** SLO MISSED — regression **");
  std::printf("overload: %llu rejected / %llu served, probe %s: %s\n",
              static_cast<unsigned long long>(overload.rejected),
              static_cast<unsigned long long>(overload.ok),
              probe_ok ? "ok" : "FAILED",
              overload_bounded ? "bounded"
                               : "** backpressure contract broken **");

  const std::string path =
      rn::bench::cache_dir() + "/BENCH_serving_net.json";
  {
    std::ofstream out(path);
    if (out.good()) {
      out << "{\"bench\":\"serving_net\",\"topology\":\"ring8\""
          << ",\"transport\":\"tcp-loopback\",\"scale\":\"" << scale.name
          << "\",\"slo_p99_s\":" << rn::obs::json_number(kSloP99S)
          << ",\"threads\":" << rn::par::global_threads() << ",\"phases\":[";
      for (std::size_t i = 0; i < results.size(); ++i) {
        if (i > 0) out << ',';
        out << results[i].to_json();
      }
      out << "],\"client_latency\":{\"p50_s\":"
          << rn::obs::json_number(adaptive.p50_s)
          << ",\"p99_s\":" << rn::obs::json_number(adaptive.p99_s)
          << ",\"queue_wait_share\":"
          << rn::obs::json_number(adaptive.queue_wait_share) << '}'
          << ",\"deadline_final_s\":"
          << rn::obs::json_number(deadline_final_s)
          << ",\"fixed_breaches_slo\":" << (fixed_breaches ? "true" : "false")
          << ",\"adaptive_holds_slo\":" << (adaptive_holds ? "true" : "false")
          << ",\"overload_bounded\":" << (overload_bounded ? "true" : "false")
          << ",\"telemetry\":" << reg.snapshot().to_json() << "}\n";
    }
  }
  std::printf("telemetry -> %s\n", path.c_str());
  rn::obs::emit_registry_snapshot();
  rn::obs::EventSink::global().close();

  if (std::getenv("RN_BENCH_ENFORCE") != nullptr &&
      !(fixed_breaches && adaptive_holds && overload_bounded)) {
    std::printf("RN_BENCH_ENFORCE set: failing on serving-net gate\n");
    return 1;
  }
  return 0;
}
