// Fig. 4 — "Screenshot of Top-10 paths with more delay".
//
// The paper demos RouteNet for network visibility: rank the source →
// destination paths of a live scenario by predicted delay. This bench runs
// one Geant2 scenario, ranks paths by RouteNet's prediction, and prints the
// Top-10 alongside the packet-simulator reference, plus the rank overlap —
// the operator-facing question is "did the model flag the right paths?".
#include <algorithm>
#include <cstdio>
#include <set>

#include "bench_common.h"
#include "eval/export.h"
#include "eval/metrics.h"

int main(int argc, char** argv) {
  using namespace rn;
  bench::init_bench_telemetry(argc, argv);
  const bench::ExperimentScale scale = bench::scale_from_env();
  bench::PaperSetup setup = bench::load_or_train_paper_setup(scale);

  std::printf("\n=== Fig. 4: Top-10 paths with more delay (Geant2 "
              "scenario) ===\n");
  const dataset::Sample& scenario = setup.eval_geant2.back();
  const core::RouteNet::Prediction pred = setup.model.predict(scenario);
  const std::vector<eval::RankedPath> top =
      eval::top_n_paths(scenario, pred.delay_s, 10);

  std::printf("\n%4s %9s %5s %14s %14s\n", "rank", "path", "hops",
              "pred delay(ms)", "sim delay(ms)");
  for (std::size_t i = 0; i < top.size(); ++i) {
    std::printf("%4zu %4d->%-4d %5d %14.3f %14.3f\n", i + 1, top[i].src,
                top[i].dst, top[i].hops, top[i].predicted_delay_s * 1e3,
                top[i].true_delay_s * 1e3);
  }

  // Rank-overlap score: how many of the predicted Top-10 are in the
  // simulator's true Top-10.
  std::vector<double> truth;
  for (int idx = 0; idx < scenario.num_pairs(); ++idx) {
    truth.push_back(scenario.valid[static_cast<std::size_t>(idx)]
                        ? scenario.delay_s[static_cast<std::size_t>(idx)]
                        : 0.0);
  }
  const std::vector<eval::RankedPath> true_top =
      eval::top_n_paths(scenario, truth, 10);
  std::set<std::pair<int, int>> predicted_set, true_set;
  for (const eval::RankedPath& p : top) predicted_set.insert({p.src, p.dst});
  for (const eval::RankedPath& p : true_top) true_set.insert({p.src, p.dst});
  int overlap = 0;
  for (const auto& key : predicted_set) overlap += true_set.count(key);
  std::printf("\nTop-10 overlap with simulator ground truth: %d/10\n",
              overlap);
  const std::string csv = bench::cache_dir() + "/fig4_top_paths.csv";
  eval::write_top_paths_csv(csv, top);
  std::printf("table written to %s\n", csv.c_str());
  std::printf("paper shape check: the predicted worst paths are "
              "(mostly) the true worst paths, enabling visibility/planning "
              "without running the simulator.\n");
  bench::finish_bench_telemetry("fig4_top_paths", scale);
  return 0;
}
