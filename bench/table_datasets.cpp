// §2.1 dataset-composition table.
//
// The paper: "we train RouteNet to estimate delays on a dataset with
// 480,000 samples ... two topologies: 14-node NSFNET and a 50-node
// synthetically-generated topology ... evaluation dataset contains 120,000
// unseen samples ... separate evaluation over 300,000 samples simulated in
// a third topology with 24 nodes (Geant2)."
//
// This bench regenerates the dataset matrix at the configured scale and
// prints, per topology: sample counts, topology shape, routing variety
// (distinct schemes), traffic-intensity range, simulated-packet volume, and
// target statistics — the information the paper's table/paragraph conveys.
#include <algorithm>
#include <cstdio>
#include <set>

#include "bench_common.h"
#include "util/stats.h"

namespace {

struct DatasetReport {
  const char* role;
  const char* topo_name;
  int nodes = 0;
  int links = 0;
  std::size_t samples = 0;
  std::size_t distinct_routings = 0;
  double min_util = 1.0, max_util = 0.0;
  double mean_delay_ms = 0.0;
  double mean_valid_frac = 0.0;
};

DatasetReport report_for(const char* role,
                         const std::vector<rn::dataset::Sample>& set) {
  DatasetReport r{};
  r.role = role;
  RN_CHECK(!set.empty(), "empty dataset in report");
  r.topo_name = set.front().topology->name() == "nsfnet" ? "NSFNET"
                : set.front().topology->name() == "geant2" ? "Geant2"
                                                           : "synthetic";
  r.nodes = set.front().topology->num_nodes();
  r.links = set.front().topology->num_links();
  r.samples = set.size();
  std::set<std::size_t> routing_hashes;
  rn::Welford delays;
  double valid_frac = 0.0;
  for (const rn::dataset::Sample& s : set) {
    std::size_t h = 1469598103934665603ull;
    for (int idx = 0; idx < s.num_pairs(); ++idx) {
      for (int link : s.routing.path_by_index(idx)) {
        h = (h ^ static_cast<std::size_t>(link + 1)) * 1099511628211ull;
      }
    }
    routing_hashes.insert(h);
    r.min_util = std::min(r.min_util, s.max_link_utilization);
    r.max_util = std::max(r.max_util, s.max_link_utilization);
    int valid = 0;
    for (int idx = 0; idx < s.num_pairs(); ++idx) {
      if (!s.valid[static_cast<std::size_t>(idx)]) continue;
      ++valid;
      delays.add(s.delay_s[static_cast<std::size_t>(idx)]);
    }
    valid_frac += static_cast<double>(valid) / s.num_pairs();
  }
  r.distinct_routings = routing_hashes.size();
  r.mean_delay_ms = delays.mean() * 1e3;
  r.mean_valid_frac = valid_frac / static_cast<double>(set.size());
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rn;
  bench::init_bench_telemetry(argc, argv);
  const bench::ExperimentScale scale = bench::scale_from_env();
  const dataset::GeneratorConfig gcfg = bench::paper_generator_config(scale);

  std::printf("=== Dataset composition (paper 480k/120k/300k, scaled to "
              "'%s') ===\n", scale.name.c_str());
  std::printf("generator: k=%d shortest paths per pair, max-link utilization "
              "in [%.2f, %.2f], ~%.0f pkts/flow, matrix kinds "
              "{uniform, gravity, hotspot}\n\n",
              gcfg.k_paths, gcfg.min_util, gcfg.max_util,
              gcfg.target_pkts_per_flow);

  dataset::DatasetGenerator train_gen(gcfg, 101);
  dataset::DatasetGenerator eval_gen(gcfg, 202);
  std::vector<DatasetReport> rows;
  rows.push_back(report_for(
      "train", train_gen.generate_many(bench::nsfnet_topology(),
                                       scale.train_nsfnet)));
  rows.push_back(report_for(
      "train", train_gen.generate_many(bench::syn50_topology(),
                                       scale.train_syn50)));
  rows.push_back(report_for(
      "eval ", eval_gen.generate_many(bench::nsfnet_topology(),
                                      scale.eval_nsfnet)));
  rows.push_back(report_for(
      "eval ", eval_gen.generate_many(bench::syn50_topology(),
                                      scale.eval_syn50)));
  rows.push_back(report_for(
      "eval*", eval_gen.generate_many(bench::geant2_topology(),
                                      scale.eval_geant2)));

  std::printf("%-6s %-10s %6s %6s %8s %9s %13s %12s %8s\n", "role", "topology",
              "nodes", "links", "samples", "routings", "util range",
              "mean delay", "valid%");
  for (const DatasetReport& r : rows) {
    std::printf("%-6s %-10s %6d %6d %8zu %9zu  [%.2f, %.2f] %9.2f ms %7.1f%%\n",
                r.role, r.topo_name, r.nodes, r.links, r.samples,
                r.distinct_routings, r.min_util, r.max_util, r.mean_delay_ms,
                100.0 * r.mean_valid_frac);
  }
  std::printf("\n(eval* = Geant2, the topology NEVER seen in training; the "
              "paper's generalization test)\n");
  bench::finish_bench_telemetry("table_datasets", scale);
  return 0;
}
