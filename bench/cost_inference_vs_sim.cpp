// §1 motivation — "packet-level simulators produce accurate KPI predictions
// at the expense of high computational cost ... RouteNet [is] a
// cost-effective alternative".
//
// google-benchmark microbench: per-scenario wall time of
//   (a) RouteNet inference,
//   (b) the packet-level simulator (the accuracy reference), and
//   (c) the analytic M/G/1 baseline,
// across the paper's three topology sizes. The paper's shape: the GNN costs
// orders of magnitude less than simulation and is roughly flat in traffic
// volume, while simulation cost grows with the number of packets.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.h"
#include "queueing/queueing.h"
#include "sim/simulator.h"

namespace {

using namespace rn;

struct Scenario {
  std::shared_ptr<const topo::Topology> topology;
  routing::RoutingScheme scheme;
  traffic::TrafficMatrix tm;
  dataset::Sample as_sample() const {
    dataset::Sample s{topology, scheme, tm, {}, {}, {}, 0.0};
    const int pairs = topology->num_pairs();
    s.delay_s.assign(static_cast<std::size_t>(pairs), 0.0);
    s.jitter_s.assign(static_cast<std::size_t>(pairs), 0.0);
    s.valid.assign(static_cast<std::size_t>(pairs), 1);
    return s;
  }
};

Scenario make_scenario(std::shared_ptr<const topo::Topology> topology,
                       std::uint64_t seed) {
  Rng rng(seed);
  routing::RoutingScheme scheme =
      routing::random_k_shortest_routing(*topology, 3, rng);
  traffic::TrafficMatrix tm =
      traffic::uniform_traffic(topology->num_nodes(), 50.0, 150.0, rng);
  traffic::scale_to_max_utilization(tm, *topology, scheme, 0.6);
  return Scenario{std::move(topology), std::move(scheme), std::move(tm)};
}

Scenario scenario_for(int which) {
  switch (which) {
    case 0:
      return make_scenario(bench::nsfnet_topology(), 1);
    case 1:
      return make_scenario(bench::geant2_topology(), 2);
    default:
      return make_scenario(bench::syn50_topology(), 3);
  }
}

const char* name_for(int which) {
  switch (which) {
    case 0: return "nsfnet14";
    case 1: return "geant2_24";
    default: return "synthetic50";
  }
}

core::RouteNet& shared_model() {
  static core::RouteNet model = [] {
    core::RouteNet m(bench::paper_model_config());
    dataset::Normalizer norm;
    norm.capacity_scale = 1.0 / 40'000.0;
    norm.traffic_scale = 1.0 / 100.0;
    norm.log_delay_mean = -3.0;
    norm.log_delay_std = 1.0;
    m.set_normalizer(norm);  // weights irrelevant for cost measurement
    return m;
  }();
  return model;
}

void BM_RouteNetInference(benchmark::State& state) {
  const Scenario sc = scenario_for(static_cast<int>(state.range(0)));
  const dataset::Sample sample = sc.as_sample();
  core::RouteNet& model = shared_model();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(sample));
  }
  state.SetLabel(name_for(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_RouteNetInference)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

// Second arg: target packets per flow. ~100 gives ±10%-noisy per-path
// means (what our fast dataset generation uses); ~1000 approaches the
// statistical confidence a paper-grade simulation run needs. GNN inference
// cost is independent of this fidelity knob — that asymmetry is the
// cost-effectiveness argument.
void BM_PacketSimulator(benchmark::State& state) {
  const Scenario sc = scenario_for(static_cast<int>(state.range(0)));
  sim::SimConfig cfg;
  cfg.warmup_s = 1.0;
  cfg.horizon_s = sim::horizon_for_target_packets(
      sc.tm, cfg.model, cfg.warmup_s,
      static_cast<double>(state.range(1)));
  const sim::PacketSimulator simulator(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.run(*sc.topology, sc.scheme, sc.tm));
  }
  state.SetLabel(std::string(name_for(static_cast<int>(state.range(0)))) +
                 "/pkts=" + std::to_string(state.range(1)));
}
BENCHMARK(BM_PacketSimulator)
    ->Args({0, 100})->Args({1, 100})->Args({2, 100})
    ->Args({0, 1000})->Args({1, 1000})->Args({2, 1000})
    ->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_QueueingAnalytic(benchmark::State& state) {
  const Scenario sc = scenario_for(static_cast<int>(state.range(0)));
  const queueing::QueueingPredictor predictor{traffic::TrafficModel{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        predictor.predict(*sc.topology, sc.scheme, sc.tm));
  }
  state.SetLabel(name_for(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_QueueingAnalytic)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
