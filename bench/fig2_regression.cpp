// Fig. 2 — "Regression plot in a sample scenario of Geant2".
//
// Trains RouteNet on NSFNET(14) + synthetic(50) samples, then predicts the
// per-path delays of one unseen Geant2 scenario and prints the regression:
// (true, predicted) pairs, Pearson r / R² / MRE, and an ASCII scatter with
// the y=x diagonal. The paper's claim is that the points hug the diagonal on
// a topology RouteNet never saw in training.
#include <cstdio>

#include "bench_common.h"
#include "eval/export.h"
#include "eval/metrics.h"

int main(int argc, char** argv) {
  using namespace rn;
  bench::init_bench_telemetry(argc, argv);
  const bench::ExperimentScale scale = bench::scale_from_env();
  bench::PaperSetup setup = bench::load_or_train_paper_setup(scale);

  std::printf("\n=== Fig. 2: regression on one unseen Geant2 scenario ===\n");
  const dataset::Sample& scenario = setup.eval_geant2.front();
  const core::RouteNet::Prediction pred = setup.model.predict(scenario);

  std::vector<double> truth_v, pred_v;
  for (int idx = 0; idx < scenario.num_pairs(); ++idx) {
    if (!scenario.valid[static_cast<std::size_t>(idx)]) continue;
    truth_v.push_back(scenario.delay_s[static_cast<std::size_t>(idx)]);
    pred_v.push_back(pred.delay_s[static_cast<std::size_t>(idx)]);
  }
  const eval::RegressionStats stats = eval::regression_stats(truth_v, pred_v);

  std::printf("scenario: Geant2 (24 nodes), %zu valid paths, "
              "max offered utilization %.2f\n",
              truth_v.size(), scenario.max_link_utilization);
  std::printf("\n%6s %10s %10s %8s\n", "path#", "true(ms)", "pred(ms)",
              "rel.err");
  for (std::size_t i = 0; i < truth_v.size(); i += truth_v.size() / 20 + 1) {
    std::printf("%6zu %10.3f %10.3f %+8.3f\n", i, truth_v[i] * 1e3,
                pred_v[i] * 1e3, (pred_v[i] - truth_v[i]) / truth_v[i]);
  }
  std::printf("\nPearson r = %.4f   R^2 = %.4f   MRE = %.4f   "
              "median RE = %.4f\n",
              stats.pearson_r, stats.r2, stats.mre, stats.median_re);
  const std::string csv = bench::cache_dir() + "/fig2_regression.csv";
  eval::write_regression_csv(csv, truth_v, pred_v);
  std::printf("\nfull series written to %s\n", csv.c_str());
  std::printf("\n%s\n", eval::ascii_scatter(truth_v, pred_v).c_str());
  // Diagnostic: where does the error live? Bucket all Geant2 eval paths by
  // the max offered utilization along the path.
  std::printf("error vs. load (all Geant2 eval samples):\n");
  std::printf("%16s %8s %8s\n", "max path util", "paths", "MRE");
  const std::vector<eval::UtilizationBucket> buckets =
      eval::error_by_utilization(
          setup.eval_geant2, [&](const dataset::Sample& s) {
            return setup.model.predict(s).delay_s;
          });
  for (const eval::UtilizationBucket& b : buckets) {
    if (b.paths == 0) continue;
    std::printf("  [%.2f, %.2f) %9zu %8.3f\n", b.lo, b.hi, b.paths, b.mre);
  }
  std::printf("\npaper shape check: points concentrate on the y=x diagonal "
              "on a topology unseen during training.\n");
  bench::finish_bench_telemetry("fig2_regression", scale);
  return 0;
}
