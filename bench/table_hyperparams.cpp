// §2.1 hyperparameter table — "We use the original implementation of
// RouteNet and optimize a set of hyperparameters to adapt the model to
// scenarios with larger topologies and more complex routing schemes."
//
// Ablation sweep over the knobs that matter for larger topologies: hidden
// state dimension, message-passing iterations T, and learning rate. Each
// configuration trains on NSFNET(14) scenarios and is scored by delay MRE
// on GBN(17) — a topology (and size) never seen in training — regenerating
// the kind of sweep the authors ran when retuning RouteNet.
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/trainer.h"
#include "topology/generators.h"

namespace {

struct SweepPoint {
  int state_dim;
  int iterations;
  float lr;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rn;
  bench::init_bench_telemetry(argc, argv);
  const bench::ExperimentScale scale = bench::scale_from_env();
  const bool quick = scale.name == "quick";

  dataset::GeneratorConfig gcfg = bench::paper_generator_config(scale);
  gcfg.target_pkts_per_flow = quick ? 60.0 : 100.0;
  dataset::DatasetGenerator gen(gcfg, 31);
  auto nsf = bench::nsfnet_topology();
  auto gbn = std::make_shared<const topo::Topology>(topo::gbn());
  const int train_n = quick ? 10 : 28;
  const int eval_n = quick ? 3 : 6;
  std::printf("generating %d NSFNET train + %d GBN eval scenarios...\n",
              train_n, eval_n);
  const std::vector<dataset::Sample> train = gen.generate_many(nsf, train_n);
  const std::vector<dataset::Sample> eval = gen.generate_many(gbn, eval_n);

  const std::vector<SweepPoint> sweep = {
      {8, 4, 4e-3f},  {16, 1, 4e-3f}, {16, 2, 4e-3f}, {16, 4, 4e-3f},
      {16, 8, 4e-3f}, {32, 8, 4e-3f}, {32, 8, 1e-3f}, {32, 8, 1e-2f},
  };

  std::printf("\n=== Hyperparameter sweep (train NSFNET-14, eval GBN-17 "
              "unseen) ===\n");
  std::printf("%10s %6s %9s %12s %12s %10s\n", "state dim", "T", "lr",
              "train loss", "eval MRE", "params");
  for (const SweepPoint& pt : sweep) {
    core::RouteNetConfig mcfg;
    mcfg.link_state_dim = pt.state_dim;
    mcfg.path_state_dim = pt.state_dim;
    mcfg.iterations = pt.iterations;
    mcfg.readout_hidden = 2 * pt.state_dim;
    core::RouteNet model(mcfg);
    core::TrainConfig tcfg;
    tcfg.epochs = quick ? 8 : 15;
    tcfg.batch_size = 4;
    tcfg.learning_rate = pt.lr;
    core::Trainer trainer(model, tcfg);
    const core::TrainReport report = trainer.fit(train);
    const double mre = core::Trainer::evaluate_delay_mre(model, eval);
    std::printf("%10d %6d %9.0e %12.5f %12.4f %10zu\n", pt.state_dim,
                pt.iterations, static_cast<double>(pt.lr),
                report.final_train_loss, mre, model.num_parameters());
    std::fflush(stdout);
  }
  std::printf("\npaper shape check: a single message-passing iteration "
              "underfits; the tuned setting (wide state, T>=4) generalizes "
              "best to the unseen, larger topology.\n");
  bench::finish_bench_telemetry("table_hyperparams", scale);
  return 0;
}
