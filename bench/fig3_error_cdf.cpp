// Fig. 3 — "Cumulative Distribution Function (CDF) of the relative error".
//
// Evaluates the trained model on unseen samples from all three topologies
// (NSFNET-14, synthetic-50, Geant2-24) and prints the CDF of the signed
// relative error (pred − true)/true per topology: a percentile table plus an
// overlaid ASCII CDF. The paper's shape: all three curves rise steeply
// around 0, with the unseen Geant2 only slightly wider.
#include <cstdio>

#include "bench_common.h"
#include "eval/export.h"
#include "eval/metrics.h"
#include "util/stats.h"

namespace {

std::vector<double> errors_for(const rn::core::RouteNet& model,
                               const std::vector<rn::dataset::Sample>& set) {
  const rn::eval::PairedSeries series = rn::eval::collect_delay_pairs(
      set, [&](const rn::dataset::Sample& s) {
        return model.predict(s).delay_s;
      });
  return rn::eval::relative_errors(series.truth, series.pred);
}

// Same but for the jitter head (valid paths with positive measured jitter).
std::vector<double> jitter_errors_for(
    const rn::core::RouteNet& model,
    const std::vector<rn::dataset::Sample>& set) {
  std::vector<double> truth, pred;
  for (const rn::dataset::Sample& s : set) {
    const rn::core::RouteNet::Prediction p = model.predict(s);
    for (int idx = 0; idx < s.num_pairs(); ++idx) {
      if (!s.valid[static_cast<std::size_t>(idx)]) continue;
      const double j = s.jitter_s[static_cast<std::size_t>(idx)];
      if (j <= 0.0) continue;
      truth.push_back(j);
      pred.push_back(p.jitter_s[static_cast<std::size_t>(idx)]);
    }
  }
  return rn::eval::relative_errors(truth, pred);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rn;
  bench::init_bench_telemetry(argc, argv);
  const bench::ExperimentScale scale = bench::scale_from_env();
  bench::PaperSetup setup = bench::load_or_train_paper_setup(scale);

  std::printf("\n=== Fig. 3: CDF of relative error over the three "
              "evaluation sets ===\n");
  struct Row {
    const char* name;
    std::vector<double> errs;
  };
  std::vector<Row> rows;
  rows.push_back({"NSFNET-14 (seen size)",
                  errors_for(setup.model, setup.eval_nsfnet)});
  rows.push_back({"synthetic-50 (seen size)",
                  errors_for(setup.model, setup.eval_syn50)});
  rows.push_back({"Geant2-24 (UNSEEN topology)",
                  errors_for(setup.model, setup.eval_geant2)});

  std::printf("\n%-28s %7s %8s %8s %8s %8s %8s\n", "evaluation set", "paths",
              "p10", "p25", "p50", "p75", "p90");
  for (const Row& row : rows) {
    std::printf("%-28s %7zu %+8.3f %+8.3f %+8.3f %+8.3f %+8.3f\n", row.name,
                row.errs.size(), quantile(row.errs, 0.10),
                quantile(row.errs, 0.25), quantile(row.errs, 0.50),
                quantile(row.errs, 0.75), quantile(row.errs, 0.90));
  }

  std::vector<eval::NamedCdf> cdfs;
  for (const Row& row : rows) {
    cdfs.push_back({row.name, eval::empirical_cdf(row.errs, 101)});
  }
  const std::string csv = bench::cache_dir() + "/fig3_error_cdf.csv";
  eval::write_cdf_csv(csv, cdfs);
  std::printf("\nfull CDFs written to %s\n", csv.c_str());
  std::printf("\n%s\n", eval::ascii_cdf(cdfs).c_str());
  std::printf("paper shape check: all three CDFs rise sharply near 0; the "
              "unseen Geant2 curve stays close to the seen-topology "
              "curves.\n");

  // The model estimates jitter in the same forward pass (the paper's model
  // is a "delay and jitter" estimator); report its error quantiles too.
  std::printf("\n--- jitter head (same model, same pass) ---\n");
  std::printf("%-28s %8s %8s %8s\n", "evaluation set", "p25", "p50", "p75");
  for (const auto& [name, set] :
       {std::pair<const char*, const std::vector<dataset::Sample>*>{
            "NSFNET-14", &setup.eval_nsfnet},
        std::pair<const char*, const std::vector<dataset::Sample>*>{
            "synthetic-50", &setup.eval_syn50},
        std::pair<const char*, const std::vector<dataset::Sample>*>{
            "Geant2-24 (unseen)", &setup.eval_geant2}}) {
    const std::vector<double> errs = jitter_errors_for(setup.model, *set);
    std::printf("%-28s %+8.3f %+8.3f %+8.3f\n", name, quantile(errs, 0.25),
                quantile(errs, 0.50), quantile(errs, 0.75));
  }
  bench::finish_bench_telemetry("fig3_error_cdf", scale);
  return 0;
}
