// Quickstart: the whole library in ~80 lines.
//
//   1. Build a topology, a routing scheme, and a traffic matrix.
//   2. Generate a small training dataset with the packet-level simulator.
//   3. Train RouteNet.
//   4. Predict delays on a brand-new scenario and compare to the simulator.
//
// Runs in well under a minute on one core.
#include <cstdio>
#include <memory>

#include "core/trainer.h"
#include "dataset/dataset.h"
#include "topology/generators.h"

int main() {
  using namespace rn;

  // 1. A 14-node NSFNET backbone. (Build your own with Topology::add_link.)
  auto topology = std::make_shared<const topo::Topology>(topo::nsfnet());
  std::printf("topology: %s — %d nodes, %d directed links\n",
              topology->name().c_str(), topology->num_nodes(),
              topology->num_links());

  // 2. Dataset: each sample draws a routing scheme (among the 3 shortest
  //    paths per pair), a traffic-matrix shape, and an intensity, then runs
  //    the packet simulator for ground-truth per-path delay and jitter.
  dataset::GeneratorConfig gen_cfg;
  gen_cfg.k_paths = 3;
  gen_cfg.target_pkts_per_flow = 80.0;
  gen_cfg.warmup_s = 1.0;
  dataset::DatasetGenerator generator(gen_cfg, /*seed=*/1);
  std::printf("generating 24 training scenarios (packet-level sim)...\n");
  std::vector<dataset::Sample> data = generator.generate_many(topology, 24);
  auto [train, test] = dataset::split_dataset(std::move(data), 0.8, 7);

  // 3. Train RouteNet (16-dim states, 4 message-passing iterations).
  core::RouteNet model(core::RouteNetConfig{});
  core::TrainConfig train_cfg;
  train_cfg.epochs = 15;
  train_cfg.batch_size = 4;
  train_cfg.learning_rate = 4e-3f;
  train_cfg.verbose = true;
  core::Trainer trainer(model, train_cfg);
  std::printf("training RouteNet (%zu parameters)...\n",
              model.num_parameters());
  trainer.fit(train, &test);

  // 4. Predict on a held-out scenario.
  const dataset::Sample& scenario = test.front();
  const core::RouteNet::Prediction pred = model.predict(scenario);
  std::printf("\n%8s %12s %12s %9s\n", "pair", "sim delay", "prediction",
              "rel.err");
  int shown = 0;
  for (int idx = 0; idx < scenario.num_pairs() && shown < 10; ++idx) {
    if (!scenario.valid[static_cast<std::size_t>(idx)]) continue;
    const auto [src, dst] =
        topo::pair_from_index(idx, topology->num_nodes());
    const double truth = scenario.delay_s[static_cast<std::size_t>(idx)];
    const double est = pred.delay_s[static_cast<std::size_t>(idx)];
    std::printf("%4d->%-3d %9.3f ms %9.3f ms %+9.3f\n", src, dst,
                truth * 1e3, est * 1e3, (est - truth) / truth);
    ++shown;
  }
  const double mre = core::Trainer::evaluate_delay_mre(model, test);
  std::printf("\nheld-out mean relative error: %.3f\n", mre);
  std::printf("model.save(\"routenet.model\") / RouteNet::load(...) to "
              "persist.\n");
  return 0;
}
