// The paper's demo, end to end: train RouteNet on two topologies (14-node
// NSFNET and a 50-node synthetic graph), then predict delays on Geant2 —
// a 24-node topology the model has NEVER seen — and compare against the
// packet-level simulator.
//
// This is the CLI equivalent of the interactive Jupyter notebook the
// authors present (§3). Scale knobs keep it minutes-long on one core; pass
// --quick for a faster, smaller run.
#include <cstdio>
#include <cstring>
#include <memory>

#include "core/trainer.h"
#include "eval/metrics.h"
#include "topology/generators.h"

int main(int argc, char** argv) {
  using namespace rn;
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const int train_nsf = quick ? 12 : 36;
  const int train_syn = quick ? 3 : 8;
  const int eval_n = quick ? 3 : 8;
  const int epochs = quick ? 8 : 14;

  auto nsf = std::make_shared<const topo::Topology>(topo::nsfnet());
  Rng ba_rng(50);
  auto syn50 = std::make_shared<const topo::Topology>(
      topo::synthetic_ba(50, 2, ba_rng));
  auto geant = std::make_shared<const topo::Topology>(topo::geant2());

  dataset::GeneratorConfig gcfg;
  gcfg.k_paths = 3;
  gcfg.target_pkts_per_flow = quick ? 60.0 : 100.0;
  gcfg.warmup_s = 1.0;
  dataset::DatasetGenerator gen(gcfg, 11);

  std::printf("== training set: %d NSFNET(14) + %d synthetic(50) "
              "scenarios ==\n", train_nsf, train_syn);
  std::vector<dataset::Sample> train = gen.generate_many(
      nsf, train_nsf, [](int i, int n) {
        if (i % 8 == 0 || i == n) std::printf("  nsfnet %d/%d\n", i, n);
      });
  {
    std::vector<dataset::Sample> syn = gen.generate_many(
        syn50, train_syn, [](int i, int n) {
          std::printf("  syn50 %d/%d\n", i, n);
        });
    for (dataset::Sample& s : syn) train.push_back(std::move(s));
  }

  core::RouteNet model(core::RouteNetConfig{});
  core::TrainConfig tcfg;
  tcfg.epochs = epochs;
  tcfg.batch_size = 4;
  tcfg.learning_rate = 4e-3f;
  tcfg.lr_decay = 0.92f;
  tcfg.verbose = true;
  core::Trainer trainer(model, tcfg);
  std::printf("== training RouteNet (%zu parameters) ==\n",
              model.num_parameters());
  trainer.fit(train);

  std::printf("\n== evaluating on %d UNSEEN Geant2(24) scenarios ==\n",
              eval_n);
  const std::vector<dataset::Sample> unseen = gen.generate_many(geant, eval_n);
  const eval::PairedSeries series = eval::collect_delay_pairs(
      unseen,
      [&](const dataset::Sample& s) { return model.predict(s).delay_s; });
  const eval::RegressionStats stats =
      eval::regression_stats(series.truth, series.pred);
  std::printf("paths evaluated: %zu\n", series.truth.size());
  std::printf("Pearson r = %.4f   R^2 = %.4f   MRE = %.4f   "
              "median RE = %.4f\n",
              stats.pearson_r, stats.r2, stats.mre, stats.median_re);
  std::printf("\n%s\n",
              eval::ascii_scatter(series.truth, series.pred).c_str());
  std::printf("RouteNet was never trained on a 24-node graph — the dynamic "
              "message-passing architecture generalizes across topology "
              "sizes.\n");
  return 0;
}
