// QoS scheduling extension: what the packet simulator's per-link
// disciplines do to a latency-sensitive traffic class.
//
// Scenario: on the GBN backbone, 20% of flows are "voice" (class 0) and the
// rest "bulk" (class 1), all sharing the same links at high utilization.
// We run the identical scenario under FIFO, strict priority, and deficit
// round robin, and report per-class mean delay — the substrate a
// QoS-aware RouteNet variant (the authors' follow-up direction) would be
// trained on.
#include <cstdio>
#include <memory>

#include "sim/simulator.h"
#include "topology/generators.h"
#include "util/stats.h"

namespace {

using namespace rn;

struct ClassStats {
  Welford voice;
  Welford bulk;
};

ClassStats per_class_delay(const sim::SimResult& res,
                           const std::function<int(int)>& cls) {
  ClassStats out;
  for (std::size_t idx = 0; idx < res.paths.size(); ++idx) {
    const sim::PathStats& ps = res.paths[idx];
    if (ps.delivered < 10) continue;
    if (cls(static_cast<int>(idx)) == 0) {
      out.voice.add(ps.mean_delay_s);
    } else {
      out.bulk.add(ps.mean_delay_s);
    }
  }
  return out;
}

}  // namespace

int main() {
  auto topology = std::make_shared<const topo::Topology>(topo::gbn());
  Rng rng(3);
  const routing::RoutingScheme scheme =
      routing::random_k_shortest_routing(*topology, 2, rng);
  traffic::TrafficMatrix tm =
      traffic::gravity_traffic(topology->num_nodes(), 1e5, rng);
  traffic::scale_to_max_utilization(tm, *topology, scheme, 0.85);

  // Every 5th pair is latency-sensitive "voice".
  const auto cls = [](int pair_idx) { return pair_idx % 5 == 0 ? 0 : 1; };

  std::printf("GBN backbone, %d flows (20%% voice / 80%% bulk), max link "
              "utilization 0.85\n\n", topology->num_pairs());
  std::printf("%-22s %16s %16s %14s\n", "scheduling", "voice delay (ms)",
              "bulk delay (ms)", "voice gain");

  double fifo_voice = 0.0;
  for (const auto& [name, policy] :
       {std::pair<const char*, sim::Scheduling>{"FIFO", sim::Scheduling::kFifo},
        std::pair<const char*, sim::Scheduling>{"strict priority",
                                                sim::Scheduling::kStrictPriority},
        std::pair<const char*, sim::Scheduling>{"deficit round robin",
                                                sim::Scheduling::kDeficitRoundRobin}}) {
    sim::SimConfig cfg;
    cfg.warmup_s = 2.0;
    cfg.horizon_s = sim::horizon_for_target_packets(tm, cfg.model,
                                                    cfg.warmup_s, 300.0);
    cfg.seed = 11;
    cfg.scheduling = policy;
    cfg.num_classes = 2;
    cfg.class_of_flow = cls;
    const sim::SimResult res =
        sim::PacketSimulator(cfg).run(*topology, scheme, tm);
    const ClassStats stats = per_class_delay(res, cls);
    if (policy == sim::Scheduling::kFifo) fifo_voice = stats.voice.mean();
    std::printf("%-22s %16.3f %16.3f %+13.1f%%\n", name,
                stats.voice.mean() * 1e3, stats.bulk.mean() * 1e3,
                100.0 * (stats.voice.mean() - fifo_voice) / fifo_voice);
  }
  std::printf("\nstrict priority shields the voice class at the bulk "
              "class's expense; DRR sits in between. Generate datasets with "
              "these policies (sim::SimConfig::scheduling) to train "
              "QoS-aware models.\n");
  return 0;
}
