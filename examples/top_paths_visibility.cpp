// Network visibility (paper §3 / Fig. 4): use RouteNet predictions to
// surface the Top-N highest-delay paths of a live scenario, the kind of
// dashboard statistic the demo notebook renders — without running the
// expensive packet simulator in the loop.
//
// Flow: train a small model on Geant2 scenarios, then for a fresh scenario
// print the Top-10 report and cross-check against the simulator.
#include <cstdio>
#include <memory>

#include "core/trainer.h"
#include "eval/metrics.h"
#include "topology/generators.h"

int main() {
  using namespace rn;
  auto geant = std::make_shared<const topo::Topology>(topo::geant2());

  dataset::GeneratorConfig gcfg;
  gcfg.k_paths = 3;
  gcfg.target_pkts_per_flow = 80.0;
  gcfg.warmup_s = 1.0;
  dataset::DatasetGenerator gen(gcfg, 3);
  std::printf("generating 16 Geant2 scenarios for training...\n");
  const std::vector<dataset::Sample> train = gen.generate_many(geant, 16);

  core::RouteNet model(core::RouteNetConfig{});
  core::TrainConfig tcfg;
  tcfg.epochs = 12;
  tcfg.batch_size = 4;
  tcfg.learning_rate = 4e-3f;
  core::Trainer trainer(model, tcfg);
  std::printf("training...\n");
  trainer.fit(train);

  // A fresh scenario arrives (new routing + traffic): the operator asks
  // "which paths are hurting right now?"
  const dataset::Sample live = gen.generate(geant);
  const core::RouteNet::Prediction pred = model.predict(live);
  const std::vector<eval::RankedPath> top =
      eval::top_n_paths(live, pred.delay_s, 10);

  std::printf("\n=== Top-10 paths with more delay (predicted) ===\n");
  std::printf("%4s %10s %5s %16s %16s %9s\n", "rank", "path", "hops",
              "predicted (ms)", "simulator (ms)", "rel.err");
  for (std::size_t i = 0; i < top.size(); ++i) {
    const eval::RankedPath& p = top[i];
    std::printf("%4zu %4d->%-5d %5d %16.3f %16.3f %+9.3f\n", i + 1, p.src,
                p.dst, p.hops, p.predicted_delay_s * 1e3,
                p.true_delay_s * 1e3,
                (p.predicted_delay_s - p.true_delay_s) / p.true_delay_s);
  }

  // Also show predicted jitter for the worst path — RouteNet estimates both
  // KPIs in one pass.
  const eval::RankedPath& worst = top.front();
  const int worst_idx =
      topo::pair_index(worst.src, worst.dst, geant->num_nodes());
  std::printf("\nworst path %d->%d: predicted jitter %.3f ms (sim %.3f ms)\n",
              worst.src, worst.dst,
              pred.jitter_s[static_cast<std::size_t>(worst_idx)] * 1e3,
              live.jitter_s[static_cast<std::size_t>(worst_idx)] * 1e3);
  std::printf("\nprediction cost: one GNN forward pass vs. a full "
              "packet-level simulation per what-if.\n");
  return 0;
}
