// Network planning with a learned model (paper §3: "examples leveraging the
// predictions of RouteNet for network visibility and planning").
//
// Uses the planning::WhatIfEngine with a trained RouteNet as its predictor:
//   * rank candidate link upgrades (milliseconds per candidate, vs. a full
//     packet simulation each), then verify the winner with one simulation;
//   * rank single-link failures by predicted impact after re-routing.
#include <cstdio>
#include <memory>

#include "core/trainer.h"
#include "planning/whatif.h"
#include "sim/simulator.h"
#include "topology/generators.h"
#include "util/stats.h"

int main() {
  using namespace rn;
  auto nsf = std::make_shared<const topo::Topology>(topo::nsfnet());

  // Train on loaded scenarios — planning matters when the network is hot.
  dataset::GeneratorConfig gcfg;
  gcfg.k_paths = 2;
  gcfg.target_pkts_per_flow = 80.0;
  gcfg.warmup_s = 1.0;
  gcfg.min_util = 0.55;
  gcfg.max_util = 0.8;
  dataset::DatasetGenerator gen(gcfg, 9);
  std::printf("generating 20 loaded NSFNET scenarios for training...\n");
  const std::vector<dataset::Sample> train = gen.generate_many(nsf, 20);

  core::RouteNet model(core::RouteNetConfig{});
  core::TrainConfig tcfg;
  tcfg.epochs = 14;
  tcfg.batch_size = 4;
  tcfg.learning_rate = 4e-3f;
  core::Trainer trainer(model, tcfg);
  std::printf("training...\n");
  trainer.fit(train);

  // The congested scenario we must improve. Planning assumes a
  // shortest-path IGP, so the baseline routing uses the same policy the
  // failure re-router applies (comparing unlike routing policies would
  // skew the what-ifs).
  const dataset::Sample congested = gen.generate(nsf);
  planning::Scenario scenario{congested.topology,
                              routing::shortest_path_routing(*nsf),
                              congested.tm};
  traffic::scale_to_max_utilization(scenario.tm, *nsf, scenario.routing,
                                    0.75);
  const planning::PredictDelaysFn predictor =
      [&model](const planning::Scenario& sc) {
        return model.predict(planning::scenario_to_sample(sc)).delay_s;
      };
  const planning::WhatIfEngine engine(scenario, predictor);
  std::printf("\nbaseline mean predicted delay: %.3f ms\n",
              engine.baseline_objective() * 1e3);

  // --- Candidate upgrades ----------------------------------------------------
  std::printf("\n=== what-if: upgrade one cable to 2.5x capacity ===\n");
  std::printf("%10s %8s %18s %10s\n", "link", "util", "pred delay (ms)",
              "gain");
  const std::vector<planning::UpgradeOption> upgrades =
      engine.rank_upgrades(6, 2.5);
  for (const planning::UpgradeOption& opt : upgrades) {
    std::printf("%4d<->%-4d %8.2f %18.3f %+9.1f%%\n", opt.src, opt.dst,
                opt.utilization, opt.objective * 1e3,
                100.0 * opt.improvement);
  }

  // Verify the chosen upgrade with the packet simulator (the expensive
  // check you now only run once).
  const planning::UpgradeOption& best = upgrades.front();
  std::printf("\nchosen upgrade: %d<->%d — verifying with the packet "
              "simulator...\n", best.src, best.dst);
  planning::Scenario upgraded = scenario;
  upgraded.topology = planning::with_link_capacity_scaled(
      *scenario.topology, best.link_id, 2.5);
  sim::SimConfig scfg;
  scfg.warmup_s = 1.0;
  scfg.horizon_s = sim::horizon_for_target_packets(
      upgraded.tm, scfg.model, scfg.warmup_s, 100.0);
  const auto simulate_mean = [&scfg](const planning::Scenario& sc) {
    const sim::SimResult res = sim::PacketSimulator(scfg).run(
        *sc.topology, sc.routing, sc.tm);
    Welford acc;
    for (const sim::PathStats& ps : res.paths) {
      if (ps.delivered > 10) acc.add(ps.mean_delay_s);
    }
    return acc.mean();
  };
  std::printf("simulator verification: mean delay %.3f ms -> %.3f ms\n",
              simulate_mean(scenario) * 1e3, simulate_mean(upgraded) * 1e3);

  // --- Failure analysis -------------------------------------------------------
  std::printf("\n=== what-if: single-cable failures (re-routed) ===\n");
  std::printf("%10s %18s %14s\n", "link", "pred delay (ms)", "degradation");
  for (const planning::FailureImpact& impact : engine.rank_failures(6)) {
    if (impact.disconnects) {
      std::printf("%4d<->%-4d %18s %14s\n", impact.src, impact.dst,
                  "n/a", "partitions!");
    } else {
      std::printf("%4d<->%-4d %18.3f %+13.1f%%\n", impact.src, impact.dst,
                  impact.objective * 1e3, 100.0 * impact.degradation);
    }
  }
  std::printf("\neach row above cost one GNN forward pass; simulating all "
              "of them would take ~100x longer (see "
              "bench/cost_inference_vs_sim).\n");
  return 0;
}
