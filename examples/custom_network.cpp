// Bring your own network: define a topology in a plain-text file, a traffic
// matrix in CSV, derive routing, and model it — no C++ edits required.
//
// This example writes the three artifact files itself (so it is
// self-contained), then round-trips them through the text loaders exactly
// the way a user's own files would flow, trains a small model, and predicts.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>

#include "core/trainer.h"
#include "routing/text_io.h"
#include "topology/text_io.h"
#include "traffic/text_io.h"

int main() {
  using namespace rn;
  const std::string dir = "./custom_net_demo";
  std::filesystem::create_directories(dir);

  // --- 1. A hand-written topology file: a small ISP with a core triangle,
  //        two metro rings, and asymmetric capacities.
  const std::string topo_path = dir + "/isp.topo";
  {
    std::ofstream f(topo_path);
    f << "# toy ISP: nodes 0-2 core, 3-5 west metro, 6-8 east metro\n"
         "topology toy-isp 9\n"
         "duplex 0 1 40000\n"
         "duplex 1 2 40000\n"
         "duplex 0 2 40000\n"
         "duplex 0 3 25000\n"
         "duplex 3 4 10000\n"
         "duplex 4 5 10000\n"
         "duplex 5 0 25000\n"
         "duplex 2 6 25000\n"
         "duplex 6 7 10000\n"
         "duplex 7 8 10000\n"
         "duplex 8 2 25000\n";
  }
  auto topology = std::make_shared<const topo::Topology>(
      topo::load_topology_file(topo_path));
  std::printf("loaded %s: %d nodes, %d links\n",
              topology->name().c_str(), topology->num_nodes(),
              topology->num_links());

  // --- 2. Routing + traffic, saved and reloaded through the text formats.
  Rng rng(4);
  const routing::RoutingScheme scheme =
      routing::random_k_shortest_routing(*topology, 2, rng);
  routing::save_routing_file(dir + "/isp.routes", *topology, scheme);
  traffic::TrafficMatrix tm =
      traffic::gravity_traffic(topology->num_nodes(), 1e5, rng);
  traffic::scale_to_max_utilization(tm, *topology, scheme, 0.7);
  traffic::save_traffic_csv_file(dir + "/isp.traffic", tm);
  const routing::RoutingScheme scheme2 =
      routing::load_routing_file(dir + "/isp.routes", *topology);
  const traffic::TrafficMatrix tm2 = traffic::load_traffic_csv_file(
      dir + "/isp.traffic", topology->num_nodes());
  std::printf("routing (k=2) and gravity traffic written to %s/\n",
              dir.c_str());

  // --- 3. Train a small model on this network's own scenarios.
  dataset::GeneratorConfig gcfg;
  gcfg.k_paths = 2;
  gcfg.target_pkts_per_flow = 80.0;
  gcfg.warmup_s = 1.0;
  dataset::DatasetGenerator gen(gcfg, 8);
  std::printf("generating 16 training scenarios...\n");
  const std::vector<dataset::Sample> train = gen.generate_many(topology, 16);
  core::RouteNetConfig mcfg;
  mcfg.link_state_dim = 16;
  mcfg.path_state_dim = 16;
  mcfg.iterations = 4;
  core::RouteNet model(mcfg);
  core::TrainConfig tcfg;
  tcfg.epochs = 12;
  tcfg.batch_size = 4;
  tcfg.learning_rate = 4e-3f;
  core::Trainer trainer(model, tcfg);
  trainer.fit(train);

  // --- 4. Predict the loaded scenario.
  dataset::Sample scenario{topology, scheme2, tm2, {}, {}, {}, 0.7};
  const int pairs = topology->num_pairs();
  scenario.delay_s.assign(static_cast<std::size_t>(pairs), 0.0);
  scenario.jitter_s.assign(static_cast<std::size_t>(pairs), 0.0);
  scenario.valid.assign(static_cast<std::size_t>(pairs), 1);
  const core::RouteNet::Prediction pred = model.predict(scenario);

  // Metro-to-metro flows cross the whole core — they should dominate.
  std::printf("\npredicted delay, sample pairs:\n");
  for (const auto& [s, d] : std::vector<std::pair<int, int>>{
           {4, 7}, {3, 8}, {0, 1}, {3, 4}}) {
    const int idx = topo::pair_index(s, d, topology->num_nodes());
    std::printf("  %d -> %d  (%zu hops): %8.3f ms\n", s, d,
                scheme2.path(s, d).size(),
                pred.delay_s[static_cast<std::size_t>(idx)] * 1e3);
  }
  std::printf("\nartifacts kept in %s/ — edit isp.topo / isp.traffic and "
              "rerun, or feed them to the `routenet` CLI.\n", dir.c_str());
  return 0;
}
