// routenet — command-line interface to the library.
//
//   routenet make-topology --kind geant2 --out net.topo
//   routenet make-routing  --topology net.topo --k 3 --seed 2 --out net.routes
//   routenet make-traffic  --topology net.topo --routing net.routes
//                          --kind gravity --util 0.7 --out net.traffic
//   routenet simulate      --topology net.topo --routing net.routes
//                          --traffic net.traffic --out sim.csv
//   routenet gen-dataset   --topology nsfnet --count 100 --out train.ds
//   routenet train         --dataset train.ds --eval eval.ds --out net.model
//                          [--ckpt-state run.ckpt --ckpt-every 50
//                           --ckpt-keep 3 --resume run.ckpt]
//   routenet eval          --model net.model --dataset eval.ds
//   routenet predict       --model net.model --topology net.topo
//                          --routing net.routes --traffic net.traffic --top 10
//   routenet whatif        --model net.model --topology net.topo
//                          --routing net.routes --traffic net.traffic
//   routenet info          --model net.model
//   routenet obs summarize m.jsonl
//
// Every flag command also accepts --metrics-out PATH (or the RN_METRICS_OUT
// env var) to stream JSONL telemetry; "-" streams to stderr. --threads N
// (or RN_THREADS) sets the worker-pool width for dataset generation and
// the training kernels; the default is one thread per hardware core.
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "commands.h"
#include "obs/event.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "par/thread_pool.h"

namespace {

int usage() {
  std::printf(
      "routenet — RouteNet GNN network modeling toolkit\n\n"
      "commands:\n"
      "  make-topology  build a named or synthetic topology file\n"
      "  make-routing   derive a (k-)shortest-path routing file\n"
      "  make-traffic   draw a traffic matrix at a target utilization\n"
      "  simulate       run the packet-level simulator on a scenario\n"
      "  gen-dataset    generate a labeled training/eval dataset\n"
      "  dataset        sharded RNDS1 corpus pipeline:\n"
      "                 `dataset gen --count TOTAL --shard I/N --out F`\n"
      "                 generates exactly the index range shard I of N\n"
      "                 owns (CRC-indexed, atomically written; N merged\n"
      "                 shards are bitwise identical to one unsharded\n"
      "                 run); `dataset verify --inputs a,b,...` checks\n"
      "                 header coherence + every record CRC;\n"
      "                 `dataset merge --inputs a,b,... --out F` combines\n"
      "                 a complete shard set. `train --dataset F` streams\n"
      "                 RNDS1 files from disk instead of loading them\n"
      "  train          train RouteNet on a dataset; --ckpt-state BASE +\n"
      "                 --ckpt-every N checkpoint full training state\n"
      "                 (params, Adam moments, RNG streams, cursor) with\n"
      "                 keep-last-K rotation; --resume BASE continues a\n"
      "                 killed run to a bitwise-identical final model;\n"
      "                 SIGINT/SIGTERM save state before exiting\n"
      "  eval           report MRE / Pearson r / R^2 of a model\n"
      "  predict        per-path delay/jitter for a scenario + Top-N\n"
      "  serve          micro-batched inference server under a closed-loop\n"
      "                 load generator: --requests/--clients drive traffic;\n"
      "                 --batch-max/--batch-deadline-ms/--queue-cap tune\n"
      "                 coalescing and backpressure; workers follow\n"
      "                 --threads; --force-overflow demonstrates exact\n"
      "                 deterministic rejects. With --listen tcp:HOST:PORT\n"
      "                 (or unix:PATH) it becomes the RNP/1 network server:\n"
      "                 --models name=path,... routes by model name with\n"
      "                 hot reload, --address-file publishes the bound\n"
      "                 address, --slo-ms enables p99-adaptive batching,\n"
      "                 --read-timeout-s bounds stalled connections\n"
      "  query          RNP/1 client: --connect ADDR + a scenario for one\n"
      "                 remote predict (--top N; prints the request id and\n"
      "                 the server's queue-wait attribution),\n"
      "                 --requests/--clients for a socket load generator\n"
      "                 reporting client p50/p99 + the server's queue-wait\n"
      "                 share, --reload for a hot reload, --shutdown to\n"
      "                 drain the server\n"
      "  whatif         rank link upgrades & failures with a trained model\n"
      "  info           describe a topology / dataset / model artifact\n"
      "  obs            telemetry tools: `obs summarize <file.jsonl>`,\n"
      "                 `obs trace <trace.json> [top_n]`,\n"
      "                 `obs diff BASELINE.json CANDIDATE.json\n"
      "                 [--threshold pct]` — bench-regression gate, exits 1\n"
      "                 on regressions past the threshold (default 10%%);\n"
      "                 `obs top ADDR [--every-s N] [--count N]` — live\n"
      "                 view of a serving process over the RNP/1 stats\n"
      "                 scrape (window p99s, exemplars, counter deltas)\n\n"
      "global flags: --metrics-out PATH (or RN_METRICS_OUT) streams JSONL\n"
      "telemetry events; run `routenet obs summarize PATH` to roll it up.\n"
      "--stats-every-s S (or RN_STATS_EVERY_S) additionally emits a\n"
      "periodic `obs.snapshot` event — counter deltas, sliding-window\n"
      "latency quantiles, tracer losses — every S seconds.\n"
      "--trace-out PATH (or RN_TRACE_OUT) records hierarchical spans as\n"
      "Chrome trace-event JSON (open in Perfetto / chrome://tracing, or\n"
      "`routenet obs trace PATH`). With --resume, both files are appended\n"
      "to instead of truncated. --trace-min-us U (or RN_TRACE_MIN_US)\n"
      "records only spans at least U microseconds long; --trace-sample\n"
      "\"prefix=N[,prefix=N]\" (or RN_TRACE_SAMPLE) keeps 1 in N spans per\n"
      "name prefix. Suppressed spans are counted in the export, so\n"
      "`obs trace` stays honest about what is missing.\n"
      "--threads N (or RN_THREADS) sets the worker-pool width (default:\n"
      "one per hardware core); generation and training are bitwise\n"
      "deterministic at any thread count.\n"
      "run `routenet <command> --help` semantics: see README.md for the\n"
      "flag list of each command.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  bool resumed = false;
  try {
    if (cmd == "obs") {
      const std::vector<std::string> args(argv + 2, argv + argc);
      return rn::cli::cmd_obs(args);
    }
    // `dataset` carries a subcommand at argv[2]; its flags start after it.
    const bool is_dataset = (cmd == "dataset");
    if (is_dataset && argc < 3) {
      std::fprintf(stderr, "dataset: expected a subcommand "
                           "(gen|verify|merge)\n\n");
      return usage();
    }
    const std::vector<std::string> bool_flags = {"bursty", "force-overflow",
                                                 "reload", "shutdown"};
    const rn::cli::Flags flags(argc, argv, is_dataset ? 3 : 2, bool_flags);
    // Telemetry sink is process-global: open it before dispatch so every
    // layer (trainer, simulator, message passing) streams to one file.
    // A resumed run appends instead of truncating, so the pre-crash
    // events (and spans) survive; `peek` leaves --resume for cmd_train to
    // consume, so a stray --resume elsewhere still fails reject_unused.
    resumed = flags.peek("resume");
    rn::obs::EventSink::global().open_or_env(
        flags.get_string("metrics-out", ""), resumed);
    // Sampling must precede open_or_env: the spec is immutable once the
    // tracer is enabled.
    rn::obs::Tracer::global().configure_sampling_or_env(
        flags.get_double("trace-min-us", -1.0),
        flags.get_string("trace-sample", ""));
    rn::obs::Tracer::global().open_or_env(flags.get_string("trace-out", ""));
    rn::obs::StatsReporter::global().start_or_env(
        flags.get_double("stats-every-s", -1.0));
    // Worker threads for dataset generation and the matmul kernels:
    // --threads N beats RN_THREADS beats hardware_concurrency.
    rn::par::set_global_threads(flags.get_int("threads", 0));
    const int rc = [&]() -> int {
      if (is_dataset) return rn::cli::cmd_dataset(argv[2], flags);
      if (cmd == "make-topology") return rn::cli::cmd_make_topology(flags);
      if (cmd == "make-routing") return rn::cli::cmd_make_routing(flags);
      if (cmd == "make-traffic") return rn::cli::cmd_make_traffic(flags);
      if (cmd == "simulate") return rn::cli::cmd_simulate(flags);
      if (cmd == "gen-dataset") return rn::cli::cmd_gen_dataset(flags);
      if (cmd == "train") return rn::cli::cmd_train(flags);
      if (cmd == "eval") return rn::cli::cmd_eval(flags);
      if (cmd == "predict") return rn::cli::cmd_predict(flags);
      if (cmd == "serve") return rn::cli::cmd_serve(flags);
      if (cmd == "query") return rn::cli::cmd_query(flags);
      if (cmd == "info") return rn::cli::cmd_info(flags);
      if (cmd == "whatif") return rn::cli::cmd_whatif(flags);
      std::fprintf(stderr, "unknown command '%s'\n\n", cmd.c_str());
      return usage();
    }();
    // Drain the stats reporter (its stop() emits a final obs.snapshot)
    // before the terminal registry rollup and sink close.
    rn::obs::StatsReporter::global().stop();
    // Append the final registry rollup so `obs summarize` reports counter
    // totals and timer percentiles even without per-event reconstruction.
    rn::obs::emit_registry_snapshot();
    rn::obs::EventSink::global().close();
    rn::obs::Tracer::global().export_and_close(resumed);
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    // Spans collected up to the failure are still worth keeping — a
    // watchdog abort is exactly when the trace gets read.
    try {
      rn::obs::StatsReporter::global().stop();
      rn::obs::Tracer::global().export_and_close(resumed);
    } catch (...) {
    }
    return 1;
  }
}
