#include "flags.h"

#include <algorithm>
#include <stdexcept>

namespace rn::cli {

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::runtime_error(msg);
}

}  // namespace

Flags::Flags(int argc, const char* const* argv, int start,
             const std::vector<std::string>& bool_names) {
  for (int i = start; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0 || arg.size() <= 2) {
      fail("unexpected argument '" + arg + "' (flags look like --name value)");
    }
    const std::string name = arg.substr(2);
    const bool is_bool = std::find(bool_names.begin(), bool_names.end(),
                                   name) != bool_names.end();
    if (is_bool) {
      values_[name] = "true";
      used_[name] = false;
      continue;
    }
    if (i + 1 >= argc) fail("flag --" + name + " needs a value");
    values_[name] = argv[++i];
    used_[name] = false;
  }
}

bool Flags::has(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return false;
  used_[name] = true;
  return true;
}

bool Flags::peek(const std::string& name) const {
  return values_.find(name) != values_.end();
}

const std::string& Flags::raw(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) fail("missing required flag --" + name);
  used_[name] = true;
  return it->second;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback) const {
  return has(name) ? raw(name) : fallback;
}

std::string Flags::require_string(const std::string& name) const {
  return raw(name);
}

int Flags::get_int(const std::string& name, int fallback) const {
  if (!has(name)) return fallback;
  try {
    return std::stoi(raw(name));
  } catch (const std::exception&) {
    fail("flag --" + name + " expects an integer, got '" + raw(name) + "'");
  }
}

std::int64_t Flags::get_int64(const std::string& name,
                              std::int64_t fallback) const {
  if (!has(name)) return fallback;
  try {
    return std::stoll(raw(name));
  } catch (const std::exception&) {
    fail("flag --" + name + " expects an integer, got '" + raw(name) + "'");
  }
}

double Flags::get_double(const std::string& name, double fallback) const {
  if (!has(name)) return fallback;
  try {
    return std::stod(raw(name));
  } catch (const std::exception&) {
    fail("flag --" + name + " expects a number, got '" + raw(name) + "'");
  }
}

bool Flags::get_bool(const std::string& name) const { return has(name); }

std::uint64_t Flags::get_seed(const std::string& name,
                              std::uint64_t fallback) const {
  if (!has(name)) return fallback;
  try {
    return std::stoull(raw(name));
  } catch (const std::exception&) {
    fail("flag --" + name + " expects a seed, got '" + raw(name) + "'");
  }
}

void Flags::reject_unused() const {
  for (const auto& [name, used] : used_) {
    if (!used) fail("unknown flag --" + name);
  }
}

}  // namespace rn::cli
