#include "commands.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <thread>

#include "core/trainer.h"
#include "dataset/shard.h"
#include "dataset/stream.h"
#include "obs/diff.h"
#include "obs/event.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/window.h"
#include "serve/net.h"
#include "serve/policy.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "eval/export.h"
#include "obs/summarize.h"
#include "obs/trace.h"
#include "planning/whatif.h"
#include "eval/metrics.h"
#include "queueing/queueing.h"
#include "routing/text_io.h"
#include "sim/simulator.h"
#include "topology/generators.h"
#include "topology/text_io.h"
#include "traffic/text_io.h"
#include "util/stats.h"

namespace rn::cli {

namespace {

// Named built-in, or a topology text file.
std::shared_ptr<const topo::Topology> resolve_topology(
    const std::string& spec, std::uint64_t seed) {
  if (spec == "nsfnet") {
    return std::make_shared<const topo::Topology>(topo::nsfnet());
  }
  if (spec == "geant2") {
    return std::make_shared<const topo::Topology>(topo::geant2());
  }
  if (spec == "gbn") {
    return std::make_shared<const topo::Topology>(topo::gbn());
  }
  if (spec == "ba50") {
    Rng rng(seed);
    return std::make_shared<const topo::Topology>(
        topo::synthetic_ba(50, 2, rng));
  }
  return std::make_shared<const topo::Topology>(
      topo::load_topology_file(spec));
}

traffic::TrafficModel traffic_model_from(const Flags& flags) {
  traffic::TrafficModel model;
  if (flags.get_bool("bursty")) {
    model.arrivals = traffic::ArrivalProcess::kOnOff;
    model.on_fraction = 0.3;
    model.mean_on_s = 0.5;
    model.sizes = traffic::PacketSizeModel::kBimodal;
  }
  return model;
}

// Loads the (topology, routing, traffic) triple shared by simulate/predict.
struct Scenario {
  std::shared_ptr<const topo::Topology> topology;
  routing::RoutingScheme scheme;
  traffic::TrafficMatrix tm;
};

Scenario load_scenario(const Flags& flags) {
  auto topology =
      resolve_topology(flags.require_string("topology"), /*seed=*/1);
  routing::RoutingScheme scheme = routing::load_routing_file(
      flags.require_string("routing"), *topology);
  routing::validate_routing(*topology, scheme);
  traffic::TrafficMatrix tm = traffic::load_traffic_csv_file(
      flags.require_string("traffic"), topology->num_nodes());
  return {std::move(topology), std::move(scheme), std::move(tm)};
}

}  // namespace

int cmd_make_topology(const Flags& flags) {
  const std::string kind = flags.require_string("kind");
  const std::uint64_t seed = flags.get_seed("seed", 1);
  const int nodes = flags.get_int("nodes", 16);
  Rng rng(seed);
  topo::Topology t = [&]() -> topo::Topology {
    if (kind == "nsfnet") return topo::nsfnet();
    if (kind == "geant2") return topo::geant2();
    if (kind == "gbn") return topo::gbn();
    if (kind == "ba") {
      return topo::synthetic_ba(nodes, flags.get_int("edges", 2), rng);
    }
    if (kind == "er") {
      return topo::synthetic_er(nodes, flags.get_double("prob", 0.15), rng);
    }
    if (kind == "ring") return topo::ring(nodes);
    if (kind == "line") return topo::line(nodes);
    if (kind == "star") return topo::star(nodes - 1);
    throw std::runtime_error("unknown topology kind '" + kind + "'");
  }();
  const std::string out = flags.require_string("out");
  flags.reject_unused();
  topo::save_topology_file(out, t);
  std::printf("%s: %d nodes, %d directed links -> %s\n", t.name().c_str(),
              t.num_nodes(), t.num_links(), out.c_str());
  return 0;
}

int cmd_make_routing(const Flags& flags) {
  auto topology = resolve_topology(flags.require_string("topology"),
                                   flags.get_seed("seed", 1));
  const int k = flags.get_int("k", 1);
  Rng rng(flags.get_seed("seed", 1));
  const std::string out = flags.require_string("out");
  flags.reject_unused();
  const routing::RoutingScheme scheme =
      k <= 1 ? routing::shortest_path_routing(*topology)
             : routing::random_k_shortest_routing(*topology, k, rng);
  routing::save_routing_file(out, *topology, scheme);
  std::printf("routing for %s (k=%d): mean path length %.2f hops -> %s\n",
              topology->name().c_str(), k, scheme.mean_path_length(),
              out.c_str());
  return 0;
}

int cmd_make_traffic(const Flags& flags) {
  auto topology = resolve_topology(flags.require_string("topology"),
                                   flags.get_seed("seed", 1));
  routing::RoutingScheme scheme = routing::load_routing_file(
      flags.require_string("routing"), *topology);
  const std::string kind = flags.get_string("kind", "uniform");
  const double util = flags.get_double("util", 0.6);
  Rng rng(flags.get_seed("seed", 1));
  const std::string out = flags.require_string("out");
  flags.reject_unused();

  const int n = topology->num_nodes();
  traffic::TrafficMatrix tm = [&] {
    if (kind == "gravity") return traffic::gravity_traffic(n, 1.0e6, rng);
    if (kind == "hotspot") {
      return traffic::hotspot_traffic(n, std::max(1, n / 6), 100.0, 4.0, rng);
    }
    if (kind == "uniform") return traffic::uniform_traffic(n, 50.0, 150.0, rng);
    throw std::runtime_error("unknown traffic kind '" + kind + "'");
  }();
  traffic::scale_to_max_utilization(tm, *topology, scheme, util);
  traffic::save_traffic_csv_file(out, tm);
  std::printf("%s traffic, max link utilization %.2f, total %.1f bps -> %s\n",
              kind.c_str(), util, tm.total_rate_bps(), out.c_str());
  return 0;
}

int cmd_simulate(const Flags& flags) {
  Scenario sc = load_scenario(flags);
  sim::SimConfig cfg;
  cfg.model = traffic_model_from(flags);
  cfg.warmup_s = 1.0;
  cfg.horizon_s = sim::horizon_for_target_packets(
      sc.tm, cfg.model, cfg.warmup_s,
      flags.get_double("pkts-per-flow", 100.0));
  cfg.seed = flags.get_seed("seed", 1);
  const std::string out = flags.get_string("out", "");
  flags.reject_unused();

  const sim::SimResult res =
      sim::PacketSimulator(cfg).run(*sc.topology, sc.scheme, sc.tm);
  std::printf("simulated %.1fs of network time, %zu packets, %zu events\n",
              res.simulated_time_s, res.packets_created, res.total_events);
  std::printf("throughput %.0f events/s wall, peak queue %zu pkts, "
              "%zu delivered / %zu dropped / %zu in flight\n",
              res.events_per_wall_s, res.peak_queue_pkts,
              res.packets_delivered, res.packets_dropped,
              res.packets_in_flight);
  std::printf("path coverage (>=10 pkts): %.1f%%\n",
              100.0 * res.coverage(10));
  Welford delays;
  for (const sim::PathStats& ps : res.paths) {
    if (ps.delivered >= 10) delays.add(ps.mean_delay_s);
  }
  std::printf("mean per-path delay: %.3f ms (std %.3f ms across paths)\n",
              delays.mean() * 1e3, delays.stddev() * 1e3);
  if (!out.empty()) {
    std::ofstream csv(out);
    RN_CHECK(csv.good(), "cannot open " + out);
    csv << "src,dst,delivered,mean_delay_s,jitter_s,drops\n";
    for (int idx = 0; idx < sc.topology->num_pairs(); ++idx) {
      const auto [s, d] =
          topo::pair_from_index(idx, sc.topology->num_nodes());
      const sim::PathStats& ps = res.paths[static_cast<std::size_t>(idx)];
      csv << s << ',' << d << ',' << ps.delivered << ',' << ps.mean_delay_s
          << ',' << ps.jitter_s << ',' << ps.dropped << '\n';
    }
    std::printf("per-path results -> %s\n", out.c_str());
  }
  return 0;
}

int cmd_gen_dataset(const Flags& flags) {
  auto topology = resolve_topology(flags.require_string("topology"),
                                   flags.get_seed("seed", 1));
  dataset::GeneratorConfig cfg;
  cfg.k_paths = flags.get_int("k", 3);
  cfg.min_util = flags.get_double("min-util", 0.3);
  cfg.max_util = flags.get_double("max-util", 0.8);
  cfg.target_pkts_per_flow = flags.get_double("pkts-per-flow", 100.0);
  cfg.model = traffic_model_from(flags);
  const std::int64_t count = flags.get_int64("count", 50);
  RN_CHECK(count >= 0, "negative sample count");
  const std::uint64_t seed = flags.get_seed("seed", 1);
  const std::string out = flags.require_string("out");
  flags.reject_unused();

  dataset::DatasetGenerator gen(cfg, seed);
  const std::vector<dataset::Sample> samples = gen.generate_many(
      topology, static_cast<std::uint64_t>(count),
      [](std::uint64_t i, std::uint64_t n) {
        if (i % 10 == 0 || i == n) {
          std::printf("  %llu/%llu\n",
                      static_cast<unsigned long long>(i),
                      static_cast<unsigned long long>(n));
          std::fflush(stdout);
        }
      });
  dataset::save_dataset(out, samples);
  std::printf("%lld samples on %s -> %s\n",
              static_cast<long long>(count), topology->name().c_str(),
              out.c_str());
  return 0;
}

namespace {

// "--shard I/N": 0-based shard index out of N processes.
std::pair<std::uint32_t, std::uint32_t> parse_shard_spec(
    const std::string& spec) {
  const std::size_t slash = spec.find('/');
  RN_CHECK(slash != std::string::npos && slash > 0 && slash + 1 < spec.size(),
           "--shard expects I/N (e.g. 2/4), got '" + spec + "'");
  unsigned long i = 0;
  unsigned long n = 0;
  try {
    i = std::stoul(spec.substr(0, slash));
    n = std::stoul(spec.substr(slash + 1));
  } catch (const std::exception&) {
    RN_CHECK(false, "--shard expects I/N (e.g. 2/4), got '" + spec + "'");
  }
  RN_CHECK(n >= 1 && n <= 0xffffffffull && i < n,
           "--shard index must satisfy 0 <= I < N");
  return {static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(n)};
}

std::vector<std::string> split_comma_paths(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string item =
        csv.substr(pos, comma == std::string::npos ? std::string::npos
                                                   : comma - pos);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  RN_CHECK(!out.empty(), "--inputs expects a comma-separated file list");
  return out;
}

}  // namespace

int cmd_dataset(const std::string& sub, const Flags& flags) {
  if (sub == "gen") {
    // Flags mirror gen-dataset exactly, so `dataset gen` with the same
    // seed/config produces the same samples the legacy command does —
    // just in the RNDS1 container, and only the index range this shard
    // owns. --count is the TOTAL corpus size across all shards.
    auto topology = resolve_topology(flags.require_string("topology"),
                                     flags.get_seed("seed", 1));
    dataset::GeneratorConfig cfg;
    cfg.k_paths = flags.get_int("k", 3);
    cfg.min_util = flags.get_double("min-util", 0.3);
    cfg.max_util = flags.get_double("max-util", 0.8);
    cfg.target_pkts_per_flow = flags.get_double("pkts-per-flow", 100.0);
    cfg.model = traffic_model_from(flags);
    const std::int64_t total = flags.get_int64("count", 50);
    RN_CHECK(total >= 0, "negative sample count");
    const std::uint64_t seed = flags.get_seed("seed", 1);
    const auto [shard_index, shard_count] =
        parse_shard_spec(flags.get_string("shard", "0/1"));
    const std::string out = flags.require_string("out");
    flags.reject_unused();

    const std::uint64_t file_bytes = dataset::generate_shard(
        out, cfg, seed, topology, static_cast<std::uint64_t>(total),
        shard_index, shard_count,
        [](std::uint64_t i, std::uint64_t n) {
          if (i % 10 == 0 || i == n) {
            std::printf("  %llu/%llu\n",
                        static_cast<unsigned long long>(i),
                        static_cast<unsigned long long>(n));
            std::fflush(stdout);
          }
        });
    const std::uint64_t first = dataset::shard_first(
        static_cast<std::uint64_t>(total), shard_index, shard_count);
    const std::uint64_t last = dataset::shard_first(
        static_cast<std::uint64_t>(total), shard_index + 1, shard_count);
    std::printf("shard %u/%u: %llu samples (global [%llu, %llu)) on %s -> "
                "%s (%llu bytes)\n",
                shard_index, shard_count,
                static_cast<unsigned long long>(last - first),
                static_cast<unsigned long long>(first),
                static_cast<unsigned long long>(last),
                topology->name().c_str(), out.c_str(),
                static_cast<unsigned long long>(file_bytes));
    return 0;
  }
  if (sub == "verify") {
    const std::vector<std::string> inputs =
        split_comma_paths(flags.require_string("inputs"));
    flags.reject_unused();
    const std::vector<dataset::ShardSummary> summaries =
        dataset::verify_shards(inputs);
    std::uint64_t total = 0;
    for (const dataset::ShardSummary& s : summaries) {
      std::printf("  ok %s: shard %u/%u, %llu samples [%llu, %llu), "
                  "%llu bytes\n",
                  s.path.c_str(), s.header.shard_index, s.header.shard_count,
                  static_cast<unsigned long long>(s.header.count),
                  static_cast<unsigned long long>(s.header.first_index),
                  static_cast<unsigned long long>(s.header.first_index +
                                                  s.header.count),
                  static_cast<unsigned long long>(s.file_bytes));
      total += s.header.count;
    }
    std::printf("verified %zu shard(s): %llu samples, seed %llu, every "
                "record CRC ok\n",
                summaries.size(), static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(
                    summaries.front().header.seed));
    return 0;
  }
  if (sub == "merge") {
    const std::vector<std::string> inputs =
        split_comma_paths(flags.require_string("inputs"));
    const std::string out = flags.require_string("out");
    flags.reject_unused();
    const std::uint64_t bytes = dataset::merge_shards(out, inputs);
    std::printf("merged %zu shard(s) -> %s (%llu bytes)\n", inputs.size(),
                out.c_str(), static_cast<unsigned long long>(bytes));
    return 0;
  }
  std::fprintf(stderr,
               "unknown dataset subcommand '%s' (expected gen|verify|merge)\n",
               sub.c_str());
  return 2;
}

int cmd_train(const Flags& flags) {
  const std::string train_path = flags.require_string("dataset");
  // RNDS1 shards stream from disk through the mmap-backed source — the
  // corpus never has to fit in RAM; legacy RNDATA1 blobs (no record
  // index) load fully, exactly as before.
  const bool streamed = dataset::is_shard_file(train_path);
  std::vector<dataset::Sample> train_vec;
  std::unique_ptr<dataset::SampleSource> source;
  if (streamed) {
    source = std::make_unique<dataset::StreamingDataset>(train_path);
  } else {
    train_vec = dataset::load_dataset(train_path);
    source = std::make_unique<dataset::VectorSampleSource>(train_vec);
  }
  std::vector<dataset::Sample> eval_set;
  if (flags.has("eval")) {
    eval_set = dataset::load_any_dataset(flags.require_string("eval"));
  }
  core::RouteNetConfig mcfg;
  mcfg.link_state_dim = flags.get_int("dim", 32);
  mcfg.path_state_dim = mcfg.link_state_dim;
  mcfg.iterations = flags.get_int("iterations", 8);
  mcfg.readout_hidden = 2 * mcfg.link_state_dim;
  mcfg.seed = flags.get_seed("seed", 42);
  core::TrainConfig tcfg;
  tcfg.epochs = flags.get_int("epochs", 25);
  tcfg.batch_size = flags.get_int("batch", 4);
  tcfg.learning_rate = static_cast<float>(flags.get_double("lr", 4e-3));
  tcfg.threads = flags.get_int("threads", 0);
  tcfg.verbose = true;
  tcfg.state_path = flags.get_string("ckpt-state", "");
  tcfg.checkpoint_every_n_batches = flags.get_int("ckpt-every", 0);
  tcfg.keep_checkpoints = flags.get_int("ckpt-keep", 3);
  tcfg.resume_from = flags.get_string("resume", "");
  tcfg.max_batches = flags.get_int("max-batches", 0);
  // Testing hook for the health watchdog (see TrainConfig).
  tcfg.inject_nan_at_batch = flags.get_int("inject-nan-at", 0);
  tcfg.handle_signals = true;
  const std::string out = flags.require_string("out");
  tcfg.checkpoint_path = eval_set.empty() ? "" : out;
  flags.reject_unused();

  core::RouteNet model(mcfg);
  std::printf("training on %llu samples%s (%zu parameters)...\n",
              static_cast<unsigned long long>(source->size()),
              streamed ? " [streamed]" : "", model.num_parameters());
  core::Trainer trainer(model, tcfg);
  const core::TrainReport report =
      trainer.fit(*source, eval_set.empty() ? nullptr : &eval_set);
  if (report.interrupted) {
    if (tcfg.state_path.empty()) {
      std::printf("training interrupted; no --ckpt-state was set, so no "
                  "state was saved\n");
    } else {
      std::printf("training interrupted; resume with --resume %s\n",
                  tcfg.state_path.c_str());
    }
    return 0;
  }
  if (eval_set.empty()) {
    model.save(out);
  } else {
    std::printf("best eval MRE %.4f at epoch %d (checkpointed)\n",
                report.best_eval_mre, report.best_epoch);
  }
  std::printf("model -> %s\n", out.c_str());
  return 0;
}

int cmd_eval(const Flags& flags) {
  const core::RouteNet model =
      core::RouteNet::load(flags.require_string("model"));
  const std::vector<dataset::Sample> samples =
      dataset::load_any_dataset(flags.require_string("dataset"));
  flags.reject_unused();
  const eval::PairedSeries series = eval::collect_delay_pairs(
      samples,
      [&](const dataset::Sample& s) { return model.predict(s).delay_s; });
  const eval::RegressionStats stats =
      eval::regression_stats(series.truth, series.pred);
  std::printf("samples: %zu   valid paths: %zu\n", samples.size(),
              series.truth.size());
  if (stats.skipped_nonpositive > 0) {
    std::printf("skipped %zu paths with non-positive true delay\n",
                stats.skipped_nonpositive);
  }
  std::printf("delay:  MRE %.4f   median RE %.4f   Pearson r %.4f   "
              "R^2 %.4f\n",
              stats.mre, stats.median_re, stats.pearson_r, stats.r2);
  std::printf("jitter: MRE %.4f\n",
              core::Trainer::evaluate_jitter_mre(model, samples));
  return 0;
}

int cmd_predict(const Flags& flags) {
  const core::RouteNet model =
      core::RouteNet::load(flags.require_string("model"));
  Scenario sc = load_scenario(flags);
  const int top_n = flags.get_int("top", 10);
  const std::string out = flags.get_string("out", "");
  flags.reject_unused();

  const dataset::Sample sample = dataset::make_inference_sample(
      sc.topology, std::move(sc.scheme), std::move(sc.tm));
  const int pairs = sc.topology->num_pairs();

  const core::RouteNet::Prediction pred = model.predict(sample);
  const std::vector<eval::RankedPath> top =
      eval::top_n_paths(sample, pred.delay_s, top_n);
  std::printf("Top-%d predicted delays on %s:\n", top_n,
              sc.topology->name().c_str());
  std::printf("%4s %10s %5s %15s %15s\n", "rank", "path", "hops",
              "delay (ms)", "jitter (ms)");
  for (std::size_t i = 0; i < top.size(); ++i) {
    const int idx = topo::pair_index(top[i].src, top[i].dst,
                                     sc.topology->num_nodes());
    std::printf("%4zu %4d->%-5d %5d %15.3f %15.3f\n", i + 1, top[i].src,
                top[i].dst, top[i].hops, top[i].predicted_delay_s * 1e3,
                pred.jitter_s[static_cast<std::size_t>(idx)] * 1e3);
  }
  if (!out.empty()) {
    std::ofstream csv(out);
    RN_CHECK(csv.good(), "cannot open " + out);
    csv << "src,dst,predicted_delay_s,predicted_jitter_s\n";
    for (int idx = 0; idx < pairs; ++idx) {
      const auto [s, d] =
          topo::pair_from_index(idx, sc.topology->num_nodes());
      csv << s << ',' << d << ',' << pred.delay_s[static_cast<std::size_t>(idx)]
          << ',' << pred.jitter_s[static_cast<std::size_t>(idx)] << '\n';
    }
    std::printf("all %d pairs -> %s\n", pairs, out.c_str());
  }
  return 0;
}

namespace {

// `serve --listen ADDR`: the network frontend. Loads one or more models
// into a hot-reloadable registry, optionally attaches the p99-adaptive
// batching policy (--slo-ms), and serves RNP/1 until a remote shutdown
// request (routenet query --shutdown) arrives.
int cmd_serve_listen(const Flags& flags) {
  const std::string listen = flags.require_string("listen");
  serve::ServerConfig scfg;
  scfg.max_batch = flags.get_int("batch-max", 8);
  scfg.batch_deadline_s = flags.get_double("batch-deadline-ms", 5.0) / 1e3;
  scfg.queue_capacity =
      static_cast<std::size_t>(flags.get_int("queue-cap", 256));

  serve::ModelRegistry registry(scfg);
  if (flags.has("model")) {
    registry.load("default", flags.require_string("model"));
  }
  if (flags.has("models")) {
    // --models name=path[,name=path...]
    const std::string spec = flags.require_string("models");
    std::size_t pos = 0;
    while (pos < spec.size()) {
      std::size_t comma = spec.find(',', pos);
      if (comma == std::string::npos) comma = spec.size();
      const std::string item = spec.substr(pos, comma - pos);
      const std::size_t eq = item.find('=');
      RN_CHECK(eq != std::string::npos && eq > 0 && eq + 1 < item.size(),
               "--models entries must be name=path, got '" + item + "'");
      registry.load(item.substr(0, eq), item.substr(eq + 1));
      pos = comma + 1;
    }
  }
  RN_CHECK(registry.size() > 0, "serve --listen needs --model or --models");

  std::unique_ptr<serve::AdaptiveBatchPolicy> policy;
  if (flags.has("slo-ms")) {
    serve::PolicyConfig pcfg;
    pcfg.slo_p99_s = flags.get_double("slo-ms", 20.0) / 1e3;
    pcfg.min_deadline_s = flags.get_double("deadline-min-ms", 0.2) / 1e3;
    pcfg.max_deadline_s = flags.get_double("deadline-max-ms", 100.0) / 1e3;
    pcfg.interval_s = flags.get_double("policy-interval-ms", 100.0) / 1e3;
    pcfg.initial_deadline_s = std::min(
        pcfg.max_deadline_s,
        std::max(pcfg.min_deadline_s, scfg.batch_deadline_s));
    policy = std::make_unique<serve::AdaptiveBatchPolicy>(
        pcfg,
        [] {
          const obs::WindowedHistogram::Stats w =
              obs::Registry::global().windowed("serve.latency_s").stats();
          return serve::AdaptiveBatchPolicy::WindowSample{w.count, w.p99};
        },
        [&registry](double deadline_s) {
          registry.set_batch_deadline(deadline_s);
        });
  }

  serve::NetServerConfig ncfg;
  ncfg.listen = listen;
  ncfg.read_timeout_s = flags.get_double("read-timeout-s", 30.0);
  const std::string address_file = flags.get_string("address-file", "");
  flags.reject_unused();

  serve::NetServer server(registry, ncfg, policy.get());
  server.start();
  std::printf("listening on %s (%zu model%s, batch-max %d, deadline "
              "%.1fms, queue-cap %zu%s)\n",
              server.address().c_str(), registry.size(),
              registry.size() == 1 ? "" : "s", scfg.max_batch,
              registry.batch_deadline_s() * 1e3, scfg.queue_capacity,
              policy ? ", adaptive" : "");
  std::fflush(stdout);
  if (!address_file.empty()) {
    // Written after a successful bind: pollers learn the ephemeral port by
    // watching for this file.
    std::ofstream f(address_file);
    RN_CHECK(f.good(), "cannot open " + address_file);
    f << server.address() << '\n';
  }

  server.wait();
  server.stop();
  const serve::NetStats ns = server.stats();
  std::printf("server drained: %llu connections, %llu requests, "
              "%llu responses, %llu errors (%llu rejected, %llu timeouts)\n",
              static_cast<unsigned long long>(ns.connections),
              static_cast<unsigned long long>(ns.requests),
              static_cast<unsigned long long>(ns.responses),
              static_cast<unsigned long long>(ns.errors),
              static_cast<unsigned long long>(ns.rejected),
              static_cast<unsigned long long>(ns.timeouts));
  if (obs::EventSink::global().enabled()) {
    obs::Event ev("serve.net.run");
    ev.f("address", server.address())
        .f("models", registry.size())
        .f("connections", ns.connections)
        .f("requests", ns.requests)
        .f("responses", ns.responses)
        .f("errors", ns.errors)
        .f("rejected", ns.rejected)
        .f("timeouts", ns.timeouts)
        .f("bytes_rx", ns.bytes_rx)
        .f("bytes_tx", ns.bytes_tx)
        .f("deadline_final_s", registry.batch_deadline_s());
    obs::EventSink::global().emit(ev);
  }
  return 0;
}

}  // namespace

int cmd_serve(const Flags& flags) {
  if (flags.has("listen")) return cmd_serve_listen(flags);
  const core::RouteNet model =
      core::RouteNet::load(flags.require_string("model"));
  Scenario sc = load_scenario(flags);
  const int requests = flags.get_int("requests", 64);
  const int clients = flags.get_int("clients", 4);
  serve::ServerConfig scfg;
  scfg.max_batch = flags.get_int("batch-max", 8);
  scfg.batch_deadline_s = flags.get_double("batch-deadline-ms", 5.0) / 1e3;
  scfg.queue_capacity =
      static_cast<std::size_t>(flags.get_int("queue-cap", 256));
  const bool force_overflow = flags.get_bool("force-overflow");
  const std::uint64_t seed = flags.get_seed("seed", 1);
  flags.reject_unused();
  RN_CHECK(requests >= 1, "need at least one request");
  RN_CHECK(clients >= 1, "need at least one client");

  // Distinct request scenarios: the base matrix scaled by a per-request
  // factor, so batches merge genuinely different samples.
  std::vector<dataset::Sample> pool;
  pool.reserve(static_cast<std::size_t>(requests));
  Rng rng(derive_seed(seed, /*stream=*/0x5e7e, 0));
  for (int i = 0; i < requests; ++i) {
    traffic::TrafficMatrix tm = sc.tm;
    tm.scale(rng.uniform(0.5, 1.5));
    pool.push_back(
        dataset::make_inference_sample(sc.topology, sc.scheme, std::move(tm)));
  }

  serve::InferenceServer server(model, scfg);
  std::printf("serving %d requests on %s: clients=%d workers=%d "
              "batch-max=%d deadline=%.1fms queue-cap=%zu\n",
              requests, sc.topology->name().c_str(), clients,
              server.num_workers(), scfg.max_batch,
              scfg.batch_deadline_s * 1e3, scfg.queue_capacity);

  std::atomic<int> next{0};
  std::atomic<std::uint64_t> ok{0}, rejected{0}, failed{0};
  obs::Stopwatch wall;
  if (force_overflow) {
    // Deterministic backpressure demo: with workers paused the queue fills
    // to exactly its capacity, every further submit rejects, and resuming
    // drains the queued requests — so `--queue-cap Q` with N requests
    // always reports exactly N - Q rejects, no timing involved.
    server.set_paused_for_test(true);
    std::vector<std::future<core::RouteNet::Prediction>> inflight;
    inflight.reserve(static_cast<std::size_t>(requests));
    for (const dataset::Sample& sample : pool) {
      try {
        inflight.push_back(server.submit(sample));
      } catch (const serve::RejectedError&) {
        rejected.fetch_add(1, std::memory_order_relaxed);
      }
    }
    server.set_paused_for_test(false);
    for (std::future<core::RouteNet::Prediction>& f : inflight) {
      try {
        f.get();
        ok.fetch_add(1, std::memory_order_relaxed);
      } catch (const std::exception&) {
        failed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  } else {
    // Closed-loop load generator: each client submits, waits for the
    // result, moves to the next request; rejects (backpressure) are
    // counted, not retried.
    std::vector<std::thread> load;
    load.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      load.emplace_back([&] {
        for (;;) {
          const int i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= requests) return;
          try {
            server.submit(pool[static_cast<std::size_t>(i)]).get();
            ok.fetch_add(1, std::memory_order_relaxed);
          } catch (const serve::RejectedError&) {
            rejected.fetch_add(1, std::memory_order_relaxed);
          } catch (const std::exception&) {
            failed.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& t : load) t.join();
  }
  const double wall_s = wall.elapsed_s();
  server.stop();

  const serve::ServerStats stats = server.stats();
  const obs::Histogram& lat =
      obs::Registry::global().histogram("serve.latency_s");
  const obs::Histogram& bs =
      obs::Registry::global().histogram("serve.batch_size");
  const double throughput =
      wall_s > 0.0 ? static_cast<double>(ok.load()) / wall_s : 0.0;
  std::printf("served %llu (rejected %llu, failed %llu) in %.3f s — "
              "%.1f req/s\n",
              static_cast<unsigned long long>(stats.served),
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(failed.load()), wall_s,
              throughput);
  std::printf("batches %llu (mean size %.2f)   latency p50 %.3f ms  "
              "p99 %.3f ms\n",
              static_cast<unsigned long long>(stats.batches), bs.mean(),
              lat.quantile(0.5) * 1e3, lat.quantile(0.99) * 1e3);
  const obs::WindowedHistogram::Stats window =
      obs::Registry::global().windowed("serve.latency_s").stats();
  std::printf("live window (%.0fs): %llu requests  latency p50 %.3f ms  "
              "p99 %.3f ms\n",
              obs::Registry::global().windowed("serve.latency_s").window_s(),
              static_cast<unsigned long long>(window.count),
              window.p50 * 1e3, window.p99 * 1e3);
  if (obs::EventSink::global().enabled()) {
    obs::Event ev("serve.run");
    ev.f("requests", requests)
        .f("clients", clients)
        .f("workers", server.num_workers())
        .f("batch_max", scfg.max_batch)
        .f("served", stats.served)
        .f("rejected", stats.rejected)
        .f("batches", stats.batches)
        .f("wall_s", wall_s)
        .f("throughput_rps", throughput)
        .f("latency_p50_s", lat.quantile(0.5))
        .f("latency_p99_s", lat.quantile(0.99))
        .f("latency_window_p99_s", window.p99)
        .f("latency_window_count", window.count);
    obs::EventSink::global().emit(ev);
  }
  return 0;
}

int cmd_query(const Flags& flags) {
  const std::string connect = flags.require_string("connect");
  const std::string model = flags.get_string("model-name", "default");
  if (flags.get_bool("shutdown")) {
    flags.reject_unused();
    serve::NetClient client(connect);
    client.shutdown_server();
    std::printf("server at %s acknowledged shutdown\n", connect.c_str());
    return 0;
  }
  if (flags.get_bool("reload")) {
    flags.reject_unused();
    serve::NetClient client(connect);
    const serve::wire::ReloadResponse r = client.reload(model);
    std::printf("reloaded '%s' -> version %llu\n", r.model.c_str(),
                static_cast<unsigned long long>(r.version));
    return 0;
  }

  Scenario sc = load_scenario(flags);
  const int requests = flags.get_int("requests", 1);
  const int clients = flags.get_int("clients", 1);
  const int top_n = flags.get_int("top", 5);
  const std::uint64_t seed = flags.get_seed("seed", 1);
  flags.reject_unused();
  RN_CHECK(requests >= 1, "need at least one request");
  RN_CHECK(clients >= 1, "need at least one client");

  if (requests == 1) {
    // One remote predict, reported like a local `predict --top N`, plus
    // the request id (grep it in the client and server trace files to
    // merge one end-to-end timeline) and the server's time attribution.
    serve::NetClient client(connect);
    const serve::NetClient::PredictOutcome outcome = client.predict_traced(
        model, dataset::make_inference_sample(sc.topology, sc.scheme,
                                              std::move(sc.tm)));
    const core::RouteNet::Prediction& pred = outcome.prediction;
    std::printf("request id %llu  rtt %.3f ms",
                static_cast<unsigned long long>(outcome.request_id),
                outcome.rtt_s * 1e3);
    if (outcome.server_traced) {
      std::printf("  (server %.3f ms, of which queue wait %.3f ms)",
                  outcome.server_s * 1e3, outcome.queue_wait_s * 1e3);
    }
    std::printf("\n");
    const int pairs = static_cast<int>(pred.delay_s.size());
    std::vector<int> order(static_cast<std::size_t>(pairs));
    for (int i = 0; i < pairs; ++i) order[static_cast<std::size_t>(i)] = i;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return pred.delay_s[static_cast<std::size_t>(a)] >
             pred.delay_s[static_cast<std::size_t>(b)];
    });
    std::printf("%d pairs from %s via %s\n", pairs,
                sc.topology->name().c_str(), connect.c_str());
    std::printf("%4s %10s %15s %15s\n", "rank", "path", "delay (ms)",
                "jitter (ms)");
    const int show = std::min(top_n, pairs);
    for (int i = 0; i < show; ++i) {
      const int idx = order[static_cast<std::size_t>(i)];
      const auto [s, d] = topo::pair_from_index(idx, sc.topology->num_nodes());
      std::printf("%4d %4d->%-5d %15.3f %15.3f\n", i + 1, s, d,
                  pred.delay_s[static_cast<std::size_t>(idx)] * 1e3,
                  pred.jitter_s[static_cast<std::size_t>(idx)] * 1e3);
    }
    return 0;
  }

  // Remote load generator: the socket twin of `serve`'s in-process loop.
  // Each client owns one connection; requests are the base matrix scaled
  // per-request so batches merge genuinely different samples.
  std::vector<dataset::Sample> pool;
  pool.reserve(static_cast<std::size_t>(requests));
  Rng rng(derive_seed(seed, /*stream=*/0x5e7e, 0));
  for (int i = 0; i < requests; ++i) {
    traffic::TrafficMatrix tm = sc.tm;
    tm.scale(rng.uniform(0.5, 1.5));
    pool.push_back(
        dataset::make_inference_sample(sc.topology, sc.scheme, std::move(tm)));
  }

  std::atomic<int> next{0};
  std::atomic<std::uint64_t> ok{0}, rejected{0}, failed{0};
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  // Server-attributed queue wait, summed per client: rtt_sum vs
  // queue_wait_sum answers "how much of what the client felt was the
  // server's batching queue" without a second measurement pass.
  std::vector<double> queue_wait_sums(static_cast<std::size_t>(clients),
                                      0.0);
  obs::Stopwatch wall;
  std::vector<std::thread> load;
  load.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    load.emplace_back([&, c] {
      serve::NetClient client(connect);
      for (;;) {
        const int i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= requests) return;
        try {
          const serve::NetClient::PredictOutcome outcome =
              client.predict_traced(model,
                                    pool[static_cast<std::size_t>(i)]);
          latencies[static_cast<std::size_t>(c)].push_back(outcome.rtt_s);
          queue_wait_sums[static_cast<std::size_t>(c)] +=
              outcome.queue_wait_s;
          ok.fetch_add(1, std::memory_order_relaxed);
        } catch (const serve::RemoteError& e) {
          if (e.code() == serve::wire::ErrorCode::kRejected) {
            rejected.fetch_add(1, std::memory_order_relaxed);
          } else {
            failed.fetch_add(1, std::memory_order_relaxed);
          }
        } catch (const std::exception&) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : load) t.join();
  const double wall_s = wall.elapsed_s();

  std::vector<double> all;
  double rtt_sum = 0.0;
  for (const std::vector<double>& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
    for (const double rtt : per_client) rtt_sum += rtt;
  }
  double queue_wait_sum = 0.0;
  for (const double qw : queue_wait_sums) queue_wait_sum += qw;
  const double queue_wait_share =
      rtt_sum > 0.0 ? queue_wait_sum / rtt_sum : 0.0;
  std::sort(all.begin(), all.end());
  const auto quantile = [&](double q) {
    if (all.empty()) return 0.0;
    const std::size_t idx = std::min(
        all.size() - 1, static_cast<std::size_t>(q * (all.size() - 1) + 0.5));
    return all[idx];
  };
  const double throughput =
      wall_s > 0.0 ? static_cast<double>(ok.load()) / wall_s : 0.0;
  std::printf("sent %d requests over %d connection%s to %s\n", requests,
              clients, clients == 1 ? "" : "s", connect.c_str());
  std::printf("ok %llu (rejected %llu, failed %llu) in %.3f s — "
              "%.1f req/s   rtt p50 %.3f ms  p99 %.3f ms\n",
              static_cast<unsigned long long>(ok.load()),
              static_cast<unsigned long long>(rejected.load()),
              static_cast<unsigned long long>(failed.load()), wall_s,
              throughput, quantile(0.5) * 1e3, quantile(0.99) * 1e3);
  std::printf("server queue wait: %.1f%% of client rtt "
              "(%.3f s of %.3f s total)\n",
              100.0 * queue_wait_share, queue_wait_sum, rtt_sum);
  if (obs::EventSink::global().enabled()) {
    obs::Event ev("serve.client.run");
    ev.f("address", connect)
        .f("requests", requests)
        .f("clients", clients)
        .f("ok", ok.load())
        .f("rejected", rejected.load())
        .f("failed", failed.load())
        .f("wall_s", wall_s)
        .f("throughput_rps", throughput)
        .f("rtt_p50_s", quantile(0.5))
        .f("rtt_p99_s", quantile(0.99))
        .f("queue_wait_s", queue_wait_sum)
        .f("queue_wait_share", queue_wait_share);
    obs::EventSink::global().emit(ev);
  }
  return failed.load() == 0 ? 0 : 1;
}

int cmd_whatif(const Flags& flags) {
  const core::RouteNet model =
      core::RouteNet::load(flags.require_string("model"));
  Scenario sc = load_scenario(flags);
  const int upgrades = flags.get_int("upgrades", 5);
  const double factor = flags.get_double("factor", 2.5);
  const int failures = flags.get_int("failures", 5);
  flags.reject_unused();

  planning::Scenario scenario{sc.topology, std::move(sc.scheme),
                              std::move(sc.tm)};
  const planning::PredictDelaysFn predictor =
      [&model](const planning::Scenario& s) {
        return model.predict(planning::scenario_to_sample(s)).delay_s;
      };
  const planning::WhatIfEngine engine(scenario, predictor);
  std::printf("baseline mean predicted delay: %.3f ms\n",
              engine.baseline_objective() * 1e3);

  if (upgrades > 0) {
    std::printf("\ntop upgrades (x%.2g capacity):\n", factor);
    std::printf("%10s %8s %18s %9s\n", "link", "util", "pred delay (ms)",
                "gain");
    for (const planning::UpgradeOption& opt :
         engine.rank_upgrades(upgrades, factor)) {
      std::printf("%4d<->%-4d %8.2f %18.3f %+8.1f%%\n", opt.src, opt.dst,
                  opt.utilization, opt.objective * 1e3,
                  100.0 * opt.improvement);
    }
  }
  if (failures > 0) {
    std::printf("\nworst single-cable failures (re-routed):\n");
    std::printf("(affected pairs are re-routed on shortest paths; use a "
                "--k 1 baseline routing for policy-consistent numbers)\n");
    std::printf("%10s %18s %13s\n", "link", "pred delay (ms)", "impact");
    for (const planning::FailureImpact& impact :
         engine.rank_failures(failures)) {
      if (impact.disconnects) {
        std::printf("%4d<->%-4d %18s %13s\n", impact.src, impact.dst, "n/a",
                    "partitions!");
      } else {
        std::printf("%4d<->%-4d %18.3f %+12.1f%%\n", impact.src, impact.dst,
                    impact.objective * 1e3, 100.0 * impact.degradation);
      }
    }
  }
  return 0;
}

int cmd_info(const Flags& flags) {
  if (flags.has("topology")) {
    auto t = resolve_topology(flags.require_string("topology"), 1);
    flags.reject_unused();
    std::printf("topology %s: %d nodes, %d directed links, capacities "
                "[%.0f, %.0f] bps, strongly connected: %s\n",
                t->name().c_str(), t->num_nodes(), t->num_links(),
                t->min_capacity_bps(), t->max_capacity_bps(),
                t->is_strongly_connected() ? "yes" : "no");
    return 0;
  }
  if (flags.has("dataset")) {
    const std::string path = flags.require_string("dataset");
    flags.reject_unused();
    if (dataset::is_shard_file(path)) {
      // Stream the stats: one decoded sample resident at a time, so info
      // works on corpora that don't fit in RAM.
      dataset::ShardReader reader(path);
      const dataset::ShardHeader& h = reader.header();
      RN_CHECK(reader.size() > 0, "dataset is empty");
      Welford delays;
      std::string topo_name;
      int topo_nodes = 0;
      for (std::uint64_t i = 0; i < reader.size(); ++i) {
        const dataset::Sample s = reader.sample(i);
        if (i == 0) {
          topo_name = s.topology->name();
          topo_nodes = s.topology->num_nodes();
        }
        for (int idx = 0; idx < s.num_pairs(); ++idx) {
          if (s.valid[static_cast<std::size_t>(idx)]) {
            delays.add(s.delay_s[static_cast<std::size_t>(idx)]);
          }
        }
      }
      std::printf(
          "RNDS1 shard %u/%u: %llu samples (global [%llu, %llu)) on %s "
          "(%d nodes), seed %llu, %llu bytes\n",
          h.shard_index, h.shard_count,
          static_cast<unsigned long long>(h.count),
          static_cast<unsigned long long>(h.first_index),
          static_cast<unsigned long long>(h.first_index + h.count),
          topo_name.c_str(), topo_nodes,
          static_cast<unsigned long long>(h.seed),
          static_cast<unsigned long long>(reader.file_bytes()));
      std::printf("%zu valid paths, mean delay %.3f ms\n", delays.count(),
                  delays.mean() * 1e3);
      return 0;
    }
    const std::vector<dataset::Sample> samples = dataset::load_dataset(path);
    RN_CHECK(!samples.empty(), "dataset is empty");
    Welford delays;
    for (const dataset::Sample& s : samples) {
      for (int idx = 0; idx < s.num_pairs(); ++idx) {
        if (s.valid[static_cast<std::size_t>(idx)]) {
          delays.add(s.delay_s[static_cast<std::size_t>(idx)]);
        }
      }
    }
    std::printf("dataset: %zu samples on %s (%d nodes); %zu valid paths, "
                "mean delay %.3f ms\n",
                samples.size(), samples.front().topology->name().c_str(),
                samples.front().topology->num_nodes(), delays.count(),
                delays.mean() * 1e3);
    return 0;
  }
  if (flags.has("model")) {
    const core::RouteNet model =
        core::RouteNet::load(flags.require_string("model"));
    flags.reject_unused();
    const core::RouteNetConfig& cfg = model.config();
    std::printf("RouteNet model: %d-dim link / %d-dim path states, T=%d "
                "iterations, readout %d, %zu parameters\n",
                cfg.link_state_dim, cfg.path_state_dim, cfg.iterations,
                cfg.readout_hidden, model.num_parameters());
    const dataset::Normalizer& n = model.normalizer();
    std::printf("normalizer: capacity x%.3g, traffic x%.3g, log-delay "
                "mean %.3f std %.3f\n",
                n.capacity_scale, n.traffic_scale, n.log_delay_mean,
                n.log_delay_std);
    return 0;
  }
  std::printf("info: pass one of --topology, --dataset, --model\n");
  return 2;
}

namespace {

// `obs top ADDR [--every-s N] [--count N]`: live view over the kStats
// scrape. Each refresh opens a fresh connection (so a crashed scrape never
// wedges the view), renders the server's windows/gauges/counters, and
// shows counter deltas against the previous scrape. Rows are one
// `name value [+delta]` per line so shell tests can grep them.
int cmd_obs_top(const std::vector<std::string>& args) {
  const std::string address = args[0];
  double every_s = 2.0;
  long count = 0;  // 0 = until interrupted
  for (std::size_t i = 1; i < args.size(); i += 2) {
    if (args[i] == "--every-s" && i + 1 < args.size()) {
      every_s = std::stod(args[i + 1]);
    } else if (args[i] == "--count" && i + 1 < args.size()) {
      count = std::stol(args[i + 1]);
    } else {
      std::fprintf(stderr,
                   "error: unknown obs top option '%s' (want --every-s N "
                   "or --count N)\n",
                   args[i].c_str());
      return 2;
    }
  }
  RN_CHECK(every_s > 0.0, "--every-s must be positive");

  const bool tty = ::isatty(STDOUT_FILENO) == 1;
  std::map<std::string, std::uint64_t> prev_counters;
  for (long scrape = 1; count == 0 || scrape <= count; ++scrape) {
    serve::wire::StatsSnapshot snap;
    try {
      serve::NetClient client(address);
      snap = client.stats();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: scrape of %s failed: %s\n",
                   address.c_str(), e.what());
      return 1;
    }
    if (tty && scrape > 1) std::fputs("\033[H\033[2J", stdout);
    std::printf("obs top — %s  scrape %ld  server clock %.1fs\n",
                address.c_str(), scrape, snap.server_time_s);
    std::printf("trace.dropped %llu  trace.sampled_out %llu\n",
                static_cast<unsigned long long>(snap.trace_dropped),
                static_cast<unsigned long long>(snap.trace_sampled_out));
    if (!snap.models.empty()) {
      std::printf("models:\n");
      for (const auto& m : snap.models) {
        std::printf("  %s v%llu  params %llu\n", m.name.c_str(),
                    static_cast<unsigned long long>(m.version),
                    static_cast<unsigned long long>(m.parameters));
      }
    }
    if (!snap.windows.empty()) {
      std::printf("windows:\n");
      for (const auto& w : snap.windows) {
        std::printf("  %s  window %.0fs  n %llu  p50 %.6f  p95 %.6f  "
                    "p99 %.6f\n",
                    w.name.c_str(), w.window_s,
                    static_cast<unsigned long long>(w.count), w.p50, w.p95,
                    w.p99);
        // The slowest exemplar is the request to chase: grep its rid in
        // the trace files for the full span timeline.
        const serve::wire::StatsSnapshot::ExemplarEntry* slowest = nullptr;
        for (const auto& e : w.exemplars) {
          if (slowest == nullptr || e.value > slowest->value) slowest = &e;
        }
        if (slowest != nullptr) {
          std::printf("    exemplar rid %llu  value %.6f  bucket %u\n",
                      static_cast<unsigned long long>(slowest->request_id),
                      slowest->value,
                      static_cast<unsigned>(slowest->bucket));
        }
      }
    }
    if (!snap.gauges.empty()) {
      std::printf("gauges:\n");
      for (const auto& g : snap.gauges) {
        std::printf("  %s %.6g\n", g.name.c_str(), g.value);
      }
    }
    if (!snap.histograms.empty()) {
      std::printf("histograms:\n");
      for (const auto& h : snap.histograms) {
        std::printf("  %s  n %llu  mean %.6g  p50 %.6g  p99 %.6g  "
                    "max %.6g\n",
                    h.name.c_str(),
                    static_cast<unsigned long long>(h.count), h.mean, h.p50,
                    h.p99, h.max);
      }
    }
    if (!snap.counters.empty()) {
      std::printf("counters:\n");
      for (const auto& c : snap.counters) {
        const auto it = prev_counters.find(c.name);
        if (it != prev_counters.end()) {
          std::printf("  %s %llu +%llu\n", c.name.c_str(),
                      static_cast<unsigned long long>(c.value),
                      static_cast<unsigned long long>(
                          c.value >= it->second ? c.value - it->second : 0));
        } else {
          std::printf("  %s %llu\n", c.name.c_str(),
                      static_cast<unsigned long long>(c.value));
        }
        prev_counters[c.name] = c.value;
      }
    }
    std::fflush(stdout);
    if (count == 0 || scrape < count) {
      std::this_thread::sleep_for(std::chrono::duration<double>(every_s));
    }
  }
  return 0;
}

}  // namespace

int cmd_obs(const std::vector<std::string>& args) {
  // Both summarizers throw on a missing or malformed file; a bad path is
  // an expected operator mistake, so report one line and a nonzero exit
  // rather than an exception trace.
  try {
    if (args.size() == 2 && args[0] == "summarize") {
      std::fputs(obs::summarize_jsonl_file(args[1]).c_str(), stdout);
      return 0;
    }
    if ((args.size() == 2 || args.size() == 3) && args[0] == "trace") {
      int top_n = 12;
      if (args.size() == 3) {
        try {
          top_n = std::stoi(args[2]);
        } catch (const std::exception&) {
          std::fprintf(stderr, "error: top_n must be an integer, got '%s'\n",
                       args[2].c_str());
          return 1;
        }
      }
      std::fputs(obs::summarize_trace_file(args[1], top_n).c_str(), stdout);
      return 0;
    }
    if (args.size() >= 2 && args[0] == "top") {
      return cmd_obs_top(
          std::vector<std::string>(args.begin() + 1, args.end()));
    }
    if (args.size() >= 3 && args[0] == "diff") {
      obs::DiffOptions opts;
      bool usage_error = false;
      for (std::size_t i = 3; i < args.size(); i += 2) {
        if (args[i] == "--threshold" && i + 1 < args.size()) {
          try {
            opts.threshold_pct = std::stod(args[i + 1]);
          } catch (const std::exception&) {
            std::fprintf(stderr,
                         "error: --threshold must be a number, got '%s'\n",
                         args[i + 1].c_str());
            return 1;
          }
          if (opts.threshold_pct < 0.0) {
            std::fprintf(stderr, "error: --threshold must be >= 0\n");
            return 1;
          }
        } else {
          usage_error = true;
          break;
        }
      }
      if (!usage_error) {
        const obs::DiffReport report =
            obs::diff_bench_files(args[1], args[2], opts);
        std::fputs(
            report.format(args[1], args[2], opts.threshold_pct).c_str(),
            stdout);
        // The gate: regressions fail the invocation (CI-friendly), pure
        // improvements and neutral drift do not.
        return report.regressions > 0 ? 1 : 0;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf(
      "usage: routenet obs summarize <metrics.jsonl>\n"
      "       routenet obs trace <trace.json> [top_n]\n"
      "       routenet obs diff <baseline.json> <candidate.json> "
      "[--threshold pct]\n"
      "       routenet obs top <address> [--every-s N] [--count N]\n");
  return 2;
}

}  // namespace rn::cli
