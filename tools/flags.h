// Minimal command-line flag parser for the routenet CLI.
//
// Supports `--name value` and boolean `--name` forms. Values are fetched
// typed, with defaults; unknown or malformed flags raise with a message the
// CLI turns into usage help.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rn::cli {

class Flags {
 public:
  // Parses argv[start..argc); boolean flags are those listed in bool_names.
  Flags(int argc, const char* const* argv, int start,
        const std::vector<std::string>& bool_names = {});

  bool has(const std::string& name) const;

  // Like has(), but does NOT mark the flag as used — for dispatch code
  // that inspects a flag (e.g. --resume selecting append-mode sinks)
  // while the command's own handler remains responsible for consuming it.
  bool peek(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  // Overload without fallback: flag is required.
  std::string require_string(const std::string& name) const;

  int get_int(const std::string& name, int fallback) const;
  // 64-bit variant for flags that count samples — paper-scale corpora
  // overflow int.
  std::int64_t get_int64(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name) const;  // false unless present
  std::uint64_t get_seed(const std::string& name,
                         std::uint64_t fallback) const;

  // Throws if any parsed flag was never read — catches typos like --epoch.
  void reject_unused() const;

 private:
  const std::string& raw(const std::string& name) const;

  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
};

}  // namespace rn::cli
