// Subcommand implementations for the routenet CLI. Each returns a process
// exit code and reads its options from Flags.
#pragma once

#include <string>
#include <vector>

#include "flags.h"

namespace rn::cli {

// Writes a topology text file: --kind nsfnet|geant2|gbn|ba|er|ring|line|star
// [--nodes N] [--seed S] [--edges M] [--prob P] --out FILE
int cmd_make_topology(const Flags& flags);

// Writes a routing file: --topology FILE [--k K] [--seed S] --out FILE
int cmd_make_routing(const Flags& flags);

// Writes a traffic CSV: --topology FILE --routing FILE
// [--kind uniform|gravity|hotspot] [--util U] [--seed S] --out FILE
int cmd_make_traffic(const Flags& flags);

// Runs the packet simulator on a scenario and writes per-path results:
// --topology FILE --routing FILE --traffic FILE [--pkts-per-flow N]
// [--bursty] [--out CSV]
int cmd_simulate(const Flags& flags);

// Generates a labeled dataset: --topology FILE|nsfnet|geant2|gbn
// --count N [--seed S] [--k K] [--min-util U] [--max-util U]
// [--pkts-per-flow N] [--bursty] --out FILE
int cmd_gen_dataset(const Flags& flags);

// Sharded RNDS1 corpus pipeline (subcommand is argv[2]):
//   dataset gen    --topology SPEC --count TOTAL [--shard I/N] [--seed S]
//                  [--k K] [--min-util U] [--max-util U] [--pkts-per-flow P]
//                  [--bursty] --out FILE
//                  Generates exactly the global index range shard I of N
//                  owns; N merged shards are bitwise identical to one
//                  unsharded run.
//   dataset verify --inputs a.rnds,b.rnds,...
//                  Header-coherence + full per-record CRC check.
//   dataset merge  --inputs a.rnds,b.rnds,... --out FILE
int cmd_dataset(const std::string& sub, const Flags& flags);

// Trains RouteNet: --dataset FILE [--eval FILE] [--epochs N] [--batch N]
// [--lr F] [--dim N] [--iterations N] [--seed S] --out MODEL.
// An RNDS1 --dataset streams from disk (mmap) instead of loading into RAM.
int cmd_train(const Flags& flags);

// Evaluates a model on a dataset: --model FILE --dataset FILE
int cmd_eval(const Flags& flags);

// Predicts one scenario and prints/writes per-path KPIs:
// --model FILE --topology FILE --routing FILE --traffic FILE
// [--top N] [--out CSV]
int cmd_predict(const Flags& flags);

// Two modes. Default: the in-process batched inference server under a
// closed-loop load generator: --model FILE --topology FILE --routing FILE
// --traffic FILE [--requests N] [--clients C] [--batch-max B]
// [--batch-deadline-ms D] [--queue-cap Q] [--force-overflow] [--seed S].
// Worker count follows the global --threads. --force-overflow pauses the
// workers while submitting so exactly requests - queue-cap submissions
// reject — the deterministic backpressure demo.
// With --listen tcp:HOST:PORT|unix:PATH: the RNP/1 network frontend.
// Models come from --model FILE (named "default") and/or --models
// name=path[,...]; [--address-file PATH] publishes the bound address
// (ephemeral ports); [--slo-ms S] enables the p99-adaptive batching policy
// ([--policy-interval-ms I] [--deadline-min-ms A] [--deadline-max-ms B]).
// Runs until `routenet query --shutdown`.
int cmd_serve(const Flags& flags);

// RNP/1 client: --connect ADDR [--model-name NAME]. One of:
//   --shutdown                  ask the server to drain and exit
//   --reload                    hot-reload the named model from its path
//   --topology/--routing/--traffic [--top N]   one remote predict
//   ... with --requests N --clients C          closed-loop load generator
int cmd_query(const Flags& flags);

// Describes an artifact: --topology FILE | --dataset FILE | --model FILE
int cmd_info(const Flags& flags);

// What-if planning on a scenario with a trained model:
// --model FILE --topology FILE --routing FILE --traffic FILE
// [--upgrades K] [--factor F] [--failures K]
int cmd_whatif(const Flags& flags);

// Telemetry utilities (positional, not flag-based):
//   obs summarize <file.jsonl>  — validate and roll up a metrics file
//   obs trace <trace.json> [top_n] — roll up an exported trace
//   obs diff <a.json> <b.json> [--threshold pct] — bench-regression gate;
//     exits 1 when a direction-aware metric worsened past the threshold
// Every metrics line must parse as a {"ts","kind","fields"} JSON record;
// the first malformed line is an error, making this a telemetry-format
// check too.
int cmd_obs(const std::vector<std::string>& args);

}  // namespace rn::cli
