#include "queueing/queueing.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace rn::queueing {

SizeMoments size_moments(const traffic::TrafficModel& model) {
  SizeMoments m;
  const double mu = model.mean_pkt_size_bits;
  switch (model.sizes) {
    case traffic::PacketSizeModel::kExponential:
      m = {mu, 2.0 * mu * mu, 6.0 * mu * mu * mu};
      break;
    case traffic::PacketSizeModel::kFixed:
      m = {mu, mu * mu, mu * mu * mu};
      break;
    case traffic::PacketSizeModel::kBimodal: {
      const double p = model.small_pkt_prob;
      const double s = model.small_pkt_bits;
      const double l = model.large_pkt_bits();
      m.m1 = p * s + (1.0 - p) * l;
      m.m2 = p * s * s + (1.0 - p) * l * l;
      m.m3 = p * s * s * s + (1.0 - p) * l * l * l;
      break;
    }
    case traffic::PacketSizeModel::kTruncatedPareto:
      m.m1 = model.pareto_moment(1);
      m.m2 = model.pareto_moment(2);
      m.m3 = model.pareto_moment(3);
      break;
  }
  return m;
}

QueueingPredictor::QueueingPredictor(traffic::TrafficModel model,
                                     double utilization_cap)
    : model_(model), utilization_cap_(utilization_cap) {
  RN_CHECK(utilization_cap_ > 0.0 && utilization_cap_ < 1.0,
           "utilization cap must be in (0,1)");
}

AnalyticPrediction QueueingPredictor::predict(
    const topo::Topology& topo, const routing::RoutingScheme& scheme,
    const traffic::TrafficMatrix& tm) const {
  const std::vector<double> loads = traffic::link_loads_bps(topo, scheme, tm);
  const SizeMoments size = size_moments(model_);

  AnalyticPrediction out;
  out.link_utilization.resize(static_cast<std::size_t>(topo.num_links()));

  // Per-link mean waiting time, waiting variance, and service moments.
  std::vector<double> mean_sojourn(static_cast<std::size_t>(topo.num_links()));
  std::vector<double> var_sojourn(static_cast<std::size_t>(topo.num_links()));
  for (topo::LinkId id = 0; id < topo.num_links(); ++id) {
    const topo::Link& link = topo.link(id);
    const double cap = link.capacity_bps;
    double rho = loads[static_cast<std::size_t>(id)] / cap;
    if (rho >= utilization_cap_) {
      // Offered load at or past capacity: the queue is unstable and the
      // formulas diverge. Clamp and flag — the simulator is the arbiter.
      rho = utilization_cap_;
      out.any_unstable = true;
    }
    out.link_utilization[static_cast<std::size_t>(id)] = rho;
    // Service-time moments: service = size / capacity.
    const double es = size.m1 / cap;
    const double es2 = size.m2 / (cap * cap);
    const double es3 = size.m3 / (cap * cap * cap);
    const double var_s = es2 - es * es;
    // Packet arrival rate consistent with the clamped utilization.
    const double lambda = rho / es;
    // Pollaczek–Khinchine: E[Wq] = λ E[S²] / (2 (1−ρ)).
    const double ewq = lambda * es2 / (2.0 * (1.0 - rho));
    // Takács second moment: E[Wq²] = 2 E[Wq]² + λ E[S³] / (3 (1−ρ)).
    const double ewq2 = 2.0 * ewq * ewq + lambda * es3 / (3.0 * (1.0 - rho));
    const double var_wq = std::max(0.0, ewq2 - ewq * ewq);
    mean_sojourn[static_cast<std::size_t>(id)] =
        ewq + es + link.prop_delay_s;
    var_sojourn[static_cast<std::size_t>(id)] = var_wq + var_s;
  }

  const int num_pairs = topo.num_pairs();
  out.delay_s.resize(static_cast<std::size_t>(num_pairs));
  out.jitter_s.resize(static_cast<std::size_t>(num_pairs));
  for (int idx = 0; idx < num_pairs; ++idx) {
    double mean = 0.0;
    double var = 0.0;
    for (topo::LinkId id : scheme.path_by_index(idx)) {
      mean += mean_sojourn[static_cast<std::size_t>(id)];
      var += var_sojourn[static_cast<std::size_t>(id)];
    }
    out.delay_s[static_cast<std::size_t>(idx)] = mean;
    out.jitter_s[static_cast<std::size_t>(idx)] = std::sqrt(var);
  }
  return out;
}

}  // namespace rn::queueing
