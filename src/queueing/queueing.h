// Analytic queueing-theory delay estimator — the "classic" baseline the
// paper's introduction argues is insufficient for real traffic.
//
// Each directed link is modeled as an independent M/G/1 queue fed by the
// aggregate offered load of all paths crossing it. Per-path delay is the
// sum of per-link sojourn times (Pollaczek–Khinchine mean) plus propagation;
// per-path jitter assumes link independence (which is wrong in general —
// packet sizes persist across hops — and is one reason this baseline
// underperforms the learned model on non-Markovian traffic).
#pragma once

#include <vector>

#include "routing/routing.h"
#include "topology/topology.h"
#include "traffic/traffic.h"

namespace rn::queueing {

struct AnalyticPrediction {
  std::vector<double> delay_s;    // per pair index
  std::vector<double> jitter_s;   // per pair index (std dev)
  std::vector<double> link_utilization;
  bool any_unstable = false;      // some link had offered load >= capacity
};

class QueueingPredictor {
 public:
  // The traffic model supplies the packet-size distribution whose first
  // three moments drive the P-K formulas.
  explicit QueueingPredictor(traffic::TrafficModel model,
                             double utilization_cap = 0.995);

  AnalyticPrediction predict(const topo::Topology& topo,
                             const routing::RoutingScheme& scheme,
                             const traffic::TrafficMatrix& tm) const;

 private:
  traffic::TrafficModel model_;
  double utilization_cap_;
};

// Raw size-distribution moments (bits^k) implied by a traffic model.
struct SizeMoments {
  double m1 = 0.0;
  double m2 = 0.0;
  double m3 = 0.0;
};
SizeMoments size_moments(const traffic::TrafficModel& model);

}  // namespace rn::queueing
