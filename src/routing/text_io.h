// Plain-text routing interchange. One line per pair:
//   <src> <dst> : <node> <node> ... <node>
// listing the full node sequence from src to dst (inclusive). Pairs may be
// omitted only if they carry no traffic; loading validates continuity
// against the topology.
#pragma once

#include <iosfwd>
#include <string>

#include "routing/routing.h"

namespace rn::routing {

RoutingScheme load_routing(std::istream& in, const topo::Topology& topo);
RoutingScheme load_routing_file(const std::string& path,
                                const topo::Topology& topo);

void save_routing(std::ostream& out, const topo::Topology& topo,
                  const RoutingScheme& scheme);
void save_routing_file(const std::string& path, const topo::Topology& topo,
                       const RoutingScheme& scheme);

}  // namespace rn::routing
