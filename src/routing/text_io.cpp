#include "routing/text_io.h"

#include <fstream>
#include <sstream>

namespace rn::routing {

RoutingScheme load_routing(std::istream& in, const topo::Topology& topo) {
  RoutingScheme scheme(topo.num_nodes());
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    int src = -1, dst = -1;
    std::string colon;
    if (!(ls >> src >> dst >> colon)) continue;  // blank line
    RN_CHECK(colon == ":", "malformed routing line: " + line);
    std::vector<topo::NodeId> nodes;
    int node = -1;
    while (ls >> node) nodes.push_back(node);
    RN_CHECK(nodes.size() >= 2, "routing line needs at least two nodes");
    RN_CHECK(nodes.front() == src && nodes.back() == dst,
             "routing node sequence must run src..dst: " + line);
    Path path;
    for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
      const std::optional<topo::LinkId> link =
          topo.find_link(nodes[i], nodes[i + 1]);
      RN_CHECK(link.has_value(),
               "no link " + std::to_string(nodes[i]) + "->" +
                   std::to_string(nodes[i + 1]) + " in topology");
      path.push_back(*link);
    }
    scheme.set_path(src, dst, std::move(path));
  }
  return scheme;
}

RoutingScheme load_routing_file(const std::string& path,
                                const topo::Topology& topo) {
  std::ifstream in(path);
  RN_CHECK(in.good(), "cannot open routing file: " + path);
  return load_routing(in, topo);
}

void save_routing(std::ostream& out, const topo::Topology& topo,
                  const RoutingScheme& scheme) {
  for (topo::NodeId s = 0; s < topo.num_nodes(); ++s) {
    for (topo::NodeId d = 0; d < topo.num_nodes(); ++d) {
      if (s == d) continue;
      const Path& p = scheme.path(s, d);
      if (p.empty()) continue;
      out << s << ' ' << d << " :";
      for (topo::NodeId n : path_nodes(topo, p, s)) out << ' ' << n;
      out << '\n';
    }
  }
}

void save_routing_file(const std::string& path, const topo::Topology& topo,
                       const RoutingScheme& scheme) {
  std::ofstream out(path);
  RN_CHECK(out.good(), "cannot open routing file for writing: " + path);
  save_routing(out, topo, scheme);
  RN_CHECK(out.good(), "write failure on routing file: " + path);
}

}  // namespace rn::routing
