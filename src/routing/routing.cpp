#include "routing/routing.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

namespace rn::routing {

namespace {

double link_cost(const topo::Link& l, LinkWeight weight) {
  switch (weight) {
    case LinkWeight::kHops:
      return 1.0;
    case LinkWeight::kInverseCapacity:
      return 1.0 / l.capacity_bps;
  }
  return 1.0;
}

double path_cost(const topo::Topology& topo, const Path& p,
                 LinkWeight weight) {
  double c = 0.0;
  for (topo::LinkId id : p) c += link_cost(topo.link(id), weight);
  return c;
}

// Dijkstra from src with optional banned links/nodes; returns the path to
// dst (empty when unreachable).
Path dijkstra_path(const topo::Topology& topo, topo::NodeId src,
                   topo::NodeId dst, LinkWeight weight,
                   const std::vector<char>& banned_link,
                   const std::vector<char>& banned_node) {
  const int n = topo.num_nodes();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(static_cast<std::size_t>(n), kInf);
  std::vector<topo::LinkId> prev_link(static_cast<std::size_t>(n), -1);
  using Item = std::pair<double, topo::NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[static_cast<std::size_t>(src)] = 0.0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    if (u == dst) break;
    for (topo::LinkId id : topo.out_links(u)) {
      if (!banned_link.empty() && banned_link[static_cast<std::size_t>(id)]) {
        continue;
      }
      const topo::Link& l = topo.link(id);
      if (!banned_node.empty() &&
          banned_node[static_cast<std::size_t>(l.dst)]) {
        continue;
      }
      const double nd = d + link_cost(l, weight);
      if (nd < dist[static_cast<std::size_t>(l.dst)]) {
        dist[static_cast<std::size_t>(l.dst)] = nd;
        prev_link[static_cast<std::size_t>(l.dst)] = id;
        pq.emplace(nd, l.dst);
      }
    }
  }
  if (dist[static_cast<std::size_t>(dst)] == kInf) return {};
  Path path;
  for (topo::NodeId v = dst; v != src;) {
    const topo::LinkId id = prev_link[static_cast<std::size_t>(v)];
    path.push_back(id);
    v = topo.link(id).src;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

RoutingScheme::RoutingScheme(int num_nodes)
    : num_nodes_(num_nodes),
      paths_(static_cast<std::size_t>(num_nodes) * (num_nodes - 1)) {
  RN_CHECK(num_nodes >= 2, "routing scheme needs at least 2 nodes");
}

const Path& RoutingScheme::path(topo::NodeId s, topo::NodeId d) const {
  return paths_[static_cast<std::size_t>(topo::pair_index(s, d, num_nodes_))];
}

const Path& RoutingScheme::path_by_index(int pair_idx) const {
  RN_CHECK(pair_idx >= 0 && pair_idx < num_pairs(), "pair index out of range");
  return paths_[static_cast<std::size_t>(pair_idx)];
}

void RoutingScheme::set_path(topo::NodeId s, topo::NodeId d, Path p) {
  paths_[static_cast<std::size_t>(topo::pair_index(s, d, num_nodes_))] =
      std::move(p);
}

double RoutingScheme::mean_path_length() const {
  double total = 0.0;
  for (const Path& p : paths_) total += static_cast<double>(p.size());
  return total / static_cast<double>(paths_.size());
}

Path shortest_path(const topo::Topology& topo, topo::NodeId src,
                   topo::NodeId dst, LinkWeight weight) {
  RN_CHECK(src != dst, "shortest_path between identical nodes");
  return dijkstra_path(topo, src, dst, weight, {}, {});
}

std::vector<Path> k_shortest_paths(const topo::Topology& topo,
                                   topo::NodeId src, topo::NodeId dst, int k,
                                   LinkWeight weight) {
  RN_CHECK(k >= 1, "k must be at least 1");
  RN_CHECK(src != dst, "k_shortest_paths between identical nodes");
  std::vector<Path> result;
  Path first = shortest_path(topo, src, dst, weight);
  if (first.empty()) return result;
  result.push_back(std::move(first));

  // Candidates ordered by (cost, path) so ties break deterministically.
  std::set<std::pair<double, Path>> candidates;
  while (static_cast<int>(result.size()) < k) {
    const Path& last = result.back();
    const std::vector<topo::NodeId> nodes = path_nodes(topo, last, src);
    for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
      const topo::NodeId spur = nodes[i];
      const Path root(last.begin(),
                      last.begin() + static_cast<std::ptrdiff_t>(i));
      std::vector<char> banned_link(
          static_cast<std::size_t>(topo.num_links()), 0);
      for (const Path& p : result) {
        if (p.size() >= i &&
            std::equal(root.begin(), root.end(), p.begin()) &&
            p.size() > i) {
          banned_link[static_cast<std::size_t>(p[i])] = 1;
        }
      }
      std::vector<char> banned_node(
          static_cast<std::size_t>(topo.num_nodes()), 0);
      for (std::size_t j = 0; j < i; ++j) {
        banned_node[static_cast<std::size_t>(nodes[j])] = 1;
      }
      Path spur_path =
          dijkstra_path(topo, spur, dst, weight, banned_link, banned_node);
      if (spur_path.empty()) continue;
      Path total = root;
      total.insert(total.end(), spur_path.begin(), spur_path.end());
      candidates.emplace(path_cost(topo, total, weight), std::move(total));
    }
    // Pop candidates until we find one not already accepted.
    bool advanced = false;
    while (!candidates.empty()) {
      auto it = candidates.begin();
      Path best = it->second;
      candidates.erase(it);
      if (std::find(result.begin(), result.end(), best) == result.end()) {
        result.push_back(std::move(best));
        advanced = true;
        break;
      }
    }
    if (!advanced) break;  // path space exhausted
  }
  return result;
}

RoutingScheme shortest_path_routing(const topo::Topology& topo,
                                    LinkWeight weight) {
  RoutingScheme scheme(topo.num_nodes());
  for (topo::NodeId s = 0; s < topo.num_nodes(); ++s) {
    for (topo::NodeId d = 0; d < topo.num_nodes(); ++d) {
      if (s == d) continue;
      Path p = shortest_path(topo, s, d, weight);
      RN_CHECK(!p.empty(), "topology is not connected: no path " +
                               std::to_string(s) + "→" + std::to_string(d));
      scheme.set_path(s, d, std::move(p));
    }
  }
  return scheme;
}

RoutingScheme random_k_shortest_routing(const topo::Topology& topo, int k,
                                        Rng& rng, LinkWeight weight) {
  RoutingScheme scheme(topo.num_nodes());
  for (topo::NodeId s = 0; s < topo.num_nodes(); ++s) {
    for (topo::NodeId d = 0; d < topo.num_nodes(); ++d) {
      if (s == d) continue;
      std::vector<Path> options = k_shortest_paths(topo, s, d, k, weight);
      RN_CHECK(!options.empty(), "topology is not connected: no path " +
                                     std::to_string(s) + "→" +
                                     std::to_string(d));
      const int pick =
          rng.uniform_int(0, static_cast<int>(options.size()) - 1);
      scheme.set_path(s, d, std::move(options[static_cast<std::size_t>(pick)]));
    }
  }
  return scheme;
}

void validate_routing(const topo::Topology& topo,
                      const RoutingScheme& scheme) {
  RN_CHECK(scheme.num_nodes() == topo.num_nodes(),
           "routing scheme node count mismatch");
  for (topo::NodeId s = 0; s < topo.num_nodes(); ++s) {
    for (topo::NodeId d = 0; d < topo.num_nodes(); ++d) {
      if (s == d) continue;
      const Path& p = scheme.path(s, d);
      RN_CHECK(!p.empty(), "missing path for pair");
      const std::vector<topo::NodeId> nodes = path_nodes(topo, p, s);
      RN_CHECK(nodes.back() == d, "path does not terminate at destination");
      std::set<topo::NodeId> unique(nodes.begin(), nodes.end());
      RN_CHECK(unique.size() == nodes.size(), "path contains a loop");
    }
  }
}

std::vector<topo::NodeId> path_nodes(const topo::Topology& topo,
                                     const Path& path, topo::NodeId src) {
  std::vector<topo::NodeId> nodes{src};
  topo::NodeId at = src;
  for (topo::LinkId id : path) {
    const topo::Link& l = topo.link(id);
    RN_CHECK(l.src == at, "discontinuous path");
    at = l.dst;
    nodes.push_back(at);
  }
  return nodes;
}

}  // namespace rn::routing
