// Source-destination routing schemes.
//
// A RoutingScheme assigns every ordered node pair one loop-free path (a
// sequence of link ids). RouteNet's inputs are exactly (topology, scheme,
// traffic matrix); the dataset generator varies schemes per sample by
// drawing uniformly from each pair's k shortest paths.
#pragma once

#include <vector>

#include "topology/topology.h"
#include "util/rng.h"

namespace rn::routing {

// A path is the ordered list of directed link ids from src to dst.
using Path = std::vector<topo::LinkId>;

enum class LinkWeight {
  kHops,             // every link costs 1
  kInverseCapacity,  // favors high-capacity links
};

class RoutingScheme {
 public:
  explicit RoutingScheme(int num_nodes);

  int num_nodes() const { return num_nodes_; }
  int num_pairs() const { return num_nodes_ * (num_nodes_ - 1); }

  const Path& path(topo::NodeId s, topo::NodeId d) const;
  const Path& path_by_index(int pair_idx) const;
  void set_path(topo::NodeId s, topo::NodeId d, Path p);

  // Average path length in hops over all pairs.
  double mean_path_length() const;

 private:
  int num_nodes_;
  std::vector<Path> paths_;  // indexed by topo::pair_index
};

// Single-source shortest path tree; returns the min-cost path src→dst or an
// empty path when unreachable.
Path shortest_path(const topo::Topology& topo, topo::NodeId src,
                   topo::NodeId dst, LinkWeight weight = LinkWeight::kHops);

// Yen's algorithm: up to k loop-free shortest paths in nondecreasing cost
// order. Returns fewer when the graph has fewer distinct paths.
std::vector<Path> k_shortest_paths(const topo::Topology& topo,
                                   topo::NodeId src, topo::NodeId dst, int k,
                                   LinkWeight weight = LinkWeight::kHops);

// Deterministic all-pairs shortest-path scheme.
RoutingScheme shortest_path_routing(const topo::Topology& topo,
                                    LinkWeight weight = LinkWeight::kHops);

// Randomized scheme: for each pair, pick uniformly among its k shortest
// paths. This is how the dataset generator produces routing variety.
RoutingScheme random_k_shortest_routing(const topo::Topology& topo, int k,
                                        Rng& rng,
                                        LinkWeight weight = LinkWeight::kHops);

// Throws if any pair's path does not start at src, end at dst, traverse
// consecutive links, or visits a node twice.
void validate_routing(const topo::Topology& topo,
                      const RoutingScheme& scheme);

// Node sequence visited by a path starting at src (src included).
std::vector<topo::NodeId> path_nodes(const topo::Topology& topo,
                                     const Path& path, topo::NodeId src);

}  // namespace rn::routing
