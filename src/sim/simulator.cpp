#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>

#include "obs/event.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "util/stats.h"

namespace rn::sim {

namespace {

struct Packet {
  double size_bits = 0.0;
  double created_s = 0.0;
  std::int32_t pair_idx = 0;
  std::int32_t hop = 0;   // index into the path's link sequence
  std::int32_t cls = 0;   // scheduling class (0 = highest priority)
};

enum class EventKind : std::uint8_t {
  kFlowArrival,   // a flow emits its next packet (and reschedules itself)
  kServiceDone,   // a link finishes transmitting its current packet
  kPacketArrive,  // a packet reaches the head of its next link's queue
};

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;  // tie-breaker for determinism
  EventKind kind = EventKind::kFlowArrival;
  std::int32_t target = 0;  // flow index or link id
  Packet pkt;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

// Per-flow ON/OFF renewal state (exact for exponential periods thanks to
// memorylessness: an arrival candidate past the ON end simply never happens,
// and sampling restarts at the next ON start).
struct FlowState {
  double pkt_rate_on = 0.0;  // packet rate while ON (equals mean rate for Poisson)
  bool on = true;
  double period_end = 0.0;
};

struct LinkState {
  // One FIFO per scheduling class (FIFO mode uses only queues[0]).
  std::vector<std::deque<Packet>> queues;
  std::size_t total_queued = 0;
  bool busy = false;
  Packet serving;
  // Deficit-round-robin state.
  std::vector<double> deficit;
  int drr_pos = 0;
  // Time-weighted accounting (post-warmup).
  double busy_since = 0.0;
  double busy_accum = 0.0;
  double q_integral = 0.0;
  double last_q_change = 0.0;
  std::size_t peak_queue = 0;
  std::size_t tx = 0;
  std::size_t drops = 0;
};

class Run {
 public:
  Run(const SimConfig& cfg, const topo::Topology& topo,
      const routing::RoutingScheme& scheme, const traffic::TrafficMatrix& tm)
      : cfg_(cfg), topo_(topo), scheme_(scheme), tm_(tm), rng_(cfg.seed) {}

  SimResult execute();

 private:
  double sample_pkt_size() {
    const traffic::TrafficModel& m = cfg_.model;
    switch (m.sizes) {
      case traffic::PacketSizeModel::kExponential:
        return std::max(1.0, rng_.exponential(m.mean_pkt_size_bits));
      case traffic::PacketSizeModel::kBimodal:
        return rng_.bernoulli(m.small_pkt_prob) ? m.small_pkt_bits
                                                : m.large_pkt_bits();
      case traffic::PacketSizeModel::kFixed:
        return m.mean_pkt_size_bits;
      case traffic::PacketSizeModel::kTruncatedPareto: {
        // Inverse-CDF sampling of Pareto(alpha, xm) truncated at c·xm.
        const double xm = m.pareto_xm_bits();
        const double c = m.pareto_max_factor;
        const double u = rng_.uniform(0.0, 1.0);
        const double tail = 1.0 - std::pow(c, -m.pareto_alpha);
        return xm * std::pow(1.0 - u * tail, -1.0 / m.pareto_alpha);
      }
    }
    return m.mean_pkt_size_bits;
  }

  // Next packet emission time for a flow, strictly after `now`.
  double next_arrival_time(FlowState& f, double now) {
    const traffic::TrafficModel& m = cfg_.model;
    if (m.arrivals == traffic::ArrivalProcess::kPoisson) {
      return now + rng_.exponential(1.0 / f.pkt_rate_on);
    }
    const double f_on = m.on_fraction;
    const double mean_on = m.mean_on_s;
    const double mean_off = mean_on * (1.0 - f_on) / f_on;
    double t = now;
    for (;;) {
      if (t >= f.period_end) {
        f.on = !f.on;
        f.period_end = t + rng_.exponential(f.on ? mean_on : mean_off);
        continue;
      }
      if (!f.on) {
        t = f.period_end;
        continue;
      }
      const double cand = t + rng_.exponential(1.0 / f.pkt_rate_on);
      if (cand <= f.period_end) return cand;
      t = f.period_end;  // no arrival in the ON remainder; skip to next period
    }
  }

  void schedule(double t, EventKind kind, std::int32_t target,
                Packet pkt = {}) {
    events_.push(Event{t, seq_++, kind, target, pkt});
  }

  void note_queue_change(LinkState& ls, double now) {
    const double from = std::max(ls.last_q_change, cfg_.warmup_s);
    if (now > from) {
      ls.q_integral += static_cast<double>(ls.total_queued) * (now - from);
    }
    ls.last_q_change = now;
  }

  // Dequeues the next packet according to the scheduling discipline;
  // returns false when all class queues are empty.
  bool dequeue_next(LinkState& ls, Packet* out) {
    if (ls.total_queued == 0) return false;
    switch (cfg_.scheduling) {
      case Scheduling::kFifo:
      case Scheduling::kStrictPriority: {
        // FIFO stores everything in queues[0]; strict priority serves the
        // lowest-index (highest-priority) non-empty class.
        for (auto& q : ls.queues) {
          if (q.empty()) continue;
          *out = q.front();
          q.pop_front();
          --ls.total_queued;
          return true;
        }
        return false;
      }
      case Scheduling::kDeficitRoundRobin: {
        const int classes = static_cast<int>(ls.queues.size());
        for (;;) {
          auto& q = ls.queues[static_cast<std::size_t>(ls.drr_pos)];
          double& deficit = ls.deficit[static_cast<std::size_t>(ls.drr_pos)];
          if (q.empty()) {
            deficit = 0.0;  // standard DRR: empty queues lose their deficit
            ls.drr_pos = (ls.drr_pos + 1) % classes;
            continue;
          }
          if (deficit >= q.front().size_bits) {
            *out = q.front();
            q.pop_front();
            --ls.total_queued;
            deficit -= out->size_bits;
            return true;
          }
          deficit += cfg_.drr_quantum_bits;
          if (deficit < q.front().size_bits) {
            ls.drr_pos = (ls.drr_pos + 1) % classes;
          }
        }
      }
    }
    return false;
  }

  void start_service(topo::LinkId id, LinkState& ls, Packet pkt, double now) {
    ls.busy = true;
    ls.serving = pkt;
    ls.busy_since = now;
    const double tx_time = pkt.size_bits / topo_.link(id).capacity_bps;
    schedule(now + tx_time, EventKind::kServiceDone, id);
  }

  void handle_packet_arrive(topo::LinkId id, const Packet& pkt, double now) {
    LinkState& ls = links_[static_cast<std::size_t>(id)];
    if (!ls.busy) {
      start_service(id, ls, pkt, now);
      return;
    }
    // FIFO keeps one shared queue; schedulers queue per class.
    const std::size_t qi =
        cfg_.scheduling == Scheduling::kFifo
            ? 0
            : static_cast<std::size_t>(pkt.cls);
    std::deque<Packet>& q = ls.queues[qi];
    if (cfg_.link_buffer_pkts > 0 &&
        static_cast<int>(q.size()) >= cfg_.link_buffer_pkts) {
      ++ls.drops;
      ++path_drops_[static_cast<std::size_t>(pkt.pair_idx)];
      return;
    }
    note_queue_change(ls, now);
    q.push_back(pkt);
    ++ls.total_queued;
    ls.peak_queue = std::max(ls.peak_queue, ls.total_queued);
    queue_depth_hist_->record(static_cast<double>(ls.total_queued));
  }

  void deliver(Packet pkt, double now) {
    const routing::Path& path = scheme_.path_by_index(pkt.pair_idx);
    if (pkt.hop >= static_cast<std::int32_t>(path.size())) {
      // Destination reached.
      ++packets_delivered_;
      if (pkt.created_s >= cfg_.warmup_s) {
        const double delay = now - pkt.created_s;
        auto& acc = path_delay_[static_cast<std::size_t>(pkt.pair_idx)];
        acc.add(delay);
        if (cfg_.collect_samples) {
          auto& samples = path_samples_[static_cast<std::size_t>(pkt.pair_idx)];
          if (samples.size() < cfg_.max_samples_per_path) {
            samples.push_back(delay);
          } else {
            // Reservoir sampling keeps an unbiased subset.
            const std::size_t j = static_cast<std::size_t>(rng_.uniform_int(
                0, static_cast<int>(acc.count()) - 1));
            if (j < samples.size()) samples[j] = delay;
          }
        }
      }
      return;
    }
    const topo::LinkId id = path[static_cast<std::size_t>(pkt.hop)];
    handle_packet_arrive(id, pkt, now);
  }

  void handle_service_done(topo::LinkId id, double now) {
    LinkState& ls = links_[static_cast<std::size_t>(id)];
    RN_CHECK(ls.busy, "service completion on idle link");
    // Utilization accounting clipped to the post-warmup window.
    const double from = std::max(ls.busy_since, cfg_.warmup_s);
    if (now > from) ls.busy_accum += now - from;
    ++ls.tx;
    Packet pkt = ls.serving;
    ls.busy = false;
    pkt.hop += 1;
    const double prop = topo_.link(id).prop_delay_s;
    if (prop > 0.0) {
      schedule(now + prop, EventKind::kPacketArrive, id, pkt);
    } else {
      deliver(pkt, now);
    }
    // Close the queue-length integral at the pre-dequeue length.
    note_queue_change(ls, now);
    Packet next;
    if (dequeue_next(ls, &next)) {
      start_service(id, ls, next, now);
    }
  }

  void handle_flow_arrival(std::int32_t flow_idx, double now) {
    FlowState& f = flows_[static_cast<std::size_t>(flow_idx)];
    Packet pkt;
    pkt.size_bits = sample_pkt_size();
    pkt.created_s = now;
    pkt.pair_idx = flow_idx;
    pkt.hop = 0;
    pkt.cls = flow_class_[static_cast<std::size_t>(flow_idx)];
    ++packets_created_;
    deliver(pkt, now);
    const double next = next_arrival_time(f, now);
    if (next <= cfg_.horizon_s) {
      schedule(next, EventKind::kFlowArrival, flow_idx);
    }
  }

  const SimConfig& cfg_;
  const topo::Topology& topo_;
  const routing::RoutingScheme& scheme_;
  const traffic::TrafficMatrix& tm_;
  Rng rng_;

  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::uint64_t seq_ = 0;
  std::vector<FlowState> flows_;
  std::vector<std::int32_t> flow_class_;
  std::vector<LinkState> links_;
  std::vector<Welford> path_delay_;
  std::vector<std::size_t> path_drops_;
  std::vector<std::vector<double>> path_samples_;
  std::size_t packets_created_ = 0;
  std::size_t packets_delivered_ = 0;  // all deliveries, warmup included
  std::size_t processed_ = 0;
  // Cached registry reference; the event loop records lock-free.
  obs::Histogram* queue_depth_hist_ =
      &obs::Registry::global().histogram("sim.queue_depth_pkts");
};

SimResult Run::execute() {
  obs::TraceSpan run_span("sim.run");
  RN_CHECK(cfg_.horizon_s > cfg_.warmup_s, "horizon must exceed warmup");
  const int num_pairs = topo_.num_pairs();
  flows_.resize(static_cast<std::size_t>(num_pairs));
  flow_class_.resize(static_cast<std::size_t>(num_pairs), 0);
  for (int idx = 0; idx < num_pairs; ++idx) {
    if (cfg_.class_of_flow) {
      const int cls = cfg_.class_of_flow(idx);
      RN_CHECK(cls >= 0 && cls < cfg_.num_classes,
               "class_of_flow returned an out-of-range class");
      flow_class_[static_cast<std::size_t>(idx)] = cls;
    }
  }
  links_.resize(static_cast<std::size_t>(topo_.num_links()));
  const std::size_t queue_count =
      cfg_.scheduling == Scheduling::kFifo
          ? 1
          : static_cast<std::size_t>(cfg_.num_classes);
  for (LinkState& ls : links_) {
    ls.queues.resize(queue_count);
    ls.deficit.assign(queue_count, 0.0);
  }
  path_delay_.resize(static_cast<std::size_t>(num_pairs));
  path_drops_.assign(static_cast<std::size_t>(num_pairs), 0);
  if (cfg_.collect_samples) {
    path_samples_.resize(static_cast<std::size_t>(num_pairs));
  }

  // Seed each active flow with its first arrival.
  for (int idx = 0; idx < num_pairs; ++idx) {
    const double rate_bps = tm_.rate_by_index(idx);
    if (rate_bps <= 0.0) continue;
    FlowState& f = flows_[static_cast<std::size_t>(idx)];
    const double mean_pkt_rate = rate_bps / cfg_.model.mean_pkt_size_bits;
    if (cfg_.model.arrivals == traffic::ArrivalProcess::kOnOff) {
      f.pkt_rate_on = mean_pkt_rate / cfg_.model.on_fraction;
      f.on = rng_.bernoulli(cfg_.model.on_fraction);
      f.period_end = rng_.exponential(
          f.on ? cfg_.model.mean_on_s
               : cfg_.model.mean_on_s * (1.0 - cfg_.model.on_fraction) /
                     cfg_.model.on_fraction);
    } else {
      f.pkt_rate_on = mean_pkt_rate;
    }
    const double first = next_arrival_time(f, 0.0);
    if (first <= cfg_.horizon_s) {
      schedule(first, EventKind::kFlowArrival, idx);
    }
  }

  obs::Stopwatch wall;
  double now = 0.0;
  while (!events_.empty()) {
    const Event ev = events_.top();
    events_.pop();
    now = ev.time;
    ++processed_;
    switch (ev.kind) {
      case EventKind::kFlowArrival:
        handle_flow_arrival(ev.target, now);
        break;
      case EventKind::kServiceDone:
        handle_service_done(ev.target, now);
        break;
      case EventKind::kPacketArrive:
        deliver(ev.pkt, now);
        break;
    }
  }
  // `now` is the time of the last event; in-flight packets at that point are
  // simply not counted (standard truncation).

  const double wall_s = wall.elapsed_s();

  SimResult result;
  result.simulated_time_s = now;
  result.warmup_s = cfg_.warmup_s;
  result.total_events = processed_;
  result.packets_created = packets_created_;
  result.packets_delivered = packets_delivered_;
  result.wall_time_s = wall_s;
  result.events_per_wall_s =
      wall_s > 0.0 ? static_cast<double>(processed_) / wall_s : 0.0;
  result.paths.resize(static_cast<std::size_t>(num_pairs));
  for (int idx = 0; idx < num_pairs; ++idx) {
    const Welford& acc = path_delay_[static_cast<std::size_t>(idx)];
    PathStats& ps = result.paths[static_cast<std::size_t>(idx)];
    ps.delivered = acc.count();
    ps.dropped = path_drops_[static_cast<std::size_t>(idx)];
    ps.mean_delay_s = acc.count() > 0 ? acc.mean() : 0.0;
    ps.jitter_s = acc.stddev();
    if (cfg_.collect_samples &&
        !path_samples_[static_cast<std::size_t>(idx)].empty()) {
      ps.p99_delay_s =
          quantile(path_samples_[static_cast<std::size_t>(idx)], 0.99);
    }
  }
  const double window = std::max(1e-12, now - cfg_.warmup_s);
  result.links.resize(static_cast<std::size_t>(topo_.num_links()));
  for (topo::LinkId id = 0; id < topo_.num_links(); ++id) {
    LinkState& ls = links_[static_cast<std::size_t>(id)];
    // Close open accounting intervals at the final clock.
    if (ls.busy) {
      const double from = std::max(ls.busy_since, cfg_.warmup_s);
      if (now > from) ls.busy_accum += now - from;
    }
    note_queue_change(ls, now);
    LinkStats& out = result.links[static_cast<std::size_t>(id)];
    out.utilization = std::clamp(ls.busy_accum / window, 0.0, 1.0);
    out.mean_queue_pkts = ls.q_integral / window;
    out.peak_queue_pkts = ls.peak_queue;
    out.tx_pkts = ls.tx;
    out.drops = ls.drops;
    result.packets_dropped += ls.drops;
    result.peak_queue_pkts = std::max(result.peak_queue_pkts, ls.peak_queue);
  }
  // Whatever was neither delivered nor dropped is still in a queue, in
  // service, or in propagation when the horizon truncates the run.
  result.packets_in_flight =
      packets_created_ - packets_delivered_ - result.packets_dropped;

  // Run-end accounting fires once per simulation, which during threaded
  // dataset generation is hot enough to care about the registry mutex:
  // resolve the references once per process, update lock-free after.
  struct RunMetrics {
    obs::Registry& reg = obs::Registry::global();
    obs::Counter& events = reg.counter("sim.events_total");
    obs::Counter& created = reg.counter("sim.packets_created_total");
    obs::Counter& delivered = reg.counter("sim.packets_delivered_total");
    obs::Counter& dropped = reg.counter("sim.packets_dropped_total");
    obs::Counter& runs = reg.counter("sim.runs_total");
    obs::Histogram& wall = reg.histogram("sim.run_wall_s");
    obs::Gauge& peak_queue = reg.gauge("sim.peak_queue_pkts");
  };
  static RunMetrics metrics;
  metrics.events.add(processed_);
  metrics.created.add(packets_created_);
  metrics.delivered.add(packets_delivered_);
  metrics.dropped.add(result.packets_dropped);
  metrics.runs.add(1);
  metrics.wall.record(wall_s);
  metrics.peak_queue.set_max(static_cast<double>(result.peak_queue_pkts));

  obs::EventSink& sink = obs::EventSink::global();
  if (sink.enabled()) {
    obs::Event ev("sim.run");
    ev.f("events", result.total_events)
        .f("events_per_wall_s", result.events_per_wall_s)
        .f("wall_s", result.wall_time_s)
        .f("packets_created", result.packets_created)
        .f("packets_delivered", result.packets_delivered)
        .f("packets_dropped", result.packets_dropped)
        .f("packets_in_flight", result.packets_in_flight)
        .f("peak_queue_pkts", result.peak_queue_pkts)
        .f("simulated_s", result.simulated_time_s)
        .f("warmup_s", result.warmup_s)
        .f("measured_s", result.measured_time_s());
    sink.emit(ev);
  }
  return result;
}

}  // namespace

double SimResult::coverage(std::size_t min_pkts) const {
  if (paths.empty()) return 0.0;
  std::size_t ok = 0;
  for (const PathStats& p : paths) {
    if (p.delivered >= min_pkts) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(paths.size());
}

PacketSimulator::PacketSimulator(SimConfig cfg) : cfg_(std::move(cfg)) {
  RN_CHECK(cfg_.warmup_s >= 0.0, "warmup must be non-negative");
  RN_CHECK(cfg_.horizon_s > cfg_.warmup_s, "horizon must exceed warmup");
  RN_CHECK(cfg_.link_buffer_pkts >= 0, "buffer size must be non-negative");
  RN_CHECK(cfg_.num_classes >= 1, "need at least one traffic class");
  RN_CHECK(cfg_.scheduling == Scheduling::kFifo || cfg_.num_classes >= 1,
           "non-FIFO scheduling needs classes");
  RN_CHECK(cfg_.drr_quantum_bits > 0.0, "DRR quantum must be positive");
}

SimResult PacketSimulator::run(const topo::Topology& topo,
                               const routing::RoutingScheme& scheme,
                               const traffic::TrafficMatrix& tm) const {
  RN_CHECK(scheme.num_nodes() == topo.num_nodes(),
           "routing scheme does not match topology");
  RN_CHECK(tm.num_nodes() == topo.num_nodes(),
           "traffic matrix does not match topology");
  Run run(cfg_, topo, scheme, tm);
  return run.execute();
}

double horizon_for_target_packets(const traffic::TrafficMatrix& tm,
                                  const traffic::TrafficModel& model,
                                  double warmup_s,
                                  double target_pkts_per_flow) {
  RN_CHECK(target_pkts_per_flow > 0.0, "target packet count must be positive");
  const double total_pkt_rate =
      tm.total_rate_bps() / model.mean_pkt_size_bits;
  RN_CHECK(total_pkt_rate > 0.0, "traffic matrix is all zero");
  const double mean_flow_rate =
      total_pkt_rate / static_cast<double>(tm.num_pairs());
  return warmup_s + target_pkts_per_flow / mean_flow_rate;
}

}  // namespace rn::sim
