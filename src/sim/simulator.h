// Packet-level discrete-event network simulator.
//
// This is the ground-truth engine standing in for the paper's custom
// OMNeT++ simulator: every packet is generated from a per-flow stochastic
// process, queued FIFO at each output link it traverses, transmitted at
// link capacity, and its end-to-end delay recorded at the destination.
// Per-source/destination mean delay and jitter (delay standard deviation)
// are exactly the targets RouteNet learns to predict.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "routing/routing.h"
#include "topology/topology.h"
#include "traffic/traffic.h"
#include "util/rng.h"

namespace rn::sim {

// Output-queue scheduling discipline per link. kFifo is the paper's
// setting; the other two are QoS extensions (the direction later RouteNet
// variants explored) used by the scheduling tests and examples.
enum class Scheduling {
  kFifo,            // single queue, arrival order
  kStrictPriority,  // class 0 always preempts class 1 (non-preemptive of
                    // the packet in service)
  kDeficitRoundRobin,  // byte-fair service between classes
};

struct SimConfig {
  // Statistics only count packets created at or after warmup_s.
  double warmup_s = 1.0;
  // Simulation stops once the event clock passes horizon_s.
  double horizon_s = 30.0;
  std::uint64_t seed = 1;
  traffic::TrafficModel model;
  // Per-link queue capacity in packets (excluding the one in service);
  // 0 means infinite (pure delay, no loss). With multiple classes the cap
  // applies per class queue.
  int link_buffer_pkts = 0;
  // Keep up to max_samples_per_path raw delays (reservoir) for percentiles.
  bool collect_samples = false;
  std::size_t max_samples_per_path = 256;

  Scheduling scheduling = Scheduling::kFifo;
  int num_classes = 1;  // >1 only meaningful with non-FIFO scheduling
  // Maps a flow (pair index) to its class in [0, num_classes); null means
  // every flow is class 0.
  std::function<int(int pair_idx)> class_of_flow;
  // DRR quantum in bits added to a class's deficit per visit.
  double drr_quantum_bits = 1500.0;
};

struct PathStats {
  std::size_t delivered = 0;
  std::size_t dropped = 0;
  double mean_delay_s = 0.0;
  double jitter_s = 0.0;  // standard deviation of per-packet delay
  double p99_delay_s = 0.0;  // 0 unless collect_samples
};

struct LinkStats {
  double utilization = 0.0;      // busy fraction of post-warmup time
  double mean_queue_pkts = 0.0;  // time-averaged waiting-queue length
  std::size_t peak_queue_pkts = 0;  // max waiting packets (all classes)
  std::size_t tx_pkts = 0;
  std::size_t drops = 0;
};

struct SimResult {
  std::vector<PathStats> paths;  // indexed by topo::pair_index
  std::vector<LinkStats> links;
  double simulated_time_s = 0.0;
  double warmup_s = 0.0;  // copied from the config; measured window start
  std::size_t total_events = 0;
  std::size_t packets_created = 0;

  // Whole-run packet accounting (warmup included, unlike PathStats):
  // packets_created == packets_delivered + packets_dropped +
  // packets_in_flight holds for every scheduling discipline.
  std::size_t packets_delivered = 0;
  std::size_t packets_dropped = 0;
  std::size_t packets_in_flight = 0;  // still queued/in service at the end

  // Run-level telemetry: host wall time of the event loop, its throughput,
  // and the deepest any link queue got.
  double wall_time_s = 0.0;
  double events_per_wall_s = 0.0;
  std::size_t peak_queue_pkts = 0;

  // Simulated time covered by statistics (post-warmup).
  double measured_time_s() const {
    return simulated_time_s > warmup_s ? simulated_time_s - warmup_s : 0.0;
  }

  // Fraction of pairs that delivered at least min_pkts packets — a quick
  // health check that the horizon was long enough.
  double coverage(std::size_t min_pkts = 1) const;
};

class PacketSimulator {
 public:
  explicit PacketSimulator(SimConfig cfg);

  // Runs one scenario. The matrix, scheme, and topology must agree on the
  // node count; paths must be valid (validate_routing).
  SimResult run(const topo::Topology& topo,
                const routing::RoutingScheme& scheme,
                const traffic::TrafficMatrix& tm) const;

  const SimConfig& config() const { return cfg_; }

 private:
  SimConfig cfg_;
};

// Picks a horizon so the average flow emits roughly target_pkts_per_flow
// packets after warmup — keeps dataset generation time predictable across
// topology sizes and intensities.
double horizon_for_target_packets(const traffic::TrafficMatrix& tm,
                                  const traffic::TrafficModel& model,
                                  double warmup_s,
                                  double target_pkts_per_flow);

}  // namespace rn::sim
