// Streaming and batch statistics helpers shared by the simulator and the
// evaluation module.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "util/check.h"

namespace rn {

// Welford online accumulator: numerically stable mean/variance without
// storing samples. Used for per-path delay/jitter in the packet simulator.
class Welford {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }

  // Population variance; 0 for fewer than 2 samples.
  double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
  }

  double stddev() const { return std::sqrt(variance()); }

  void merge(const Welford& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * nb / (na + nb);
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    n_ += other.n_;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Quantile of a data vector via linear interpolation; q in [0, 1].
// Sorts a copy — intended for evaluation-time use, not hot paths.
inline double quantile(std::vector<double> xs, double q) {
  RN_CHECK(!xs.empty(), "quantile of empty vector");
  RN_CHECK(q >= 0.0 && q <= 1.0, "quantile q out of [0,1]");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

inline double mean_of(const std::vector<double>& xs) {
  RN_CHECK(!xs.empty(), "mean of empty vector");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

}  // namespace rn
