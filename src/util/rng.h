// Seeded random-number generation used by every stochastic component
// (topology generators, traffic models, the packet simulator, NN init).
//
// All randomness in the library flows through Rng so that experiments are
// reproducible from a single seed.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "util/check.h"

namespace rn {

// SplitMix64 finalizer: a cheap, statistically strong 64-bit mix.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Derives an independent seed for (base seed, named stream, element index).
// Every per-sample random decision in the dataset pipeline draws from a
// seed built this way, so the stream a sample sees depends only on its
// index — never on generation order or thread count.
inline std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream,
                                 std::uint64_t index) {
  return splitmix64(splitmix64(splitmix64(seed) ^ stream) ^ index);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    RN_CHECK(lo <= hi, "empty integer range");
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  // Exponential with the given mean (not rate).
  double exponential(double mean) {
    RN_CHECK(mean > 0.0, "exponential mean must be positive");
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  // Picks an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_pick(const std::vector<double>& weights) {
    RN_CHECK(!weights.empty(), "weighted_pick on empty weights");
    return std::discrete_distribution<std::size_t>(weights.begin(),
                                                   weights.end())(engine_);
  }

  // Derives an independent child stream; used to give each dataset sample
  // its own deterministic stream regardless of generation order.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace rn
