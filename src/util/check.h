// Lightweight runtime-check macro used across the library.
//
// RN_CHECK throws std::runtime_error with file/line context instead of
// aborting, so callers (and tests) can observe contract violations.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rn::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "RN_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::runtime_error(os.str());
}

}  // namespace rn::detail

#define RN_CHECK(cond, msg)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::rn::detail::check_failed(#cond, __FILE__, __LINE__, (msg));      \
    }                                                                    \
  } while (false)
