// Dataset pipeline: one Sample is the tuple the paper's datasets contain —
// (topology, routing scheme, traffic matrix) → simulated per-pair mean
// delay and jitter. The generator reproduces §2.1's recipe at configurable
// scale: for each sample it draws a routing scheme among the k shortest
// paths, a traffic matrix shape, and a traffic intensity, then runs the
// packet simulator to obtain targets.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "routing/routing.h"
#include "sim/simulator.h"
#include "topology/topology.h"
#include "traffic/traffic.h"
#include "util/rng.h"

namespace rn::dataset {

struct Sample {
  std::shared_ptr<const topo::Topology> topology;
  routing::RoutingScheme routing;
  traffic::TrafficMatrix tm;

  // Targets, indexed by topo::pair_index.
  std::vector<double> delay_s;
  std::vector<double> jitter_s;
  // A path is valid when the simulator delivered enough packets for its
  // statistics to be trustworthy; invalid paths stay in the message-passing
  // graph (their traffic loads links) but are excluded from losses/metrics.
  std::vector<std::uint8_t> valid;

  double max_link_utilization = 0.0;  // offered load, not measured

  int num_pairs() const { return static_cast<int>(delay_s.size()); }
  int num_valid() const;
};

// Wraps an unlabeled scenario triple as a Sample for inference: targets are
// zeroed and every pair is marked valid, sized from the topology. This is
// THE way to build a Sample without simulator labels — positional brace
// initialization silently misassigns fields when Sample grows.
Sample make_inference_sample(std::shared_ptr<const topo::Topology> topology,
                             routing::RoutingScheme routing,
                             traffic::TrafficMatrix tm);

enum class MatrixKind { kUniform, kGravity, kHotspot };

struct GeneratorConfig {
  // Routing variety: pick per pair among the k shortest paths.
  int k_paths = 3;
  // Traffic intensity sweep: each sample's matrix is scaled so its
  // most-loaded link sits at a utilization drawn from [min_util, max_util].
  double min_util = 0.30;
  double max_util = 0.85;
  // Matrix shapes to alternate through.
  std::vector<MatrixKind> matrix_kinds = {
      MatrixKind::kUniform, MatrixKind::kGravity, MatrixKind::kHotspot};
  traffic::TrafficModel model;
  // Simulation sizing.
  double warmup_s = 2.0;
  double target_pkts_per_flow = 150.0;
  std::size_t min_delivered = 20;  // validity threshold per path
};

// Every random decision behind sample i (routing draw, matrix kind, matrix
// values, intensity, simulation seed) is derived from (seed, i) alone, so a
// dataset is a pure function of its seed: generation order, interleaving
// with other generators, and thread count never change the output.
class DatasetGenerator {
 public:
  DatasetGenerator(GeneratorConfig cfg, std::uint64_t seed);

  // The scenario at an explicit sample index — the deterministic core both
  // entry points below delegate to. Thread-safe.
  Sample generate_at(std::shared_ptr<const topo::Topology> topology,
                     std::uint64_t sample_index) const;

  // One (routing, matrix, intensity) scenario on the given topology, at the
  // next sample index.
  Sample generate(std::shared_ptr<const topo::Topology> topology);

  // `count` scenarios at explicit global indices [first_index, first_index
  // + count), simulated concurrently on the global thread pool (bitwise
  // identical at any thread count); optional progress callback (completed,
  // count), serialized and monotone. This is the shard generator's entry
  // point: it never touches the internal cursor. Indices are u64
  // end-to-end — paper-scale corpora overflow int.
  std::vector<Sample> generate_range(
      std::shared_ptr<const topo::Topology> topology,
      std::uint64_t first_index, std::uint64_t count,
      const std::function<void(std::uint64_t, std::uint64_t)>& progress = {})
      const;

  // `count` scenarios at the internal cursor, advancing it.
  std::vector<Sample> generate_many(
      std::shared_ptr<const topo::Topology> topology, std::uint64_t count,
      const std::function<void(std::uint64_t, std::uint64_t)>& progress = {});

  const GeneratorConfig& config() const { return cfg_; }

 private:
  GeneratorConfig cfg_;
  std::uint64_t seed_;
  std::uint64_t next_index_ = 0;
};

// Normalization constants shared between training and inference. Inputs are
// scaled to O(1); targets are z-scored in log space by default (delay and
// jitter are positive and span decades, so log-space residuals align with
// the paper's relative-error metric). `log_space = false` switches to plain
// z-scoring of raw seconds — an ablation that loses the positivity guarantee
// and weights absolute rather than relative error.
struct Normalizer {
  double capacity_scale = 1.0;  // multiply capacities by this
  double traffic_scale = 1.0;   // multiply per-pair rates by this
  bool log_space = true;
  // When log_space, these are stats of log(delay); otherwise of raw delay.
  double log_delay_mean = 0.0;
  double log_delay_std = 1.0;
  double log_jitter_mean = 0.0;
  double log_jitter_std = 1.0;

  double normalize_delay(double delay_s) const;
  double denormalize_delay(double z) const;
  double normalize_jitter(double jitter_s) const;
  double denormalize_jitter(double z) const;
};

// Fits a Normalizer on (the valid paths of) a training set.
Normalizer fit_normalizer(const std::vector<Sample>& samples,
                          bool log_space = true);

// Deterministic shuffled split; fraction goes to the first return.
std::pair<std::vector<Sample>, std::vector<Sample>> split_dataset(
    std::vector<Sample> samples, double first_fraction, std::uint64_t seed);

// Binary dataset (de)serialization in the legacy RNDATA1 container,
// including the topology of each sample. Writes go through a temp file +
// atomic rename (a crash never leaves a torn dataset); reads are fully
// bounds-checked (codec.h) — truncated or corrupted files throw instead of
// over-allocating. For the sharded, CRC-indexed RNDS1 container see
// shard.h; for streaming consumption see stream.h.
void save_dataset(const std::string& path, const std::vector<Sample>& samples);
std::vector<Sample> load_dataset(const std::string& path);

}  // namespace rn::dataset
