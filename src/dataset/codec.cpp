#include "dataset/codec.h"

#include <cmath>

#include "util/check.h"

namespace rn::dataset {

namespace {

// Sanity ceilings for untrusted declared counts. Generous versus anything
// the paper (or this repo) generates, tight enough that a flipped high bit
// fails the arithmetic below instead of driving a multi-GB allocation.
constexpr std::size_t kMaxNameLen = 4096;
constexpr std::int32_t kMaxNodes = 16384;  // pairs fits comfortably in int32

bool finite_nonneg(double x) { return std::isfinite(x) && x >= 0.0; }

}  // namespace

void ByteReader::fail(const std::string& msg) const {
  throw std::runtime_error(context_ + ": " + msg);
}

void ByteReader::require(std::size_t n, const char* what) const {
  if (n > remaining()) {
    fail("truncated reading " + std::string(what) + " (need " +
         std::to_string(n) + " bytes, have " + std::to_string(remaining()) +
         ")");
  }
}

std::string ByteReader::str(std::size_t max_len, const char* what) {
  const auto len = pod<std::uint32_t>(what);
  if (len > max_len) {
    fail(std::string(what) + " length " + std::to_string(len) +
         " exceeds cap " + std::to_string(max_len));
  }
  require(len, what);
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

std::string_view ByteReader::bytes(std::size_t n, const char* what) {
  require(n, what);
  std::string_view v = data_.substr(pos_, n);
  pos_ += n;
  return v;
}

void ByteReader::expect_done(const char* what) const {
  if (remaining() != 0) {
    fail(std::to_string(remaining()) + " trailing bytes after " +
         std::string(what));
  }
}

void encode_sample(std::string& out, const Sample& s) {
  RN_CHECK(s.topology != nullptr, "cannot encode a sample with no topology");
  const topo::Topology& t = *s.topology;
  put_pod(out, static_cast<std::uint32_t>(t.name().size()));
  out.append(t.name());
  put_pod(out, static_cast<std::int32_t>(t.num_nodes()));
  put_pod(out, static_cast<std::int32_t>(t.num_links()));
  for (const topo::Link& l : t.links()) {
    put_pod(out, static_cast<std::int32_t>(l.src));
    put_pod(out, static_cast<std::int32_t>(l.dst));
    put_pod(out, l.capacity_bps);
    put_pod(out, l.prop_delay_s);
  }
  for (int idx = 0; idx < t.num_pairs(); ++idx) {
    const routing::Path& p = s.routing.path_by_index(idx);
    put_pod(out, static_cast<std::uint32_t>(p.size()));
    for (topo::LinkId id : p) put_pod(out, static_cast<std::int32_t>(id));
  }
  for (int idx = 0; idx < t.num_pairs(); ++idx) {
    put_pod(out, s.tm.rate_by_index(idx));
  }
  for (int idx = 0; idx < t.num_pairs(); ++idx) {
    put_pod(out, s.delay_s[static_cast<std::size_t>(idx)]);
    put_pod(out, s.jitter_s[static_cast<std::size_t>(idx)]);
    put_pod(out, s.valid[static_cast<std::size_t>(idx)]);
  }
  put_pod(out, s.max_link_utilization);
}

Sample decode_sample(ByteReader& in) {
  const std::string name = in.str(kMaxNameLen, "topology name");
  const auto num_nodes = in.pod<std::int32_t>("node count");
  const auto num_links = in.pod<std::int32_t>("link count");
  if (num_nodes < 1 || num_nodes > kMaxNodes) {
    in.fail("node count " + std::to_string(num_nodes) + " out of [1, " +
            std::to_string(kMaxNodes) + "]");
  }
  // Each link record is 24 bytes; validate against the bytes actually
  // present before building anything.
  constexpr std::size_t kLinkBytes = 4 + 4 + 8 + 8;
  if (num_links < 0 ||
      static_cast<std::size_t>(num_links) > in.remaining() / kLinkBytes) {
    in.fail("link count " + std::to_string(num_links) +
            " inconsistent with remaining bytes");
  }
  auto topology = std::make_shared<topo::Topology>(name, num_nodes);
  for (std::int32_t l = 0; l < num_links; ++l) {
    const auto src = in.pod<std::int32_t>("link src");
    const auto dst = in.pod<std::int32_t>("link dst");
    const auto cap = in.pod<double>("link capacity");
    const auto prop = in.pod<double>("link prop delay");
    if (src < 0 || src >= num_nodes || dst < 0 || dst >= num_nodes) {
      in.fail("link endpoint out of range");
    }
    if (!std::isfinite(cap) || cap <= 0.0 || !finite_nonneg(prop)) {
      in.fail("non-finite or non-positive link parameters");
    }
    topology->add_link(src, dst, cap, prop);
  }
  const int pairs = topology->num_pairs();
  routing::RoutingScheme scheme(num_nodes);
  for (int idx = 0; idx < pairs; ++idx) {
    const auto len = in.pod<std::uint32_t>("path length");
    // k-shortest paths are simple, so a path can never repeat a link.
    if (len > static_cast<std::uint32_t>(num_links)) {
      in.fail("path length " + std::to_string(len) + " exceeds link count");
    }
    in.require(static_cast<std::size_t>(len) * 4, "path link ids");
    routing::Path p(len);
    for (auto& id : p) {
      const auto raw = in.pod<std::int32_t>("path link id");
      if (raw < 0 || raw >= num_links) in.fail("path link id out of range");
      id = raw;
    }
    const auto [src, dst] = topo::pair_from_index(idx, num_nodes);
    scheme.set_path(src, dst, std::move(p));
  }
  traffic::TrafficMatrix tm(num_nodes);
  in.require(static_cast<std::size_t>(pairs) * 8, "traffic rates");
  for (int idx = 0; idx < pairs; ++idx) {
    const auto [src, dst] = topo::pair_from_index(idx, num_nodes);
    const auto rate = in.pod<double>("traffic rate");
    if (!finite_nonneg(rate)) in.fail("non-finite traffic rate");
    tm.set_rate_bps(src, dst, rate);
  }
  Sample s{std::move(topology), std::move(scheme), std::move(tm),
           {},  {},  {},  0.0};
  in.require(static_cast<std::size_t>(pairs) * (8 + 8 + 1), "path targets");
  s.delay_s.resize(static_cast<std::size_t>(pairs));
  s.jitter_s.resize(static_cast<std::size_t>(pairs));
  s.valid.resize(static_cast<std::size_t>(pairs));
  for (int idx = 0; idx < pairs; ++idx) {
    const auto delay = in.pod<double>("delay target");
    const auto jitter = in.pod<double>("jitter target");
    const auto valid = in.pod<std::uint8_t>("validity flag");
    if (!finite_nonneg(delay) || !finite_nonneg(jitter)) {
      in.fail("non-finite path target");
    }
    if (valid > 1) in.fail("validity flag out of {0, 1}");
    s.delay_s[static_cast<std::size_t>(idx)] = delay;
    s.jitter_s[static_cast<std::size_t>(idx)] = jitter;
    s.valid[static_cast<std::size_t>(idx)] = valid;
  }
  s.max_link_utilization = in.pod<double>("max link utilization");
  if (!finite_nonneg(s.max_link_utilization)) {
    in.fail("non-finite max link utilization");
  }
  return s;
}

std::vector<Sample> parse_dataset_bytes(std::string_view bytes,
                                        const std::string& context) {
  ByteReader in(bytes, context);
  const std::string_view magic = in.bytes(kDatasetMagicLen, "dataset magic");
  if (magic != std::string_view(kDatasetMagic, kDatasetMagicLen)) {
    in.fail("bad dataset magic");
  }
  const auto count = in.pod<std::uint32_t>("sample count");
  if (count > in.remaining() / kMinSampleBytes) {
    in.fail("declared sample count " + std::to_string(count) +
            " exceeds what " + std::to_string(in.remaining()) +
            " remaining bytes can hold");
  }
  std::vector<Sample> samples;
  samples.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    samples.push_back(decode_sample(in));
  }
  in.expect_done("dataset samples");
  return samples;
}

}  // namespace rn::dataset
