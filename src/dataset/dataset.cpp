#include "dataset/dataset.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <mutex>
#include <optional>

#include "obs/event.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "par/thread_pool.h"
#include "util/stats.h"

namespace rn::dataset {

namespace {
// Floor for log-space targets; below ~1 µs the simulator resolution and the
// log transform both stop being meaningful.
constexpr double kMinPositive = 1e-6;

// Stream tags separating the per-sample scenario RNG from the simulator
// seed (util/rng.h derive_seed).
constexpr std::uint64_t kScenarioStream = 0x5ce7a210;
constexpr std::uint64_t kSimStream = 0x51317ead;
}  // namespace

int Sample::num_valid() const {
  int n = 0;
  for (std::uint8_t v : valid) n += v ? 1 : 0;
  return n;
}

Sample make_inference_sample(std::shared_ptr<const topo::Topology> topology,
                             routing::RoutingScheme routing,
                             traffic::TrafficMatrix tm) {
  RN_CHECK(topology != nullptr, "inference sample needs a topology");
  RN_CHECK(tm.num_nodes() == topology->num_nodes(),
           "traffic matrix does not match the topology's node count");
  const auto pairs = static_cast<std::size_t>(topology->num_pairs());
  return Sample{std::move(topology),
                std::move(routing),
                std::move(tm),
                /*delay_s=*/std::vector<double>(pairs, 0.0),
                /*jitter_s=*/std::vector<double>(pairs, 0.0),
                /*valid=*/std::vector<std::uint8_t>(pairs, 1),
                /*max_link_utilization=*/0.0};
}

DatasetGenerator::DatasetGenerator(GeneratorConfig cfg, std::uint64_t seed)
    : cfg_(cfg), seed_(seed) {
  RN_CHECK(cfg_.k_paths >= 1, "k_paths must be at least 1");
  RN_CHECK(0.0 < cfg_.min_util && cfg_.min_util <= cfg_.max_util &&
               cfg_.max_util < 1.0,
           "utilization sweep must satisfy 0 < min <= max < 1");
  RN_CHECK(!cfg_.matrix_kinds.empty(), "need at least one matrix kind");
}

Sample DatasetGenerator::generate_at(
    std::shared_ptr<const topo::Topology> topology,
    std::uint64_t sample_index) const {
  RN_CHECK(topology != nullptr, "null topology");
  const topo::Topology& topo = *topology;
  const int n = topo.num_nodes();

  Rng rng(derive_seed(seed_, kScenarioStream, sample_index));
  routing::RoutingScheme scheme =
      cfg_.k_paths == 1
          ? routing::shortest_path_routing(topo)
          : routing::random_k_shortest_routing(topo, cfg_.k_paths, rng);

  const MatrixKind kind = cfg_.matrix_kinds[static_cast<std::size_t>(
      sample_index % cfg_.matrix_kinds.size())];
  traffic::TrafficMatrix tm = [&] {
    switch (kind) {
      case MatrixKind::kGravity:
        return traffic::gravity_traffic(n, 1.0e6, rng);
      case MatrixKind::kHotspot:
        return traffic::hotspot_traffic(n, std::max(1, n / 6), 100.0, 4.0,
                                        rng);
      case MatrixKind::kUniform:
      default:
        return traffic::uniform_traffic(n, 50.0, 150.0, rng);
    }
  }();
  const double target_util = rng.uniform(cfg_.min_util, cfg_.max_util);
  traffic::scale_to_max_utilization(tm, topo, scheme, target_util);

  sim::SimConfig sim_cfg;
  sim_cfg.model = cfg_.model;
  sim_cfg.warmup_s = cfg_.warmup_s;
  sim_cfg.horizon_s = sim::horizon_for_target_packets(
      tm, cfg_.model, cfg_.warmup_s, cfg_.target_pkts_per_flow);
  sim_cfg.seed = derive_seed(seed_, kSimStream, sample_index);
  const sim::PacketSimulator simulator(sim_cfg);
  const sim::SimResult result = simulator.run(topo, scheme, tm);

  Sample sample{std::move(topology), std::move(scheme), std::move(tm),
                {},  {},  {},  target_util};
  const int pairs = topo.num_pairs();
  sample.delay_s.resize(static_cast<std::size_t>(pairs));
  sample.jitter_s.resize(static_cast<std::size_t>(pairs));
  sample.valid.resize(static_cast<std::size_t>(pairs));
  for (int idx = 0; idx < pairs; ++idx) {
    const sim::PathStats& ps = result.paths[static_cast<std::size_t>(idx)];
    sample.delay_s[static_cast<std::size_t>(idx)] = ps.mean_delay_s;
    sample.jitter_s[static_cast<std::size_t>(idx)] = ps.jitter_s;
    sample.valid[static_cast<std::size_t>(idx)] =
        ps.delivered >= cfg_.min_delivered &&
                ps.mean_delay_s > kMinPositive
            ? 1
            : 0;
  }
  return sample;
}

Sample DatasetGenerator::generate(
    std::shared_ptr<const topo::Topology> topology) {
  return generate_at(std::move(topology), next_index_++);
}

std::vector<Sample> DatasetGenerator::generate_many(
    std::shared_ptr<const topo::Topology> topology, int count,
    const std::function<void(int, int)>& progress) {
  RN_CHECK(count >= 0, "negative sample count");
  const std::uint64_t first = next_index_;
  next_index_ += static_cast<std::uint64_t>(count);

  obs::Registry& reg = obs::Registry::global();
  obs::Histogram& h_sample = reg.histogram("dataset.sample_gen_s");
  obs::Counter& c_samples = reg.counter("dataset.samples_total");

  // Simulations are independent given their index-derived seeds; one task
  // per sample (simulations are seconds-long, so task overhead is noise).
  obs::Stopwatch watch;
  obs::TraceSpan gen_span("dataset.generate_many");
  gen_span.arg("samples", count);
  std::vector<std::optional<Sample>> slots(static_cast<std::size_t>(count));
  std::mutex progress_mu;
  int completed = 0;
  par::parallel_for(0, count, /*grain=*/1, [&](std::int64_t lo,
                                               std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      obs::ScopedTimer timer(h_sample);
      obs::TraceSpan sample_span("dataset.sample");
      sample_span.arg("index", i);
      slots[static_cast<std::size_t>(i)] =
          generate_at(topology, first + static_cast<std::uint64_t>(i));
      c_samples.add(1);
      if (progress) {
        std::lock_guard<std::mutex> lock(progress_mu);
        progress(++completed, count);
      }
    }
  });

  std::vector<Sample> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::optional<Sample>& slot : slots) out.push_back(std::move(*slot));

  const double wall_s = watch.elapsed_s();
  obs::EventSink& sink = obs::EventSink::global();
  if (sink.enabled() && count > 0) {
    obs::Event ev("dataset.generate_many");
    ev.f("samples", count)
        .f("threads", par::global_threads())
        .f("wall_s", wall_s)
        .f("samples_per_s", wall_s > 0.0 ? count / wall_s : 0.0);
    sink.emit(ev);
  }
  return out;
}

double Normalizer::normalize_delay(double delay_s) const {
  const double x = log_space ? std::log(std::max(delay_s, kMinPositive))
                             : delay_s;
  return (x - log_delay_mean) / log_delay_std;
}

double Normalizer::denormalize_delay(double z) const {
  const double x = z * log_delay_std + log_delay_mean;
  return log_space ? std::exp(x) : x;
}

double Normalizer::normalize_jitter(double jitter_s) const {
  const double x = log_space ? std::log(std::max(jitter_s, kMinPositive))
                             : jitter_s;
  return (x - log_jitter_mean) / log_jitter_std;
}

double Normalizer::denormalize_jitter(double z) const {
  const double x = z * log_jitter_std + log_jitter_mean;
  return log_space ? std::exp(x) : x;
}

Normalizer fit_normalizer(const std::vector<Sample>& samples,
                          bool log_space) {
  RN_CHECK(!samples.empty(), "cannot fit normalizer on empty dataset");
  Welford log_delay, log_jitter;
  double max_capacity = 0.0;
  double sum_traffic = 0.0;
  std::size_t traffic_count = 0;
  const auto transform = [log_space](double x) {
    return log_space ? std::log(std::max(x, kMinPositive)) : x;
  };
  for (const Sample& s : samples) {
    for (const topo::Link& l : s.topology->links()) {
      max_capacity = std::max(max_capacity, l.capacity_bps);
    }
    for (int idx = 0; idx < s.num_pairs(); ++idx) {
      sum_traffic += s.tm.rate_by_index(idx);
      ++traffic_count;
      if (!s.valid[static_cast<std::size_t>(idx)]) continue;
      log_delay.add(transform(s.delay_s[static_cast<std::size_t>(idx)]));
      log_jitter.add(transform(s.jitter_s[static_cast<std::size_t>(idx)]));
    }
  }
  RN_CHECK(log_delay.count() >= 2, "not enough valid paths to normalize");
  Normalizer norm;
  norm.log_space = log_space;
  norm.capacity_scale = max_capacity > 0.0 ? 1.0 / max_capacity : 1.0;
  const double mean_traffic =
      sum_traffic / static_cast<double>(std::max<std::size_t>(1, traffic_count));
  norm.traffic_scale = mean_traffic > 0.0 ? 1.0 / mean_traffic : 1.0;
  norm.log_delay_mean = log_delay.mean();
  norm.log_delay_std = std::max(1e-6, log_delay.stddev());
  norm.log_jitter_mean = log_jitter.mean();
  norm.log_jitter_std = std::max(1e-6, log_jitter.stddev());
  return norm;
}

std::pair<std::vector<Sample>, std::vector<Sample>> split_dataset(
    std::vector<Sample> samples, double first_fraction, std::uint64_t seed) {
  RN_CHECK(first_fraction >= 0.0 && first_fraction <= 1.0,
           "split fraction out of [0,1]");
  Rng rng(seed);
  // Fisher–Yates shuffle.
  for (std::size_t i = samples.size(); i > 1; --i) {
    const auto j =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(i) - 1));
    std::swap(samples[i - 1], samples[j]);
  }
  const auto cut = static_cast<std::size_t>(
      std::round(first_fraction * static_cast<double>(samples.size())));
  std::vector<Sample> first(
      std::make_move_iterator(samples.begin()),
      std::make_move_iterator(samples.begin() + static_cast<std::ptrdiff_t>(cut)));
  std::vector<Sample> second(
      std::make_move_iterator(samples.begin() + static_cast<std::ptrdiff_t>(cut)),
      std::make_move_iterator(samples.end()));
  return {std::move(first), std::move(second)};
}

namespace {

constexpr char kMagic[] = "RNDATA1\n";
constexpr std::size_t kMagicLen = 8;

template <typename T>
void write_pod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  RN_CHECK(in.good(), "truncated dataset file");
  return v;
}

void write_string(std::ofstream& out, const std::string& s) {
  write_pod(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::ifstream& in) {
  const auto len = read_pod<std::uint32_t>(in);
  std::string s(len, '\0');
  in.read(s.data(), len);
  RN_CHECK(in.good(), "truncated dataset string");
  return s;
}

}  // namespace

void save_dataset(const std::string& path,
                  const std::vector<Sample>& samples) {
  std::ofstream out(path, std::ios::binary);
  RN_CHECK(out.good(), "cannot open dataset for writing: " + path);
  out.write(kMagic, kMagicLen);
  write_pod(out, static_cast<std::uint32_t>(samples.size()));
  for (const Sample& s : samples) {
    const topo::Topology& t = *s.topology;
    write_string(out, t.name());
    write_pod(out, static_cast<std::int32_t>(t.num_nodes()));
    write_pod(out, static_cast<std::int32_t>(t.num_links()));
    for (const topo::Link& l : t.links()) {
      write_pod(out, static_cast<std::int32_t>(l.src));
      write_pod(out, static_cast<std::int32_t>(l.dst));
      write_pod(out, l.capacity_bps);
      write_pod(out, l.prop_delay_s);
    }
    for (int idx = 0; idx < t.num_pairs(); ++idx) {
      const routing::Path& p = s.routing.path_by_index(idx);
      write_pod(out, static_cast<std::uint32_t>(p.size()));
      for (topo::LinkId id : p) write_pod(out, static_cast<std::int32_t>(id));
    }
    for (int idx = 0; idx < t.num_pairs(); ++idx) {
      write_pod(out, s.tm.rate_by_index(idx));
    }
    for (int idx = 0; idx < t.num_pairs(); ++idx) {
      write_pod(out, s.delay_s[static_cast<std::size_t>(idx)]);
      write_pod(out, s.jitter_s[static_cast<std::size_t>(idx)]);
      write_pod(out, s.valid[static_cast<std::size_t>(idx)]);
    }
    write_pod(out, s.max_link_utilization);
  }
  RN_CHECK(out.good(), "write failure on dataset: " + path);
}

std::vector<Sample> load_dataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  RN_CHECK(in.good(), "cannot open dataset for reading: " + path);
  char magic[kMagicLen];
  in.read(magic, kMagicLen);
  RN_CHECK(in.good() && std::string(magic, kMagicLen) == kMagic,
           "bad dataset magic in " + path);
  const auto count = read_pod<std::uint32_t>(in);
  std::vector<Sample> samples;
  samples.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string name = read_string(in);
    const auto num_nodes = read_pod<std::int32_t>(in);
    const auto num_links = read_pod<std::int32_t>(in);
    auto topology = std::make_shared<topo::Topology>(name, num_nodes);
    for (std::int32_t l = 0; l < num_links; ++l) {
      const auto src = read_pod<std::int32_t>(in);
      const auto dst = read_pod<std::int32_t>(in);
      const auto cap = read_pod<double>(in);
      const auto prop = read_pod<double>(in);
      topology->add_link(src, dst, cap, prop);
    }
    routing::RoutingScheme scheme(num_nodes);
    for (int idx = 0; idx < topology->num_pairs(); ++idx) {
      const auto len = read_pod<std::uint32_t>(in);
      routing::Path p(len);
      for (auto& id : p) id = read_pod<std::int32_t>(in);
      const auto [src, dst] = topo::pair_from_index(idx, num_nodes);
      scheme.set_path(src, dst, std::move(p));
    }
    traffic::TrafficMatrix tm(num_nodes);
    for (int idx = 0; idx < topology->num_pairs(); ++idx) {
      const auto [src, dst] = topo::pair_from_index(idx, num_nodes);
      tm.set_rate_bps(src, dst, read_pod<double>(in));
    }
    Sample s{topology, std::move(scheme), std::move(tm), {}, {}, {}, 0.0};
    const int pairs = topology->num_pairs();
    s.delay_s.resize(static_cast<std::size_t>(pairs));
    s.jitter_s.resize(static_cast<std::size_t>(pairs));
    s.valid.resize(static_cast<std::size_t>(pairs));
    for (int idx = 0; idx < pairs; ++idx) {
      s.delay_s[static_cast<std::size_t>(idx)] = read_pod<double>(in);
      s.jitter_s[static_cast<std::size_t>(idx)] = read_pod<double>(in);
      s.valid[static_cast<std::size_t>(idx)] = read_pod<std::uint8_t>(in);
    }
    s.max_link_utilization = read_pod<double>(in);
    samples.push_back(std::move(s));
  }
  return samples;
}

}  // namespace rn::dataset
