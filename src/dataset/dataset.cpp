#include "dataset/dataset.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <mutex>
#include <optional>
#include <sstream>

#include "ag/serialize.h"
#include "dataset/codec.h"
#include "dataset/stream.h"
#include "obs/event.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "par/thread_pool.h"
#include "util/stats.h"

namespace rn::dataset {

namespace {
// Floor for log-space targets; below ~1 µs the simulator resolution and the
// log transform both stop being meaningful.
constexpr double kMinPositive = 1e-6;

// Stream tags separating the per-sample scenario RNG from the simulator
// seed (util/rng.h derive_seed).
constexpr std::uint64_t kScenarioStream = 0x5ce7a210;
constexpr std::uint64_t kSimStream = 0x51317ead;
}  // namespace

int Sample::num_valid() const {
  int n = 0;
  for (std::uint8_t v : valid) n += v ? 1 : 0;
  return n;
}

Sample make_inference_sample(std::shared_ptr<const topo::Topology> topology,
                             routing::RoutingScheme routing,
                             traffic::TrafficMatrix tm) {
  RN_CHECK(topology != nullptr, "inference sample needs a topology");
  RN_CHECK(tm.num_nodes() == topology->num_nodes(),
           "traffic matrix does not match the topology's node count");
  const auto pairs = static_cast<std::size_t>(topology->num_pairs());
  return Sample{std::move(topology),
                std::move(routing),
                std::move(tm),
                /*delay_s=*/std::vector<double>(pairs, 0.0),
                /*jitter_s=*/std::vector<double>(pairs, 0.0),
                /*valid=*/std::vector<std::uint8_t>(pairs, 1),
                /*max_link_utilization=*/0.0};
}

DatasetGenerator::DatasetGenerator(GeneratorConfig cfg, std::uint64_t seed)
    : cfg_(cfg), seed_(seed) {
  RN_CHECK(cfg_.k_paths >= 1, "k_paths must be at least 1");
  RN_CHECK(0.0 < cfg_.min_util && cfg_.min_util <= cfg_.max_util &&
               cfg_.max_util < 1.0,
           "utilization sweep must satisfy 0 < min <= max < 1");
  RN_CHECK(!cfg_.matrix_kinds.empty(), "need at least one matrix kind");
}

Sample DatasetGenerator::generate_at(
    std::shared_ptr<const topo::Topology> topology,
    std::uint64_t sample_index) const {
  RN_CHECK(topology != nullptr, "null topology");
  const topo::Topology& topo = *topology;
  const int n = topo.num_nodes();

  Rng rng(derive_seed(seed_, kScenarioStream, sample_index));
  routing::RoutingScheme scheme =
      cfg_.k_paths == 1
          ? routing::shortest_path_routing(topo)
          : routing::random_k_shortest_routing(topo, cfg_.k_paths, rng);

  const MatrixKind kind = cfg_.matrix_kinds[static_cast<std::size_t>(
      sample_index % cfg_.matrix_kinds.size())];
  traffic::TrafficMatrix tm = [&] {
    switch (kind) {
      case MatrixKind::kGravity:
        return traffic::gravity_traffic(n, 1.0e6, rng);
      case MatrixKind::kHotspot:
        return traffic::hotspot_traffic(n, std::max(1, n / 6), 100.0, 4.0,
                                        rng);
      case MatrixKind::kUniform:
      default:
        return traffic::uniform_traffic(n, 50.0, 150.0, rng);
    }
  }();
  const double target_util = rng.uniform(cfg_.min_util, cfg_.max_util);
  traffic::scale_to_max_utilization(tm, topo, scheme, target_util);

  sim::SimConfig sim_cfg;
  sim_cfg.model = cfg_.model;
  sim_cfg.warmup_s = cfg_.warmup_s;
  sim_cfg.horizon_s = sim::horizon_for_target_packets(
      tm, cfg_.model, cfg_.warmup_s, cfg_.target_pkts_per_flow);
  sim_cfg.seed = derive_seed(seed_, kSimStream, sample_index);
  const sim::PacketSimulator simulator(sim_cfg);
  const sim::SimResult result = simulator.run(topo, scheme, tm);

  Sample sample{std::move(topology), std::move(scheme), std::move(tm),
                {},  {},  {},  target_util};
  const int pairs = topo.num_pairs();
  sample.delay_s.resize(static_cast<std::size_t>(pairs));
  sample.jitter_s.resize(static_cast<std::size_t>(pairs));
  sample.valid.resize(static_cast<std::size_t>(pairs));
  for (int idx = 0; idx < pairs; ++idx) {
    const sim::PathStats& ps = result.paths[static_cast<std::size_t>(idx)];
    sample.delay_s[static_cast<std::size_t>(idx)] = ps.mean_delay_s;
    sample.jitter_s[static_cast<std::size_t>(idx)] = ps.jitter_s;
    sample.valid[static_cast<std::size_t>(idx)] =
        ps.delivered >= cfg_.min_delivered &&
                ps.mean_delay_s > kMinPositive
            ? 1
            : 0;
  }
  return sample;
}

Sample DatasetGenerator::generate(
    std::shared_ptr<const topo::Topology> topology) {
  return generate_at(std::move(topology), next_index_++);
}

std::vector<Sample> DatasetGenerator::generate_range(
    std::shared_ptr<const topo::Topology> topology, std::uint64_t first_index,
    std::uint64_t count,
    const std::function<void(std::uint64_t, std::uint64_t)>& progress) const {
  RN_CHECK(count <= static_cast<std::uint64_t>(
                        std::numeric_limits<std::int64_t>::max()),
           "sample count overflows the scheduler range");
  obs::Registry& reg = obs::Registry::global();
  obs::Histogram& h_sample = reg.histogram("dataset.sample_gen_s");
  obs::Counter& c_samples = reg.counter("dataset.samples_total");

  // Simulations are independent given their index-derived seeds; one task
  // per sample (simulations are seconds-long, so task overhead is noise).
  obs::Stopwatch watch;
  obs::TraceSpan gen_span("dataset.generate_many");
  gen_span.arg("samples", static_cast<std::int64_t>(count));
  std::vector<std::optional<Sample>> slots(static_cast<std::size_t>(count));
  std::mutex progress_mu;
  std::uint64_t completed = 0;
  par::parallel_for(0, static_cast<std::int64_t>(count), /*grain=*/1,
                    [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      obs::ScopedTimer timer(h_sample);
      obs::TraceSpan sample_span("dataset.sample");
      sample_span.arg("index", i);
      slots[static_cast<std::size_t>(i)] =
          generate_at(topology, first_index + static_cast<std::uint64_t>(i));
      c_samples.add(1);
      if (progress) {
        std::lock_guard<std::mutex> lock(progress_mu);
        progress(++completed, count);
      }
    }
  });

  std::vector<Sample> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::optional<Sample>& slot : slots) out.push_back(std::move(*slot));

  const double wall_s = watch.elapsed_s();
  obs::EventSink& sink = obs::EventSink::global();
  if (sink.enabled() && count > 0) {
    obs::Event ev("dataset.generate_many");
    ev.f("samples", static_cast<std::int64_t>(count))
        .f("threads", par::global_threads())
        .f("wall_s", wall_s)
        .f("samples_per_s",
           wall_s > 0.0 ? static_cast<double>(count) / wall_s : 0.0);
    sink.emit(ev);
  }
  return out;
}

std::vector<Sample> DatasetGenerator::generate_many(
    std::shared_ptr<const topo::Topology> topology, std::uint64_t count,
    const std::function<void(std::uint64_t, std::uint64_t)>& progress) {
  const std::uint64_t first = next_index_;
  next_index_ += count;
  return generate_range(std::move(topology), first, count, progress);
}

double Normalizer::normalize_delay(double delay_s) const {
  const double x = log_space ? std::log(std::max(delay_s, kMinPositive))
                             : delay_s;
  return (x - log_delay_mean) / log_delay_std;
}

double Normalizer::denormalize_delay(double z) const {
  const double x = z * log_delay_std + log_delay_mean;
  return log_space ? std::exp(x) : x;
}

double Normalizer::normalize_jitter(double jitter_s) const {
  const double x = log_space ? std::log(std::max(jitter_s, kMinPositive))
                             : jitter_s;
  return (x - log_jitter_mean) / log_jitter_std;
}

double Normalizer::denormalize_jitter(double z) const {
  const double x = z * log_jitter_std + log_jitter_mean;
  return log_space ? std::exp(x) : x;
}

Normalizer fit_normalizer(const std::vector<Sample>& samples,
                          bool log_space) {
  RN_CHECK(!samples.empty(), "cannot fit normalizer on empty dataset");
  VectorSampleSource source(samples);
  return fit_normalizer(source, log_space);
}

std::pair<std::vector<Sample>, std::vector<Sample>> split_dataset(
    std::vector<Sample> samples, double first_fraction, std::uint64_t seed) {
  RN_CHECK(first_fraction >= 0.0 && first_fraction <= 1.0,
           "split fraction out of [0,1]");
  Rng rng(seed);
  // Fisher–Yates shuffle.
  for (std::size_t i = samples.size(); i > 1; --i) {
    const auto j =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(i) - 1));
    std::swap(samples[i - 1], samples[j]);
  }
  const auto cut = static_cast<std::size_t>(
      std::round(first_fraction * static_cast<double>(samples.size())));
  std::vector<Sample> first(
      std::make_move_iterator(samples.begin()),
      std::make_move_iterator(samples.begin() + static_cast<std::ptrdiff_t>(cut)));
  std::vector<Sample> second(
      std::make_move_iterator(samples.begin() + static_cast<std::ptrdiff_t>(cut)),
      std::make_move_iterator(samples.end()));
  return {std::move(first), std::move(second)};
}

void save_dataset(const std::string& path,
                  const std::vector<Sample>& samples) {
  RN_CHECK(samples.size() <= 0xffffffffull,
           "legacy RNDATA1 container caps at u32 samples; use RNDS1 shards");
  std::string out;
  out.append(kDatasetMagic, kDatasetMagicLen);
  put_pod(out, static_cast<std::uint32_t>(samples.size()));
  for (const Sample& s : samples) encode_sample(out, s);
  // Temp + rename: a crash mid-write never leaves a torn dataset behind.
  ag::atomic_write_file(path, out);
}

std::vector<Sample> load_dataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  RN_CHECK(in.good(), "cannot open dataset for reading: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  RN_CHECK(!in.bad(), "read failure on dataset: " + path);
  const std::string bytes = std::move(buf).str();
  return parse_dataset_bytes(bytes, path);
}

}  // namespace rn::dataset
