// Shared bounds-checked binary codec for dataset Samples.
//
// One encoded record is the exact per-sample byte layout the legacy
// RNDATA1 blob has always used (so old files keep loading bit-for-bit):
//
//   u32 name_len + name bytes
//   i32 num_nodes, i32 num_links
//   num_links × { i32 src, i32 dst, f64 capacity_bps, f64 prop_delay_s }
//   num_pairs × { u32 path_len + path_len × i32 link ids }
//   num_pairs × f64 rate_bps
//   num_pairs × { f64 delay_s, f64 jitter_s, u8 valid }
//   f64 max_link_utilization
//
// The decoder ports the Cursor discipline from serve/protocol.cpp: every
// read is preceded by a length check that names the field, every declared
// count is validated against the bytes actually remaining BEFORE anything
// is allocated, and every id/value is range-checked. A truncated,
// bit-flipped, or adversarial file throws std::runtime_error; it never
// over-allocates or reads past the buffer.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "dataset/dataset.h"

namespace rn::dataset {

// Legacy whole-dataset container magic (header of *.ds files).
inline constexpr char kDatasetMagic[] = "RNDATA1\n";
inline constexpr std::size_t kDatasetMagicLen = 8;

// Smallest possible record: empty name, 1 node, 0 links, 0 pairs.
// u32 name_len + i32 nodes + i32 links + f64 max_util.
inline constexpr std::size_t kMinSampleBytes = 4 + 4 + 4 + 8;

// Appends one POD value to a byte string (host-endian, same convention as
// RNCKPT2 and the legacy dataset writer).
template <typename T>
void put_pod(std::string& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>, "POD only");
  out.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

// Bounds-checked forward reader over an in-memory byte image.
class ByteReader {
 public:
  ByteReader(std::string_view data, std::string context)
      : data_(data), context_(std::move(context)) {}

  template <typename T>
  T pod(const char* what) {
    static_assert(std::is_trivially_copyable_v<T>, "POD only");
    require(sizeof(T), what);
    T v{};
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  // u32-length-prefixed string, capped to keep a flipped length byte from
  // allocating gigabytes.
  std::string str(std::size_t max_len, const char* what);

  // Raw view of the next n bytes (validated), advancing the cursor.
  std::string_view bytes(std::size_t n, const char* what);

  void require(std::size_t n, const char* what) const;
  void expect_done(const char* what) const;
  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t pos() const { return pos_; }
  const std::string& context() const { return context_; }

  [[noreturn]] void fail(const std::string& msg) const;

 private:
  std::string_view data_;
  std::string context_;
  std::size_t pos_ = 0;
};

// Appends the canonical record for one sample to `out`.
void encode_sample(std::string& out, const Sample& s);

// Decodes one record from the reader's current position. Throws
// std::runtime_error on any structural problem.
Sample decode_sample(ByteReader& in);

// Parses a complete legacy RNDATA1 dataset image (magic + u32 count +
// records). Exposed separately from load_dataset so fuzz tests can hammer
// in-memory images without touching the filesystem.
std::vector<Sample> parse_dataset_bytes(std::string_view bytes,
                                        const std::string& context);

}  // namespace rn::dataset
