#include "dataset/shard.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "ag/serialize.h"
#include "dataset/codec.h"
#include "obs/event.h"
#include "util/check.h"

namespace rn::dataset {

namespace {

// Header bytes with the trailing CRC-32 over everything before it.
std::string encode_shard_header(const ShardHeader& h) {
  std::string out;
  out.append(kShardMagic, sizeof(kShardMagic));
  put_pod(out, kShardVersion);
  put_pod(out, h.seed);
  put_pod(out, h.config_fingerprint);
  put_pod(out, h.shard_index);
  put_pod(out, h.shard_count);
  put_pod(out, h.first_index);
  put_pod(out, h.count);
  put_pod(out, h.payload_len);
  put_pod(out, ag::crc32(out.data(), out.size()));
  RN_CHECK(out.size() == kShardHeaderBytes, "shard header layout drifted");
  return out;
}

constexpr std::size_t kIndexEntryBytes = 8 + 4 + 4;

}  // namespace

std::uint64_t config_fingerprint(const GeneratorConfig& cfg,
                                 const topo::Topology& topo) {
  // Canonical byte image of every field that influences generated samples.
  std::string c;
  put_pod(c, static_cast<std::int32_t>(cfg.k_paths));
  put_pod(c, cfg.min_util);
  put_pod(c, cfg.max_util);
  put_pod(c, static_cast<std::uint32_t>(cfg.matrix_kinds.size()));
  for (MatrixKind k : cfg.matrix_kinds) {
    put_pod(c, static_cast<std::int32_t>(k));
  }
  put_pod(c, static_cast<std::int32_t>(cfg.model.arrivals));
  put_pod(c, static_cast<std::int32_t>(cfg.model.sizes));
  put_pod(c, cfg.model.mean_pkt_size_bits);
  put_pod(c, cfg.model.on_fraction);
  put_pod(c, cfg.model.mean_on_s);
  put_pod(c, cfg.model.small_pkt_prob);
  put_pod(c, cfg.model.small_pkt_bits);
  put_pod(c, cfg.model.pareto_alpha);
  put_pod(c, cfg.model.pareto_max_factor);
  put_pod(c, cfg.warmup_s);
  put_pod(c, cfg.target_pkts_per_flow);
  put_pod(c, static_cast<std::uint64_t>(cfg.min_delivered));

  std::string t;
  put_pod(t, static_cast<std::uint32_t>(topo.name().size()));
  t.append(topo.name());
  put_pod(t, static_cast<std::int32_t>(topo.num_nodes()));
  put_pod(t, static_cast<std::int32_t>(topo.num_links()));
  for (const topo::Link& l : topo.links()) {
    put_pod(t, static_cast<std::int32_t>(l.src));
    put_pod(t, static_cast<std::int32_t>(l.dst));
    put_pod(t, l.capacity_bps);
    put_pod(t, l.prop_delay_s);
  }
  return (static_cast<std::uint64_t>(ag::crc32(c.data(), c.size())) << 32) |
         ag::crc32(t.data(), t.size());
}

std::uint64_t shard_first(std::uint64_t total, std::uint32_t index,
                          std::uint32_t count) {
  RN_CHECK(count >= 1 && index <= count, "shard index out of range");
  return static_cast<std::uint64_t>(
      static_cast<unsigned __int128>(total) * index / count);
}

ShardWriter::ShardWriter(std::string path, ShardHeader header)
    : path_(std::move(path)),
      tmp_path_(path_ + ".tmp"),
      header_(header) {
  header_.count = 0;
  header_.payload_len = 0;
  out_.open(tmp_path_, std::ios::binary | std::ios::trunc);
  RN_CHECK(out_.good(), "cannot open temporary shard for writing: " + tmp_path_);
  // Placeholder header; finish() patches the real one in.
  const std::string zeros(kShardHeaderBytes, '\0');
  out_.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
}

ShardWriter::~ShardWriter() {
  if (!finished_) {
    out_.close();
    std::remove(tmp_path_.c_str());
  }
}

void ShardWriter::add(const Sample& s) {
  scratch_.clear();
  encode_sample(scratch_, s);
  add_raw(scratch_, ag::crc32(scratch_.data(), scratch_.size()));
}

void ShardWriter::add_raw(std::string_view record, std::uint32_t crc) {
  RN_CHECK(!finished_, "ShardWriter already finished");
  RN_CHECK(record.size() <= 0xffffffffu, "record too large for u32 length");
  index_.push_back(ShardIndexEntry{header_.payload_len,
                                   static_cast<std::uint32_t>(record.size()),
                                   crc});
  out_.write(record.data(), static_cast<std::streamsize>(record.size()));
  header_.payload_len += record.size();
  ++header_.count;
}

std::uint64_t ShardWriter::finish() {
  RN_CHECK(!finished_, "ShardWriter already finished");
  std::string tail;
  tail.reserve(index_.size() * kIndexEntryBytes + 4);
  for (const ShardIndexEntry& e : index_) {
    put_pod(tail, e.offset);
    put_pod(tail, e.length);
    put_pod(tail, e.crc);
  }
  put_pod(tail, ag::crc32(tail.data(), tail.size()));
  out_.write(tail.data(), static_cast<std::streamsize>(tail.size()));
  const std::string header = encode_shard_header(header_);
  out_.seekp(0);
  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
  out_.flush();
  if (!out_.good()) {
    out_.close();
    std::remove(tmp_path_.c_str());
    finished_ = true;  // temp already cleaned up
    RN_CHECK(false, "write failure on shard: " + tmp_path_);
  }
  out_.close();
  std::error_code ec;
  std::filesystem::rename(tmp_path_, path_, ec);
  if (ec) {
    std::remove(tmp_path_.c_str());
    finished_ = true;
    RN_CHECK(false,
             "cannot rename " + tmp_path_ + " -> " + path_ + ": " + ec.message());
  }
  finished_ = true;
  return kShardHeaderBytes + header_.payload_len + tail.size();
}

ParsedShard parse_shard_bytes(std::string_view bytes,
                              const std::string& context) {
  ByteReader in(bytes, context);
  const std::string_view magic = in.bytes(sizeof(kShardMagic), "shard magic");
  if (std::memcmp(magic.data(), kShardMagic, sizeof(kShardMagic)) != 0) {
    in.fail("bad RNDS1 magic");
  }
  const auto version = in.pod<std::uint32_t>("shard version");
  if (version != kShardVersion) {
    in.fail("unsupported RNDS version " + std::to_string(version));
  }
  ParsedShard out;
  ShardHeader& h = out.header;
  h.seed = in.pod<std::uint64_t>("shard seed");
  h.config_fingerprint = in.pod<std::uint64_t>("config fingerprint");
  h.shard_index = in.pod<std::uint32_t>("shard index");
  h.shard_count = in.pod<std::uint32_t>("shard count");
  h.first_index = in.pod<std::uint64_t>("first sample index");
  h.count = in.pod<std::uint64_t>("record count");
  h.payload_len = in.pod<std::uint64_t>("payload length");
  const auto stored_crc = in.pod<std::uint32_t>("header crc");
  const std::uint32_t actual_crc =
      ag::crc32(bytes.data(), kShardHeaderBytes - 4);
  if (stored_crc != actual_crc) in.fail("shard header CRC mismatch");
  if (h.shard_count < 1 || h.shard_index >= h.shard_count) {
    in.fail("shard index " + std::to_string(h.shard_index) +
            " out of range for shard count " + std::to_string(h.shard_count));
  }
  if (h.first_index > UINT64_MAX - h.count) {
    in.fail("sample index range overflows");
  }
  // The file must be exactly header + payload + index + index CRC; all
  // arithmetic is checked against the real size before anything is sliced.
  const std::uint64_t sz = bytes.size();
  if (h.payload_len > sz - kShardHeaderBytes) {
    in.fail("payload length " + std::to_string(h.payload_len) +
            " exceeds file size");
  }
  const std::uint64_t rest = sz - kShardHeaderBytes - h.payload_len;
  if (rest < 4 || (rest - 4) % kIndexEntryBytes != 0 ||
      (rest - 4) / kIndexEntryBytes != h.count) {
    in.fail("file size inconsistent with declared record count");
  }
  const std::string_view index_bytes =
      bytes.substr(kShardHeaderBytes + h.payload_len,
                   static_cast<std::size_t>(h.count) * kIndexEntryBytes);
  std::uint32_t stored_index_crc = 0;
  std::memcpy(&stored_index_crc, bytes.data() + (sz - 4), 4);
  if (stored_index_crc != ag::crc32(index_bytes.data(), index_bytes.size())) {
    in.fail("shard index CRC mismatch");
  }
  out.index.reserve(static_cast<std::size_t>(h.count));
  std::uint64_t expect_offset = 0;
  for (std::uint64_t i = 0; i < h.count; ++i) {
    ShardIndexEntry e;
    const char* p =
        index_bytes.data() + static_cast<std::size_t>(i) * kIndexEntryBytes;
    std::memcpy(&e.offset, p, 8);
    std::memcpy(&e.length, p + 8, 4);
    std::memcpy(&e.crc, p + 12, 4);
    if (e.offset != expect_offset) in.fail("shard index does not tile payload");
    if (e.length > h.payload_len - e.offset) {
      in.fail("record " + std::to_string(i) + " overruns payload");
    }
    expect_offset = e.offset + e.length;
    out.index.push_back(e);
  }
  if (expect_offset != h.payload_len) {
    in.fail("shard index does not cover payload");
  }
  out.payload = bytes.substr(kShardHeaderBytes,
                             static_cast<std::size_t>(h.payload_len));
  return out;
}

void verify_shard_bytes(std::string_view bytes, const std::string& context) {
  const ParsedShard parsed = parse_shard_bytes(bytes, context);
  for (std::uint64_t i = 0; i < parsed.header.count; ++i) {
    const ShardIndexEntry& e = parsed.index[static_cast<std::size_t>(i)];
    const std::string_view rec =
        parsed.payload.substr(static_cast<std::size_t>(e.offset), e.length);
    if (ag::crc32(rec.data(), rec.size()) != e.crc) {
      throw std::runtime_error(context + ": record " + std::to_string(i) +
                               " CRC mismatch");
    }
    ByteReader rec_in(rec, context + " record " + std::to_string(i));
    (void)decode_sample(rec_in);
    rec_in.expect_done("sample record");
  }
}

ShardReader::ShardReader(const std::string& path) : path_(path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  RN_CHECK(fd >= 0, "cannot open shard for reading: " + path);
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    RN_CHECK(false, "cannot stat shard (or empty file): " + path);
  }
  const auto len = static_cast<std::size_t>(st.st_size);
  void* m = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  RN_CHECK(m != MAP_FAILED, "mmap failed for shard: " + path);
  map_ = m;
  map_len_ = len;
  bytes_ = std::string_view(static_cast<const char*>(m), len);
  try {
    parsed_ = parse_shard_bytes(bytes_, path);
  } catch (...) {
    ::munmap(map_, map_len_);
    map_ = nullptr;
    throw;
  }
}

ShardReader::~ShardReader() {
  if (map_ != nullptr) ::munmap(map_, map_len_);
}

std::string_view ShardReader::record(std::uint64_t i) const {
  RN_CHECK(i < parsed_.header.count,
           "record index out of range in " + path_);
  const ShardIndexEntry& e = parsed_.index[static_cast<std::size_t>(i)];
  return parsed_.payload.substr(static_cast<std::size_t>(e.offset), e.length);
}

std::uint32_t ShardReader::record_crc(std::uint64_t i) const {
  RN_CHECK(i < parsed_.header.count,
           "record index out of range in " + path_);
  return parsed_.index[static_cast<std::size_t>(i)].crc;
}

Sample ShardReader::sample(std::uint64_t i) const {
  const std::string_view rec = record(i);
  if (ag::crc32(rec.data(), rec.size()) != record_crc(i)) {
    throw std::runtime_error(path_ + ": record " + std::to_string(i) +
                             " CRC mismatch");
  }
  ByteReader in(rec, path_ + " record " + std::to_string(i));
  Sample s = decode_sample(in);
  in.expect_done("sample record");
  return s;
}

void ShardReader::verify_all() const {
  for (std::uint64_t i = 0; i < size(); ++i) (void)sample(i);
}

std::uint64_t generate_shard(
    const std::string& path, const GeneratorConfig& cfg, std::uint64_t seed,
    std::shared_ptr<const topo::Topology> topology, std::uint64_t total,
    std::uint32_t shard_index, std::uint32_t shard_count,
    const std::function<void(std::uint64_t, std::uint64_t)>& progress) {
  RN_CHECK(topology != nullptr, "null topology");
  RN_CHECK(shard_count >= 1 && shard_index < shard_count,
           "shard index out of range");
  const std::uint64_t first = shard_first(total, shard_index, shard_count);
  const std::uint64_t last = shard_first(total, shard_index + 1, shard_count);
  const std::uint64_t owned = last - first;

  ShardHeader header;
  header.seed = seed;
  header.config_fingerprint = config_fingerprint(cfg, *topology);
  header.shard_index = shard_index;
  header.shard_count = shard_count;
  header.first_index = first;
  ShardWriter writer(path, header);

  // Chunked generation keeps memory bounded by ~kChunk decoded samples no
  // matter how large the shard is; determinism is per-index, so chunking
  // cannot change the bytes.
  const DatasetGenerator gen(cfg, seed);
  constexpr std::uint64_t kChunk = 64;
  for (std::uint64_t done = 0; done < owned; done += kChunk) {
    const std::uint64_t n = std::min(kChunk, owned - done);
    std::function<void(std::uint64_t, std::uint64_t)> wrapped;
    if (progress) {
      wrapped = [&progress, done, owned](std::uint64_t d, std::uint64_t) {
        progress(done + d, owned);
      };
    }
    const std::vector<Sample> chunk =
        gen.generate_range(topology, first + done, n, wrapped);
    for (const Sample& s : chunk) writer.add(s);
  }
  const std::uint64_t file_bytes = writer.finish();

  obs::EventSink& sink = obs::EventSink::global();
  if (sink.enabled()) {
    obs::Event ev("dataset.shard.gen");
    ev.f("path", path)
        .f("shard_index", static_cast<std::int64_t>(shard_index))
        .f("shard_count", static_cast<std::int64_t>(shard_count))
        .f("first_index", static_cast<std::int64_t>(first))
        .f("samples", static_cast<std::int64_t>(owned))
        .f("file_bytes", static_cast<std::int64_t>(file_bytes));
    sink.emit(ev);
  }
  return file_bytes;
}

namespace {

// Opens every path, sorts by shard_index, and enforces the coherence
// contract shared by verify and merge: one generation run (same seed,
// fingerprint, version, shard_count), every shard present exactly once,
// and index ranges contiguous from the first shard's start.
std::vector<std::unique_ptr<ShardReader>> open_coherent_set(
    const std::vector<std::string>& paths) {
  RN_CHECK(!paths.empty(), "no shard files given");
  std::vector<std::unique_ptr<ShardReader>> readers;
  readers.reserve(paths.size());
  for (const std::string& p : paths) {
    readers.push_back(std::make_unique<ShardReader>(p));
  }
  std::sort(readers.begin(), readers.end(),
            [](const auto& a, const auto& b) {
              return a->header().shard_index < b->header().shard_index;
            });
  const ShardHeader& ref = readers.front()->header();
  if (readers.size() != ref.shard_count) {
    throw std::runtime_error(
        "incomplete shard set: headers declare " +
        std::to_string(ref.shard_count) + " shards, got " +
        std::to_string(readers.size()) + " files");
  }
  std::uint64_t expect_first = readers.front()->header().first_index;
  RN_CHECK(expect_first == 0, "shard set does not start at sample index 0");
  for (std::size_t i = 0; i < readers.size(); ++i) {
    const ShardHeader& h = readers[i]->header();
    const std::string& path = readers[i]->path();
    if (h.seed != ref.seed) {
      throw std::runtime_error(path + ": shard seed mismatch (" +
                               std::to_string(h.seed) + " vs " +
                               std::to_string(ref.seed) + ")");
    }
    if (h.config_fingerprint != ref.config_fingerprint) {
      throw std::runtime_error(path +
                               ": generator config/topology fingerprint "
                               "mismatch with the other shards");
    }
    if (h.shard_count != ref.shard_count) {
      throw std::runtime_error(path + ": shard count mismatch");
    }
    if (h.shard_index != i) {
      throw std::runtime_error(
          "shard set is not a partition: expected shard index " +
          std::to_string(i) + ", found " + std::to_string(h.shard_index) +
          " (" + path + ")");
    }
    if (h.first_index != expect_first) {
      throw std::runtime_error(
          path + ": first index " + std::to_string(h.first_index) +
          " leaves a gap (expected " + std::to_string(expect_first) + ")");
    }
    expect_first += h.count;
  }
  return readers;
}

}  // namespace

std::vector<ShardSummary> verify_shards(
    const std::vector<std::string>& paths) {
  const auto readers = open_coherent_set(paths);
  std::vector<ShardSummary> out;
  out.reserve(readers.size());
  for (const auto& r : readers) {
    r->verify_all();
    out.push_back(ShardSummary{r->path(), r->header(), r->file_bytes()});
  }
  return out;
}

std::uint64_t merge_shards(const std::string& out_path,
                           const std::vector<std::string>& inputs) {
  const auto readers = open_coherent_set(inputs);
  const ShardHeader& ref = readers.front()->header();
  ShardHeader header;
  header.seed = ref.seed;
  header.config_fingerprint = ref.config_fingerprint;
  header.shard_index = 0;
  header.shard_count = 1;
  header.first_index = 0;
  ShardWriter writer(out_path, header);
  for (const auto& r : readers) {
    for (std::uint64_t i = 0; i < r->size(); ++i) {
      const std::string_view rec = r->record(i);
      const std::uint32_t crc = r->record_crc(i);
      if (ag::crc32(rec.data(), rec.size()) != crc) {
        throw std::runtime_error(r->path() + ": record " + std::to_string(i) +
                                 " CRC mismatch");
      }
      writer.add_raw(rec, crc);
    }
  }
  return writer.finish();
}

}  // namespace rn::dataset
