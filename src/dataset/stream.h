// Sample sources: the trainer's view of a corpus.
//
// The fit loop consumes samples through the SampleSource interface so the
// same code path serves both an in-RAM std::vector<Sample> (zero-copy
// pointer indirection — exactly what the trainer always did) and an
// mmap-backed RNDS1 shard streamed from disk. materialize() is batch-
// oriented: the trainer asks for the sample indices of one minibatch, the
// source hands back stable pointers valid until the next materialize()
// call. A streamed epoch therefore holds at most one decoded minibatch in
// memory (plus whatever pages the kernel chooses to cache), so corpora no
// longer need to fit in RAM — the dataset.stream.* gauges prove it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dataset/dataset.h"
#include "dataset/shard.h"

namespace rn::dataset {

class SampleSource {
 public:
  virtual ~SampleSource() = default;

  virtual std::uint64_t size() const = 0;

  // Fills `out` with pointers to the samples at `indices`. Pointers stay
  // valid until the next materialize() call on this source (for the
  // vector-backed source: for its whole lifetime).
  virtual void materialize(const std::uint64_t* indices, std::size_t n,
                           std::vector<const Sample*>& out) = 0;
};

// Zero-copy view over an in-RAM vector; the vector must outlive the source.
class VectorSampleSource final : public SampleSource {
 public:
  explicit VectorSampleSource(const std::vector<Sample>& samples)
      : samples_(samples) {}

  std::uint64_t size() const override { return samples_.size(); }
  void materialize(const std::uint64_t* indices, std::size_t n,
                   std::vector<const Sample*>& out) override;

 private:
  const std::vector<Sample>& samples_;
};

struct StreamingOptions {
  // Hard cap on the encoded bytes one materialize() call may decode at
  // once. A batch that would exceed it throws instead of silently growing
  // resident memory — lower the batch size or raise the cap.
  std::size_t resident_cap_bytes = 256ull << 20;
};

// mmap-backed RNDS1 corpus. Each materialize() CRC-checks and decodes just
// the requested records into an internal buffer that is recycled on the
// next call.
class StreamingDataset final : public SampleSource {
 public:
  explicit StreamingDataset(const std::string& path,
                            StreamingOptions opts = {});

  std::uint64_t size() const override { return reader_.size(); }
  std::uint64_t file_bytes() const { return reader_.file_bytes(); }
  const ShardHeader& header() const { return reader_.header(); }
  const ShardReader& reader() const { return reader_; }

  void materialize(const std::uint64_t* indices, std::size_t n,
                   std::vector<const Sample*>& out) override;

 private:
  ShardReader reader_;
  StreamingOptions opts_;
  std::vector<Sample> batch_;
};

// Fits a Normalizer by streaming the source once in index order; on a
// VectorSampleSource this reproduces the historic vector overload
// bit-for-bit (same accumulation order), which is what keeps streamed
// training bitwise identical to in-RAM training.
Normalizer fit_normalizer(SampleSource& source, bool log_space = true);

// True when the file at `path` starts with the RNDS1 magic.
bool is_shard_file(const std::string& path);

// Loads either container fully into RAM: RNDS1 shards via a CRC-checked
// sweep, anything else through the legacy RNDATA1 loader.
std::vector<Sample> load_any_dataset(const std::string& path);

}  // namespace rn::dataset
