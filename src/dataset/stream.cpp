#include "dataset/stream.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>

#include "dataset/codec.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/stats.h"

namespace rn::dataset {

void VectorSampleSource::materialize(const std::uint64_t* indices,
                                     std::size_t n,
                                     std::vector<const Sample*>& out) {
  out.clear();
  out.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    RN_CHECK(indices[j] < samples_.size(), "sample index out of range");
    out.push_back(&samples_[static_cast<std::size_t>(indices[j])]);
  }
}

StreamingDataset::StreamingDataset(const std::string& path,
                                   StreamingOptions opts)
    : reader_(path), opts_(opts) {
  obs::Registry::global()
      .gauge("dataset.stream.file_bytes")
      .set(static_cast<double>(reader_.file_bytes()));
}

void StreamingDataset::materialize(const std::uint64_t* indices,
                                   std::size_t n,
                                   std::vector<const Sample*>& out) {
  obs::Registry& reg = obs::Registry::global();
  batch_.clear();
  batch_.reserve(n);
  out.clear();
  out.reserve(n);
  std::size_t bytes = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint64_t idx = indices[j];
    RN_CHECK(idx < reader_.size(), "sample index out of range");
    bytes += reader_.record(idx).size();
    RN_CHECK(bytes <= opts_.resident_cap_bytes,
             "streamed batch exceeds the resident cap (" +
                 std::to_string(opts_.resident_cap_bytes) +
                 " bytes); lower the batch size or raise the cap");
    batch_.push_back(reader_.sample(idx));
  }
  for (const Sample& s : batch_) out.push_back(&s);
  reg.counter("dataset.stream.records_read_total").add(n);
  reg.counter("dataset.stream.bytes_read_total").add(bytes);
  reg.gauge("dataset.stream.resident_bytes").set(static_cast<double>(bytes));
  reg.gauge("dataset.stream.resident_peak_bytes")
      .set_max(static_cast<double>(bytes));
}

namespace {
constexpr double kMinPositive = 1e-6;  // mirrors dataset.cpp's target floor
}

Normalizer fit_normalizer(SampleSource& source, bool log_space) {
  const std::uint64_t n = source.size();
  RN_CHECK(n > 0, "cannot fit normalizer on empty dataset");
  Welford log_delay, log_jitter;
  double max_capacity = 0.0;
  double sum_traffic = 0.0;
  std::size_t traffic_count = 0;
  const auto transform = [log_space](double x) {
    return log_space ? std::log(std::max(x, kMinPositive)) : x;
  };
  std::vector<const Sample*> ptrs;
  for (std::uint64_t i = 0; i < n; ++i) {
    source.materialize(&i, 1, ptrs);
    const Sample& s = *ptrs[0];
    for (const topo::Link& l : s.topology->links()) {
      max_capacity = std::max(max_capacity, l.capacity_bps);
    }
    for (int idx = 0; idx < s.num_pairs(); ++idx) {
      sum_traffic += s.tm.rate_by_index(idx);
      ++traffic_count;
      if (!s.valid[static_cast<std::size_t>(idx)]) continue;
      log_delay.add(transform(s.delay_s[static_cast<std::size_t>(idx)]));
      log_jitter.add(transform(s.jitter_s[static_cast<std::size_t>(idx)]));
    }
  }
  RN_CHECK(log_delay.count() >= 2, "not enough valid paths to normalize");
  Normalizer norm;
  norm.log_space = log_space;
  norm.capacity_scale = max_capacity > 0.0 ? 1.0 / max_capacity : 1.0;
  const double mean_traffic =
      sum_traffic /
      static_cast<double>(std::max<std::size_t>(1, traffic_count));
  norm.traffic_scale = mean_traffic > 0.0 ? 1.0 / mean_traffic : 1.0;
  norm.log_delay_mean = log_delay.mean();
  norm.log_delay_std = std::max(1e-6, log_delay.stddev());
  norm.log_jitter_mean = log_jitter.mean();
  norm.log_jitter_std = std::max(1e-6, log_jitter.stddev());
  return norm;
}

bool is_shard_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  char magic[sizeof(kShardMagic)] = {};
  in.read(magic, sizeof(magic));
  return in.gcount() == static_cast<std::streamsize>(sizeof(magic)) &&
         std::memcmp(magic, kShardMagic, sizeof(magic)) == 0;
}

std::vector<Sample> load_any_dataset(const std::string& path) {
  if (!is_shard_file(path)) return load_dataset(path);
  ShardReader reader(path);
  std::vector<Sample> out;
  out.reserve(static_cast<std::size_t>(reader.size()));
  for (std::uint64_t i = 0; i < reader.size(); ++i) {
    out.push_back(reader.sample(i));
  }
  return out;
}

}  // namespace rn::dataset
