// Bench-regression gate: compares two BENCH_*.json reports metric-by-metric
// so a bench trajectory becomes enforceable instead of advisory. Backs the
// `routenet obs diff A.json B.json [--threshold pct]` subcommand, which
// exits nonzero when B regresses past the threshold.
//
// Direction is inferred from the metric name (throughput-like keys are
// higher-better, latency/error-like keys are lower-better, everything else
// is neutral and never gates); `trace.by_name.*` per-span timings are
// skipped as run-to-run noise. Keys present in only one file are reported
// but do not gate — bench schema growth must not fail old baselines.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rn::obs {

// How a metric's name says it should move. kNeutral metrics are reported
// when they change but never count as regressions.
enum class MetricDirection { kHigherBetter, kLowerBetter, kNeutral };

// Classification used by diff_bench_files; exposed for tests.
MetricDirection metric_direction(const std::string& dotted_key);

struct DiffOptions {
  // Worsening beyond this percentage (relative to the baseline value) is a
  // regression.
  double threshold_pct = 10.0;
};

struct DiffLine {
  std::string key;  // dotted path, e.g. "telemetry.histograms.….p99"
  double a = 0.0;   // baseline value
  double b = 0.0;   // candidate value
  double change_pct = 0.0;  // signed, relative to |a|
  MetricDirection direction = MetricDirection::kNeutral;
  bool regression = false;   // worsened past threshold
  bool improvement = false;  // bettered past threshold
};

struct DiffReport {
  std::vector<DiffLine> lines;        // only beyond-threshold changes
  std::size_t compared = 0;           // numeric keys present in both files
  std::size_t regressions = 0;
  std::size_t improvements = 0;
  std::vector<std::string> only_in_a;
  std::vector<std::string> only_in_b;

  // Human-readable rollup for the CLI.
  std::string format(const std::string& path_a, const std::string& path_b,
                     double threshold_pct) const;
};

// Flattens both files to dotted numeric leaves and compares every key
// present in both. Throws std::runtime_error on unreadable or malformed
// input.
DiffReport diff_bench_files(const std::string& path_a,
                            const std::string& path_b,
                            const DiffOptions& opts = {});

}  // namespace rn::obs
