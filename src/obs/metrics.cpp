#include "obs/metrics.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <limits>

#include "obs/window.h"
#include "util/check.h"

namespace rn::obs {

namespace {

// Precomputed upper bounds of the log buckets: bounds[i] is the upper edge
// of log bucket i (i in [0, kBucketsPerDecade*kDecades)). Computed once so
// placement uses exact comparisons instead of log10 rounding.
const std::array<double, Histogram::kBucketsPerDecade* Histogram::kDecades>&
log_bucket_bounds() {
  static const auto bounds = [] {
    std::array<double, Histogram::kBucketsPerDecade * Histogram::kDecades> b{};
    for (std::size_t i = 0; i < b.size(); ++i) {
      b[i] = Histogram::kMinBound *
             std::pow(10.0, static_cast<double>(i + 1) /
                                Histogram::kBucketsPerDecade);
    }
    return b;
  }();
  return bounds;
}

void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void append_json_number(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out += buf;
}

}  // namespace

void Gauge::set_max(double v) { atomic_max(v_, v); }

int Histogram::bucket_index(double x) {
  if (!(x >= kMinBound)) return 0;  // underflow; NaN also lands here
  const auto& bounds = log_bucket_bounds();
  const auto it = std::upper_bound(bounds.begin(), bounds.end(), x);
  if (it == bounds.end()) return kNumBuckets - 1;  // overflow
  return static_cast<int>(it - bounds.begin()) + 1;
}

double Histogram::bucket_lower(int idx) {
  RN_CHECK(idx >= 0 && idx < kNumBuckets, "histogram bucket out of range");
  if (idx == 0) return 0.0;
  if (idx == 1) return kMinBound;
  return log_bucket_bounds()[static_cast<std::size_t>(idx - 2)];
}

double Histogram::bucket_upper(int idx) {
  RN_CHECK(idx >= 0 && idx < kNumBuckets, "histogram bucket out of range");
  if (idx == 0) return kMinBound;
  if (idx == kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  return log_bucket_bounds()[static_cast<std::size_t>(idx - 1)];
}

void Histogram::record(double x) {
  counts_[static_cast<std::size_t>(bucket_index(x))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, x);
  atomic_max(max_, x);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::quantile(double q) const {
  std::uint64_t counts[static_cast<std::size_t>(kNumBuckets)];
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[static_cast<std::size_t>(i)] = bucket_count(i);
  }
  return quantile_from_buckets(counts, count(), max(), q);
}

double Histogram::quantile_from_buckets(const std::uint64_t* counts,
                                        std::uint64_t total, double exact_max,
                                        double q) {
  RN_CHECK(q >= 0.0 && q <= 1.0, "quantile q out of [0,1]");
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const auto n = static_cast<double>(counts[static_cast<std::size_t>(i)]);
    if (n == 0.0) continue;
    if (cum + n >= target) {
      const double frac = std::clamp((target - cum) / n, 0.0, 1.0);
      const double lo = bucket_lower(i);
      // Cap open-ended/top buckets at the exact observed maximum.
      const double hi = std::min(bucket_upper(i), exact_max);
      return lo + frac * (std::max(hi, lo) - lo);
    }
    cum += n;
  }
  return exact_max;
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

std::string RegistrySnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    out += std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    append_json_number(out, v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramStats& h : histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += h.name;
    out += "\":{\"count\":";
    out += std::to_string(h.count);
    out += ",\"mean\":";
    append_json_number(out, h.mean);
    out += ",\"p50\":";
    append_json_number(out, h.p50);
    out += ",\"p95\":";
    append_json_number(out, h.p95);
    out += ",\"p99\":";
    append_json_number(out, h.p99);
    out += ",\"max\":";
    append_json_number(out, h.max);
    out += '}';
  }
  out += "},\"windows\":{";
  first = true;
  for (const WindowStats& w : windows) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += w.name;
    out += "\":{\"window_s\":";
    append_json_number(out, w.window_s);
    out += ",\"count\":";
    out += std::to_string(w.count);
    out += ",\"p50\":";
    append_json_number(out, w.p50);
    out += ",\"p95\":";
    append_json_number(out, w.p95);
    out += ",\"p99\":";
    append_json_number(out, w.p99);
    if (!w.exemplars.empty()) {
      out += ",\"exemplars\":[";
      bool first_ex = true;
      for (const Exemplar& ex : w.exemplars) {
        if (!first_ex) out += ',';
        first_ex = false;
        out += "{\"bucket\":";
        out += std::to_string(ex.bucket);
        out += ",\"value\":";
        append_json_number(out, ex.value);
        out += ",\"rid\":";
        out += std::to_string(ex.tag);
        out += '}';
      }
      out += ']';
    }
    out += '}';
  }
  out += "}}";
  return out;
}

Registry::Registry() = default;
Registry::~Registry() = default;

Registry& Registry::global() {
  static Registry* instance = new Registry();  // never destroyed
  return *instance;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

WindowedHistogram& Registry::windowed(std::string_view name, double window_s,
                                      int slots) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = windows_.find(name);
  if (it == windows_.end()) {
    it = windows_
             .emplace(std::string(name),
                      std::make_unique<WindowedHistogram>(window_s, slots))
             .first;
  }
  return *it->second;
}

RegistrySnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    RegistrySnapshot::HistogramStats s;
    s.name = name;
    s.count = h->count();
    s.mean = h->mean();
    s.p50 = h->quantile(0.5);
    s.p95 = h->quantile(0.95);
    s.p99 = h->quantile(0.99);
    s.max = h->max();
    snap.histograms.push_back(std::move(s));
  }
  for (const auto& [name, w] : windows_) {
    const WindowedHistogram::Stats ws = w->stats();
    RegistrySnapshot::WindowStats s;
    s.name = name;
    s.window_s = w->window_s();
    s.count = ws.count;
    s.p50 = ws.p50;
    s.p95 = ws.p95;
    s.p99 = ws.p99;
    s.exemplars = w->exemplars();
    snap.windows.push_back(std::move(s));
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, w] : windows_) w->reset();
}

}  // namespace rn::obs
