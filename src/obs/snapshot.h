// Periodic telemetry snapshots: a background thread that every period_s
// seconds emits one `obs.snapshot` JSONL event to the global EventSink —
// counter deltas since the previous snapshot, gauge values, all-time
// histogram p99s, sliding-window quantiles of every windowed histogram,
// and the tracer's dropped/sampled-out totals. This turns a long `routenet
// serve` or training run into a live time series instead of one terminal
// `metrics.snapshot`.
//
// Enabled by the CLI via `--stats-every-s S` (or RN_STATS_EVERY_S); the
// CLI stops the reporter before closing the sink, and stop() emits one
// final snapshot so short runs still record at least one (the drain
// contract covered by obs_snapshot_test).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace rn::obs {

class StatsReporter {
 public:
  static StatsReporter& global();

  // Starts the background thread emitting every period_s seconds. No-op if
  // already running. Throws on period_s <= 0.
  void start(double period_s);
  // start(period_s) when period_s > 0, else start($RN_STATS_EVERY_S) when
  // the env var parses to a positive number, else stays stopped.
  void start_or_env(double period_s);
  // Emits one final snapshot, then joins the thread. Idempotent; safe to
  // call when never started.
  void stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }
  std::uint64_t emitted() const {
    return emitted_.load(std::memory_order_relaxed);
  }

  // Builds and emits one obs.snapshot now (no-op when the EventSink is
  // disabled). Public as the deterministic seam for tests; the background
  // thread calls exactly this.
  void emit_once();

 private:
  void loop();

  std::mutex mu_;  // guards stop_requested_ for the cv + thread_ lifecycle
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::thread thread_;
  double period_s_ = 0.0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> emitted_{0};

  std::mutex emit_mu_;  // serializes emit_once; guards prev_counters_
  std::map<std::string, std::uint64_t> prev_counters_;
};

}  // namespace rn::obs
