// Rollup of a JSONL telemetry file (`routenet obs summarize <file>`):
// validates that every line parses as a `{"ts":…,"kind":…,"fields":{…}}`
// record, then prints per-kind distributions of numeric fields (count /
// mean / p50 / p95 / max) and the counter totals carried by the final
// `metrics.snapshot` event.
#pragma once

#include <string>

namespace rn::obs {

// Reads and validates the file, returning the formatted human-readable
// summary. Throws std::runtime_error on an unreadable file or on the first
// malformed line (with its line number) — which is what makes this the
// python-free telemetry smoke check in CTest.
std::string summarize_jsonl_file(const std::string& path);

}  // namespace rn::obs
