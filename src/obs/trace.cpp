#include "obs/trace.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"
#include "util/check.h"

namespace rn::obs {

namespace {

// Steady-clock origin shared by every span so exported timestamps are
// comparable across threads.
std::chrono::steady_clock::time_point trace_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

double now_s() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       trace_epoch())
      .count();
}

// Single-producer (owning thread) / single-consumer (whoever holds the
// collector mutex) ring of completed spans. Producer side is lock-free.
struct ThreadRing {
  static constexpr std::size_t kCapacity = 8192;  // power of two

  std::atomic<std::uint64_t> head{0};  // next write, owned by the producer
  std::atomic<std::uint64_t> tail{0};  // next read, owned by the consumer
  std::array<TraceRecord, kCapacity> slots;

  bool push(const TraceRecord& r) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    const std::uint64_t t = tail.load(std::memory_order_acquire);
    if (h - t >= kCapacity) return false;
    slots[h % kCapacity] = r;
    head.store(h + 1, std::memory_order_release);
    return true;
  }

  std::size_t size() const {
    return static_cast<std::size_t>(head.load(std::memory_order_relaxed) -
                                    tail.load(std::memory_order_relaxed));
  }

  // Consumer side — callers must hold the collector mutex.
  void drain_into(std::vector<TraceRecord>& out) {
    const std::uint64_t h = head.load(std::memory_order_acquire);
    std::uint64_t t = tail.load(std::memory_order_relaxed);
    for (; t < h; ++t) out.push_back(slots[t % kCapacity]);
    tail.store(t, std::memory_order_release);
  }
};

struct Collector {
  std::mutex mu;
  // Rings are shared with their owning thread; keeping them here lets the
  // collector read spans of threads that have already exited (pool
  // rebuilds) and keeps addresses stable for the producers.
  std::vector<std::shared_ptr<ThreadRing>> rings;
  std::vector<TraceRecord> spilled;
  std::atomic<std::uint32_t> next_tid{0};
};

Collector& collector() {
  static Collector* c = new Collector();  // never destroyed
  return *c;
}

constexpr int kMaxDepth = 64;

struct ThreadState {
  std::shared_ptr<ThreadRing> ring;
  std::uint32_t tid = 0;
  std::uint64_t stack[kMaxDepth];
  int depth = 0;
};

// First trace use on a thread registers its ring with the collector; the
// shared_ptr keeps the ring (and any unread spans) alive after the thread
// exits.
ThreadState& thread_state() {
  thread_local ThreadState state = [] {
    ThreadState s;
    s.ring = std::make_shared<ThreadRing>();
    Collector& c = collector();
    std::lock_guard<std::mutex> lock(c.mu);
    s.tid = c.next_tid.fetch_add(1, std::memory_order_relaxed) + 1;
    c.rings.push_back(s.ring);
    return s;
  }();
  return state;
}

// Neutral row for aggregation: works for both live TraceRecords and rows
// re-parsed from an exported file.
struct SpanRow {
  std::string name;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  double start_s = 0.0;
  double dur_s = 0.0;
  std::uint32_t tid = 0;
};

struct NameStats {
  std::size_t count = 0;
  double total_s = 0.0;
  double self_s = 0.0;
};

struct TraceAggregate {
  std::map<std::string, NameStats> by_name;
  std::map<std::uint32_t, double> busy_by_tid;  // thread-root span seconds
  double min_start_s = 0.0;
  double max_end_s = 0.0;
  std::size_t spans = 0;
};

TraceAggregate aggregate_rows(const std::vector<SpanRow>& rows) {
  TraceAggregate agg;
  agg.spans = rows.size();
  if (rows.empty()) return agg;
  // Direct-children duration per span id, for self time; span tid per id,
  // for thread-root detection (a span whose parent ran on another thread
  // counts toward its own thread's busy time).
  std::map<std::uint64_t, double> child_s;
  std::map<std::uint64_t, std::uint32_t> tid_of;
  for (const SpanRow& r : rows) tid_of[r.id] = r.tid;
  agg.min_start_s = rows.front().start_s;
  agg.max_end_s = rows.front().start_s + rows.front().dur_s;
  for (const SpanRow& r : rows) {
    if (r.parent != 0) child_s[r.parent] += r.dur_s;
    agg.min_start_s = std::min(agg.min_start_s, r.start_s);
    agg.max_end_s = std::max(agg.max_end_s, r.start_s + r.dur_s);
  }
  for (const SpanRow& r : rows) {
    NameStats& s = agg.by_name[r.name];
    ++s.count;
    s.total_s += r.dur_s;
    const auto it = child_s.find(r.id);
    // Clamped at 0: children running concurrently on other threads can sum
    // past the parent's own duration.
    s.self_s += std::max(
        0.0, r.dur_s - (it != child_s.end() ? it->second : 0.0));
    const auto parent_tid = tid_of.find(r.parent);
    const bool thread_root =
        r.parent == 0 || parent_tid == tid_of.end() ||
        parent_tid->second != r.tid;
    if (thread_root) agg.busy_by_tid[r.tid] += r.dur_s;
  }
  return agg;
}

std::vector<SpanRow> rows_from_records(
    const std::vector<TraceRecord>& records) {
  std::vector<SpanRow> rows;
  rows.reserve(records.size());
  for (const TraceRecord& r : records) {
    rows.push_back({r.name, r.id, r.parent, r.start_s, r.dur_s, r.tid});
  }
  return rows;
}

}  // namespace

Tracer& Tracer::global() {
  static Tracer* instance = new Tracer();  // never destroyed
  return *instance;
}

void Tracer::enable() {
  trace_epoch();  // pin the time origin before the first span
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::set_out_path(const std::string& path) {
  RN_CHECK(!path.empty(), "empty trace output path");
  out_path_ = path;
  enable();
}

void Tracer::open_or_env(const std::string& path) {
  if (!path.empty()) {
    set_out_path(path);
    return;
  }
  const char* env = std::getenv("RN_TRACE_OUT");
  if (env != nullptr && env[0] != '\0') set_out_path(env);
}

void Tracer::set_min_duration_s(double s) {
  RN_CHECK(s >= 0.0, "trace min duration must be non-negative");
  min_duration_s_.store(s, std::memory_order_relaxed);
}

void Tracer::set_sampling_spec(const std::string& spec) {
  RN_CHECK(!enabled(),
           "trace sampling must be configured before tracing starts");
  sample_rules_.clear();
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    RN_CHECK(eq != std::string::npos && eq > 0,
             "trace sampling entry must be prefix=N: " + entry);
    const std::string prefix = entry.substr(0, eq);
    char* end = nullptr;
    const unsigned long long n =
        std::strtoull(entry.c_str() + eq + 1, &end, 10);
    RN_CHECK(end != nullptr && *end == '\0' && n >= 1,
             "trace sampling rate must be an integer >= 1: " + entry);
    auto rule = std::make_unique<SampleRule>();
    rule->prefix = prefix;
    rule->keep_one_in = n;
    sample_rules_.push_back(std::move(rule));
  }
}

void Tracer::configure_sampling_or_env(double min_us,
                                       const std::string& spec) {
  if (min_us >= 0.0) {
    set_min_duration_s(min_us * 1e-6);
  } else {
    const char* env = std::getenv("RN_TRACE_MIN_US");
    if (env != nullptr && env[0] != '\0') {
      const double parsed = std::atof(env);
      if (parsed > 0.0) set_min_duration_s(parsed * 1e-6);
    }
  }
  if (!spec.empty()) {
    set_sampling_spec(spec);
  } else {
    const char* env = std::getenv("RN_TRACE_SAMPLE");
    if (env != nullptr && env[0] != '\0') set_sampling_spec(env);
  }
}

bool Tracer::should_record(const char* name, double dur_s) {
  if (dur_s < min_duration_s_.load(std::memory_order_relaxed)) {
    sampled_out_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  for (const std::unique_ptr<SampleRule>& rule : sample_rules_) {
    const std::size_t len = rule->prefix.size();
    if (std::strncmp(name, rule->prefix.c_str(), len) != 0) continue;
    const std::uint64_t seen =
        rule->seen.fetch_add(1, std::memory_order_relaxed);
    if (seen % rule->keep_one_in == 0) return true;
    sampled_out_.fetch_add(1, std::memory_order_relaxed);
    return false;  // first matching rule decides
  }
  return true;
}

std::vector<TraceRecord> Tracer::collect() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  std::vector<TraceRecord> out = std::move(c.spilled);
  c.spilled.clear();
  for (const std::shared_ptr<ThreadRing>& ring : c.rings) {
    ring->drain_into(out);
  }
  return out;
}

void Tracer::export_and_close(bool merge_existing) {
  const std::vector<TraceRecord> records = collect();
  if (!out_path_.empty()) {
    write_chrome_trace(out_path_, records, merge_existing, dropped(),
                       sampled_out());
  }
  disable();
}

void Tracer::reset_for_tests() {
  disable();
  collect();  // discard
  dropped_.store(0, std::memory_order_relaxed);
  sampled_out_.store(0, std::memory_order_relaxed);
  min_duration_s_.store(0.0, std::memory_order_relaxed);
  sample_rules_.clear();
  out_path_.clear();
}

std::uint64_t trace_current_span() {
  if (!Tracer::global().enabled()) return 0;
  const ThreadState& state = thread_state();
  return state.depth > 0 ? state.stack[state.depth - 1] : 0;
}

double trace_now_s() {
  if (!Tracer::global().enabled()) return 0.0;
  return now_s();
}

std::uint64_t Tracer::emit_complete(const char* name, std::uint64_t parent,
                                    double start_s, double dur_s,
                                    const char* arg_key,
                                    std::int64_t arg_val) {
  if (!enabled()) return 0;
  if (!should_record(name, dur_s)) return 0;
  ThreadState& state = thread_state();
  TraceRecord record;
  record.name = name;
  record.id = next_span_id();
  record.parent = parent;
  record.start_s = start_s;
  record.dur_s = dur_s;
  record.tid = state.tid;
  record.arg_key = arg_key;
  record.arg_val = arg_val;
  if (!state.ring->push(record)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  if (state.ring->size() >= ThreadRing::kCapacity / 2) {
    Collector& c = collector();
    std::lock_guard<std::mutex> lock(c.mu);
    state.ring->drain_into(c.spilled);
  }
  return record.id;
}

TraceSpan::TraceSpan(const char* name) {
  if (!Tracer::global().enabled()) return;  // the entire disabled path
  begin(name, 0, /*explicit_parent=*/false);
}

TraceSpan::TraceSpan(const char* name, std::uint64_t parent) {
  if (!Tracer::global().enabled()) return;
  begin(name, parent, /*explicit_parent=*/true);
}

void TraceSpan::begin(const char* name, std::uint64_t parent,
                      bool explicit_parent) {
  ThreadState& state = thread_state();
  name_ = name;
  id_ = Tracer::global().next_span_id();
  parent_ = explicit_parent
                ? parent
                : (state.depth > 0 ? state.stack[state.depth - 1] : 0);
  if (state.depth < kMaxDepth) {
    state.stack[state.depth++] = id_;
    pushed_ = true;
  }
  start_s_ = now_s();
  active_ = true;
}

void TraceSpan::end() {
  if (!active_) return;
  active_ = false;
  const double end_s = now_s();
  ThreadState& state = thread_state();
  if (pushed_) --state.depth;
  Tracer& tracer = Tracer::global();
  // Sampling happens here — after the stack pop (so nesting stays intact)
  // and before the ring publish (so suppressed spans cost no ring slot).
  if (!tracer.should_record(name_, end_s - start_s_)) return;
  TraceRecord record;
  record.name = name_;
  record.id = id_;
  record.parent = parent_;
  record.start_s = start_s_;
  record.dur_s = end_s - start_s_;
  record.tid = state.tid;
  record.arg_key = arg_key_;
  record.arg_val = arg_val_;
  if (!state.ring->push(record)) {
    tracer.dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Spill to the collector before the ring can fill: amortized one lock
  // per kCapacity/2 spans, so deep loops never overflow.
  if (state.ring->size() >= ThreadRing::kCapacity / 2) {
    Collector& c = collector();
    std::lock_guard<std::mutex> lock(c.mu);
    state.ring->drain_into(c.spilled);
  }
}

void Tracer::write_chrome_trace(const std::string& path,
                                const std::vector<TraceRecord>& records,
                                bool merge_existing, std::uint64_t dropped,
                                std::uint64_t sampled_out) {
  // Resume support: carry over the traceEvents (and accounting keys) of a
  // previous run's file so the merged trace still loads as one document.
  // An unreadable or unparseable previous file is overwritten.
  std::vector<std::string> prior;
  if (merge_existing) {
    std::ifstream in(path);
    if (in.good()) {
      std::stringstream buf;
      buf << in.rdbuf();
      JsonValue root;
      std::string err;
      if (parse_json(buf.str(), &root, &err) && root.is_object()) {
        const JsonValue* events = root.find("traceEvents");
        if (events != nullptr &&
            events->type == JsonValue::Type::kArray) {
          prior.reserve(events->array.size());
          for (const JsonValue& ev : events->array) {
            prior.push_back(json_serialize(ev));
          }
        }
        const JsonValue* prior_dropped = root.find("rnDropped");
        if (prior_dropped != nullptr && prior_dropped->is_number()) {
          dropped += static_cast<std::uint64_t>(prior_dropped->number);
        }
        const JsonValue* prior_sampled = root.find("rnSampledOut");
        if (prior_sampled != nullptr && prior_sampled->is_number()) {
          sampled_out += static_cast<std::uint64_t>(prior_sampled->number);
        }
      }
    }
  }

  std::vector<TraceRecord> sorted = records;
  std::sort(sorted.begin(), sorted.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.start_s < b.start_s;
            });

  std::ofstream out(path);
  if (!out.good()) {
    throw std::runtime_error("cannot open trace output: " + path);
  }
  out << "{\"displayTimeUnit\":\"ms\",\"rnDropped\":" << dropped
      << ",\"rnSampledOut\":" << sampled_out << ",\"traceEvents\":[";
  bool first = true;
  for (const std::string& ev : prior) {
    if (!first) out << ',';
    first = false;
    out << '\n' << ev;
  }
  char buf[64];
  for (const TraceRecord& r : sorted) {
    if (!first) out << ',';
    first = false;
    // Complete ("X") events; ts/dur are microseconds in the trace format.
    out << "\n{\"name\":\"" << json_escape(r.name)
        << "\",\"cat\":\"rn\",\"ph\":\"X\",\"pid\":1,\"tid\":" << r.tid;
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f",
                  r.start_s * 1e6, r.dur_s * 1e6);
    out << buf << ",\"args\":{\"id\":" << r.id << ",\"parent\":" << r.parent;
    if (r.arg_key != nullptr) {
      out << ",\"" << json_escape(r.arg_key) << "\":" << r.arg_val;
    }
    out << "}}";
  }
  out << "\n]}\n";
  if (!out.good()) {
    throw std::runtime_error("write failure on trace output: " + path);
  }
}

namespace {

// Parsed trace file: span rows plus the exporter's accounting keys.
struct TraceFileContents {
  std::vector<SpanRow> rows;
  std::uint64_t dropped = 0;
  std::uint64_t sampled_out = 0;
};

TraceFileContents rows_from_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    throw std::runtime_error("cannot open trace file: " + path);
  }
  std::stringstream buf;
  buf << in.rdbuf();
  JsonValue root;
  std::string err;
  if (!parse_json(buf.str(), &root, &err)) {
    throw std::runtime_error(path + ": malformed trace JSON (" + err + ")");
  }
  const JsonValue* events =
      root.is_object() ? root.find("traceEvents") : nullptr;
  if (events == nullptr || events->type != JsonValue::Type::kArray) {
    throw std::runtime_error(path + ": no traceEvents array");
  }
  TraceFileContents contents;
  const JsonValue* dropped = root.find("rnDropped");
  if (dropped != nullptr && dropped->is_number()) {
    contents.dropped = static_cast<std::uint64_t>(dropped->number);
  }
  const JsonValue* sampled = root.find("rnSampledOut");
  if (sampled != nullptr && sampled->is_number()) {
    contents.sampled_out = static_cast<std::uint64_t>(sampled->number);
  }
  std::vector<SpanRow>& rows = contents.rows;
  rows.reserve(events->array.size());
  for (const JsonValue& ev : events->array) {
    if (!ev.is_object()) {
      throw std::runtime_error(path + ": non-object trace event");
    }
    const JsonValue* ph = ev.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->string != "X") {
      continue;  // metadata and non-span events
    }
    const JsonValue* name = ev.find("name");
    const JsonValue* ts = ev.find("ts");
    const JsonValue* dur = ev.find("dur");
    const JsonValue* tid = ev.find("tid");
    if (name == nullptr || !name->is_string() || ts == nullptr ||
        !ts->is_number() || dur == nullptr || !dur->is_number()) {
      throw std::runtime_error(path + ": span event missing name/ts/dur");
    }
    SpanRow row;
    row.name = name->string;
    row.start_s = ts->number * 1e-6;
    row.dur_s = dur->number * 1e-6;
    row.tid = tid != nullptr && tid->is_number()
                  ? static_cast<std::uint32_t>(tid->number)
                  : 0;
    const JsonValue* args = ev.find("args");
    if (args != nullptr && args->is_object()) {
      const JsonValue* id = args->find("id");
      const JsonValue* parent = args->find("parent");
      if (id != nullptr && id->is_number()) {
        row.id = static_cast<std::uint64_t>(id->number);
      }
      if (parent != nullptr && parent->is_number()) {
        row.parent = static_cast<std::uint64_t>(parent->number);
      }
    }
    rows.push_back(std::move(row));
  }
  return contents;
}

void append_top_table(std::string& out, const TraceAggregate& agg,
                      int top_n, bool by_self) {
  std::vector<std::pair<std::string, NameStats>> ranked(
      agg.by_name.begin(), agg.by_name.end());
  std::sort(ranked.begin(), ranked.end(),
            [by_self](const auto& a, const auto& b) {
              return by_self ? a.second.self_s > b.second.self_s
                             : a.second.total_s > b.second.total_s;
            });
  char buf[256];
  std::snprintf(buf, sizeof(buf), "  %-28s %8s %11s %11s %11s\n", "span",
                "count", "total_s", "self_s", "avg_ms");
  out += buf;
  const std::size_t limit =
      std::min(ranked.size(), static_cast<std::size_t>(std::max(1, top_n)));
  for (std::size_t i = 0; i < limit; ++i) {
    const auto& [name, s] = ranked[i];
    std::snprintf(buf, sizeof(buf), "  %-28s %8zu %11.6g %11.6g %11.4g\n",
                  name.c_str(), s.count, s.total_s, s.self_s,
                  s.count > 0 ? s.total_s * 1e3 / static_cast<double>(s.count)
                              : 0.0);
    out += buf;
  }
}

}  // namespace

std::string summarize_trace_file(const std::string& path, int top_n) {
  const TraceFileContents contents = rows_from_trace_file(path);
  const TraceAggregate agg = aggregate_rows(contents.rows);

  std::string out;
  char buf[256];
  const double span_s =
      agg.spans > 0 ? agg.max_end_s - agg.min_start_s : 0.0;
  std::snprintf(buf, sizeof(buf),
                "trace summary: %zu spans, %zu threads, %.3f s span (%s)\n",
                agg.spans, agg.busy_by_tid.size(), span_s, path.c_str());
  out += buf;
  if (contents.dropped > 0 || contents.sampled_out > 0) {
    std::snprintf(buf, sizeof(buf),
                  "recording losses: %llu dropped (ring overflow), "
                  "%llu sampled out (policy)\n",
                  static_cast<unsigned long long>(contents.dropped),
                  static_cast<unsigned long long>(contents.sampled_out));
    out += buf;
  }
  if (agg.spans == 0) return out;

  out += "\ntop spans by total time:\n";
  append_top_table(out, agg, top_n, /*by_self=*/false);
  out += "\ntop spans by self time (total minus direct children):\n";
  append_top_table(out, agg, top_n, /*by_self=*/true);

  out += "\nper-thread utilization (thread-root busy / trace span):\n";
  std::snprintf(buf, sizeof(buf), "  %6s %11s %8s\n", "tid", "busy_s",
                "util");
  out += buf;
  for (const auto& [tid, busy_s] : agg.busy_by_tid) {
    std::snprintf(buf, sizeof(buf), "  %6u %11.6g %7.1f%%\n", tid, busy_s,
                  span_s > 0.0 ? 100.0 * busy_s / span_s : 0.0);
    out += buf;
  }
  return out;
}

std::string trace_summary_json(const std::vector<TraceRecord>& records,
                               std::uint64_t dropped,
                               std::uint64_t sampled_out) {
  const TraceAggregate agg = aggregate_rows(rows_from_records(records));
  std::string out = "{\"spans\":" + std::to_string(agg.spans) +
                    ",\"dropped\":" + std::to_string(dropped) +
                    ",\"sampled_out\":" + std::to_string(sampled_out) +
                    ",\"threads\":" + std::to_string(agg.busy_by_tid.size()) +
                    ",\"by_name\":{";
  bool first = true;
  for (const auto& [name, s] : agg.by_name) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(name);
    out += "\":{\"count\":" + std::to_string(s.count) +
           ",\"total_s\":" + json_number(s.total_s) +
           ",\"self_s\":" + json_number(s.self_s) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace rn::obs
