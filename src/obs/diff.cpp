#include "obs/diff.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"

namespace rn::obs {

namespace {

// Values this small on both sides are noise, not signal: a latency that
// moved from 0 to 1e-12 s must not trip a percentage gate.
constexpr double kAbsFloor = 1e-9;

bool contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

void flatten(const JsonValue& v, const std::string& prefix,
             std::map<std::string, double>& out) {
  // Exemplars carry request ids and single-sample values — identifiers and
  // noise, not metrics; their presence also churns with traffic.
  if (ends_with(prefix, ".exemplars")) return;
  if (v.is_number()) {
    if (!prefix.empty()) out[prefix] = v.number;
    return;
  }
  if (v.is_object()) {
    // Per-span timing tables churn with span presence and scheduling —
    // excluded so the gate compares metrics, not profiles.
    if (ends_with(prefix, "trace.by_name")) return;
    for (const auto& [key, child] : v.object) {
      flatten(child, prefix.empty() ? key : prefix + "." + key, out);
    }
    return;
  }
  if (v.type == JsonValue::Type::kArray) {
    for (std::size_t i = 0; i < v.array.size(); ++i) {
      flatten(v.array[i], prefix + "." + std::to_string(i), out);
    }
  }
  // Strings/bools/nulls are not comparable metrics.
}

std::map<std::string, double> flatten_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    throw std::runtime_error("cannot open bench report: " + path);
  }
  std::stringstream buf;
  buf << in.rdbuf();
  JsonValue root;
  std::string err;
  if (!parse_json(buf.str(), &root, &err)) {
    throw std::runtime_error(path + ": malformed JSON (" + err + ")");
  }
  if (!root.is_object()) {
    throw std::runtime_error(path + ": bench report is not a JSON object");
  }
  std::map<std::string, double> out;
  flatten(root, "", out);
  return out;
}

}  // namespace

MetricDirection metric_direction(const std::string& dotted_key) {
  std::string key = dotted_key;
  std::transform(key.begin(), key.end(), key.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  // Failure-ish counters gate as lower-better even though they end in
  // "_total"/".count", so check them before the count-neutral rule.
  for (const char* bad :
       {"dropped", "rejected", "failed", "sampled_out", "timeout"}) {
    if (contains(key, bad)) return MetricDirection::kLowerBetter;
  }
  // Volumes and counts are workload descriptors, not quality metrics.
  if (ends_with(key, ".count") || ends_with(key, "_count") ||
      ends_with(key, "_total") || ends_with(key, ".seq") ||
      ends_with(key, "window_s") || ends_with(key, "period_s")) {
    return MetricDirection::kNeutral;
  }
  for (const char* good :
       {"per_s", "throughput", "rps", "gflops", "speedup"}) {
    if (contains(key, good)) return MetricDirection::kHigherBetter;
  }
  // Latencies, losses, errors, and any seconds-denominated stat (wall_s,
  // …_s.p99, …) shrink when things improve.
  if (contains(key, "latency") || contains(key, "loss") ||
      contains(key, "mre") || contains(key, "_err") ||
      ends_with(key, "_s") || contains(key, "_s.")) {
    return MetricDirection::kLowerBetter;
  }
  return MetricDirection::kNeutral;
}

DiffReport diff_bench_files(const std::string& path_a,
                            const std::string& path_b,
                            const DiffOptions& opts) {
  const std::map<std::string, double> a = flatten_file(path_a);
  const std::map<std::string, double> b = flatten_file(path_b);

  DiffReport report;
  for (const auto& [key, va] : a) {
    if (b.find(key) == b.end()) report.only_in_a.push_back(key);
  }
  for (const auto& [key, vb] : b) {
    if (a.find(key) == a.end()) report.only_in_b.push_back(key);
  }

  for (const auto& [key, va] : a) {
    const auto it = b.find(key);
    if (it == b.end()) continue;
    const double vb = it->second;
    ++report.compared;
    if (va == vb) continue;
    if (std::max(std::fabs(va), std::fabs(vb)) < kAbsFloor) continue;
    DiffLine line;
    line.key = key;
    line.a = va;
    line.b = vb;
    line.change_pct =
        100.0 * (vb - va) / std::max(std::fabs(va), kAbsFloor);
    line.direction = metric_direction(key);
    if (std::fabs(line.change_pct) < opts.threshold_pct) continue;
    const bool worsened =
        (line.direction == MetricDirection::kLowerBetter && vb > va) ||
        (line.direction == MetricDirection::kHigherBetter && vb < va);
    const bool bettered =
        (line.direction == MetricDirection::kLowerBetter && vb < va) ||
        (line.direction == MetricDirection::kHigherBetter && vb > va);
    line.regression = worsened;
    line.improvement = bettered;
    report.regressions += worsened ? 1 : 0;
    report.improvements += bettered ? 1 : 0;
    report.lines.push_back(std::move(line));
  }
  // Most severe first; neutral drift sorts last.
  std::sort(report.lines.begin(), report.lines.end(),
            [](const DiffLine& x, const DiffLine& y) {
              if (x.regression != y.regression) return x.regression;
              if (x.improvement != y.improvement) return x.improvement;
              return std::fabs(x.change_pct) > std::fabs(y.change_pct);
            });
  return report;
}

std::string DiffReport::format(const std::string& path_a,
                               const std::string& path_b,
                               double threshold_pct) const {
  std::string out;
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "bench diff: %s -> %s (threshold %.4g%%, %zu metrics "
                "compared)\n",
                path_a.c_str(), path_b.c_str(), threshold_pct, compared);
  out += buf;
  for (const DiffLine& line : lines) {
    const char* tag = line.regression      ? "REGRESSION"
                      : line.improvement  ? "improved"
                                          : "changed";
    std::snprintf(buf, sizeof(buf), "  %-10s %-56s %.6g -> %.6g (%+.1f%%)\n",
                  tag, line.key.c_str(), line.a, line.b, line.change_pct);
    out += buf;
  }
  if (!only_in_a.empty()) {
    std::snprintf(buf, sizeof(buf), "  only in baseline: %zu keys (e.g. %s)\n",
                  only_in_a.size(), only_in_a.front().c_str());
    out += buf;
  }
  if (!only_in_b.empty()) {
    std::snprintf(buf, sizeof(buf),
                  "  only in candidate: %zu keys (e.g. %s)\n",
                  only_in_b.size(), only_in_b.front().c_str());
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "  %zu regression(s), %zu improvement(s) beyond threshold\n",
                regressions, improvements);
  out += buf;
  return out;
}

}  // namespace rn::obs
