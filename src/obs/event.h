// Structured-event sink: JSONL records `{"ts":…,"kind":…,"fields":{…}}`
// streamed to a file or stderr. The sink is process-global and disabled by
// default; when disabled, the intended hot-path pattern is
//
//   if (obs::EventSink::global().enabled()) {
//     obs::Event ev("trainer.batch");
//     ev.f("loss", loss).f("forward_s", fwd);
//     obs::EventSink::global().emit(ev);
//   }
//
// so the disabled path is a single relaxed atomic load — no Event is ever
// constructed and nothing allocates (covered by obs_test).
//
// The same Event doubles as the console line for verbose modes
// (console_line), so human output and machine telemetry share one code
// path instead of drifting apart.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace rn::obs {

class Event {
 public:
  explicit Event(std::string_view kind) : kind_(kind) {}

  Event& f(std::string_view key, double v);
  Event& f(std::string_view key, std::int64_t v);
  // Any other integer type (int, size_t, uint64_t, ...) funnels into the
  // int64 overload; a single template avoids platform-dependent overload
  // clashes between size_t and the fixed-width types.
  template <typename T,
            typename std::enable_if<std::is_integral<T>::value, int>::type = 0>
  Event& f(std::string_view key, T v) {
    return f(key, static_cast<std::int64_t>(v));
  }
  Event& f(std::string_view key, std::string_view v);

  const std::string& kind() const { return kind_; }

  // One JSONL record (no trailing newline). `ts` is Unix time in seconds.
  std::string jsonl(double ts) const;

  // Human-readable one-liner: "[kind] k=v k=v" (doubles at 6 significant
  // digits, the console analogue of the JSONL record).
  std::string console_line() const;

 private:
  struct Field {
    std::string key;
    enum class Kind { kDouble, kInt, kString } kind;
    double num = 0.0;
    std::int64_t integer = 0;
    std::string str;
  };

  std::string kind_;
  std::vector<Field> fields_;
};

// Unix time in seconds (microsecond resolution) used for event timestamps.
double unix_now_s();

class EventSink {
 public:
  static EventSink& global();

  // Enables the sink. "-" or "stderr" stream to stderr, anything else is
  // opened as a file — truncated by default, appended to with
  // `append=true` (how a resumed run keeps its pre-crash events). Throws
  // if the file cannot be opened.
  void open(const std::string& path, bool append = false);
  // Opens from `path` if non-empty, else from $RN_METRICS_OUT if set,
  // else stays disabled.
  void open_or_env(const std::string& path, bool append = false);
  void close();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  const std::string& path() const { return path_; }

  // Writes the event as one JSONL line (no-op when disabled). Thread-safe.
  void emit(const Event& ev);

 private:
  std::atomic<bool> enabled_{false};
  std::mutex mu_;
  std::FILE* out_ = nullptr;
  bool owns_file_ = false;
  std::string path_;
};

// Emits a `metrics.snapshot` event carrying the registry's counters,
// gauges, and histogram p50/p95/p99/max as flattened fields — the final
// record a run appends so `obs summarize` can report counter totals.
void emit_registry_snapshot();

}  // namespace rn::obs
