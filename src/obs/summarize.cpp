#include "obs/summarize.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <stdexcept>
#include <vector>

#include "obs/json.h"
#include "util/stats.h"

namespace rn::obs {

namespace {

struct FieldSeries {
  std::vector<double> values;
};

std::string format_row(const std::string& kind, const std::string& field,
                       const std::vector<double>& xs) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  %-24s %-22s %8zu %11.6g %11.6g %11.6g %11.6g %11.6g\n",
                kind.c_str(), field.c_str(), xs.size(), mean_of(xs),
                quantile(xs, 0.5), quantile(xs, 0.95), quantile(xs, 0.99),
                quantile(xs, 1.0));
  return buf;
}

}  // namespace

std::string summarize_jsonl_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    throw std::runtime_error("cannot open telemetry file: " + path);
  }

  std::map<std::string, std::size_t> kind_counts;
  // (kind, field) → all numeric values seen, in file order.
  std::map<std::pair<std::string, std::string>, FieldSeries> series;
  // Counter/gauge totals from the last metrics.snapshot event.
  std::vector<std::pair<std::string, double>> snapshot_fields;

  std::string line;
  std::size_t line_no = 0;
  std::size_t events = 0;
  double first_ts = 0.0;
  double last_ts = 0.0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonValue record;
    std::string err;
    if (!parse_json(line, &record, &err)) {
      throw std::runtime_error(path + ":" + std::to_string(line_no) +
                               ": malformed JSON (" + err + ")");
    }
    if (!record.is_object()) {
      throw std::runtime_error(path + ":" + std::to_string(line_no) +
                               ": record is not a JSON object");
    }
    const JsonValue* ts = record.find("ts");
    const JsonValue* kind = record.find("kind");
    const JsonValue* fields = record.find("fields");
    if (ts == nullptr || !ts->is_number() || kind == nullptr ||
        !kind->is_string() || fields == nullptr || !fields->is_object()) {
      throw std::runtime_error(path + ":" + std::to_string(line_no) +
                               ": record is missing ts/kind/fields");
    }
    ++events;
    if (events == 1) first_ts = ts->number;
    last_ts = ts->number;
    ++kind_counts[kind->string];
    if (kind->string == "metrics.snapshot") {
      snapshot_fields.clear();
      for (const auto& [key, value] : fields->object) {
        if (value.is_number()) snapshot_fields.emplace_back(key, value.number);
      }
      continue;
    }
    for (const auto& [key, value] : fields->object) {
      if (value.is_number()) {
        series[{kind->string, key}].values.push_back(value.number);
      }
    }
  }

  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "telemetry summary: %zu events, %zu kinds, %.3f s span (%s)\n",
                events, kind_counts.size(),
                events > 0 ? last_ts - first_ts : 0.0, path.c_str());
  out += buf;
  if (events == 0) return out;

  out += "\nevents by kind:\n";
  for (const auto& [kind, n] : kind_counts) {
    std::snprintf(buf, sizeof(buf), "  %-24s %8zu\n", kind.c_str(), n);
    out += buf;
  }

  if (!series.empty()) {
    out += "\nnumeric fields (per kind):\n";
    std::snprintf(buf, sizeof(buf),
                  "  %-24s %-22s %8s %11s %11s %11s %11s %11s\n", "kind",
                  "field", "count", "mean", "p50", "p95", "p99", "max");
    out += buf;
    for (const auto& [key, fs] : series) {
      out += format_row(key.first, key.second, fs.values);
    }
  }

  if (!snapshot_fields.empty()) {
    out += "\nfinal metrics snapshot:\n";
    for (const auto& [name, v] : snapshot_fields) {
      std::snprintf(buf, sizeof(buf), "  %-48s %14.6g\n", name.c_str(), v);
      out += buf;
    }
  }
  return out;
}

}  // namespace rn::obs
