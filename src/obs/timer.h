// Wall-clock helpers for the telemetry layer: a restartable Stopwatch for
// measuring phases inline, and an RAII ScopedTimer that records its elapsed
// seconds into a registry Histogram on destruction. Both are header-only so
// hot paths pay only two steady_clock reads plus one lock-free record.
#pragma once

#include <chrono>
#include <string_view>

#include "obs/metrics.h"

namespace rn::obs {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Records once — either at scope exit or at the explicit stop() call,
// whichever comes first.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist) : hist_(&hist) {}
  // Looks the histogram up by name (takes the registry mutex; prefer the
  // Histogram& overload with a cached reference inside loops).
  explicit ScopedTimer(std::string_view name)
      : hist_(&Registry::global().histogram(name)) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { stop(); }

  // Records the elapsed time and returns it; later calls are no-ops
  // returning the recorded duration.
  double stop() {
    if (!stopped_) {
      stopped_ = true;
      elapsed_ = watch_.elapsed_s();
      hist_->record(elapsed_);
    }
    return elapsed_;
  }

 private:
  Histogram* hist_;
  Stopwatch watch_;
  bool stopped_ = false;
  double elapsed_ = 0.0;
};

}  // namespace rn::obs
