// Process-wide metrics registry: lock-free counters/gauges/histograms that
// hot paths (trainer batches, simulator events, message-passing phases)
// update in a few nanoseconds, and that benches/CLI snapshot into the
// `telemetry` section of their JSON reports.
//
// Naming convention (see docs/observability.md): dot-separated
// `<layer>.<scope>.<metric>[_<unit>]`, e.g. `trainer.batch.forward_s`,
// `sim.events_total`, `routenet.mp.link_update_s`.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rn::obs {

// Monotonic event counter. `add` is wait-free; safe from any thread.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// Last-written (or max-tracked) scalar.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  // Raises the gauge to v if v is larger (CAS loop; used for peaks).
  void set_max(double v);
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Histogram over fixed log-scale buckets covering [1e-9, 1e4) with
// kBucketsPerDecade buckets per decade, plus underflow (x < 1e-9, including
// zero/negatives) and overflow buckets. The geometry is fixed so every
// histogram in every process buckets identically and snapshots merge.
class Histogram {
 public:
  static constexpr int kBucketsPerDecade = 5;
  static constexpr int kDecades = 13;  // 1e-9 .. 1e4
  static constexpr double kMinBound = 1e-9;
  // underflow + log buckets + overflow
  static constexpr int kNumBuckets = kBucketsPerDecade * kDecades + 2;

  // Bucket index a value lands in (0 = underflow, kNumBuckets-1 = overflow).
  static int bucket_index(double x);
  // Half-open bucket ranges: bucket i counts x in [lower(i), upper(i)).
  static double bucket_lower(int idx);
  static double bucket_upper(int idx);

  void record(double x);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  double max() const;  // largest recorded value (exact, not bucketed)
  std::uint64_t bucket_count(int idx) const {
    return counts_[static_cast<std::size_t>(idx)].load(
        std::memory_order_relaxed);
  }

  // Approximate quantile (q in [0,1]) by linear interpolation inside the
  // containing bucket; exact max caps the top. 0 when empty.
  double quantile(double q) const;

  // The same interpolation over an arbitrary bucket-count array using this
  // geometry — shared with WindowedHistogram's merged reads. `counts` must
  // have kNumBuckets entries; `exact_max` caps open-ended buckets.
  static double quantile_from_buckets(const std::uint64_t* counts,
                                      std::uint64_t total, double exact_max,
                                      double q);

  void reset();

 private:
  std::atomic<std::uint64_t> counts_[static_cast<std::size_t>(kNumBuckets)]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

class WindowedHistogram;  // see obs/window.h

// Prometheus-style exemplar: the largest sample that landed in one
// histogram bucket, tagged with the request id that produced it — so a
// quantile breach points at a concrete, traceable request.
struct Exemplar {
  int bucket = 0;          // Histogram bucket index
  double value = 0.0;      // the slowest in-bucket sample
  std::uint64_t tag = 0;   // request id (never 0 for a live exemplar)
};

// Immutable view of the registry at one point in time.
struct RegistrySnapshot {
  struct HistogramStats {
    std::string name;
    std::uint64_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
  };
  // Sliding-window view of a windowed histogram at snapshot time.
  struct WindowStats {
    std::string name;
    double window_s = 0.0;
    std::uint64_t count = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    // In-window exemplars (tagged records only); empty for windows whose
    // recorders never tag.
    std::vector<Exemplar> exemplars;
  };
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramStats> histograms;
  std::vector<WindowStats> windows;

  // {"counters":{...},"gauges":{...},"histograms":{name:{count,...}},
  //  "windows":{name:{window_s,count,p50,p95,p99,
  //                   exemplars:[{bucket,value,rid},...]}}}
  // The exemplars key is emitted only when non-empty (`obs diff` skips the
  // subtree — request ids are not comparable metrics).
  std::string to_json() const;
};

// Name → metric map. Lookup takes a mutex and may allocate; hot paths fetch
// the reference once and then update lock-free. Metric objects live for the
// process lifetime, so cached references survive reset().
class Registry {
 public:
  Registry();
  ~Registry();  // out-of-line: WindowedHistogram is incomplete here

  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);
  // Sliding-window histogram (see obs/window.h). The first call for a name
  // fixes its window geometry; later calls return the existing instance
  // and ignore the parameters.
  WindowedHistogram& windowed(std::string_view name, double window_s = 30.0,
                              int slots = 15);

  RegistrySnapshot snapshot() const;

  // Zeroes every metric's value. Registered names (and addresses) persist,
  // so references cached by hot paths stay valid. Intended for tests and
  // for benches that report per-phase deltas.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<WindowedHistogram>, std::less<>>
      windows_;
};

}  // namespace rn::obs
