// Minimal JSON support for the telemetry pipeline: enough writer helpers to
// emit JSONL event records and a strict recursive-descent parser to read
// them back (`obs summarize`, bench cache replay, tests). Not a
// general-purpose JSON library — no \uXXXX escapes beyond pass-through, no
// streaming — but strict: any malformed record is an error, never a guess.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rn::obs {

// Escapes a string for inclusion inside JSON double quotes.
std::string json_escape(std::string_view s);

// Formats a double with enough digits to survive a round trip through the
// parser at ~1e-12 relative error (trailing-zero free).
std::string json_number(double v);

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order
  std::vector<JsonValue> array;

  // First member with this key, or nullptr. Only meaningful for objects.
  const JsonValue* find(std::string_view key) const;

  bool is_object() const { return type == Type::kObject; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
};

// Parses exactly one JSON document (trailing whitespace allowed). Returns
// false and fills *err with a position-annotated message on failure.
bool parse_json(std::string_view text, JsonValue* out, std::string* err);

// Renders a parsed value back to compact JSON (object keys keep their
// insertion order). parse_json(json_serialize(v)) reproduces v, modulo
// double formatting at ~1e-12 relative error.
std::string json_serialize(const JsonValue& v);

}  // namespace rn::obs
