// Sliding-window histogram: live p50/p95/p99 over the last W seconds, for
// metrics whose all-time distribution hides what is happening *now* (a
// serving latency ramp, a queue filling up). The ROADMAP's p99-adaptive
// batching consumes exactly this.
//
// Design: a ring of `slots` time-bucketed sub-histograms sharing the
// Histogram log-bucket geometry. Each slot covers one span of
// window_s/slots seconds; recording lands in the slot for
// floor(now/span) % slots. Slot rotation (resetting a slot whose epoch has
// passed out of the window) takes a mutex, but only the first record of
// each new span pays it — every other record is a handful of relaxed
// atomics, same cost class as Histogram::record. Reads merge the in-window
// slots into one bucket array and run the shared quantile interpolation.
//
// The reported window is slot-granular: stats() covers between
// (slots-1)/slots * window_s and window_s seconds of history depending on
// where "now" falls inside the current slot.
//
// Concurrency: records and reads may race on slot contents; a reader can
// see a slot mid-update (count bumped, sum not yet). That skews one sample
// in a telemetry aggregate — accepted by design, and every access is an
// atomic so the type is clean under tsan.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.h"

namespace rn::obs {

class WindowedHistogram {
 public:
  // Defaults used by Registry::windowed(): 30 s window, 2 s slots.
  static constexpr double kDefaultWindowS = 30.0;
  static constexpr int kDefaultSlots = 15;

  explicit WindowedHistogram(double window_s = kDefaultWindowS,
                             int slots = kDefaultSlots);

  double window_s() const {
    return slot_span_s_ * static_cast<double>(num_slots_);
  }
  int slots() const { return num_slots_; }

  // Records x at the current monotonic time.
  void record(double x);
  // Deterministic seam for tests: records x as if the monotonic clock read
  // `now_s` (seconds; same timeline as stats_at).
  void record_at(double x, double now_s);

  // Records x and, if it is the largest sample its bucket has seen this
  // slot, remembers `tag` (a request id, must be non-zero) as the bucket's
  // exemplar. The value/tag pair is two atomics, not one — a reader racing
  // a faster recorder can pair a value with the tag of the runner-up, which
  // is telemetry-tolerable (both are in-bucket slow requests).
  void record_tagged(double x, std::uint64_t tag);
  void record_tagged_at(double x, std::uint64_t tag, double now_s);

  struct Stats {
    std::uint64_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max = 0.0;  // largest in-window value (exact, not bucketed)
  };

  // Merged view of every slot still inside the window ending now.
  Stats stats() const;
  Stats stats_at(double now_s) const;

  // In-window exemplars, one per bucket that has any tagged record: the
  // slowest tagged sample across the in-window slots, ordered by bucket.
  std::vector<Exemplar> exemplars() const;
  std::vector<Exemplar> exemplars_at(double now_s) const;

  // Clears every slot. Same caveats as Registry::reset(): concurrent
  // records may survive into the cleared state.
  void reset();

 private:
  struct Slot {
    // floor(record_time / slot_span): identifies which time span the slot
    // currently holds. -1 = never written.
    std::atomic<std::int64_t> epoch{-1};
    std::atomic<std::uint64_t> counts[static_cast<std::size_t>(
        Histogram::kNumBuckets)]{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> max{0.0};
    // Per-bucket exemplar: slowest tagged sample + its request id. A tag of
    // 0 means no tagged record landed in that bucket this slot.
    std::atomic<double> ex_value[static_cast<std::size_t>(
        Histogram::kNumBuckets)]{};
    std::atomic<std::uint64_t> ex_tag[static_cast<std::size_t>(
        Histogram::kNumBuckets)]{};

    void clear();
  };

  std::int64_t epoch_of(double now_s) const;
  Slot& rotate_to(std::int64_t epoch);

  double slot_span_s_;
  int num_slots_;
  // Slots are heap-allocated once and never move (atomics are pinned).
  std::vector<std::unique_ptr<Slot>> slots_;
  std::mutex rotate_mu_;
};

// Monotonic seconds on the process-shared timeline used by record()/stats().
double windowed_now_s();

}  // namespace rn::obs
