#include "obs/window.h"

#include <algorithm>
#include <chrono>

#include "util/check.h"

namespace rn::obs {

namespace {

void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

double windowed_now_s() {
  // Process-shared steady origin so every WindowedHistogram agrees on slot
  // boundaries; pinned at first use.
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch)
      .count();
}

void WindowedHistogram::Slot::clear() {
  for (auto& c : counts) c.store(0, std::memory_order_relaxed);
  count.store(0, std::memory_order_relaxed);
  sum.store(0.0, std::memory_order_relaxed);
  max.store(0.0, std::memory_order_relaxed);
  for (auto& v : ex_value) v.store(0.0, std::memory_order_relaxed);
  for (auto& t : ex_tag) t.store(0, std::memory_order_relaxed);
}

WindowedHistogram::WindowedHistogram(double window_s, int slots)
    : slot_span_s_(window_s / std::max(1, slots)), num_slots_(slots) {
  RN_CHECK(window_s > 0.0, "window_s must be positive");
  RN_CHECK(slots >= 2, "need at least 2 slots");
  slots_.reserve(static_cast<std::size_t>(num_slots_));
  for (int i = 0; i < num_slots_; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

std::int64_t WindowedHistogram::epoch_of(double now_s) const {
  return static_cast<std::int64_t>(now_s / slot_span_s_);
}

WindowedHistogram::Slot& WindowedHistogram::rotate_to(std::int64_t epoch) {
  Slot& slot = *slots_[static_cast<std::size_t>(
      epoch % static_cast<std::int64_t>(num_slots_))];
  if (slot.epoch.load(std::memory_order_acquire) != epoch) {
    // A slot is reused only after the ring has rotated a full window past
    // it, so whatever it held is out of the window by construction. The
    // mutex serializes the clear; a racing recorder that read the stale
    // epoch can land one sample in the cleared slot — telemetry-tolerable.
    std::lock_guard<std::mutex> lock(rotate_mu_);
    if (slot.epoch.load(std::memory_order_relaxed) != epoch) {
      slot.clear();
      slot.epoch.store(epoch, std::memory_order_release);
    }
  }
  return slot;
}

void WindowedHistogram::record(double x) { record_at(x, windowed_now_s()); }

void WindowedHistogram::record_at(double x, double now_s) {
  Slot& slot = rotate_to(epoch_of(std::max(0.0, now_s)));
  slot.counts[static_cast<std::size_t>(Histogram::bucket_index(x))].fetch_add(
      1, std::memory_order_relaxed);
  slot.count.fetch_add(1, std::memory_order_relaxed);
  atomic_add(slot.sum, x);
  atomic_max(slot.max, x);
}

void WindowedHistogram::record_tagged(double x, std::uint64_t tag) {
  record_tagged_at(x, tag, windowed_now_s());
}

void WindowedHistogram::record_tagged_at(double x, std::uint64_t tag,
                                         double now_s) {
  const auto b = static_cast<std::size_t>(Histogram::bucket_index(x));
  Slot& slot = rotate_to(epoch_of(std::max(0.0, now_s)));
  slot.counts[b].fetch_add(1, std::memory_order_relaxed);
  slot.count.fetch_add(1, std::memory_order_relaxed);
  atomic_add(slot.sum, x);
  atomic_max(slot.max, x);
  if (tag == 0 || !(x > 0.0)) return;  // underflow bucket keeps no exemplar
  double cur = slot.ex_value[b].load(std::memory_order_relaxed);
  while (cur < x) {
    if (slot.ex_value[b].compare_exchange_weak(cur, x,
                                               std::memory_order_relaxed)) {
      slot.ex_tag[b].store(tag, std::memory_order_relaxed);
      return;
    }
  }
}

WindowedHistogram::Stats WindowedHistogram::stats() const {
  return stats_at(windowed_now_s());
}

WindowedHistogram::Stats WindowedHistogram::stats_at(double now_s) const {
  const std::int64_t cur = epoch_of(std::max(0.0, now_s));
  std::uint64_t merged[static_cast<std::size_t>(Histogram::kNumBuckets)] = {};
  std::uint64_t total = 0;
  double sum = 0.0;
  double max = 0.0;
  for (const std::unique_ptr<Slot>& slot : slots_) {
    const std::int64_t e = slot->epoch.load(std::memory_order_acquire);
    // In-window slots cover epochs (cur - slots, cur]; anything older sits
    // in the ring awaiting reuse and is excluded.
    if (e < 0 || e > cur || e <= cur - static_cast<std::int64_t>(num_slots_)) {
      continue;
    }
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      merged[static_cast<std::size_t>(i)] +=
          slot->counts[static_cast<std::size_t>(i)].load(
              std::memory_order_relaxed);
    }
    total += slot->count.load(std::memory_order_relaxed);
    sum += slot->sum.load(std::memory_order_relaxed);
    max = std::max(max, slot->max.load(std::memory_order_relaxed));
  }
  Stats st;
  st.count = total;
  if (total == 0) return st;
  st.mean = sum / static_cast<double>(total);
  st.max = max;
  st.p50 = Histogram::quantile_from_buckets(merged, total, max, 0.5);
  st.p95 = Histogram::quantile_from_buckets(merged, total, max, 0.95);
  st.p99 = Histogram::quantile_from_buckets(merged, total, max, 0.99);
  return st;
}

std::vector<Exemplar> WindowedHistogram::exemplars() const {
  return exemplars_at(windowed_now_s());
}

std::vector<Exemplar> WindowedHistogram::exemplars_at(double now_s) const {
  const std::int64_t cur = epoch_of(std::max(0.0, now_s));
  // Per-bucket best across in-window slots; tag 0 = no tagged record.
  double best_value[static_cast<std::size_t>(Histogram::kNumBuckets)] = {};
  std::uint64_t best_tag[static_cast<std::size_t>(Histogram::kNumBuckets)] =
      {};
  for (const std::unique_ptr<Slot>& slot : slots_) {
    const std::int64_t e = slot->epoch.load(std::memory_order_acquire);
    if (e < 0 || e > cur || e <= cur - static_cast<std::int64_t>(num_slots_)) {
      continue;
    }
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(Histogram::kNumBuckets); ++i) {
      const std::uint64_t tag = slot->ex_tag[i].load(std::memory_order_relaxed);
      if (tag == 0) continue;
      const double v = slot->ex_value[i].load(std::memory_order_relaxed);
      if (best_tag[i] == 0 || v > best_value[i]) {
        best_value[i] = v;
        best_tag[i] = tag;
      }
    }
  }
  std::vector<Exemplar> out;
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(Histogram::kNumBuckets); ++i) {
    if (best_tag[i] == 0) continue;
    out.push_back({static_cast<int>(i), best_value[i], best_tag[i]});
  }
  return out;
}

void WindowedHistogram::reset() {
  std::lock_guard<std::mutex> lock(rotate_mu_);
  for (const std::unique_ptr<Slot>& slot : slots_) {
    slot->clear();
    slot->epoch.store(-1, std::memory_order_release);
  }
}

}  // namespace rn::obs
