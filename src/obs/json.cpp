#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace rn::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

// Recursive-descent parser over a string_view with an explicit cursor.
class Parser {
 public:
  Parser(std::string_view text, std::string* err) : text_(text), err_(err) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!parse_value(out, /*depth=*/0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool fail(const std::string& msg) {
    if (err_ != nullptr) {
      *err_ = msg + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > 32) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out, depth);
    if (c == '[') return parse_array(out, depth);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return parse_string(&out->string);
    }
    if (c == 't' || c == 'f') return parse_literal(out);
    if (c == 'n') return parse_literal(out);
    return parse_number(out);
  }

  bool parse_literal(JsonValue* out) {
    auto match = [&](std::string_view word) {
      if (text_.substr(pos_, word.size()) != word) return false;
      pos_ += word.size();
      return true;
    };
    if (match("true")) {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      return true;
    }
    if (match("false")) {
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      return true;
    }
    if (match("null")) {
      out->type = JsonValue::Type::kNull;
      return true;
    }
    return fail("invalid literal");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("malformed number");
    out->type = JsonValue::Type::kNumber;
    out->number = v;
    return true;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return fail("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("dangling escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("short \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return fail("bad \\u escape");
              }
            }
            // Telemetry strings are ASCII; keep it simple for the BMP only.
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return fail("unknown escape");
        }
        continue;
      }
      *out += c;
    }
    return fail("unterminated string");
  }

  bool parse_object(JsonValue* out, int depth) {
    consume('{');
    out->type = JsonValue::Type::kObject;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      JsonValue value;
      if (!parse_value(&value, depth + 1)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue* out, int depth) {
    consume('[');
    out->type = JsonValue::Type::kArray;
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      skip_ws();
      JsonValue value;
      if (!parse_value(&value, depth + 1)) return false;
      out->array.push_back(std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  std::string_view text_;
  std::string* err_;
  std::size_t pos_ = 0;
};

}  // namespace

bool parse_json(std::string_view text, JsonValue* out, std::string* err) {
  *out = JsonValue{};  // the parser appends members; a reused value must
                       // not leak its previous document into this one
  Parser parser(text, err);
  return parser.parse(out);
}

std::string json_serialize(const JsonValue& v) {
  switch (v.type) {
    case JsonValue::Type::kNull:
      return "null";
    case JsonValue::Type::kBool:
      return v.boolean ? "true" : "false";
    case JsonValue::Type::kNumber:
      return json_number(v.number);
    case JsonValue::Type::kString:
      return '"' + json_escape(v.string) + '"';
    case JsonValue::Type::kObject: {
      std::string out = "{";
      bool first = true;
      for (const auto& [key, value] : v.object) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += json_escape(key);
        out += "\":";
        out += json_serialize(value);
      }
      out += '}';
      return out;
    }
    case JsonValue::Type::kArray: {
      std::string out = "[";
      bool first = true;
      for (const JsonValue& value : v.array) {
        if (!first) out += ',';
        first = false;
        out += json_serialize(value);
      }
      out += ']';
      return out;
    }
  }
  return "null";  // unreachable
}

}  // namespace rn::obs
