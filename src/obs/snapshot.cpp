#include "obs/snapshot.h"

#include <chrono>
#include <cstdlib>

#include "obs/event.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace rn::obs {

StatsReporter& StatsReporter::global() {
  static StatsReporter* instance = new StatsReporter();  // never destroyed
  return *instance;
}

void StatsReporter::start(double period_s) {
  RN_CHECK(period_s > 0.0, "stats period must be positive");
  std::lock_guard<std::mutex> lock(mu_);
  if (thread_.joinable()) return;
  period_s_ = period_s;
  stop_requested_ = false;
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { loop(); });
}

void StatsReporter::start_or_env(double period_s) {
  if (period_s > 0.0) {
    start(period_s);
    return;
  }
  const char* env = std::getenv("RN_STATS_EVERY_S");
  if (env != nullptr && env[0] != '\0') {
    const double parsed = std::atof(env);
    if (parsed > 0.0) start(parsed);
  }
}

void StatsReporter::stop() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!thread_.joinable()) return;
    stop_requested_ = true;
    worker = std::move(thread_);
  }
  cv_.notify_all();
  worker.join();
  // Final snapshot after the join so it reflects everything the run
  // recorded — the "drained cleanly on shutdown" contract.
  emit_once();
  running_.store(false, std::memory_order_relaxed);
}

void StatsReporter::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::duration<double>(period_s_));
    if (cv_.wait_for(lock, wait, [this] { return stop_requested_; })) break;
    lock.unlock();
    emit_once();
    lock.lock();
  }
}

void StatsReporter::emit_once() {
  EventSink& sink = EventSink::global();
  if (!sink.enabled()) return;
  std::lock_guard<std::mutex> lock(emit_mu_);
  const RegistrySnapshot snap = Registry::global().snapshot();
  Event ev("obs.snapshot");
  ev.f("seq", emitted_.load(std::memory_order_relaxed));
  ev.f("period_s", period_s_);
  // Counters as deltas since the previous snapshot: a flat-lining counter
  // reads 0, a busy one reads its rate × period.
  for (const auto& [name, v] : snap.counters) {
    const auto it = prev_counters_.find(name);
    const std::uint64_t prev = it == prev_counters_.end() ? 0 : it->second;
    ev.f(name, v >= prev ? v - prev : v);  // reset() mid-run restarts deltas
    prev_counters_[name] = v;
  }
  for (const auto& [name, v] : snap.gauges) ev.f(name, v);
  for (const RegistrySnapshot::HistogramStats& h : snap.histograms) {
    ev.f(h.name + ".count", h.count);
    ev.f(h.name + ".p99", h.p99);
  }
  for (const RegistrySnapshot::WindowStats& w : snap.windows) {
    ev.f(w.name + ".window_count", w.count);
    ev.f(w.name + ".window_p50", w.p50);
    ev.f(w.name + ".window_p95", w.p95);
    ev.f(w.name + ".window_p99", w.p99);
  }
  const Tracer& tracer = Tracer::global();
  ev.f("trace.dropped", tracer.dropped());
  ev.f("trace.sampled_out", tracer.sampled_out());
  sink.emit(ev);
  emitted_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace rn::obs
