// Hierarchical span tracer: answers "which phase of which sample on which
// worker ate the wall-clock" for multi-threaded training and generation
// runs, exported as Chrome trace-event JSON that loads in Perfetto or
// chrome://tracing (`--trace-out PATH` / RN_TRACE_OUT).
//
// Design mirrors the EventSink's disabled-path contract: when no trace is
// requested, constructing a TraceSpan costs one relaxed atomic load — no
// allocation, no clock read, no ring-buffer write (covered by trace_test).
// When enabled:
//
//   * each thread keeps a span stack (thread-local, fixed depth) so child
//     spans parent automatically, plus a lock-free SPSC ring buffer of
//     completed spans — the owning thread is the only producer;
//   * rings spill into a process-global collector under a mutex once they
//     are half full (amortized: once per kRingCapacity/2 spans), so
//     arbitrarily long runs never lose more than they drop (`dropped()`);
//   * work handed to another thread propagates the caller's span: capture
//     `trace_current_span()` before the handoff and pass it to the
//     TraceSpan(name, parent) constructor — `rn::par::parallel_for` does
//     this for every chunk, so worker spans nest under the caller with the
//     worker's own trace tid.
//
// Span names (and arg keys) must be string literals (static storage): the
// hot path stores the pointer, never copies.
//
//   obs::TraceSpan span("trainer.batch");      // nests under the current
//   span.arg("batch", batch_index);            // optional integer arg
//   ...                                        // ends at scope exit
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace rn::obs {

// One completed span, as stored in the rings and drained by the collector.
struct TraceRecord {
  const char* name = nullptr;     // string literal
  std::uint64_t id = 0;           // unique per process, never 0
  std::uint64_t parent = 0;       // 0 = root span
  double start_s = 0.0;           // seconds since the process trace epoch
  double dur_s = 0.0;
  std::uint32_t tid = 0;          // small sequential trace thread id
  const char* arg_key = nullptr;  // string literal; nullptr = no arg
  std::int64_t arg_val = 0;
};

class Tracer {
 public:
  static Tracer& global();

  // The TraceSpan fast-path guard: one relaxed load.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void enable();
  void disable();

  // Enables tracing and remembers where export_and_close() should write.
  void set_out_path(const std::string& path);
  // Opens from `path` if non-empty, else from $RN_TRACE_OUT if set, else
  // stays disabled.
  void open_or_env(const std::string& path);
  const std::string& out_path() const { return out_path_; }

  // Spans lost to ring overflow (rare: rings spill at half capacity).
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  // Spans intentionally suppressed by the sampling controls below. Kept
  // separate from dropped() — sampling is policy, dropping is data loss —
  // and reported in the export so utilization numbers stay honest.
  std::uint64_t sampled_out() const {
    return sampled_out_.load(std::memory_order_relaxed);
  }

  // Min-duration filter: spans shorter than this are counted in
  // sampled_out() instead of published to the ring (--trace-min-us /
  // RN_TRACE_MIN_US). Applied at span close; parents outlive their
  // children, so a kept child's ancestors are kept too.
  void set_min_duration_s(double s);
  double min_duration_s() const {
    return min_duration_s_.load(std::memory_order_relaxed);
  }

  // Per-category rate sampler: "prefix=N[,prefix=N...]" keeps 1 of every N
  // spans whose name starts with prefix (first matching rule wins; other
  // spans are unaffected). E.g. "par.chunk=100" tames per-chunk span volume
  // on big runs. Must be configured before spans are produced (throws once
  // the tracer is enabled); throws on a malformed spec.
  void set_sampling_spec(const std::string& spec);

  // CLI/env glue: min_us >= 0 beats RN_TRACE_MIN_US; a non-empty spec
  // beats RN_TRACE_SAMPLE. Call before open_or_env.
  void configure_sampling_or_env(double min_us, const std::string& spec);

  // Publishes an already-measured interval as a completed span on the
  // calling thread's ring. `start_s` is on the trace timeline (see
  // trace_now_s()); the span may have started on another thread — this is
  // how the serving worker backdates a `serve.queue.wait` span to the
  // moment the handler thread enqueued the request. Subject to the same
  // sampling/min-duration policy as TraceSpan. Returns the span id
  // (0 when disabled or suppressed).
  std::uint64_t emit_complete(const char* name, std::uint64_t parent,
                              double start_s, double dur_s,
                              const char* arg_key = nullptr,
                              std::int64_t arg_val = 0);

  // Drains every thread ring plus previous spills; returns all completed
  // spans collected since the last call (unsorted).
  std::vector<TraceRecord> collect();

  // Writes `records` as Chrome trace-event JSON ({"traceEvents":[...]})
  // with top-level "rnDropped"/"rnSampledOut" accounting keys. With
  // merge_existing, a parseable existing file's traceEvents are carried
  // over first (and its accounting keys added in) — how a resumed run
  // appends to its trace.
  static void write_chrome_trace(const std::string& path,
                                 const std::vector<TraceRecord>& records,
                                 bool merge_existing = false,
                                 std::uint64_t dropped = 0,
                                 std::uint64_t sampled_out = 0);

  // collect() + write_chrome_trace(out_path()) when a path is set, then
  // disable. The CLI calls this once at exit.
  void export_and_close(bool merge_existing = false);

  // Tests: disable, discard all pending spans, zero the drop/sampled-out
  // counters, and clear the sampling configuration.
  void reset_for_tests();

 private:
  friend class TraceSpan;
  std::uint64_t next_span_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  // Sampling verdict for a completed span; bumps sampled_out_ on false.
  bool should_record(const char* name, double dur_s);

  struct SampleRule {
    std::string prefix;
    std::uint64_t keep_one_in = 1;
    std::atomic<std::uint64_t> seen{0};
  };

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> sampled_out_{0};
  std::atomic<double> min_duration_s_{0.0};
  // Immutable once the tracer is enabled (set_sampling_spec enforces), so
  // span close reads it without a lock.
  std::vector<std::unique_ptr<SampleRule>> sample_rules_;
  std::string out_path_;
};

// Top of the calling thread's span stack (0 when tracing is disabled or no
// span is open). Capture before handing work to another thread and pass to
// TraceSpan(name, parent) so the receiving thread nests correctly.
std::uint64_t trace_current_span();

// Seconds since the process trace epoch — the timeline TraceRecord.start_s
// lives on. Capture at an event of interest and pass to
// Tracer::emit_complete() to publish the interval later (possibly from
// another thread). Returns 0 when tracing is disabled.
double trace_now_s();

// RAII span. Must end on the thread that constructed it (stack discipline);
// cross-thread nesting goes through the explicit-parent constructor.
class TraceSpan {
 public:
  // Nests under the calling thread's current span.
  explicit TraceSpan(const char* name);
  // Nests under an explicit parent id (0 = root) — for spans whose logical
  // parent ran on another thread.
  TraceSpan(const char* name, std::uint64_t parent);

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Attaches one integer argument (last call wins). `key` must be a string
  // literal. No-op when tracing was disabled at construction.
  void arg(const char* key, std::int64_t v) {
    arg_key_ = key;
    arg_val_ = v;
  }

  // Span id for explicit cross-thread parenting (0 when disabled).
  std::uint64_t id() const { return id_; }

  // Records the span now; later calls (and the destructor) are no-ops.
  void end();

  ~TraceSpan() { end(); }

 private:
  void begin(const char* name, std::uint64_t parent, bool explicit_parent);

  const char* name_ = nullptr;
  const char* arg_key_ = nullptr;
  std::int64_t arg_val_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  double start_s_ = 0.0;
  bool active_ = false;
  bool pushed_ = false;  // span sits on the thread stack and must be popped
};

// Human-readable rollup of an exported trace file for `routenet obs trace`:
// top-N span names by total and by self time (total minus direct children)
// and per-thread busy/utilization. Throws std::runtime_error on an
// unreadable or malformed file.
std::string summarize_trace_file(const std::string& path, int top_n = 12);

// Compact JSON object summarizing `records` for the `trace` section of
// BENCH_*.json:
// {"spans":N,"dropped":D,"sampled_out":S,"threads":T,"by_name":{...}}.
std::string trace_summary_json(const std::vector<TraceRecord>& records,
                               std::uint64_t dropped,
                               std::uint64_t sampled_out = 0);

}  // namespace rn::obs
