#include "obs/event.h"

#include <chrono>
#include <cstdlib>
#include <stdexcept>

#include "obs/json.h"
#include "obs/metrics.h"

namespace rn::obs {

Event& Event::f(std::string_view key, double v) {
  Field field;
  field.key = std::string(key);
  field.kind = Field::Kind::kDouble;
  field.num = v;
  fields_.push_back(std::move(field));
  return *this;
}

Event& Event::f(std::string_view key, std::int64_t v) {
  Field field;
  field.key = std::string(key);
  field.kind = Field::Kind::kInt;
  field.integer = v;
  fields_.push_back(std::move(field));
  return *this;
}

Event& Event::f(std::string_view key, std::string_view v) {
  Field field;
  field.key = std::string(key);
  field.kind = Field::Kind::kString;
  field.str = std::string(v);
  fields_.push_back(std::move(field));
  return *this;
}

std::string Event::jsonl(double ts) const {
  std::string out = "{\"ts\":";
  char ts_buf[48];
  std::snprintf(ts_buf, sizeof(ts_buf), "%.6f", ts);
  out += ts_buf;
  out += ",\"kind\":\"";
  out += json_escape(kind_);
  out += "\",\"fields\":{";
  bool first = true;
  for (const Field& field : fields_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(field.key);
    out += "\":";
    switch (field.kind) {
      case Field::Kind::kDouble: out += json_number(field.num); break;
      case Field::Kind::kInt: out += std::to_string(field.integer); break;
      case Field::Kind::kString:
        out += '"';
        out += json_escape(field.str);
        out += '"';
        break;
    }
  }
  out += "}}";
  return out;
}

std::string Event::console_line() const {
  std::string out = "[";
  out += kind_;
  out += ']';
  for (const Field& field : fields_) {
    out += ' ';
    out += field.key;
    out += '=';
    switch (field.kind) {
      case Field::Kind::kDouble: {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.6g", field.num);
        out += buf;
        break;
      }
      case Field::Kind::kInt: out += std::to_string(field.integer); break;
      case Field::Kind::kString: out += field.str; break;
    }
  }
  return out;
}

double unix_now_s() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

EventSink& EventSink::global() {
  static EventSink* instance = new EventSink();  // never destroyed
  return *instance;
}

void EventSink::open(const std::string& path, bool append) {
  std::lock_guard<std::mutex> lock(mu_);
  if (out_ != nullptr && owns_file_) std::fclose(out_);
  out_ = nullptr;
  owns_file_ = false;
  if (path == "-" || path == "stderr") {
    out_ = stderr;
  } else {
    out_ = std::fopen(path.c_str(), append ? "a" : "w");
    if (out_ == nullptr) {
      enabled_.store(false, std::memory_order_relaxed);
      throw std::runtime_error("cannot open metrics sink: " + path);
    }
    owns_file_ = true;
  }
  path_ = path;
  enabled_.store(true, std::memory_order_relaxed);
}

void EventSink::open_or_env(const std::string& path, bool append) {
  if (!path.empty()) {
    open(path, append);
    return;
  }
  const char* env = std::getenv("RN_METRICS_OUT");
  if (env != nullptr && env[0] != '\0') open(env, append);
}

void EventSink::close() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_.store(false, std::memory_order_relaxed);
  if (out_ != nullptr) {
    std::fflush(out_);
    if (owns_file_) std::fclose(out_);
  }
  out_ = nullptr;
  owns_file_ = false;
  path_.clear();
}

void EventSink::emit(const Event& ev) {
  if (!enabled()) return;
  const std::string line = ev.jsonl(unix_now_s());
  std::lock_guard<std::mutex> lock(mu_);
  if (out_ == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), out_);
  std::fputc('\n', out_);
  std::fflush(out_);
}

void emit_registry_snapshot() {
  EventSink& sink = EventSink::global();
  if (!sink.enabled()) return;
  const RegistrySnapshot snap = Registry::global().snapshot();
  Event ev("metrics.snapshot");
  for (const auto& [name, v] : snap.counters) ev.f(name, v);
  for (const auto& [name, v] : snap.gauges) ev.f(name, v);
  for (const RegistrySnapshot::HistogramStats& h : snap.histograms) {
    ev.f(h.name + ".count", h.count);
    ev.f(h.name + ".p50", h.p50);
    ev.f(h.name + ".p95", h.p95);
    ev.f(h.name + ".p99", h.p99);
    ev.f(h.name + ".max", h.max);
  }
  sink.emit(ev);
}

}  // namespace rn::obs
