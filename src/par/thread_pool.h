// Parallel execution layer: a fixed-size thread pool with task futures and
// a blocked `parallel_for` helper, shared by dataset generation (one
// simulation per task) and the autodiff matmul kernels (row-range tasks).
//
// Thread count resolution, in priority order: an explicit
// `set_global_threads(n)` call (the CLI's `--threads` flag), the RN_THREADS
// environment variable, then `std::thread::hardware_concurrency()`.
//
// Determinism contract: `parallel_for` only partitions the index range —
// it never reorders work within a chunk, and callers are required to make
// chunks write disjoint outputs whose values do not depend on chunk
// boundaries. Under that contract every caller in this repo produces
// bitwise-identical results at any thread count (tested by
// par_determinism_test).
//
// Telemetry (see docs/performance.md): `par.pool.threads`,
// `par.tasks_total`, `par.parallel_for_total`, `par.queue.peak_depth`,
// and the per-task busy-time histogram `par.task_s` whose sum over the run
// divided by (wall seconds x threads) is the pool utilization.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace rn::par {

class ThreadPool {
 public:
  // Spawns `threads` workers (clamped to >= 1). A 1-thread pool never
  // spawns: submit/parallel_for run inline on the caller.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return size_; }

  // Enqueues fn and returns a future for its result. Exceptions thrown by
  // fn surface from future::get().
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  // True when the calling thread is a worker of *any* ThreadPool — used to
  // run nested parallel_for calls inline instead of deadlocking on a full
  // queue.
  static bool on_worker_thread();

 private:
  void enqueue(std::function<void()> fn);
  void worker_loop();

  int size_ = 1;
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

// Thread count the pool would use when none has been set explicitly:
// RN_THREADS if set and positive, else hardware_concurrency (>= 1).
int default_threads();

// Resolves `threads` (0 = auto via default_threads()) and rebuilds the
// global pool if the resolved count differs from the current one. Safe to
// call while pool work is in flight: the pool is held by shared_ptr, so an
// in-flight parallel_for keeps its (old) pool alive until its chunks
// finish; the old pool's workers are joined once the last holder drops it.
void set_global_threads(int threads);

// Current global pool width.
int global_threads();

// Returns the global pool, creating it at default_threads() on first use.
// Callers get a shared_ptr copy so a concurrent set_global_threads cannot
// destroy a pool still in use.
std::shared_ptr<ThreadPool> global_pool();

// Runs body over [begin, end) split into chunks of at least `grain`
// indices, rounded up so every chunk size (except the tail's) is a grain
// multiple. body(lo, hi) handles the half-open sub-range [lo, hi). Runs
// inline (one chunk) when the range is small, the pool has one thread, or
// the caller is already a pool worker. Always waits for every chunk, even
// when one throws — then rethrows the first chunk exception.
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& body);

}  // namespace rn::par
