#include "par/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>

#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "util/check.h"

namespace rn::par {

namespace {

thread_local bool t_on_worker = false;

struct PoolMetrics {
  obs::Counter& tasks = obs::Registry::global().counter("par.tasks_total");
  obs::Counter& loops =
      obs::Registry::global().counter("par.parallel_for_total");
  obs::Gauge& threads = obs::Registry::global().gauge("par.pool.threads");
  obs::Gauge& peak_queue =
      obs::Registry::global().gauge("par.queue.peak_depth");
  obs::Histogram& task_s = obs::Registry::global().histogram("par.task_s");
};

PoolMetrics& metrics() {
  static PoolMetrics m;
  return m;
}

}  // namespace

ThreadPool::ThreadPool(int threads) : size_(std::max(1, threads)) {
  metrics().threads.set(static_cast<double>(size_));
  if (size_ == 1) return;  // inline pool: no workers, no queue
  workers_.reserve(static_cast<std::size_t>(size_));
  for (int i = 0; i < size_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::on_worker_thread() { return t_on_worker; }

void ThreadPool::enqueue(std::function<void()> fn) {
  if (workers_.empty()) {
    // 1-thread pool: run on the caller; the future still carries the result.
    obs::ScopedTimer timer(metrics().task_s);
    metrics().tasks.add(1);
    fn();
    return;
  }
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    RN_CHECK(!stop_, "submit on a stopped ThreadPool");
    queue_.push(std::move(fn));
    depth = queue_.size();
  }
  metrics().peak_queue.set_max(static_cast<double>(depth));
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  t_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    obs::ScopedTimer timer(metrics().task_s);
    metrics().tasks.add(1);
    task();
  }
}

namespace {

int env_threads() {
  const char* env = std::getenv("RN_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  const int n = std::atoi(env);
  return n > 0 ? n : 0;
}

std::shared_ptr<ThreadPool>& pool_slot() {
  static std::shared_ptr<ThreadPool> pool;
  return pool;
}

std::mutex& pool_mu() {
  static std::mutex mu;
  return mu;
}

}  // namespace

int default_threads() {
  const int env = env_threads();
  if (env > 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void set_global_threads(int threads) {
  const int n = threads > 0 ? threads : default_threads();
  std::shared_ptr<ThreadPool> old;
  {
    std::lock_guard<std::mutex> lock(pool_mu());
    std::shared_ptr<ThreadPool>& pool = pool_slot();
    if (pool != nullptr && pool->size() == n) return;
    old = std::move(pool);
    pool = std::make_shared<ThreadPool>(n);
  }
  // `old` drops here, outside pool_mu: if this is the last reference the
  // destructor joins the old workers, and a worker blocked in
  // global_pool() must be able to take the lock for that join to finish.
}

int global_threads() { return global_pool()->size(); }

std::shared_ptr<ThreadPool> global_pool() {
  std::lock_guard<std::mutex> lock(pool_mu());
  std::shared_ptr<ThreadPool>& pool = pool_slot();
  if (pool == nullptr) pool = std::make_shared<ThreadPool>(default_threads());
  return pool;
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>&
                      body) {
  if (begin >= end) return;
  grain = std::max<std::int64_t>(1, grain);
  const std::int64_t range = end - begin;
  // The shared_ptr copy keeps this pool alive even if another thread
  // rebuilds the global slot (set_global_threads) while chunks are
  // in flight.
  const std::shared_ptr<ThreadPool> pool = global_pool();
  // Chunk spans nest under whatever span the caller has open, whichever
  // thread ends up running them (captured once, passed explicitly).
  const std::uint64_t trace_parent = obs::trace_current_span();
  // Inline when parallelism cannot help (or would deadlock: a worker
  // waiting on futures served by its own queue).
  if (range <= grain || pool->size() <= 1 || ThreadPool::on_worker_thread()) {
    obs::TraceSpan span("par.chunk", trace_parent);
    span.arg("lo", begin);
    body(begin, end);
    return;
  }
  metrics().loops.add(1);
  // Cap the chunk count at ~4 per worker so task overhead stays bounded
  // while the tail still load-balances; round the chunk size up to a grain
  // multiple so boundaries stay aligned to the caller's tiles.
  const std::int64_t max_chunks =
      static_cast<std::int64_t>(pool->size()) * 4;
  std::int64_t per_chunk =
      std::max(grain, (range + max_chunks - 1) / max_chunks);
  per_chunk = (per_chunk + grain - 1) / grain * grain;
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<std::size_t>(range / per_chunk));
  // The caller runs the first chunk itself; workers take the rest.
  const std::int64_t first_hi = std::min(end, begin + per_chunk);
  for (std::int64_t chunk_lo = first_hi; chunk_lo < end;
       chunk_lo += per_chunk) {
    const std::int64_t chunk_hi = std::min(end, chunk_lo + per_chunk);
    futures.push_back(
        pool->submit([&body, chunk_lo, chunk_hi, trace_parent] {
          obs::TraceSpan span("par.chunk", trace_parent);
          span.arg("lo", chunk_lo);
          body(chunk_lo, chunk_hi);
        }));
  }
  // Every future is drained even when a chunk throws: queued tasks hold
  // &body — a reference into the caller's frame — so returning (and
  // unwinding) before they all finish would be a use-after-free. The
  // first exception wins; later ones are swallowed.
  std::exception_ptr error;
  try {
    obs::TraceSpan span("par.chunk", trace_parent);
    span.arg("lo", begin);
    body(begin, first_hi);
  } catch (...) {
    error = std::current_exception();
  }
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (error == nullptr) error = std::current_exception();
    }
  }
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace rn::par
