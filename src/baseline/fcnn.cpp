#include "baseline/fcnn.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "ag/optim.h"

namespace rn::baseline {

FcnnBaseline::FcnnBaseline(int num_pairs, const FcnnConfig& config)
    : num_pairs_(num_pairs),
      cfg_(config),
      init_rng_(config.seed),
      mlp_({2 * num_pairs, config.hidden1, config.hidden2, num_pairs},
           init_rng_, "fcnn") {
  RN_CHECK(num_pairs >= 1, "num_pairs must be positive");
}

ag::Tensor FcnnBaseline::encode(const dataset::Sample& sample) const {
  RN_CHECK(sample.num_pairs() == num_pairs_,
           "sample does not match the baseline's fixed input width");
  ag::Tensor x(1, 2 * num_pairs_);
  for (int idx = 0; idx < num_pairs_; ++idx) {
    x.at(0, idx) = static_cast<float>(sample.tm.rate_by_index(idx) *
                                      norm_.traffic_scale);
    // Path length in hops, mildly scaled — the only routing signal a
    // fixed-width encoding can carry.
    x.at(0, num_pairs_ + idx) = static_cast<float>(
        static_cast<double>(sample.routing.path_by_index(idx).size()) / 4.0);
  }
  return x;
}

void FcnnBaseline::fit(const std::vector<dataset::Sample>& train) {
  RN_CHECK(!train.empty(), "empty training set");
  norm_ = dataset::fit_normalizer(train);

  ag::Adam optimizer(mlp_.params(), cfg_.learning_rate);
  Rng shuffle_rng(cfg_.seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<int> order(train.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int>(i);
  }

  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    for (std::size_t i = order.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          shuffle_rng.uniform_int(0, static_cast<int>(i) - 1));
      std::swap(order[i - 1], order[j]);
    }
    double loss_sum = 0.0;
    int batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(cfg_.batch_size)) {
      const std::size_t end = std::min(
          order.size(), start + static_cast<std::size_t>(cfg_.batch_size));
      const int rows = static_cast<int>(end - start);
      ag::Tensor x(rows, 2 * num_pairs_);
      ag::Tensor target(rows, num_pairs_);
      ag::Tensor mask(rows, num_pairs_);
      for (int r = 0; r < rows; ++r) {
        const dataset::Sample& s =
            train[static_cast<std::size_t>(order[start + static_cast<std::size_t>(r)])];
        const ag::Tensor enc = encode(s);
        for (int c = 0; c < enc.cols(); ++c) x.at(r, c) = enc.at(0, c);
        for (int idx = 0; idx < num_pairs_; ++idx) {
          if (s.valid[static_cast<std::size_t>(idx)]) {
            target.at(r, idx) = static_cast<float>(norm_.normalize_delay(
                s.delay_s[static_cast<std::size_t>(idx)]));
            mask.at(r, idx) = 1.0f;
          }
        }
      }
      ag::Tape tape;
      const ag::ValueId pred = mlp_.apply(tape, tape.constant(x));
      // Masked MSE: invalid entries contribute zero residual.
      const ag::ValueId diff =
          tape.mul(tape.sub(pred, tape.constant(target)), tape.constant(mask));
      const ag::ValueId loss = tape.reduce_mean(tape.mul(diff, diff));
      optimizer.zero_grad();
      tape.backward(loss);
      ag::clip_grad_norm(optimizer.params(), cfg_.clip_norm);
      optimizer.step();
      loss_sum += tape.value(loss).at(0, 0);
      ++batches;
    }
    if (cfg_.verbose) {
      std::printf("fcnn epoch %3d  loss %.5f\n", epoch,
                  batches > 0 ? loss_sum / batches : 0.0);
      std::fflush(stdout);
    }
    optimizer.set_lr(optimizer.lr() * cfg_.lr_decay);
  }
}

std::vector<double> FcnnBaseline::predict_delay(
    const dataset::Sample& sample) const {
  ag::Tape tape;
  const ag::ValueId pred = mlp_.apply(tape, tape.constant(encode(sample)));
  const ag::Tensor& y = tape.value(pred);
  std::vector<double> out(static_cast<std::size_t>(num_pairs_));
  for (int idx = 0; idx < num_pairs_; ++idx) {
    out[static_cast<std::size_t>(idx)] = norm_.denormalize_delay(y.at(0, idx));
  }
  return out;
}

double FcnnBaseline::evaluate_delay_mre(
    const std::vector<dataset::Sample>& samples) const {
  double total = 0.0;
  std::size_t count = 0;
  for (const dataset::Sample& s : samples) {
    const std::vector<double> pred = predict_delay(s);
    for (int idx = 0; idx < num_pairs_; ++idx) {
      if (!s.valid[static_cast<std::size_t>(idx)]) continue;
      const double truth = s.delay_s[static_cast<std::size_t>(idx)];
      total += std::abs(pred[static_cast<std::size_t>(idx)] - truth) / truth;
      ++count;
    }
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

std::size_t FcnnBaseline::num_parameters() const {
  std::size_t total = 0;
  for (ag::Parameter* p : mlp_.params()) {
    total += static_cast<std::size_t>(p->value.size());
  }
  return total;
}

}  // namespace rn::baseline
