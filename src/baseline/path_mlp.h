// Feature-engineering baseline: a per-path MLP over handcrafted queueing
// features.
//
// Unlike the fixed-width FCNN, this baseline *does* work on any topology —
// each path becomes one row of features (hops, traffic, capacities, offered
// per-link utilizations), so it is the strongest "classic ML" contender:
// it encodes exactly the quantities a queueing theorist would engineer.
// What it cannot see is what RouteNet's message passing discovers — how
// paths interact through shared links beyond first-order offered load.
#pragma once

#include <cstdint>
#include <vector>

#include "ag/nn.h"
#include "dataset/dataset.h"

namespace rn::baseline {

struct PathMlpConfig {
  int hidden1 = 64;
  int hidden2 = 32;
  int epochs = 60;
  int batch_rows = 512;  // paths per training step (rows, not samples)
  float learning_rate = 1e-3f;
  float lr_decay = 0.97f;
  float clip_norm = 5.0f;
  std::uint64_t seed = 23;
  bool verbose = false;
};

class PathMlpBaseline {
 public:
  explicit PathMlpBaseline(const PathMlpConfig& config);

  // Number of handcrafted features per path.
  static constexpr int kNumFeatures = 8;

  void fit(const std::vector<dataset::Sample>& train);

  // Per-pair delay predictions in seconds; works on any topology.
  std::vector<double> predict_delay(const dataset::Sample& sample) const;

  double evaluate_delay_mre(const std::vector<dataset::Sample>& samples) const;

  std::size_t num_parameters() const;

 private:
  // One row of features for path `pair_idx` of `sample`, given the
  // per-link offered loads of that sample.
  void fill_features(const dataset::Sample& sample,
                     const std::vector<double>& link_loads, int pair_idx,
                     float* row) const;

  PathMlpConfig cfg_;
  dataset::Normalizer norm_;
  Rng init_rng_;
  mutable ag::Mlp mlp_;
};

}  // namespace rn::baseline
