// Fully-connected baseline — the "early ML-based attempts" of the paper's
// introduction (fixed-size input NNs such as Mestres et al. 2018).
//
// The model flattens the traffic matrix (plus per-pair path lengths, a
// charitable hint of the routing) into one fixed-width vector and regresses
// all per-pair delays at once. By construction it is locked to one topology
// size and cannot generalize across graphs — the contrast that motivates
// RouteNet.
#pragma once

#include <cstdint>
#include <vector>

#include "ag/nn.h"
#include "dataset/dataset.h"

namespace rn::baseline {

struct FcnnConfig {
  int hidden1 = 128;
  int hidden2 = 64;
  int epochs = 60;
  int batch_size = 16;
  float learning_rate = 1e-3f;
  float lr_decay = 0.97f;
  float clip_norm = 5.0f;
  std::uint64_t seed = 17;
  bool verbose = false;
};

class FcnnBaseline {
 public:
  // num_pairs fixes the input/output width: the model only accepts samples
  // whose topology has exactly this many source-destination pairs.
  FcnnBaseline(int num_pairs, const FcnnConfig& config);

  // Trains on samples (all must match num_pairs). Fits normalization on the
  // training set.
  void fit(const std::vector<dataset::Sample>& train);

  // Per-pair delay predictions in seconds.
  std::vector<double> predict_delay(const dataset::Sample& sample) const;

  // Mean relative delay error over valid paths.
  double evaluate_delay_mre(const std::vector<dataset::Sample>& samples) const;

  int num_pairs() const { return num_pairs_; }
  std::size_t num_parameters() const;

 private:
  ag::Tensor encode(const dataset::Sample& sample) const;  // 1×(2·pairs)

  int num_pairs_;
  FcnnConfig cfg_;
  dataset::Normalizer norm_;
  Rng init_rng_;
  mutable ag::Mlp mlp_;
};

}  // namespace rn::baseline
