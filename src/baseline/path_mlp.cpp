#include "baseline/path_mlp.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "ag/optim.h"
#include "traffic/traffic.h"

namespace rn::baseline {

namespace {
// Utilizations are clipped here before entering 1/(1−ρ)-style features;
// offered load can exceed capacity in generated scenarios.
constexpr double kRhoCap = 0.95;
}  // namespace

PathMlpBaseline::PathMlpBaseline(const PathMlpConfig& config)
    : cfg_(config),
      init_rng_(config.seed),
      mlp_({kNumFeatures, config.hidden1, config.hidden2, 1}, init_rng_,
           "path_mlp") {}

void PathMlpBaseline::fill_features(const dataset::Sample& sample,
                                    const std::vector<double>& link_loads,
                                    int pair_idx, float* row) const {
  const topo::Topology& topo = *sample.topology;
  const routing::Path& path = sample.routing.path_by_index(pair_idx);
  const double traffic = sample.tm.rate_by_index(pair_idx);

  double sum_inv_cap = 0.0;      // Σ 1/cap — transmission time per bit
  double min_cap = 1e300;
  double sum_rho = 0.0;
  double max_rho = 0.0;
  double sum_mm1_wait = 0.0;     // Σ ρ/(cap·(1−ρ)) — M/M/1-ish waiting hint
  for (topo::LinkId id : path) {
    const double cap = topo.link(id).capacity_bps;
    const double rho = std::min(
        kRhoCap, link_loads[static_cast<std::size_t>(id)] / cap);
    sum_inv_cap += 1.0 / cap;
    min_cap = std::min(min_cap, cap);
    sum_rho += rho;
    max_rho = std::max(max_rho, rho);
    sum_mm1_wait += rho / (cap * (1.0 - rho));
  }
  const auto hops = static_cast<double>(path.size());
  // Scales chosen so every feature is O(1) for the library's usual
  // capacity range (10–40 kbps) and topology sizes.
  row[0] = static_cast<float>(hops / 4.0);
  row[1] = static_cast<float>(traffic * norm_.traffic_scale);
  row[2] = static_cast<float>(sum_inv_cap * 1.0e4);
  row[3] = static_cast<float>(min_cap * norm_.capacity_scale);
  row[4] = static_cast<float>(sum_rho / std::max(1.0, hops));
  row[5] = static_cast<float>(max_rho);
  row[6] = static_cast<float>(sum_mm1_wait * 1.0e3);
  row[7] = static_cast<float>(std::log1p(sum_mm1_wait * 1.0e4));
}

void PathMlpBaseline::fit(const std::vector<dataset::Sample>& train) {
  RN_CHECK(!train.empty(), "empty training set");
  norm_ = dataset::fit_normalizer(train);

  // Flatten all valid paths of all samples into one row matrix.
  std::vector<float> features;
  std::vector<float> targets;
  for (const dataset::Sample& s : train) {
    const std::vector<double> loads =
        traffic::link_loads_bps(*s.topology, s.routing, s.tm);
    for (int idx = 0; idx < s.num_pairs(); ++idx) {
      if (!s.valid[static_cast<std::size_t>(idx)]) continue;
      float row[kNumFeatures];
      fill_features(s, loads, idx, row);
      features.insert(features.end(), row, row + kNumFeatures);
      targets.push_back(static_cast<float>(
          norm_.normalize_delay(s.delay_s[static_cast<std::size_t>(idx)])));
    }
  }
  const int total_rows = static_cast<int>(targets.size());
  RN_CHECK(total_rows > 0, "no valid paths in training set");

  ag::Adam optimizer(mlp_.params(), cfg_.learning_rate);
  Rng shuffle_rng(cfg_.seed ^ 0xd1b54a32d192ed03ull);
  std::vector<int> order(static_cast<std::size_t>(total_rows));
  for (int i = 0; i < total_rows; ++i) {
    order[static_cast<std::size_t>(i)] = i;
  }

  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    for (std::size_t i = order.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          shuffle_rng.uniform_int(0, static_cast<int>(i) - 1));
      std::swap(order[i - 1], order[j]);
    }
    double loss_sum = 0.0;
    int batches = 0;
    for (int start = 0; start < total_rows; start += cfg_.batch_rows) {
      const int rows = std::min(cfg_.batch_rows, total_rows - start);
      ag::Tensor x(rows, kNumFeatures);
      ag::Tensor y(rows, 1);
      for (int r = 0; r < rows; ++r) {
        const int src_row = order[static_cast<std::size_t>(start + r)];
        for (int c = 0; c < kNumFeatures; ++c) {
          x.at(r, c) =
              features[static_cast<std::size_t>(src_row) * kNumFeatures +
                       static_cast<std::size_t>(c)];
        }
        y.at(r, 0) = targets[static_cast<std::size_t>(src_row)];
      }
      ag::Tape tape;
      const ag::ValueId loss =
          tape.mse(mlp_.apply(tape, tape.constant(x)), y);
      optimizer.zero_grad();
      tape.backward(loss);
      ag::clip_grad_norm(optimizer.params(), cfg_.clip_norm);
      optimizer.step();
      loss_sum += tape.value(loss).at(0, 0);
      ++batches;
    }
    if (cfg_.verbose) {
      std::printf("path_mlp epoch %3d  loss %.5f\n", epoch,
                  batches > 0 ? loss_sum / batches : 0.0);
      std::fflush(stdout);
    }
    optimizer.set_lr(optimizer.lr() * cfg_.lr_decay);
  }
}

std::vector<double> PathMlpBaseline::predict_delay(
    const dataset::Sample& sample) const {
  const std::vector<double> loads =
      traffic::link_loads_bps(*sample.topology, sample.routing, sample.tm);
  const int pairs = sample.num_pairs();
  ag::Tensor x(pairs, kNumFeatures);
  for (int idx = 0; idx < pairs; ++idx) {
    fill_features(sample, loads, idx, x.row(idx));
  }
  ag::Tape tape;
  const ag::ValueId pred = mlp_.apply(tape, tape.constant(x));
  const ag::Tensor& y = tape.value(pred);
  std::vector<double> out(static_cast<std::size_t>(pairs));
  for (int idx = 0; idx < pairs; ++idx) {
    out[static_cast<std::size_t>(idx)] = norm_.denormalize_delay(y.at(idx, 0));
  }
  return out;
}

double PathMlpBaseline::evaluate_delay_mre(
    const std::vector<dataset::Sample>& samples) const {
  double total = 0.0;
  std::size_t count = 0;
  for (const dataset::Sample& s : samples) {
    const std::vector<double> pred = predict_delay(s);
    for (int idx = 0; idx < s.num_pairs(); ++idx) {
      if (!s.valid[static_cast<std::size_t>(idx)]) continue;
      const double truth = s.delay_s[static_cast<std::size_t>(idx)];
      total += std::abs(pred[static_cast<std::size_t>(idx)] - truth) / truth;
      ++count;
    }
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

std::size_t PathMlpBaseline::num_parameters() const {
  std::size_t total = 0;
  for (ag::Parameter* p : mlp_.params()) {
    total += static_cast<std::size_t>(p->value.size());
  }
  return total;
}

}  // namespace rn::baseline
