// Traffic matrices and flow-level stochastic traffic models.
//
// A TrafficMatrix gives the average offered rate (bits/s) for every ordered
// node pair. The dataset generator varies matrices (shape and intensity)
// per sample; the packet simulator turns each pair's rate into a packet
// process according to a TrafficModel.
#pragma once

#include <vector>

#include "routing/routing.h"
#include "topology/topology.h"
#include "util/rng.h"

namespace rn::traffic {

class TrafficMatrix {
 public:
  explicit TrafficMatrix(int num_nodes);

  int num_nodes() const { return num_nodes_; }
  int num_pairs() const { return num_nodes_ * (num_nodes_ - 1); }

  double rate_bps(topo::NodeId s, topo::NodeId d) const;
  double rate_by_index(int pair_idx) const;
  void set_rate_bps(topo::NodeId s, topo::NodeId d, double rate);

  // Total offered traffic over all pairs.
  double total_rate_bps() const;

  void scale(double factor);

 private:
  int num_nodes_;
  std::vector<double> rates_;  // indexed by topo::pair_index
};

// Independent per-pair rates uniform in [lo, hi].
TrafficMatrix uniform_traffic(int num_nodes, double lo_bps, double hi_bps,
                              Rng& rng);

// Gravity model: rate(s,d) ∝ w_s · w_d with node weights ~ U(0.2, 1),
// normalized so the matrix sums to total_bps.
TrafficMatrix gravity_traffic(int num_nodes, double total_bps, Rng& rng);

// A few hot source nodes send `hot_factor`× the base rate to everyone;
// models the skewed matrices that stress individual links.
TrafficMatrix hotspot_traffic(int num_nodes, int num_hotspots,
                              double base_bps, double hot_factor, Rng& rng);

// Offered load per link (bits/s) under a routing scheme.
std::vector<double> link_loads_bps(const topo::Topology& topo,
                                   const routing::RoutingScheme& scheme,
                                   const TrafficMatrix& tm);

// Rescales the matrix so the most-loaded link sits at `target_max_util`
// of its capacity. Returns the applied factor. This is how the dataset
// generator sweeps "traffic intensity".
double scale_to_max_utilization(TrafficMatrix& tm,
                                const topo::Topology& topo,
                                const routing::RoutingScheme& scheme,
                                double target_max_util);

// --- Flow-level stochastic models ------------------------------------------

enum class ArrivalProcess {
  kPoisson,  // memoryless packet arrivals
  kOnOff,    // exponential ON/OFF bursts; arrivals only while ON
};

enum class PacketSizeModel {
  kExponential,      // M/M/1-like per link (analytically checkable)
  kBimodal,          // small-ACK / large-data mix (breaks M/M/1 assumptions)
  kFixed,            // deterministic size (M/D/1-like)
  kTruncatedPareto,  // heavy-tailed sizes — the "real traffic" that defeats
                     // Poisson-assumption analytic models (§1 motivation)
};

struct TrafficModel {
  ArrivalProcess arrivals = ArrivalProcess::kPoisson;
  PacketSizeModel sizes = PacketSizeModel::kExponential;
  double mean_pkt_size_bits = 1000.0;

  // On-off parameters: the flow is ON an `on_fraction` of the time in
  // exponentially distributed bursts of mean `mean_on_s`; while ON it sends
  // at rate/on_fraction so the long-run average matches the matrix.
  double on_fraction = 0.3;
  double mean_on_s = 0.5;

  // Bimodal parameters: probability and size of the small packet; the large
  // size is derived so the mixture mean equals mean_pkt_size_bits.
  double small_pkt_prob = 0.6;
  double small_pkt_bits = 300.0;

  // Truncated-Pareto parameters: shape alpha and truncation at
  // pareto_max_factor × the scale xm; xm is derived so the distribution's
  // mean equals mean_pkt_size_bits.
  double pareto_alpha = 1.6;
  double pareto_max_factor = 50.0;

  double large_pkt_bits() const;

  // Scale parameter xm of the truncated Pareto that hits the configured
  // mean, and the distribution's raw k-th moments (k = 1..3).
  double pareto_xm_bits() const;
  double pareto_moment(int k) const;
};

}  // namespace rn::traffic
