#include "traffic/traffic.h"

#include <algorithm>
#include <cmath>

namespace rn::traffic {

TrafficMatrix::TrafficMatrix(int num_nodes)
    : num_nodes_(num_nodes),
      rates_(static_cast<std::size_t>(num_nodes) * (num_nodes - 1), 0.0) {
  RN_CHECK(num_nodes >= 2, "traffic matrix needs at least 2 nodes");
}

double TrafficMatrix::rate_bps(topo::NodeId s, topo::NodeId d) const {
  return rates_[static_cast<std::size_t>(topo::pair_index(s, d, num_nodes_))];
}

double TrafficMatrix::rate_by_index(int pair_idx) const {
  RN_CHECK(pair_idx >= 0 && pair_idx < num_pairs(), "pair index out of range");
  return rates_[static_cast<std::size_t>(pair_idx)];
}

void TrafficMatrix::set_rate_bps(topo::NodeId s, topo::NodeId d, double rate) {
  RN_CHECK(rate >= 0.0, "traffic rate must be non-negative");
  rates_[static_cast<std::size_t>(topo::pair_index(s, d, num_nodes_))] = rate;
}

double TrafficMatrix::total_rate_bps() const {
  double total = 0.0;
  for (double r : rates_) total += r;
  return total;
}

void TrafficMatrix::scale(double factor) {
  RN_CHECK(factor >= 0.0, "scale factor must be non-negative");
  for (double& r : rates_) r *= factor;
}

TrafficMatrix uniform_traffic(int num_nodes, double lo_bps, double hi_bps,
                              Rng& rng) {
  RN_CHECK(0.0 <= lo_bps && lo_bps <= hi_bps, "bad uniform traffic range");
  TrafficMatrix tm(num_nodes);
  for (topo::NodeId s = 0; s < num_nodes; ++s) {
    for (topo::NodeId d = 0; d < num_nodes; ++d) {
      if (s == d) continue;
      tm.set_rate_bps(s, d, rng.uniform(lo_bps, hi_bps));
    }
  }
  return tm;
}

TrafficMatrix gravity_traffic(int num_nodes, double total_bps, Rng& rng) {
  RN_CHECK(total_bps > 0.0, "gravity total must be positive");
  std::vector<double> w(static_cast<std::size_t>(num_nodes));
  for (double& x : w) x = rng.uniform(0.2, 1.0);
  double denom = 0.0;
  for (topo::NodeId s = 0; s < num_nodes; ++s) {
    for (topo::NodeId d = 0; d < num_nodes; ++d) {
      if (s != d) {
        denom += w[static_cast<std::size_t>(s)] * w[static_cast<std::size_t>(d)];
      }
    }
  }
  TrafficMatrix tm(num_nodes);
  for (topo::NodeId s = 0; s < num_nodes; ++s) {
    for (topo::NodeId d = 0; d < num_nodes; ++d) {
      if (s == d) continue;
      const double share = w[static_cast<std::size_t>(s)] *
                           w[static_cast<std::size_t>(d)] / denom;
      tm.set_rate_bps(s, d, total_bps * share);
    }
  }
  return tm;
}

TrafficMatrix hotspot_traffic(int num_nodes, int num_hotspots,
                              double base_bps, double hot_factor, Rng& rng) {
  RN_CHECK(num_hotspots >= 0 && num_hotspots <= num_nodes,
           "hotspot count out of range");
  RN_CHECK(base_bps >= 0.0 && hot_factor >= 1.0, "bad hotspot parameters");
  // Sample distinct hotspot nodes.
  std::vector<topo::NodeId> nodes(static_cast<std::size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) nodes[static_cast<std::size_t>(i)] = i;
  for (int i = 0; i < num_hotspots; ++i) {
    const int j = rng.uniform_int(i, num_nodes - 1);
    std::swap(nodes[static_cast<std::size_t>(i)],
              nodes[static_cast<std::size_t>(j)]);
  }
  std::vector<char> hot(static_cast<std::size_t>(num_nodes), 0);
  for (int i = 0; i < num_hotspots; ++i) {
    hot[static_cast<std::size_t>(nodes[static_cast<std::size_t>(i)])] = 1;
  }
  TrafficMatrix tm(num_nodes);
  for (topo::NodeId s = 0; s < num_nodes; ++s) {
    for (topo::NodeId d = 0; d < num_nodes; ++d) {
      if (s == d) continue;
      const double rate =
          hot[static_cast<std::size_t>(s)] ? base_bps * hot_factor : base_bps;
      tm.set_rate_bps(s, d, rate * rng.uniform(0.5, 1.5));
    }
  }
  return tm;
}

std::vector<double> link_loads_bps(const topo::Topology& topo,
                                   const routing::RoutingScheme& scheme,
                                   const TrafficMatrix& tm) {
  RN_CHECK(scheme.num_nodes() == topo.num_nodes(), "scheme/topology mismatch");
  RN_CHECK(tm.num_nodes() == topo.num_nodes(), "matrix/topology mismatch");
  std::vector<double> loads(static_cast<std::size_t>(topo.num_links()), 0.0);
  for (int idx = 0; idx < tm.num_pairs(); ++idx) {
    const double rate = tm.rate_by_index(idx);
    if (rate <= 0.0) continue;
    for (topo::LinkId id : scheme.path_by_index(idx)) {
      loads[static_cast<std::size_t>(id)] += rate;
    }
  }
  return loads;
}

double scale_to_max_utilization(TrafficMatrix& tm,
                                const topo::Topology& topo,
                                const routing::RoutingScheme& scheme,
                                double target_max_util) {
  RN_CHECK(target_max_util > 0.0 && target_max_util < 1.0,
           "target utilization must be in (0,1) for a stable network");
  const std::vector<double> loads = link_loads_bps(topo, scheme, tm);
  double max_util = 0.0;
  for (topo::LinkId id = 0; id < topo.num_links(); ++id) {
    max_util = std::max(max_util, loads[static_cast<std::size_t>(id)] /
                                      topo.link(id).capacity_bps);
  }
  RN_CHECK(max_util > 0.0, "traffic matrix is all zero");
  const double factor = target_max_util / max_util;
  tm.scale(factor);
  return factor;
}

namespace {

// Raw k-th moment of a Pareto(alpha, xm=1) truncated at c, for alpha != k.
double unit_truncated_pareto_moment(double alpha, double c, int k) {
  RN_CHECK(alpha > 1.0, "pareto alpha must exceed 1 for a finite mean");
  RN_CHECK(c > 1.0, "pareto truncation factor must exceed 1");
  RN_CHECK(std::abs(alpha - static_cast<double>(k)) > 1e-6,
           "pareto alpha too close to a needed moment order");
  return alpha * (1.0 - std::pow(c, static_cast<double>(k) - alpha)) /
         ((alpha - static_cast<double>(k)) * (1.0 - std::pow(c, -alpha)));
}

}  // namespace

double TrafficModel::pareto_xm_bits() const {
  const double m1 =
      unit_truncated_pareto_moment(pareto_alpha, pareto_max_factor, 1);
  return mean_pkt_size_bits / m1;
}

double TrafficModel::pareto_moment(int k) const {
  RN_CHECK(k >= 1 && k <= 3, "pareto_moment supports k = 1..3");
  const double xm = pareto_xm_bits();
  return std::pow(xm, static_cast<double>(k)) *
         unit_truncated_pareto_moment(pareto_alpha, pareto_max_factor, k);
}

double TrafficModel::large_pkt_bits() const {
  RN_CHECK(small_pkt_prob > 0.0 && small_pkt_prob < 1.0,
           "small packet probability must be in (0,1)");
  const double large = (mean_pkt_size_bits - small_pkt_prob * small_pkt_bits) /
                       (1.0 - small_pkt_prob);
  RN_CHECK(large > 0.0, "bimodal parameters give non-positive large size");
  return large;
}

}  // namespace rn::traffic
