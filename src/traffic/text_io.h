// CSV interchange for traffic matrices: header "src,dst,rate_bps", one row
// per nonzero pair.
#pragma once

#include <iosfwd>
#include <string>

#include "traffic/traffic.h"

namespace rn::traffic {

TrafficMatrix load_traffic_csv(std::istream& in, int num_nodes);
TrafficMatrix load_traffic_csv_file(const std::string& path, int num_nodes);

void save_traffic_csv(std::ostream& out, const TrafficMatrix& tm);
void save_traffic_csv_file(const std::string& path, const TrafficMatrix& tm);

}  // namespace rn::traffic
