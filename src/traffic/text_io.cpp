#include "traffic/text_io.h"

#include <fstream>
#include <sstream>

namespace rn::traffic {

TrafficMatrix load_traffic_csv(std::istream& in, int num_nodes) {
  TrafficMatrix tm(num_nodes);
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!saw_header) {
      RN_CHECK(line.rfind("src,dst,rate_bps", 0) == 0,
               "traffic CSV must start with header src,dst,rate_bps");
      saw_header = true;
      continue;
    }
    std::istringstream ls(line);
    std::string field;
    RN_CHECK(std::getline(ls, field, ','), "malformed CSV row: " + line);
    const int src = std::stoi(field);
    RN_CHECK(std::getline(ls, field, ','), "malformed CSV row: " + line);
    const int dst = std::stoi(field);
    RN_CHECK(std::getline(ls, field, ','), "malformed CSV row: " + line);
    const double rate = std::stod(field);
    tm.set_rate_bps(src, dst, rate);
  }
  RN_CHECK(saw_header, "traffic CSV is empty");
  return tm;
}

TrafficMatrix load_traffic_csv_file(const std::string& path, int num_nodes) {
  std::ifstream in(path);
  RN_CHECK(in.good(), "cannot open traffic CSV: " + path);
  return load_traffic_csv(in, num_nodes);
}

void save_traffic_csv(std::ostream& out, const TrafficMatrix& tm) {
  out << "src,dst,rate_bps\n";
  out.precision(17);  // max_digits10: doubles round-trip exactly
  for (int idx = 0; idx < tm.num_pairs(); ++idx) {
    const double rate = tm.rate_by_index(idx);
    if (rate <= 0.0) continue;
    const auto [src, dst] = topo::pair_from_index(idx, tm.num_nodes());
    out << src << ',' << dst << ',' << rate << '\n';
  }
}

void save_traffic_csv_file(const std::string& path, const TrafficMatrix& tm) {
  std::ofstream out(path);
  RN_CHECK(out.good(), "cannot open traffic CSV for writing: " + path);
  save_traffic_csv(out, tm);
  RN_CHECK(out.good(), "write failure on traffic CSV: " + path);
}

}  // namespace rn::traffic
