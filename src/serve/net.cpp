#include "serve/net.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <utility>

#include "obs/event.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "util/check.h"

namespace rn::serve {

namespace {

struct NetMetrics {
  obs::Counter& connections =
      obs::Registry::global().counter("serve.net.connections_total");
  obs::Gauge& active =
      obs::Registry::global().gauge("serve.net.active_connections");
  obs::Counter& requests =
      obs::Registry::global().counter("serve.net.requests_total");
  obs::Counter& responses =
      obs::Registry::global().counter("serve.net.responses_total");
  obs::Counter& errors =
      obs::Registry::global().counter("serve.net.errors_total");
  obs::Counter& rejected =
      obs::Registry::global().counter("serve.net.rejected_total");
  obs::Counter& timeouts =
      obs::Registry::global().counter("serve.net.timeouts_total");
  obs::Counter& bytes_rx =
      obs::Registry::global().counter("serve.net.bytes_rx_total");
  obs::Counter& bytes_tx =
      obs::Registry::global().counter("serve.net.bytes_tx_total");
  obs::Histogram& request_s =
      obs::Registry::global().histogram("serve.net.request_s");
};

NetMetrics& metrics() {
  static NetMetrics m;
  return m;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

std::uint32_t load_le32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

enum class ReadResult { kOk, kEof, kTruncated, kTimeout };

// SO_RCVTIMEO expired on a server-side connection (idle or stalled
// mid-frame). Distinguished from generic malformed traffic so the handler
// can answer with ErrorCode::kTimeout instead of kMalformed.
class ReadTimeoutError : public wire::ProtocolError {
 public:
  explicit ReadTimeoutError(const std::string& what)
      : wire::ProtocolError(what) {}
};

// Reads exactly n bytes. kEof = the peer closed cleanly before the first
// byte; kTruncated = it closed mid-way (or the read errored); kTimeout =
// SO_RCVTIMEO expired before the read completed.
ReadResult read_exact(int fd, char* buf, std::size_t n,
                      std::uint64_t* bytes_read) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    if (bytes_read != nullptr) *bytes_read += got;
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return ReadResult::kTimeout;
    }
    return got == 0 ? ReadResult::kEof : ReadResult::kTruncated;
  }
  if (bytes_read != nullptr) *bytes_read += got;
  return ReadResult::kOk;
}

// MSG_NOSIGNAL: a peer that closed mid-response must surface as an error
// return, not a process-killing SIGPIPE.
bool write_all(int fd, const char* buf, std::size_t n,
               std::uint64_t* bytes_written) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r > 0) {
      sent += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    if (bytes_written != nullptr) *bytes_written += sent;
    return false;
  }
  if (bytes_written != nullptr) *bytes_written += sent;
  return true;
}

// Streams one frame off the socket with the same validation order as
// wire::parse_frame: header first (bounds the payload read), then payload,
// then CRC trailer. Returns false on clean EOF between frames; throws
// ProtocolError on malformed or truncated traffic.
bool read_frame(int fd, wire::Frame& out, std::uint64_t* bytes_read) {
  char header[wire::kHeaderLen];
  switch (read_exact(fd, header, sizeof(header), bytes_read)) {
    case ReadResult::kEof:
      return false;
    case ReadResult::kTruncated:
      throw wire::ProtocolError("connection closed mid-header");
    case ReadResult::kTimeout:
      throw ReadTimeoutError("read timed out waiting for a frame");
    case ReadResult::kOk:
      break;
  }
  const wire::FrameHeader fh = wire::parse_frame_header(header);
  std::string payload(fh.payload_len, '\0');
  if (fh.payload_len > 0) {
    switch (read_exact(fd, payload.data(), payload.size(), bytes_read)) {
      case ReadResult::kTimeout:
        throw ReadTimeoutError("read timed out mid-payload");
      case ReadResult::kOk:
        break;
      default:
        throw wire::ProtocolError("connection closed mid-payload");
    }
  }
  char trailer[wire::kTrailerLen];
  switch (read_exact(fd, trailer, sizeof(trailer), bytes_read)) {
    case ReadResult::kTimeout:
      throw ReadTimeoutError("read timed out mid-trailer");
    case ReadResult::kOk:
      break;
    default:
      throw wire::ProtocolError("connection closed mid-trailer");
  }
  wire::verify_frame_crc(fh.type, payload, load_le32(trailer));
  out.type = fh.type;
  out.payload = std::move(payload);
  return true;
}

void set_nodelay(int fd, const Address& addr) {
  if (addr.kind != Address::Kind::kTcp) return;
  const int one = 1;
  // Batched request/response round trips on loopback; Nagle only adds
  // latency here. Failure is harmless, so the return value is ignored.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void set_recv_timeout(int fd, double seconds) {
  if (!(seconds > 0.0)) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - std::floor(seconds)) * 1e6);
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

sockaddr_in resolve_ipv4(const std::string& host, std::uint16_t port) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) == 1) return sa;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &res);
  if (rc != 0 || res == nullptr) {
    throw std::runtime_error("cannot resolve host '" + host +
                             "': " + ::gai_strerror(rc));
  }
  sa.sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
  ::freeaddrinfo(res);
  return sa;
}

sockaddr_un unix_sockaddr(const std::string& path) {
  sockaddr_un sa{};
  sa.sun_family = AF_UNIX;
  RN_CHECK(path.size() < sizeof(sa.sun_path),
           "unix socket path too long: " + path);
  std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
  return sa;
}

int connect_to(const Address& addr) {
  int fd = -1;
  if (addr.kind == Address::Kind::kTcp) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket");
    sockaddr_in sa = resolve_ipv4(addr.host, addr.port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno("connect to " + format_address(addr));
    }
  } else {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket");
    sockaddr_un sa = unix_sockaddr(addr.path);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno("connect to " + format_address(addr));
    }
  }
  set_nodelay(fd, addr);
  return fd;
}

}  // namespace

Address parse_address(const std::string& spec) {
  Address addr;
  if (spec.rfind("unix:", 0) == 0) {
    addr.kind = Address::Kind::kUnix;
    addr.path = spec.substr(5);
    if (addr.path.empty()) {
      throw std::invalid_argument("unix address needs a path: " + spec);
    }
    return addr;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    addr.kind = Address::Kind::kTcp;
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      throw std::invalid_argument("tcp address must be tcp:host:port: " +
                                  spec);
    }
    addr.host = rest.substr(0, colon);
    const std::string port_str = rest.substr(colon + 1);
    std::size_t used = 0;
    unsigned long port = 0;
    try {
      port = std::stoul(port_str, &used);
    } catch (const std::exception&) {
      throw std::invalid_argument("bad port in address: " + spec);
    }
    if (used != port_str.size() || port > 65535) {
      throw std::invalid_argument("bad port in address: " + spec);
    }
    addr.port = static_cast<std::uint16_t>(port);
    return addr;
  }
  throw std::invalid_argument(
      "address must start with tcp: or unix: — got " + spec);
}

std::string format_address(const Address& addr) {
  if (addr.kind == Address::Kind::kUnix) return "unix:" + addr.path;
  return "tcp:" + addr.host + ":" + std::to_string(addr.port);
}

NetServer::NetServer(ModelRegistry& registry, NetServerConfig cfg,
                     AdaptiveBatchPolicy* policy)
    : registry_(registry), cfg_(std::move(cfg)), policy_(policy) {}

NetServer::~NetServer() { stop(); }

void NetServer::start() {
  addr_ = parse_address(cfg_.listen);
  if (addr_.kind == Address::Kind::kTcp) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("socket");
    const int one = 1;
    (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                       sizeof(one));
    sockaddr_in sa = resolve_ipv4(addr_.host, addr_.port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) !=
        0) {
      throw_errno("bind " + format_address(addr_));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0) {
      throw_errno("getsockname");
    }
    bound_port_ = ntohs(bound.sin_port);
    addr_.port = bound_port_;
  } else {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("socket");
    // A stale socket file from a previous run would make bind fail.
    (void)::unlink(addr_.path.c_str());
    sockaddr_un sa = unix_sockaddr(addr_.path);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) !=
        0) {
      throw_errno("bind " + format_address(addr_));
    }
  }
  if (::listen(listen_fd_, cfg_.backlog) != 0) {
    throw_errno("listen " + format_address(addr_));
  }

  if (obs::EventSink::global().enabled()) {
    obs::Event ev("serve.net.listen");
    ev.f("address", address()).f("models", registry_.size());
    obs::EventSink::global().emit(ev);
  }
  if (policy_ != nullptr) policy_->start();
  accept_thread_ = std::thread([this] { accept_loop(); });
}

std::string NetServer::address() const { return format_address(addr_); }

void NetServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by stop()
    }
    set_nodelay(fd, addr_);
    set_recv_timeout(fd, cfg_.read_timeout_s);
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    reap_finished_connections();
    auto conn = std::make_unique<Connection>();
    Connection* raw = conn.get();
    raw->fd = fd;
    connections_.push_back(std::move(conn));
    connections_total_.fetch_add(1, std::memory_order_relaxed);
    metrics().connections.add();
    metrics().active.set(static_cast<double>(
        active_connections_.fetch_add(1, std::memory_order_relaxed) + 1));
    raw->thread = std::thread([this, raw] { serve_connection(raw); });
  }
}

void NetServer::reap_finished_connections() {
  // Called under mu_. A handler marks its slot fd = -1 as its final locked
  // action, so a joinable thread with fd == -1 is (about to be) done.
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->fd == -1) {
      (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void NetServer::serve_connection(Connection* conn) {
  const int fd = conn->fd;
  std::uint64_t rx = 0;
  for (;;) {
    wire::Frame frame;
    try {
      rx = 0;
      bool got;
      {
        obs::TraceSpan rd("serve.net.read");
        got = read_frame(fd, frame, &rx);
        rd.arg("bytes", static_cast<std::int64_t>(rx));
      }
      bytes_rx_.fetch_add(rx, std::memory_order_relaxed);
      metrics().bytes_rx.add(rx);
      if (!got) break;  // clean EOF (or stop()'s SHUT_RD)
    } catch (const ReadTimeoutError& e) {
      bytes_rx_.fetch_add(rx, std::memory_order_relaxed);
      metrics().bytes_rx.add(rx);
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      metrics().timeouts.add();
      send_error(fd, wire::ErrorCode::kTimeout, e.what());
      break;
    } catch (const wire::ProtocolError& e) {
      bytes_rx_.fetch_add(rx, std::memory_order_relaxed);
      metrics().bytes_rx.add(rx);
      send_error(fd, wire::ErrorCode::kMalformed, e.what());
      break;
    }
    if (!handle_frame(fd, frame)) break;
  }
  ::shutdown(fd, SHUT_RDWR);
  metrics().active.set(static_cast<double>(
      active_connections_.fetch_sub(1, std::memory_order_relaxed) - 1));
  // Mark the slot before close: once closed, the kernel may hand the same
  // fd number to a newly accepted connection.
  {
    std::lock_guard<std::mutex> lock(mu_);
    conn->fd = -1;
  }
  ::close(fd);
}

bool NetServer::handle_frame(int fd, const wire::Frame& frame) {
  switch (frame.type) {
    case wire::FrameType::kPredictRequest: {
      requests_.fetch_add(1, std::memory_order_relaxed);
      metrics().requests.add();
      const auto started = std::chrono::steady_clock::now();
      try {
        wire::PredictRequest req =
            wire::decode_predict_request(frame.payload);
        bool stopping;
        {
          std::lock_guard<std::mutex> lock(mu_);
          stopping = shutdown_requested_ || stopping_;
        }
        if (stopping) {
          send_error(fd, wire::ErrorCode::kStopping,
                     "server is shutting down");
          return true;
        }
        const ModelRegistry::Handle entry = registry_.acquire(req.model);
        // Root of the server-side request timeline. Traced requests carry
        // the client's rid and hand this span's id to the batching worker,
        // which parents its queue.wait/batch.assemble/forward spans here.
        obs::TraceSpan root("serve.net.request");
        std::shared_ptr<RequestTrace> trace;
        if (req.has_trace) {
          root.arg("rid",
                   static_cast<std::int64_t>(req.trace.request_id));
          trace = std::make_shared<RequestTrace>();
          trace->request_id = req.trace.request_id;
          trace->parent_span = root.id();
        }
        core::RouteNet::Prediction pred =
            entry->server().submit(std::move(req.sample), trace).get();
        std::string payload;
        if (trace != nullptr) {
          const double server_s =
              std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - started)
                  .count();
          payload = wire::encode_predict_response(
              pred, trace->request_id, trace->queue_wait_s, server_s);
        } else {
          payload = wire::encode_predict_response(pred);
        }
        {
          obs::TraceSpan wr("serve.net.write");
          send_frame(fd, wire::FrameType::kPredictResponse, payload);
        }
        responses_.fetch_add(1, std::memory_order_relaxed);
        metrics().responses.add();
        metrics().request_s.record(
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          started)
                .count());
        return true;
      } catch (const wire::ProtocolError& e) {
        send_error(fd, wire::ErrorCode::kMalformed, e.what());
        return false;
      } catch (const UnknownModelError& e) {
        send_error(fd, wire::ErrorCode::kUnknownModel, e.what());
        return true;
      } catch (const RejectedError& e) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        metrics().rejected.add();
        send_error(fd, wire::ErrorCode::kRejected, e.what());
        return true;
      } catch (const std::exception& e) {
        send_error(fd, wire::ErrorCode::kInternal, e.what());
        return true;
      }
    }
    case wire::FrameType::kReloadRequest: {
      try {
        const std::string model =
            wire::decode_reload_request(frame.payload);
        const std::uint64_t version = registry_.reload(model);
        send_frame(fd, wire::FrameType::kReloadResponse,
                   wire::encode_reload_response(model, version));
        return true;
      } catch (const wire::ProtocolError& e) {
        send_error(fd, wire::ErrorCode::kMalformed, e.what());
        return false;
      } catch (const UnknownModelError& e) {
        send_error(fd, wire::ErrorCode::kUnknownModel, e.what());
        return true;
      } catch (const std::exception& e) {
        send_error(fd, wire::ErrorCode::kInternal, e.what());
        return true;
      }
    }
    case wire::FrameType::kStatsRequest: {
      if (!frame.payload.empty()) {
        send_error(fd, wire::ErrorCode::kMalformed,
                   "stats request carries no payload");
        return false;
      }
      try {
        send_frame(fd, wire::FrameType::kStatsResponse,
                   wire::encode_stats_response(stats_snapshot()));
      } catch (const std::exception& e) {
        send_error(fd, wire::ErrorCode::kInternal, e.what());
      }
      return true;
    }
    case wire::FrameType::kShutdownRequest: {
      if (!frame.payload.empty()) {
        send_error(fd, wire::ErrorCode::kMalformed,
                   "shutdown request carries no payload");
        return false;
      }
      if (!cfg_.allow_remote_shutdown) {
        send_error(fd, wire::ErrorCode::kRejected,
                   "remote shutdown is disabled");
        return true;
      }
      // Ack first so the client sees the reply before wait() returns and
      // the owner starts stop(). Never call stop() here — that would join
      // this very thread.
      send_frame(fd, wire::FrameType::kShutdownAck, {});
      request_shutdown();
      return true;
    }
    default:
      send_error(fd, wire::ErrorCode::kMalformed,
                 "unexpected frame type on server");
      return false;
  }
}

void NetServer::send_frame(int fd, wire::FrameType type,
                           std::string_view payload) {
  const std::string bytes = wire::encode_frame(type, payload);
  std::uint64_t tx = 0;
  (void)write_all(fd, bytes.data(), bytes.size(), &tx);
  bytes_tx_.fetch_add(tx, std::memory_order_relaxed);
  metrics().bytes_tx.add(tx);
}

void NetServer::send_error(int fd, wire::ErrorCode code,
                           std::string_view message) {
  errors_.fetch_add(1, std::memory_order_relaxed);
  metrics().errors.add();
  // Best effort: the peer may already be gone; write_all soaks the EPIPE.
  send_frame(fd, wire::FrameType::kError,
             wire::encode_error(code, message));
}

void NetServer::request_shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_requested_ = true;
  }
  cv_.notify_all();
}

void NetServer::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return shutdown_requested_ || stopping_; });
}

void NetServer::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    stopping_ = true;
  }
  cv_.notify_all();
  if (policy_ != nullptr) policy_->stop();
  if (listen_fd_ >= 0) {
    // Closing makes the blocking accept() return; shutdown first covers
    // platforms where close alone does not wake it.
    (void)::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns = std::move(connections_);
    // Shut down the read side only: blocked reads return EOF and the
    // handler loop exits, while a response still being written flushes.
    for (const auto& conn : conns) {
      if (conn->fd != -1) (void)::shutdown(conn->fd, SHUT_RD);
    }
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  if (addr_.kind == Address::Kind::kUnix && !addr_.path.empty()) {
    (void)::unlink(addr_.path.c_str());
  }
  if (obs::EventSink::global().enabled()) {
    const NetStats s = stats();
    obs::Event ev("serve.net.shutdown");
    ev.f("address", address())
        .f("connections", s.connections)
        .f("requests", s.requests)
        .f("responses", s.responses)
        .f("errors", s.errors)
        .f("rejected", s.rejected);
    obs::EventSink::global().emit(ev);
  }
}

NetStats NetServer::stats() const {
  NetStats s;
  s.connections = connections_total_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.responses = responses_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.timeouts = timeouts_.load(std::memory_order_relaxed);
  s.bytes_rx = bytes_rx_.load(std::memory_order_relaxed);
  s.bytes_tx = bytes_tx_.load(std::memory_order_relaxed);
  return s;
}

wire::StatsSnapshot NetServer::stats_snapshot() const {
  const obs::RegistrySnapshot reg = obs::Registry::global().snapshot();
  wire::StatsSnapshot snap;
  snap.server_time_s = obs::windowed_now_s();
  snap.trace_dropped = obs::Tracer::global().dropped();
  snap.trace_sampled_out = obs::Tracer::global().sampled_out();
  snap.counters.reserve(reg.counters.size());
  for (const auto& [name, value] : reg.counters) {
    snap.counters.push_back({name, value});
  }
  snap.gauges.reserve(reg.gauges.size());
  for (const auto& [name, value] : reg.gauges) {
    snap.gauges.push_back({name, value});
  }
  snap.histograms.reserve(reg.histograms.size());
  for (const auto& h : reg.histograms) {
    snap.histograms.push_back(
        {h.name, h.count, h.mean, h.p50, h.p95, h.p99, h.max});
  }
  snap.windows.reserve(reg.windows.size());
  for (const auto& w : reg.windows) {
    wire::StatsSnapshot::WindowEntry entry;
    entry.name = w.name;
    entry.window_s = w.window_s;
    entry.count = w.count;
    entry.p50 = w.p50;
    entry.p95 = w.p95;
    entry.p99 = w.p99;
    entry.exemplars.reserve(w.exemplars.size());
    for (const obs::Exemplar& e : w.exemplars) {
      entry.exemplars.push_back(
          {static_cast<std::uint16_t>(e.bucket), e.value, e.tag});
    }
    snap.windows.push_back(std::move(entry));
  }
  const std::vector<ModelRegistry::ModelInfo> models = registry_.list();
  snap.models.reserve(models.size());
  for (const auto& m : models) {
    snap.models.push_back(
        {m.name, m.version, static_cast<std::uint64_t>(m.parameters)});
  }
  return snap;
}

NetClient::NetClient(const std::string& address)
    : fd_(connect_to(parse_address(address))) {}

NetClient::~NetClient() {
  if (fd_ >= 0) ::close(fd_);
}

wire::Frame NetClient::roundtrip(wire::FrameType type,
                                 std::string_view payload) {
  const std::string bytes = wire::encode_frame(type, payload);
  if (!write_all(fd_, bytes.data(), bytes.size(), nullptr)) {
    throw std::runtime_error("RNP/1 client: server closed the connection");
  }
  wire::Frame reply;
  if (!read_frame(fd_, reply, nullptr)) {
    throw std::runtime_error(
        "RNP/1 client: server closed without replying");
  }
  if (reply.type == wire::FrameType::kError) {
    const wire::ErrorFrame err = wire::decode_error(reply.payload);
    throw RemoteError(err.code, err.message);
  }
  return reply;
}

std::uint64_t NetClient::next_request_id() {
  // Distinct across the processes of one test/bench run (pid in the high
  // half) and across this client's requests (counter in the low half);
  // never 0, which the wire layer reserves for "untraced".
  return (static_cast<std::uint64_t>(::getpid()) << 32) | ++rid_counter_;
}

core::RouteNet::Prediction NetClient::predict(const std::string& model,
                                              const dataset::Sample& sample) {
  return std::move(predict_traced(model, sample).prediction);
}

NetClient::PredictOutcome NetClient::predict_traced(
    const std::string& model, const dataset::Sample& sample) {
  PredictOutcome out;
  out.request_id = next_request_id();
  wire::TraceContext ctx;
  ctx.request_id = out.request_id;
  ctx.client_send_unix_s = obs::unix_now_s();
  obs::TraceSpan span("serve.client.request");
  span.arg("rid", static_cast<std::int64_t>(out.request_id));
  const auto sent = std::chrono::steady_clock::now();
  wire::Frame reply =
      roundtrip(wire::FrameType::kPredictRequest,
                wire::encode_predict_request(model, sample, ctx));
  out.rtt_s = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - sent)
                  .count();
  if (reply.type != wire::FrameType::kPredictResponse) {
    throw wire::ProtocolError("expected a predict response, got type " +
                              std::to_string(static_cast<int>(reply.type)));
  }
  wire::PredictResponse resp =
      wire::decode_predict_response_full(reply.payload);
  if (resp.has_trace && resp.request_id != out.request_id) {
    throw wire::ProtocolError(
        "response echoes request id " + std::to_string(resp.request_id) +
        ", expected " + std::to_string(out.request_id));
  }
  out.prediction = std::move(resp.prediction);
  out.server_traced = resp.has_trace;
  out.queue_wait_s = resp.queue_wait_s;
  out.server_s = resp.server_s;
  return out;
}

wire::StatsSnapshot NetClient::stats() {
  wire::Frame reply = roundtrip(wire::FrameType::kStatsRequest, {});
  if (reply.type != wire::FrameType::kStatsResponse) {
    throw wire::ProtocolError("expected a stats response, got type " +
                              std::to_string(static_cast<int>(reply.type)));
  }
  return wire::decode_stats_response(reply.payload);
}

wire::ReloadResponse NetClient::reload(const std::string& model) {
  wire::Frame reply = roundtrip(wire::FrameType::kReloadRequest,
                                wire::encode_reload_request(model));
  if (reply.type != wire::FrameType::kReloadResponse) {
    throw wire::ProtocolError("expected a reload response, got type " +
                              std::to_string(static_cast<int>(reply.type)));
  }
  return wire::decode_reload_response(reply.payload);
}

void NetClient::shutdown_server() {
  wire::Frame reply = roundtrip(wire::FrameType::kShutdownRequest, {});
  if (reply.type != wire::FrameType::kShutdownAck) {
    throw wire::ProtocolError("expected a shutdown ack, got type " +
                              std::to_string(static_cast<int>(reply.type)));
  }
}

}  // namespace rn::serve
