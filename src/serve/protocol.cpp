#include "serve/protocol.h"

#include <cmath>
#include <cstring>

#include "ag/serialize.h"  // crc32
#include "topology/topology.h"

namespace rn::serve::wire {

namespace {

// Bounds-checked cursor over one payload: every read states what it is
// reading, and a read past the remaining bytes throws before touching
// memory. This is the RNCKPT2 reader discipline on a string_view.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  template <typename T>
  T pod(const char* what) {
    require(sizeof(T), what);
    T v{};
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  // u16 length prefix + bytes, capped at max_len.
  std::string str(std::size_t max_len, const char* what) {
    const auto len = pod<std::uint16_t>(what);
    if (len > max_len) {
      throw ProtocolError(std::string(what) + " length " +
                          std::to_string(len) + " exceeds cap " +
                          std::to_string(max_len));
    }
    require(len, what);
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  void require(std::size_t n, const char* what) {
    if (n > data_.size() - pos_) {
      throw ProtocolError(std::string("truncated payload reading ") + what +
                          " (need " + std::to_string(n) + " bytes, have " +
                          std::to_string(data_.size() - pos_) + ")");
    }
  }

  void expect_done(const char* what) {
    if (pos_ != data_.size()) {
      throw ProtocolError(std::string(what) + " payload has " +
                          std::to_string(data_.size() - pos_) +
                          " trailing bytes");
    }
  }

  // Bytes not yet consumed — how version-tolerant decoders detect an
  // optional trailing block.
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

template <typename T>
void put_pod(std::string& buf, const T& v) {
  buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_str(std::string& buf, std::string_view s, std::size_t max_len,
             const char* what) {
  if (s.size() > max_len) {
    throw ProtocolError(std::string(what) + " length " +
                        std::to_string(s.size()) + " exceeds cap " +
                        std::to_string(max_len));
  }
  put_pod(buf, static_cast<std::uint16_t>(s.size()));
  buf.append(s);
}

std::uint32_t frame_crc(FrameType type, std::string_view payload) {
  // CRC covers the type byte too, so a flipped type cannot masquerade as a
  // different (structurally valid) message.
  std::string covered;
  covered.reserve(1 + payload.size());
  covered.push_back(static_cast<char>(type));
  covered.append(payload);
  return ag::crc32(covered.data(), covered.size());
}

bool known_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::kPredictRequest) &&
         t <= static_cast<std::uint8_t>(FrameType::kStatsResponse);
}

double finite_or_throw(double v, const char* what) {
  if (!std::isfinite(v)) {
    throw ProtocolError(std::string(what) + " is not finite");
  }
  return v;
}

}  // namespace

std::string encode_frame(FrameType type, std::string_view payload) {
  if (payload.size() > kMaxPayload) {
    throw ProtocolError("payload of " + std::to_string(payload.size()) +
                        " bytes exceeds the " + std::to_string(kMaxPayload) +
                        "-byte cap");
  }
  std::string out;
  out.reserve(kHeaderLen + payload.size() + kTrailerLen);
  out.append(kMagic, sizeof(kMagic));
  out.push_back(static_cast<char>(type));
  put_pod(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  put_pod(out, frame_crc(type, payload));
  return out;
}

FrameHeader parse_frame_header(const char* bytes) {
  if (std::memcmp(bytes, kMagic, sizeof(kMagic)) != 0) {
    throw ProtocolError("bad magic (expected \"RNP1\")");
  }
  const auto raw_type = static_cast<std::uint8_t>(bytes[4]);
  if (!known_type(raw_type)) {
    throw ProtocolError("unknown frame type " + std::to_string(raw_type));
  }
  FrameHeader h;
  h.type = static_cast<FrameType>(raw_type);
  std::memcpy(&h.payload_len, bytes + 5, sizeof(h.payload_len));
  if (h.payload_len > kMaxPayload) {
    throw ProtocolError("declared payload of " +
                        std::to_string(h.payload_len) + " bytes exceeds the " +
                        std::to_string(kMaxPayload) + "-byte cap");
  }
  return h;
}

void verify_frame_crc(FrameType type, std::string_view payload,
                      std::uint32_t trailer_crc) {
  if (frame_crc(type, payload) != trailer_crc) {
    throw ProtocolError("frame CRC mismatch");
  }
}

Frame parse_frame(std::string_view bytes) {
  if (bytes.size() < kHeaderLen + kTrailerLen) {
    throw ProtocolError("frame of " + std::to_string(bytes.size()) +
                        " bytes is shorter than header + trailer");
  }
  const FrameHeader h = parse_frame_header(bytes.data());
  if (bytes.size() != kHeaderLen + h.payload_len + kTrailerLen) {
    throw ProtocolError("frame length " + std::to_string(bytes.size()) +
                        " does not match declared payload of " +
                        std::to_string(h.payload_len) + " bytes");
  }
  Frame f;
  f.type = h.type;
  f.payload = std::string(bytes.substr(kHeaderLen, h.payload_len));
  std::uint32_t crc = 0;
  std::memcpy(&crc, bytes.data() + kHeaderLen + h.payload_len, sizeof(crc));
  verify_frame_crc(f.type, f.payload, crc);
  return f;
}

// --- Predict request -------------------------------------------------------
//
// payload := model:str16 topo_name:str16 n_nodes:i32 n_links:i32
//            links[n_links]{src:i32 dst:i32 capacity_bps:f64 prop_delay_s:f64}
//            paths[n_pairs]{len:u16 link_ids[len]:i32}
//            rates[n_pairs]:f64
//            [request_id:u64 client_send_unix_s:f64]       (trace context)
// with n_pairs = n_nodes*(n_nodes-1), in topo::pair_index order. The trace
// context is all-or-nothing: exactly 16 trailing bytes, or none (old
// clients) — any other trailing length is malformed.

std::string encode_predict_request(const std::string& model,
                                   const dataset::Sample& sample) {
  const topo::Topology& t = *sample.topology;
  std::string out;
  put_str(out, model, kMaxNameLen, "model name");
  put_str(out, t.name(), kMaxNameLen, "topology name");
  put_pod(out, static_cast<std::int32_t>(t.num_nodes()));
  put_pod(out, static_cast<std::int32_t>(t.num_links()));
  for (const topo::Link& l : t.links()) {
    put_pod(out, static_cast<std::int32_t>(l.src));
    put_pod(out, static_cast<std::int32_t>(l.dst));
    put_pod(out, l.capacity_bps);
    put_pod(out, l.prop_delay_s);
  }
  for (int idx = 0; idx < t.num_pairs(); ++idx) {
    const routing::Path& p = sample.routing.path_by_index(idx);
    if (p.size() > static_cast<std::size_t>(t.num_nodes())) {
      throw ProtocolError("path " + std::to_string(idx) + " has " +
                          std::to_string(p.size()) +
                          " hops on a topology of " +
                          std::to_string(t.num_nodes()) + " nodes");
    }
    put_pod(out, static_cast<std::uint16_t>(p.size()));
    for (topo::LinkId id : p) put_pod(out, static_cast<std::int32_t>(id));
  }
  for (int idx = 0; idx < t.num_pairs(); ++idx) {
    put_pod(out, sample.tm.rate_by_index(idx));
  }
  return out;
}

std::string encode_predict_request(const std::string& model,
                                   const dataset::Sample& sample,
                                   const TraceContext& trace) {
  if (trace.request_id == 0) {
    throw ProtocolError("trace context request id must be non-zero");
  }
  finite_or_throw(trace.client_send_unix_s, "client send timestamp");
  std::string out = encode_predict_request(model, sample);
  put_pod(out, trace.request_id);
  put_pod(out, trace.client_send_unix_s);
  return out;
}

PredictRequest decode_predict_request(std::string_view payload) {
  Cursor c(payload);
  std::string model = c.str(kMaxNameLen, "model name");
  if (model.empty()) throw ProtocolError("model name is empty");
  const std::string topo_name = c.str(kMaxNameLen, "topology name");
  const auto n_nodes = c.pod<std::int32_t>("node count");
  if (n_nodes < 2 || n_nodes > kMaxNodes) {
    throw ProtocolError("node count " + std::to_string(n_nodes) +
                        " outside [2, " + std::to_string(kMaxNodes) + "]");
  }
  const auto n_links = c.pod<std::int32_t>("link count");
  if (n_links < 1 || n_links > kMaxLinks) {
    throw ProtocolError("link count " + std::to_string(n_links) +
                        " outside [1, " + std::to_string(kMaxLinks) + "]");
  }
  // Each link is 24 bytes on the wire; reject a count the payload cannot
  // possibly cover before looping (no unbounded allocation either way).
  c.require(static_cast<std::size_t>(n_links) * 24, "link table");
  auto topology = std::make_shared<topo::Topology>(topo_name, n_nodes);
  for (std::int32_t i = 0; i < n_links; ++i) {
    const auto src = c.pod<std::int32_t>("link src");
    const auto dst = c.pod<std::int32_t>("link dst");
    const double cap = finite_or_throw(c.pod<double>("link capacity"),
                                       "link capacity");
    const double prop = finite_or_throw(c.pod<double>("link prop delay"),
                                        "link prop delay");
    if (src < 0 || src >= n_nodes || dst < 0 || dst >= n_nodes) {
      throw ProtocolError("link " + std::to_string(i) + " endpoints (" +
                          std::to_string(src) + ", " + std::to_string(dst) +
                          ") outside [0, " + std::to_string(n_nodes) + ")");
    }
    if (cap <= 0.0) {
      throw ProtocolError("link " + std::to_string(i) +
                          " capacity must be positive");
    }
    if (prop < 0.0) {
      throw ProtocolError("link " + std::to_string(i) +
                          " propagation delay must be >= 0");
    }
    topology->add_link(src, dst, cap, prop);
  }
  const int n_pairs = topology->num_pairs();
  routing::RoutingScheme scheme(n_nodes);
  for (int idx = 0; idx < n_pairs; ++idx) {
    const auto len = c.pod<std::uint16_t>("path length");
    // A loop-free path visits each node at most once.
    if (len > static_cast<std::uint16_t>(n_nodes)) {
      throw ProtocolError("path " + std::to_string(idx) + " length " +
                          std::to_string(len) + " exceeds node count " +
                          std::to_string(n_nodes));
    }
    c.require(static_cast<std::size_t>(len) * 4, "path link ids");
    routing::Path p(len);
    for (auto& id : p) {
      id = c.pod<std::int32_t>("path link id");
      if (id < 0 || id >= n_links) {
        throw ProtocolError("path " + std::to_string(idx) + " link id " +
                            std::to_string(id) + " outside [0, " +
                            std::to_string(n_links) + ")");
      }
    }
    const auto [src, dst] = topo::pair_from_index(idx, n_nodes);
    scheme.set_path(src, dst, std::move(p));
  }
  traffic::TrafficMatrix tm(n_nodes);
  for (int idx = 0; idx < n_pairs; ++idx) {
    const double rate = finite_or_throw(c.pod<double>("traffic rate"),
                                        "traffic rate");
    if (rate < 0.0) {
      throw ProtocolError("traffic rate " + std::to_string(idx) +
                          " must be >= 0");
    }
    const auto [src, dst] = topo::pair_from_index(idx, n_nodes);
    tm.set_rate_bps(src, dst, rate);
  }
  PredictRequest out{
      std::move(model),
      dataset::make_inference_sample(
          std::shared_ptr<const topo::Topology>(std::move(topology)),
          std::move(scheme), std::move(tm))};
  // Version tolerance: old clients end here; new clients append exactly a
  // TraceContext. Any other trailing length is malformed, not ignorable —
  // silently skipping unknown bytes would mask corruption the CRC already
  // survived (an honest re-encode must be able to reproduce the payload).
  if (c.remaining() > 0) {
    const auto request_id = c.pod<std::uint64_t>("trace request id");
    if (request_id == 0) {
      throw ProtocolError("trace context request id must be non-zero");
    }
    out.trace.request_id = request_id;
    out.trace.client_send_unix_s = finite_or_throw(
        c.pod<double>("client send timestamp"), "client send timestamp");
    out.has_trace = true;
  }
  c.expect_done("predict request");
  return out;
}

// --- Predict response ------------------------------------------------------
//
// payload := n_pairs:u32 pairs[n_pairs]{delay_s:f64 jitter_s:f64}
//            [request_id:u64 queue_wait_s:f64 server_s:f64]   (attribution)
// The attribution block mirrors the request's trace context: exactly 24
// trailing bytes, or none (responses to id-less requests).

std::string encode_predict_response(const core::RouteNet::Prediction& pred) {
  if (pred.delay_s.size() != pred.jitter_s.size()) {
    throw ProtocolError("prediction delay/jitter sizes disagree");
  }
  std::string out;
  put_pod(out, static_cast<std::uint32_t>(pred.delay_s.size()));
  for (std::size_t i = 0; i < pred.delay_s.size(); ++i) {
    put_pod(out, pred.delay_s[i]);
    put_pod(out, pred.jitter_s[i]);
  }
  return out;
}

std::string encode_predict_response(const core::RouteNet::Prediction& pred,
                                    std::uint64_t request_id,
                                    double queue_wait_s, double server_s) {
  if (request_id == 0) {
    throw ProtocolError("response request id must be non-zero");
  }
  finite_or_throw(queue_wait_s, "queue wait seconds");
  finite_or_throw(server_s, "server seconds");
  std::string out = encode_predict_response(pred);
  put_pod(out, request_id);
  put_pod(out, queue_wait_s);
  put_pod(out, server_s);
  return out;
}

PredictResponse decode_predict_response_full(std::string_view payload) {
  constexpr std::uint32_t kMaxPairs =
      static_cast<std::uint32_t>(kMaxNodes) * (kMaxNodes - 1);
  Cursor c(payload);
  const auto n_pairs = c.pod<std::uint32_t>("pair count");
  if (n_pairs > kMaxPairs) {
    throw ProtocolError("pair count " + std::to_string(n_pairs) +
                        " exceeds cap " + std::to_string(kMaxPairs));
  }
  c.require(static_cast<std::size_t>(n_pairs) * 16, "prediction rows");
  PredictResponse resp;
  core::RouteNet::Prediction& pred = resp.prediction;
  pred.delay_s.resize(n_pairs);
  pred.jitter_s.resize(n_pairs);
  for (std::uint32_t i = 0; i < n_pairs; ++i) {
    pred.delay_s[i] = c.pod<double>("delay");
    pred.jitter_s[i] = c.pod<double>("jitter");
  }
  if (c.remaining() > 0) {
    const auto request_id = c.pod<std::uint64_t>("response request id");
    if (request_id == 0) {
      throw ProtocolError("response request id must be non-zero");
    }
    resp.request_id = request_id;
    resp.queue_wait_s = finite_or_throw(c.pod<double>("queue wait seconds"),
                                        "queue wait seconds");
    resp.server_s =
        finite_or_throw(c.pod<double>("server seconds"), "server seconds");
    resp.has_trace = true;
  }
  c.expect_done("predict response");
  return resp;
}

core::RouteNet::Prediction decode_predict_response(std::string_view payload) {
  return std::move(decode_predict_response_full(payload).prediction);
}

// --- Error -----------------------------------------------------------------

std::string encode_error(ErrorCode code, std::string_view message) {
  std::string out;
  put_pod(out, static_cast<std::uint16_t>(code));
  put_str(out, message.substr(0, kMaxErrorMsgLen), kMaxErrorMsgLen,
          "error message");
  return out;
}

ErrorFrame decode_error(std::string_view payload) {
  Cursor c(payload);
  ErrorFrame e;
  const auto raw = c.pod<std::uint16_t>("error code");
  if (raw < static_cast<std::uint16_t>(ErrorCode::kMalformed) ||
      raw > static_cast<std::uint16_t>(ErrorCode::kTimeout)) {
    throw ProtocolError("unknown error code " + std::to_string(raw));
  }
  e.code = static_cast<ErrorCode>(raw);
  e.message = c.str(kMaxErrorMsgLen, "error message");
  c.expect_done("error");
  return e;
}

// --- Reload ----------------------------------------------------------------

std::string encode_reload_request(const std::string& model) {
  std::string out;
  put_str(out, model, kMaxNameLen, "model name");
  return out;
}

std::string decode_reload_request(std::string_view payload) {
  Cursor c(payload);
  const std::string model = c.str(kMaxNameLen, "model name");
  if (model.empty()) throw ProtocolError("model name is empty");
  c.expect_done("reload request");
  return model;
}

std::string encode_reload_response(const std::string& model,
                                   std::uint64_t version) {
  std::string out;
  put_str(out, model, kMaxNameLen, "model name");
  put_pod(out, version);
  return out;
}

ReloadResponse decode_reload_response(std::string_view payload) {
  Cursor c(payload);
  ReloadResponse r;
  r.model = c.str(kMaxNameLen, "model name");
  r.version = c.pod<std::uint64_t>("version");
  c.expect_done("reload response");
  return r;
}

// --- Stats -----------------------------------------------------------------
//
// request payload is empty.
// response payload :=
//   server_time_s:f64 trace_dropped:u64 trace_sampled_out:u64
//   n_counters:u32 counters[n]{name:str16 value:u64}
//   n_gauges:u32 gauges[n]{name:str16 value:f64}
//   n_histograms:u32 histograms[n]{name:str16 count:u64
//                                  mean:f64 p50:f64 p95:f64 p99:f64 max:f64}
//   n_windows:u32 windows[n]{name:str16 window_s:f64 count:u64
//                            p50:f64 p95:f64 p99:f64
//                            n_exemplars:u16 exemplars[n]{bucket:u16
//                                                         value:f64 rid:u64}}
//   n_models:u32 models[n]{name:str16 version:u64 parameters:u64}
// Metric values pass through unvalidated (they are display data, not
// allocation sizes); every count and name length is capped before use.

namespace {

template <typename Vec>
std::uint32_t stats_count(const Vec& v, const char* what) {
  if (v.size() > kMaxStatsEntries) {
    throw ProtocolError(std::string(what) + " count " +
                        std::to_string(v.size()) + " exceeds cap " +
                        std::to_string(kMaxStatsEntries));
  }
  return static_cast<std::uint32_t>(v.size());
}

std::uint32_t read_stats_count(Cursor& c, const char* what) {
  const auto n = c.pod<std::uint32_t>(what);
  if (n > kMaxStatsEntries) {
    throw ProtocolError(std::string(what) + " " + std::to_string(n) +
                        " exceeds cap " + std::to_string(kMaxStatsEntries));
  }
  return n;
}

}  // namespace

std::string encode_stats_response(const StatsSnapshot& snap) {
  std::string out;
  put_pod(out, snap.server_time_s);
  put_pod(out, snap.trace_dropped);
  put_pod(out, snap.trace_sampled_out);
  put_pod(out, stats_count(snap.counters, "counter count"));
  for (const StatsSnapshot::CounterEntry& e : snap.counters) {
    put_str(out, e.name, kMaxNameLen, "counter name");
    put_pod(out, e.value);
  }
  put_pod(out, stats_count(snap.gauges, "gauge count"));
  for (const StatsSnapshot::GaugeEntry& e : snap.gauges) {
    put_str(out, e.name, kMaxNameLen, "gauge name");
    put_pod(out, e.value);
  }
  put_pod(out, stats_count(snap.histograms, "histogram count"));
  for (const StatsSnapshot::HistogramEntry& e : snap.histograms) {
    put_str(out, e.name, kMaxNameLen, "histogram name");
    put_pod(out, e.count);
    put_pod(out, e.mean);
    put_pod(out, e.p50);
    put_pod(out, e.p95);
    put_pod(out, e.p99);
    put_pod(out, e.max);
  }
  put_pod(out, stats_count(snap.windows, "window count"));
  for (const StatsSnapshot::WindowEntry& e : snap.windows) {
    put_str(out, e.name, kMaxNameLen, "window name");
    put_pod(out, e.window_s);
    put_pod(out, e.count);
    put_pod(out, e.p50);
    put_pod(out, e.p95);
    put_pod(out, e.p99);
    if (e.exemplars.size() > kMaxExemplars) {
      throw ProtocolError("exemplar count " +
                          std::to_string(e.exemplars.size()) +
                          " exceeds cap " + std::to_string(kMaxExemplars));
    }
    put_pod(out, static_cast<std::uint16_t>(e.exemplars.size()));
    for (const StatsSnapshot::ExemplarEntry& ex : e.exemplars) {
      put_pod(out, ex.bucket);
      put_pod(out, ex.value);
      put_pod(out, ex.request_id);
    }
  }
  put_pod(out, stats_count(snap.models, "model count"));
  for (const StatsSnapshot::ModelEntry& e : snap.models) {
    put_str(out, e.name, kMaxNameLen, "model name");
    put_pod(out, e.version);
    put_pod(out, e.parameters);
  }
  return out;
}

StatsSnapshot decode_stats_response(std::string_view payload) {
  Cursor c(payload);
  StatsSnapshot snap;
  snap.server_time_s = c.pod<double>("server time");
  snap.trace_dropped = c.pod<std::uint64_t>("trace dropped");
  snap.trace_sampled_out = c.pod<std::uint64_t>("trace sampled out");
  const std::uint32_t n_counters = read_stats_count(c, "counter count");
  snap.counters.reserve(n_counters);
  for (std::uint32_t i = 0; i < n_counters; ++i) {
    StatsSnapshot::CounterEntry e;
    e.name = c.str(kMaxNameLen, "counter name");
    e.value = c.pod<std::uint64_t>("counter value");
    snap.counters.push_back(std::move(e));
  }
  const std::uint32_t n_gauges = read_stats_count(c, "gauge count");
  snap.gauges.reserve(n_gauges);
  for (std::uint32_t i = 0; i < n_gauges; ++i) {
    StatsSnapshot::GaugeEntry e;
    e.name = c.str(kMaxNameLen, "gauge name");
    e.value = c.pod<double>("gauge value");
    snap.gauges.push_back(std::move(e));
  }
  const std::uint32_t n_hists = read_stats_count(c, "histogram count");
  snap.histograms.reserve(n_hists);
  for (std::uint32_t i = 0; i < n_hists; ++i) {
    StatsSnapshot::HistogramEntry e;
    e.name = c.str(kMaxNameLen, "histogram name");
    e.count = c.pod<std::uint64_t>("histogram count");
    e.mean = c.pod<double>("histogram mean");
    e.p50 = c.pod<double>("histogram p50");
    e.p95 = c.pod<double>("histogram p95");
    e.p99 = c.pod<double>("histogram p99");
    e.max = c.pod<double>("histogram max");
    snap.histograms.push_back(std::move(e));
  }
  const std::uint32_t n_windows = read_stats_count(c, "window count");
  snap.windows.reserve(n_windows);
  for (std::uint32_t i = 0; i < n_windows; ++i) {
    StatsSnapshot::WindowEntry e;
    e.name = c.str(kMaxNameLen, "window name");
    e.window_s = c.pod<double>("window span");
    e.count = c.pod<std::uint64_t>("window count");
    e.p50 = c.pod<double>("window p50");
    e.p95 = c.pod<double>("window p95");
    e.p99 = c.pod<double>("window p99");
    const auto n_ex = c.pod<std::uint16_t>("exemplar count");
    if (n_ex > kMaxExemplars) {
      throw ProtocolError("exemplar count " + std::to_string(n_ex) +
                          " exceeds cap " + std::to_string(kMaxExemplars));
    }
    c.require(static_cast<std::size_t>(n_ex) * 18, "exemplar table");
    e.exemplars.reserve(n_ex);
    for (std::uint16_t j = 0; j < n_ex; ++j) {
      StatsSnapshot::ExemplarEntry ex;
      ex.bucket = c.pod<std::uint16_t>("exemplar bucket");
      ex.value = c.pod<double>("exemplar value");
      ex.request_id = c.pod<std::uint64_t>("exemplar request id");
      if (ex.request_id == 0) {
        throw ProtocolError("exemplar request id must be non-zero");
      }
      e.exemplars.push_back(ex);
    }
    snap.windows.push_back(std::move(e));
  }
  const std::uint32_t n_models = read_stats_count(c, "model count");
  snap.models.reserve(n_models);
  for (std::uint32_t i = 0; i < n_models; ++i) {
    StatsSnapshot::ModelEntry e;
    e.name = c.str(kMaxNameLen, "model name");
    e.version = c.pod<std::uint64_t>("model version");
    e.parameters = c.pod<std::uint64_t>("model parameters");
    snap.models.push_back(std::move(e));
  }
  c.expect_done("stats response");
  return snap;
}

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kMalformed: return "malformed";
    case ErrorCode::kUnknownModel: return "unknown-model";
    case ErrorCode::kRejected: return "rejected";
    case ErrorCode::kStopping: return "stopping";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kTimeout: return "timeout";
  }
  return "unknown";
}

}  // namespace rn::serve::wire
