#include "serve/server.h"

#include <algorithm>
#include <utility>

#include "ag/arena.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "util/check.h"

namespace rn::serve {

namespace {

// Metric references are resolved once per process; the serve hot path only
// touches lock-free counters/histograms.
struct ServeMetrics {
  obs::Histogram& queue_depth =
      obs::Registry::global().histogram("serve.queue_depth");
  obs::Histogram& batch_size =
      obs::Registry::global().histogram("serve.batch_size");
  obs::Histogram& latency_s =
      obs::Registry::global().histogram("serve.latency_s");
  // Sliding-window twins of the two load-sensitive histograms: the
  // all-time view flattens a latency ramp, the window view is what a
  // p99-adaptive batcher (and `obs.snapshot`) needs to see.
  obs::WindowedHistogram& queue_depth_window =
      obs::Registry::global().windowed("serve.queue_depth");
  obs::WindowedHistogram& latency_window =
      obs::Registry::global().windowed("serve.latency_s");
  obs::Counter& requests =
      obs::Registry::global().counter("serve.requests_total");
  obs::Counter& rejected =
      obs::Registry::global().counter("serve.rejected_total");
  obs::Counter& served = obs::Registry::global().counter("serve.served_total");
  obs::Counter& batches =
      obs::Registry::global().counter("serve.batches_total");
  obs::Gauge& workers = obs::Registry::global().gauge("serve.workers");
  // Tensor-arena health, published per batch: a warm server keeps
  // fresh_allocs flat (all buffers recycled) while reuses climbs —
  // fresh_allocs growing under steady load means shapes are churning
  // through the size classes.
  obs::Gauge& arena_fresh =
      obs::Registry::global().gauge("ag.arena.fresh_allocs");
  obs::Gauge& arena_reuses = obs::Registry::global().gauge("ag.arena.reuses");
  obs::Gauge& arena_bytes_held =
      obs::Registry::global().gauge("ag.arena.bytes_held");
};

ServeMetrics& metrics() {
  static ServeMetrics m;
  return m;
}

}  // namespace

InferenceServer::InferenceServer(const core::RouteNet& model, ServerConfig cfg)
    : model_(model), cfg_(cfg) {
  RN_CHECK(cfg_.max_batch >= 1, "max_batch must be positive");
  RN_CHECK(cfg_.batch_deadline_s >= 0.0, "batch deadline must be >= 0");
  RN_CHECK(cfg_.queue_capacity >= 1, "queue capacity must be positive");
  set_batch_deadline(cfg_.batch_deadline_s);
  pool_ = par::global_pool();
  num_workers_ = cfg_.workers > 0 ? cfg_.workers : pool_->size();
  num_workers_ = std::max(1, num_workers_);
  // A 1-thread pool runs submit() inline on the caller, which would execute
  // a serve loop right here and never return — those workers (and any beyond
  // the pool's width) get dedicated threads instead.
  const int pool_backed =
      pool_->size() > 1 ? std::min(num_workers_, pool_->size()) : 0;
  for (int i = 0; i < pool_backed; ++i) {
    pool_workers_.push_back(pool_->submit([this] { worker_loop(); }));
  }
  for (int i = pool_backed; i < num_workers_; ++i) {
    thread_workers_.emplace_back([this] { worker_loop(); });
  }
  metrics().workers.set(static_cast<double>(num_workers_));
}

InferenceServer::~InferenceServer() { stop(); }

std::future<core::RouteNet::Prediction> InferenceServer::submit(
    dataset::Sample sample, std::shared_ptr<RequestTrace> trace) {
  std::future<core::RouteNet::Prediction> fut;
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      metrics().rejected.add();
      throw RejectedError("inference server is stopping");
    }
    if (queue_.size() >= cfg_.queue_capacity) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      metrics().rejected.add();
      throw RejectedError("inference queue full (capacity " +
                          std::to_string(cfg_.queue_capacity) + ")");
    }
    Request req(std::move(sample), std::chrono::steady_clock::now(),
                next_id_++);
    req.trace = std::move(trace);
    if (req.trace != nullptr) req.enqueued_trace_s = obs::trace_now_s();
    fut = req.promise.get_future();
    queue_.push_back(std::move(req));
    depth = queue_.size();
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  metrics().requests.add();
  metrics().queue_depth.record(static_cast<double>(depth));
  metrics().queue_depth_window.record(static_cast<double>(depth));
  cv_.notify_one();
  return fut;
}

void InferenceServer::worker_loop() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock,
               [&] { return stopping_ || (!paused_ && !queue_.empty()); });
      if (queue_.empty()) {
        if (stopping_) return;  // stopping and fully drained
        continue;               // resumed from a pause with nothing queued
      }
      // Hold a partial batch open until it fills or the oldest request's
      // deadline passes. During drain (stopping_) ship immediately.
      const auto deadline = queue_.front().enqueued + current_deadline();
      cv_.wait_until(lock, deadline, [&] {
        return stopping_ ||
               (!paused_ &&
                queue_.size() >= static_cast<std::size_t>(cfg_.max_batch));
      });
      // Another worker may have taken everything while we waited; a pause
      // holds the queue untouched until resume (stop() overrides).
      if (queue_.empty() || (paused_ && !stopping_)) continue;
      const std::size_t take =
          std::min(queue_.size(), static_cast<std::size_t>(cfg_.max_batch));
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    run_batch(batch);
  }
}

void InferenceServer::run_batch(std::vector<Request>& batch) {
  obs::TraceSpan span("serve.batch");
  span.arg("size", static_cast<std::int64_t>(batch.size()));
  metrics().batch_size.record(static_cast<double>(batch.size()));
  // Stage boundaries, on both clocks: the steady clock feeds the timing
  // attribution echoed to the client; the trace timeline feeds the
  // backdated per-request spans (queue.wait started on the handler thread,
  // so only emit_complete can represent it).
  const auto taken = std::chrono::steady_clock::now();
  const double taken_trace_s = obs::trace_now_s();
  std::vector<const dataset::Sample*> samples;
  samples.reserve(batch.size());
  for (const Request& req : batch) samples.push_back(&req.sample);
  try {
    const auto forward_start = std::chrono::steady_clock::now();
    const double forward_start_trace_s = obs::trace_now_s();
    std::vector<core::RouteNet::Prediction> preds =
        model_.predict_merged(samples);
    const auto now = std::chrono::steady_clock::now();
    const double now_trace_s = obs::trace_now_s();
    const double assemble_s =
        std::chrono::duration<double>(forward_start - taken).count();
    const double forward_s =
        std::chrono::duration<double>(now - forward_start).count();
    obs::Tracer& tracer = obs::Tracer::global();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      obs::TraceSpan req_span("serve.request", span.id());
      req_span.arg("id", static_cast<std::int64_t>(batch[i].id));
      const double latency =
          std::chrono::duration<double>(now - batch[i].enqueued).count();
      metrics().latency_s.record(latency);
      const RequestTrace* trace = batch[i].trace.get();
      if (trace != nullptr && trace->request_id != 0) {
        metrics().latency_window.record_tagged(latency, trace->request_id);
      } else {
        metrics().latency_window.record(latency);
      }
      if (trace != nullptr) {
        RequestTrace& t = *batch[i].trace;
        t.queue_wait_s =
            std::chrono::duration<double>(taken - batch[i].enqueued).count();
        t.assemble_s = assemble_s;
        t.forward_s = forward_s;
        t.batch_size = static_cast<int>(batch.size());
        const auto rid = static_cast<std::int64_t>(t.request_id);
        // One correlated per-request timeline under the handler's span:
        // queue.wait is backdated to the enqueue stamp; assemble/forward
        // are the batch-level intervals replayed per request so each rid
        // owns a complete decomposition.
        tracer.emit_complete("serve.queue.wait", t.parent_span,
                             batch[i].enqueued_trace_s,
                             taken_trace_s - batch[i].enqueued_trace_s, "rid",
                             rid);
        tracer.emit_complete("serve.batch.assemble", t.parent_span,
                             taken_trace_s,
                             forward_start_trace_s - taken_trace_s, "rid",
                             rid);
        tracer.emit_complete("serve.forward", t.parent_span,
                             forward_start_trace_s,
                             now_trace_s - forward_start_trace_s, "rid", rid);
      }
      batch[i].promise.set_value(std::move(preds[i]));
    }
    served_.fetch_add(batch.size(), std::memory_order_relaxed);
    metrics().served.add(batch.size());
    batches_.fetch_add(1, std::memory_order_relaxed);
    metrics().batches.add();
    const ag::ArenaStats arena = ag::arena_stats();
    metrics().arena_fresh.set(static_cast<double>(arena.fresh_allocs));
    metrics().arena_reuses.set(static_cast<double>(arena.reuses));
    metrics().arena_bytes_held.set(static_cast<double>(arena.bytes_held));
  } catch (...) {
    // A failed forward fails every request in the batch; the server keeps
    // serving subsequent batches.
    for (Request& req : batch) {
      req.promise.set_exception(std::current_exception());
    }
  }
}

void InferenceServer::set_batch_deadline(double seconds) {
  RN_CHECK(seconds >= 0.0, "batch deadline must be >= 0");
  deadline_ns_.store(
      static_cast<std::int64_t>(seconds * 1e9),
      std::memory_order_relaxed);
}

double InferenceServer::batch_deadline_s() const {
  return static_cast<double>(deadline_ns_.load(std::memory_order_relaxed)) /
         1e9;
}

std::chrono::steady_clock::duration InferenceServer::current_deadline()
    const {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::nanoseconds(
          deadline_ns_.load(std::memory_order_relaxed)));
}

void InferenceServer::set_paused_for_test(bool paused) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = paused;
  }
  cv_.notify_all();
}

void InferenceServer::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    if (joined_) return;
    joined_ = true;
  }
  cv_.notify_all();
  for (std::future<void>& f : pool_workers_) f.get();
  for (std::thread& t : thread_workers_) t.join();
  pool_workers_.clear();
  thread_workers_.clear();
}

ServerStats InferenceServer::stats() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  return s;
}

std::size_t InferenceServer::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace rn::serve
