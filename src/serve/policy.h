// p99-adaptive batching policy.
//
// BENCH_serving.json showed the fixed `batch_deadline_s` knob — not the
// batcher — is the serving bottleneck: batch-max 32 is no better than 8
// because every partial batch waits out the same fixed deadline. This
// controller closes the loop using the live sliding-window p99 of
// serve.latency_s (PR 6's WindowedHistogram) against a target SLO, AIMD
// style:
//
//   p99 >  SLO  → multiplicative decrease: deadline *= decrease_factor
//                 (ship batches sooner, shed queueing latency fast)
//   p99 <= SLO  → additive increase: deadline += increase_step_s
//                 (probe for more coalescing, recover throughput slowly)
//
// The deadline is clamped to [min_deadline_s, max_deadline_s] and held
// when the window has seen fewer than min_samples requests (no signal, no
// actuation). Both inputs are injectable seams: the p99 source is a
// std::function (production wires the windowed histogram; tests feed a
// constructed trace) and tick() is the clock (production runs a background
// thread off interval_s; tests call tick() directly) — so a fixed trace
// always produces the identical deadline sequence, which policy_test locks
// in along with convergence-below-SLO and the clamps.
//
// Telemetry: gauge serve.policy.deadline_s; counters
// serve.policy.ticks_total / increases_total / decreases_total /
// holds_total; one serve.policy.adjust event per deadline change.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

namespace rn::serve {

struct PolicyConfig {
  double slo_p99_s = 0.020;         // target: windowed p99 at or below this
  double initial_deadline_s = 0.005;
  double min_deadline_s = 0.0002;
  double max_deadline_s = 0.100;
  double increase_step_s = 0.0005;  // additive increase per healthy tick
  double decrease_factor = 0.5;     // multiplicative decrease per breach
  double interval_s = 0.1;          // background tick period
  std::uint64_t min_samples = 16;   // hold below this window population
};

class AdaptiveBatchPolicy {
 public:
  // What one control step observes: the sliding-window request count and
  // p99 latency.
  struct WindowSample {
    std::uint64_t count = 0;
    double p99_s = 0.0;
  };
  using SampleFn = std::function<WindowSample()>;
  // Actuator: receives the new deadline after every adjusting tick
  // (InferenceServer::set_batch_deadline or
  // ModelRegistry::set_batch_deadline).
  using ApplyFn = std::function<void(double)>;

  AdaptiveBatchPolicy(PolicyConfig cfg, SampleFn sample, ApplyFn apply);
  ~AdaptiveBatchPolicy();

  AdaptiveBatchPolicy(const AdaptiveBatchPolicy&) = delete;
  AdaptiveBatchPolicy& operator=(const AdaptiveBatchPolicy&) = delete;

  // One deterministic control step: observe, decide, actuate. Returns the
  // deadline now in force. Thread-safe (the background loop calls exactly
  // this).
  double tick();

  // Background mode: a thread calling tick() every interval_s seconds.
  void start();
  // Joins the background thread. Idempotent; safe without start().
  void stop();
  bool running() const { return running_.load(std::memory_order_relaxed); }

  double deadline_s() const {
    return deadline_s_.load(std::memory_order_relaxed);
  }
  const PolicyConfig& config() const { return cfg_; }

  struct Stats {
    std::uint64_t ticks = 0;
    std::uint64_t increases = 0;
    std::uint64_t decreases = 0;
    std::uint64_t holds = 0;
  };
  Stats stats() const;

 private:
  void loop();

  PolicyConfig cfg_;
  SampleFn sample_;
  ApplyFn apply_;
  std::atomic<double> deadline_s_;

  std::mutex tick_mu_;  // serializes tick() decisions
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<std::uint64_t> increases_{0};
  std::atomic<std::uint64_t> decreases_{0};
  std::atomic<std::uint64_t> holds_{0};

  std::mutex mu_;  // background thread lifecycle
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::thread thread_;
  std::atomic<bool> running_{false};
};

}  // namespace rn::serve
