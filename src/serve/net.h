// Network-facing serving: blocking-socket RNP/1 transport.
//
// NetServer listens on TCP or a Unix domain socket ("tcp:host:port" /
// "unix:/path"; TCP port 0 binds an ephemeral port readable via port())
// and speaks RNP/1 (serve/protocol.h). One thread accepts; each accepted
// connection gets a handler thread that loops read-frame → dispatch →
// write-frame. Predict requests route through the ModelRegistry by model
// name into that model's micro-batching InferenceServer — concurrent
// connections coalesce into shared forward passes exactly like in-process
// callers. Reload requests hot-swap a model from its source path;
// shutdown requests ack, then make wait() return so the owner can stop().
//
// Failure discipline mirrors the wire spec: a malformed frame gets one
// kMalformed error frame (best effort) and the connection is closed; an
// unknown model, a full queue, or a forward failure gets a typed error
// frame and the connection stays usable. The server never aborts on
// hostile bytes (protocol_fuzz_test proves the parser; serve_net_smoke
// proves the loop).
//
// stop() drains: the listener closes, every open connection's read side is
// shut down (in-flight responses still flush), handler threads join, each
// model's InferenceServer serves what it already queued. An optional
// AdaptiveBatchPolicy is started/stopped with the server.
//
// NetClient is the matching blocking client: one connection, synchronous
// predict()/reload()/shutdown_server()/stats(); server-side error frames
// surface as RemoteError carrying the wire ErrorCode. predict() always
// attaches a client-generated request id + send timestamp (the server
// echoes the id with queue-wait/server-time attribution); predict_traced()
// exposes that attribution, and a `serve.client.request` span (arg: rid)
// ties the client side of the timeline to the server's spans.
//
// Per-connection read timeout: a stalled client holding a half-sent frame
// (or an idle connection) must not pin a handler thread forever —
// SO_RCVTIMEO on each accepted socket turns the stall into one clean
// kTimeout error frame followed by close (read_timeout_s, 0 disables).
//
// Telemetry: counters serve.net.connections_total / requests_total /
// responses_total / errors_total / rejected_total / timeouts_total /
// bytes_rx_total / bytes_tx_total; gauge serve.net.active_connections;
// histogram serve.net.request_s; events serve.net.listen /
// serve.net.shutdown; spans serve.net.request (arg: rid) with
// serve.net.read / serve.net.write plus the InferenceServer's per-request
// decomposition nested by parent id.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/routenet.h"
#include "dataset/dataset.h"
#include "serve/policy.h"
#include "serve/protocol.h"
#include "serve/registry.h"

namespace rn::serve {

// A parsed listen/connect spec: "tcp:HOST:PORT" or "unix:PATH".
struct Address {
  enum class Kind { kTcp, kUnix };
  Kind kind = Kind::kTcp;
  std::string host;         // tcp only; numeric IPv4 or a resolvable name
  std::uint16_t port = 0;   // tcp only; 0 = ephemeral (server)
  std::string path;         // unix only
};

// Throws std::invalid_argument on anything else.
Address parse_address(const std::string& spec);
std::string format_address(const Address& addr);

struct NetServerConfig {
  std::string listen = "tcp:127.0.0.1:0";
  int backlog = 64;
  // Whether a kShutdownRequest frame may stop the server (the smoke test
  // and load tools use it; set false to ignore remote shutdown).
  bool allow_remote_shutdown = true;
  // Per-connection receive timeout (SO_RCVTIMEO). A connection whose read
  // blocks this long — idle or stalled mid-frame — gets one kTimeout error
  // frame and is closed. 0 disables.
  double read_timeout_s = 30.0;
};

struct NetStats {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  std::uint64_t errors = 0;
  std::uint64_t rejected = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t bytes_rx = 0;
  std::uint64_t bytes_tx = 0;
};

class NetServer {
 public:
  // The registry (and policy, if any) must outlive the server. The policy,
  // when present, is started by start() and stopped by stop().
  NetServer(ModelRegistry& registry, NetServerConfig cfg,
            AdaptiveBatchPolicy* policy = nullptr);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // Binds, listens, spawns the accept thread. Throws on bind failure.
  void start();

  // Blocks until a remote shutdown request arrives or stop() is called.
  void wait();

  // Graceful drain: close the listener, shut down reads on open
  // connections (responses in flight still flush), join every thread.
  // Idempotent.
  void stop();

  // Canonical bound address, e.g. "tcp:127.0.0.1:43117" (the actual
  // ephemeral port) — valid after start().
  std::string address() const;
  std::uint16_t port() const { return bound_port_; }

  NetStats stats() const;

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
  };

  void accept_loop();
  void serve_connection(Connection* conn);
  // Dispatches one decoded frame; returns false when the connection must
  // close (malformed traffic).
  bool handle_frame(int fd, const wire::Frame& frame);
  void send_frame(int fd, wire::FrameType type, std::string_view payload);
  void send_error(int fd, wire::ErrorCode code, std::string_view message);
  // Builds the kStatsResponse payload source: the live obs::Registry
  // snapshot + tracer loss counters + the model registry's version table.
  wire::StatsSnapshot stats_snapshot() const;
  void request_shutdown();
  void reap_finished_connections();

  ModelRegistry& registry_;
  NetServerConfig cfg_;
  AdaptiveBatchPolicy* policy_ = nullptr;

  Address addr_;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::thread accept_thread_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_requested_ = false;
  bool stopping_ = false;
  bool stopped_ = false;
  std::vector<std::unique_ptr<Connection>> connections_;

  std::atomic<std::int64_t> active_connections_{0};
  std::atomic<std::uint64_t> connections_total_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> responses_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> bytes_rx_{0};
  std::atomic<std::uint64_t> bytes_tx_{0};
};

// Raised by NetClient when the server answers with an RNP/1 error frame.
class RemoteError : public std::runtime_error {
 public:
  RemoteError(wire::ErrorCode code, const std::string& message)
      : std::runtime_error(std::string(wire::error_code_name(code)) + ": " +
                           message),
        code_(code) {}
  wire::ErrorCode code() const { return code_; }

 private:
  wire::ErrorCode code_;
};

// Blocking single-connection RNP/1 client. Not thread-safe; use one per
// thread (the load generator does).
class NetClient {
 public:
  // One traced round trip, as the client saw it plus what the server
  // attributed. rtt_s is wall time around the socket round trip;
  // queue_wait_s/server_s come from the response's trailing attribution
  // block (server_traced=false against a server that predates it).
  struct PredictOutcome {
    core::RouteNet::Prediction prediction;
    std::uint64_t request_id = 0;
    double rtt_s = 0.0;
    bool server_traced = false;
    double queue_wait_s = 0.0;  // server: enqueue → batch take
    double server_s = 0.0;      // server: decode → response encode
  };

  // Connects immediately; throws std::runtime_error on refusal.
  explicit NetClient(const std::string& address);
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  core::RouteNet::Prediction predict(const std::string& model,
                                     const dataset::Sample& sample);
  // Like predict(), returning the request id and timing attribution. Both
  // entry points send the same extended frame; a `serve.client.request`
  // span (arg: rid) covers the round trip so client and server trace files
  // merge on one id.
  PredictOutcome predict_traced(const std::string& model,
                                const dataset::Sample& sample);
  wire::ReloadResponse reload(const std::string& model);
  // Scrapes the server's live telemetry snapshot (kStatsRequest).
  wire::StatsSnapshot stats();
  // Sends kShutdownRequest and waits for the ack.
  void shutdown_server();

 private:
  wire::Frame roundtrip(wire::FrameType type, std::string_view payload);
  std::uint64_t next_request_id();

  int fd_ = -1;
  std::uint64_t rid_counter_ = 0;
};

}  // namespace rn::serve
