// Multi-model serving registry with hot reload.
//
// A ModelRegistry routes requests by model name across several loaded
// RouteNets, each fronted by its own micro-batching InferenceServer. The
// name → model map lives behind an atomic shared_ptr snapshot, so lookups
// are one atomic load and hot reload follows the temp+rename checkpoint
// discipline translated to memory: load the new model off to the side,
// validate it (RouteNet::load CRC-checks the file and the parameter
// shapes; install() re-counts parameters), then swap the snapshot pointer
// in one atomic store. Readers that grabbed the old snapshot — or hold an
// Entry handle — finish their in-flight requests on the old model; the old
// entry's server drains and its workers join when the last reference
// drops. registry_soak_test hammers exactly this: clients querying at full
// tilt through 100 swaps, every response bitwise equal to one of the two
// snapshots' single-request predict(), clean under -DRN_SANITIZE=thread.
//
// Telemetry: gauge serve.registry.models, counters
// serve.registry.loads_total / serve.registry.reloads_total /
// serve.registry.misses_total, and one serve.registry.swap event per
// successful load/install/reload.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/routenet.h"
#include "serve/server.h"

namespace rn::serve {

// Thrown by acquire() for a name absent from the current snapshot.
class UnknownModelError : public std::runtime_error {
 public:
  explicit UnknownModelError(const std::string& name)
      : std::runtime_error("no model named '" + name + "' is loaded") {}
};

class ModelRegistry {
 public:
  // One immutable loaded model + its batcher. Handles pin the entry: a
  // reload swaps the snapshot, but every handle acquired before the swap
  // keeps serving (and finally drains) the old model.
  class Entry {
   public:
    Entry(std::string name, std::string source,
          std::unique_ptr<core::RouteNet> model, std::uint64_t version,
          const ServerConfig& cfg);

    const std::string& name() const { return name_; }
    // File path the model came from; empty for install()ed in-memory
    // models (those cannot be reload()ed).
    const std::string& source() const { return source_; }
    std::uint64_t version() const { return version_; }
    const core::RouteNet& model() const { return *model_; }
    InferenceServer& server() { return *server_; }

   private:
    std::string name_;
    std::string source_;
    std::uint64_t version_;
    // Declared before server_: the server holds a reference to the model
    // and must be destroyed (drained) first.
    std::unique_ptr<core::RouteNet> model_;
    std::unique_ptr<InferenceServer> server_;
  };

  using Handle = std::shared_ptr<Entry>;

  // `server_cfg` is applied to every model's InferenceServer (the batch
  // deadline can be retuned later via set_batch_deadline).
  explicit ModelRegistry(ServerConfig server_cfg = {});
  ~ModelRegistry();

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  // Loads a model file, validates it, and atomically swaps it into the
  // snapshot under `name` (replacing any previous version). Returns the
  // new version (1 for a first load, previous + 1 after).
  std::uint64_t load(const std::string& name, const std::string& path);

  // Installs an in-memory model (tests / benches) the same way.
  std::uint64_t install(const std::string& name,
                        std::unique_ptr<core::RouteNet> model);

  // Re-loads `name` from the path of its last load(). Throws for unknown
  // names and for install()ed models with no source path. On a load
  // failure the old snapshot stays in place (swap happens last).
  std::uint64_t reload(const std::string& name);

  // Removes `name` from the snapshot; in-flight handles keep serving.
  void remove(const std::string& name);

  // Snapshot lookup: one atomic load + one shared_ptr copy. Throws
  // UnknownModelError for absent names.
  Handle acquire(const std::string& name) const;

  struct ModelInfo {
    std::string name;
    std::string source;
    std::uint64_t version = 0;
    std::size_t parameters = 0;
  };
  std::vector<ModelInfo> list() const;
  std::size_t size() const;

  // Retunes every current entry's batch deadline; entries created by later
  // loads inherit the latest value. The adaptive policy's actuator in
  // multi-model serving.
  void set_batch_deadline(double seconds);
  double batch_deadline_s() const;

 private:
  using Snapshot = std::map<std::string, Handle>;

  std::uint64_t swap_in(const std::string& name, const std::string& source,
                        std::unique_ptr<core::RouteNet> model);

  ServerConfig server_cfg_;
  // Writers serialize on mu_ (copy map → mutate → atomic store); readers
  // never take it.
  mutable std::mutex mu_;
  std::atomic<std::shared_ptr<const Snapshot>> snapshot_;
  std::atomic<double> deadline_s_;
};

}  // namespace rn::serve
