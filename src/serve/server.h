// In-process inference serving: an InferenceServer owns a loaded RouteNet
// and turns independent predict() calls into micro-batched forward passes.
//
// Request flow: submit() enqueues a Sample into a bounded queue (rejecting
// with RejectedError when full — backpressure is explicit and counted, never
// silent latency) and returns a future. Worker loops pop requests and
// coalesce them into one GraphBatch::from_samples forward pass under two
// knobs: a batch closes as soon as `max_batch` requests are pending, or when
// the oldest request has waited `batch_deadline_s`, whichever comes first.
// Merged graphs are disjoint, so batched results are bitwise identical to
// per-request predict() (serve_test locks this in).
//
// Worker threads come from the global `par` pool when it has dedicated
// workers (capped at pool width; a pool worker running forward() executes
// its matmul parallel_for chunks inline, so occupying the pool is safe).
// A 1-thread pool runs submit() inline on the caller — a serve loop would
// block it forever — so any workers beyond the pool's capacity run on
// dedicated std::threads instead.
//
// stop() drains: accepting stops immediately (further submits reject), every
// already-queued request is still served, then workers are joined. The
// destructor calls stop().
//
// Telemetry (docs/observability.md): histograms serve.queue_depth /
// serve.batch_size / serve.latency_s; counters serve.requests_total /
// serve.rejected_total / serve.served_total / serve.batches_total; gauge
// serve.workers; trace spans serve.batch (arg: size) with one serve.request
// (arg: id) child per coalesced request.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/routenet.h"
#include "dataset/dataset.h"
#include "par/thread_pool.h"

namespace rn::serve {

struct ServerConfig {
  // Coalesce at most this many requests into one forward pass.
  int max_batch = 8;
  // How long a worker holds a partial batch open waiting for it to fill.
  // This is the initial value; set_batch_deadline() retunes it live (the
  // p99-adaptive policy's actuator).
  double batch_deadline_s = 0.005;
  // Pending requests beyond which submit() rejects.
  std::size_t queue_capacity = 256;
  // Worker loops executing batches; 0 = the global pool's width.
  int workers = 0;
};

// Thrown by submit() on backpressure (queue full) or after stop().
class RejectedError : public std::runtime_error {
 public:
  explicit RejectedError(const std::string& what)
      : std::runtime_error(what) {}
};

// Per-request trace context threaded from the network frontend through the
// batching worker. The caller fills request_id/parent_span before submit();
// the worker writes the timing attribution before resolving the request's
// future (the promise→future handoff orders those plain writes before the
// caller's reads — no atomics needed).
struct RequestTrace {
  std::uint64_t request_id = 0;   // client wire id (never 0 when traced)
  std::uint64_t parent_span = 0;  // handler-side span the worker nests under

  // Filled by the worker:
  double queue_wait_s = 0.0;  // enqueue → batch take
  double assemble_s = 0.0;    // batch take → forward start (dequeue + gather)
  double forward_s = 0.0;     // merged forward pass
  int batch_size = 0;         // size of the batch this request rode in
};

// Cumulative counts since construction; readable at any time.
struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t served = 0;
  std::uint64_t rejected = 0;
  std::uint64_t batches = 0;
};

class InferenceServer {
 public:
  // The model must outlive the server. Workers start immediately.
  InferenceServer(const core::RouteNet& model, ServerConfig cfg);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  // Enqueues one scenario for inference. The future resolves when a worker
  // executes the batch containing it (or carries the forward's exception).
  // Throws RejectedError when the queue is full or the server is stopping.
  // A non-null `trace` makes the worker emit per-request
  // serve.queue.wait / serve.batch.assemble / serve.forward spans (arg:
  // rid, parented under trace->parent_span), tag the latency-window
  // exemplar with the request id, and fill the trace's timing fields
  // before the future resolves.
  std::future<core::RouteNet::Prediction> submit(
      dataset::Sample sample, std::shared_ptr<RequestTrace> trace = nullptr);

  // Stops accepting, serves everything already queued, joins the workers.
  // Idempotent.
  void stop();

  // Retunes the batch deadline live (thread-safe; workers pick the new
  // value up at their next batch). This is the adaptive batching policy's
  // actuator. Throws on negative values.
  void set_batch_deadline(double seconds);
  double batch_deadline_s() const;

  // Test seam: while paused, workers take nothing off the queue, so a
  // queue-overflow test can fill it to capacity deterministically instead
  // of racing worker drain behind a long deadline. stop() overrides a
  // pause (drain still happens). Resuming wakes every worker.
  void set_paused_for_test(bool paused);

  ServerStats stats() const;
  std::size_t queue_depth() const;
  int num_workers() const { return num_workers_; }
  const ServerConfig& config() const { return cfg_; }

 private:
  struct Request {
    Request(dataset::Sample sample_,
            std::chrono::steady_clock::time_point enqueued_, std::uint64_t id_)
        : sample(std::move(sample_)), enqueued(enqueued_), id(id_) {}

    dataset::Sample sample;
    std::promise<core::RouteNet::Prediction> promise;
    std::chrono::steady_clock::time_point enqueued;
    std::uint64_t id = 0;
    std::shared_ptr<RequestTrace> trace;  // null for untraced requests
    double enqueued_trace_s = 0.0;  // trace-timeline enqueue stamp (0 = off)
  };

  void worker_loop();
  void run_batch(std::vector<Request>& batch);

  std::chrono::steady_clock::duration current_deadline() const;

  const core::RouteNet& model_;
  ServerConfig cfg_;
  // Nanoseconds; atomic so the adaptive policy can retune it while workers
  // and submitters run.
  std::atomic<std::int64_t> deadline_ns_{0};
  int num_workers_ = 1;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool stopping_ = false;
  bool paused_ = false;
  bool joined_ = false;
  std::uint64_t next_id_ = 0;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> batches_{0};

  // Keeps the pool backing pool_workers_ alive for the server's lifetime.
  std::shared_ptr<par::ThreadPool> pool_;
  std::vector<std::future<void>> pool_workers_;
  std::vector<std::thread> thread_workers_;
};

}  // namespace rn::serve
