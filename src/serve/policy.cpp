#include "serve/policy.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/event.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace rn::serve {

namespace {

struct PolicyMetrics {
  obs::Gauge& deadline_s =
      obs::Registry::global().gauge("serve.policy.deadline_s");
  obs::Counter& ticks =
      obs::Registry::global().counter("serve.policy.ticks_total");
  obs::Counter& increases =
      obs::Registry::global().counter("serve.policy.increases_total");
  obs::Counter& decreases =
      obs::Registry::global().counter("serve.policy.decreases_total");
  obs::Counter& holds =
      obs::Registry::global().counter("serve.policy.holds_total");
};

PolicyMetrics& metrics() {
  static PolicyMetrics m;
  return m;
}

}  // namespace

AdaptiveBatchPolicy::AdaptiveBatchPolicy(PolicyConfig cfg, SampleFn sample,
                                         ApplyFn apply)
    : cfg_(cfg), sample_(std::move(sample)), apply_(std::move(apply)) {
  RN_CHECK(sample_ != nullptr, "policy needs a sample function");
  RN_CHECK(apply_ != nullptr, "policy needs an apply function");
  RN_CHECK(cfg_.slo_p99_s > 0.0, "SLO must be positive");
  RN_CHECK(cfg_.min_deadline_s >= 0.0, "min deadline must be >= 0");
  RN_CHECK(cfg_.max_deadline_s >= cfg_.min_deadline_s,
           "max deadline must be >= min deadline");
  RN_CHECK(cfg_.initial_deadline_s >= cfg_.min_deadline_s &&
               cfg_.initial_deadline_s <= cfg_.max_deadline_s,
           "initial deadline must lie within [min, max]");
  RN_CHECK(cfg_.increase_step_s > 0.0, "increase step must be positive");
  RN_CHECK(cfg_.decrease_factor > 0.0 && cfg_.decrease_factor < 1.0,
           "decrease factor must be in (0, 1)");
  RN_CHECK(cfg_.interval_s > 0.0, "tick interval must be positive");
  deadline_s_.store(cfg_.initial_deadline_s, std::memory_order_relaxed);
  metrics().deadline_s.set(cfg_.initial_deadline_s);
}

AdaptiveBatchPolicy::~AdaptiveBatchPolicy() { stop(); }

double AdaptiveBatchPolicy::tick() {
  std::lock_guard<std::mutex> lock(tick_mu_);
  const WindowSample obs_sample = sample_();
  const double before = deadline_s_.load(std::memory_order_relaxed);
  ticks_.fetch_add(1, std::memory_order_relaxed);
  metrics().ticks.add();

  // No signal, no actuation: an idle (or just-started) window would read
  // p99 = 0 and ratchet the deadline to max.
  if (obs_sample.count < cfg_.min_samples) {
    holds_.fetch_add(1, std::memory_order_relaxed);
    metrics().holds.add();
    return before;
  }

  double after;
  const bool breach = obs_sample.p99_s > cfg_.slo_p99_s;
  if (breach) {
    after = std::max(cfg_.min_deadline_s, before * cfg_.decrease_factor);
    decreases_.fetch_add(1, std::memory_order_relaxed);
    metrics().decreases.add();
  } else {
    after = std::min(cfg_.max_deadline_s, before + cfg_.increase_step_s);
    increases_.fetch_add(1, std::memory_order_relaxed);
    metrics().increases.add();
  }
  deadline_s_.store(after, std::memory_order_relaxed);
  metrics().deadline_s.set(after);
  apply_(after);

  if (after != before && obs::EventSink::global().enabled()) {
    obs::Event ev("serve.policy.adjust");
    ev.f("action", breach ? std::string_view("decrease")
                          : std::string_view("increase"))
        .f("p99_s", obs_sample.p99_s)
        .f("window_count", obs_sample.count)
        .f("deadline_before_s", before)
        .f("deadline_after_s", after);
    obs::EventSink::global().emit(ev);
  }
  return after;
}

void AdaptiveBatchPolicy::start() {
  std::lock_guard<std::mutex> lock(mu_);
  RN_CHECK(!thread_.joinable(), "policy already started");
  stop_requested_ = false;
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { loop(); });
}

void AdaptiveBatchPolicy::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  std::thread joinable;
  {
    std::lock_guard<std::mutex> lock(mu_);
    joinable = std::move(thread_);
  }
  if (joinable.joinable()) joinable.join();
  running_.store(false, std::memory_order_relaxed);
}

void AdaptiveBatchPolicy::loop() {
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(cfg_.interval_s));
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    if (cv_.wait_for(lock, interval, [this] { return stop_requested_; })) {
      break;
    }
    lock.unlock();
    tick();
    lock.lock();
  }
}

AdaptiveBatchPolicy::Stats AdaptiveBatchPolicy::stats() const {
  Stats s;
  s.ticks = ticks_.load(std::memory_order_relaxed);
  s.increases = increases_.load(std::memory_order_relaxed);
  s.decreases = decreases_.load(std::memory_order_relaxed);
  s.holds = holds_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace rn::serve
