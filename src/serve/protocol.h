// RNP/1 — the RouteNet serving wire protocol.
//
// A tiny length-prefixed binary request/response protocol spoken by
// serve::NetServer / serve::NetClient over TCP or Unix domain sockets.
// One frame is:
//
//   offset 0  magic   "RNP1"                      (4 bytes)
//   offset 4  type    FrameType                   (1 byte)
//   offset 5  len     payload length, LE uint32   (4 bytes)
//   offset 9  payload `len` bytes
//   trailer   crc32 over (type byte ‖ payload), LE uint32
//
// The reader follows the RNCKPT2 bounds-checked discipline: every length
// is validated against the bytes actually present BEFORE anything is
// allocated or read, absurd counts (name_len, n_nodes, n_links, path
// lengths, payload lengths) are rejected with a clean ProtocolError —
// never an abort, never an over-read — and the CRC trailer makes every
// single-byte corruption detectable (protocol_fuzz_test flips every byte
// and truncates at every offset to prove it). Integers are little-endian;
// doubles are IEEE-754 binary64.
//
// Message payloads:
//   kPredictRequest   model name + a full inference scenario (topology,
//                     per-pair routing paths, per-pair traffic rates);
//                     optionally followed by a trace context (client
//                     request id + client send timestamp) — absent on
//                     frames from older clients, which still decode
//   kPredictResponse  per-pair predicted delay/jitter seconds; optionally
//                     followed by the echoed request id + server-side
//                     timing attribution (queue-wait / total server
//                     seconds), present iff the request carried a trace
//                     context
//   kError            ErrorCode + human-readable message
//   kReloadRequest    model name — hot-reload it from its source path
//   kReloadResponse   model name + new registry version
//   kShutdownRequest  empty — drain queued requests and exit
//   kShutdownAck      empty
//   kStatsRequest     empty — ask for a live telemetry snapshot
//   kStatsResponse    the server's obs::Registry snapshot (counters,
//                     gauges, histogram + window quantiles with
//                     exemplars), tracer losses, and registry model
//                     versions — what `routenet obs top` renders
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/routenet.h"
#include "dataset/dataset.h"

namespace rn::serve::wire {

inline constexpr char kMagic[4] = {'R', 'N', 'P', '1'};
inline constexpr std::size_t kHeaderLen = 9;   // magic + type + payload len
inline constexpr std::size_t kTrailerLen = 4;  // crc32(type ‖ payload)
// Hard ceilings the reader enforces before allocating anything.
inline constexpr std::uint32_t kMaxPayload = 64u << 20;  // 64 MiB
inline constexpr std::size_t kMaxNameLen = 256;
inline constexpr std::size_t kMaxErrorMsgLen = 512;
inline constexpr int kMaxNodes = 4096;
inline constexpr int kMaxLinks = 1 << 18;
// Stats snapshots: per-section entry cap and per-window exemplar cap. The
// exemplar bucket cap is deliberately independent of the obs histogram
// geometry so the wire layer never couples to it.
inline constexpr std::size_t kMaxStatsEntries = 4096;
inline constexpr std::size_t kMaxExemplars = 256;

enum class FrameType : std::uint8_t {
  kPredictRequest = 1,
  kPredictResponse = 2,
  kError = 3,
  kReloadRequest = 4,
  kReloadResponse = 5,
  kShutdownRequest = 6,
  kShutdownAck = 7,
  kStatsRequest = 8,
  kStatsResponse = 9,
};

enum class ErrorCode : std::uint16_t {
  kMalformed = 1,     // frame or payload failed validation
  kUnknownModel = 2,  // no such name in the registry
  kRejected = 3,      // backpressure: the model's queue is full
  kStopping = 4,      // server is shutting down
  kInternal = 5,      // forward pass / reload failure
  kTimeout = 6,       // connection read timed out mid-frame (or idle)
};

// Every malformed byte sequence raises this (a std::runtime_error), with a
// message naming the offending field.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what)
      : std::runtime_error("RNP/1: " + what) {}
};

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

struct FrameHeader {
  FrameType type = FrameType::kError;
  std::uint32_t payload_len = 0;
};

// Optional trailing block on a predict request: a client-generated request
// id plus the client's wall-clock send time. Carried through the server's
// span tree and echoed on the response, so one id links the client span,
// the server's queue.wait/batch.assemble/forward spans, and the latency
// exemplar.
struct TraceContext {
  std::uint64_t request_id = 0;  // client-generated, never 0 when present
  double client_send_unix_s = 0.0;
};

struct PredictRequest {
  std::string model;
  dataset::Sample sample;
  bool has_trace = false;  // frame carried a TraceContext (new clients)
  TraceContext trace;
};

// Full decode of a predict response, including the optional server timing
// attribution echoed back to tracing clients.
struct PredictResponse {
  core::RouteNet::Prediction prediction;
  bool has_trace = false;
  std::uint64_t request_id = 0;
  double queue_wait_s = 0.0;  // enqueue → batch take, server clock
  double server_s = 0.0;      // decode → response encode, server clock
};

struct ErrorFrame {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

struct ReloadResponse {
  std::string model;
  std::uint64_t version = 0;
};

// Live telemetry snapshot for kStatsResponse: the serving process's
// obs::Registry contents plus tracer loss counters and the model registry's
// name → version table.
struct StatsSnapshot {
  struct CounterEntry {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeEntry {
    std::string name;
    double value = 0.0;
  };
  struct HistogramEntry {
    std::string name;
    std::uint64_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
  };
  struct ExemplarEntry {
    std::uint16_t bucket = 0;
    double value = 0.0;
    std::uint64_t request_id = 0;
  };
  struct WindowEntry {
    std::string name;
    double window_s = 0.0;
    std::uint64_t count = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    std::vector<ExemplarEntry> exemplars;
  };
  struct ModelEntry {
    std::string name;
    std::uint64_t version = 0;
    std::uint64_t parameters = 0;
  };

  double server_time_s = 0.0;  // server's monotonic telemetry clock
  std::uint64_t trace_dropped = 0;
  std::uint64_t trace_sampled_out = 0;
  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<HistogramEntry> histograms;
  std::vector<WindowEntry> windows;
  std::vector<ModelEntry> models;
};

// --- Framing ---------------------------------------------------------------

// Wraps a payload in the magic/type/len envelope and appends the CRC.
std::string encode_frame(FrameType type, std::string_view payload);

// Validates magic, type, and payload length of the fixed-size header
// (exactly kHeaderLen bytes). Throws ProtocolError.
FrameHeader parse_frame_header(const char* bytes);

// Validates the trailer CRC against (type ‖ payload). Throws ProtocolError.
void verify_frame_crc(FrameType type, std::string_view payload,
                      std::uint32_t trailer_crc);

// Whole-buffer parse: header + payload + trailer with nothing left over.
// The entry point the fuzz suite drives; socket readers stream the same
// validations via parse_frame_header/verify_frame_crc.
Frame parse_frame(std::string_view bytes);

// --- Payload codecs --------------------------------------------------------
// decode_* functions accept exactly one payload (no envelope) and throw
// ProtocolError on any structural violation.

// Legacy (id-less) form — what pre-trace clients emit.
std::string encode_predict_request(const std::string& model,
                                   const dataset::Sample& sample);
// Extended form: appends the trace context. trace.request_id must be
// non-zero and trace.client_send_unix_s finite.
std::string encode_predict_request(const std::string& model,
                                   const dataset::Sample& sample,
                                   const TraceContext& trace);
// Accepts both forms; has_trace reports which arrived.
PredictRequest decode_predict_request(std::string_view payload);

// Legacy (no attribution) form.
std::string encode_predict_response(const core::RouteNet::Prediction& pred);
// Extended form: echoes the request id and attributes server time.
std::string encode_predict_response(const core::RouteNet::Prediction& pred,
                                    std::uint64_t request_id,
                                    double queue_wait_s, double server_s);
// Accepts both forms; has_trace reports which arrived.
PredictResponse decode_predict_response_full(std::string_view payload);
// Convenience for callers that only want the prediction.
core::RouteNet::Prediction decode_predict_response(std::string_view payload);

std::string encode_error(ErrorCode code, std::string_view message);
ErrorFrame decode_error(std::string_view payload);

std::string encode_reload_request(const std::string& model);
std::string decode_reload_request(std::string_view payload);

std::string encode_reload_response(const std::string& model,
                                   std::uint64_t version);
ReloadResponse decode_reload_response(std::string_view payload);

// kStatsRequest has an empty payload; kStatsResponse carries the snapshot.
std::string encode_stats_response(const StatsSnapshot& snap);
StatsSnapshot decode_stats_response(std::string_view payload);

const char* error_code_name(ErrorCode code);

}  // namespace rn::serve::wire
