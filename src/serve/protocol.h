// RNP/1 — the RouteNet serving wire protocol.
//
// A tiny length-prefixed binary request/response protocol spoken by
// serve::NetServer / serve::NetClient over TCP or Unix domain sockets.
// One frame is:
//
//   offset 0  magic   "RNP1"                      (4 bytes)
//   offset 4  type    FrameType                   (1 byte)
//   offset 5  len     payload length, LE uint32   (4 bytes)
//   offset 9  payload `len` bytes
//   trailer   crc32 over (type byte ‖ payload), LE uint32
//
// The reader follows the RNCKPT2 bounds-checked discipline: every length
// is validated against the bytes actually present BEFORE anything is
// allocated or read, absurd counts (name_len, n_nodes, n_links, path
// lengths, payload lengths) are rejected with a clean ProtocolError —
// never an abort, never an over-read — and the CRC trailer makes every
// single-byte corruption detectable (protocol_fuzz_test flips every byte
// and truncates at every offset to prove it). Integers are little-endian;
// doubles are IEEE-754 binary64.
//
// Message payloads:
//   kPredictRequest   model name + a full inference scenario (topology,
//                     per-pair routing paths, per-pair traffic rates)
//   kPredictResponse  per-pair predicted delay/jitter seconds
//   kError            ErrorCode + human-readable message
//   kReloadRequest    model name — hot-reload it from its source path
//   kReloadResponse   model name + new registry version
//   kShutdownRequest  empty — drain queued requests and exit
//   kShutdownAck      empty
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/routenet.h"
#include "dataset/dataset.h"

namespace rn::serve::wire {

inline constexpr char kMagic[4] = {'R', 'N', 'P', '1'};
inline constexpr std::size_t kHeaderLen = 9;   // magic + type + payload len
inline constexpr std::size_t kTrailerLen = 4;  // crc32(type ‖ payload)
// Hard ceilings the reader enforces before allocating anything.
inline constexpr std::uint32_t kMaxPayload = 64u << 20;  // 64 MiB
inline constexpr std::size_t kMaxNameLen = 256;
inline constexpr std::size_t kMaxErrorMsgLen = 512;
inline constexpr int kMaxNodes = 4096;
inline constexpr int kMaxLinks = 1 << 18;

enum class FrameType : std::uint8_t {
  kPredictRequest = 1,
  kPredictResponse = 2,
  kError = 3,
  kReloadRequest = 4,
  kReloadResponse = 5,
  kShutdownRequest = 6,
  kShutdownAck = 7,
};

enum class ErrorCode : std::uint16_t {
  kMalformed = 1,     // frame or payload failed validation
  kUnknownModel = 2,  // no such name in the registry
  kRejected = 3,      // backpressure: the model's queue is full
  kStopping = 4,      // server is shutting down
  kInternal = 5,      // forward pass / reload failure
};

// Every malformed byte sequence raises this (a std::runtime_error), with a
// message naming the offending field.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what)
      : std::runtime_error("RNP/1: " + what) {}
};

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

struct FrameHeader {
  FrameType type = FrameType::kError;
  std::uint32_t payload_len = 0;
};

struct PredictRequest {
  std::string model;
  dataset::Sample sample;
};

struct ErrorFrame {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

struct ReloadResponse {
  std::string model;
  std::uint64_t version = 0;
};

// --- Framing ---------------------------------------------------------------

// Wraps a payload in the magic/type/len envelope and appends the CRC.
std::string encode_frame(FrameType type, std::string_view payload);

// Validates magic, type, and payload length of the fixed-size header
// (exactly kHeaderLen bytes). Throws ProtocolError.
FrameHeader parse_frame_header(const char* bytes);

// Validates the trailer CRC against (type ‖ payload). Throws ProtocolError.
void verify_frame_crc(FrameType type, std::string_view payload,
                      std::uint32_t trailer_crc);

// Whole-buffer parse: header + payload + trailer with nothing left over.
// The entry point the fuzz suite drives; socket readers stream the same
// validations via parse_frame_header/verify_frame_crc.
Frame parse_frame(std::string_view bytes);

// --- Payload codecs --------------------------------------------------------
// decode_* functions accept exactly one payload (no envelope) and throw
// ProtocolError on any structural violation.

std::string encode_predict_request(const std::string& model,
                                   const dataset::Sample& sample);
PredictRequest decode_predict_request(std::string_view payload);

std::string encode_predict_response(const core::RouteNet::Prediction& pred);
core::RouteNet::Prediction decode_predict_response(std::string_view payload);

std::string encode_error(ErrorCode code, std::string_view message);
ErrorFrame decode_error(std::string_view payload);

std::string encode_reload_request(const std::string& model);
std::string decode_reload_request(std::string_view payload);

std::string encode_reload_response(const std::string& model,
                                   std::uint64_t version);
ReloadResponse decode_reload_response(std::string_view payload);

const char* error_code_name(ErrorCode code);

}  // namespace rn::serve::wire
