#include "serve/registry.h"

#include <utility>

#include "obs/event.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace rn::serve {

namespace {

struct RegistryMetrics {
  obs::Gauge& models = obs::Registry::global().gauge("serve.registry.models");
  obs::Counter& loads =
      obs::Registry::global().counter("serve.registry.loads_total");
  obs::Counter& reloads =
      obs::Registry::global().counter("serve.registry.reloads_total");
  obs::Counter& misses =
      obs::Registry::global().counter("serve.registry.misses_total");
};

RegistryMetrics& metrics() {
  static RegistryMetrics m;
  return m;
}

}  // namespace

ModelRegistry::Entry::Entry(std::string name, std::string source,
                            std::unique_ptr<core::RouteNet> model,
                            std::uint64_t version, const ServerConfig& cfg)
    : name_(std::move(name)),
      source_(std::move(source)),
      version_(version),
      model_(std::move(model)),
      server_(std::make_unique<InferenceServer>(*model_, cfg)) {}

ModelRegistry::ModelRegistry(ServerConfig server_cfg)
    : server_cfg_(server_cfg), deadline_s_(server_cfg.batch_deadline_s) {
  RN_CHECK(server_cfg_.batch_deadline_s >= 0.0,
           "batch deadline must be >= 0");
  snapshot_.store(std::make_shared<const Snapshot>());
}

ModelRegistry::~ModelRegistry() {
  // Dropping the snapshot drains every entry still owned solely by the
  // registry; handles held elsewhere drain when their owners let go.
  snapshot_.store(std::make_shared<const Snapshot>());
}

std::uint64_t ModelRegistry::swap_in(const std::string& name,
                                     const std::string& source,
                                     std::unique_ptr<core::RouteNet> model) {
  RN_CHECK(!name.empty(), "model name must be non-empty");
  RN_CHECK(model != nullptr, "model must be non-null");
  // Validate before the swap: a model that loads but carries no
  // parameters would serve garbage silently.
  RN_CHECK(model->num_parameters() > 0, "model has no parameters");
  const std::size_t params = model->num_parameters();

  std::lock_guard<std::mutex> lock(mu_);
  const std::shared_ptr<const Snapshot> old = snapshot_.load();
  std::uint64_t version = 1;
  if (const auto it = old->find(name); it != old->end()) {
    version = it->second->version() + 1;
  }
  ServerConfig cfg = server_cfg_;
  cfg.batch_deadline_s = deadline_s_.load(std::memory_order_relaxed);
  auto entry = std::make_shared<Entry>(name, source, std::move(model),
                                       version, cfg);
  auto next = std::make_shared<Snapshot>(*old);
  (*next)[name] = std::move(entry);
  snapshot_.store(std::shared_ptr<const Snapshot>(std::move(next)));

  metrics().models.set(static_cast<double>(snapshot_.load()->size()));
  metrics().loads.add();
  if (obs::EventSink::global().enabled()) {
    obs::Event ev("serve.registry.swap");
    ev.f("model", name)
        .f("version", version)
        .f("source", source.empty() ? std::string_view("<memory>") : source)
        .f("parameters", params);
    obs::EventSink::global().emit(ev);
  }
  return version;
}

std::uint64_t ModelRegistry::load(const std::string& name,
                                  const std::string& path) {
  // Load + validate entirely off to the side; the snapshot only changes
  // once the new model is known-good (in-flight requests never see a
  // half-loaded model, and a bad file leaves the old one serving).
  auto model = std::make_unique<core::RouteNet>(core::RouteNet::load(path));
  return swap_in(name, path, std::move(model));
}

std::uint64_t ModelRegistry::install(const std::string& name,
                                     std::unique_ptr<core::RouteNet> model) {
  return swap_in(name, /*source=*/"", std::move(model));
}

std::uint64_t ModelRegistry::reload(const std::string& name) {
  const Handle entry = acquire(name);
  RN_CHECK(!entry->source().empty(),
           "model '" + name + "' was installed in-memory; nothing to reload");
  const std::uint64_t version = load(name, entry->source());
  metrics().reloads.add();
  return version;
}

void ModelRegistry::remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::shared_ptr<const Snapshot> old = snapshot_.load();
  if (old->find(name) == old->end()) throw UnknownModelError(name);
  auto next = std::make_shared<Snapshot>(*old);
  next->erase(name);
  snapshot_.store(std::shared_ptr<const Snapshot>(std::move(next)));
  metrics().models.set(static_cast<double>(snapshot_.load()->size()));
}

ModelRegistry::Handle ModelRegistry::acquire(const std::string& name) const {
  const std::shared_ptr<const Snapshot> snap = snapshot_.load();
  const auto it = snap->find(name);
  if (it == snap->end()) {
    metrics().misses.add();
    throw UnknownModelError(name);
  }
  return it->second;
}

std::vector<ModelRegistry::ModelInfo> ModelRegistry::list() const {
  const std::shared_ptr<const Snapshot> snap = snapshot_.load();
  std::vector<ModelInfo> out;
  out.reserve(snap->size());
  for (const auto& [name, entry] : *snap) {
    out.push_back({name, entry->source(), entry->version(),
                   entry->model().num_parameters()});
  }
  return out;
}

std::size_t ModelRegistry::size() const { return snapshot_.load()->size(); }

void ModelRegistry::set_batch_deadline(double seconds) {
  RN_CHECK(seconds >= 0.0, "batch deadline must be >= 0");
  deadline_s_.store(seconds, std::memory_order_relaxed);
  const std::shared_ptr<const Snapshot> snap = snapshot_.load();
  for (const auto& [name, entry] : *snap) {
    entry->server().set_batch_deadline(seconds);
  }
}

double ModelRegistry::batch_deadline_s() const {
  return deadline_s_.load(std::memory_order_relaxed);
}

}  // namespace rn::serve
