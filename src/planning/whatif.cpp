#include "planning/whatif.h"

#include <algorithm>
#include <limits>

namespace rn::planning {

dataset::Sample scenario_to_sample(const Scenario& scenario) {
  return dataset::make_inference_sample(scenario.topology, scenario.routing,
                                        scenario.tm);
}

namespace {

// True when `other` is the reverse direction of `link`.
bool is_reverse(const topo::Link& link, const topo::Link& other) {
  return link.src == other.dst && link.dst == other.src;
}

}  // namespace

std::shared_ptr<const topo::Topology> with_link_capacity_scaled(
    const topo::Topology& topo, topo::LinkId link_id, double factor) {
  RN_CHECK(factor > 0.0, "capacity factor must be positive");
  const topo::Link& target = topo.link(link_id);
  auto out = std::make_shared<topo::Topology>(topo.name() + "+upgrade",
                                              topo.num_nodes());
  for (const topo::Link& l : topo.links()) {
    const bool affected =
        (l.src == target.src && l.dst == target.dst) || is_reverse(target, l);
    out->add_link(l.src, l.dst,
                  affected ? l.capacity_bps * factor : l.capacity_bps,
                  l.prop_delay_s);
  }
  return out;
}

std::shared_ptr<const topo::Topology> with_link_failed(
    const topo::Topology& topo, topo::LinkId link_id) {
  const topo::Link& target = topo.link(link_id);
  auto out = std::make_shared<topo::Topology>(topo.name() + "-failure",
                                              topo.num_nodes());
  for (const topo::Link& l : topo.links()) {
    const bool removed =
        (l.src == target.src && l.dst == target.dst) || is_reverse(target, l);
    if (removed) continue;
    out->add_link(l.src, l.dst, l.capacity_bps, l.prop_delay_s);
  }
  RN_CHECK(out->is_strongly_connected(),
           "failing this link would partition the network");
  return out;
}

Scenario fail_and_reroute(const Scenario& scenario, topo::LinkId link_id) {
  const topo::Topology& old = *scenario.topology;
  const topo::Link& target = old.link(link_id);
  std::shared_ptr<const topo::Topology> degraded =
      with_link_failed(old, link_id);

  // Only pairs whose path used the failed cable are re-routed; everyone
  // else keeps their exact path (link ids must be translated because
  // removal shifts them).
  routing::RoutingScheme rerouted(old.num_nodes());
  for (topo::NodeId s = 0; s < old.num_nodes(); ++s) {
    for (topo::NodeId d = 0; d < old.num_nodes(); ++d) {
      if (s == d) continue;
      const routing::Path& path = scenario.routing.path(s, d);
      bool affected = false;
      for (topo::LinkId id : path) {
        const topo::Link& l = old.link(id);
        if ((l.src == target.src && l.dst == target.dst) ||
            is_reverse(target, l)) {
          affected = true;
          break;
        }
      }
      if (affected) {
        routing::Path alt = routing::shortest_path(*degraded, s, d);
        RN_CHECK(!alt.empty(), "no surviving route");  // guarded by
                                                       // with_link_failed
        rerouted.set_path(s, d, std::move(alt));
      } else {
        routing::Path translated;
        translated.reserve(path.size());
        for (topo::LinkId id : path) {
          const topo::Link& l = old.link(id);
          const std::optional<topo::LinkId> mapped =
              degraded->find_link(l.src, l.dst);
          RN_CHECK(mapped.has_value(), "surviving link missing after edit");
          translated.push_back(*mapped);
        }
        rerouted.set_path(s, d, std::move(translated));
      }
    }
  }
  return Scenario{std::move(degraded), std::move(rerouted), scenario.tm};
}

double mean_delay(const std::vector<double>& delays) {
  RN_CHECK(!delays.empty(), "no delays to aggregate");
  double total = 0.0;
  for (double d : delays) total += d;
  return total / static_cast<double>(delays.size());
}

double max_delay(const std::vector<double>& delays) {
  RN_CHECK(!delays.empty(), "no delays to aggregate");
  return *std::max_element(delays.begin(), delays.end());
}

WhatIfEngine::WhatIfEngine(Scenario scenario, PredictDelaysFn predictor)
    : scenario_(std::move(scenario)), predictor_(std::move(predictor)) {
  RN_CHECK(predictor_ != nullptr, "null predictor");
  routing::validate_routing(*scenario_.topology, scenario_.routing);
  baseline_ = mean_delay(predictor_(scenario_));
}

std::vector<std::pair<double, topo::LinkId>>
WhatIfEngine::links_by_utilization() const {
  const std::vector<double> loads = traffic::link_loads_bps(
      *scenario_.topology, scenario_.routing, scenario_.tm);
  std::vector<std::pair<double, topo::LinkId>> util;
  for (topo::LinkId id = 0; id < scenario_.topology->num_links(); ++id) {
    // Consider each duplex cable once: keep the direction with higher load,
    // identified as the first-seen direction between the node pair.
    const topo::Link& l = scenario_.topology->link(id);
    bool duplicate = false;
    for (topo::LinkId prev = 0; prev < id; ++prev) {
      if (is_reverse(scenario_.topology->link(prev), l) ||
          (scenario_.topology->link(prev).src == l.src &&
           scenario_.topology->link(prev).dst == l.dst)) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    // Use the max of the two directions' utilization as the cable's score.
    double load = loads[static_cast<std::size_t>(id)];
    for (topo::LinkId other = 0; other < scenario_.topology->num_links();
         ++other) {
      if (is_reverse(l, scenario_.topology->link(other))) {
        load = std::max(load, loads[static_cast<std::size_t>(other)]);
      }
    }
    util.emplace_back(load / l.capacity_bps, id);
  }
  std::sort(util.rbegin(), util.rend());
  return util;
}

std::vector<UpgradeOption> WhatIfEngine::rank_upgrades(
    int top_k, double capacity_factor) const {
  RN_CHECK(top_k >= 1, "top_k must be positive");
  const auto candidates = links_by_utilization();
  std::vector<UpgradeOption> options;
  const int count = std::min<int>(top_k, static_cast<int>(candidates.size()));
  for (int i = 0; i < count; ++i) {
    const auto [util, link_id] = candidates[static_cast<std::size_t>(i)];
    Scenario whatif = scenario_;
    whatif.topology = with_link_capacity_scaled(*scenario_.topology, link_id,
                                                capacity_factor);
    UpgradeOption opt;
    opt.link_id = link_id;
    opt.src = scenario_.topology->link(link_id).src;
    opt.dst = scenario_.topology->link(link_id).dst;
    opt.utilization = util;
    opt.objective = mean_delay(predictor_(whatif));
    opt.improvement = (baseline_ - opt.objective) / baseline_;
    options.push_back(opt);
  }
  std::sort(options.begin(), options.end(),
            [](const UpgradeOption& a, const UpgradeOption& b) {
              return a.improvement > b.improvement;
            });
  return options;
}

std::vector<FailureImpact> WhatIfEngine::rank_failures(int top_k) const {
  auto candidates = links_by_utilization();
  if (top_k > 0 && static_cast<int>(candidates.size()) > top_k) {
    candidates.resize(static_cast<std::size_t>(top_k));
  }
  std::vector<FailureImpact> impacts;
  for (const auto& [util, link_id] : candidates) {
    FailureImpact impact;
    impact.link_id = link_id;
    impact.src = scenario_.topology->link(link_id).src;
    impact.dst = scenario_.topology->link(link_id).dst;
    try {
      const Scenario degraded = fail_and_reroute(scenario_, link_id);
      impact.objective = mean_delay(predictor_(degraded));
      impact.degradation = (impact.objective - baseline_) / baseline_;
    } catch (const std::runtime_error&) {
      impact.disconnects = true;
      impact.objective = std::numeric_limits<double>::infinity();
      impact.degradation = std::numeric_limits<double>::infinity();
    }
    impacts.push_back(impact);
  }
  std::sort(impacts.begin(), impacts.end(),
            [](const FailureImpact& a, const FailureImpact& b) {
              return a.degradation > b.degradation;
            });
  return impacts;
}

}  // namespace rn::planning
