// What-if planning engine (paper §3: "examples leveraging the predictions
// of RouteNet for network visibility and planning").
//
// The engine answers counterfactual questions about a live scenario —
// "what if this link gets 2.5× capacity?", "what if that link fails?" —
// by editing the scenario and re-running a delay predictor, which costs a
// GNN forward pass instead of a packet-level simulation per candidate.
// Any predictor with the PredictDelaysFn signature plugs in (RouteNet, the
// analytic model, or the simulator itself for verification).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dataset/dataset.h"
#include "routing/routing.h"
#include "topology/topology.h"
#include "traffic/traffic.h"

namespace rn::planning {

// A scenario is the RouteNet input triple; delays are what we ask about.
struct Scenario {
  std::shared_ptr<const topo::Topology> topology;
  routing::RoutingScheme routing;
  traffic::TrafficMatrix tm;
};

// Per-pair delay estimates for a scenario.
using PredictDelaysFn = std::function<std::vector<double>(const Scenario&)>;

// Wraps a scenario as an unlabeled dataset::Sample (all paths valid) so a
// trained RouteNet can be used as a PredictDelaysFn.
dataset::Sample scenario_to_sample(const Scenario& scenario);

// --- Scenario edits ------------------------------------------------------------

// New topology with one duplex link's capacity multiplied by `factor`
// (both directions of the physical cable identified by `link_id`).
std::shared_ptr<const topo::Topology> with_link_capacity_scaled(
    const topo::Topology& topo, topo::LinkId link_id, double factor);

// New topology with the duplex link removed entirely. Throws if removal
// disconnects the graph (no routing would exist).
std::shared_ptr<const topo::Topology> with_link_failed(
    const topo::Topology& topo, topo::LinkId link_id);

// Scenario under a failure: link removed and all pairs re-routed on the
// surviving graph via shortest paths (traffic matrix unchanged). Link ids
// change, so the routing is rebuilt from scratch.
Scenario fail_and_reroute(const Scenario& scenario, topo::LinkId link_id);

// --- Aggregate objectives ----------------------------------------------------------

// Mean per-pair delay, the default planning objective.
double mean_delay(const std::vector<double>& delays);

// Worst per-pair delay.
double max_delay(const std::vector<double>& delays);

// --- The engine ----------------------------------------------------------------------

struct UpgradeOption {
  topo::LinkId link_id = -1;
  topo::NodeId src = 0;
  topo::NodeId dst = 0;
  double utilization = 0.0;   // offered load / capacity before the upgrade
  double objective = 0.0;     // objective value after the upgrade
  double improvement = 0.0;   // (baseline − objective) / baseline
};

struct FailureImpact {
  topo::LinkId link_id = -1;
  topo::NodeId src = 0;
  topo::NodeId dst = 0;
  double objective = 0.0;     // objective value under the failure
  double degradation = 0.0;   // (objective − baseline) / baseline
  bool disconnects = false;   // failure would partition the network
};

class WhatIfEngine {
 public:
  WhatIfEngine(Scenario scenario, PredictDelaysFn predictor);

  // Objective on the unmodified scenario.
  double baseline_objective() const { return baseline_; }

  // Evaluates upgrading each of the `top_k` most-utilized duplex links by
  // `capacity_factor`; returns options sorted by improvement (best first).
  std::vector<UpgradeOption> rank_upgrades(int top_k,
                                           double capacity_factor) const;

  // Evaluates failing every duplex link (or the `top_k` most utilized when
  // top_k > 0); returns impacts sorted by degradation (worst first).
  std::vector<FailureImpact> rank_failures(int top_k = 0) const;

 private:
  // Duplex partner of a link (reverse direction), if present.
  std::vector<std::pair<double, topo::LinkId>> links_by_utilization() const;

  Scenario scenario_;
  PredictDelaysFn predictor_;
  double baseline_ = 0.0;
};

}  // namespace rn::planning
