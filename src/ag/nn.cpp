#include "ag/nn.h"

#include <atomic>
#include <cstdlib>

#include "ag/init.h"

namespace rn::ag {

namespace {

bool read_fused_gru_env() {
  const char* env = std::getenv("RN_FUSED_GRU");
  return env == nullptr || env[0] == '\0' ||
         !(env[0] == '0' && env[1] == '\0');
}

std::atomic<bool>& fused_gru_flag() {
  static std::atomic<bool> enabled{read_fused_gru_env()};
  return enabled;
}

}  // namespace

bool fused_gru_enabled() {
  return fused_gru_flag().load(std::memory_order_relaxed);
}

void set_fused_gru(bool enabled) {
  fused_gru_flag().store(enabled, std::memory_order_relaxed);
}

Dense::Dense(int in_dim, int out_dim, Activation act, Rng& rng,
             const std::string& name)
    : w_(name + ".w", act == Activation::kRelu
                          ? he_uniform(in_dim, out_dim, rng)
                          : xavier_uniform(in_dim, out_dim, rng)),
      b_(name + ".b", Tensor(1, out_dim)),
      act_(act) {
  RN_CHECK(in_dim > 0 && out_dim > 0, "Dense dims must be positive");
}

ValueId Dense::apply(Tape& tape, ValueId x) const {
  ValueId y = tape.add_bias(tape.matmul(x, tape.param(w_)), tape.param(b_));
  switch (act_) {
    case Activation::kNone:
      return y;
    case Activation::kRelu:
      return tape.relu(y);
    case Activation::kSigmoid:
      return tape.sigmoid(y);
    case Activation::kTanh:
      return tape.tanh(y);
  }
  return y;
}

std::vector<Parameter*> Dense::params() { return {&w_, &b_}; }

GruCell::GruCell(int input_dim, int hidden_dim, Rng& rng,
                 const std::string& name)
    : wz_(name + ".wz", xavier_uniform(input_dim, hidden_dim, rng)),
      uz_(name + ".uz", recurrent_uniform(hidden_dim, hidden_dim, rng)),
      bz_(name + ".bz", Tensor(1, hidden_dim)),
      wr_(name + ".wr", xavier_uniform(input_dim, hidden_dim, rng)),
      ur_(name + ".ur", recurrent_uniform(hidden_dim, hidden_dim, rng)),
      br_(name + ".br", Tensor(1, hidden_dim)),
      wh_(name + ".wh", xavier_uniform(input_dim, hidden_dim, rng)),
      uh_(name + ".uh", recurrent_uniform(hidden_dim, hidden_dim, rng)),
      bh_(name + ".bh", Tensor(1, hidden_dim)) {
  RN_CHECK(input_dim > 0 && hidden_dim > 0, "GruCell dims must be positive");
}

ValueId GruCell::step(Tape& tape, ValueId x, ValueId h) const {
  if (fused_gru_enabled()) return tape.gru_step(x, h, weights());
  const ValueId z = tape.sigmoid(tape.add_bias(
      tape.add(tape.matmul(x, tape.param(wz_)), tape.matmul(h, tape.param(uz_))),
      tape.param(bz_)));
  const ValueId r = tape.sigmoid(tape.add_bias(
      tape.add(tape.matmul(x, tape.param(wr_)), tape.matmul(h, tape.param(ur_))),
      tape.param(br_)));
  const ValueId rh = tape.mul(r, h);
  const ValueId hc = tape.tanh(tape.add_bias(
      tape.add(tape.matmul(x, tape.param(wh_)),
               tape.matmul(rh, tape.param(uh_))),
      tape.param(bh_)));
  return tape.add(tape.mul(tape.one_minus(z), h), tape.mul(z, hc));
}

ValueId GruCell::step_gathered(Tape& tape, ValueId x_src,
                               std::vector<int> x_idx, ValueId h_src,
                               std::vector<int> h_idx) const {
  if (fused_gru_enabled()) {
    return tape.gru_step_gathered(x_src, std::move(x_idx), h_src,
                                  std::move(h_idx), weights());
  }
  const ValueId x = tape.gather_rows(x_src, std::move(x_idx));
  const ValueId h = tape.gather_rows(h_src, std::move(h_idx));
  return step(tape, x, h);
}

GruWeights GruCell::weights() const {
  GruWeights w;
  w.wz = &wz_;
  w.uz = &uz_;
  w.bz = &bz_;
  w.wr = &wr_;
  w.ur = &ur_;
  w.br = &br_;
  w.wh = &wh_;
  w.uh = &uh_;
  w.bh = &bh_;
  return w;
}

std::vector<Parameter*> GruCell::params() {
  return {&wz_, &uz_, &bz_, &wr_, &ur_, &br_, &wh_, &uh_, &bh_};
}

Mlp::Mlp(const std::vector<int>& dims, Rng& rng, const std::string& name,
         Activation output_act) {
  RN_CHECK(dims.size() >= 2, "Mlp needs at least input and output dims");
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    const bool last = i + 2 == dims.size();
    layers_.emplace_back(dims[i], dims[i + 1],
                         last ? output_act : Activation::kRelu, rng,
                         name + ".l" + std::to_string(i));
  }
}

ValueId Mlp::apply(Tape& tape, ValueId x) const {
  ValueId y = x;
  for (const Dense& layer : layers_) y = layer.apply(tape, y);
  return y;
}

int Mlp::in_dim() const { return layers_.front().in_dim(); }
int Mlp::out_dim() const { return layers_.back().out_dim(); }

std::vector<Parameter*> Mlp::params() {
  std::vector<Parameter*> out;
  for (Dense& layer : layers_) {
    for (Parameter* p : layer.params()) out.push_back(p);
  }
  return out;
}

}  // namespace rn::ag
