// Reverse-mode automatic differentiation over Tensor.
//
// A Tape records a DAG of operations as they execute (define-by-run), then
// Tape::backward walks the recorded nodes in reverse to accumulate gradients
// into Parameters. Because nodes are appended in execution order, the vector
// itself is a topological order — no explicit sort is needed.
//
// The op set is exactly what RouteNet-style message passing and MLP/GRU
// layers need: dense algebra, pointwise nonlinearities, and the three
// graph-indexing ops (gather_rows / scatter_rows / segment_sum) that express
// "read the links on a path", "write updated path states back", and
// "aggregate per-hop messages into links".
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "ag/tensor.h"
#include "util/rng.h"

namespace rn::ag {

using ValueId = std::int32_t;
inline constexpr ValueId kInvalidValue = -1;

// A trainable tensor with its gradient accumulator. Owned by layers/models;
// the tape holds non-owning pointers for the duration of one forward/backward.
struct Parameter {
  Parameter(std::string name_, Tensor value_)
      : name(std::move(name_)),
        value(std::move(value_)),
        grad(value.rows(), value.cols()) {}

  void zero_grad() { grad.fill(0.0f); }

  std::string name;
  Tensor value;
  Tensor grad;
};

// The nine parameters of one GRU cell, referenced (not copied) by the fused
// gru_step op. The tape accumulates straight into each Parameter's .grad in
// backward(), exactly like a kParam node would.
struct GruWeights {
  Parameter* wz = nullptr;
  Parameter* uz = nullptr;
  Parameter* bz = nullptr;
  Parameter* wr = nullptr;
  Parameter* ur = nullptr;
  Parameter* br = nullptr;
  Parameter* wh = nullptr;
  Parameter* uh = nullptr;
  Parameter* bh = nullptr;
};

class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  // --- Leaves -------------------------------------------------------------

  // Non-trainable input (features, targets).
  ValueId constant(Tensor t);

  // Trainable leaf. backward() accumulates into p.grad; the caller must keep
  // p alive until backward() completes.
  ValueId param(Parameter& p);

  // --- Dense algebra -------------------------------------------------------
  ValueId matmul(ValueId a, ValueId b);
  ValueId add(ValueId a, ValueId b);        // same shape
  ValueId sub(ValueId a, ValueId b);        // same shape
  ValueId mul(ValueId a, ValueId b);        // elementwise, same shape
  ValueId add_bias(ValueId m, ValueId bias);  // bias is 1×C, broadcast to rows
  ValueId scale(ValueId a, float s);
  ValueId one_minus(ValueId a);             // 1 - a, elementwise

  // Per-row scaling: out[r] = a[r] * factors[r]. Used to turn segment sums
  // into segment means (divide each link's aggregate by its message count).
  ValueId scale_rows(ValueId a, std::vector<float> factors);

  // Inverted dropout: zeroes each element with probability `rate` and
  // scales survivors by 1/(1−rate) so expectations match inference (where
  // callers simply skip this op). Training-time only by construction.
  ValueId dropout(ValueId a, float rate, Rng& rng);

  // --- Nonlinearities ------------------------------------------------------
  ValueId sigmoid(ValueId a);
  ValueId tanh(ValueId a);
  ValueId relu(ValueId a);

  // --- Shape ops -----------------------------------------------------------
  ValueId concat_cols(ValueId a, ValueId b);          // [A | B]
  ValueId concat_rows(const std::vector<ValueId>& xs);  // stack row blocks
  ValueId slice_cols(ValueId a, int c0, int c1);      // columns [c0, c1)

  // --- Graph-indexing ops ---------------------------------------------------

  // out[i] = a[idx[i]]; duplicate indices allowed (gradient accumulates).
  ValueId gather_rows(ValueId a, std::vector<int> idx);

  // out = base with out[idx[i]] = rows[i]. Indices must be unique: each row
  // of the result has exactly one source, which keeps the backward pass a
  // disjoint split of the incoming gradient.
  ValueId scatter_rows(ValueId base, std::vector<int> idx, ValueId rows);

  // out has num_segments rows; out[seg[i]] += a[i]. RouteNet's link-message
  // aggregator.
  ValueId segment_sum(ValueId a, std::vector<int> seg, int num_segments);

  // --- Fused ops -------------------------------------------------------------

  // One-node GRU step: h' = (1−z)∘h + z∘tanh(xWh + (r∘h)Uh + bh) with
  // z/r the usual sigmoid gates. Replaces the ~20-node composed expression
  // in GruCell::step with a single node whose forward replicates the
  // composed per-element arithmetic order exactly (bitwise-identical
  // values) while materializing only the three saved activations the
  // backward needs. Gradients accumulate directly into the GruWeights
  // parameters, so backward() must run before any optimizer step mutates
  // them (the standard training order).
  ValueId gru_step(ValueId x, ValueId h, const GruWeights& w);

  // gru_step with both inputs gathered inside the node:
  // x = x_src[x_idx], h = h_src[h_idx]. Fuses the two gather_rows nodes of
  // the message-passing path update; the backward scatters dx/dh back into
  // the source states' gradients (ascending-index accumulation).
  ValueId gru_step_gathered(ValueId x_src, std::vector<int> x_idx,
                            ValueId h_src, std::vector<int> h_idx,
                            const GruWeights& w);

  // --- Reductions & losses ---------------------------------------------------
  ValueId reduce_sum(ValueId a);   // -> 1×1
  ValueId reduce_mean(ValueId a);  // -> 1×1

  // mean((pred - target)^2); target is a constant.
  ValueId mse(ValueId pred, const Tensor& target);

  // mean(|pred - target|).
  ValueId mae(ValueId pred, const Tensor& target);

  // Huber loss with threshold delta, averaged over entries.
  ValueId huber(ValueId pred, const Tensor& target, float delta);

  // --- Execution -------------------------------------------------------------
  const Tensor& value(ValueId id) const;

  // Accumulates d(root)/d(param) into each touched Parameter's .grad and
  // stores per-node gradients (readable via grad()). root must be 1×1.
  void backward(ValueId root);

  // Gradient of the last backward() w.r.t. an intermediate value. Zero tensor
  // if the node did not require grad. Intended for tests.
  const Tensor& grad(ValueId id) const;

  std::size_t num_nodes() const { return nodes_.size(); }

  // Drops all recorded nodes; Parameters are untouched.
  void clear() { nodes_.clear(); }

 private:
  enum class Op : std::uint8_t {
    kConstant, kParam, kMatmul, kAdd, kSub, kMul, kAddBias, kScale,
    kScaleRows, kOneMinus, kSigmoid, kTanh, kRelu, kConcatCols,
    kConcatRows, kSliceCols, kGatherRows, kScatterRows, kSegmentSum,
    kReduceSum, kReduceMean, kMse, kMae, kHuber, kDropout, kGruStep,
  };

  // Fused-GRU node state: parameter references, the optional gather indices,
  // the materialized gathered inputs, and the three activations the
  // backward pass needs (everything else is recomputed from them).
  struct GruAux {
    GruWeights w;
    std::vector<int> x_idx, h_idx;  // empty → the input id is used directly
    Tensor xg, hg;                  // gathered inputs (gathered variant only)
    Tensor z, r, hc;                // saved gate / candidate activations
  };

  struct Node {
    Op op;
    ValueId a = kInvalidValue;
    ValueId b = kInvalidValue;
    std::vector<ValueId> srcs;  // kConcatRows only
    Tensor value;
    Tensor grad;       // allocated lazily in backward()
    bool needs_grad = false;
    Parameter* parameter = nullptr;  // kParam only
    std::vector<int> idx;            // gather/scatter/segment indices
    std::vector<float> row_factors;  // kScaleRows only
    int aux0 = 0, aux1 = 0;          // slice bounds / segment count
    float scalar = 0.0f;             // kScale factor / kHuber delta
    Tensor aux_tensor;               // loss target / dropout mask
    std::unique_ptr<GruAux> gru;     // kGruStep only
  };

  ValueId push(Node node);
  ValueId gru_step_impl(ValueId a, ValueId b, const GruWeights& w,
                        std::vector<int> x_idx, std::vector<int> h_idx);
  Node& node(ValueId id);
  const Node& node(ValueId id) const;
  bool any_needs_grad(ValueId a, ValueId b = kInvalidValue) const;
  Tensor& grad_buffer(ValueId id);  // allocates zeros on first touch

  void backward_node(ValueId id);

  // Deque, not vector: value()/grad() hand out references that must survive
  // subsequent op recordings (deque never relocates existing elements).
  std::deque<Node> nodes_;
};

}  // namespace rn::ag
