// Weight initializers.
#pragma once

#include <cmath>

#include "ag/tensor.h"
#include "util/rng.h"

namespace rn::ag {

// Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
// Suits tanh/sigmoid layers (GRU gates, readout hidden layers).
inline Tensor xavier_uniform(int rows, int cols, Rng& rng) {
  const double a = std::sqrt(6.0 / (rows + cols));
  Tensor t(rows, cols);
  for (int i = 0; i < t.size(); ++i) {
    t[static_cast<std::size_t>(i)] =
        static_cast<float>(rng.uniform(-a, a));
  }
  return t;
}

// He/Kaiming uniform for ReLU layers: U(-a, a), a = sqrt(6 / fan_in).
inline Tensor he_uniform(int rows, int cols, Rng& rng) {
  const double a = std::sqrt(6.0 / rows);
  Tensor t(rows, cols);
  for (int i = 0; i < t.size(); ++i) {
    t[static_cast<std::size_t>(i)] =
        static_cast<float>(rng.uniform(-a, a));
  }
  return t;
}

// Orthogonal-ish recurrent init: scaled Xavier; adequate for small GRUs.
inline Tensor recurrent_uniform(int rows, int cols, Rng& rng) {
  return xavier_uniform(rows, cols, rng);
}

}  // namespace rn::ag
