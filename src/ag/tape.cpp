#include "ag/tape.h"

#include <cmath>

#include "obs/trace.h"

namespace rn::ag {

namespace {

// Shared scratch returned by grad() for nodes that never received gradient.
const Tensor& empty_tensor() {
  static const Tensor t;
  return t;
}

}  // namespace

ValueId Tape::push(Node n) {
  nodes_.push_back(std::move(n));
  return static_cast<ValueId>(nodes_.size() - 1);
}

Tape::Node& Tape::node(ValueId id) {
  RN_CHECK(id >= 0 && id < static_cast<ValueId>(nodes_.size()),
           "invalid ValueId");
  return nodes_[static_cast<std::size_t>(id)];
}

const Tape::Node& Tape::node(ValueId id) const {
  RN_CHECK(id >= 0 && id < static_cast<ValueId>(nodes_.size()),
           "invalid ValueId");
  return nodes_[static_cast<std::size_t>(id)];
}

bool Tape::any_needs_grad(ValueId a, ValueId b) const {
  if (a != kInvalidValue && node(a).needs_grad) return true;
  if (b != kInvalidValue && node(b).needs_grad) return true;
  return false;
}

Tensor& Tape::grad_buffer(ValueId id) {
  Node& n = node(id);
  if (n.grad.empty() && n.value.size() > 0) {
    n.grad = Tensor(n.value.rows(), n.value.cols());
  }
  return n.grad;
}

// --- Leaves ------------------------------------------------------------------

ValueId Tape::constant(Tensor t) {
  Node n;
  n.op = Op::kConstant;
  n.value = std::move(t);
  n.needs_grad = false;
  return push(std::move(n));
}

ValueId Tape::param(Parameter& p) {
  Node n;
  n.op = Op::kParam;
  n.value = p.value;  // copy: tape must stay valid if the optimizer steps
  n.needs_grad = true;
  n.parameter = &p;
  return push(std::move(n));
}

// --- Dense algebra -------------------------------------------------------------

ValueId Tape::matmul(ValueId a, ValueId b) {
  Node n;
  n.op = Op::kMatmul;
  n.a = a;
  n.b = b;
  n.value = ag::matmul(node(a).value, node(b).value);
  n.needs_grad = any_needs_grad(a, b);
  return push(std::move(n));
}

ValueId Tape::add(ValueId a, ValueId b) {
  const Tensor& av = node(a).value;
  const Tensor& bv = node(b).value;
  RN_CHECK(av.same_shape(bv), "add shape mismatch");
  Node n;
  n.op = Op::kAdd;
  n.a = a;
  n.b = b;
  n.value = av;
  n.value.add_scaled(bv, 1.0f);
  n.needs_grad = any_needs_grad(a, b);
  return push(std::move(n));
}

ValueId Tape::sub(ValueId a, ValueId b) {
  const Tensor& av = node(a).value;
  const Tensor& bv = node(b).value;
  RN_CHECK(av.same_shape(bv), "sub shape mismatch");
  Node n;
  n.op = Op::kSub;
  n.a = a;
  n.b = b;
  n.value = av;
  n.value.add_scaled(bv, -1.0f);
  n.needs_grad = any_needs_grad(a, b);
  return push(std::move(n));
}

ValueId Tape::mul(ValueId a, ValueId b) {
  const Tensor& av = node(a).value;
  const Tensor& bv = node(b).value;
  RN_CHECK(av.same_shape(bv), "mul shape mismatch");
  Node n;
  n.op = Op::kMul;
  n.a = a;
  n.b = b;
  n.value = av;
  for (int i = 0; i < n.value.size(); ++i) {
    n.value[static_cast<std::size_t>(i)] *= bv[static_cast<std::size_t>(i)];
  }
  n.needs_grad = any_needs_grad(a, b);
  return push(std::move(n));
}

ValueId Tape::add_bias(ValueId m, ValueId bias) {
  const Tensor& mv = node(m).value;
  const Tensor& bv = node(bias).value;
  RN_CHECK(bv.rows() == 1 && bv.cols() == mv.cols(),
           "add_bias expects a 1×C bias matching the matrix columns");
  Node n;
  n.op = Op::kAddBias;
  n.a = m;
  n.b = bias;
  n.value = mv;
  for (int r = 0; r < mv.rows(); ++r) {
    float* row = n.value.row(r);
    for (int c = 0; c < mv.cols(); ++c) row[c] += bv.at(0, c);
  }
  n.needs_grad = any_needs_grad(m, bias);
  return push(std::move(n));
}

ValueId Tape::scale(ValueId a, float s) {
  Node n;
  n.op = Op::kScale;
  n.a = a;
  n.scalar = s;
  n.value = node(a).value;
  n.value.scale(s);
  n.needs_grad = any_needs_grad(a);
  return push(std::move(n));
}

ValueId Tape::scale_rows(ValueId a, std::vector<float> factors) {
  const Tensor& av = node(a).value;
  RN_CHECK(static_cast<int>(factors.size()) == av.rows(),
           "scale_rows: one factor per row");
  Node n;
  n.op = Op::kScaleRows;
  n.a = a;
  n.value = av;
  for (int r = 0; r < av.rows(); ++r) {
    float* row = n.value.row(r);
    const float f = factors[static_cast<std::size_t>(r)];
    for (int c = 0; c < av.cols(); ++c) row[c] *= f;
  }
  n.row_factors = std::move(factors);
  n.needs_grad = any_needs_grad(a);
  return push(std::move(n));
}

ValueId Tape::dropout(ValueId a, float rate, Rng& rng) {
  RN_CHECK(rate >= 0.0f && rate < 1.0f, "dropout rate must be in [0,1)");
  const Tensor& av = node(a).value;
  Node n;
  n.op = Op::kDropout;
  n.a = a;
  // Mask holds 0 or the inverted-dropout scale, so forward and backward are
  // both a plain elementwise multiply by it.
  n.aux_tensor = Tensor(av.rows(), av.cols());
  const float keep_scale = 1.0f / (1.0f - rate);
  for (int i = 0; i < av.size(); ++i) {
    n.aux_tensor[static_cast<std::size_t>(i)] =
        rng.bernoulli(static_cast<double>(rate)) ? 0.0f : keep_scale;
  }
  n.value = av;
  for (int i = 0; i < av.size(); ++i) {
    n.value[static_cast<std::size_t>(i)] *=
        n.aux_tensor[static_cast<std::size_t>(i)];
  }
  n.needs_grad = any_needs_grad(a);
  return push(std::move(n));
}

ValueId Tape::one_minus(ValueId a) {
  Node n;
  n.op = Op::kOneMinus;
  n.a = a;
  n.value = node(a).value;
  for (int i = 0; i < n.value.size(); ++i) {
    auto idx = static_cast<std::size_t>(i);
    n.value[idx] = 1.0f - n.value[idx];
  }
  n.needs_grad = any_needs_grad(a);
  return push(std::move(n));
}

// --- Nonlinearities --------------------------------------------------------------

ValueId Tape::sigmoid(ValueId a) {
  Node n;
  n.op = Op::kSigmoid;
  n.a = a;
  n.value = node(a).value;
  for (int i = 0; i < n.value.size(); ++i) {
    auto idx = static_cast<std::size_t>(i);
    n.value[idx] = 1.0f / (1.0f + std::exp(-n.value[idx]));
  }
  n.needs_grad = any_needs_grad(a);
  return push(std::move(n));
}

ValueId Tape::tanh(ValueId a) {
  Node n;
  n.op = Op::kTanh;
  n.a = a;
  n.value = node(a).value;
  for (int i = 0; i < n.value.size(); ++i) {
    auto idx = static_cast<std::size_t>(i);
    n.value[idx] = std::tanh(n.value[idx]);
  }
  n.needs_grad = any_needs_grad(a);
  return push(std::move(n));
}

ValueId Tape::relu(ValueId a) {
  Node n;
  n.op = Op::kRelu;
  n.a = a;
  n.value = node(a).value;
  for (int i = 0; i < n.value.size(); ++i) {
    auto idx = static_cast<std::size_t>(i);
    if (n.value[idx] < 0.0f) n.value[idx] = 0.0f;
  }
  n.needs_grad = any_needs_grad(a);
  return push(std::move(n));
}

// --- Shape ops --------------------------------------------------------------------

ValueId Tape::concat_cols(ValueId a, ValueId b) {
  const Tensor& av = node(a).value;
  const Tensor& bv = node(b).value;
  RN_CHECK(av.rows() == bv.rows(), "concat_cols row mismatch");
  Node n;
  n.op = Op::kConcatCols;
  n.a = a;
  n.b = b;
  n.aux0 = av.cols();
  n.value = Tensor(av.rows(), av.cols() + bv.cols());
  for (int r = 0; r < av.rows(); ++r) {
    float* out = n.value.row(r);
    const float* ra = av.row(r);
    const float* rb = bv.row(r);
    for (int c = 0; c < av.cols(); ++c) out[c] = ra[c];
    for (int c = 0; c < bv.cols(); ++c) out[av.cols() + c] = rb[c];
  }
  n.needs_grad = any_needs_grad(a, b);
  return push(std::move(n));
}

ValueId Tape::concat_rows(const std::vector<ValueId>& xs) {
  RN_CHECK(!xs.empty(), "concat_rows of no blocks");
  const int cols = node(xs.front()).value.cols();
  int rows = 0;
  bool needs = false;
  for (ValueId x : xs) {
    const Node& nx = node(x);
    RN_CHECK(nx.value.cols() == cols, "concat_rows column mismatch");
    rows += nx.value.rows();
    needs = needs || nx.needs_grad;
  }
  Node n;
  n.op = Op::kConcatRows;
  n.srcs = xs;
  n.value = Tensor(rows, cols);
  int r0 = 0;
  for (ValueId x : xs) {
    const Tensor& xv = node(x).value;
    for (int r = 0; r < xv.rows(); ++r) {
      float* out = n.value.row(r0 + r);
      const float* in = xv.row(r);
      for (int c = 0; c < cols; ++c) out[c] = in[c];
    }
    r0 += xv.rows();
  }
  n.needs_grad = needs;
  return push(std::move(n));
}

ValueId Tape::slice_cols(ValueId a, int c0, int c1) {
  const Tensor& av = node(a).value;
  RN_CHECK(0 <= c0 && c0 < c1 && c1 <= av.cols(), "slice_cols bounds");
  Node n;
  n.op = Op::kSliceCols;
  n.a = a;
  n.aux0 = c0;
  n.aux1 = c1;
  n.value = Tensor(av.rows(), c1 - c0);
  for (int r = 0; r < av.rows(); ++r) {
    const float* in = av.row(r);
    float* out = n.value.row(r);
    for (int c = c0; c < c1; ++c) out[c - c0] = in[c];
  }
  n.needs_grad = any_needs_grad(a);
  return push(std::move(n));
}

// --- Graph-indexing ops --------------------------------------------------------------

ValueId Tape::gather_rows(ValueId a, std::vector<int> idx) {
  const Tensor& av = node(a).value;
  for (int i : idx) {
    RN_CHECK(i >= 0 && i < av.rows(), "gather_rows index out of range");
  }
  Node n;
  n.op = Op::kGatherRows;
  n.a = a;
  n.value = Tensor(static_cast<int>(idx.size()), av.cols());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const float* in = av.row(idx[i]);
    float* out = n.value.row(static_cast<int>(i));
    for (int c = 0; c < av.cols(); ++c) out[c] = in[c];
  }
  n.idx = std::move(idx);
  n.needs_grad = any_needs_grad(a);
  return push(std::move(n));
}

ValueId Tape::scatter_rows(ValueId base, std::vector<int> idx, ValueId rows) {
  const Tensor& bv = node(base).value;
  const Tensor& rv = node(rows).value;
  RN_CHECK(rv.rows() == static_cast<int>(idx.size()),
           "scatter_rows: idx size must match rows count");
  RN_CHECK(rv.cols() == bv.cols(), "scatter_rows column mismatch");
  std::vector<bool> seen(static_cast<std::size_t>(bv.rows()), false);
  for (int i : idx) {
    RN_CHECK(i >= 0 && i < bv.rows(), "scatter_rows index out of range");
    RN_CHECK(!seen[static_cast<std::size_t>(i)],
             "scatter_rows indices must be unique");
    seen[static_cast<std::size_t>(i)] = true;
  }
  Node n;
  n.op = Op::kScatterRows;
  n.a = base;
  n.b = rows;
  n.value = bv;
  for (std::size_t i = 0; i < idx.size(); ++i) {
    float* out = n.value.row(idx[i]);
    const float* in = rv.row(static_cast<int>(i));
    for (int c = 0; c < bv.cols(); ++c) out[c] = in[c];
  }
  n.idx = std::move(idx);
  n.needs_grad = any_needs_grad(base, rows);
  return push(std::move(n));
}

ValueId Tape::segment_sum(ValueId a, std::vector<int> seg, int num_segments) {
  const Tensor& av = node(a).value;
  RN_CHECK(static_cast<int>(seg.size()) == av.rows(),
           "segment_sum: one segment id per row");
  for (int s : seg) {
    RN_CHECK(s >= 0 && s < num_segments, "segment id out of range");
  }
  Node n;
  n.op = Op::kSegmentSum;
  n.a = a;
  n.aux0 = num_segments;
  n.value = Tensor(num_segments, av.cols());
  for (std::size_t i = 0; i < seg.size(); ++i) {
    float* out = n.value.row(seg[i]);
    const float* in = av.row(static_cast<int>(i));
    for (int c = 0; c < av.cols(); ++c) out[c] += in[c];
  }
  n.idx = std::move(seg);
  n.needs_grad = any_needs_grad(a);
  return push(std::move(n));
}

// --- Reductions & losses ----------------------------------------------------------------

ValueId Tape::reduce_sum(ValueId a) {
  const Tensor& av = node(a).value;
  Node n;
  n.op = Op::kReduceSum;
  n.a = a;
  double acc = 0.0;
  for (int i = 0; i < av.size(); ++i) acc += av[static_cast<std::size_t>(i)];
  n.value = Tensor::scalar(static_cast<float>(acc));
  n.needs_grad = any_needs_grad(a);
  return push(std::move(n));
}

ValueId Tape::reduce_mean(ValueId a) {
  const Tensor& av = node(a).value;
  RN_CHECK(av.size() > 0, "reduce_mean of empty tensor");
  Node n;
  n.op = Op::kReduceMean;
  n.a = a;
  double acc = 0.0;
  for (int i = 0; i < av.size(); ++i) acc += av[static_cast<std::size_t>(i)];
  n.value = Tensor::scalar(static_cast<float>(acc / av.size()));
  n.needs_grad = any_needs_grad(a);
  return push(std::move(n));
}

ValueId Tape::mse(ValueId pred, const Tensor& target) {
  const Tensor& pv = node(pred).value;
  RN_CHECK(pv.same_shape(target), "mse shape mismatch");
  RN_CHECK(pv.size() > 0, "mse of empty tensor");
  Node n;
  n.op = Op::kMse;
  n.a = pred;
  n.aux_tensor = target;
  double acc = 0.0;
  for (int i = 0; i < pv.size(); ++i) {
    auto idx = static_cast<std::size_t>(i);
    const double d = static_cast<double>(pv[idx]) - target[idx];
    acc += d * d;
  }
  n.value = Tensor::scalar(static_cast<float>(acc / pv.size()));
  n.needs_grad = any_needs_grad(pred);
  return push(std::move(n));
}

ValueId Tape::mae(ValueId pred, const Tensor& target) {
  const Tensor& pv = node(pred).value;
  RN_CHECK(pv.same_shape(target), "mae shape mismatch");
  RN_CHECK(pv.size() > 0, "mae of empty tensor");
  Node n;
  n.op = Op::kMae;
  n.a = pred;
  n.aux_tensor = target;
  double acc = 0.0;
  for (int i = 0; i < pv.size(); ++i) {
    auto idx = static_cast<std::size_t>(i);
    acc += std::abs(static_cast<double>(pv[idx]) - target[idx]);
  }
  n.value = Tensor::scalar(static_cast<float>(acc / pv.size()));
  n.needs_grad = any_needs_grad(pred);
  return push(std::move(n));
}

ValueId Tape::huber(ValueId pred, const Tensor& target, float delta) {
  const Tensor& pv = node(pred).value;
  RN_CHECK(pv.same_shape(target), "huber shape mismatch");
  RN_CHECK(pv.size() > 0, "huber of empty tensor");
  RN_CHECK(delta > 0.0f, "huber delta must be positive");
  Node n;
  n.op = Op::kHuber;
  n.a = pred;
  n.aux_tensor = target;
  n.scalar = delta;
  double acc = 0.0;
  for (int i = 0; i < pv.size(); ++i) {
    auto idx = static_cast<std::size_t>(i);
    const double d = std::abs(static_cast<double>(pv[idx]) - target[idx]);
    acc += d <= delta ? 0.5 * d * d : delta * (d - 0.5 * delta);
  }
  n.value = Tensor::scalar(static_cast<float>(acc / pv.size()));
  n.needs_grad = any_needs_grad(pred);
  return push(std::move(n));
}

// --- Execution --------------------------------------------------------------------------

const Tensor& Tape::value(ValueId id) const { return node(id).value; }

const Tensor& Tape::grad(ValueId id) const {
  const Node& n = node(id);
  return n.grad.empty() ? empty_tensor() : n.grad;
}

void Tape::backward(ValueId root) {
  obs::TraceSpan span("ag.backward");
  Node& r = node(root);
  RN_CHECK(r.value.rows() == 1 && r.value.cols() == 1,
           "backward root must be a 1×1 scalar");
  // Reset per-node gradients from any previous backward on this tape.
  for (Node& n : nodes_) {
    if (!n.grad.empty()) n.grad.fill(0.0f);
  }
  grad_buffer(root).at(0, 0) = 1.0f;
  for (ValueId id = root; id >= 0; --id) {
    const Node& n = node(id);
    if (!n.needs_grad || n.grad.empty()) continue;
    backward_node(id);
  }
}

void Tape::backward_node(ValueId id) {
  Node& n = node(id);
  const Tensor& g = n.grad;
  auto propagate = [&](ValueId src) -> Tensor* {
    if (src == kInvalidValue) return nullptr;
    if (!node(src).needs_grad) return nullptr;
    return &grad_buffer(src);
  };

  switch (n.op) {
    case Op::kConstant:
      break;
    case Op::kParam:
      RN_CHECK(n.parameter != nullptr, "param node without Parameter");
      n.parameter->grad.add_scaled(g, 1.0f);
      break;
    case Op::kMatmul: {
      if (Tensor* ga = propagate(n.a)) {
        ga->add_scaled(matmul_nt(g, node(n.b).value), 1.0f);
      }
      if (Tensor* gb = propagate(n.b)) {
        gb->add_scaled(matmul_tn(node(n.a).value, g), 1.0f);
      }
      break;
    }
    case Op::kAdd: {
      if (Tensor* ga = propagate(n.a)) ga->add_scaled(g, 1.0f);
      if (Tensor* gb = propagate(n.b)) gb->add_scaled(g, 1.0f);
      break;
    }
    case Op::kSub: {
      if (Tensor* ga = propagate(n.a)) ga->add_scaled(g, 1.0f);
      if (Tensor* gb = propagate(n.b)) gb->add_scaled(g, -1.0f);
      break;
    }
    case Op::kMul: {
      const Tensor& av = node(n.a).value;
      const Tensor& bv = node(n.b).value;
      if (Tensor* ga = propagate(n.a)) {
        for (int i = 0; i < g.size(); ++i) {
          auto k = static_cast<std::size_t>(i);
          (*ga)[k] += g[k] * bv[k];
        }
      }
      if (Tensor* gb = propagate(n.b)) {
        for (int i = 0; i < g.size(); ++i) {
          auto k = static_cast<std::size_t>(i);
          (*gb)[k] += g[k] * av[k];
        }
      }
      break;
    }
    case Op::kAddBias: {
      if (Tensor* ga = propagate(n.a)) ga->add_scaled(g, 1.0f);
      if (Tensor* gb = propagate(n.b)) {
        for (int r = 0; r < g.rows(); ++r) {
          const float* grow = g.row(r);
          for (int c = 0; c < g.cols(); ++c) gb->at(0, c) += grow[c];
        }
      }
      break;
    }
    case Op::kScale: {
      if (Tensor* ga = propagate(n.a)) ga->add_scaled(g, n.scalar);
      break;
    }
    case Op::kDropout: {
      if (Tensor* ga = propagate(n.a)) {
        for (int i = 0; i < g.size(); ++i) {
          auto k = static_cast<std::size_t>(i);
          (*ga)[k] += g[k] * n.aux_tensor[k];
        }
      }
      break;
    }
    case Op::kScaleRows: {
      if (Tensor* ga = propagate(n.a)) {
        for (int r = 0; r < g.rows(); ++r) {
          const float f = n.row_factors[static_cast<std::size_t>(r)];
          const float* grow = g.row(r);
          float* out = ga->row(r);
          for (int c = 0; c < g.cols(); ++c) out[c] += grow[c] * f;
        }
      }
      break;
    }
    case Op::kOneMinus: {
      if (Tensor* ga = propagate(n.a)) ga->add_scaled(g, -1.0f);
      break;
    }
    case Op::kSigmoid: {
      if (Tensor* ga = propagate(n.a)) {
        for (int i = 0; i < g.size(); ++i) {
          auto k = static_cast<std::size_t>(i);
          const float y = n.value[k];
          (*ga)[k] += g[k] * y * (1.0f - y);
        }
      }
      break;
    }
    case Op::kTanh: {
      if (Tensor* ga = propagate(n.a)) {
        for (int i = 0; i < g.size(); ++i) {
          auto k = static_cast<std::size_t>(i);
          const float y = n.value[k];
          (*ga)[k] += g[k] * (1.0f - y * y);
        }
      }
      break;
    }
    case Op::kRelu: {
      if (Tensor* ga = propagate(n.a)) {
        for (int i = 0; i < g.size(); ++i) {
          auto k = static_cast<std::size_t>(i);
          if (n.value[k] > 0.0f) (*ga)[k] += g[k];
        }
      }
      break;
    }
    case Op::kConcatCols: {
      const int ac = n.aux0;
      if (Tensor* ga = propagate(n.a)) {
        for (int r = 0; r < g.rows(); ++r) {
          const float* grow = g.row(r);
          float* out = ga->row(r);
          for (int c = 0; c < ac; ++c) out[c] += grow[c];
        }
      }
      if (Tensor* gb = propagate(n.b)) {
        for (int r = 0; r < g.rows(); ++r) {
          const float* grow = g.row(r);
          float* out = gb->row(r);
          for (int c = 0; c < gb->cols(); ++c) out[c] += grow[ac + c];
        }
      }
      break;
    }
    case Op::kConcatRows: {
      int r0 = 0;
      for (ValueId src : n.srcs) {
        const int rows = node(src).value.rows();
        if (node(src).needs_grad) {
          Tensor& gs = grad_buffer(src);
          for (int r = 0; r < rows; ++r) {
            const float* grow = g.row(r0 + r);
            float* out = gs.row(r);
            for (int c = 0; c < g.cols(); ++c) out[c] += grow[c];
          }
        }
        r0 += rows;
      }
      break;
    }
    case Op::kSliceCols: {
      if (Tensor* ga = propagate(n.a)) {
        for (int r = 0; r < g.rows(); ++r) {
          const float* grow = g.row(r);
          float* out = ga->row(r);
          for (int c = 0; c < g.cols(); ++c) out[n.aux0 + c] += grow[c];
        }
      }
      break;
    }
    case Op::kGatherRows: {
      if (Tensor* ga = propagate(n.a)) {
        for (std::size_t i = 0; i < n.idx.size(); ++i) {
          const float* grow = g.row(static_cast<int>(i));
          float* out = ga->row(n.idx[i]);
          for (int c = 0; c < g.cols(); ++c) out[c] += grow[c];
        }
      }
      break;
    }
    case Op::kScatterRows: {
      if (Tensor* ga = propagate(n.a)) {
        // Base contributes everywhere except the overwritten rows.
        std::vector<bool> overwritten(static_cast<std::size_t>(g.rows()),
                                      false);
        for (int i : n.idx) overwritten[static_cast<std::size_t>(i)] = true;
        for (int r = 0; r < g.rows(); ++r) {
          if (overwritten[static_cast<std::size_t>(r)]) continue;
          const float* grow = g.row(r);
          float* out = ga->row(r);
          for (int c = 0; c < g.cols(); ++c) out[c] += grow[c];
        }
      }
      if (n.b != kInvalidValue && node(n.b).needs_grad) {
        Tensor& gb = grad_buffer(n.b);
        for (std::size_t i = 0; i < n.idx.size(); ++i) {
          const float* grow = g.row(n.idx[i]);
          float* out = gb.row(static_cast<int>(i));
          for (int c = 0; c < g.cols(); ++c) out[c] += grow[c];
        }
      }
      break;
    }
    case Op::kSegmentSum: {
      if (Tensor* ga = propagate(n.a)) {
        for (std::size_t i = 0; i < n.idx.size(); ++i) {
          const float* grow = g.row(n.idx[i]);
          float* out = ga->row(static_cast<int>(i));
          for (int c = 0; c < g.cols(); ++c) out[c] += grow[c];
        }
      }
      break;
    }
    case Op::kReduceSum: {
      if (Tensor* ga = propagate(n.a)) {
        const float gv = g.at(0, 0);
        for (int i = 0; i < ga->size(); ++i) {
          (*ga)[static_cast<std::size_t>(i)] += gv;
        }
      }
      break;
    }
    case Op::kReduceMean: {
      if (Tensor* ga = propagate(n.a)) {
        const float gv = g.at(0, 0) / static_cast<float>(ga->size());
        for (int i = 0; i < ga->size(); ++i) {
          (*ga)[static_cast<std::size_t>(i)] += gv;
        }
      }
      break;
    }
    case Op::kMse: {
      if (Tensor* ga = propagate(n.a)) {
        const Tensor& pv = node(n.a).value;
        const float gv =
            g.at(0, 0) * 2.0f / static_cast<float>(pv.size());
        for (int i = 0; i < pv.size(); ++i) {
          auto k = static_cast<std::size_t>(i);
          (*ga)[k] += gv * (pv[k] - n.aux_tensor[k]);
        }
      }
      break;
    }
    case Op::kMae: {
      if (Tensor* ga = propagate(n.a)) {
        const Tensor& pv = node(n.a).value;
        const float gv = g.at(0, 0) / static_cast<float>(pv.size());
        for (int i = 0; i < pv.size(); ++i) {
          auto k = static_cast<std::size_t>(i);
          const float d = pv[k] - n.aux_tensor[k];
          (*ga)[k] += d > 0.0f ? gv : (d < 0.0f ? -gv : 0.0f);
        }
      }
      break;
    }
    case Op::kHuber: {
      if (Tensor* ga = propagate(n.a)) {
        const Tensor& pv = node(n.a).value;
        const float gv = g.at(0, 0) / static_cast<float>(pv.size());
        const float delta = n.scalar;
        for (int i = 0; i < pv.size(); ++i) {
          auto k = static_cast<std::size_t>(i);
          const float d = pv[k] - n.aux_tensor[k];
          if (d > delta) {
            (*ga)[k] += gv * delta;
          } else if (d < -delta) {
            (*ga)[k] -= gv * delta;
          } else {
            (*ga)[k] += gv * d;
          }
        }
      }
      break;
    }
  }
}

}  // namespace rn::ag
