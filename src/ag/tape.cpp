#include "ag/tape.h"

#include <cmath>
#include <cstring>

#include "ag/kernels.h"
#include "obs/trace.h"

namespace rn::ag {

namespace {

// Shared scratch returned by grad() for nodes that never received gradient.
const Tensor& empty_tensor() {
  static const Tensor t;
  return t;
}

}  // namespace

ValueId Tape::push(Node n) {
  nodes_.push_back(std::move(n));
  return static_cast<ValueId>(nodes_.size() - 1);
}

Tape::Node& Tape::node(ValueId id) {
  RN_CHECK(id >= 0 && id < static_cast<ValueId>(nodes_.size()),
           "invalid ValueId");
  return nodes_[static_cast<std::size_t>(id)];
}

const Tape::Node& Tape::node(ValueId id) const {
  RN_CHECK(id >= 0 && id < static_cast<ValueId>(nodes_.size()),
           "invalid ValueId");
  return nodes_[static_cast<std::size_t>(id)];
}

bool Tape::any_needs_grad(ValueId a, ValueId b) const {
  if (a != kInvalidValue && node(a).needs_grad) return true;
  if (b != kInvalidValue && node(b).needs_grad) return true;
  return false;
}

Tensor& Tape::grad_buffer(ValueId id) {
  Node& n = node(id);
  if (n.grad.empty() && n.value.size() > 0) {
    n.grad = Tensor(n.value.rows(), n.value.cols());
  }
  return n.grad;
}

// --- Leaves ------------------------------------------------------------------

ValueId Tape::constant(Tensor t) {
  Node n;
  n.op = Op::kConstant;
  n.value = std::move(t);
  n.needs_grad = false;
  return push(std::move(n));
}

ValueId Tape::param(Parameter& p) {
  Node n;
  n.op = Op::kParam;
  n.value = p.value;  // copy: tape must stay valid if the optimizer steps
  n.needs_grad = true;
  n.parameter = &p;
  return push(std::move(n));
}

// --- Dense algebra -------------------------------------------------------------

ValueId Tape::matmul(ValueId a, ValueId b) {
  Node n;
  n.op = Op::kMatmul;
  n.a = a;
  n.b = b;
  n.value = ag::matmul(node(a).value, node(b).value);
  n.needs_grad = any_needs_grad(a, b);
  return push(std::move(n));
}

ValueId Tape::add(ValueId a, ValueId b) {
  const Tensor& av = node(a).value;
  const Tensor& bv = node(b).value;
  RN_CHECK(av.same_shape(bv), "add shape mismatch");
  Node n;
  n.op = Op::kAdd;
  n.a = a;
  n.b = b;
  n.value = av;
  n.value.add_scaled(bv, 1.0f);
  n.needs_grad = any_needs_grad(a, b);
  return push(std::move(n));
}

ValueId Tape::sub(ValueId a, ValueId b) {
  const Tensor& av = node(a).value;
  const Tensor& bv = node(b).value;
  RN_CHECK(av.same_shape(bv), "sub shape mismatch");
  Node n;
  n.op = Op::kSub;
  n.a = a;
  n.b = b;
  n.value = av;
  n.value.add_scaled(bv, -1.0f);
  n.needs_grad = any_needs_grad(a, b);
  return push(std::move(n));
}

ValueId Tape::mul(ValueId a, ValueId b) {
  const Tensor& av = node(a).value;
  const Tensor& bv = node(b).value;
  RN_CHECK(av.same_shape(bv), "mul shape mismatch");
  Node n;
  n.op = Op::kMul;
  n.a = a;
  n.b = b;
  n.value = av;
  kern::active().mul_inplace(n.value.data(), bv.data(),
                             static_cast<std::size_t>(n.value.size()));
  n.needs_grad = any_needs_grad(a, b);
  return push(std::move(n));
}

ValueId Tape::add_bias(ValueId m, ValueId bias) {
  const Tensor& mv = node(m).value;
  const Tensor& bv = node(bias).value;
  RN_CHECK(bv.rows() == 1 && bv.cols() == mv.cols(),
           "add_bias expects a 1×C bias matching the matrix columns");
  Node n;
  n.op = Op::kAddBias;
  n.a = m;
  n.b = bias;
  n.value = mv;
  kern::active().add_bias_rows(n.value.data(), bv.data(), mv.rows(),
                               mv.cols());
  n.needs_grad = any_needs_grad(m, bias);
  return push(std::move(n));
}

ValueId Tape::scale(ValueId a, float s) {
  Node n;
  n.op = Op::kScale;
  n.a = a;
  n.scalar = s;
  n.value = node(a).value;
  n.value.scale(s);
  n.needs_grad = any_needs_grad(a);
  return push(std::move(n));
}

ValueId Tape::scale_rows(ValueId a, std::vector<float> factors) {
  const Tensor& av = node(a).value;
  RN_CHECK(static_cast<int>(factors.size()) == av.rows(),
           "scale_rows: one factor per row");
  Node n;
  n.op = Op::kScaleRows;
  n.a = a;
  n.value = av;
  kern::active().scale_rows(n.value.data(), factors.data(), av.rows(),
                            av.cols());
  n.row_factors = std::move(factors);
  n.needs_grad = any_needs_grad(a);
  return push(std::move(n));
}

ValueId Tape::dropout(ValueId a, float rate, Rng& rng) {
  RN_CHECK(rate >= 0.0f && rate < 1.0f, "dropout rate must be in [0,1)");
  const Tensor& av = node(a).value;
  Node n;
  n.op = Op::kDropout;
  n.a = a;
  // Mask holds 0 or the inverted-dropout scale, so forward and backward are
  // both a plain elementwise multiply by it.
  n.aux_tensor = Tensor(av.rows(), av.cols());
  const float keep_scale = 1.0f / (1.0f - rate);
  for (int i = 0; i < av.size(); ++i) {
    n.aux_tensor[static_cast<std::size_t>(i)] =
        rng.bernoulli(static_cast<double>(rate)) ? 0.0f : keep_scale;
  }
  n.value = av;
  for (int i = 0; i < av.size(); ++i) {
    n.value[static_cast<std::size_t>(i)] *=
        n.aux_tensor[static_cast<std::size_t>(i)];
  }
  n.needs_grad = any_needs_grad(a);
  return push(std::move(n));
}

ValueId Tape::one_minus(ValueId a) {
  Node n;
  n.op = Op::kOneMinus;
  n.a = a;
  n.value = node(a).value;
  for (int i = 0; i < n.value.size(); ++i) {
    auto idx = static_cast<std::size_t>(i);
    n.value[idx] = 1.0f - n.value[idx];
  }
  n.needs_grad = any_needs_grad(a);
  return push(std::move(n));
}

// --- Nonlinearities --------------------------------------------------------------

ValueId Tape::sigmoid(ValueId a) {
  Node n;
  n.op = Op::kSigmoid;
  n.a = a;
  n.value = node(a).value;
  for (int i = 0; i < n.value.size(); ++i) {
    auto idx = static_cast<std::size_t>(i);
    n.value[idx] = 1.0f / (1.0f + std::exp(-n.value[idx]));
  }
  n.needs_grad = any_needs_grad(a);
  return push(std::move(n));
}

ValueId Tape::tanh(ValueId a) {
  Node n;
  n.op = Op::kTanh;
  n.a = a;
  n.value = node(a).value;
  for (int i = 0; i < n.value.size(); ++i) {
    auto idx = static_cast<std::size_t>(i);
    n.value[idx] = std::tanh(n.value[idx]);
  }
  n.needs_grad = any_needs_grad(a);
  return push(std::move(n));
}

ValueId Tape::relu(ValueId a) {
  Node n;
  n.op = Op::kRelu;
  n.a = a;
  n.value = node(a).value;
  for (int i = 0; i < n.value.size(); ++i) {
    auto idx = static_cast<std::size_t>(i);
    if (n.value[idx] < 0.0f) n.value[idx] = 0.0f;
  }
  n.needs_grad = any_needs_grad(a);
  return push(std::move(n));
}

// --- Shape ops --------------------------------------------------------------------

ValueId Tape::concat_cols(ValueId a, ValueId b) {
  const Tensor& av = node(a).value;
  const Tensor& bv = node(b).value;
  RN_CHECK(av.rows() == bv.rows(), "concat_cols row mismatch");
  Node n;
  n.op = Op::kConcatCols;
  n.a = a;
  n.b = b;
  n.aux0 = av.cols();
  n.value = Tensor(av.rows(), av.cols() + bv.cols());
  for (int r = 0; r < av.rows(); ++r) {
    float* out = n.value.row(r);
    const float* ra = av.row(r);
    const float* rb = bv.row(r);
    for (int c = 0; c < av.cols(); ++c) out[c] = ra[c];
    for (int c = 0; c < bv.cols(); ++c) out[av.cols() + c] = rb[c];
  }
  n.needs_grad = any_needs_grad(a, b);
  return push(std::move(n));
}

ValueId Tape::concat_rows(const std::vector<ValueId>& xs) {
  RN_CHECK(!xs.empty(), "concat_rows of no blocks");
  const int cols = node(xs.front()).value.cols();
  int rows = 0;
  bool needs = false;
  for (ValueId x : xs) {
    const Node& nx = node(x);
    RN_CHECK(nx.value.cols() == cols, "concat_rows column mismatch");
    rows += nx.value.rows();
    needs = needs || nx.needs_grad;
  }
  Node n;
  n.op = Op::kConcatRows;
  n.srcs = xs;
  n.value = Tensor(rows, cols);
  int r0 = 0;
  for (ValueId x : xs) {
    const Tensor& xv = node(x).value;
    for (int r = 0; r < xv.rows(); ++r) {
      float* out = n.value.row(r0 + r);
      const float* in = xv.row(r);
      for (int c = 0; c < cols; ++c) out[c] = in[c];
    }
    r0 += xv.rows();
  }
  n.needs_grad = needs;
  return push(std::move(n));
}

ValueId Tape::slice_cols(ValueId a, int c0, int c1) {
  const Tensor& av = node(a).value;
  RN_CHECK(0 <= c0 && c0 < c1 && c1 <= av.cols(), "slice_cols bounds");
  Node n;
  n.op = Op::kSliceCols;
  n.a = a;
  n.aux0 = c0;
  n.aux1 = c1;
  n.value = Tensor(av.rows(), c1 - c0);
  for (int r = 0; r < av.rows(); ++r) {
    const float* in = av.row(r);
    float* out = n.value.row(r);
    for (int c = c0; c < c1; ++c) out[c - c0] = in[c];
  }
  n.needs_grad = any_needs_grad(a);
  return push(std::move(n));
}

// --- Graph-indexing ops --------------------------------------------------------------

ValueId Tape::gather_rows(ValueId a, std::vector<int> idx) {
  const Tensor& av = node(a).value;
  for (int i : idx) {
    RN_CHECK(i >= 0 && i < av.rows(), "gather_rows index out of range");
  }
  Node n;
  n.op = Op::kGatherRows;
  n.a = a;
  n.value = Tensor(static_cast<int>(idx.size()), av.cols());
  kern::active().gather_rows(av.data(), idx.data(),
                             static_cast<int>(idx.size()), av.cols(),
                             n.value.data());
  n.idx = std::move(idx);
  n.needs_grad = any_needs_grad(a);
  return push(std::move(n));
}

ValueId Tape::scatter_rows(ValueId base, std::vector<int> idx, ValueId rows) {
  const Tensor& bv = node(base).value;
  const Tensor& rv = node(rows).value;
  RN_CHECK(rv.rows() == static_cast<int>(idx.size()),
           "scatter_rows: idx size must match rows count");
  RN_CHECK(rv.cols() == bv.cols(), "scatter_rows column mismatch");
  std::vector<bool> seen(static_cast<std::size_t>(bv.rows()), false);
  for (int i : idx) {
    RN_CHECK(i >= 0 && i < bv.rows(), "scatter_rows index out of range");
    RN_CHECK(!seen[static_cast<std::size_t>(i)],
             "scatter_rows indices must be unique");
    seen[static_cast<std::size_t>(i)] = true;
  }
  Node n;
  n.op = Op::kScatterRows;
  n.a = base;
  n.b = rows;
  n.value = bv;
  kern::active().scatter_rows(n.value.data(), idx.data(),
                              static_cast<int>(idx.size()), bv.cols(),
                              rv.data());
  n.idx = std::move(idx);
  n.needs_grad = any_needs_grad(base, rows);
  return push(std::move(n));
}

ValueId Tape::segment_sum(ValueId a, std::vector<int> seg, int num_segments) {
  const Tensor& av = node(a).value;
  RN_CHECK(static_cast<int>(seg.size()) == av.rows(),
           "segment_sum: one segment id per row");
  for (int s : seg) {
    RN_CHECK(s >= 0 && s < num_segments, "segment id out of range");
  }
  Node n;
  n.op = Op::kSegmentSum;
  n.a = a;
  n.aux0 = num_segments;
  n.value = Tensor(num_segments, av.cols());
  kern::active().indexed_row_add(n.value.data(), seg.data(),
                                 static_cast<int>(seg.size()), av.cols(),
                                 av.data());
  n.idx = std::move(seg);
  n.needs_grad = any_needs_grad(a);
  return push(std::move(n));
}

// --- Fused ops ---------------------------------------------------------------------------

ValueId Tape::gru_step(ValueId x, ValueId h, const GruWeights& w) {
  return gru_step_impl(x, h, w, {}, {});
}

ValueId Tape::gru_step_gathered(ValueId x_src, std::vector<int> x_idx,
                                ValueId h_src, std::vector<int> h_idx,
                                const GruWeights& w) {
  RN_CHECK(x_idx.size() == h_idx.size(),
           "gru_step_gathered: one x row per h row");
  const Tensor& xs = node(x_src).value;
  const Tensor& hs = node(h_src).value;
  for (int i : x_idx) {
    RN_CHECK(i >= 0 && i < xs.rows(), "gru_step x index out of range");
  }
  for (int i : h_idx) {
    RN_CHECK(i >= 0 && i < hs.rows(), "gru_step h index out of range");
  }
  return gru_step_impl(x_src, h_src, w, std::move(x_idx), std::move(h_idx));
}

// The forward replicates the composed GruCell::step arithmetic exactly:
// each gate is matmul + matmul, elementwise sum, broadcast bias add, then
// the pointwise nonlinearity — the same per-element operation sequence the
// separate tape nodes performed, so the fused value is bitwise identical.
// The two matmuls per gate stay separate (summing the second result into
// the first, not accumulating into one buffer) because that is the rounding
// order the composed kAdd node produced.
ValueId Tape::gru_step_impl(ValueId a, ValueId b, const GruWeights& w,
                            std::vector<int> x_idx, std::vector<int> h_idx) {
  RN_CHECK(w.wz && w.uz && w.bz && w.wr && w.ur && w.br && w.wh && w.uh &&
               w.bh,
           "gru_step: incomplete GruWeights");
  const kern::Ops& K = kern::active();
  Node n;
  n.op = Op::kGruStep;
  n.a = a;
  n.b = b;
  n.gru = std::make_unique<GruAux>();
  GruAux& A = *n.gru;
  A.w = w;
  if (!x_idx.empty()) {
    const Tensor& src = node(a).value;
    A.xg = Tensor(static_cast<int>(x_idx.size()), src.cols());
    K.gather_rows(src.data(), x_idx.data(), static_cast<int>(x_idx.size()),
                  src.cols(), A.xg.data());
    A.x_idx = std::move(x_idx);
  }
  if (!h_idx.empty()) {
    const Tensor& src = node(b).value;
    A.hg = Tensor(static_cast<int>(h_idx.size()), src.cols());
    K.gather_rows(src.data(), h_idx.data(), static_cast<int>(h_idx.size()),
                  src.cols(), A.hg.data());
    A.h_idx = std::move(h_idx);
  }
  const Tensor& x = A.x_idx.empty() ? node(a).value : A.xg;
  const Tensor& h = A.h_idx.empty() ? node(b).value : A.hg;
  RN_CHECK(x.rows() == h.rows(), "gru_step row mismatch");
  RN_CHECK(x.cols() == w.wz->value.rows() && h.cols() == w.uz->value.rows(),
           "gru_step input dims do not match weights");
  const int rows = h.rows(), cols = w.wz->value.cols();
  const auto count = static_cast<std::size_t>(rows) * cols;

  auto gate = [&](const Tensor& in, const Parameter& wp, const Parameter& up,
                  const Parameter& bp) {
    Tensor pre = ag::matmul(x, wp.value);
    pre.add_scaled(ag::matmul(in, up.value), 1.0f);
    K.add_bias_rows(pre.data(), bp.value.data(), rows, cols);
    return pre;
  };

  A.z = gate(h, *w.wz, *w.uz, *w.bz);
  kern::sigmoid_inplace(A.z.data(), count);
  A.r = gate(h, *w.wr, *w.ur, *w.br);
  kern::sigmoid_inplace(A.r.data(), count);
  Tensor rh = A.r;
  K.mul_inplace(rh.data(), h.data(), count);
  A.hc = gate(rh, *w.wh, *w.uh, *w.bh);
  kern::tanh_inplace(A.hc.data(), count);

  n.value = Tensor(rows, cols);
  K.gru_blend(A.z.data(), h.data(), A.hc.data(), n.value.data(), count);
  // Parameters are always trainable, so the node unconditionally carries
  // gradient (inference tapes simply never call backward()).
  n.needs_grad = true;
  return push(std::move(n));
}

// --- Reductions & losses ----------------------------------------------------------------

ValueId Tape::reduce_sum(ValueId a) {
  const Tensor& av = node(a).value;
  Node n;
  n.op = Op::kReduceSum;
  n.a = a;
  double acc = 0.0;
  for (int i = 0; i < av.size(); ++i) acc += av[static_cast<std::size_t>(i)];
  n.value = Tensor::scalar(static_cast<float>(acc));
  n.needs_grad = any_needs_grad(a);
  return push(std::move(n));
}

ValueId Tape::reduce_mean(ValueId a) {
  const Tensor& av = node(a).value;
  RN_CHECK(av.size() > 0, "reduce_mean of empty tensor");
  Node n;
  n.op = Op::kReduceMean;
  n.a = a;
  double acc = 0.0;
  for (int i = 0; i < av.size(); ++i) acc += av[static_cast<std::size_t>(i)];
  n.value = Tensor::scalar(static_cast<float>(acc / av.size()));
  n.needs_grad = any_needs_grad(a);
  return push(std::move(n));
}

ValueId Tape::mse(ValueId pred, const Tensor& target) {
  const Tensor& pv = node(pred).value;
  RN_CHECK(pv.same_shape(target), "mse shape mismatch");
  RN_CHECK(pv.size() > 0, "mse of empty tensor");
  Node n;
  n.op = Op::kMse;
  n.a = pred;
  n.aux_tensor = target;
  double acc = 0.0;
  for (int i = 0; i < pv.size(); ++i) {
    auto idx = static_cast<std::size_t>(i);
    const double d = static_cast<double>(pv[idx]) - target[idx];
    acc += d * d;
  }
  n.value = Tensor::scalar(static_cast<float>(acc / pv.size()));
  n.needs_grad = any_needs_grad(pred);
  return push(std::move(n));
}

ValueId Tape::mae(ValueId pred, const Tensor& target) {
  const Tensor& pv = node(pred).value;
  RN_CHECK(pv.same_shape(target), "mae shape mismatch");
  RN_CHECK(pv.size() > 0, "mae of empty tensor");
  Node n;
  n.op = Op::kMae;
  n.a = pred;
  n.aux_tensor = target;
  double acc = 0.0;
  for (int i = 0; i < pv.size(); ++i) {
    auto idx = static_cast<std::size_t>(i);
    acc += std::abs(static_cast<double>(pv[idx]) - target[idx]);
  }
  n.value = Tensor::scalar(static_cast<float>(acc / pv.size()));
  n.needs_grad = any_needs_grad(pred);
  return push(std::move(n));
}

ValueId Tape::huber(ValueId pred, const Tensor& target, float delta) {
  const Tensor& pv = node(pred).value;
  RN_CHECK(pv.same_shape(target), "huber shape mismatch");
  RN_CHECK(pv.size() > 0, "huber of empty tensor");
  RN_CHECK(delta > 0.0f, "huber delta must be positive");
  Node n;
  n.op = Op::kHuber;
  n.a = pred;
  n.aux_tensor = target;
  n.scalar = delta;
  double acc = 0.0;
  for (int i = 0; i < pv.size(); ++i) {
    auto idx = static_cast<std::size_t>(i);
    const double d = std::abs(static_cast<double>(pv[idx]) - target[idx]);
    acc += d <= delta ? 0.5 * d * d : delta * (d - 0.5 * delta);
  }
  n.value = Tensor::scalar(static_cast<float>(acc / pv.size()));
  n.needs_grad = any_needs_grad(pred);
  return push(std::move(n));
}

// --- Execution --------------------------------------------------------------------------

const Tensor& Tape::value(ValueId id) const { return node(id).value; }

const Tensor& Tape::grad(ValueId id) const {
  const Node& n = node(id);
  return n.grad.empty() ? empty_tensor() : n.grad;
}

void Tape::backward(ValueId root) {
  obs::TraceSpan span("ag.backward");
  Node& r = node(root);
  RN_CHECK(r.value.rows() == 1 && r.value.cols() == 1,
           "backward root must be a 1×1 scalar");
  // Reset per-node gradients from any previous backward on this tape.
  for (Node& n : nodes_) {
    if (!n.grad.empty()) n.grad.fill(0.0f);
  }
  grad_buffer(root).at(0, 0) = 1.0f;
  for (ValueId id = root; id >= 0; --id) {
    const Node& n = node(id);
    if (!n.needs_grad || n.grad.empty()) continue;
    backward_node(id);
  }
}

void Tape::backward_node(ValueId id) {
  Node& n = node(id);
  const Tensor& g = n.grad;
  auto propagate = [&](ValueId src) -> Tensor* {
    if (src == kInvalidValue) return nullptr;
    if (!node(src).needs_grad) return nullptr;
    return &grad_buffer(src);
  };

  switch (n.op) {
    case Op::kConstant:
      break;
    case Op::kParam:
      RN_CHECK(n.parameter != nullptr, "param node without Parameter");
      n.parameter->grad.add_scaled(g, 1.0f);
      break;
    case Op::kMatmul: {
      if (Tensor* ga = propagate(n.a)) {
        ga->add_scaled(matmul_nt(g, node(n.b).value), 1.0f);
      }
      if (Tensor* gb = propagate(n.b)) {
        gb->add_scaled(matmul_tn(node(n.a).value, g), 1.0f);
      }
      break;
    }
    case Op::kAdd: {
      if (Tensor* ga = propagate(n.a)) ga->add_scaled(g, 1.0f);
      if (Tensor* gb = propagate(n.b)) gb->add_scaled(g, 1.0f);
      break;
    }
    case Op::kSub: {
      if (Tensor* ga = propagate(n.a)) ga->add_scaled(g, 1.0f);
      if (Tensor* gb = propagate(n.b)) gb->add_scaled(g, -1.0f);
      break;
    }
    case Op::kMul: {
      const Tensor& av = node(n.a).value;
      const Tensor& bv = node(n.b).value;
      const auto count = static_cast<std::size_t>(g.size());
      if (Tensor* ga = propagate(n.a)) {
        kern::active().madd(ga->data(), g.data(), bv.data(), count);
      }
      if (Tensor* gb = propagate(n.b)) {
        kern::active().madd(gb->data(), g.data(), av.data(), count);
      }
      break;
    }
    case Op::kAddBias: {
      if (Tensor* ga = propagate(n.a)) ga->add_scaled(g, 1.0f);
      if (Tensor* gb = propagate(n.b)) {
        kern::active().colsum_add(gb->data(), g.data(), g.rows(), g.cols());
      }
      break;
    }
    case Op::kScale: {
      if (Tensor* ga = propagate(n.a)) ga->add_scaled(g, n.scalar);
      break;
    }
    case Op::kDropout: {
      if (Tensor* ga = propagate(n.a)) {
        for (int i = 0; i < g.size(); ++i) {
          auto k = static_cast<std::size_t>(i);
          (*ga)[k] += g[k] * n.aux_tensor[k];
        }
      }
      break;
    }
    case Op::kScaleRows: {
      if (Tensor* ga = propagate(n.a)) {
        kern::active().add_scaled_rows(ga->data(), g.data(),
                                       n.row_factors.data(), g.rows(),
                                       g.cols());
      }
      break;
    }
    case Op::kOneMinus: {
      if (Tensor* ga = propagate(n.a)) ga->add_scaled(g, -1.0f);
      break;
    }
    case Op::kSigmoid: {
      if (Tensor* ga = propagate(n.a)) {
        for (int i = 0; i < g.size(); ++i) {
          auto k = static_cast<std::size_t>(i);
          const float y = n.value[k];
          (*ga)[k] += g[k] * y * (1.0f - y);
        }
      }
      break;
    }
    case Op::kTanh: {
      if (Tensor* ga = propagate(n.a)) {
        for (int i = 0; i < g.size(); ++i) {
          auto k = static_cast<std::size_t>(i);
          const float y = n.value[k];
          (*ga)[k] += g[k] * (1.0f - y * y);
        }
      }
      break;
    }
    case Op::kRelu: {
      if (Tensor* ga = propagate(n.a)) {
        for (int i = 0; i < g.size(); ++i) {
          auto k = static_cast<std::size_t>(i);
          if (n.value[k] > 0.0f) (*ga)[k] += g[k];
        }
      }
      break;
    }
    case Op::kConcatCols: {
      const int ac = n.aux0;
      if (Tensor* ga = propagate(n.a)) {
        for (int r = 0; r < g.rows(); ++r) {
          const float* grow = g.row(r);
          float* out = ga->row(r);
          for (int c = 0; c < ac; ++c) out[c] += grow[c];
        }
      }
      if (Tensor* gb = propagate(n.b)) {
        for (int r = 0; r < g.rows(); ++r) {
          const float* grow = g.row(r);
          float* out = gb->row(r);
          for (int c = 0; c < gb->cols(); ++c) out[c] += grow[ac + c];
        }
      }
      break;
    }
    case Op::kConcatRows: {
      int r0 = 0;
      for (ValueId src : n.srcs) {
        const int rows = node(src).value.rows();
        if (node(src).needs_grad) {
          Tensor& gs = grad_buffer(src);
          for (int r = 0; r < rows; ++r) {
            const float* grow = g.row(r0 + r);
            float* out = gs.row(r);
            for (int c = 0; c < g.cols(); ++c) out[c] += grow[c];
          }
        }
        r0 += rows;
      }
      break;
    }
    case Op::kSliceCols: {
      if (Tensor* ga = propagate(n.a)) {
        for (int r = 0; r < g.rows(); ++r) {
          const float* grow = g.row(r);
          float* out = ga->row(r);
          for (int c = 0; c < g.cols(); ++c) out[n.aux0 + c] += grow[c];
        }
      }
      break;
    }
    case Op::kGatherRows: {
      if (Tensor* ga = propagate(n.a)) {
        kern::active().indexed_row_add(ga->data(), n.idx.data(),
                                       static_cast<int>(n.idx.size()),
                                       g.cols(), g.data());
      }
      break;
    }
    case Op::kScatterRows: {
      if (Tensor* ga = propagate(n.a)) {
        // Base contributes everywhere except the overwritten rows.
        std::vector<bool> overwritten(static_cast<std::size_t>(g.rows()),
                                      false);
        for (int i : n.idx) overwritten[static_cast<std::size_t>(i)] = true;
        for (int r = 0; r < g.rows(); ++r) {
          if (overwritten[static_cast<std::size_t>(r)]) continue;
          const float* grow = g.row(r);
          float* out = ga->row(r);
          for (int c = 0; c < g.cols(); ++c) out[c] += grow[c];
        }
      }
      if (n.b != kInvalidValue && node(n.b).needs_grad) {
        Tensor& gb = grad_buffer(n.b);
        kern::active().gathered_row_add(gb.data(), n.idx.data(),
                                        static_cast<int>(n.idx.size()),
                                        g.cols(), g.data());
      }
      break;
    }
    case Op::kSegmentSum: {
      if (Tensor* ga = propagate(n.a)) {
        kern::active().gathered_row_add(ga->data(), n.idx.data(),
                                        static_cast<int>(n.idx.size()),
                                        g.cols(), g.data());
      }
      break;
    }
    case Op::kReduceSum: {
      if (Tensor* ga = propagate(n.a)) {
        const float gv = g.at(0, 0);
        for (int i = 0; i < ga->size(); ++i) {
          (*ga)[static_cast<std::size_t>(i)] += gv;
        }
      }
      break;
    }
    case Op::kReduceMean: {
      if (Tensor* ga = propagate(n.a)) {
        const float gv = g.at(0, 0) / static_cast<float>(ga->size());
        for (int i = 0; i < ga->size(); ++i) {
          (*ga)[static_cast<std::size_t>(i)] += gv;
        }
      }
      break;
    }
    case Op::kMse: {
      if (Tensor* ga = propagate(n.a)) {
        const Tensor& pv = node(n.a).value;
        const float gv =
            g.at(0, 0) * 2.0f / static_cast<float>(pv.size());
        for (int i = 0; i < pv.size(); ++i) {
          auto k = static_cast<std::size_t>(i);
          (*ga)[k] += gv * (pv[k] - n.aux_tensor[k]);
        }
      }
      break;
    }
    case Op::kMae: {
      if (Tensor* ga = propagate(n.a)) {
        const Tensor& pv = node(n.a).value;
        const float gv = g.at(0, 0) / static_cast<float>(pv.size());
        for (int i = 0; i < pv.size(); ++i) {
          auto k = static_cast<std::size_t>(i);
          const float d = pv[k] - n.aux_tensor[k];
          (*ga)[k] += d > 0.0f ? gv : (d < 0.0f ? -gv : 0.0f);
        }
      }
      break;
    }
    case Op::kGruStep: {
      // Full GRU backward from the saved activations. With
      //   h' = (1−z)∘h + z∘hc,  hc = tanh(a_h),  z = σ(a_z),  r = σ(a_r),
      // the chain gives
      //   dz = g∘(hc−h),  dhc = g∘z,  dh += g∘(1−z)
      //   da_h = dhc∘(1−hc²) → Wh/Uh/bh grads, dx += da_h·Whᵀ,
      //     drh = da_h·Uhᵀ → dr = drh∘h, dh += drh∘r
      //   da_r = dr∘r∘(1−r),  da_z = dz∘z∘(1−z) → remaining grads.
      // Parameter gradients accumulate straight into the live Parameters,
      // so backward() must precede the optimizer step.
      GruAux& A = *n.gru;
      const kern::Ops& K = kern::active();
      const Tensor& x = A.x_idx.empty() ? node(n.a).value : A.xg;
      const Tensor& h = A.h_idx.empty() ? node(n.b).value : A.hg;
      const int rows = g.rows(), cols = g.cols();
      const auto count = static_cast<std::size_t>(g.size());

      Tensor dh(rows, cols);    // grad wrt the (gathered) previous hidden
      Tensor da_h(rows, cols);  // grad wrt the candidate pre-activation
      Tensor da_r(rows, cols);
      Tensor da_z(rows, cols);
      for (std::size_t i = 0; i < count; ++i) {
        const float gv = g[i];
        const float z = A.z[i];
        const float hc = A.hc[i];
        dh[i] = gv * (1.0f - z);
        da_h[i] = gv * z * (1.0f - hc * hc);
        da_z[i] = gv * (hc - h[i]) * z * (1.0f - z);
      }

      Tensor rh = A.r;
      K.mul_inplace(rh.data(), h.data(), count);
      A.w.wh->grad.add_scaled(matmul_tn(x, da_h), 1.0f);
      A.w.uh->grad.add_scaled(matmul_tn(rh, da_h), 1.0f);
      K.colsum_add(A.w.bh->grad.data(), da_h.data(), rows, cols);
      Tensor dx = matmul_nt(da_h, A.w.wh->value);
      const Tensor drh = matmul_nt(da_h, A.w.uh->value);
      for (std::size_t i = 0; i < count; ++i) {
        const float r = A.r[i];
        dh[i] += drh[i] * r;
        da_r[i] = drh[i] * h[i] * r * (1.0f - r);
      }

      A.w.wr->grad.add_scaled(matmul_tn(x, da_r), 1.0f);
      A.w.ur->grad.add_scaled(matmul_tn(h, da_r), 1.0f);
      K.colsum_add(A.w.br->grad.data(), da_r.data(), rows, cols);
      dx.add_scaled(matmul_nt(da_r, A.w.wr->value), 1.0f);
      dh.add_scaled(matmul_nt(da_r, A.w.ur->value), 1.0f);

      A.w.wz->grad.add_scaled(matmul_tn(x, da_z), 1.0f);
      A.w.uz->grad.add_scaled(matmul_tn(h, da_z), 1.0f);
      K.colsum_add(A.w.bz->grad.data(), da_z.data(), rows, cols);
      dx.add_scaled(matmul_nt(da_z, A.w.wz->value), 1.0f);
      dh.add_scaled(matmul_nt(da_z, A.w.uz->value), 1.0f);

      if (node(n.a).needs_grad) {
        Tensor& ga = grad_buffer(n.a);
        if (A.x_idx.empty()) {
          ga.add_scaled(dx, 1.0f);
        } else {
          K.indexed_row_add(ga.data(), A.x_idx.data(), rows, dx.cols(),
                            dx.data());
        }
      }
      if (node(n.b).needs_grad) {
        Tensor& gb = grad_buffer(n.b);
        if (A.h_idx.empty()) {
          gb.add_scaled(dh, 1.0f);
        } else {
          K.indexed_row_add(gb.data(), A.h_idx.data(), rows, cols,
                            dh.data());
        }
      }
      break;
    }
    case Op::kHuber: {
      if (Tensor* ga = propagate(n.a)) {
        const Tensor& pv = node(n.a).value;
        const float gv = g.at(0, 0) / static_cast<float>(pv.size());
        const float delta = n.scalar;
        for (int i = 0; i < pv.size(); ++i) {
          auto k = static_cast<std::size_t>(i);
          const float d = pv[k] - n.aux_tensor[k];
          if (d > delta) {
            (*ga)[k] += gv * delta;
          } else if (d < -delta) {
            (*ga)[k] -= gv * delta;
          } else {
            (*ga)[k] += gv * d;
          }
        }
      }
      break;
    }
  }
}

}  // namespace rn::ag
