// Workspace arena: pooled float-buffer storage behind every Tensor.
//
// The message-passing hot path used to heap-allocate a fresh buffer for
// every tape node value/grad/aux tensor, every batch. The arena replaces
// that with per-thread free lists of size-classed buffers: a Tensor draws
// its backing store from the calling thread's arena and the buffer returns
// to its origin arena automatically when the Tensor dies — wherever that
// happens, on whatever thread. After one warm-up batch a steady-state
// training step or InferenceServer forward performs zero system
// allocations for tensor data (proven by the `tensor_fresh_allocs()`
// counter hook in tests/ag/arena_test.cpp and the predict_merged
// steady-state test).
//
// Safety model: buffers are reference-held, never reclaimed while a Tensor
// is alive. An arena core stays alive as long as any of its buffers is
// outstanding (shared_ptr), so a tensor may outlive the thread that
// allocated it. Cross-thread frees take the origin core's mutex; the
// single-thread fast path is one uncontended lock. `RN_ARENA=0` disables
// pooling entirely (plain new[]/delete[]) for A/B comparisons.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

namespace rn::ag {

namespace detail {

struct ArenaCore;  // defined in arena.cpp

// Owning handle to one pooled float buffer. Move-only; destruction returns
// the buffer to its origin arena (or delete[]s it when pooling is off).
class Buffer {
 public:
  Buffer() = default;
  // Acquires a buffer of at least `n` floats from the calling thread's
  // arena (contents unspecified — callers must initialize). n == 0 leaves
  // the buffer empty.
  explicit Buffer(std::size_t n);
  ~Buffer() { release(); }

  Buffer(Buffer&& other) noexcept
      : ptr_(other.ptr_), cap_(other.cap_), core_(std::move(other.core_)) {
    other.ptr_ = nullptr;
    other.cap_ = 0;
  }
  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      release();
      ptr_ = other.ptr_;
      cap_ = other.cap_;
      core_ = std::move(other.core_);
      other.ptr_ = nullptr;
      other.cap_ = 0;
    }
    return *this;
  }
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  float* data() { return ptr_; }
  const float* data() const { return ptr_; }
  std::size_t capacity() const { return cap_; }

 private:
  void release();

  float* ptr_ = nullptr;
  std::size_t cap_ = 0;  // element capacity (size-class rounded)
  std::shared_ptr<ArenaCore> core_;  // null: plain heap allocation
};

}  // namespace detail

// Aggregate arena statistics. `fresh_allocs` counts system allocations
// (new[]), `reuses` counts acquisitions served from a free list; a warm
// steady-state loop keeps `fresh_allocs` flat while `reuses` climbs.
struct ArenaStats {
  std::uint64_t fresh_allocs = 0;
  std::uint64_t reuses = 0;
  std::uint64_t returns = 0;
  std::uint64_t bytes_held = 0;  // bytes sitting in free lists, process-wide
};

// Process-wide counters over every thread's arena (relaxed atomics).
ArenaStats arena_stats();

// Total system allocations of tensor backing storage since process start —
// the allocation-counter test hook. Counts pooled misses and, when pooling
// is disabled, every allocation.
std::uint64_t tensor_fresh_allocs();

// Releases every free-listed buffer of the calling thread's arena back to
// the system (outstanding tensors are untouched). Long-lived servers can
// call this between load phases to drop the high-water mark.
void arena_trim();

// Pooling is on unless RN_ARENA=0 (read once at first use). The setter is
// a test seam; flipping it mid-run only affects future allocations —
// existing buffers still return to wherever they came from.
bool arena_enabled();
void set_arena_enabled(bool enabled);

}  // namespace rn::ag
