// Scalar reference kernels + backend dispatch. The scalar matmul blocks are
// the cache-blocked loops the parallel-execution layer shipped with (moved
// here verbatim from tensor.cpp) — the bitwise anchor for every backend.
#include "ag/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/check.h"

namespace rn::ag {

namespace {

// matmul_nt tiles B's rows only when B outgrows this many elements (default
// 64k floats = 256 KiB, a conservative L2 slice): below it the whole B panel
// is cache-resident anyway and the untiled loops win. Both shapes accumulate
// each c[i][j] as one ascending-p dot product, so the choice never changes
// results.
std::atomic<long long> g_nt_tile_min_elems{1LL << 16};

}  // namespace

long long matmul_nt_tile_threshold() {
  return g_nt_tile_min_elems.load(std::memory_order_relaxed);
}

void set_matmul_nt_tile_threshold(long long b_elems) {
  g_nt_tile_min_elems.store(std::max(0LL, b_elems),
                            std::memory_order_relaxed);
}

namespace kern {

#if defined(RN_HAVE_AVX2_TU)
// Defined in kernels_avx2.cpp (compiled with -mavx2 -mfma); only safe to
// call after a runtime AVX2 check.
const Ops* avx2_ops();
const Ops* avx2fma_ops();
#endif

namespace {

// --- Scalar matmul blocks (the pre-SIMD loops, unchanged) -----------------

void scalar_matmul_block(const float* __restrict__ a,
                         const float* __restrict__ b, float* __restrict__ c,
                         int r0, int r1, int k, int n) {
  for (int ib = r0; ib < r1; ib += kTileRows) {
    const int iend = std::min(r1, ib + kTileRows);
    for (int pb = 0; pb < k; pb += kTileK) {
      const int pend = std::min(k, pb + kTileK);
      for (int i = ib; i < iend; ++i) {
        float* crow = c + static_cast<std::size_t>(i) * n;
        const float* arow = a + static_cast<std::size_t>(i) * k;
        for (int p = pb; p < pend; ++p) {
          const float av = arow[p];
          if (av == 0.0f) continue;
          const float* brow = b + static_cast<std::size_t>(p) * n;
          for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

// p unrolled by two: one pass over the C tile per pair of A/B rows halves
// the read-modify-write traffic on C. The two adds stay sequential (never
// fused into av0*b0 + av1*b1) and zero A entries skip their add exactly
// like the tail loop, so rounding is bitwise identical to the
// one-p-at-a-time serial kernel.
void scalar_matmul_tn_block(const float* __restrict__ a,
                            const float* __restrict__ b,
                            float* __restrict__ c, int r0, int r1, int m,
                            int k, int n) {
  for (int ib = r0; ib < r1; ib += kTileRows) {
    const int iend = std::min(r1, ib + kTileRows);
    int p = 0;
    for (; p + 1 < k; p += 2) {
      const float* arow0 = a + static_cast<std::size_t>(p) * m;
      const float* arow1 = arow0 + m;
      const float* brow0 = b + static_cast<std::size_t>(p) * n;
      const float* brow1 = brow0 + n;
      for (int i = ib; i < iend; ++i) {
        const float av0 = arow0[i];
        const float av1 = arow1[i];
        float* crow = c + static_cast<std::size_t>(i) * n;
        if (av0 != 0.0f && av1 != 0.0f) {
          for (int j = 0; j < n; ++j) {
            crow[j] += av0 * brow0[j];
            crow[j] += av1 * brow1[j];
          }
        } else if (av0 != 0.0f) {
          for (int j = 0; j < n; ++j) crow[j] += av0 * brow0[j];
        } else if (av1 != 0.0f) {
          for (int j = 0; j < n; ++j) crow[j] += av1 * brow1[j];
        }
      }
    }
    for (; p < k; ++p) {
      const float* arow = a + static_cast<std::size_t>(p) * m;
      const float* brow = b + static_cast<std::size_t>(p) * n;
      for (int i = ib; i < iend; ++i) {
        const float av = arow[i];
        if (av == 0.0f) continue;
        float* crow = c + static_cast<std::size_t>(i) * n;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

void scalar_matmul_nt_block(const float* __restrict__ a,
                            const float* __restrict__ b,
                            float* __restrict__ c, int r0, int r1, int k,
                            int n) {
  // Profitability gate: each c[i][j] is a single ascending-p dot product in
  // either shape, so falling back is bitwise free — and when B fits in
  // cache the j-tiling only re-runs loop bookkeeping per 32-column strip.
  if (static_cast<long long>(k) * n <
      g_nt_tile_min_elems.load(std::memory_order_relaxed)) {
    for (int i = r0; i < r1; ++i) {
      const float* arow = a + static_cast<std::size_t>(i) * k;
      float* crow = c + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) {
        const float* brow = b + static_cast<std::size_t>(j) * k;
        float acc = 0.0f;
        for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
        crow[j] += acc;
      }
    }
    return;
  }
  for (int ib = r0; ib < r1; ib += kTileRows) {
    const int iend = std::min(r1, ib + kTileRows);
    for (int jb = 0; jb < n; jb += kTileRows) {
      const int jend = std::min(n, jb + kTileRows);
      for (int i = ib; i < iend; ++i) {
        const float* arow = a + static_cast<std::size_t>(i) * k;
        float* crow = c + static_cast<std::size_t>(i) * n;
        for (int j = jb; j < jend; ++j) {
          const float* brow = b + static_cast<std::size_t>(j) * k;
          float acc = 0.0f;
          for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
          crow[j] += acc;
        }
      }
    }
  }
}

// --- Scalar row-indexing / elementwise kernels ----------------------------

void scalar_gather_rows(const float* src, const int* idx, int nrows,
                        int cols, float* dst) {
  for (int i = 0; i < nrows; ++i) {
    std::memcpy(dst + static_cast<std::size_t>(i) * cols,
                src + static_cast<std::size_t>(idx[i]) * cols,
                static_cast<std::size_t>(cols) * sizeof(float));
  }
}

void scalar_scatter_rows(float* dst, const int* idx, int nrows, int cols,
                         const float* src) {
  for (int i = 0; i < nrows; ++i) {
    std::memcpy(dst + static_cast<std::size_t>(idx[i]) * cols,
                src + static_cast<std::size_t>(i) * cols,
                static_cast<std::size_t>(cols) * sizeof(float));
  }
}

void scalar_indexed_row_add(float* dst, const int* idx, int nrows, int cols,
                            const float* src) {
  for (int i = 0; i < nrows; ++i) {
    float* out = dst + static_cast<std::size_t>(idx[i]) * cols;
    const float* in = src + static_cast<std::size_t>(i) * cols;
    for (int c = 0; c < cols; ++c) out[c] += in[c];
  }
}

void scalar_gathered_row_add(float* dst, const int* idx, int nrows, int cols,
                             const float* src) {
  for (int i = 0; i < nrows; ++i) {
    float* out = dst + static_cast<std::size_t>(i) * cols;
    const float* in = src + static_cast<std::size_t>(idx[i]) * cols;
    for (int c = 0; c < cols; ++c) out[c] += in[c];
  }
}

void scalar_scale_rows(float* data, const float* factors, int rows,
                       int cols) {
  for (int r = 0; r < rows; ++r) {
    float* row = data + static_cast<std::size_t>(r) * cols;
    const float f = factors[r];
    for (int c = 0; c < cols; ++c) row[c] *= f;
  }
}

void scalar_add_scaled_rows(float* dst, const float* src,
                            const float* factors, int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    float* out = dst + static_cast<std::size_t>(r) * cols;
    const float* in = src + static_cast<std::size_t>(r) * cols;
    const float f = factors[r];
    for (int c = 0; c < cols; ++c) out[c] += in[c] * f;
  }
}

void scalar_axpy(float* y, const float* x, float s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += x[i] * s;
}

void scalar_mul_inplace(float* y, const float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] *= x[i];
}

void scalar_madd(float* dst, const float* a, const float* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += a[i] * b[i];
}

void scalar_add_bias_rows(float* m, const float* bias, int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    float* row = m + static_cast<std::size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) row[c] += bias[c];
  }
}

void scalar_colsum_add(float* dst, const float* src, int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    const float* row = src + static_cast<std::size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) dst[c] += row[c];
  }
}

void scalar_gru_blend(const float* z, const float* h, const float* hc,
                      float* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const float omz = 1.0f - z[i];
    const float keep = omz * h[i];
    const float cand = z[i] * hc[i];
    out[i] = keep + cand;
  }
}

constexpr Ops kScalarOps = {
    "scalar",
    scalar_matmul_block,
    scalar_matmul_tn_block,
    scalar_matmul_nt_block,
    scalar_gather_rows,
    scalar_scatter_rows,
    scalar_indexed_row_add,
    scalar_gathered_row_add,
    scalar_scale_rows,
    scalar_add_scaled_rows,
    scalar_axpy,
    scalar_mul_inplace,
    scalar_madd,
    scalar_add_bias_rows,
    scalar_colsum_add,
    scalar_gru_blend,
};

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool cpu_has_fma() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const Ops* table_for(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return &kScalarOps;
    case Backend::kAvx2:
#if defined(RN_HAVE_AVX2_TU)
      return cpu_has_avx2() ? avx2_ops() : nullptr;
#else
      return nullptr;
#endif
    case Backend::kAvx2Fma:
#if defined(RN_HAVE_AVX2_TU)
      return (cpu_has_avx2() && cpu_has_fma()) ? avx2fma_ops() : nullptr;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

Backend backend_from_env() {
  const char* env = std::getenv("RN_KERNELS");
  const std::string want = env == nullptr ? "auto" : env;
  if (want.empty() || want == "auto") {
    return backend_available(Backend::kAvx2) ? Backend::kAvx2
                                             : Backend::kScalar;
  }
  if (want == "scalar") return Backend::kScalar;
  if (want == "avx2") {
    RN_CHECK(backend_available(Backend::kAvx2),
             "RN_KERNELS=avx2 but the avx2 backend is unavailable "
             "(CPU lacks AVX2 or the binary was built without it)");
    return Backend::kAvx2;
  }
  if (want == "avx2fma" || want == "fma") {
    RN_CHECK(backend_available(Backend::kAvx2Fma),
             "RN_KERNELS=avx2fma but the avx2fma backend is unavailable "
             "(CPU lacks AVX2/FMA or the binary was built without it)");
    return Backend::kAvx2Fma;
  }
  RN_CHECK(false, "RN_KERNELS must be scalar, avx2, avx2fma, or auto (got '" +
                      want + "')");
  return Backend::kScalar;
}

std::atomic<const Ops*>& active_table() {
  static std::atomic<const Ops*> table{table_for(backend_from_env())};
  return table;
}

std::atomic<Backend>& active_backend_slot() {
  static std::atomic<Backend> backend{backend_from_env()};
  return backend;
}

}  // namespace

const Ops& active() { return *active_table().load(std::memory_order_relaxed); }

Backend active_backend() {
  return active_backend_slot().load(std::memory_order_relaxed);
}

bool backend_available(Backend backend) {
  return table_for(backend) != nullptr;
}

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kAvx2Fma:
      return "avx2fma";
  }
  return "?";
}

const Ops& ops(Backend backend) {
  const Ops* table = table_for(backend);
  RN_CHECK(table != nullptr, std::string("kernel backend unavailable: ") +
                                 backend_name(backend));
  return *table;
}

Backend set_kernel_backend(Backend backend) {
  const Ops* table = table_for(backend);
  RN_CHECK(table != nullptr, std::string("kernel backend unavailable: ") +
                                 backend_name(backend));
  const Backend prev =
      active_backend_slot().exchange(backend, std::memory_order_relaxed);
  active_table().store(table, std::memory_order_relaxed);
  return prev;
}

void sigmoid_inplace(float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] = 1.0f / (1.0f + std::exp(-x[i]));
}

void tanh_inplace(float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] = std::tanh(x[i]);
}

}  // namespace kern
}  // namespace rn::ag
