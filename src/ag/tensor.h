// Dense row-major float matrix — the only tensor type the library needs.
//
// Everything RouteNet manipulates (link states, path states, messages,
// parameters) is a 2-D matrix; vectors are 1×C or R×1 matrices and scalars
// are 1×1. Keeping a single concrete type keeps the autodiff tape simple.
//
// Backing storage comes from the per-thread workspace arena (ag/arena.h):
// constructing a Tensor acquires a pooled buffer, destroying it returns the
// buffer, so steady-state loops with stable shapes allocate nothing.
#pragma once

#include <cstring>
#include <initializer_list>
#include <vector>

#include "ag/arena.h"
#include "util/check.h"

namespace rn::ag {

class Tensor {
 public:
  Tensor() = default;

  // Zero-filled matrix.
  Tensor(int rows, int cols);

  Tensor(int rows, int cols, float fill);

  // Pooled buffers carry stale contents, so copies memcpy and moves steal
  // the buffer; both leave arena accounting to the Buffer itself.
  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept
      : rows_(other.rows_), cols_(other.cols_), buf_(std::move(other.buf_)) {
    other.rows_ = 0;
    other.cols_ = 0;
  }
  Tensor& operator=(Tensor&& other) noexcept {
    if (this != &other) {
      rows_ = other.rows_;
      cols_ = other.cols_;
      buf_ = std::move(other.buf_);
      other.rows_ = 0;
      other.cols_ = 0;
    }
    return *this;
  }

  static Tensor zeros(int rows, int cols) { return Tensor(rows, cols); }
  static Tensor full(int rows, int cols, float v) {
    return Tensor(rows, cols, v);
  }
  static Tensor scalar(float v) { return Tensor(1, 1, v); }

  // Row-literal constructor for tests: Tensor::from_rows({{1,2},{3,4}}).
  static Tensor from_rows(
      std::initializer_list<std::initializer_list<float>> rows);

  // Column vector from values.
  static Tensor column(const std::vector<float>& values);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  float& at(int r, int c) {
    RN_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_,
             "Tensor::at out of range");
    return buf_.data()[static_cast<std::size_t>(r) * cols_ + c];
  }
  float at(int r, int c) const {
    RN_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_,
             "Tensor::at out of range");
    return buf_.data()[static_cast<std::size_t>(r) * cols_ + c];
  }

  // Unchecked flat access for hot loops.
  float& operator[](std::size_t i) { return buf_.data()[i]; }
  float operator[](std::size_t i) const { return buf_.data()[i]; }

  float* data() { return buf_.data(); }
  const float* data() const { return buf_.data(); }

  float* row(int r) {
    return buf_.data() + static_cast<std::size_t>(r) * cols_;
  }
  const float* row(int r) const {
    return buf_.data() + static_cast<std::size_t>(r) * cols_;
  }

  bool same_shape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  void fill(float v);

  // this += other * s (shapes must match).
  void add_scaled(const Tensor& other, float s);

  void scale(float s);

  // Sum of squares of all entries; used for gradient-norm clipping.
  double squared_norm() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  detail::Buffer buf_;
};

// Non-autodiff matrix kernels shared by forward and backward passes.
//
// The inner loops live in the runtime-dispatched kernel layer
// (ag/kernels.h, RN_KERNELS=scalar|avx2|avx2fma). All three are
// cache-blocked and run row-ranges of C on the global thread pool once the
// multiply-add count crosses matmul_parallel_threshold(). Each output row
// is produced entirely by one chunk with the same inner accumulation order
// as the serial kernel, so results are bitwise identical at any thread
// count (and, for the scalar/avx2 backends, across backends).

// C = A B.
Tensor matmul(const Tensor& a, const Tensor& b);
// C = Aᵀ B (no materialized transpose).
Tensor matmul_tn(const Tensor& a, const Tensor& b);
// C = A Bᵀ.
Tensor matmul_nt(const Tensor& a, const Tensor& b);

// Multiply-add count (m*n*k) above which the kernels go parallel. The
// default amortizes task overhead on realistic batch shapes; tests lower it
// to force the threaded path on small matrices. The chunk grain is
// shape-aware: rows are split so each chunk carries at least a threshold's
// worth of multiply-adds and the range yields at most one chunk per pool
// thread, so fan-out never hands a thread less work than the task overhead
// it costs.
long long matmul_parallel_threshold();
void set_matmul_parallel_threshold(long long macs);

// B element count (k*n) below which matmul_nt skips its column tiling and
// runs the plain dot-product loops: when all of B stays cache-resident the
// tile bookkeeping is pure overhead (the 0.95x regression vs the naive
// kernel on RouteNet-sized operands). Both shapes accumulate each c[i][j]
// as one ascending-p dot product, so the choice never changes results.
// Tests move the threshold to pin either path on small matrices.
long long matmul_nt_tile_threshold();
void set_matmul_nt_tile_threshold(long long b_elems);

}  // namespace rn::ag
