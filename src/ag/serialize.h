// Binary checkpointing of parameter sets.
//
// File format: magic "RNCKPT1\n", uint32 count, then per parameter:
// uint32 name_len, name bytes, int32 rows, int32 cols, float payload.
// Stream overloads let callers embed a parameter block inside a larger
// model file (config header + parameters).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "ag/tape.h"

namespace rn::ag {

void save_parameters(std::ostream& out,
                     const std::vector<Parameter*>& params);
void save_parameters(const std::string& path,
                     const std::vector<Parameter*>& params);

// Loads by name into the given parameters; shapes must match exactly.
// Throws if a parameter is missing from the stream.
void load_parameters(std::istream& in,
                     const std::vector<Parameter*>& params);
void load_parameters(const std::string& path,
                     const std::vector<Parameter*>& params);

}  // namespace rn::ag
