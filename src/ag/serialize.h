// Binary checkpointing of parameter sets and full training state.
//
// Two container formats, both versioned by magic string:
//
//  * "RNCKPT1\n" — a bare parameter block: uint32 count, then per parameter
//    uint32 name_len, name bytes, int32 rows, int32 cols, float payload.
//    Stream overloads let callers embed a parameter block inside a larger
//    model file (config header + parameters).
//  * "RNCKPT2\n" — a full training-state checkpoint: the parameter block
//    plus optimizer state (Adam first/second moments and step count), named
//    RNG engine states, and a trainer cursor (epoch, batch offset, best-eval
//    tracking, the epoch's shuffled sample order). The payload is length-
//    prefixed and CRC32-protected, and files are written atomically
//    (temp file + rename), so a crash mid-write can never leave a torn
//    file that later loads. See docs/file-formats.md for the byte layout.
//
// `load_train_checkpoint*` also accepts RNCKPT1 files, yielding a
// params-only checkpoint (no optimizer/RNG/cursor sections).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "ag/tape.h"

namespace rn::ag {

void save_parameters(std::ostream& out,
                     const std::vector<Parameter*>& params);
void save_parameters(const std::string& path,
                     const std::vector<Parameter*>& params);

// Loads by name into the given parameters; shapes must match exactly.
// Throws if a parameter is missing from the stream, naming the parameter
// and (on shape mismatch) both shapes.
void load_parameters(std::istream& in,
                     const std::vector<Parameter*>& params);
void load_parameters(const std::string& path,
                     const std::vector<Parameter*>& params);

// Assigns `named` tensors onto `params` by name. Error messages name the
// offending parameter and both shapes; `context` prefixes them (e.g. the
// file being loaded).
void apply_named_tensors(
    const std::vector<std::pair<std::string, Tensor>>& named,
    const std::vector<Parameter*>& params, const std::string& context);

// CRC32 (IEEE 802.3 / zlib polynomial) of `len` bytes, optionally chained
// from a previous call's result.
std::uint32_t crc32(const void* data, std::size_t len,
                    std::uint32_t crc = 0);

// Writes `bytes` to `path` via a same-directory temporary file and an
// atomic rename, so concurrent readers (and crashes) never observe a
// partially written file.
void atomic_write_file(const std::string& path, const std::string& bytes);

// Everything needed to stop a training run at an arbitrary batch and later
// continue it to a bitwise-identical final model.
struct TrainCheckpoint {
  // Model parameters, by name.
  std::vector<std::pair<std::string, Tensor>> params;

  // Adam state; absent when loading a bare RNCKPT1 parameter block.
  bool has_optimizer = false;
  std::int64_t adam_step = 0;
  float lr = 0.0f;
  std::vector<std::pair<std::string, Tensor>> adam_m;
  std::vector<std::pair<std::string, Tensor>> adam_v;

  // Named RNG engine states (std::mt19937_64 text serialization).
  std::vector<std::pair<std::string, std::string>> rng_streams;

  // Trainer cursor. `next_index` is the sample offset within `order` at
  // which the resumed epoch continues; `order` is that epoch's shuffled
  // sample order (the shuffle RNG has already advanced past it).
  bool has_cursor = false;
  std::int32_t epoch = 0;
  std::int64_t next_index = 0;
  std::uint64_t total_batches = 0;
  double best_eval_mre = -1.0;
  std::int32_t best_epoch = -1;
  std::int32_t epochs_since_best = 0;
  double epoch_loss_sum = 0.0;
  std::int32_t epoch_batches = 0;
  std::uint64_t epoch_samples = 0;
  std::vector<std::int32_t> order;
};

// Serializes to / parses from the RNCKPT2 wire format. The byte form is
// exposed so tests can fuzz the parser without touching the filesystem;
// the parser never allocates more than the payload size it was handed and
// throws std::runtime_error on any corruption (bad magic, length mismatch,
// CRC failure, truncated or absurd fields).
std::string train_checkpoint_bytes(const TrainCheckpoint& ckpt);
TrainCheckpoint parse_train_checkpoint(const std::string& bytes);

// Atomic, CRC-protected save. Returns the file size in bytes.
std::size_t save_train_checkpoint(const std::string& path,
                                  const TrainCheckpoint& ckpt);
TrainCheckpoint load_train_checkpoint(const std::string& path);

// Rotation naming: checkpoints of one run share a base path and carry a
// monotonic sequence suffix, e.g. base "run.ckpt" -> "run.ckpt.000007".
std::string checkpoint_file_name(const std::string& base, std::uint64_t seq);

struct CheckpointFile {
  std::uint64_t seq = 0;
  std::string path;
};

// All rotation files for `base`, newest (highest seq) first.
std::vector<CheckpointFile> list_checkpoints(const std::string& base);

// Resume entry point. If `path` names an existing file it is loaded
// directly (corruption throws). Otherwise `path` is treated as a rotation
// base: candidates are tried newest-first, skipping files that fail CRC or
// parsing; `fallbacks` (when non-null) counts the skips and `loaded_path`
// receives the file that won. Throws when no candidate loads.
TrainCheckpoint load_train_checkpoint_auto(const std::string& path,
                                           std::string* loaded_path = nullptr,
                                           int* fallbacks = nullptr);

}  // namespace rn::ag
