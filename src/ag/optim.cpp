#include "ag/optim.h"

#include <cmath>

#include "obs/trace.h"

namespace rn::ag {

Optimizer::Optimizer(std::vector<Parameter*> params)
    : params_(std::move(params)) {
  for (Parameter* p : params_) {
    RN_CHECK(p != nullptr, "null Parameter handed to Optimizer");
  }
}

void Optimizer::zero_grad() {
  for (Parameter* p : params_) p->zero_grad();
}

Sgd::Sgd(std::vector<Parameter*> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  RN_CHECK(lr > 0.0f, "learning rate must be positive");
  if (momentum_ != 0.0f) {
    velocity_.reserve(params_.size());
    for (Parameter* p : params_) {
      velocity_.emplace_back(p->value.rows(), p->value.cols());
    }
  }
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    if (momentum_ == 0.0f) {
      p.value.add_scaled(p.grad, -lr_);
    } else {
      Tensor& v = velocity_[i];
      v.scale(momentum_);
      v.add_scaled(p.grad, 1.0f);
      p.value.add_scaled(v, -lr_);
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  RN_CHECK(lr > 0.0f, "learning rate must be positive");
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::set_state(long step_count, std::vector<Tensor> m,
                     std::vector<Tensor> v) {
  RN_CHECK(step_count >= 0, "Adam step count cannot be negative");
  RN_CHECK(m.size() == params_.size() && v.size() == params_.size(),
           "Adam state has " + std::to_string(m.size()) + "/" +
               std::to_string(v.size()) + " moment tensors for " +
               std::to_string(params_.size()) + " parameters");
  for (std::size_t i = 0; i < params_.size(); ++i) {
    RN_CHECK(m[i].same_shape(params_[i]->value) &&
                 v[i].same_shape(params_[i]->value),
             "Adam moment shape mismatch for parameter '" +
                 params_[i]->name + "'");
  }
  t_ = step_count;
  m_ = std::move(m);
  v_ = std::move(v);
}

void Adam::step() {
  obs::TraceSpan span("ag.adam_step");
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    const int n = p.value.size();
    for (int j = 0; j < n; ++j) {
      auto k = static_cast<std::size_t>(j);
      const float g = p.grad[k];
      m[k] = beta1_ * m[k] + (1.0f - beta1_) * g;
      v[k] = beta2_ * v[k] + (1.0f - beta2_) * g * g;
      const float mhat = m[k] / bc1;
      const float vhat = v[k] / bc2;
      p.value[k] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

double clip_grad_norm(const std::vector<Parameter*>& params, double max_norm) {
  RN_CHECK(max_norm > 0.0, "max_norm must be positive");
  double sq = 0.0;
  for (const Parameter* p : params) sq += p->grad.squared_norm();
  const double norm = std::sqrt(sq);
  if (norm > max_norm) {
    const float s = static_cast<float>(max_norm / norm);
    for (Parameter* p : params) p->grad.scale(s);
  }
  return norm;
}

}  // namespace rn::ag
