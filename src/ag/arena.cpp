#include "ag/arena.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace rn::ag {

namespace {

// Process-wide counters: cheap relaxed atomics so the hot path never
// synchronizes beyond its own arena's mutex.
std::atomic<std::uint64_t> g_fresh_allocs{0};
std::atomic<std::uint64_t> g_reuses{0};
std::atomic<std::uint64_t> g_returns{0};
std::atomic<std::uint64_t> g_bytes_held{0};

std::atomic<bool> g_arena_enabled{true};

bool read_arena_env() {
  const char* env = std::getenv("RN_ARENA");
  return env == nullptr || env[0] == '\0' ||
         !(env[0] == '0' && env[1] == '\0');
}

bool arena_enabled_impl() {
  static const bool from_env = read_arena_env();
  static std::atomic<bool> initialized{false};
  if (!initialized.exchange(true, std::memory_order_relaxed)) {
    g_arena_enabled.store(from_env, std::memory_order_relaxed);
  }
  return g_arena_enabled.load(std::memory_order_relaxed);
}

// Buffers are size-classed by power of two, floor 64 floats (256 B): every
// acquisition for a given logical size hits the same class, so steady-state
// loops with fixed shapes reuse with zero misses, and close-but-unequal
// shapes (batch padding) still share storage.
constexpr std::size_t kMinClassFloats = 64;
constexpr int kNumClasses = 32;

int class_of(std::size_t n) {
  std::size_t cap = kMinClassFloats;
  int cls = 0;
  while (cap < n) {
    cap <<= 1;
    ++cls;
  }
  return cls;
}

std::size_t class_floats(int cls) { return kMinClassFloats << cls; }

}  // namespace

namespace detail {

// One thread's pool. Shared-ptr-held by the thread_local handle and by
// every outstanding Buffer, so it outlives both the thread and any tensor
// that escaped it.
struct ArenaCore {
  std::mutex mu;
  std::vector<float*> free_lists[kNumClasses];

  ~ArenaCore() {
    for (auto& list : free_lists) {
      for (float* p : list) delete[] p;
    }
  }

  float* acquire(int cls) {
    {
      std::lock_guard<std::mutex> lock(mu);
      std::vector<float*>& list = free_lists[cls];
      if (!list.empty()) {
        float* p = list.back();
        list.pop_back();
        g_reuses.fetch_add(1, std::memory_order_relaxed);
        g_bytes_held.fetch_sub(class_floats(cls) * sizeof(float),
                               std::memory_order_relaxed);
        return p;
      }
    }
    g_fresh_allocs.fetch_add(1, std::memory_order_relaxed);
    return new float[class_floats(cls)];
  }

  void put_back(float* p, int cls) {
    g_returns.fetch_add(1, std::memory_order_relaxed);
    g_bytes_held.fetch_add(class_floats(cls) * sizeof(float),
                           std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu);
    free_lists[cls].push_back(p);
  }

  void trim() {
    std::lock_guard<std::mutex> lock(mu);
    for (int cls = 0; cls < kNumClasses; ++cls) {
      std::vector<float*>& list = free_lists[cls];
      g_bytes_held.fetch_sub(
          list.size() * class_floats(cls) * sizeof(float),
          std::memory_order_relaxed);
      for (float* p : list) delete[] p;
      list.clear();
      list.shrink_to_fit();
    }
  }
};

namespace {

const std::shared_ptr<ArenaCore>& thread_core() {
  thread_local std::shared_ptr<ArenaCore> core =
      std::make_shared<ArenaCore>();
  return core;
}

}  // namespace

Buffer::Buffer(std::size_t n) {
  if (n == 0) return;
  const int cls = class_of(n);
  if (cls >= kNumClasses) {
    // Beyond the largest size class (absurdly big): plain heap, exact size.
    g_fresh_allocs.fetch_add(1, std::memory_order_relaxed);
    ptr_ = new float[n];
    cap_ = n;
    return;
  }
  if (arena_enabled_impl()) {
    core_ = thread_core();
    ptr_ = core_->acquire(cls);
  } else {
    g_fresh_allocs.fetch_add(1, std::memory_order_relaxed);
    ptr_ = new float[class_floats(cls)];
  }
  cap_ = class_floats(cls);
}

void Buffer::release() {
  if (ptr_ == nullptr) return;
  if (core_ != nullptr) {
    core_->put_back(ptr_, class_of(cap_));
    core_.reset();
  } else {
    delete[] ptr_;
  }
  ptr_ = nullptr;
  cap_ = 0;
}

}  // namespace detail

ArenaStats arena_stats() {
  ArenaStats s;
  s.fresh_allocs = g_fresh_allocs.load(std::memory_order_relaxed);
  s.reuses = g_reuses.load(std::memory_order_relaxed);
  s.returns = g_returns.load(std::memory_order_relaxed);
  s.bytes_held = g_bytes_held.load(std::memory_order_relaxed);
  return s;
}

std::uint64_t tensor_fresh_allocs() {
  return g_fresh_allocs.load(std::memory_order_relaxed);
}

void arena_trim() { detail::thread_core()->trim(); }

bool arena_enabled() { return arena_enabled_impl(); }

void set_arena_enabled(bool enabled) {
  arena_enabled_impl();  // latch the env read first
  g_arena_enabled.store(enabled, std::memory_order_relaxed);
}

}  // namespace rn::ag
