// SIMD kernel layer: the raw inner loops of the autodiff hot path, behind a
// runtime-dispatched backend table.
//
// Backends:
//   scalar  — the reference implementation: exactly the pre-SIMD loops, the
//             bitwise anchor every other backend is tested against.
//   avx2    — 8-wide AVX2 using separate multiply and add instructions in
//             the same per-element accumulation order (and the same
//             zero-entry skips) as the scalar loops, so results are bitwise
//             identical to scalar. The default wherever the CPU supports it.
//   avx2fma — AVX2 + FMA with reassociated reductions (matmul_nt runs an
//             8-lane partial-sum dot product). Fastest, but fused rounding
//             and reassociation make results diverge from scalar by a few
//             ULPs — an explicit opt-in that trades the bitwise-determinism
//             contract for speed. Never selected automatically.
//
// Selection: RN_KERNELS=scalar|avx2|avx2fma (or `auto`/unset for the best
// bitwise-safe backend the CPU supports), read once at first kernel use;
// `set_kernel_backend` is the programmatic/test seam. A backend compiled
// out of the binary or unsupported by the CPU fails fast with a clear
// message rather than silently falling back.
//
// Every function operates on row-major float buffers. The matmul block
// kernels compute C-row ranges [r0, r1) and are driven by the parallel
// chunking in tensor.cpp; all other kernels are sequential over rows by
// contract (indexed adds must preserve ascending-index accumulation order).
#pragma once

#include <cstddef>
#include <cstdint>

namespace rn::ag::kern {

enum class Backend : std::uint8_t { kScalar = 0, kAvx2 = 1, kAvx2Fma = 2 };

// C-row tile: one parallel chunk's working set of output rows — also the
// grain multiple of the row-range chunking in tensor.cpp, so a chunk never
// splits a tile. kTileK is the inner-dimension panel kept cache-resident
// across a row tile.
inline constexpr int kTileRows = 32;
inline constexpr int kTileK = 240;

struct Ops {
  const char* name;

  // c[r0:r1) += a[r0:r1) * b for row-major a (m×k), b (k×n).
  void (*matmul_block)(const float* a, const float* b, float* c, int r0,
                       int r1, int k, int n);
  // c[r0:r1) += aᵀ[r0:r1) * b for row-major a (k×m), b (k×n).
  void (*matmul_tn_block)(const float* a, const float* b, float* c, int r0,
                          int r1, int m, int k, int n);
  // c[r0:r1) += a[r0:r1) * bᵀ for row-major a (m×k), b (n×k).
  void (*matmul_nt_block)(const float* a, const float* b, float* c, int r0,
                          int r1, int k, int n);

  // dst[i] = src[idx[i]] for i in [0, nrows).
  void (*gather_rows)(const float* src, const int* idx, int nrows, int cols,
                      float* dst);
  // dst[idx[i]] = src[i] (unique idx by caller contract).
  void (*scatter_rows)(float* dst, const int* idx, int nrows, int cols,
                       const float* src);
  // dst[idx[i]] += src[i], ascending i (segment_sum forward, gather/scatter
  // backward). Duplicate indices accumulate in order.
  void (*indexed_row_add)(float* dst, const int* idx, int nrows, int cols,
                          const float* src);
  // dst[i] += src[idx[i]], ascending i (segment_sum backward).
  void (*gathered_row_add)(float* dst, const int* idx, int nrows, int cols,
                           const float* src);
  // data[r] *= factors[r], elementwise per row.
  void (*scale_rows)(float* data, const float* factors, int rows, int cols);
  // dst[r] += src[r] * factors[r] (scale_rows backward).
  void (*add_scaled_rows)(float* dst, const float* src, const float* factors,
                          int rows, int cols);

  // y += x * s.
  void (*axpy)(float* y, const float* x, float s, std::size_t n);
  // y *= x, elementwise.
  void (*mul_inplace)(float* y, const float* x, std::size_t n);
  // dst += a ∘ b, elementwise.
  void (*madd)(float* dst, const float* a, const float* b, std::size_t n);
  // m[r] += bias for every row (bias is 1×cols).
  void (*add_bias_rows)(float* m, const float* bias, int rows, int cols);
  // dst[c] += Σ_r src[r][c], ascending r (bias gradient).
  void (*colsum_add)(float* dst, const float* src, int rows, int cols);
  // out = (1−z)∘h + z∘hc with the exact scalar operation order
  // (1−z, (1−z)·h, z·hc, sum) so the fused GRU matches the composed ops.
  void (*gru_blend)(const float* z, const float* h, const float* hc,
                    float* out, std::size_t n);
};

// The active backend's table (resolves RN_KERNELS on first call).
const Ops& active();
Backend active_backend();

// The table for a specific backend — bench/test access. RN_CHECK-fails for
// a backend that is compiled out or unsupported by this CPU.
const Ops& ops(Backend backend);

bool backend_available(Backend backend);
const char* backend_name(Backend backend);

// Switches the active backend; returns the previous one. Fails fast when
// the requested backend is unavailable.
Backend set_kernel_backend(Backend backend);

// Elementwise transcendental helpers shared by every backend (libm calls —
// the bitwise contract pins them to std::exp / std::tanh, so there is no
// vectorized variant).
void sigmoid_inplace(float* x, std::size_t n);
void tanh_inplace(float* x, std::size_t n);

}  // namespace rn::ag::kern
