// AVX2 / AVX2+FMA backends. This TU is the only one compiled with
// -mavx2 -mfma (plus -ffp-contract=off so the compiler cannot fuse the
// separate mul/add sequences behind our back); kernels.cpp only calls
// avx2_ops()/avx2fma_ops() after a runtime CPU check.
//
// Bitwise contract (avx2 table): every kernel performs the exact same
// per-element arithmetic sequence as the scalar reference — same ascending
// accumulation order, separate _mm256_mul_ps + _mm256_add_ps (never fused),
// and the same `av == 0.0f` skip in the matmul row loops. Vectorizing over
// the output column axis is safe because each output element's operation
// chain is untouched; only independent elements are packed into one vector.
// Remainder columns run the scalar loop verbatim.
//
// The avx2fma table swaps the three matmul kernels for fused-multiply-add
// variants (matmul_nt additionally runs an 8-lane partial-sum reduction).
// Those reassociate/fuse rounding and so diverge from scalar by a few ULPs —
// which is why that table is opt-in only (RN_KERNELS=avx2fma).
#include <immintrin.h>

#include <algorithm>
#include <cstddef>
#include <cstring>

#include "ag/kernels.h"

namespace rn::ag::kern {

namespace {

// --- avx2: bitwise-identical matmuls --------------------------------------
//
// Both row-major matmuls are register-blocked: a tile of up to 32 output
// columns accumulates in four ymm registers across the entire ascending-p
// loop, then stores once. Per output element the arithmetic sequence is
// unchanged from scalar (one mul, one add per non-zero a[i][p], ascending
// p) — holding the accumulator in a register instead of round-tripping
// through C memory does not change any rounding, it just removes the
// store-to-load chain that capped the memory-accumulating version at
// scalar speed.

// One (i, j-tile) accumulation over the full p range. Scalar reads
// a[i][p] at stride `astride` (1 for nn where a is row-major, m for tn
// where a is transposed).
template <int Tiles>
inline void accum_col_tile(const float* acol, std::size_t astride,
                           const float* b, float* crow, int j, int k, int n) {
  __m256 acc[Tiles];
  for (int t = 0; t < Tiles; ++t) {
    acc[t] = _mm256_loadu_ps(crow + j + 8 * t);
  }
  for (int p = 0; p < k; ++p) {
    const float av = acol[static_cast<std::size_t>(p) * astride];
    if (av == 0.0f) continue;
    const float* brow = b + static_cast<std::size_t>(p) * n + j;
    const __m256 av8 = _mm256_set1_ps(av);
    for (int t = 0; t < Tiles; ++t) {
      acc[t] =
          _mm256_add_ps(acc[t], _mm256_mul_ps(av8, _mm256_loadu_ps(brow + 8 * t)));
    }
  }
  for (int t = 0; t < Tiles; ++t) {
    _mm256_storeu_ps(crow + j + 8 * t, acc[t]);
  }
}

// Shared by nn and tn: walk one output row, tiling columns 32/8/scalar.
inline void matmul_row_avx2(const float* acol, std::size_t astride,
                            const float* b, float* crow, int k, int n) {
  int j = 0;
  for (; j + 32 <= n; j += 32) accum_col_tile<4>(acol, astride, b, crow, j, k, n);
  for (; j + 8 <= n; j += 8) accum_col_tile<1>(acol, astride, b, crow, j, k, n);
  for (; j < n; ++j) {
    float acc = crow[j];
    for (int p = 0; p < k; ++p) {
      const float av = acol[static_cast<std::size_t>(p) * astride];
      if (av == 0.0f) continue;
      acc += av * b[static_cast<std::size_t>(p) * n + j];
    }
    crow[j] = acc;
  }
}

void avx2_matmul_block(const float* a, const float* b, float* c, int r0,
                       int r1, int k, int n) {
  for (int i = r0; i < r1; ++i) {
    matmul_row_avx2(a + static_cast<std::size_t>(i) * k, 1, b,
                    c + static_cast<std::size_t>(i) * n, k, n);
  }
}

void avx2_matmul_tn_block(const float* a, const float* b, float* c, int r0,
                          int r1, int m, int k, int n) {
  for (int i = r0; i < r1; ++i) {
    matmul_row_avx2(a + i, static_cast<std::size_t>(m), b,
                    c + static_cast<std::size_t>(i) * n, k, n);
  }
}

// Lane-per-output-column: 8 adjacent columns of C accumulate in parallel,
// each lane running its own ascending-p dot product in scalar order (one
// mul, one add per p). The B elements for the 8 columns at a given p sit a
// row-stride (k floats) apart, fetched with a strided gather.
void avx2_matmul_nt_block(const float* a, const float* b, float* c, int r0,
                          int r1, int k, int n) {
  const int n8 = n & ~7;
  const __m256i stride =
      _mm256_mullo_epi32(_mm256_set1_epi32(k),
                         _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
  for (int i = r0; i < r1; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* crow = c + static_cast<std::size_t>(i) * n;
    int j = 0;
    for (; j < n8; j += 8) {
      const float* bbase = b + static_cast<std::size_t>(j) * k;
      __m256 acc = _mm256_setzero_ps();
      for (int p = 0; p < k; ++p) {
        const __m256 bv =
            _mm256_i32gather_ps(bbase + p, stride, sizeof(float));
        acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(arow[p]), bv));
      }
      _mm256_storeu_ps(crow + j, _mm256_add_ps(_mm256_loadu_ps(crow + j), acc));
    }
    for (; j < n; ++j) {
      const float* brow = b + static_cast<std::size_t>(j) * k;
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
}

// --- avx2fma: fused, reassociated matmuls (divergent, opt-in) -------------

// Register-blocked like the avx2 pair, but with fused multiply-adds.
template <int Tiles>
inline void fma_accum_col_tile(const float* acol, std::size_t astride,
                               const float* b, float* crow, int j, int k,
                               int n) {
  __m256 acc[Tiles];
  for (int t = 0; t < Tiles; ++t) {
    acc[t] = _mm256_loadu_ps(crow + j + 8 * t);
  }
  for (int p = 0; p < k; ++p) {
    const float av = acol[static_cast<std::size_t>(p) * astride];
    if (av == 0.0f) continue;
    const float* brow = b + static_cast<std::size_t>(p) * n + j;
    const __m256 av8 = _mm256_set1_ps(av);
    for (int t = 0; t < Tiles; ++t) {
      acc[t] = _mm256_fmadd_ps(av8, _mm256_loadu_ps(brow + 8 * t), acc[t]);
    }
  }
  for (int t = 0; t < Tiles; ++t) {
    _mm256_storeu_ps(crow + j + 8 * t, acc[t]);
  }
}

inline void fma_matmul_row(const float* acol, std::size_t astride,
                           const float* b, float* crow, int k, int n) {
  int j = 0;
  for (; j + 32 <= n; j += 32) {
    fma_accum_col_tile<4>(acol, astride, b, crow, j, k, n);
  }
  for (; j + 8 <= n; j += 8) {
    fma_accum_col_tile<1>(acol, astride, b, crow, j, k, n);
  }
  for (; j < n; ++j) {
    float acc = crow[j];
    for (int p = 0; p < k; ++p) {
      const float av = acol[static_cast<std::size_t>(p) * astride];
      if (av == 0.0f) continue;
      acc += av * b[static_cast<std::size_t>(p) * n + j];
    }
    crow[j] = acc;
  }
}

void fma_matmul_block(const float* a, const float* b, float* c, int r0,
                      int r1, int k, int n) {
  for (int i = r0; i < r1; ++i) {
    fma_matmul_row(a + static_cast<std::size_t>(i) * k, 1, b,
                   c + static_cast<std::size_t>(i) * n, k, n);
  }
}

void fma_matmul_tn_block(const float* a, const float* b, float* c, int r0,
                         int r1, int m, int k, int n) {
  for (int i = r0; i < r1; ++i) {
    fma_matmul_row(a + i, static_cast<std::size_t>(m), b,
                   c + static_cast<std::size_t>(i) * n, k, n);
  }
}

float hsum8(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_movehdup_ps(lo));
  return _mm_cvtss_f32(lo);
}

// B rows are contiguous over p here, so each c[i][j] runs an 8-lane
// partial-sum dot product (fmadd) and reduces at the end — the fastest
// shape for this kernel, and the clearest example of why avx2fma is
// bitwise-divergent.
void fma_matmul_nt_block(const float* a, const float* b, float* c, int r0,
                         int r1, int k, int n) {
  const int k8 = k & ~7;
  for (int i = r0; i < r1; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* crow = c + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<std::size_t>(j) * k;
      __m256 acc8 = _mm256_setzero_ps();
      int p = 0;
      for (; p < k8; p += 8) {
        acc8 = _mm256_fmadd_ps(_mm256_loadu_ps(arow + p),
                               _mm256_loadu_ps(brow + p), acc8);
      }
      float acc = hsum8(acc8);
      for (; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
}

// --- Row-indexing / elementwise kernels (bitwise-safe, shared) ------------

void avx2_gather_rows(const float* src, const int* idx, int nrows, int cols,
                      float* dst) {
  for (int i = 0; i < nrows; ++i) {
    std::memcpy(dst + static_cast<std::size_t>(i) * cols,
                src + static_cast<std::size_t>(idx[i]) * cols,
                static_cast<std::size_t>(cols) * sizeof(float));
  }
}

void avx2_scatter_rows(float* dst, const int* idx, int nrows, int cols,
                       const float* src) {
  for (int i = 0; i < nrows; ++i) {
    std::memcpy(dst + static_cast<std::size_t>(idx[i]) * cols,
                src + static_cast<std::size_t>(i) * cols,
                static_cast<std::size_t>(cols) * sizeof(float));
  }
}

// Row iteration stays sequential (ascending i) in both indexed adds so
// duplicate target rows accumulate in scalar order; only the independent
// columns inside one row are vectorized.
void avx2_indexed_row_add(float* dst, const int* idx, int nrows, int cols,
                          const float* src) {
  const int c8 = cols & ~7;
  for (int i = 0; i < nrows; ++i) {
    float* out = dst + static_cast<std::size_t>(idx[i]) * cols;
    const float* in = src + static_cast<std::size_t>(i) * cols;
    int c = 0;
    for (; c < c8; c += 8) {
      _mm256_storeu_ps(out + c, _mm256_add_ps(_mm256_loadu_ps(out + c),
                                              _mm256_loadu_ps(in + c)));
    }
    for (; c < cols; ++c) out[c] += in[c];
  }
}

void avx2_gathered_row_add(float* dst, const int* idx, int nrows, int cols,
                           const float* src) {
  const int c8 = cols & ~7;
  for (int i = 0; i < nrows; ++i) {
    float* out = dst + static_cast<std::size_t>(i) * cols;
    const float* in = src + static_cast<std::size_t>(idx[i]) * cols;
    int c = 0;
    for (; c < c8; c += 8) {
      _mm256_storeu_ps(out + c, _mm256_add_ps(_mm256_loadu_ps(out + c),
                                              _mm256_loadu_ps(in + c)));
    }
    for (; c < cols; ++c) out[c] += in[c];
  }
}

void avx2_scale_rows(float* data, const float* factors, int rows, int cols) {
  const int c8 = cols & ~7;
  for (int r = 0; r < rows; ++r) {
    float* row = data + static_cast<std::size_t>(r) * cols;
    const __m256 f8 = _mm256_set1_ps(factors[r]);
    int c = 0;
    for (; c < c8; c += 8) {
      _mm256_storeu_ps(row + c, _mm256_mul_ps(_mm256_loadu_ps(row + c), f8));
    }
    for (; c < cols; ++c) row[c] *= factors[r];
  }
}

void avx2_add_scaled_rows(float* dst, const float* src, const float* factors,
                          int rows, int cols) {
  const int c8 = cols & ~7;
  for (int r = 0; r < rows; ++r) {
    float* out = dst + static_cast<std::size_t>(r) * cols;
    const float* in = src + static_cast<std::size_t>(r) * cols;
    const __m256 f8 = _mm256_set1_ps(factors[r]);
    int c = 0;
    for (; c < c8; c += 8) {
      const __m256 prod = _mm256_mul_ps(_mm256_loadu_ps(in + c), f8);
      _mm256_storeu_ps(out + c,
                       _mm256_add_ps(_mm256_loadu_ps(out + c), prod));
    }
    for (; c < cols; ++c) out[c] += in[c] * factors[r];
  }
}

void avx2_axpy(float* y, const float* x, float s, std::size_t n) {
  const std::size_t n8 = n & ~std::size_t{7};
  const __m256 s8 = _mm256_set1_ps(s);
  std::size_t i = 0;
  for (; i < n8; i += 8) {
    const __m256 prod = _mm256_mul_ps(_mm256_loadu_ps(x + i), s8);
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), prod));
  }
  for (; i < n; ++i) y[i] += x[i] * s;
}

void avx2_mul_inplace(float* y, const float* x, std::size_t n) {
  const std::size_t n8 = n & ~std::size_t{7};
  std::size_t i = 0;
  for (; i < n8; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_mul_ps(_mm256_loadu_ps(y + i), _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] *= x[i];
}

void avx2_madd(float* dst, const float* a, const float* b, std::size_t n) {
  const std::size_t n8 = n & ~std::size_t{7};
  std::size_t i = 0;
  for (; i < n8; i += 8) {
    const __m256 prod =
        _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i), prod));
  }
  for (; i < n; ++i) dst[i] += a[i] * b[i];
}

void avx2_add_bias_rows(float* m, const float* bias, int rows, int cols) {
  const int c8 = cols & ~7;
  for (int r = 0; r < rows; ++r) {
    float* row = m + static_cast<std::size_t>(r) * cols;
    int c = 0;
    for (; c < c8; c += 8) {
      _mm256_storeu_ps(row + c, _mm256_add_ps(_mm256_loadu_ps(row + c),
                                              _mm256_loadu_ps(bias + c)));
    }
    for (; c < cols; ++c) row[c] += bias[c];
  }
}

void avx2_colsum_add(float* dst, const float* src, int rows, int cols) {
  const int c8 = cols & ~7;
  for (int r = 0; r < rows; ++r) {
    const float* row = src + static_cast<std::size_t>(r) * cols;
    int c = 0;
    for (; c < c8; c += 8) {
      _mm256_storeu_ps(dst + c, _mm256_add_ps(_mm256_loadu_ps(dst + c),
                                              _mm256_loadu_ps(row + c)));
    }
    for (; c < cols; ++c) dst[c] += row[c];
  }
}

void avx2_gru_blend(const float* z, const float* h, const float* hc,
                    float* out, std::size_t n) {
  const std::size_t n8 = n & ~std::size_t{7};
  const __m256 ones = _mm256_set1_ps(1.0f);
  std::size_t i = 0;
  for (; i < n8; i += 8) {
    const __m256 zv = _mm256_loadu_ps(z + i);
    const __m256 keep =
        _mm256_mul_ps(_mm256_sub_ps(ones, zv), _mm256_loadu_ps(h + i));
    const __m256 cand = _mm256_mul_ps(zv, _mm256_loadu_ps(hc + i));
    _mm256_storeu_ps(out + i, _mm256_add_ps(keep, cand));
  }
  for (; i < n; ++i) {
    const float omz = 1.0f - z[i];
    const float keep = omz * h[i];
    const float cand = z[i] * hc[i];
    out[i] = keep + cand;
  }
}

constexpr Ops kAvx2Ops = {
    "avx2",
    avx2_matmul_block,
    avx2_matmul_tn_block,
    avx2_matmul_nt_block,
    avx2_gather_rows,
    avx2_scatter_rows,
    avx2_indexed_row_add,
    avx2_gathered_row_add,
    avx2_scale_rows,
    avx2_add_scaled_rows,
    avx2_axpy,
    avx2_mul_inplace,
    avx2_madd,
    avx2_add_bias_rows,
    avx2_colsum_add,
    avx2_gru_blend,
};

// Only the matmuls diverge; everything per-element reuses the avx2 kernels.
constexpr Ops kAvx2FmaOps = {
    "avx2fma",
    fma_matmul_block,
    fma_matmul_tn_block,
    fma_matmul_nt_block,
    avx2_gather_rows,
    avx2_scatter_rows,
    avx2_indexed_row_add,
    avx2_gathered_row_add,
    avx2_scale_rows,
    avx2_add_scaled_rows,
    avx2_axpy,
    avx2_mul_inplace,
    avx2_madd,
    avx2_add_bias_rows,
    avx2_colsum_add,
    avx2_gru_blend,
};

}  // namespace

const Ops* avx2_ops() { return &kAvx2Ops; }
const Ops* avx2fma_ops() { return &kAvx2FmaOps; }

}  // namespace rn::ag::kern
