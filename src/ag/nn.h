// Neural-network building blocks on top of the autodiff tape: dense layers,
// GRU cells (RouteNet's path/link update functions), and MLPs (the readout).
#pragma once

#include <string>
#include <vector>

#include "ag/tape.h"
#include "util/rng.h"

namespace rn::ag {

enum class Activation { kNone, kRelu, kSigmoid, kTanh };

// Fully-connected layer: y = act(x W + b), W is in×out.
class Dense {
 public:
  Dense(int in_dim, int out_dim, Activation act, Rng& rng,
        const std::string& name);

  ValueId apply(Tape& tape, ValueId x) const;

  int in_dim() const { return w_.value.rows(); }
  int out_dim() const { return w_.value.cols(); }

  std::vector<Parameter*> params();

 private:
  mutable Parameter w_;
  mutable Parameter b_;
  Activation act_;
};

// Gated recurrent unit cell operating on row-batches:
//   z  = σ(x Wz + h Uz + bz)
//   r  = σ(x Wr + h Ur + br)
//   h~ = tanh(x Wh + (r∘h) Uh + bh)
//   h' = (1−z)∘h + z∘h~
// RouteNet uses one GRU as the path-update RNN (x = link state, h = path
// state) and another as the link-update function (x = aggregated messages,
// h = link state).
class GruCell {
 public:
  GruCell(int input_dim, int hidden_dim, Rng& rng, const std::string& name);

  // x: N×input_dim, h: N×hidden_dim → new hidden N×hidden_dim.
  ValueId step(Tape& tape, ValueId x, ValueId h) const;

  int input_dim() const { return wz_.value.rows(); }
  int hidden_dim() const { return wz_.value.cols(); }

  std::vector<Parameter*> params();

 private:
  mutable Parameter wz_, uz_, bz_;
  mutable Parameter wr_, ur_, br_;
  mutable Parameter wh_, uh_, bh_;
};

// Multi-layer perceptron; hidden layers use ReLU, final layer is linear
// unless an output activation is requested.
class Mlp {
 public:
  // dims = {in, h1, ..., out}.
  Mlp(const std::vector<int>& dims, Rng& rng, const std::string& name,
      Activation output_act = Activation::kNone);

  ValueId apply(Tape& tape, ValueId x) const;

  int in_dim() const;
  int out_dim() const;

  std::vector<Parameter*> params();

 private:
  std::vector<Dense> layers_;
};

}  // namespace rn::ag
