// Neural-network building blocks on top of the autodiff tape: dense layers,
// GRU cells (RouteNet's path/link update functions), and MLPs (the readout).
#pragma once

#include <string>
#include <vector>

#include "ag/tape.h"
#include "util/rng.h"

namespace rn::ag {

enum class Activation { kNone, kRelu, kSigmoid, kTanh };

// Fully-connected layer: y = act(x W + b), W is in×out.
class Dense {
 public:
  Dense(int in_dim, int out_dim, Activation act, Rng& rng,
        const std::string& name);

  ValueId apply(Tape& tape, ValueId x) const;

  int in_dim() const { return w_.value.rows(); }
  int out_dim() const { return w_.value.cols(); }

  std::vector<Parameter*> params();

 private:
  mutable Parameter w_;
  mutable Parameter b_;
  Activation act_;
};

// Gated recurrent unit cell operating on row-batches:
//   z  = σ(x Wz + h Uz + bz)
//   r  = σ(x Wr + h Ur + br)
//   h~ = tanh(x Wh + (r∘h) Uh + bh)
//   h' = (1−z)∘h + z∘h~
// RouteNet uses one GRU as the path-update RNN (x = link state, h = path
// state) and another as the link-update function (x = aggregated messages,
// h = link state).
class GruCell {
 public:
  GruCell(int input_dim, int hidden_dim, Rng& rng, const std::string& name);

  // x: N×input_dim, h: N×hidden_dim → new hidden N×hidden_dim. Records the
  // single fused gru_step node when fused_gru_enabled(), the composed
  // ~20-node expression otherwise; both produce bitwise-identical values.
  ValueId step(Tape& tape, ValueId x, ValueId h) const;

  // step() with both inputs gathered from row-state tensors:
  // x = x_src[x_idx], h = h_src[h_idx]. The fused path folds the gathers
  // into the gru_step node; the composed path records explicit
  // gather_rows ops. RouteNet's per-hop path update.
  ValueId step_gathered(Tape& tape, ValueId x_src, std::vector<int> x_idx,
                        ValueId h_src, std::vector<int> h_idx) const;

  // The cell's nine parameters as fused-op references.
  GruWeights weights() const;

  int input_dim() const { return wz_.value.rows(); }
  int hidden_dim() const { return wz_.value.cols(); }

  std::vector<Parameter*> params();

 private:
  mutable Parameter wz_, uz_, bz_;
  mutable Parameter wr_, ur_, br_;
  mutable Parameter wh_, uh_, bh_;
};

// Fused GRU is on unless RN_FUSED_GRU=0 (read once at first use); the
// setter is the programmatic/test seam for A/B-ing fused vs composed.
bool fused_gru_enabled();
void set_fused_gru(bool enabled);

// Multi-layer perceptron; hidden layers use ReLU, final layer is linear
// unless an output activation is requested.
class Mlp {
 public:
  // dims = {in, h1, ..., out}.
  Mlp(const std::vector<int>& dims, Rng& rng, const std::string& name,
      Activation output_act = Activation::kNone);

  ValueId apply(Tape& tape, ValueId x) const;

  int in_dim() const;
  int out_dim() const;

  std::vector<Parameter*> params();

 private:
  std::vector<Dense> layers_;
};

}  // namespace rn::ag
