#include "ag/serialize.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace rn::ag {

namespace {

constexpr char kMagicV1[] = "RNCKPT1\n";
constexpr char kMagicV2[] = "RNCKPT2\n";
constexpr std::size_t kMagicLen = 8;

// Per-field sanity caps. Real checkpoints stay far below these; a reader
// hitting them is looking at corruption and must fail before allocating.
constexpr std::uint32_t kMaxNameLen = 4096;
constexpr std::uint32_t kMaxRngStateLen = 1 << 20;
// Element cap used only when the stream size cannot be determined.
constexpr std::uint64_t kMaxElemsUnsized = 1ull << 26;

std::string shape_str(int rows, int cols) {
  return std::to_string(rows) + "x" + std::to_string(cols);
}

// Bytes left on the stream, or -1 when the stream is not seekable.
std::streamoff remaining_bytes(std::istream& in) {
  const std::istream::pos_type pos = in.tellg();
  if (pos == std::istream::pos_type(-1)) return -1;
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(pos);
  if (end == std::istream::pos_type(-1)) return -1;
  return end - pos;
}

// Reads one RNCKPT1-style parameter block (count + named tensors) with
// bounds validation against the remaining stream size, so corrupt headers
// fail cleanly instead of triggering huge allocations.
std::vector<std::pair<std::string, Tensor>> read_parameter_block(
    std::istream& in) {
  std::uint32_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  RN_CHECK(in.good(), "truncated checkpoint: missing parameter count");
  std::vector<std::pair<std::string, Tensor>> loaded;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t name_len = 0;
    in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
    RN_CHECK(in.good(), "truncated checkpoint: missing parameter name");
    RN_CHECK(name_len > 0 && name_len <= kMaxNameLen,
             "corrupt checkpoint: parameter name length " +
                 std::to_string(name_len));
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    std::int32_t rows = 0, cols = 0;
    in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
    in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
    RN_CHECK(in.good() && rows >= 0 && cols >= 0,
             "corrupt checkpoint entry for parameter '" + name + "'");
    const std::uint64_t elems =
        static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols);
    const std::streamoff left = remaining_bytes(in);
    if (left >= 0) {
      RN_CHECK(elems * sizeof(float) <= static_cast<std::uint64_t>(left),
               "corrupt checkpoint: parameter '" + name + "' claims shape " +
                   shape_str(rows, cols) + " but only " +
                   std::to_string(left) + " bytes remain");
    } else {
      RN_CHECK(elems <= kMaxElemsUnsized,
               "corrupt checkpoint: parameter '" + name +
                   "' claims absurd shape " + shape_str(rows, cols));
    }
    Tensor t(rows, cols);
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(sizeof(float)) * t.size());
    RN_CHECK(in.good(), "truncated checkpoint payload for parameter '" +
                            name + "'");
    loaded.emplace_back(std::move(name), std::move(t));
  }
  return loaded;
}

// --- RNCKPT2 byte-level helpers ------------------------------------------

template <typename T>
void put_pod(std::string& buf, const T& v) {
  buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_bytes(std::string& buf, const std::string& s) {
  const auto len = static_cast<std::uint32_t>(s.size());
  put_pod(buf, len);
  buf.append(s);
}

void put_tensor(std::string& buf, const Tensor& t) {
  const std::int32_t rows = t.rows();
  const std::int32_t cols = t.cols();
  put_pod(buf, rows);
  put_pod(buf, cols);
  buf.append(reinterpret_cast<const char*>(t.data()),
             sizeof(float) * static_cast<std::size_t>(t.size()));
}

// Cursor over an in-memory payload. Every read is bounds-checked against
// the payload size, so the parser can never over-read or over-allocate no
// matter what the (already CRC-validated, but defensively distrusted)
// fields claim.
class ByteReader {
 public:
  ByteReader(const char* data, std::size_t size) : data_(data), size_(size) {}

  template <typename T>
  T get_pod() {
    require(sizeof(T), "fixed-width field");
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string get_bytes(std::uint32_t max_len, const char* what) {
    const auto len = get_pod<std::uint32_t>();
    RN_CHECK(len <= max_len, std::string("corrupt checkpoint: ") + what +
                                 " length " + std::to_string(len) +
                                 " exceeds cap " + std::to_string(max_len));
    require(len, what);
    std::string s(data_ + pos_, len);
    pos_ += len;
    return s;
  }

  Tensor get_tensor(const std::string& name) {
    const auto rows = get_pod<std::int32_t>();
    const auto cols = get_pod<std::int32_t>();
    RN_CHECK(rows >= 0 && cols >= 0,
             "corrupt checkpoint: tensor '" + name + "' has negative shape " +
                 shape_str(rows, cols));
    const std::uint64_t bytes = static_cast<std::uint64_t>(rows) *
                                static_cast<std::uint64_t>(cols) *
                                sizeof(float);
    RN_CHECK(bytes <= size_ - pos_,
             "corrupt checkpoint: tensor '" + name + "' claims shape " +
                 shape_str(rows, cols) + " past the end of the payload");
    Tensor t(rows, cols);
    std::memcpy(t.data(), data_ + pos_, static_cast<std::size_t>(bytes));
    pos_ += static_cast<std::size_t>(bytes);
    return t;
  }

  void require(std::uint64_t n, const char* what) {
    RN_CHECK(n <= size_ - pos_,
             std::string("truncated checkpoint payload reading ") + what);
  }

  bool done() const { return pos_ == size_; }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

void put_named_tensors(
    std::string& buf,
    const std::vector<std::pair<std::string, Tensor>>& named) {
  put_pod(buf, static_cast<std::uint32_t>(named.size()));
  for (const auto& [name, t] : named) {
    put_bytes(buf, name);
    put_tensor(buf, t);
  }
}

std::vector<std::pair<std::string, Tensor>> get_named_tensors(ByteReader& r) {
  const auto count = r.get_pod<std::uint32_t>();
  std::vector<std::pair<std::string, Tensor>> named;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name = r.get_bytes(kMaxNameLen, "tensor name");
    Tensor t = r.get_tensor(name);
    named.emplace_back(std::move(name), std::move(t));
  }
  return named;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t crc) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = crc ^ 0xffffffffu;
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

void atomic_write_file(const std::string& path, const std::string& bytes) {
  // Same directory as the target so the rename cannot cross filesystems.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    RN_CHECK(out.good(), "cannot open temporary file for writing: " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      RN_CHECK(false, "write failure on temporary file: " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    RN_CHECK(false, "cannot rename " + tmp + " -> " + path + ": " +
                        ec.message());
  }
}

void save_parameters(std::ostream& out,
                     const std::vector<Parameter*>& params) {
  out.write(kMagicV1, kMagicLen);
  const auto count = static_cast<std::uint32_t>(params.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Parameter* p : params) {
    RN_CHECK(p != nullptr, "null parameter in save_parameters");
    const auto name_len = static_cast<std::uint32_t>(p->name.size());
    out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    out.write(p->name.data(), name_len);
    const std::int32_t rows = p->value.rows();
    const std::int32_t cols = p->value.cols();
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(sizeof(float)) * p->value.size());
  }
  RN_CHECK(out.good(), "write failure while saving parameters");
}

void save_parameters(const std::string& path,
                     const std::vector<Parameter*>& params) {
  std::ostringstream out(std::ios::binary);
  save_parameters(out, params);
  atomic_write_file(path, out.str());
}

void apply_named_tensors(
    const std::vector<std::pair<std::string, Tensor>>& named,
    const std::vector<Parameter*>& params, const std::string& context) {
  for (Parameter* p : params) {
    const auto it =
        std::find_if(named.begin(), named.end(),
                     [&](const auto& e) { return e.first == p->name; });
    RN_CHECK(it != named.end(),
             context + " is missing parameter '" + p->name +
                 "' (model expects shape " +
                 shape_str(p->value.rows(), p->value.cols()) + "; " +
                 context + " holds " + std::to_string(named.size()) +
                 " tensors)");
    RN_CHECK(it->second.same_shape(p->value),
             context + " shape mismatch for parameter '" + p->name +
                 "': " + context + " has " +
                 shape_str(it->second.rows(), it->second.cols()) +
                 ", model expects " +
                 shape_str(p->value.rows(), p->value.cols()));
    p->value = it->second;
  }
}

void load_parameters(std::istream& in,
                     const std::vector<Parameter*>& params) {
  char magic[kMagicLen];
  in.read(magic, kMagicLen);
  RN_CHECK(in.good() && std::string(magic, kMagicLen) == kMagicV1,
           "bad checkpoint magic");
  const std::vector<std::pair<std::string, Tensor>> loaded =
      read_parameter_block(in);
  apply_named_tensors(loaded, params, "checkpoint");
}

void load_parameters(const std::string& path,
                     const std::vector<Parameter*>& params) {
  std::ifstream in(path, std::ios::binary);
  RN_CHECK(in.good(), "cannot open checkpoint for reading: " + path);
  load_parameters(in, params);
}

std::string train_checkpoint_bytes(const TrainCheckpoint& ckpt) {
  std::string payload;
  put_named_tensors(payload, ckpt.params);

  put_pod(payload, static_cast<std::uint8_t>(ckpt.has_optimizer ? 1 : 0));
  if (ckpt.has_optimizer) {
    RN_CHECK(ckpt.adam_m.size() == ckpt.adam_v.size(),
             "optimizer moment lists differ in length");
    put_pod(payload, ckpt.adam_step);
    put_pod(payload, ckpt.lr);
    put_pod(payload, static_cast<std::uint32_t>(ckpt.adam_m.size()));
    for (std::size_t i = 0; i < ckpt.adam_m.size(); ++i) {
      RN_CHECK(ckpt.adam_m[i].first == ckpt.adam_v[i].first,
               "optimizer moment lists disagree on parameter order");
      put_bytes(payload, ckpt.adam_m[i].first);
      put_tensor(payload, ckpt.adam_m[i].second);
      put_tensor(payload, ckpt.adam_v[i].second);
    }
  }

  put_pod(payload, static_cast<std::uint32_t>(ckpt.rng_streams.size()));
  for (const auto& [name, state] : ckpt.rng_streams) {
    put_bytes(payload, name);
    put_bytes(payload, state);
  }

  put_pod(payload, static_cast<std::uint8_t>(ckpt.has_cursor ? 1 : 0));
  if (ckpt.has_cursor) {
    put_pod(payload, ckpt.epoch);
    put_pod(payload, ckpt.next_index);
    put_pod(payload, ckpt.total_batches);
    put_pod(payload, ckpt.best_eval_mre);
    put_pod(payload, ckpt.best_epoch);
    put_pod(payload, ckpt.epochs_since_best);
    put_pod(payload, ckpt.epoch_loss_sum);
    put_pod(payload, ckpt.epoch_batches);
    put_pod(payload, ckpt.epoch_samples);
    put_pod(payload, static_cast<std::uint32_t>(ckpt.order.size()));
    payload.append(reinterpret_cast<const char*>(ckpt.order.data()),
                   sizeof(std::int32_t) * ckpt.order.size());
  }

  std::string bytes;
  bytes.reserve(kMagicLen + sizeof(std::uint64_t) + payload.size() +
                sizeof(std::uint32_t));
  bytes.append(kMagicV2, kMagicLen);
  put_pod(bytes, static_cast<std::uint64_t>(payload.size()));
  bytes.append(payload);
  put_pod(bytes, crc32(payload.data(), payload.size()));
  return bytes;
}

TrainCheckpoint parse_train_checkpoint(const std::string& bytes) {
  constexpr std::size_t kHeader = kMagicLen + sizeof(std::uint64_t);
  constexpr std::size_t kTrailer = sizeof(std::uint32_t);
  RN_CHECK(bytes.size() >= kHeader + kTrailer,
           "truncated checkpoint: " + std::to_string(bytes.size()) +
               " bytes is smaller than the fixed header");
  const std::string magic = bytes.substr(0, kMagicLen);
  if (magic == kMagicV1) {
    // Bare RNCKPT1 parameter block: params only, no CRC to validate.
    std::istringstream in(bytes.substr(kMagicLen), std::ios::binary);
    TrainCheckpoint ckpt;
    ckpt.params = read_parameter_block(in);
    return ckpt;
  }
  RN_CHECK(magic == kMagicV2, "bad checkpoint magic");
  std::uint64_t payload_len = 0;
  std::memcpy(&payload_len, bytes.data() + kMagicLen, sizeof(payload_len));
  RN_CHECK(payload_len == bytes.size() - kHeader - kTrailer,
           "corrupt checkpoint: payload length " +
               std::to_string(payload_len) + " does not match file size " +
               std::to_string(bytes.size()));
  const char* payload = bytes.data() + kHeader;
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, payload + payload_len, sizeof(stored_crc));
  const std::uint32_t actual_crc =
      crc32(payload, static_cast<std::size_t>(payload_len));
  RN_CHECK(actual_crc == stored_crc,
           "checkpoint CRC mismatch: stored " + std::to_string(stored_crc) +
               ", computed " + std::to_string(actual_crc));

  ByteReader r(payload, static_cast<std::size_t>(payload_len));
  TrainCheckpoint ckpt;
  ckpt.params = get_named_tensors(r);

  if (r.get_pod<std::uint8_t>() != 0) {
    ckpt.has_optimizer = true;
    ckpt.adam_step = r.get_pod<std::int64_t>();
    ckpt.lr = r.get_pod<float>();
    const auto count = r.get_pod<std::uint32_t>();
    for (std::uint32_t i = 0; i < count; ++i) {
      std::string name = r.get_bytes(kMaxNameLen, "optimizer moment name");
      Tensor m = r.get_tensor(name);
      Tensor v = r.get_tensor(name);
      ckpt.adam_m.emplace_back(name, std::move(m));
      ckpt.adam_v.emplace_back(std::move(name), std::move(v));
    }
  }

  const auto rng_count = r.get_pod<std::uint32_t>();
  for (std::uint32_t i = 0; i < rng_count; ++i) {
    std::string name = r.get_bytes(kMaxNameLen, "rng stream name");
    std::string state = r.get_bytes(kMaxRngStateLen, "rng stream state");
    ckpt.rng_streams.emplace_back(std::move(name), std::move(state));
  }

  if (r.get_pod<std::uint8_t>() != 0) {
    ckpt.has_cursor = true;
    ckpt.epoch = r.get_pod<std::int32_t>();
    ckpt.next_index = r.get_pod<std::int64_t>();
    ckpt.total_batches = r.get_pod<std::uint64_t>();
    ckpt.best_eval_mre = r.get_pod<double>();
    ckpt.best_epoch = r.get_pod<std::int32_t>();
    ckpt.epochs_since_best = r.get_pod<std::int32_t>();
    ckpt.epoch_loss_sum = r.get_pod<double>();
    ckpt.epoch_batches = r.get_pod<std::int32_t>();
    ckpt.epoch_samples = r.get_pod<std::uint64_t>();
    const auto order_len = r.get_pod<std::uint32_t>();
    r.require(static_cast<std::uint64_t>(order_len) * sizeof(std::int32_t),
              "epoch sample order");
    ckpt.order.resize(order_len);
    for (std::uint32_t i = 0; i < order_len; ++i) {
      ckpt.order[i] = r.get_pod<std::int32_t>();
    }
    RN_CHECK(ckpt.next_index >= 0 &&
                 ckpt.next_index <=
                     static_cast<std::int64_t>(ckpt.order.size()),
             "corrupt checkpoint: cursor index " +
                 std::to_string(ckpt.next_index) + " outside the epoch's " +
                 std::to_string(ckpt.order.size()) + "-sample order");
  }
  RN_CHECK(r.done(), "corrupt checkpoint: trailing bytes after the cursor");
  return ckpt;
}

std::size_t save_train_checkpoint(const std::string& path,
                                  const TrainCheckpoint& ckpt) {
  const std::string bytes = train_checkpoint_bytes(ckpt);
  atomic_write_file(path, bytes);
  return bytes.size();
}

TrainCheckpoint load_train_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  RN_CHECK(in.good(), "cannot open checkpoint for reading: " + path);
  std::ostringstream buf(std::ios::binary);
  buf << in.rdbuf();
  RN_CHECK(!in.bad(), "read failure on checkpoint: " + path);
  return parse_train_checkpoint(buf.str());
}

std::string checkpoint_file_name(const std::string& base, std::uint64_t seq) {
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".%06llu",
                static_cast<unsigned long long>(seq));
  return base + suffix;
}

std::vector<CheckpointFile> list_checkpoints(const std::string& base) {
  namespace fs = std::filesystem;
  const fs::path base_path(base);
  fs::path dir = base_path.parent_path();
  if (dir.empty()) dir = ".";
  const std::string prefix = base_path.filename().string() + ".";
  std::vector<CheckpointFile> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() <= prefix.size() ||
        name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    const std::string suffix = name.substr(prefix.size());
    if (suffix.empty() ||
        !std::all_of(suffix.begin(), suffix.end(),
                     [](unsigned char c) { return std::isdigit(c); })) {
      continue;
    }
    found.push_back({std::stoull(suffix), entry.path().string()});
  }
  std::sort(found.begin(), found.end(),
            [](const CheckpointFile& a, const CheckpointFile& b) {
              return a.seq > b.seq;
            });
  return found;
}

TrainCheckpoint load_train_checkpoint_auto(const std::string& path,
                                           std::string* loaded_path,
                                           int* fallbacks) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (fs::is_regular_file(path, ec)) {
    TrainCheckpoint ckpt = load_train_checkpoint(path);
    if (loaded_path != nullptr) *loaded_path = path;
    if (fallbacks != nullptr) *fallbacks = 0;
    return ckpt;
  }
  const std::vector<CheckpointFile> candidates = list_checkpoints(path);
  RN_CHECK(!candidates.empty(),
           "no checkpoint found at '" + path +
               "' (neither a file nor a rotation base with <base>.NNNNNN "
               "files)");
  int skipped = 0;
  std::string last_error;
  for (const CheckpointFile& c : candidates) {
    try {
      TrainCheckpoint ckpt = load_train_checkpoint(c.path);
      if (loaded_path != nullptr) *loaded_path = c.path;
      if (fallbacks != nullptr) *fallbacks = skipped;
      return ckpt;
    } catch (const std::exception& e) {
      ++skipped;
      last_error = e.what();
    }
  }
  RN_CHECK(false, "all " + std::to_string(candidates.size()) +
                      " checkpoint files under base '" + path +
                      "' failed to load; last error: " + last_error);
  return {};  // unreachable
}

}  // namespace rn::ag
