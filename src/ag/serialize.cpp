#include "ag/serialize.h"

#include <cstdint>
#include <fstream>
#include <map>
#include <ostream>

namespace rn::ag {

namespace {
constexpr char kMagic[] = "RNCKPT1\n";
constexpr std::size_t kMagicLen = 8;
}  // namespace

void save_parameters(std::ostream& out,
                     const std::vector<Parameter*>& params) {
  out.write(kMagic, kMagicLen);
  const auto count = static_cast<std::uint32_t>(params.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Parameter* p : params) {
    RN_CHECK(p != nullptr, "null parameter in save_parameters");
    const auto name_len = static_cast<std::uint32_t>(p->name.size());
    out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    out.write(p->name.data(), name_len);
    const std::int32_t rows = p->value.rows();
    const std::int32_t cols = p->value.cols();
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(sizeof(float)) * p->value.size());
  }
  RN_CHECK(out.good(), "write failure while saving parameters");
}

void save_parameters(const std::string& path,
                     const std::vector<Parameter*>& params) {
  std::ofstream out(path, std::ios::binary);
  RN_CHECK(out.good(), "cannot open checkpoint for writing: " + path);
  save_parameters(out, params);
}

void load_parameters(std::istream& in,
                     const std::vector<Parameter*>& params) {
  char magic[kMagicLen];
  in.read(magic, kMagicLen);
  RN_CHECK(in.good() && std::string(magic, kMagicLen) == kMagic,
           "bad checkpoint magic");
  std::uint32_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  std::map<std::string, Tensor> loaded;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t name_len = 0;
    in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    std::int32_t rows = 0, cols = 0;
    in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
    in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
    RN_CHECK(in.good() && rows >= 0 && cols >= 0, "corrupt checkpoint entry");
    Tensor t(rows, cols);
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(sizeof(float)) * t.size());
    RN_CHECK(in.good(), "truncated checkpoint payload");
    loaded.emplace(std::move(name), std::move(t));
  }
  for (Parameter* p : params) {
    auto it = loaded.find(p->name);
    RN_CHECK(it != loaded.end(), "checkpoint missing parameter: " + p->name);
    RN_CHECK(it->second.same_shape(p->value),
             "checkpoint shape mismatch for parameter: " + p->name);
    p->value = it->second;
  }
}

void load_parameters(const std::string& path,
                     const std::vector<Parameter*>& params) {
  std::ifstream in(path, std::ios::binary);
  RN_CHECK(in.good(), "cannot open checkpoint for reading: " + path);
  load_parameters(in, params);
}

}  // namespace rn::ag
