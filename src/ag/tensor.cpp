#include "ag/tensor.h"

namespace rn::ag {

Tensor::Tensor(int rows, int cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows) * cols, 0.0f) {
  RN_CHECK(rows >= 0 && cols >= 0, "negative tensor dimension");
}

Tensor::Tensor(int rows, int cols, float fill)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows) * cols, fill) {
  RN_CHECK(rows >= 0 && cols >= 0, "negative tensor dimension");
}

Tensor Tensor::from_rows(
    std::initializer_list<std::initializer_list<float>> rows) {
  const int r = static_cast<int>(rows.size());
  RN_CHECK(r > 0, "from_rows needs at least one row");
  const int c = static_cast<int>(rows.begin()->size());
  Tensor t(r, c);
  int i = 0;
  for (const auto& row : rows) {
    RN_CHECK(static_cast<int>(row.size()) == c, "ragged from_rows literal");
    int j = 0;
    for (float v : row) t.at(i, j++) = v;
    ++i;
  }
  return t;
}

Tensor Tensor::column(const std::vector<float>& values) {
  Tensor t(static_cast<int>(values.size()), 1);
  for (std::size_t i = 0; i < values.size(); ++i) t[i] = values[i];
  return t;
}

void Tensor::fill(float v) {
  std::fill(data_.begin(), data_.end(), v);
}

void Tensor::add_scaled(const Tensor& other, float s) {
  RN_CHECK(same_shape(other), "add_scaled shape mismatch");
  const std::size_t n = data_.size();
  for (std::size_t i = 0; i < n; ++i) data_[i] += other.data_[i] * s;
}

void Tensor::scale(float s) {
  for (float& v : data_) v *= s;
}

double Tensor::squared_norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return acc;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  RN_CHECK(a.cols() == b.rows(), "matmul inner-dimension mismatch");
  Tensor c(a.rows(), b.cols());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  // i-k-j loop order: streams through b and c rows, cache-friendly.
  for (int i = 0; i < m; ++i) {
    float* crow = c.row(i);
    const float* arow = a.row(i);
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.row(p);
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  RN_CHECK(a.rows() == b.rows(), "matmul_tn dimension mismatch");
  Tensor c(a.cols(), b.cols());
  const int m = a.cols(), k = a.rows(), n = b.cols();
  for (int p = 0; p < k; ++p) {
    const float* arow = a.row(p);
    const float* brow = b.row(p);
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c.row(i);
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  RN_CHECK(a.cols() == b.cols(), "matmul_nt dimension mismatch");
  Tensor c(a.rows(), b.rows());
  const int m = a.rows(), k = a.cols(), n = b.rows();
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (int j = 0; j < n; ++j) {
      const float* brow = b.row(j);
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
  return c;
}

}  // namespace rn::ag
