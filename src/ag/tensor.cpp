#include "ag/tensor.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "ag/kernels.h"
#include "obs/metrics.h"
#include "par/thread_pool.h"

namespace rn::ag {

Tensor::Tensor(int rows, int cols)
    : rows_(rows), cols_(cols),
      buf_(static_cast<std::size_t>(rows) * cols) {
  RN_CHECK(rows >= 0 && cols >= 0, "negative tensor dimension");
  // Pooled buffers come back dirty; the zero-filled contract stands.
  std::memset(buf_.data(), 0,
              static_cast<std::size_t>(rows) * cols * sizeof(float));
}

Tensor::Tensor(int rows, int cols, float fill)
    : rows_(rows), cols_(cols),
      buf_(static_cast<std::size_t>(rows) * cols) {
  RN_CHECK(rows >= 0 && cols >= 0, "negative tensor dimension");
  const std::size_t n = static_cast<std::size_t>(rows) * cols;
  float* p = buf_.data();
  std::fill(p, p + n, fill);
}

Tensor::Tensor(const Tensor& other)
    : rows_(other.rows_), cols_(other.cols_),
      buf_(static_cast<std::size_t>(other.rows_) * other.cols_) {
  const std::size_t n = static_cast<std::size_t>(rows_) * cols_;
  if (n != 0) std::memcpy(buf_.data(), other.buf_.data(), n * sizeof(float));
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  const std::size_t n = static_cast<std::size_t>(other.rows_) * other.cols_;
  if (buf_.capacity() < n) buf_ = detail::Buffer(n);
  rows_ = other.rows_;
  cols_ = other.cols_;
  if (n != 0) std::memcpy(buf_.data(), other.buf_.data(), n * sizeof(float));
  return *this;
}

Tensor Tensor::from_rows(
    std::initializer_list<std::initializer_list<float>> rows) {
  const int r = static_cast<int>(rows.size());
  RN_CHECK(r > 0, "from_rows needs at least one row");
  const int c = static_cast<int>(rows.begin()->size());
  Tensor t(r, c);
  int i = 0;
  for (const auto& row : rows) {
    RN_CHECK(static_cast<int>(row.size()) == c, "ragged from_rows literal");
    int j = 0;
    for (float v : row) t.at(i, j++) = v;
    ++i;
  }
  return t;
}

Tensor Tensor::column(const std::vector<float>& values) {
  Tensor t(static_cast<int>(values.size()), 1);
  for (std::size_t i = 0; i < values.size(); ++i) t[i] = values[i];
  return t;
}

void Tensor::fill(float v) {
  float* p = buf_.data();
  std::fill(p, p + static_cast<std::size_t>(size()), v);
}

void Tensor::add_scaled(const Tensor& other, float s) {
  RN_CHECK(same_shape(other), "add_scaled shape mismatch");
  kern::active().axpy(buf_.data(), other.buf_.data(),
                      s, static_cast<std::size_t>(size()));
}

void Tensor::scale(float s) {
  float* p = buf_.data();
  const std::size_t n = static_cast<std::size_t>(size());
  for (std::size_t i = 0; i < n; ++i) p[i] *= s;
}

double Tensor::squared_norm() const {
  const float* p = buf_.data();
  const std::size_t n = static_cast<std::size_t>(size());
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<double>(p[i]) * p[i];
  }
  return acc;
}

namespace {

std::atomic<long long> g_parallel_macs{1LL << 18};

struct KernelMetrics {
  obs::Counter& calls =
      obs::Registry::global().counter("ag.matmul.calls_total");
  obs::Counter& flops =
      obs::Registry::global().counter("ag.matmul.flops_total");
  obs::Counter& parallel =
      obs::Registry::global().counter("ag.matmul.parallel_total");
};

KernelMetrics& kernel_metrics() {
  static KernelMetrics m;
  return m;
}

// Runs body over C's row range [0, rows), threaded when the kernel is big
// enough. Every kernel computes a C row entirely within its chunk, in the
// serial accumulation order, so chunking never changes results.
//
// The grain is shape-aware: wide-but-short operands (k·n per row large)
// split fine, while tall-skinny ones (the paper shapes — thousands of rows,
// 16–64 state dims) coarsen so each chunk still carries at least a
// threshold's worth of multiply-adds. Capping chunk count at the pool width
// stops the old failure mode where 4096 rows fanned out as 128 tile-sized
// tasks whose enqueue/steal overhead outweighed the 2-thread speedup.
template <typename Body>
void run_rows(int rows, long long macs, const Body& body) {
  KernelMetrics& m = kernel_metrics();
  m.calls.add(1);
  m.flops.add(static_cast<std::uint64_t>(2 * macs));
  const long long threshold = g_parallel_macs.load(std::memory_order_relaxed);
  const int threads = par::global_threads();
  if (macs >= threshold && threads > 1 && rows > 0) {
    const long long macs_per_row = std::max(1LL, macs / rows);
    const long long rows_per_threshold =
        (threshold + macs_per_row - 1) / macs_per_row;
    const long long rows_per_thread = (rows + threads - 1) / threads;
    long long grain = std::max<long long>(
        {kern::kTileRows, rows_per_threshold, rows_per_thread});
    grain = (grain + kern::kTileRows - 1) / kern::kTileRows * kern::kTileRows;
    m.parallel.add(1);
    par::parallel_for(0, rows, grain,
                      [&body](std::int64_t lo, std::int64_t hi) {
                        body(static_cast<int>(lo), static_cast<int>(hi));
                      });
  } else {
    body(0, rows);
  }
}

}  // namespace

long long matmul_parallel_threshold() {
  return g_parallel_macs.load(std::memory_order_relaxed);
}

void set_matmul_parallel_threshold(long long macs) {
  g_parallel_macs.store(std::max(0LL, macs), std::memory_order_relaxed);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  RN_CHECK(a.cols() == b.rows(), "matmul inner-dimension mismatch");
  Tensor c(a.rows(), b.cols());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  const kern::Ops& ops = kern::active();
  run_rows(m, static_cast<long long>(m) * k * n, [&](int r0, int r1) {
    ops.matmul_block(a.row(0), b.row(0), c.row(0), r0, r1, k, n);
  });
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  RN_CHECK(a.rows() == b.rows(), "matmul_tn dimension mismatch");
  Tensor c(a.cols(), b.cols());
  const int m = a.cols(), k = a.rows(), n = b.cols();
  const kern::Ops& ops = kern::active();
  run_rows(m, static_cast<long long>(m) * k * n, [&](int r0, int r1) {
    ops.matmul_tn_block(a.row(0), b.row(0), c.row(0), r0, r1, m, k, n);
  });
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  RN_CHECK(a.cols() == b.cols(), "matmul_nt dimension mismatch");
  Tensor c(a.rows(), b.rows());
  const int m = a.rows(), k = a.cols(), n = b.rows();
  const kern::Ops& ops = kern::active();
  run_rows(m, static_cast<long long>(m) * k * n, [&](int r0, int r1) {
    ops.matmul_nt_block(a.row(0), b.row(0), c.row(0), r0, r1, k, n);
  });
  return c;
}

}  // namespace rn::ag
