#include "ag/tensor.h"

#include <algorithm>
#include <atomic>

#include "obs/metrics.h"
#include "par/thread_pool.h"

namespace rn::ag {

Tensor::Tensor(int rows, int cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows) * cols, 0.0f) {
  RN_CHECK(rows >= 0 && cols >= 0, "negative tensor dimension");
}

Tensor::Tensor(int rows, int cols, float fill)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows) * cols, fill) {
  RN_CHECK(rows >= 0 && cols >= 0, "negative tensor dimension");
}

Tensor Tensor::from_rows(
    std::initializer_list<std::initializer_list<float>> rows) {
  const int r = static_cast<int>(rows.size());
  RN_CHECK(r > 0, "from_rows needs at least one row");
  const int c = static_cast<int>(rows.begin()->size());
  Tensor t(r, c);
  int i = 0;
  for (const auto& row : rows) {
    RN_CHECK(static_cast<int>(row.size()) == c, "ragged from_rows literal");
    int j = 0;
    for (float v : row) t.at(i, j++) = v;
    ++i;
  }
  return t;
}

Tensor Tensor::column(const std::vector<float>& values) {
  Tensor t(static_cast<int>(values.size()), 1);
  for (std::size_t i = 0; i < values.size(); ++i) t[i] = values[i];
  return t;
}

void Tensor::fill(float v) {
  std::fill(data_.begin(), data_.end(), v);
}

void Tensor::add_scaled(const Tensor& other, float s) {
  RN_CHECK(same_shape(other), "add_scaled shape mismatch");
  const std::size_t n = data_.size();
  for (std::size_t i = 0; i < n; ++i) data_[i] += other.data_[i] * s;
}

void Tensor::scale(float s) {
  for (float& v : data_) v *= s;
}

double Tensor::squared_norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return acc;
}

namespace {

// C-row tile: one chunk's working set of output rows; also the grain of the
// row-range parallelism so a chunk never splits a tile.
constexpr int kTileRows = 32;
// Inner-dimension tile: the reused B panel (kTileK x n floats) stays cache
// resident across a whole row tile.
constexpr int kTileK = 240;

std::atomic<long long> g_parallel_macs{1LL << 18};

// matmul_nt tiles B's rows only when B outgrows this many elements (default
// 64k floats = 256 KiB, a conservative L2 slice): below it the whole B panel
// is cache-resident anyway and the untiled loops win.
std::atomic<long long> g_nt_tile_min_elems{1LL << 16};

struct KernelMetrics {
  obs::Counter& calls =
      obs::Registry::global().counter("ag.matmul.calls_total");
  obs::Counter& flops =
      obs::Registry::global().counter("ag.matmul.flops_total");
  obs::Counter& parallel =
      obs::Registry::global().counter("ag.matmul.parallel_total");
};

KernelMetrics& kernel_metrics() {
  static KernelMetrics m;
  return m;
}

// Runs body over C's row range [0, rows), threaded when the kernel is big
// enough. Every kernel below computes a C row entirely within its chunk, in
// the serial accumulation order, so chunking never changes results.
template <typename Body>
void run_rows(int rows, long long macs, const Body& body) {
  KernelMetrics& m = kernel_metrics();
  m.calls.add(1);
  m.flops.add(static_cast<std::uint64_t>(2 * macs));
  if (macs >= g_parallel_macs.load(std::memory_order_relaxed) &&
      par::global_threads() > 1) {
    m.parallel.add(1);
    par::parallel_for(0, rows, kTileRows, [&body](std::int64_t lo,
                                                  std::int64_t hi) {
      body(static_cast<int>(lo), static_cast<int>(hi));
    });
  } else {
    body(0, rows);
  }
}

// Kernel bodies take raw pointers and by-value dimensions so the optimizer
// sees loop bounds that cannot alias the output stores — captured-by-
// reference bounds inside a lambda defeat vectorization of the j loops.
// c is always a freshly allocated output, so __restrict__ is sound and lets
// the vectorizer skip runtime alias checks and the scalar fallback.

// c[r0:r1) += a[r0:r1) * b for row-major a (m x k), b (k x n).
void matmul_block(const float* __restrict__ a, const float* __restrict__ b,
                  float* __restrict__ c, int r0, int r1, int k, int n) {
  for (int ib = r0; ib < r1; ib += kTileRows) {
    const int iend = std::min(r1, ib + kTileRows);
    for (int pb = 0; pb < k; pb += kTileK) {
      const int pend = std::min(k, pb + kTileK);
      for (int i = ib; i < iend; ++i) {
        float* crow = c + static_cast<std::size_t>(i) * n;
        const float* arow = a + static_cast<std::size_t>(i) * k;
        for (int p = pb; p < pend; ++p) {
          const float av = arow[p];
          if (av == 0.0f) continue;
          const float* brow = b + static_cast<std::size_t>(p) * n;
          for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

// c[r0:r1) += aᵀ[r0:r1) * b for row-major a (k x m), b (k x n); C rows are
// A's columns. Tiling i keeps the C tile cache-resident across the whole p
// sweep instead of re-streaming all of C per p; each row still accumulates
// in ascending p exactly like the untiled kernel, so results are bitwise
// identical.
void matmul_tn_block(const float* __restrict__ a, const float* __restrict__ b,
                     float* __restrict__ c, int r0, int r1, int m, int k,
                     int n) {
  for (int ib = r0; ib < r1; ib += kTileRows) {
    const int iend = std::min(r1, ib + kTileRows);
    int p = 0;
    // p unrolled by two: one pass over the C tile per pair of A/B rows
    // halves the read-modify-write traffic on C. The two adds stay
    // sequential (never fused into av0*b0 + av1*b1) and zero A entries
    // skip their add exactly like the tail loop, so rounding is bitwise
    // identical to the one-p-at-a-time serial kernel.
    for (; p + 1 < k; p += 2) {
      const float* arow0 = a + static_cast<std::size_t>(p) * m;
      const float* arow1 = arow0 + m;
      const float* brow0 = b + static_cast<std::size_t>(p) * n;
      const float* brow1 = brow0 + n;
      for (int i = ib; i < iend; ++i) {
        const float av0 = arow0[i];
        const float av1 = arow1[i];
        float* crow = c + static_cast<std::size_t>(i) * n;
        if (av0 != 0.0f && av1 != 0.0f) {
          for (int j = 0; j < n; ++j) {
            crow[j] += av0 * brow0[j];
            crow[j] += av1 * brow1[j];
          }
        } else if (av0 != 0.0f) {
          for (int j = 0; j < n; ++j) crow[j] += av0 * brow0[j];
        } else if (av1 != 0.0f) {
          for (int j = 0; j < n; ++j) crow[j] += av1 * brow1[j];
        }
      }
    }
    for (; p < k; ++p) {
      const float* arow = a + static_cast<std::size_t>(p) * m;
      const float* brow = b + static_cast<std::size_t>(p) * n;
      for (int i = ib; i < iend; ++i) {
        const float av = arow[i];
        if (av == 0.0f) continue;
        float* crow = c + static_cast<std::size_t>(i) * n;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

// c[r0:r1) += a[r0:r1) * bᵀ for row-major a (m x k), b (n x k).
void matmul_nt_block(const float* __restrict__ a, const float* __restrict__ b,
                     float* __restrict__ c, int r0, int r1, int k, int n) {
  // Profitability gate: each c[i][j] is a single ascending-p dot product in
  // either shape, so falling back is bitwise free — and when B fits in
  // cache the j-tiling only re-runs loop bookkeeping per 32-column strip.
  if (static_cast<long long>(k) * n <
      g_nt_tile_min_elems.load(std::memory_order_relaxed)) {
    for (int i = r0; i < r1; ++i) {
      const float* arow = a + static_cast<std::size_t>(i) * k;
      float* crow = c + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) {
        const float* brow = b + static_cast<std::size_t>(j) * k;
        float acc = 0.0f;
        for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
        crow[j] += acc;
      }
    }
    return;
  }
  for (int ib = r0; ib < r1; ib += kTileRows) {
    const int iend = std::min(r1, ib + kTileRows);
    for (int jb = 0; jb < n; jb += kTileRows) {
      const int jend = std::min(n, jb + kTileRows);
      for (int i = ib; i < iend; ++i) {
        const float* arow = a + static_cast<std::size_t>(i) * k;
        float* crow = c + static_cast<std::size_t>(i) * n;
        for (int j = jb; j < jend; ++j) {
          const float* brow = b + static_cast<std::size_t>(j) * k;
          float acc = 0.0f;
          for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
          crow[j] += acc;
        }
      }
    }
  }
}

}  // namespace

long long matmul_parallel_threshold() {
  return g_parallel_macs.load(std::memory_order_relaxed);
}

void set_matmul_parallel_threshold(long long macs) {
  g_parallel_macs.store(std::max(0LL, macs), std::memory_order_relaxed);
}

long long matmul_nt_tile_threshold() {
  return g_nt_tile_min_elems.load(std::memory_order_relaxed);
}

void set_matmul_nt_tile_threshold(long long b_elems) {
  g_nt_tile_min_elems.store(std::max(0LL, b_elems),
                            std::memory_order_relaxed);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  RN_CHECK(a.cols() == b.rows(), "matmul inner-dimension mismatch");
  Tensor c(a.rows(), b.cols());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  // i-k-j loop order: streams through b and c rows; tiling over (i, p)
  // keeps the active B panel hot across a block of output rows.
  run_rows(m, static_cast<long long>(m) * k * n, [&](int r0, int r1) {
    matmul_block(a.row(0), b.row(0), c.row(0), r0, r1, k, n);
  });
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  RN_CHECK(a.rows() == b.rows(), "matmul_tn dimension mismatch");
  Tensor c(a.cols(), b.cols());
  const int m = a.cols(), k = a.rows(), n = b.cols();
  // C rows are A's columns; chunks own disjoint i-ranges and keep the
  // p-ascending accumulation of the serial kernel, streaming A and B rows.
  run_rows(m, static_cast<long long>(m) * k * n, [&](int r0, int r1) {
    matmul_tn_block(a.row(0), b.row(0), c.row(0), r0, r1, m, k, n);
  });
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  RN_CHECK(a.cols() == b.cols(), "matmul_nt dimension mismatch");
  Tensor c(a.rows(), b.rows());
  const int m = a.rows(), k = a.cols(), n = b.rows();
  // Dot-product kernel; tiling over (i, j) reuses a B-row panel across a
  // block of A rows instead of re-streaming all of B per output row.
  run_rows(m, static_cast<long long>(m) * k * n, [&](int r0, int r1) {
    matmul_nt_block(a.row(0), b.row(0), c.row(0), r0, r1, k, n);
  });
  return c;
}

}  // namespace rn::ag
