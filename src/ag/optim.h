// First-order optimizers over Parameter sets, plus gradient clipping.
#pragma once

#include <vector>

#include "ag/tape.h"

namespace rn::ag {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  // Applies one update from the accumulated gradients.
  virtual void step() = 0;

  void zero_grad();

  const std::vector<Parameter*>& params() const { return params_; }

 protected:
  std::vector<Parameter*> params_;
};

// Plain SGD with optional classical momentum.
class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, float lr, float momentum = 0.0f);

  void step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

// Adam (Kingma & Ba) with bias correction — the optimizer RouteNet trains
// with in the reference implementation.
class Adam final : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);

  void step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }
  long step_count() const { return t_; }

  // Serializable state: first/second moments aligned with params(), plus
  // the step count driving bias correction. Restoring them makes the next
  // step() bitwise identical to an optimizer that was never serialized.
  const std::vector<Tensor>& moments_m() const { return m_; }
  const std::vector<Tensor>& moments_v() const { return v_; }
  void set_state(long step_count, std::vector<Tensor> m,
                 std::vector<Tensor> v);

 private:
  float lr_, beta1_, beta2_, eps_;
  long t_ = 0;
  std::vector<Tensor> m_, v_;
};

// Scales all gradients so their global L2 norm is at most max_norm.
// Returns the pre-clip norm.
double clip_grad_norm(const std::vector<Parameter*>& params, double max_norm);

}  // namespace rn::ag
