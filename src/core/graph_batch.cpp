#include "core/graph_batch.h"

#include <algorithm>

#include "obs/timer.h"

namespace rn::core {

GraphBatch GraphBatch::from_samples(
    const std::vector<const dataset::Sample*>& samples,
    const dataset::Normalizer& norm, bool with_targets) {
  RN_CHECK(!samples.empty(), "empty batch");
  static obs::Histogram& h_build =
      obs::Registry::global().histogram("graph_batch.build_s");
  obs::ScopedTimer build_timer(h_build);
  GraphBatch batch;
  batch.link_offset.reserve(samples.size());
  batch.path_offset.reserve(samples.size());

  int total_links = 0;
  int total_paths = 0;
  int max_len = 0;
  for (const dataset::Sample* s : samples) {
    RN_CHECK(s != nullptr, "null sample in batch");
    batch.link_offset.push_back(total_links);
    batch.path_offset.push_back(total_paths);
    total_links += s->topology->num_links();
    total_paths += s->topology->num_pairs();
    for (int idx = 0; idx < s->topology->num_pairs(); ++idx) {
      max_len = std::max(
          max_len, static_cast<int>(s->routing.path_by_index(idx).size()));
    }
  }
  batch.num_links = total_links;
  batch.num_paths = total_paths;
  batch.link_features = ag::Tensor(total_links, 1);
  batch.path_features = ag::Tensor(total_paths, 1);
  batch.pos_paths.resize(static_cast<std::size_t>(max_len));
  batch.pos_links.resize(static_cast<std::size_t>(max_len));

  std::vector<float> delay_targets;
  std::vector<float> jitter_targets;
  for (std::size_t k = 0; k < samples.size(); ++k) {
    const dataset::Sample& s = *samples[k];
    const int l0 = batch.link_offset[k];
    const int p0 = batch.path_offset[k];
    for (int l = 0; l < s.topology->num_links(); ++l) {
      batch.link_features.at(l0 + l, 0) = static_cast<float>(
          s.topology->link(l).capacity_bps * norm.capacity_scale);
    }
    for (int idx = 0; idx < s.topology->num_pairs(); ++idx) {
      batch.path_features.at(p0 + idx, 0) = static_cast<float>(
          s.tm.rate_by_index(idx) * norm.traffic_scale);
      const routing::Path& path = s.routing.path_by_index(idx);
      for (std::size_t pos = 0; pos < path.size(); ++pos) {
        batch.pos_paths[pos].push_back(p0 + idx);
        batch.pos_links[pos].push_back(l0 + path[pos]);
      }
      if (with_targets && s.valid[static_cast<std::size_t>(idx)]) {
        batch.valid_paths.push_back(p0 + idx);
        delay_targets.push_back(static_cast<float>(
            norm.normalize_delay(s.delay_s[static_cast<std::size_t>(idx)])));
        jitter_targets.push_back(static_cast<float>(
            norm.normalize_jitter(s.jitter_s[static_cast<std::size_t>(idx)])));
      }
    }
  }
  if (with_targets) {
    batch.delay_targets =
        ag::Tensor(static_cast<int>(delay_targets.size()), 1);
    batch.jitter_targets =
        ag::Tensor(static_cast<int>(jitter_targets.size()), 1);
    for (std::size_t i = 0; i < delay_targets.size(); ++i) {
      batch.delay_targets[i] = delay_targets[i];
      batch.jitter_targets[i] = jitter_targets[i];
    }
  }
  return batch;
}

GraphBatch GraphBatch::from_sample(const dataset::Sample& sample,
                                   const dataset::Normalizer& norm,
                                   bool with_targets) {
  return from_samples({&sample}, norm, with_targets);
}

}  // namespace rn::core
