// Mini-batch training loop for RouteNet: Adam with exponential LR decay,
// per-epoch shuffling, gradient clipping, optional early stopping on an
// evaluation set, and periodic checkpointing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/routenet.h"
#include "dataset/dataset.h"
#include "dataset/stream.h"

namespace rn::core {

struct TrainConfig {
  int epochs = 25;
  int batch_size = 8;  // samples (scenarios) per step, merged into one graph
  float learning_rate = 1e-3f;
  float lr_decay = 0.96f;  // multiplied per epoch
  float clip_norm = 5.0f;
  // Loss = mse(delay) + jitter_loss_weight * mse(jitter), both normalized.
  float jitter_loss_weight = 0.5f;
  std::uint64_t shuffle_seed = 7;
  // Ablation: z-score targets in log space (default, matches the paper's
  // relative-error metric) or in raw seconds.
  bool log_space_targets = true;
  // Early stopping: stop after `patience` epochs without eval improvement
  // (0 disables; requires an eval set).
  int patience = 0;
  // Worker threads for the matmul kernels (0 = leave the global pool as
  // configured by --threads / RN_THREADS / hardware_concurrency).
  int threads = 0;
  bool verbose = false;
  // When non-empty, the best-eval model is saved here each time it improves.
  std::string checkpoint_path;

  // --- Fault tolerance (see docs/file-formats.md, "RNCKPT2") -------------
  // Base path for full training-state checkpoints (parameters + Adam
  // moments + RNG streams + cursor). Files rotate as <state_path>.NNNNNN;
  // empty disables. A final checkpoint is always written on normal
  // completion so a finished run can be extended later.
  std::string state_path;
  // Save a state checkpoint every N optimizer steps (0: only the final
  // one). Requires state_path.
  int checkpoint_every_n_batches = 0;
  // Rotation depth: how many <state_path>.NNNNNN files to keep.
  int keep_checkpoints = 3;
  // Resume source: an explicit checkpoint file, or a rotation base whose
  // newest CRC-valid file is auto-detected (falling back to older ones).
  // The run continues at the recorded epoch/batch and yields a final model
  // bitwise identical to one trained without interruption.
  std::string resume_from;
  // Install SIGINT/SIGTERM handlers for the duration of fit(): on signal,
  // finish the current batch, write a state checkpoint, and return with
  // report.interrupted set.
  bool handle_signals = false;
  // Testing/ops hook: hard-stop after this many optimizer steps WITHOUT
  // writing a checkpoint — models a crash for kill-and-resume tests
  // (0: unlimited).
  long max_batches = 0;

  // --- Training-health watchdog ------------------------------------------
  // Fail fast on a non-finite loss or gradient norm: emit a
  // `trainer.health` event naming the offending tensor, save an emergency
  // state checkpoint (parameters are still finite — the check runs before
  // the optimizer step), and throw. The checkpoint lands in the normal
  // rotation, so `--resume <state_path>` picks it up.
  bool health_checks = true;
  // Testing hook: poison one gradient entry with NaN just before gradient
  // clipping on this 1-based optimizer step (0: never), to drive the
  // watchdog path deterministically.
  long inject_nan_at_batch = 0;
  // Trend watchdog: each epoch, every module's grad/param norm ratio is
  // compared against its first observed (baseline) ratio; drifting past
  // baseline × this factor emits a `trainer.health.drift` warning event.
  // Catches slow divergence long before anything goes non-finite.
  // 0 disables; requires health_checks.
  double health_drift_factor = 50.0;
  // Testing hook: from this 0-based epoch on, multiply every gradient by
  // `inject_grad_scale` right after clipping (1.0: never), to drive the
  // drift detector deterministically.
  int inject_grad_scale_at_epoch = -1;
  float inject_grad_scale = 1.0f;
};

struct EpochLog {
  int epoch = 0;
  double train_loss = 0.0;     // mean per-batch loss
  double eval_delay_mre = 0.0; // mean relative error on eval set (-1 if none)
};

struct TrainReport {
  std::vector<EpochLog> epochs;
  double best_eval_mre = -1.0;
  int best_epoch = -1;
  double final_train_loss = 0.0;
  // True when fit() stopped early on a signal or the max_batches hook; the
  // model is mid-training and the caller should not publish it as final.
  bool interrupted = false;
  // Epoch/batch the run resumed from (-1 when it started fresh).
  int resumed_epoch = -1;
};

class Trainer {
 public:
  Trainer(RouteNet& model, const TrainConfig& config);

  // Fits the model. The normalizer is (re)fitted on `train` before the
  // first epoch so checkpoints are self-contained. `eval` may be null.
  TrainReport fit(const std::vector<dataset::Sample>& train,
                  const std::vector<dataset::Sample>* eval = nullptr);

  // Same loop over any SampleSource — the streaming entry point. An
  // in-RAM vector and a StreamingDataset over the same samples yield
  // bitwise-identical models (the vector overload above is a thin wrapper
  // over this one), and checkpoints/resume work identically: the cursor
  // records shuffled sample indices, not storage layout.
  TrainReport fit(dataset::SampleSource& train,
                  const std::vector<dataset::Sample>* eval = nullptr);

  // Mean relative delay error of the current model over a sample set
  // (valid paths only).
  static double evaluate_delay_mre(const RouteNet& model,
                                   const std::vector<dataset::Sample>& samples);

  // Same for the jitter head (paths whose measured jitter is positive).
  static double evaluate_jitter_mre(
      const RouteNet& model, const std::vector<dataset::Sample>& samples);

 private:
  RouteNet& model_;
  TrainConfig cfg_;
};

}  // namespace rn::core
