#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "ag/optim.h"
#include "util/rng.h"

namespace rn::core {

Trainer::Trainer(RouteNet& model, const TrainConfig& config)
    : model_(model), cfg_(config) {
  RN_CHECK(cfg_.epochs >= 1, "need at least one epoch");
  RN_CHECK(cfg_.batch_size >= 1, "batch size must be positive");
  RN_CHECK(cfg_.learning_rate > 0.0f, "learning rate must be positive");
  RN_CHECK(cfg_.lr_decay > 0.0f && cfg_.lr_decay <= 1.0f,
           "lr decay must be in (0,1]");
}

double Trainer::evaluate_delay_mre(
    const RouteNet& model, const std::vector<dataset::Sample>& samples) {
  double total = 0.0;
  std::size_t count = 0;
  const std::vector<RouteNet::Prediction> preds =
      model.predict_batch(samples);
  for (std::size_t si = 0; si < samples.size(); ++si) {
    const dataset::Sample& s = samples[si];
    const RouteNet::Prediction& pred = preds[si];
    for (int idx = 0; idx < s.num_pairs(); ++idx) {
      if (!s.valid[static_cast<std::size_t>(idx)]) continue;
      const double truth = s.delay_s[static_cast<std::size_t>(idx)];
      const double est = pred.delay_s[static_cast<std::size_t>(idx)];
      total += std::abs(est - truth) / truth;
      ++count;
    }
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

double Trainer::evaluate_jitter_mre(
    const RouteNet& model, const std::vector<dataset::Sample>& samples) {
  double total = 0.0;
  std::size_t count = 0;
  const std::vector<RouteNet::Prediction> preds =
      model.predict_batch(samples);
  for (std::size_t si = 0; si < samples.size(); ++si) {
    const dataset::Sample& s = samples[si];
    const RouteNet::Prediction& pred = preds[si];
    for (int idx = 0; idx < s.num_pairs(); ++idx) {
      if (!s.valid[static_cast<std::size_t>(idx)]) continue;
      const double truth = s.jitter_s[static_cast<std::size_t>(idx)];
      if (truth <= 0.0) continue;
      const double est = pred.jitter_s[static_cast<std::size_t>(idx)];
      total += std::abs(est - truth) / truth;
      ++count;
    }
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

TrainReport Trainer::fit(const std::vector<dataset::Sample>& train,
                         const std::vector<dataset::Sample>* eval) {
  RN_CHECK(!train.empty(), "empty training set");
  model_.set_normalizer(
      dataset::fit_normalizer(train, cfg_.log_space_targets));

  ag::Adam optimizer(model_.params(), cfg_.learning_rate);
  Rng shuffle_rng(cfg_.shuffle_seed);
  Rng dropout_rng(cfg_.shuffle_seed ^ 0xa5a5a5a5ull);

  std::vector<int> order(train.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int>(i);
  }

  TrainReport report;
  int epochs_since_best = 0;
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    // Fisher–Yates shuffle of the sample order.
    for (std::size_t i = order.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          shuffle_rng.uniform_int(0, static_cast<int>(i) - 1));
      std::swap(order[i - 1], order[j]);
    }

    double loss_sum = 0.0;
    int batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(cfg_.batch_size)) {
      const std::size_t end = std::min(
          order.size(), start + static_cast<std::size_t>(cfg_.batch_size));
      std::vector<const dataset::Sample*> chunk;
      chunk.reserve(end - start);
      for (std::size_t i = start; i < end; ++i) {
        chunk.push_back(&train[static_cast<std::size_t>(order[i])]);
      }
      const GraphBatch batch = GraphBatch::from_samples(
          chunk, model_.normalizer(), /*with_targets=*/true);
      if (batch.valid_paths.empty()) continue;  // nothing to learn from

      ag::Tape tape;
      const RouteNet::Output out =
          model_.forward(tape, batch, &dropout_rng);
      const ag::ValueId delay_sel =
          tape.gather_rows(out.delay, batch.valid_paths);
      ag::ValueId loss = tape.mse(delay_sel, batch.delay_targets);
      if (cfg_.jitter_loss_weight > 0.0f) {
        const ag::ValueId jitter_sel =
            tape.gather_rows(out.jitter, batch.valid_paths);
        loss = tape.add(
            loss, tape.scale(tape.mse(jitter_sel, batch.jitter_targets),
                             cfg_.jitter_loss_weight));
      }
      optimizer.zero_grad();
      tape.backward(loss);
      ag::clip_grad_norm(optimizer.params(), cfg_.clip_norm);
      optimizer.step();
      loss_sum += tape.value(loss).at(0, 0);
      ++batches;
    }

    EpochLog log;
    log.epoch = epoch;
    log.train_loss = batches > 0 ? loss_sum / batches : 0.0;
    log.eval_delay_mre = -1.0;
    if (eval != nullptr && !eval->empty()) {
      log.eval_delay_mre = evaluate_delay_mre(model_, *eval);
      if (report.best_epoch < 0 || log.eval_delay_mre < report.best_eval_mre) {
        report.best_eval_mre = log.eval_delay_mre;
        report.best_epoch = epoch;
        epochs_since_best = 0;
        if (!cfg_.checkpoint_path.empty()) {
          model_.save(cfg_.checkpoint_path);
        }
      } else {
        ++epochs_since_best;
      }
    }
    if (cfg_.verbose) {
      std::printf("epoch %3d  loss %.5f  lr %.2e", epoch, log.train_loss,
                  static_cast<double>(optimizer.lr()));
      if (log.eval_delay_mre >= 0.0) {
        std::printf("  eval MRE %.4f", log.eval_delay_mre);
      }
      std::printf("\n");
      std::fflush(stdout);
    }
    report.epochs.push_back(log);
    report.final_train_loss = log.train_loss;
    optimizer.set_lr(optimizer.lr() * cfg_.lr_decay);
    if (cfg_.patience > 0 && eval != nullptr &&
        epochs_since_best >= cfg_.patience) {
      break;
    }
  }
  return report;
}

}  // namespace rn::core
