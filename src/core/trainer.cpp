#include "core/trainer.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>

#include "ag/optim.h"
#include "ag/serialize.h"
#include "obs/event.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "par/thread_pool.h"
#include "util/rng.h"

namespace rn::core {

namespace {

// Set by the SIGINT/SIGTERM handler; polled once per batch so a signal
// turns into "finish the batch, checkpoint, return" instead of a torn run.
std::atomic<bool> g_stop_requested{false};

void stop_signal_handler(int) { g_stop_requested.store(true); }

// Installs the stop handler for the duration of fit() and restores the
// previous disposition on exit.
class SignalGuard {
 public:
  explicit SignalGuard(bool enable) : enabled_(enable) {
    if (!enabled_) return;
    g_stop_requested.store(false);
    prev_int_ = std::signal(SIGINT, stop_signal_handler);
    prev_term_ = std::signal(SIGTERM, stop_signal_handler);
  }
  ~SignalGuard() {
    if (!enabled_) return;
    std::signal(SIGINT, prev_int_);
    std::signal(SIGTERM, prev_term_);
  }
  SignalGuard(const SignalGuard&) = delete;
  SignalGuard& operator=(const SignalGuard&) = delete;

 private:
  bool enabled_;
  void (*prev_int_)(int) = nullptr;
  void (*prev_term_)(int) = nullptr;
};

std::string engine_state(Rng& rng) {
  std::ostringstream os;
  os << rng.engine();
  return os.str();
}

void restore_engine(Rng& rng, const std::string& state) {
  std::istringstream is(state);
  is >> rng.engine();
  RN_CHECK(!is.fail(), "corrupt RNG stream state in checkpoint");
}

bool tensor_finite(const ag::Tensor& t) {
  const int n = t.size();
  for (int i = 0; i < n; ++i) {
    if (!std::isfinite(t[static_cast<std::size_t>(i)])) return false;
  }
  return true;
}

double tensor_l2(const ag::Tensor& t) {
  double sq = 0.0;
  const int n = t.size();
  for (int i = 0; i < n; ++i) {
    const double v = t[static_cast<std::size_t>(i)];
    sq += v * v;
  }
  return std::sqrt(sq);
}

// "routenet.path_gru.W_z" → "routenet.path_gru"; no dot → the whole name.
std::string module_of(const std::string& name) {
  const std::size_t dot = name.rfind('.');
  return dot == std::string::npos ? name : name.substr(0, dot);
}

struct ModuleNorms {
  double param_sq = 0.0;
  double grad_sq = 0.0;
};

// Per-module squared-norm rollup of parameters and gradients, the health
// event's breakdown (sqrt applied at emission).
std::map<std::string, ModuleNorms> module_norms(
    const std::vector<ag::Parameter*>& params) {
  std::map<std::string, ModuleNorms> out;
  for (const ag::Parameter* p : params) {
    ModuleNorms& m = out[module_of(p->name)];
    const double pv = tensor_l2(p->value);
    const double gv = tensor_l2(p->grad);
    m.param_sq += pv * pv;
    m.grad_sq += gv * gv;
  }
  return out;
}

// First parameter whose gradient (then value) holds a non-finite entry;
// "loss" when every tensor checks out (the loss itself diverged).
std::string find_nonfinite_tensor(const std::vector<ag::Parameter*>& params) {
  for (const ag::Parameter* p : params) {
    if (!tensor_finite(p->grad)) return p->name + ".grad";
  }
  for (const ag::Parameter* p : params) {
    if (!tensor_finite(p->value)) return p->name;
  }
  return "loss";
}

}  // namespace

Trainer::Trainer(RouteNet& model, const TrainConfig& config)
    : model_(model), cfg_(config) {
  RN_CHECK(cfg_.epochs >= 1, "need at least one epoch");
  RN_CHECK(cfg_.batch_size >= 1, "batch size must be positive");
  RN_CHECK(cfg_.learning_rate > 0.0f, "learning rate must be positive");
  RN_CHECK(cfg_.lr_decay > 0.0f && cfg_.lr_decay <= 1.0f,
           "lr decay must be in (0,1]");
  RN_CHECK(cfg_.checkpoint_every_n_batches >= 0,
           "checkpoint_every_n_batches cannot be negative");
  RN_CHECK(cfg_.checkpoint_every_n_batches == 0 || !cfg_.state_path.empty(),
           "checkpoint_every_n_batches requires state_path");
  RN_CHECK(cfg_.keep_checkpoints >= 1, "keep_checkpoints must be positive");
  RN_CHECK(cfg_.max_batches >= 0, "max_batches cannot be negative");
  RN_CHECK(cfg_.inject_nan_at_batch >= 0,
           "inject_nan_at_batch cannot be negative");
  RN_CHECK(cfg_.health_drift_factor >= 0.0,
           "health_drift_factor cannot be negative");
  RN_CHECK(cfg_.inject_grad_scale > 0.0f,
           "inject_grad_scale must be positive");
}

double Trainer::evaluate_delay_mre(
    const RouteNet& model, const std::vector<dataset::Sample>& samples) {
  double total = 0.0;
  std::size_t count = 0;
  const std::vector<RouteNet::Prediction> preds =
      model.predict_batch(samples);
  for (std::size_t si = 0; si < samples.size(); ++si) {
    const dataset::Sample& s = samples[si];
    const RouteNet::Prediction& pred = preds[si];
    for (int idx = 0; idx < s.num_pairs(); ++idx) {
      if (!s.valid[static_cast<std::size_t>(idx)]) continue;
      const double truth = s.delay_s[static_cast<std::size_t>(idx)];
      const double est = pred.delay_s[static_cast<std::size_t>(idx)];
      total += std::abs(est - truth) / truth;
      ++count;
    }
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

double Trainer::evaluate_jitter_mre(
    const RouteNet& model, const std::vector<dataset::Sample>& samples) {
  double total = 0.0;
  std::size_t count = 0;
  const std::vector<RouteNet::Prediction> preds =
      model.predict_batch(samples);
  for (std::size_t si = 0; si < samples.size(); ++si) {
    const dataset::Sample& s = samples[si];
    const RouteNet::Prediction& pred = preds[si];
    for (int idx = 0; idx < s.num_pairs(); ++idx) {
      if (!s.valid[static_cast<std::size_t>(idx)]) continue;
      const double truth = s.jitter_s[static_cast<std::size_t>(idx)];
      if (truth <= 0.0) continue;
      const double est = pred.jitter_s[static_cast<std::size_t>(idx)];
      total += std::abs(est - truth) / truth;
      ++count;
    }
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

TrainReport Trainer::fit(const std::vector<dataset::Sample>& train,
                         const std::vector<dataset::Sample>* eval) {
  dataset::VectorSampleSource source(train);
  return fit(source, eval);
}

TrainReport Trainer::fit(dataset::SampleSource& train,
                         const std::vector<dataset::Sample>* eval) {
  RN_CHECK(train.size() > 0, "empty training set");
  // The epoch-order cursor (and RNCKPT2's on-disk form) indexes samples
  // with int32; sources beyond that need a sharded multi-run recipe.
  RN_CHECK(train.size() <= static_cast<std::uint64_t>(
                               std::numeric_limits<std::int32_t>::max()),
           "training source exceeds the int32 epoch cursor");
  obs::TraceSpan fit_span("trainer.fit");
  if (cfg_.threads > 0) par::set_global_threads(cfg_.threads);
  model_.set_normalizer(
      dataset::fit_normalizer(train, cfg_.log_space_targets));

  ag::Adam optimizer(model_.params(), cfg_.learning_rate);
  Rng shuffle_rng(cfg_.shuffle_seed);
  Rng dropout_rng(cfg_.shuffle_seed ^ 0xa5a5a5a5ull);

  std::vector<int> order(static_cast<std::size_t>(train.size()));
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int>(i);
  }

  // Telemetry: histograms always aggregate (lock-free, a few ns per batch);
  // structured events are only built when a sink is attached, and the
  // console line for verbose mode is rendered from the same Event so both
  // outputs share one code path.
  obs::EventSink& sink = obs::EventSink::global();
  obs::Registry& reg = obs::Registry::global();
  obs::Histogram& h_forward = reg.histogram("trainer.batch.forward_s");
  obs::Histogram& h_backward = reg.histogram("trainer.batch.backward_s");
  obs::Histogram& h_step = reg.histogram("trainer.batch.step_s");
  obs::Histogram& h_epoch = reg.histogram("trainer.epoch_s");
  obs::Counter& c_batches = reg.counter("trainer.batches_total");
  obs::Counter& c_samples = reg.counter("trainer.samples_total");
  obs::Histogram& h_ckpt_save = reg.histogram("ckpt.save_s");
  obs::Histogram& h_ckpt_load = reg.histogram("ckpt.load_s");
  obs::Counter& c_ckpt_saves = reg.counter("ckpt.saves_total");
  obs::Counter& c_ckpt_bytes = reg.counter("ckpt.bytes_written_total");
  obs::Counter& c_ckpt_resumes = reg.counter("ckpt.resumes_total");
  obs::Counter& c_ckpt_fallbacks = reg.counter("ckpt.fallbacks_total");
  obs::Gauge& g_ckpt_seq = reg.gauge("ckpt.last_seq");

  TrainReport report;
  // Best-eval tracking lives in locals so a resumed run continues the
  // original run's early-stopping and best-model bookkeeping.
  double best_eval = -1.0;
  int best_epoch = -1;
  int epochs_since_best = 0;
  int start_epoch = 0;
  std::size_t resume_offset = 0;
  bool resume_epoch_pending = false;
  double resumed_loss_sum = 0.0;
  int resumed_batches = 0;
  std::uint64_t resumed_samples = 0;
  std::uint64_t total_batches = 0;
  std::uint64_t ckpt_seq = 0;

  if (!cfg_.state_path.empty()) {
    // Continue the rotation numbering of any files already present so a
    // resumed run never overwrites the checkpoint it restarted from.
    const std::vector<ag::CheckpointFile> existing =
        ag::list_checkpoints(cfg_.state_path);
    if (!existing.empty()) ckpt_seq = existing.front().seq;
  }

  if (!cfg_.resume_from.empty()) {
    obs::TraceSpan resume_span("ckpt.resume");
    obs::Stopwatch load_watch;
    std::string loaded_path;
    int fallbacks = 0;
    const ag::TrainCheckpoint st = ag::load_train_checkpoint_auto(
        cfg_.resume_from, &loaded_path, &fallbacks);
    ag::apply_named_tensors(st.params, optimizer.params(),
                            "checkpoint " + loaded_path);
    if (st.has_optimizer) {
      // The moment tensors travel by name; realign them with this model's
      // parameter order before handing them to Adam.
      std::vector<ag::Tensor> m, v;
      m.reserve(optimizer.params().size());
      v.reserve(optimizer.params().size());
      for (const ag::Parameter* p : optimizer.params()) {
        const auto it = std::find_if(
            st.adam_m.begin(), st.adam_m.end(),
            [&](const auto& e) { return e.first == p->name; });
        RN_CHECK(it != st.adam_m.end(),
                 "checkpoint " + loaded_path +
                     " is missing optimizer state for parameter '" +
                     p->name + "'");
        const std::size_t idx =
            static_cast<std::size_t>(it - st.adam_m.begin());
        m.push_back(it->second);
        v.push_back(st.adam_v[idx].second);
      }
      optimizer.set_state(st.adam_step, std::move(m), std::move(v));
      optimizer.set_lr(st.lr);
    }
    for (const auto& [name, state] : st.rng_streams) {
      if (name == "shuffle") restore_engine(shuffle_rng, state);
      if (name == "dropout") restore_engine(dropout_rng, state);
    }
    if (st.has_cursor) {
      RN_CHECK(st.order.size() == static_cast<std::size_t>(train.size()),
               "checkpoint " + loaded_path + " was trained on " +
                   std::to_string(st.order.size()) +
                   " samples but this dataset has " +
                   std::to_string(train.size()));
      start_epoch = st.epoch;
      resume_offset = static_cast<std::size_t>(st.next_index);
      order.assign(st.order.begin(), st.order.end());
      resume_epoch_pending = true;
      best_eval = st.best_eval_mre;
      best_epoch = st.best_epoch;
      epochs_since_best = st.epochs_since_best;
      resumed_loss_sum = st.epoch_loss_sum;
      resumed_batches = st.epoch_batches;
      resumed_samples = st.epoch_samples;
      total_batches = st.total_batches;
      report.resumed_epoch = start_epoch;
    }
    const double load_s = load_watch.elapsed_s();
    h_ckpt_load.record(load_s);
    c_ckpt_resumes.add(1);
    c_ckpt_fallbacks.add(static_cast<std::uint64_t>(fallbacks));
    if (sink.enabled() || cfg_.verbose) {
      obs::Event ev("ckpt.resume");
      ev.f("path", loaded_path)
          .f("epoch", start_epoch)
          .f("batch_offset", resume_offset)
          .f("total_batches", total_batches)
          .f("fallbacks", fallbacks)
          .f("load_s", load_s);
      sink.emit(ev);
      if (cfg_.verbose) {
        const std::string line = ev.console_line();
        std::fwrite(line.data(), 1, line.size(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
      }
    }
  }

  // Snapshots the entire training state (cursor pointing at `next_index`
  // within the current epoch), rotates old files, and reports telemetry.
  const auto save_state = [&](int epoch, std::size_t next_index,
                              double loss_sum, int batches,
                              std::uint64_t samples_seen) {
    if (cfg_.state_path.empty()) return;
    obs::TraceSpan save_span("ckpt.save");
    obs::Stopwatch save_watch;
    ag::TrainCheckpoint st;
    for (const ag::Parameter* p : optimizer.params()) {
      st.params.emplace_back(p->name, p->value);
    }
    st.has_optimizer = true;
    st.adam_step = optimizer.step_count();
    st.lr = optimizer.lr();
    const std::vector<ag::Parameter*>& params = optimizer.params();
    for (std::size_t i = 0; i < params.size(); ++i) {
      st.adam_m.emplace_back(params[i]->name, optimizer.moments_m()[i]);
      st.adam_v.emplace_back(params[i]->name, optimizer.moments_v()[i]);
    }
    st.rng_streams.emplace_back("shuffle", engine_state(shuffle_rng));
    st.rng_streams.emplace_back("dropout", engine_state(dropout_rng));
    st.has_cursor = true;
    st.epoch = epoch;
    st.next_index = static_cast<std::int64_t>(next_index);
    st.total_batches = total_batches;
    st.best_eval_mre = best_eval;
    st.best_epoch = best_epoch;
    st.epochs_since_best = epochs_since_best;
    st.epoch_loss_sum = loss_sum;
    st.epoch_batches = batches;
    st.epoch_samples = samples_seen;
    st.order.assign(order.begin(), order.end());

    ++ckpt_seq;
    const std::string path =
        ag::checkpoint_file_name(cfg_.state_path, ckpt_seq);
    const std::size_t bytes = ag::save_train_checkpoint(path, st);
    for (const ag::CheckpointFile& old :
         ag::list_checkpoints(cfg_.state_path)) {
      if (old.seq + static_cast<std::uint64_t>(cfg_.keep_checkpoints) <=
          ckpt_seq) {
        std::remove(old.path.c_str());
      }
    }
    const double save_s = save_watch.elapsed_s();
    h_ckpt_save.record(save_s);
    c_ckpt_saves.add(1);
    c_ckpt_bytes.add(bytes);
    g_ckpt_seq.set(static_cast<double>(ckpt_seq));
    if (sink.enabled()) {
      obs::Event ev("ckpt.save");
      ev.f("path", path)
          .f("seq", ckpt_seq)
          .f("epoch", epoch)
          .f("batch_offset", next_index)
          .f("total_batches", total_batches)
          .f("bytes", bytes)
          .f("save_s", save_s);
      sink.emit(ev);
    }
  };

  SignalGuard signal_guard(cfg_.handle_signals);
  bool stop_all = false;
  bool interrupted = false;
  // Minibatch staging, reused across batches. `chunk` holds pointers the
  // source keeps valid until its next materialize() call — exactly one
  // batch long, which is what bounds a streamed corpus's resident set.
  std::vector<std::uint64_t> batch_indices;
  std::vector<const dataset::Sample*> chunk;
  // First observed grad/param norm ratio per module — the reference the
  // drift watchdog compares every later epoch against.
  std::map<std::string, double> drift_baseline;

  for (int epoch = start_epoch; epoch < cfg_.epochs && !stop_all; ++epoch) {
    obs::TraceSpan epoch_span("trainer.epoch");
    epoch_span.arg("epoch", epoch);
    obs::Stopwatch epoch_watch;
    std::size_t first_offset = 0;
    double loss_sum = 0.0;
    int batches = 0;
    std::uint64_t samples_seen = 0;
    if (resume_epoch_pending) {
      // The resumed epoch's order and partial accumulators come from the
      // checkpoint; its shuffle already happened before the save.
      first_offset = resume_offset;
      loss_sum = resumed_loss_sum;
      batches = resumed_batches;
      samples_seen = resumed_samples;
      resume_epoch_pending = false;
    } else {
      // Fisher–Yates shuffle of the sample order.
      for (std::size_t i = order.size(); i > 1; --i) {
        const auto j = static_cast<std::size_t>(
            shuffle_rng.uniform_int(0, static_cast<int>(i) - 1));
        std::swap(order[i - 1], order[j]);
      }
    }

    for (std::size_t start = first_offset; start < order.size();
         start += static_cast<std::size_t>(cfg_.batch_size)) {
      obs::TraceSpan batch_span("trainer.batch");
      batch_span.arg("batch", batches);
      const std::size_t end = std::min(
          order.size(), start + static_cast<std::size_t>(cfg_.batch_size));
      batch_indices.clear();
      batch_indices.reserve(end - start);
      for (std::size_t i = start; i < end; ++i) {
        batch_indices.push_back(static_cast<std::uint64_t>(order[i]));
      }
      train.materialize(batch_indices.data(), batch_indices.size(), chunk);
      const GraphBatch batch = GraphBatch::from_samples(
          chunk, model_.normalizer(), /*with_targets=*/true);
      if (batch.valid_paths.empty()) continue;  // nothing to learn from

      obs::Stopwatch phase;
      ag::Tape tape;
      obs::TraceSpan forward_span("trainer.forward");
      const RouteNet::Output out =
          model_.forward(tape, batch, &dropout_rng);
      const ag::ValueId delay_sel =
          tape.gather_rows(out.delay, batch.valid_paths);
      ag::ValueId loss = tape.mse(delay_sel, batch.delay_targets);
      if (cfg_.jitter_loss_weight > 0.0f) {
        const ag::ValueId jitter_sel =
            tape.gather_rows(out.jitter, batch.valid_paths);
        loss = tape.add(
            loss, tape.scale(tape.mse(jitter_sel, batch.jitter_targets),
                             cfg_.jitter_loss_weight));
      }
      forward_span.end();
      const double forward_s = phase.elapsed_s();
      h_forward.record(forward_s);

      phase.restart();
      obs::TraceSpan backward_span("trainer.backward");
      optimizer.zero_grad();
      tape.backward(loss);
      if (cfg_.inject_nan_at_batch > 0 &&
          total_batches + 1 ==
              static_cast<std::uint64_t>(cfg_.inject_nan_at_batch)) {
        optimizer.params().front()->grad[0] =
            std::numeric_limits<float>::quiet_NaN();
      }
      const double grad_norm =
          ag::clip_grad_norm(optimizer.params(), cfg_.clip_norm);
      if (cfg_.inject_grad_scale_at_epoch >= 0 &&
          epoch >= cfg_.inject_grad_scale_at_epoch &&
          cfg_.inject_grad_scale != 1.0f) {
        // After clipping, so the scale survives into the norms the drift
        // detector reads at epoch end.
        for (ag::Parameter* p : optimizer.params()) {
          const std::size_t n = static_cast<std::size_t>(p->grad.size());
          for (std::size_t i = 0; i < n; ++i) {
            p->grad[i] *= cfg_.inject_grad_scale;
          }
        }
      }
      backward_span.end();
      const double backward_s = phase.elapsed_s();
      h_backward.record(backward_s);

      const double batch_loss = tape.value(loss).at(0, 0);
      if (cfg_.health_checks &&
          (!std::isfinite(batch_loss) || !std::isfinite(grad_norm))) {
        // Watchdog: the check runs before the optimizer step, so the
        // parameters (and Adam moments) are still finite — the emergency
        // checkpoint is a valid resume point at this batch's start.
        const std::string offender =
            find_nonfinite_tensor(optimizer.params());
        if (sink.enabled() || cfg_.verbose) {
          obs::Event ev("trainer.health");
          ev.f("status", "nan_detected")
              .f("epoch", epoch)
              .f("batch", batches)
              .f("total_batches", total_batches)
              .f("loss_finite", std::isfinite(batch_loss) ? 1 : 0)
              .f("grad_norm_finite", std::isfinite(grad_norm) ? 1 : 0)
              .f("tensor", offender);
          for (const auto& [module, norms] :
               module_norms(optimizer.params())) {
            ev.f("param_norm." + module, std::sqrt(norms.param_sq))
                .f("grad_norm." + module, std::sqrt(norms.grad_sq));
          }
          sink.emit(ev);
          if (cfg_.verbose) {
            const std::string line = ev.console_line();
            std::fwrite(line.data(), 1, line.size(), stdout);
            std::fputc('\n', stdout);
            std::fflush(stdout);
          }
        }
        save_state(epoch, start, loss_sum, batches, samples_seen);
        throw std::runtime_error(
            "training-health watchdog: non-finite " +
            std::string(std::isfinite(batch_loss) ? "gradient norm"
                                                  : "loss") +
            " at epoch " + std::to_string(epoch) + ", batch " +
            std::to_string(batches) + " — offending tensor '" + offender +
            "'" +
            (cfg_.state_path.empty()
                 ? " (no state_path: nothing checkpointed)"
                 : "; emergency checkpoint saved under " + cfg_.state_path));
      }

      phase.restart();
      obs::TraceSpan step_span("trainer.step");
      optimizer.step();
      step_span.end();
      const double step_s = phase.elapsed_s();
      h_step.record(step_s);

      loss_sum += batch_loss;
      ++batches;
      samples_seen += end - start;
      ++total_batches;
      c_batches.add(1);
      c_samples.add(end - start);
      if (sink.enabled()) {
        obs::Event ev("trainer.batch");
        ev.f("epoch", epoch)
            .f("batch", batches - 1)
            .f("samples", end - start)
            .f("loss", batch_loss)
            .f("grad_norm", grad_norm)
            .f("grad_norm_clipped",
               std::min(grad_norm, static_cast<double>(cfg_.clip_norm)))
            .f("lr", static_cast<double>(optimizer.lr()))
            .f("forward_s", forward_s)
            .f("backward_s", backward_s)
            .f("step_s", step_s);
        sink.emit(ev);
      }

      if (cfg_.max_batches > 0 &&
          total_batches >= static_cast<std::uint64_t>(cfg_.max_batches)) {
        // Crash-simulation hook: stop cold, deliberately NOT saving, so
        // tests resume from whatever checkpoint a real kill would leave.
        interrupted = true;
        stop_all = true;
        break;
      }
      if (cfg_.checkpoint_every_n_batches > 0 &&
          total_batches %
                  static_cast<std::uint64_t>(
                      cfg_.checkpoint_every_n_batches) ==
              0) {
        save_state(epoch, end, loss_sum, batches, samples_seen);
      }
      if (g_stop_requested.load()) {
        save_state(epoch, end, loss_sum, batches, samples_seen);
        interrupted = true;
        stop_all = true;
        break;
      }
    }
    if (stop_all) break;

    EpochLog log;
    log.epoch = epoch;
    log.train_loss = batches > 0 ? loss_sum / batches : 0.0;
    log.eval_delay_mre = -1.0;
    if (eval != nullptr && !eval->empty()) {
      obs::TraceSpan eval_span("trainer.eval");
      log.eval_delay_mre = evaluate_delay_mre(model_, *eval);
      eval_span.end();
      if (best_epoch < 0 || log.eval_delay_mre < best_eval) {
        best_eval = log.eval_delay_mre;
        best_epoch = epoch;
        epochs_since_best = 0;
        if (!cfg_.checkpoint_path.empty()) {
          model_.save(cfg_.checkpoint_path);
        }
      } else {
        ++epochs_since_best;
      }
    }
    const double epoch_s = epoch_watch.elapsed_s();
    h_epoch.record(epoch_s);
    if (sink.enabled() || cfg_.verbose) {
      obs::Event ev("trainer.epoch");
      ev.f("epoch", epoch)
          .f("loss", log.train_loss)
          .f("lr", static_cast<double>(optimizer.lr()))
          .f("batches", batches)
          .f("threads", par::global_threads())
          .f("epoch_s", epoch_s)
          .f("samples_per_s",
             epoch_s > 0.0 ? static_cast<double>(samples_seen) / epoch_s
                           : 0.0);
      if (log.eval_delay_mre >= 0.0) ev.f("eval_mre", log.eval_delay_mre);
      sink.emit(ev);
      if (cfg_.verbose) {
        const std::string line = ev.console_line();
        std::fwrite(line.data(), 1, line.size(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
      }
    }
    if (cfg_.health_checks && (sink.enabled() || cfg_.verbose)) {
      // Per-module norm breakdown once per epoch: cheap relative to an
      // epoch, and gives divergence trends before anything goes non-finite.
      const std::map<std::string, ModuleNorms> norms_by_module =
          module_norms(optimizer.params());
      obs::Event health("trainer.health");
      health.f("status", "ok").f("epoch", epoch).f("total_batches",
                                                   total_batches);
      for (const auto& [module, norms] : norms_by_module) {
        health.f("param_norm." + module, std::sqrt(norms.param_sq))
            .f("grad_norm." + module, std::sqrt(norms.grad_sq));
      }
      sink.emit(health);
      if (cfg_.health_drift_factor > 0.0) {
        // Trend watchdog: a module whose grad/param ratio has grown past
        // baseline × factor is diverging even while every value is still
        // finite — warn now, while a checkpoint is still worth keeping.
        for (const auto& [module, norms] : norms_by_module) {
          const double param_norm = std::sqrt(norms.param_sq);
          const double grad_norm_m = std::sqrt(norms.grad_sq);
          if (param_norm <= 0.0 || grad_norm_m <= 0.0) continue;
          const double ratio = grad_norm_m / param_norm;
          const auto [it, inserted] = drift_baseline.emplace(module, ratio);
          if (inserted) continue;
          if (ratio > cfg_.health_drift_factor * it->second) {
            obs::Event drift("trainer.health.drift");
            drift.f("module", module)
                .f("epoch", epoch)
                .f("ratio", ratio)
                .f("baseline_ratio", it->second)
                .f("factor", cfg_.health_drift_factor);
            sink.emit(drift);
            if (cfg_.verbose) {
              const std::string line = drift.console_line();
              std::fwrite(line.data(), 1, line.size(), stdout);
              std::fputc('\n', stdout);
              std::fflush(stdout);
            }
          }
        }
      }
    }
    report.epochs.push_back(log);
    report.final_train_loss = log.train_loss;
    optimizer.set_lr(optimizer.lr() * cfg_.lr_decay);
    if (cfg_.patience > 0 && eval != nullptr &&
        epochs_since_best >= cfg_.patience) {
      break;
    }
  }

  report.best_eval_mre = best_eval;
  report.best_epoch = best_epoch;
  report.interrupted = interrupted;
  if (!interrupted) {
    // Final state checkpoint: a finished run can be resumed later with a
    // higher epoch budget, and tests can compare optimizer state bitwise.
    save_state(cfg_.epochs, 0, 0.0, 0, 0);
  }
  if (sink.enabled()) {
    if (interrupted) {
      obs::Event ev("trainer.interrupted");
      ev.f("total_batches", total_batches)
          .f("state_saved", cfg_.state_path.empty() ? 0 : 1);
      sink.emit(ev);
    }
    obs::Event done("trainer.done");
    done.f("epochs", report.epochs.size())
        .f("final_train_loss", report.final_train_loss)
        .f("best_epoch", report.best_epoch)
        .f("best_eval_mre", report.best_eval_mre)
        .f("interrupted", interrupted ? 1 : 0);
    sink.emit(done);
  }
  return report;
}

}  // namespace rn::core
