#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "ag/optim.h"
#include "obs/event.h"
#include "obs/timer.h"
#include "par/thread_pool.h"
#include "util/rng.h"

namespace rn::core {

Trainer::Trainer(RouteNet& model, const TrainConfig& config)
    : model_(model), cfg_(config) {
  RN_CHECK(cfg_.epochs >= 1, "need at least one epoch");
  RN_CHECK(cfg_.batch_size >= 1, "batch size must be positive");
  RN_CHECK(cfg_.learning_rate > 0.0f, "learning rate must be positive");
  RN_CHECK(cfg_.lr_decay > 0.0f && cfg_.lr_decay <= 1.0f,
           "lr decay must be in (0,1]");
}

double Trainer::evaluate_delay_mre(
    const RouteNet& model, const std::vector<dataset::Sample>& samples) {
  double total = 0.0;
  std::size_t count = 0;
  const std::vector<RouteNet::Prediction> preds =
      model.predict_batch(samples);
  for (std::size_t si = 0; si < samples.size(); ++si) {
    const dataset::Sample& s = samples[si];
    const RouteNet::Prediction& pred = preds[si];
    for (int idx = 0; idx < s.num_pairs(); ++idx) {
      if (!s.valid[static_cast<std::size_t>(idx)]) continue;
      const double truth = s.delay_s[static_cast<std::size_t>(idx)];
      const double est = pred.delay_s[static_cast<std::size_t>(idx)];
      total += std::abs(est - truth) / truth;
      ++count;
    }
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

double Trainer::evaluate_jitter_mre(
    const RouteNet& model, const std::vector<dataset::Sample>& samples) {
  double total = 0.0;
  std::size_t count = 0;
  const std::vector<RouteNet::Prediction> preds =
      model.predict_batch(samples);
  for (std::size_t si = 0; si < samples.size(); ++si) {
    const dataset::Sample& s = samples[si];
    const RouteNet::Prediction& pred = preds[si];
    for (int idx = 0; idx < s.num_pairs(); ++idx) {
      if (!s.valid[static_cast<std::size_t>(idx)]) continue;
      const double truth = s.jitter_s[static_cast<std::size_t>(idx)];
      if (truth <= 0.0) continue;
      const double est = pred.jitter_s[static_cast<std::size_t>(idx)];
      total += std::abs(est - truth) / truth;
      ++count;
    }
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

TrainReport Trainer::fit(const std::vector<dataset::Sample>& train,
                         const std::vector<dataset::Sample>* eval) {
  RN_CHECK(!train.empty(), "empty training set");
  if (cfg_.threads > 0) par::set_global_threads(cfg_.threads);
  model_.set_normalizer(
      dataset::fit_normalizer(train, cfg_.log_space_targets));

  ag::Adam optimizer(model_.params(), cfg_.learning_rate);
  Rng shuffle_rng(cfg_.shuffle_seed);
  Rng dropout_rng(cfg_.shuffle_seed ^ 0xa5a5a5a5ull);

  std::vector<int> order(train.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int>(i);
  }

  // Telemetry: histograms always aggregate (lock-free, a few ns per batch);
  // structured events are only built when a sink is attached, and the
  // console line for verbose mode is rendered from the same Event so both
  // outputs share one code path.
  obs::EventSink& sink = obs::EventSink::global();
  obs::Registry& reg = obs::Registry::global();
  obs::Histogram& h_forward = reg.histogram("trainer.batch.forward_s");
  obs::Histogram& h_backward = reg.histogram("trainer.batch.backward_s");
  obs::Histogram& h_step = reg.histogram("trainer.batch.step_s");
  obs::Histogram& h_epoch = reg.histogram("trainer.epoch_s");
  obs::Counter& c_batches = reg.counter("trainer.batches_total");
  obs::Counter& c_samples = reg.counter("trainer.samples_total");

  TrainReport report;
  int epochs_since_best = 0;
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    obs::Stopwatch epoch_watch;
    // Fisher–Yates shuffle of the sample order.
    for (std::size_t i = order.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          shuffle_rng.uniform_int(0, static_cast<int>(i) - 1));
      std::swap(order[i - 1], order[j]);
    }

    double loss_sum = 0.0;
    int batches = 0;
    std::size_t samples_seen = 0;
    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(cfg_.batch_size)) {
      const std::size_t end = std::min(
          order.size(), start + static_cast<std::size_t>(cfg_.batch_size));
      std::vector<const dataset::Sample*> chunk;
      chunk.reserve(end - start);
      for (std::size_t i = start; i < end; ++i) {
        chunk.push_back(&train[static_cast<std::size_t>(order[i])]);
      }
      const GraphBatch batch = GraphBatch::from_samples(
          chunk, model_.normalizer(), /*with_targets=*/true);
      if (batch.valid_paths.empty()) continue;  // nothing to learn from

      obs::Stopwatch phase;
      ag::Tape tape;
      const RouteNet::Output out =
          model_.forward(tape, batch, &dropout_rng);
      const ag::ValueId delay_sel =
          tape.gather_rows(out.delay, batch.valid_paths);
      ag::ValueId loss = tape.mse(delay_sel, batch.delay_targets);
      if (cfg_.jitter_loss_weight > 0.0f) {
        const ag::ValueId jitter_sel =
            tape.gather_rows(out.jitter, batch.valid_paths);
        loss = tape.add(
            loss, tape.scale(tape.mse(jitter_sel, batch.jitter_targets),
                             cfg_.jitter_loss_weight));
      }
      const double forward_s = phase.elapsed_s();
      h_forward.record(forward_s);

      phase.restart();
      optimizer.zero_grad();
      tape.backward(loss);
      const double grad_norm =
          ag::clip_grad_norm(optimizer.params(), cfg_.clip_norm);
      const double backward_s = phase.elapsed_s();
      h_backward.record(backward_s);

      phase.restart();
      optimizer.step();
      const double step_s = phase.elapsed_s();
      h_step.record(step_s);

      const double batch_loss = tape.value(loss).at(0, 0);
      loss_sum += batch_loss;
      ++batches;
      samples_seen += end - start;
      c_batches.add(1);
      c_samples.add(end - start);
      if (sink.enabled()) {
        obs::Event ev("trainer.batch");
        ev.f("epoch", epoch)
            .f("batch", batches - 1)
            .f("samples", end - start)
            .f("loss", batch_loss)
            .f("grad_norm", grad_norm)
            .f("grad_norm_clipped",
               std::min(grad_norm, static_cast<double>(cfg_.clip_norm)))
            .f("lr", static_cast<double>(optimizer.lr()))
            .f("forward_s", forward_s)
            .f("backward_s", backward_s)
            .f("step_s", step_s);
        sink.emit(ev);
      }
    }

    EpochLog log;
    log.epoch = epoch;
    log.train_loss = batches > 0 ? loss_sum / batches : 0.0;
    log.eval_delay_mre = -1.0;
    if (eval != nullptr && !eval->empty()) {
      log.eval_delay_mre = evaluate_delay_mre(model_, *eval);
      if (report.best_epoch < 0 || log.eval_delay_mre < report.best_eval_mre) {
        report.best_eval_mre = log.eval_delay_mre;
        report.best_epoch = epoch;
        epochs_since_best = 0;
        if (!cfg_.checkpoint_path.empty()) {
          model_.save(cfg_.checkpoint_path);
        }
      } else {
        ++epochs_since_best;
      }
    }
    const double epoch_s = epoch_watch.elapsed_s();
    h_epoch.record(epoch_s);
    if (sink.enabled() || cfg_.verbose) {
      obs::Event ev("trainer.epoch");
      ev.f("epoch", epoch)
          .f("loss", log.train_loss)
          .f("lr", static_cast<double>(optimizer.lr()))
          .f("batches", batches)
          .f("threads", par::global_threads())
          .f("epoch_s", epoch_s)
          .f("samples_per_s",
             epoch_s > 0.0 ? static_cast<double>(samples_seen) / epoch_s : 0.0);
      if (log.eval_delay_mre >= 0.0) ev.f("eval_mre", log.eval_delay_mre);
      sink.emit(ev);
      if (cfg_.verbose) {
        const std::string line = ev.console_line();
        std::fwrite(line.data(), 1, line.size(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
      }
    }
    report.epochs.push_back(log);
    report.final_train_loss = log.train_loss;
    optimizer.set_lr(optimizer.lr() * cfg_.lr_decay);
    if (cfg_.patience > 0 && eval != nullptr &&
        epochs_since_best >= cfg_.patience) {
      break;
    }
  }
  if (sink.enabled()) {
    obs::Event done("trainer.done");
    done.f("epochs", report.epochs.size())
        .f("final_train_loss", report.final_train_loss)
        .f("best_epoch", report.best_epoch)
        .f("best_eval_mre", report.best_eval_mre);
    sink.emit(done);
  }
  return report;
}

}  // namespace rn::core
