#include "core/routenet.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "ag/serialize.h"
#include "obs/timer.h"
#include "obs/trace.h"

namespace rn::core {

namespace {

// Pads an N×1 feature column into an N×dim initial hidden state
// (feature in column 0, zeros elsewhere), as in the reference RouteNet.
ag::Tensor pad_initial_state(const ag::Tensor& features, int dim) {
  RN_CHECK(features.cols() == 1, "expected a feature column");
  RN_CHECK(dim >= 1, "state dim must be positive");
  ag::Tensor state(features.rows(), dim);
  for (int r = 0; r < features.rows(); ++r) {
    state.at(r, 0) = features.at(r, 0);
  }
  return state;
}

}  // namespace

RouteNet::RouteNet(const RouteNetConfig& config)
    : config_(config),
      init_rng_(config.seed),
      path_cell_(config.link_state_dim, config.path_state_dim, init_rng_,
                 "routenet.path_gru"),
      link_cell_(config.path_state_dim, config.link_state_dim, init_rng_,
                 "routenet.link_gru"),
      delay_readout_({config.path_state_dim, config.readout_hidden, 1},
                     init_rng_, "routenet.delay_readout"),
      jitter_readout_({config.path_state_dim, config.readout_hidden, 1},
                      init_rng_, "routenet.jitter_readout") {
  RN_CHECK(config.link_state_dim >= 1 && config.path_state_dim >= 1,
           "state dims must be positive");
  RN_CHECK(config.iterations >= 1, "need at least one message-passing round");
}

RouteNet::Output RouteNet::forward(ag::Tape& tape, const GraphBatch& batch,
                                   Rng* dropout_rng) const {
  RN_CHECK(batch.num_links > 0 && batch.num_paths > 0, "empty graph batch");
  // Message-passing phase timings. References are looked up once per
  // process (function-local statics); per-forward cost is a handful of
  // steady_clock reads — negligible against the tensor work they bracket.
  static obs::Histogram& h_forward =
      obs::Registry::global().histogram("routenet.forward_s");
  static obs::Histogram& h_path_phase =
      obs::Registry::global().histogram("routenet.mp.path_update_s");
  static obs::Histogram& h_link_phase =
      obs::Registry::global().histogram("routenet.mp.link_update_s");
  static obs::Histogram& h_readout =
      obs::Registry::global().histogram("routenet.readout_s");
  obs::ScopedTimer forward_timer(h_forward);
  obs::TraceSpan forward_span("routenet.forward");
  double path_phase_s = 0.0;
  double link_phase_s = 0.0;

  ag::ValueId h_links = tape.constant(
      pad_initial_state(batch.link_features, config_.link_state_dim));
  ag::ValueId h_paths = tape.constant(
      pad_initial_state(batch.path_features, config_.path_state_dim));

  // The hop → link assignment is a property of the batch, not of the
  // iteration: hoist the flattened link list and the mean-aggregation
  // inverse counts out of the message-passing loop instead of recomputing
  // them config_.iterations times.
  std::vector<int> message_links;
  for (int s = 0; s < batch.max_path_length(); ++s) {
    const std::vector<int>& links = batch.pos_links[static_cast<std::size_t>(s)];
    if (batch.pos_paths[static_cast<std::size_t>(s)].empty()) continue;
    message_links.insert(message_links.end(), links.begin(), links.end());
  }
  std::vector<float> inv_count;
  if (config_.aggregation == Aggregation::kMean) {
    inv_count.assign(static_cast<std::size_t>(batch.num_links), 0.0f);
    for (int l : message_links) inv_count[static_cast<std::size_t>(l)] += 1.0f;
    for (float& f : inv_count) {
      if (f > 0.0f) f = 1.0f / f;
    }
  }

  for (int t = 0; t < config_.iterations; ++t) {
    obs::TraceSpan mp_span("routenet.mp");
    mp_span.arg("iter", t);
    obs::Stopwatch phase;
    // Path update: vectorized RNN over hop positions. All paths that are at
    // least s+1 hops long advance together at position s.
    std::vector<ag::ValueId> messages;
    for (int s = 0; s < batch.max_path_length(); ++s) {
      const std::vector<int>& paths = batch.pos_paths[static_cast<std::size_t>(s)];
      const std::vector<int>& links = batch.pos_links[static_cast<std::size_t>(s)];
      if (paths.empty()) continue;
      const ag::ValueId h_next =
          path_cell_.step_gathered(tape, h_links, links, h_paths, paths);
      h_paths = tape.scatter_rows(h_paths, paths, h_next);
      // The post-hop path state is the message this hop sends to its link.
      messages.push_back(h_next);
    }
    path_phase_s += phase.elapsed_s();
    phase.restart();
    // Link update: combine the messages that crossed each link, GRU step.
    RN_CHECK(!messages.empty(), "batch has no path traversals");
    const ag::ValueId stacked = tape.concat_rows(messages);
    ag::ValueId aggregated =
        tape.segment_sum(stacked, message_links, batch.num_links);
    if (config_.aggregation == Aggregation::kMean) {
      aggregated = tape.scale_rows(aggregated, inv_count);
    }
    h_links = link_cell_.step(tape, aggregated, h_links);
    link_phase_s += phase.elapsed_s();
  }
  h_path_phase.record(path_phase_s);
  h_link_phase.record(link_phase_s);

  obs::ScopedTimer readout_timer(h_readout);
  obs::TraceSpan readout_span("routenet.readout");
  if (dropout_rng != nullptr && config_.dropout > 0.0f) {
    h_paths = tape.dropout(h_paths, config_.dropout, *dropout_rng);
  }
  Output out;
  out.delay = delay_readout_.apply(tape, h_paths);
  out.jitter = jitter_readout_.apply(tape, h_paths);
  return out;
}

RouteNet::Prediction RouteNet::predict(const dataset::Sample& sample) const {
  const GraphBatch batch =
      GraphBatch::from_sample(sample, norm_, /*with_targets=*/false);
  ag::Tape tape;
  const Output out = forward(tape, batch);
  const ag::Tensor& delay = tape.value(out.delay);
  const ag::Tensor& jitter = tape.value(out.jitter);
  Prediction pred;
  pred.delay_s.resize(static_cast<std::size_t>(batch.num_paths));
  pred.jitter_s.resize(static_cast<std::size_t>(batch.num_paths));
  for (int i = 0; i < batch.num_paths; ++i) {
    pred.delay_s[static_cast<std::size_t>(i)] =
        norm_.denormalize_delay(delay.at(i, 0));
    pred.jitter_s[static_cast<std::size_t>(i)] =
        norm_.denormalize_jitter(jitter.at(i, 0));
  }
  return pred;
}

std::vector<RouteNet::Prediction> RouteNet::predict_batch(
    const std::vector<dataset::Sample>& samples, int batch_size) const {
  RN_CHECK(batch_size >= 1, "batch size must be positive");
  std::vector<Prediction> out;
  out.reserve(samples.size());
  for (std::size_t start = 0; start < samples.size();
       start += static_cast<std::size_t>(batch_size)) {
    const std::size_t end = std::min(
        samples.size(), start + static_cast<std::size_t>(batch_size));
    std::vector<const dataset::Sample*> chunk;
    chunk.reserve(end - start);
    for (std::size_t i = start; i < end; ++i) chunk.push_back(&samples[i]);
    std::vector<Prediction> merged = predict_merged(chunk);
    for (Prediction& pred : merged) out.push_back(std::move(pred));
  }
  return out;
}

std::vector<RouteNet::Prediction> RouteNet::predict_merged(
    const std::vector<const dataset::Sample*>& samples) const {
  RN_CHECK(!samples.empty(), "predict_merged needs at least one sample");
  const GraphBatch batch =
      GraphBatch::from_samples(samples, norm_, /*with_targets=*/false);
  ag::Tape tape;
  const Output fwd = forward(tape, batch);
  const ag::Tensor& delay = tape.value(fwd.delay);
  const ag::Tensor& jitter = tape.value(fwd.jitter);
  std::vector<Prediction> out;
  out.reserve(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const int offset = batch.path_offset[i];
    const int pairs = samples[i]->num_pairs();
    Prediction pred;
    pred.delay_s.resize(static_cast<std::size_t>(pairs));
    pred.jitter_s.resize(static_cast<std::size_t>(pairs));
    for (int p = 0; p < pairs; ++p) {
      pred.delay_s[static_cast<std::size_t>(p)] =
          norm_.denormalize_delay(delay.at(offset + p, 0));
      pred.jitter_s[static_cast<std::size_t>(p)] =
          norm_.denormalize_jitter(jitter.at(offset + p, 0));
    }
    out.push_back(std::move(pred));
  }
  return out;
}

std::vector<ag::Parameter*> RouteNet::params() {
  std::vector<ag::Parameter*> out;
  for (ag::Parameter* p : path_cell_.params()) out.push_back(p);
  for (ag::Parameter* p : link_cell_.params()) out.push_back(p);
  for (ag::Parameter* p : delay_readout_.params()) out.push_back(p);
  for (ag::Parameter* p : jitter_readout_.params()) out.push_back(p);
  return out;
}

std::size_t RouteNet::num_parameters() const {
  std::size_t total = 0;
  for (ag::Parameter* p : const_cast<RouteNet*>(this)->params()) {
    total += static_cast<std::size_t>(p->value.size());
  }
  return total;
}

namespace {
// v1 lacked the aggregation / log_space ablation fields (defaults: sum
// aggregation, log-space targets); v2 added them; v3 adds the readout
// dropout rate. All load.
constexpr char kModelMagicV1[] = "RNMODEL1";
constexpr char kModelMagicV2[] = "RNMODEL2";
constexpr char kModelMagicV3[] = "RNMODEL3";
constexpr std::size_t kModelMagicLen = 8;
}  // namespace

void RouteNet::save(const std::string& path) const {
  // Serialize to memory, then write atomically (temp file + rename) so a
  // crash mid-save — e.g. during the trainer's best-model checkpoint —
  // never leaves a torn file behind.
  std::ostringstream out(std::ios::binary);
  out.write(kModelMagicV3, kModelMagicLen);
  auto write_pod = [&out](const auto& v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  write_pod(config_.link_state_dim);
  write_pod(config_.path_state_dim);
  write_pod(config_.iterations);
  write_pod(config_.readout_hidden);
  write_pod(config_.aggregation);
  write_pod(config_.dropout);
  write_pod(config_.seed);
  write_pod(norm_.capacity_scale);
  write_pod(norm_.traffic_scale);
  const std::uint8_t log_space = norm_.log_space ? 1 : 0;
  write_pod(log_space);
  write_pod(norm_.log_delay_mean);
  write_pod(norm_.log_delay_std);
  write_pod(norm_.log_jitter_mean);
  write_pod(norm_.log_jitter_std);
  ag::save_parameters(out, const_cast<RouteNet*>(this)->params());
  RN_CHECK(out.good(), "serialization failure for model file: " + path);
  ag::atomic_write_file(path, out.str());
}

RouteNet RouteNet::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  RN_CHECK(in.good(), "cannot open model file for reading: " + path);
  char magic_raw[kModelMagicLen];
  in.read(magic_raw, kModelMagicLen);
  const std::string magic(magic_raw, kModelMagicLen);
  RN_CHECK(in.good() && (magic == kModelMagicV1 || magic == kModelMagicV2 ||
                         magic == kModelMagicV3),
           "bad model magic in " + path);
  const bool v2 = magic != kModelMagicV1;
  const bool v3 = magic == kModelMagicV3;
  auto read_pod = [&in](auto& v) {
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    RN_CHECK(in.good(), "truncated model file");
  };
  RouteNetConfig config;
  read_pod(config.link_state_dim);
  read_pod(config.path_state_dim);
  read_pod(config.iterations);
  read_pod(config.readout_hidden);
  if (v2) read_pod(config.aggregation);
  if (v3) read_pod(config.dropout);
  read_pod(config.seed);
  dataset::Normalizer norm;
  read_pod(norm.capacity_scale);
  read_pod(norm.traffic_scale);
  if (v2) {
    std::uint8_t log_space = 1;
    read_pod(log_space);
    norm.log_space = log_space != 0;
  }
  read_pod(norm.log_delay_mean);
  read_pod(norm.log_delay_std);
  read_pod(norm.log_jitter_mean);
  read_pod(norm.log_jitter_std);
  RouteNet model(config);
  model.set_normalizer(norm);
  ag::load_parameters(in, model.params());
  return model;
}

}  // namespace rn::core
