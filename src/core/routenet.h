// RouteNet (Rusek et al., SOSR 2019) — the GNN whose generalization the
// demo paper challenges.
//
// State: one hidden vector per directed link and one per source-destination
// path. Each of T message-passing iterations runs:
//   1. Path update: a GRU reads the link states along each path in hop
//      order, starting from the path's current state. Its intermediate
//      hidden states are the messages each hop sends to its link.
//   2. Link update: per link, the messages of all (path, hop) pairs that
//      cross it are summed (segment_sum) and fed to a link GRU.
// Readout MLPs map final path states to mean delay and jitter (normalized
// log space; the Normalizer maps back to seconds).
//
// Because the architecture is assembled from the input graph at run time,
// a trained model predicts on topologies, routings, and matrices never seen
// in training — the property the paper stresses with 14→50-node training
// and 24-node (Geant2) evaluation.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ag/nn.h"
#include "ag/tape.h"
#include "core/graph_batch.h"
#include "dataset/dataset.h"

namespace rn::core {

// How per-hop messages are combined into a link's input. The reference
// RouteNet sums; mean aggregation is an ablation that loses the "how many
// paths load this link" signal (message count) and should generalize worse
// across traffic intensities.
enum class Aggregation : std::int32_t { kSum = 0, kMean = 1 };

struct RouteNetConfig {
  int link_state_dim = 16;
  int path_state_dim = 16;
  int iterations = 4;       // T message-passing rounds
  int readout_hidden = 32;  // width of the readout MLP's hidden layer
  Aggregation aggregation = Aggregation::kSum;
  // Dropout applied to path states before the readouts during training
  // (the reference implementation regularizes its readout the same way);
  // inference never drops.
  float dropout = 0.0f;
  std::uint64_t seed = 42;  // weight-init seed
};

class RouteNet {
 public:
  explicit RouteNet(const RouteNetConfig& config);

  struct Output {
    ag::ValueId delay = ag::kInvalidValue;   // P×1, normalized log space
    ag::ValueId jitter = ag::kInvalidValue;  // P×1, normalized log space
  };

  // Records the full message-passing computation on the tape. When
  // `dropout_rng` is non-null and config().dropout > 0, readout dropout is
  // active (training mode); inference callers pass nothing.
  Output forward(ag::Tape& tape, const GraphBatch& batch,
                 Rng* dropout_rng = nullptr) const;

  struct Prediction {
    std::vector<double> delay_s;   // per pair index, seconds
    std::vector<double> jitter_s;  // per pair index, seconds
  };

  // Inference on one scenario (denormalized).
  Prediction predict(const dataset::Sample& sample) const;

  // Batched inference: merges up to `batch_size` samples per forward pass
  // (disjoint graphs, so results are identical to per-sample predict but
  // amortize the tape overhead). Returns one Prediction per input sample.
  std::vector<Prediction> predict_batch(
      const std::vector<dataset::Sample>& samples, int batch_size = 8) const;

  // One merged forward pass over the given samples (no chunking — the caller
  // owns batch sizing), scattered back to one Prediction per sample. This is
  // the kernel predict_batch chunks over and the serving micro-batcher calls
  // directly on coalesced requests.
  std::vector<Prediction> predict_merged(
      const std::vector<const dataset::Sample*>& samples) const;

  const RouteNetConfig& config() const { return config_; }

  // Normalization constants are fitted by the Trainer on the training set
  // and travel with the model checkpoint.
  const dataset::Normalizer& normalizer() const { return norm_; }
  void set_normalizer(const dataset::Normalizer& norm) { norm_ = norm; }

  std::vector<ag::Parameter*> params();

  // Model file = config + normalizer header, then the parameter block.
  void save(const std::string& path) const;
  static RouteNet load(const std::string& path);

  // Total trainable scalar count.
  std::size_t num_parameters() const;

 private:
  RouteNetConfig config_;
  dataset::Normalizer norm_;
  Rng init_rng_;  // consumed by weight init; declared before the layers
  // Mutable: Tape::param takes Parameter& for gradient accumulation, and
  // forward() is logically const (it does not change the model).
  mutable ag::GruCell path_cell_;
  mutable ag::GruCell link_cell_;
  mutable ag::Mlp delay_readout_;
  mutable ag::Mlp jitter_readout_;
};

}  // namespace rn::core
