// GraphBatch: one or more dataset samples merged into a single
// message-passing graph with offset link/path indices.
//
// RouteNet's per-sample graphs are disjoint, so a mini-batch is just their
// union: link i of sample k becomes link i + link_offset[k], and the
// position schedule below drives a single vectorized path-RNN over all
// paths of all samples at once.
#pragma once

#include <vector>

#include "ag/tensor.h"
#include "dataset/dataset.h"

namespace rn::core {

struct GraphBatch {
  int num_links = 0;
  int num_paths = 0;

  // Per-link scaled capacity (L×1) and per-path scaled traffic (P×1).
  ag::Tensor link_features;
  ag::Tensor path_features;

  // Position schedule: at hop position s, path pos_paths[s][i] consumes
  // link pos_links[s][i]. Every path appears at most once per position, so
  // scatter-updates of path state are well defined.
  std::vector<std::vector<int>> pos_paths;
  std::vector<std::vector<int>> pos_links;

  // Paths that carry usable targets (merged indices) and their normalized
  // log-space targets (V×1 each). Invalid paths remain in the graph — their
  // traffic still loads links — but contribute no loss.
  std::vector<int> valid_paths;
  ag::Tensor delay_targets;
  ag::Tensor jitter_targets;

  // Offsets mapping merged indices back to samples.
  std::vector<int> link_offset;
  std::vector<int> path_offset;

  int max_path_length() const { return static_cast<int>(pos_paths.size()); }

  // Merges samples; when with_targets is false the target tensors stay
  // empty (inference on unlabeled scenarios).
  static GraphBatch from_samples(
      const std::vector<const dataset::Sample*>& samples,
      const dataset::Normalizer& norm, bool with_targets);

  static GraphBatch from_sample(const dataset::Sample& sample,
                                const dataset::Normalizer& norm,
                                bool with_targets);
};

}  // namespace rn::core
