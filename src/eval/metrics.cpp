#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"
#include "util/stats.h"

namespace rn::eval {

RegressionStats regression_stats(const std::vector<double>& truth,
                                 const std::vector<double>& pred) {
  RN_CHECK(truth.size() == pred.size(), "series length mismatch");
  RN_CHECK(!truth.empty(), "empty series");
  RegressionStats s;
  // Relative error is undefined for non-positive truth; one bad label must
  // not kill a whole evaluation run, so such pairs are dropped up front and
  // every statistic below sees only the usable pairs.
  std::vector<double> t, p;
  t.reserve(truth.size());
  p.reserve(truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] > 0.0) {
      t.push_back(truth[i]);
      p.push_back(pred[i]);
    } else {
      ++s.skipped_nonpositive;
    }
  }
  RN_CHECK(!t.empty(), "no pairs with positive true delay");
  s.n = t.size();
  double sum_abs = 0.0, sum_sq = 0.0, sum_re = 0.0;
  std::vector<double> res;
  res.reserve(t.size());
  double mean_t = 0.0, mean_p = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const double err = p[i] - t[i];
    sum_abs += std::abs(err);
    sum_sq += err * err;
    const double re = std::abs(err) / t[i];
    sum_re += re;
    res.push_back(re);
    mean_t += t[i];
    mean_p += p[i];
  }
  const auto n = static_cast<double>(t.size());
  mean_t /= n;
  mean_p /= n;
  s.mae = sum_abs / n;
  s.rmse = std::sqrt(sum_sq / n);
  s.mre = sum_re / n;
  s.median_re = quantile(res, 0.5);
  double cov = 0.0, var_t = 0.0, var_p = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    cov += (t[i] - mean_t) * (p[i] - mean_p);
    var_t += (t[i] - mean_t) * (t[i] - mean_t);
    var_p += (p[i] - mean_p) * (p[i] - mean_p);
  }
  s.pearson_r = (var_t > 0.0 && var_p > 0.0)
                    ? cov / std::sqrt(var_t * var_p)
                    : 0.0;
  s.r2 = var_t > 0.0 ? 1.0 - sum_sq / var_t : 0.0;
  return s;
}

std::vector<double> relative_errors(const std::vector<double>& truth,
                                    const std::vector<double>& pred,
                                    std::size_t* skipped_nonpositive) {
  RN_CHECK(truth.size() == pred.size(), "series length mismatch");
  std::vector<double> out;
  out.reserve(truth.size());
  std::size_t skipped = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] > 0.0) {
      out.push_back((pred[i] - truth[i]) / truth[i]);
    } else {
      ++skipped;
    }
  }
  if (skipped_nonpositive != nullptr) *skipped_nonpositive = skipped;
  return out;
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> values,
                                    int num_points) {
  RN_CHECK(!values.empty(), "empty value set");
  RN_CHECK(num_points >= 2, "need at least 2 CDF points");
  std::sort(values.begin(), values.end());
  std::vector<CdfPoint> cdf;
  cdf.reserve(static_cast<std::size_t>(num_points));
  const auto n = static_cast<double>(values.size());
  for (int k = 0; k < num_points; ++k) {
    const double q = static_cast<double>(k) / (num_points - 1);
    const auto pos = static_cast<std::size_t>(
        std::min(n - 1.0, std::floor(q * (n - 1.0))));
    // Probability uses the right-continuous rank of that sample.
    cdf.push_back(CdfPoint{values[pos],
                           (static_cast<double>(pos) + 1.0) / n});
  }
  return cdf;
}

std::vector<RankedPath> top_n_paths(const dataset::Sample& sample,
                                    const std::vector<double>& predicted,
                                    int n) {
  RN_CHECK(static_cast<int>(predicted.size()) == sample.num_pairs(),
           "prediction length mismatch");
  RN_CHECK(n >= 1, "n must be positive");
  std::vector<RankedPath> all;
  const int nodes = sample.topology->num_nodes();
  for (int idx = 0; idx < sample.num_pairs(); ++idx) {
    if (!sample.valid[static_cast<std::size_t>(idx)]) continue;
    const auto [src, dst] = topo::pair_from_index(idx, nodes);
    RankedPath rp;
    rp.src = src;
    rp.dst = dst;
    rp.hops = static_cast<int>(sample.routing.path_by_index(idx).size());
    rp.predicted_delay_s = predicted[static_cast<std::size_t>(idx)];
    rp.true_delay_s = sample.delay_s[static_cast<std::size_t>(idx)];
    all.push_back(rp);
  }
  std::sort(all.begin(), all.end(), [](const RankedPath& a,
                                       const RankedPath& b) {
    return a.predicted_delay_s > b.predicted_delay_s;
  });
  if (static_cast<int>(all.size()) > n) {
    all.resize(static_cast<std::size_t>(n));
  }
  return all;
}

namespace {

std::pair<double, double> min_max(const std::vector<double>& xs) {
  double lo = xs.front(), hi = xs.front();
  for (double x : xs) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  if (hi <= lo) hi = lo + 1e-12;
  return {lo, hi};
}

}  // namespace

std::string ascii_scatter(const std::vector<double>& truth,
                          const std::vector<double>& pred, int width,
                          int height) {
  RN_CHECK(truth.size() == pred.size() && !truth.empty(),
           "bad scatter input");
  RN_CHECK(width >= 10 && height >= 5, "scatter canvas too small");
  // Shared scale so the y=x diagonal is meaningful.
  std::vector<double> all = truth;
  all.insert(all.end(), pred.begin(), pred.end());
  const auto [lo, hi] = min_max(all);
  std::vector<std::string> canvas(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(width), ' '));
  auto to_col = [&](double v) {
    return std::clamp(static_cast<int>((v - lo) / (hi - lo) * (width - 1)),
                      0, width - 1);
  };
  auto to_row = [&](double v) {
    return std::clamp(
        height - 1 - static_cast<int>((v - lo) / (hi - lo) * (height - 1)), 0,
        height - 1);
  };
  // y = x reference.
  for (int c = 0; c < width; ++c) {
    const double v = lo + (hi - lo) * c / (width - 1);
    canvas[static_cast<std::size_t>(to_row(v))][static_cast<std::size_t>(c)] = '.';
  }
  for (std::size_t i = 0; i < truth.size(); ++i) {
    canvas[static_cast<std::size_t>(to_row(pred[i]))]
          [static_cast<std::size_t>(to_col(truth[i]))] = 'o';
  }
  std::ostringstream os;
  os << "pred (s)\n";
  for (const std::string& row : canvas) os << '|' << row << "|\n";
  os << '+' << std::string(static_cast<std::size_t>(width), '-') << "+  true (s)\n";
  os << "range [" << lo << ", " << hi << "]   ('.' marks y=x)\n";
  return os.str();
}

std::string ascii_cdf(const std::vector<NamedCdf>& series, int width,
                      int height) {
  RN_CHECK(!series.empty(), "no CDF series");
  RN_CHECK(width >= 10 && height >= 5, "cdf canvas too small");
  static const char glyphs[] = {'*', '+', 'x', 'o', '#', '@'};
  std::vector<double> all_x;
  for (const NamedCdf& s : series) {
    for (const CdfPoint& p : s.cdf) all_x.push_back(p.x);
  }
  RN_CHECK(!all_x.empty(), "empty CDF series");
  const auto [lo, hi] = min_max(all_x);
  std::vector<std::string> canvas(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(width), ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char g = glyphs[si % sizeof(glyphs)];
    for (const CdfPoint& p : series[si].cdf) {
      const int c = std::clamp(
          static_cast<int>((p.x - lo) / (hi - lo) * (width - 1)), 0,
          width - 1);
      const int r = std::clamp(
          height - 1 - static_cast<int>(p.p * (height - 1)), 0, height - 1);
      canvas[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = g;
    }
  }
  std::ostringstream os;
  os << "P(err <= x)\n";
  for (const std::string& row : canvas) os << '|' << row << "|\n";
  os << '+' << std::string(static_cast<std::size_t>(width), '-') << "+\n";
  os << "x range [" << lo << ", " << hi << "]\n";
  for (std::size_t si = 0; si < series.size(); ++si) {
    os << "  '" << glyphs[si % sizeof(glyphs)] << "' = " << series[si].name
       << "\n";
  }
  return os.str();
}

}  // namespace rn::eval
