#include "eval/export.h"

#include <fstream>

#include "util/check.h"

namespace rn::eval {

namespace {

std::ofstream open_csv(const std::string& path) {
  std::ofstream out(path);
  RN_CHECK(out.good(), "cannot open CSV for writing: " + path);
  out.precision(9);
  return out;
}

}  // namespace

void write_regression_csv(const std::string& path,
                          const std::vector<double>& truth,
                          const std::vector<double>& pred) {
  RN_CHECK(truth.size() == pred.size(), "series length mismatch");
  std::ofstream out = open_csv(path);
  out << "true_delay_s,predicted_delay_s\n";
  for (std::size_t i = 0; i < truth.size(); ++i) {
    out << truth[i] << ',' << pred[i] << '\n';
  }
  RN_CHECK(out.good(), "write failure on CSV: " + path);
}

void write_cdf_csv(const std::string& path,
                   const std::vector<NamedCdf>& series) {
  std::ofstream out = open_csv(path);
  out << "series,x,p\n";
  for (const NamedCdf& s : series) {
    for (const CdfPoint& pt : s.cdf) {
      out << s.name << ',' << pt.x << ',' << pt.p << '\n';
    }
  }
  RN_CHECK(out.good(), "write failure on CSV: " + path);
}

void write_top_paths_csv(const std::string& path,
                         const std::vector<RankedPath>& ranked) {
  std::ofstream out = open_csv(path);
  out << "rank,src,dst,hops,predicted_delay_s,true_delay_s\n";
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const RankedPath& r = ranked[i];
    out << (i + 1) << ',' << r.src << ',' << r.dst << ',' << r.hops << ','
        << r.predicted_delay_s << ',' << r.true_delay_s << '\n';
  }
  RN_CHECK(out.good(), "write failure on CSV: " + path);
}

}  // namespace rn::eval
