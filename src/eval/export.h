// CSV export of figure data, so results can be re-plotted outside the
// terminal (gnuplot/matplotlib). Each bench writes its series next to the
// printed report.
#pragma once

#include <string>
#include <vector>

#include "eval/metrics.h"

namespace rn::eval {

// Columns: true_delay_s, predicted_delay_s (one row per path).
void write_regression_csv(const std::string& path,
                          const std::vector<double>& truth,
                          const std::vector<double>& pred);

// Columns: series, x, p — all series concatenated.
void write_cdf_csv(const std::string& path,
                   const std::vector<NamedCdf>& series);

// Columns: rank, src, dst, hops, predicted_delay_s, true_delay_s.
void write_top_paths_csv(const std::string& path,
                         const std::vector<RankedPath>& ranked);

}  // namespace rn::eval
