// Evaluation metrics and report builders for the paper's three figures:
// regression statistics (Fig. 2), relative-error CDFs (Fig. 3), and the
// Top-N highest-delay-path report (Fig. 4).
#pragma once

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "dataset/dataset.h"
#include "traffic/traffic.h"

namespace rn::eval {

struct RegressionStats {
  std::size_t n = 0;       // pairs the stats are computed over
  double mae = 0.0;        // mean absolute error
  double rmse = 0.0;
  double mre = 0.0;        // mean |pred-true|/true
  double median_re = 0.0;  // median |pred-true|/true
  double pearson_r = 0.0;
  double r2 = 0.0;         // coefficient of determination
  // Pairs dropped because their true delay was <= 0 (a path the simulator
  // marked valid on delivered-count alone, or a degenerate label): relative
  // error is undefined there, so they are skipped and counted rather than
  // aborting a whole evaluation run.
  std::size_t skipped_nonpositive = 0;
};

// Throws only when no pair has a positive true delay (nothing to report).
RegressionStats regression_stats(const std::vector<double>& truth,
                                 const std::vector<double>& pred);

// Signed relative errors (pred − true) / true. Pairs with non-positive
// truth are skipped (the output is correspondingly shorter); when
// `skipped_nonpositive` is non-null it receives the dropped count.
std::vector<double> relative_errors(const std::vector<double>& truth,
                                    const std::vector<double>& pred,
                                    std::size_t* skipped_nonpositive = nullptr);

// Empirical CDF evaluated at evenly spread sample points.
struct CdfPoint {
  double x = 0.0;  // value
  double p = 0.0;  // P(X <= x)
};
std::vector<CdfPoint> empirical_cdf(std::vector<double> values,
                                    int num_points = 101);

// Collects (truth, prediction) pairs for valid paths of a sample set using
// a per-sample prediction functor.
struct PairedSeries {
  std::vector<double> truth;
  std::vector<double> pred;
};
template <typename PredictFn>
PairedSeries collect_delay_pairs(const std::vector<dataset::Sample>& samples,
                                 PredictFn&& predict) {
  PairedSeries out;
  for (const dataset::Sample& s : samples) {
    const std::vector<double> pred = predict(s);
    for (int idx = 0; idx < s.num_pairs(); ++idx) {
      if (!s.valid[static_cast<std::size_t>(idx)]) continue;
      out.truth.push_back(s.delay_s[static_cast<std::size_t>(idx)]);
      out.pred.push_back(pred[static_cast<std::size_t>(idx)]);
    }
  }
  return out;
}

// --- Error vs. load diagnostics ------------------------------------------------

// Buckets valid paths of a sample set by the maximum offered utilization
// along the path and reports the mean |relative error| per bucket — shows
// whether a predictor degrades near saturation.
struct UtilizationBucket {
  double lo = 0.0;
  double hi = 0.0;
  std::size_t paths = 0;
  double mre = 0.0;
};

template <typename PredictFn>
std::vector<UtilizationBucket> error_by_utilization(
    const std::vector<dataset::Sample>& samples, PredictFn&& predict,
    const std::vector<double>& edges = {0.0, 0.3, 0.5, 0.7, 0.85, 1.0,
                                        10.0}) {
  std::vector<UtilizationBucket> buckets;
  for (std::size_t b = 0; b + 1 < edges.size(); ++b) {
    buckets.push_back(UtilizationBucket{edges[b], edges[b + 1], 0, 0.0});
  }
  for (const dataset::Sample& s : samples) {
    const std::vector<double> pred = predict(s);
    const std::vector<double> loads =
        traffic::link_loads_bps(*s.topology, s.routing, s.tm);
    for (int idx = 0; idx < s.num_pairs(); ++idx) {
      if (!s.valid[static_cast<std::size_t>(idx)]) continue;
      double max_util = 0.0;
      for (topo::LinkId id : s.routing.path_by_index(idx)) {
        max_util = std::max(max_util,
                            loads[static_cast<std::size_t>(id)] /
                                s.topology->link(id).capacity_bps);
      }
      for (UtilizationBucket& bucket : buckets) {
        if (max_util >= bucket.lo && max_util < bucket.hi) {
          const double truth = s.delay_s[static_cast<std::size_t>(idx)];
          bucket.mre += std::abs(pred[static_cast<std::size_t>(idx)] - truth) /
                        truth;
          ++bucket.paths;
          break;
        }
      }
    }
  }
  for (UtilizationBucket& bucket : buckets) {
    if (bucket.paths > 0) bucket.mre /= static_cast<double>(bucket.paths);
  }
  return buckets;
}

// --- Fig. 4: Top-N paths with more delay ------------------------------------

struct RankedPath {
  topo::NodeId src = 0;
  topo::NodeId dst = 0;
  int hops = 0;
  double predicted_delay_s = 0.0;
  double true_delay_s = 0.0;  // simulator reference (0 when unknown)
};

// Ranks a sample's valid paths by predicted delay, descending.
std::vector<RankedPath> top_n_paths(const dataset::Sample& sample,
                                    const std::vector<double>& predicted,
                                    int n);

// --- ASCII renderers (terminal "figures") --------------------------------------

// Scatter of pred vs truth with a y=x reference diagonal.
std::string ascii_scatter(const std::vector<double>& truth,
                          const std::vector<double>& pred, int width = 56,
                          int height = 20);

// Overlaid CDF curves; one glyph per series.
struct NamedCdf {
  std::string name;
  std::vector<CdfPoint> cdf;
};
std::string ascii_cdf(const std::vector<NamedCdf>& series, int width = 64,
                      int height = 18);

}  // namespace rn::eval
