// Network topology: a multigraph of nodes joined by directed capacitated
// links. Links are directed because queueing happens per direction; the
// named topologies install both directions of every physical cable.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/check.h"

namespace rn::topo {

using LinkId = int;
using NodeId = int;

struct Link {
  NodeId src = 0;
  NodeId dst = 0;
  double capacity_bps = 0.0;   // transmission rate
  double prop_delay_s = 0.0;   // fixed propagation latency
};

class Topology {
 public:
  Topology(std::string name, int num_nodes);

  // Adds one directed link and returns its id.
  LinkId add_link(NodeId src, NodeId dst, double capacity_bps,
                  double prop_delay_s = 0.0);

  // Adds both directions with identical capacity/delay; returns the id of
  // the src→dst direction (the dst→src id is the next one).
  LinkId add_duplex_link(NodeId a, NodeId b, double capacity_bps,
                         double prop_delay_s = 0.0);

  const std::string& name() const { return name_; }
  int num_nodes() const { return num_nodes_; }
  int num_links() const { return static_cast<int>(links_.size()); }

  const Link& link(LinkId id) const {
    RN_CHECK(id >= 0 && id < num_links(), "link id out of range");
    return links_[static_cast<std::size_t>(id)];
  }

  const std::vector<Link>& links() const { return links_; }

  // Outgoing link ids of a node.
  const std::vector<LinkId>& out_links(NodeId n) const {
    RN_CHECK(n >= 0 && n < num_nodes_, "node id out of range");
    return out_links_[static_cast<std::size_t>(n)];
  }

  // First link src→dst if one exists.
  std::optional<LinkId> find_link(NodeId src, NodeId dst) const;

  int out_degree(NodeId n) const {
    return static_cast<int>(out_links(n).size());
  }

  // True when every node can reach every other node over directed links.
  bool is_strongly_connected() const;

  // Hop distances from src over directed links; -1 for unreachable.
  std::vector<int> bfs_hops(NodeId src) const;

  // Number of ordered (src, dst) pairs with src != dst.
  int num_pairs() const { return num_nodes_ * (num_nodes_ - 1); }

  double min_capacity_bps() const;
  double max_capacity_bps() const;

 private:
  std::string name_;
  int num_nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_links_;
};

// Dense index for ordered node pairs: all (s, d), s != d, in row-major
// order with the diagonal removed. Used to index traffic matrices, routing
// schemes, and per-path predictions consistently across the library.
int pair_index(NodeId s, NodeId d, int num_nodes);

// Inverse of pair_index.
std::pair<NodeId, NodeId> pair_from_index(int index, int num_nodes);

}  // namespace rn::topo
