#include "topology/generators.h"

#include <algorithm>
#include <set>
#include <utility>

namespace rn::topo {

namespace {

// Adds duplex edges with capacities cycled from opts by edge order.
void add_duplex_edges(Topology& topo,
                      const std::vector<std::pair<int, int>>& edges,
                      const GeneratorOptions& opts) {
  RN_CHECK(!opts.capacity_options_bps.empty(), "no capacity options");
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const double cap =
        opts.capacity_options_bps[i % opts.capacity_options_bps.size()];
    topo.add_duplex_link(edges[i].first, edges[i].second, cap,
                         opts.prop_delay_s);
  }
}

}  // namespace

Topology nsfnet(const GeneratorOptions& opts) {
  // The 14-node NSFNET T1 backbone, as used by the RouteNet datasets.
  static const std::vector<std::pair<int, int>> kEdges = {
      {0, 1}, {0, 2},  {0, 3},  {1, 2},  {1, 7},  {2, 5},   {3, 4},
      {3, 10}, {4, 5},  {4, 6},  {5, 9},  {5, 13}, {6, 7},   {7, 8},
      {8, 9}, {8, 11}, {9, 10}, {9, 12}, {10, 11}, {10, 13}, {11, 12},
  };
  Topology topo("nsfnet", 14);
  add_duplex_edges(topo, kEdges, opts);
  RN_CHECK(topo.num_links() == 42, "NSFNET must have 42 directed links");
  return topo;
}

Topology geant2(const GeneratorOptions& opts) {
  // 24 nodes / 37 duplex edges, hub-heavy like the real GEANT2 backbone.
  static const std::vector<std::pair<int, int>> kEdges = {
      {0, 1},   {0, 2},   {1, 3},   {1, 6},   {1, 9},   {2, 3},  {2, 4},
      {3, 5},   {3, 6},   {4, 7},   {5, 8},   {5, 19},  {6, 8},  {6, 9},
      {6, 14},  {7, 8},   {7, 11},  {8, 11},  {8, 12},  {8, 17}, {8, 20},
      {9, 10},  {9, 12},  {9, 13},  {11, 14}, {11, 20}, {12, 13},
      {12, 19}, {12, 21}, {14, 15}, {15, 16}, {16, 17}, {17, 18},
      {18, 21}, {19, 23}, {21, 22}, {22, 23},
  };
  Topology topo("geant2", 24);
  add_duplex_edges(topo, kEdges, opts);
  RN_CHECK(topo.num_links() == 74, "Geant2 must have 74 directed links");
  return topo;
}

Topology gbn(const GeneratorOptions& opts) {
  // 17 nodes / 26 duplex edges, ring-of-regions structure like the German
  // research backbone.
  static const std::vector<std::pair<int, int>> kEdges = {
      {0, 1},   {0, 2},   {1, 3},   {2, 3},   {2, 4},   {3, 5},  {4, 6},
      {5, 7},   {5, 8},   {6, 7},   {6, 9},   {7, 10},  {8, 11}, {9, 12},
      {10, 11}, {10, 13}, {11, 14}, {12, 13}, {12, 15}, {13, 16},
      {14, 16}, {15, 16}, {1, 5},   {4, 9},   {8, 10},  {3, 6},
  };
  Topology topo("gbn", 17);
  add_duplex_edges(topo, kEdges, opts);
  RN_CHECK(topo.num_links() == 52, "GBN must have 52 directed links");
  return topo;
}

Topology synthetic_ba(int n, int m, Rng& rng, const GeneratorOptions& opts) {
  RN_CHECK(n >= 3, "BA graph needs at least 3 nodes");
  RN_CHECK(m >= 1 && m < n, "BA attachment count out of range");
  std::vector<std::pair<int, int>> edges;
  std::vector<double> degree(static_cast<std::size_t>(n), 0.0);
  // Seed: a (m+1)-clique so early preferential picks are well defined.
  const int seed_nodes = std::min(m + 1, n);
  for (int i = 0; i < seed_nodes; ++i) {
    for (int j = i + 1; j < seed_nodes; ++j) {
      edges.emplace_back(i, j);
      degree[static_cast<std::size_t>(i)] += 1.0;
      degree[static_cast<std::size_t>(j)] += 1.0;
    }
  }
  for (int v = seed_nodes; v < n; ++v) {
    std::set<int> targets;
    while (static_cast<int>(targets.size()) < m) {
      std::vector<double> weights(static_cast<std::size_t>(v));
      for (int u = 0; u < v; ++u) {
        weights[static_cast<std::size_t>(u)] =
            targets.count(u) ? 0.0 : degree[static_cast<std::size_t>(u)] + 1.0;
      }
      targets.insert(static_cast<int>(rng.weighted_pick(weights)));
    }
    for (int u : targets) {
      edges.emplace_back(u, v);
      degree[static_cast<std::size_t>(u)] += 1.0;
      degree[static_cast<std::size_t>(v)] += 1.0;
    }
  }
  Topology topo("ba" + std::to_string(n), n);
  add_duplex_edges(topo, edges, opts);
  return topo;
}

Topology synthetic_er(int n, double p, Rng& rng,
                      const GeneratorOptions& opts) {
  RN_CHECK(n >= 2, "ER graph needs at least 2 nodes");
  RN_CHECK(p > 0.0 && p <= 1.0, "ER probability out of (0,1]");
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.bernoulli(p)) edges.emplace_back(i, j);
    }
  }
  // Repair connectivity with a union-find over sampled edges, stitching
  // distinct components with random cross edges.
  std::vector<int> parent(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) parent[static_cast<std::size_t>(i)] = i;
  auto find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  auto unite = [&](int a, int b) {
    parent[static_cast<std::size_t>(find(a))] = find(b);
  };
  for (const auto& [a, b] : edges) unite(a, b);
  for (int v = 1; v < n; ++v) {
    if (find(v) != find(0)) {
      const int u = rng.uniform_int(0, v - 1);
      edges.emplace_back(u, v);
      unite(u, v);
    }
  }
  Topology topo("er" + std::to_string(n), n);
  add_duplex_edges(topo, edges, opts);
  return topo;
}

Topology grid(int w, int h, double capacity_bps) {
  RN_CHECK(w >= 2 && h >= 2, "grid needs at least 2x2");
  Topology topo("grid" + std::to_string(w) + "x" + std::to_string(h), w * h);
  const auto at = [w](int x, int y) { return y * w + x; };
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (x + 1 < w) topo.add_duplex_link(at(x, y), at(x + 1, y), capacity_bps);
      if (y + 1 < h) topo.add_duplex_link(at(x, y), at(x, y + 1), capacity_bps);
    }
  }
  return topo;
}

Topology torus(int w, int h, double capacity_bps) {
  RN_CHECK(w >= 3 && h >= 3, "torus needs at least 3x3");
  Topology topo("torus" + std::to_string(w) + "x" + std::to_string(h), w * h);
  const auto at = [w](int x, int y) { return y * w + x; };
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      topo.add_duplex_link(at(x, y), at((x + 1) % w, y), capacity_bps);
      topo.add_duplex_link(at(x, y), at(x, (y + 1) % h), capacity_bps);
    }
  }
  return topo;
}

Topology fat_tree(int k, double capacity_bps, double core_capacity_bps) {
  RN_CHECK(k >= 2 && k % 2 == 0, "fat-tree arity must be even and >= 2");
  const int half = k / 2;
  const int num_core = half * half;
  const int num_nodes = num_core + k * k;  // k pods × (k/2 agg + k/2 edge)
  Topology topo("fattree" + std::to_string(k), num_nodes);
  const auto agg_of = [&](int pod, int i) { return num_core + pod * k + i; };
  const auto edge_of = [&](int pod, int i) {
    return num_core + pod * k + half + i;
  };
  for (int pod = 0; pod < k; ++pod) {
    for (int a = 0; a < half; ++a) {
      // Aggregation switch a of this pod uplinks to core group a.
      for (int c = 0; c < half; ++c) {
        topo.add_duplex_link(agg_of(pod, a), a * half + c,
                             core_capacity_bps);
      }
      // Full bipartite agg ↔ edge inside the pod.
      for (int e = 0; e < half; ++e) {
        topo.add_duplex_link(agg_of(pod, a), edge_of(pod, e), capacity_bps);
      }
    }
  }
  return topo;
}

Topology line(int n, double capacity_bps) {
  RN_CHECK(n >= 2, "line needs at least 2 nodes");
  Topology topo("line" + std::to_string(n), n);
  for (int i = 0; i + 1 < n; ++i) {
    topo.add_duplex_link(i, i + 1, capacity_bps);
  }
  return topo;
}

Topology ring(int n, double capacity_bps) {
  RN_CHECK(n >= 3, "ring needs at least 3 nodes");
  Topology topo("ring" + std::to_string(n), n);
  for (int i = 0; i < n; ++i) {
    topo.add_duplex_link(i, (i + 1) % n, capacity_bps);
  }
  return topo;
}

Topology star(int leaves, double capacity_bps) {
  RN_CHECK(leaves >= 1, "star needs at least one leaf");
  Topology topo("star" + std::to_string(leaves), leaves + 1);
  for (int i = 1; i <= leaves; ++i) {
    topo.add_duplex_link(0, i, capacity_bps);
  }
  return topo;
}

Topology dumbbell(int hosts, double edge_capacity_bps,
                  double bottleneck_capacity_bps) {
  RN_CHECK(hosts >= 1, "dumbbell needs at least one host per side");
  // Layout: [0..hosts-1] left hosts, hosts = left router,
  // hosts+1 = right router, [hosts+2 .. 2*hosts+1] right hosts.
  Topology topo("dumbbell" + std::to_string(hosts), 2 * hosts + 2);
  const int left_router = hosts;
  const int right_router = hosts + 1;
  for (int i = 0; i < hosts; ++i) {
    topo.add_duplex_link(i, left_router, edge_capacity_bps);
    topo.add_duplex_link(right_router, hosts + 2 + i, edge_capacity_bps);
  }
  topo.add_duplex_link(left_router, right_router, bottleneck_capacity_bps);
  return topo;
}

}  // namespace rn::topo
