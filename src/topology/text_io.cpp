#include "topology/text_io.h"

#include <fstream>
#include <optional>
#include <sstream>

namespace rn::topo {

namespace {

// Strips comments and returns the next non-empty line.
std::optional<std::string> next_line(std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream probe(line);
    std::string word;
    if (probe >> word) return line;
  }
  return std::nullopt;
}

}  // namespace

Topology load_topology(std::istream& in) {
  std::optional<std::string> header = next_line(in);
  RN_CHECK(header.has_value(), "topology file is empty");
  std::istringstream hs(*header);
  std::string keyword, name;
  int num_nodes = 0;
  hs >> keyword >> name >> num_nodes;
  RN_CHECK(keyword == "topology" && !name.empty() && num_nodes >= 1,
           "topology file must start with: topology <name> <num_nodes>");
  Topology topo(name, num_nodes);
  while (std::optional<std::string> line = next_line(in)) {
    std::istringstream ls(*line);
    std::string kind;
    int a = -1, b = -1;
    double cap = 0.0, prop = 0.0;
    ls >> kind >> a >> b >> cap;
    RN_CHECK(!ls.fail(), "malformed link line: " + *line);
    if (!(ls >> prop)) prop = 0.0;
    if (kind == "link") {
      topo.add_link(a, b, cap, prop);
    } else if (kind == "duplex") {
      topo.add_duplex_link(a, b, cap, prop);
    } else {
      RN_CHECK(false, "unknown directive '" + kind + "' in topology file");
    }
  }
  return topo;
}

Topology load_topology_file(const std::string& path) {
  std::ifstream in(path);
  RN_CHECK(in.good(), "cannot open topology file: " + path);
  return load_topology(in);
}

void save_topology(std::ostream& out, const Topology& topo) {
  out << "topology " << topo.name() << ' ' << topo.num_nodes() << '\n';
  out.precision(17);  // max_digits10: doubles round-trip exactly
  for (const Link& l : topo.links()) {
    out << "link " << l.src << ' ' << l.dst << ' ' << l.capacity_bps;
    if (l.prop_delay_s != 0.0) out << ' ' << l.prop_delay_s;
    out << '\n';
  }
}

void save_topology_file(const std::string& path, const Topology& topo) {
  std::ofstream out(path);
  RN_CHECK(out.good(), "cannot open topology file for writing: " + path);
  save_topology(out, topo);
  RN_CHECK(out.good(), "write failure on topology file: " + path);
}

}  // namespace rn::topo
