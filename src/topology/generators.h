// Built-in and synthetic topologies.
//
// The paper trains RouteNet on the 14-node NSFNET and a 50-node synthetic
// topology, and evaluates generalization on the 24-node Geant2. Capacities
// follow the public RouteNet datasets' convention of a small set of discrete
// rates; traffic units are chosen relative to them (see rn::traffic).
#pragma once

#include <vector>

#include "topology/topology.h"
#include "util/rng.h"

namespace rn::topo {

struct GeneratorOptions {
  // Capacities assigned to duplex links, cycled deterministically by link
  // index (so a named topology is identical run to run).
  std::vector<double> capacity_options_bps = {10'000.0, 25'000.0, 40'000.0};
  double prop_delay_s = 0.0;
};

// 14-node / 21-duplex-link NSFNET T1 backbone (42 directed links).
Topology nsfnet(const GeneratorOptions& opts = {});

// 24-node / 37-duplex-link Geant2 pan-European backbone. The public dataset
// ships the graph as GML; this is a structurally equivalent hard-coded edge
// list (same node/edge counts, hub-heavy degree profile).
Topology geant2(const GeneratorOptions& opts = {});

// 17-node / 26-duplex-link GBN (German backbone) — the third topology of the
// original RouteNet evaluation (Rusek et al., SOSR 2019); useful as an extra
// unseen-size evaluation target.
Topology gbn(const GeneratorOptions& opts = {});

// Barabási–Albert preferential-attachment graph: n nodes, each newcomer
// attaches with m edges. This stands in for the paper's "50-node
// synthetically-generated topology"; seeded for reproducibility.
Topology synthetic_ba(int n, int m, Rng& rng,
                      const GeneratorOptions& opts = {});

// Erdős–Rényi G(n, p) with connectivity repair: after sampling, components
// are stitched together with extra random edges so routing always exists.
Topology synthetic_er(int n, double p, Rng& rng,
                      const GeneratorOptions& opts = {});

// w×h mesh; node (x, y) is index y*w + x.
Topology grid(int w, int h, double capacity_bps = 10'000.0);

// w×h mesh with wraparound links in both dimensions (requires w, h >= 3 so
// wrap links are not parallel duplicates of mesh links).
Topology torus(int w, int h, double capacity_bps = 10'000.0);

// k-ary fat-tree switch fabric (k even, >= 2): (k/2)² core switches, k pods
// of k/2 aggregation + k/2 edge switches. Edge switches are the traffic
// endpoints. Core links get core_capacity_bps, pod links capacity_bps.
// Node order: cores, then per pod aggregation then edge.
Topology fat_tree(int k, double capacity_bps = 10'000.0,
                  double core_capacity_bps = 40'000.0);

// Small deterministic shapes used heavily by tests and examples.
Topology line(int n, double capacity_bps = 10'000.0);
Topology ring(int n, double capacity_bps = 10'000.0);
Topology star(int leaves, double capacity_bps = 10'000.0);
// Classic two-router bottleneck: `hosts` sources on the left, `hosts` sinks
// on the right, one shared middle link.
Topology dumbbell(int hosts, double edge_capacity_bps,
                  double bottleneck_capacity_bps);

}  // namespace rn::topo
