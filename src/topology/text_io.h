// Plain-text topology interchange, so users can bring their own networks
// without writing C++.
//
// Format (whitespace-separated, '#' comments):
//   topology <name> <num_nodes>
//   link <src> <dst> <capacity_bps> [prop_delay_s]      # one direction
//   duplex <a> <b> <capacity_bps> [prop_delay_s]        # both directions
#pragma once

#include <iosfwd>
#include <string>

#include "topology/topology.h"

namespace rn::topo {

Topology load_topology(std::istream& in);
Topology load_topology_file(const std::string& path);

void save_topology(std::ostream& out, const Topology& topo);
void save_topology_file(const std::string& path, const Topology& topo);

}  // namespace rn::topo
