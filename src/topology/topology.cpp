#include "topology/topology.h"

#include <algorithm>
#include <queue>

namespace rn::topo {

Topology::Topology(std::string name, int num_nodes)
    : name_(std::move(name)),
      num_nodes_(num_nodes),
      out_links_(static_cast<std::size_t>(num_nodes)) {
  RN_CHECK(num_nodes >= 1, "topology needs at least one node");
}

LinkId Topology::add_link(NodeId src, NodeId dst, double capacity_bps,
                          double prop_delay_s) {
  RN_CHECK(src >= 0 && src < num_nodes_, "link src out of range");
  RN_CHECK(dst >= 0 && dst < num_nodes_, "link dst out of range");
  RN_CHECK(src != dst, "self-loop links are not allowed");
  RN_CHECK(capacity_bps > 0.0, "link capacity must be positive");
  RN_CHECK(prop_delay_s >= 0.0, "propagation delay must be non-negative");
  const LinkId id = num_links();
  links_.push_back(Link{src, dst, capacity_bps, prop_delay_s});
  out_links_[static_cast<std::size_t>(src)].push_back(id);
  return id;
}

LinkId Topology::add_duplex_link(NodeId a, NodeId b, double capacity_bps,
                                 double prop_delay_s) {
  const LinkId forward = add_link(a, b, capacity_bps, prop_delay_s);
  add_link(b, a, capacity_bps, prop_delay_s);
  return forward;
}

std::optional<LinkId> Topology::find_link(NodeId src, NodeId dst) const {
  for (LinkId id : out_links(src)) {
    if (link(id).dst == dst) return id;
  }
  return std::nullopt;
}

std::vector<int> Topology::bfs_hops(NodeId src) const {
  RN_CHECK(src >= 0 && src < num_nodes_, "bfs source out of range");
  std::vector<int> dist(static_cast<std::size_t>(num_nodes_), -1);
  std::queue<NodeId> q;
  dist[static_cast<std::size_t>(src)] = 0;
  q.push(src);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (LinkId id : out_links(u)) {
      const NodeId v = link(id).dst;
      if (dist[static_cast<std::size_t>(v)] == -1) {
        dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
        q.push(v);
      }
    }
  }
  return dist;
}

bool Topology::is_strongly_connected() const {
  if (num_nodes_ == 1) return true;
  // BFS out from node 0, then BFS on the reversed graph (simulated by
  // scanning all links) — sufficient for the small graphs we model.
  const std::vector<int> fwd = bfs_hops(0);
  if (std::any_of(fwd.begin(), fwd.end(), [](int d) { return d < 0; })) {
    return false;
  }
  std::vector<std::vector<NodeId>> rev(static_cast<std::size_t>(num_nodes_));
  for (const Link& l : links_) {
    rev[static_cast<std::size_t>(l.dst)].push_back(l.src);
  }
  std::vector<char> seen(static_cast<std::size_t>(num_nodes_), 0);
  std::queue<NodeId> q;
  seen[0] = 1;
  q.push(0);
  int count = 1;
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (NodeId v : rev[static_cast<std::size_t>(u)]) {
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        ++count;
        q.push(v);
      }
    }
  }
  return count == num_nodes_;
}

double Topology::min_capacity_bps() const {
  RN_CHECK(!links_.empty(), "topology has no links");
  double m = links_.front().capacity_bps;
  for (const Link& l : links_) m = std::min(m, l.capacity_bps);
  return m;
}

double Topology::max_capacity_bps() const {
  RN_CHECK(!links_.empty(), "topology has no links");
  double m = links_.front().capacity_bps;
  for (const Link& l : links_) m = std::max(m, l.capacity_bps);
  return m;
}

int pair_index(NodeId s, NodeId d, int num_nodes) {
  RN_CHECK(s >= 0 && s < num_nodes && d >= 0 && d < num_nodes && s != d,
           "invalid (src, dst) pair");
  return s * (num_nodes - 1) + (d < s ? d : d - 1);
}

std::pair<NodeId, NodeId> pair_from_index(int index, int num_nodes) {
  RN_CHECK(index >= 0 && index < num_nodes * (num_nodes - 1),
           "pair index out of range");
  const int s = index / (num_nodes - 1);
  int d = index % (num_nodes - 1);
  if (d >= s) ++d;
  return {s, d};
}

}  // namespace rn::topo
