#include "traffic/traffic.h"

#include <cmath>

#include <gtest/gtest.h>

#include "topology/generators.h"

namespace rn::traffic {
namespace {

TEST(TrafficMatrix, SetGetByPairAndIndex) {
  TrafficMatrix tm(4);
  tm.set_rate_bps(0, 3, 123.0);
  EXPECT_DOUBLE_EQ(tm.rate_bps(0, 3), 123.0);
  EXPECT_DOUBLE_EQ(tm.rate_by_index(topo::pair_index(0, 3, 4)), 123.0);
  EXPECT_DOUBLE_EQ(tm.rate_bps(3, 0), 0.0);
}

TEST(TrafficMatrix, RejectsNegativeRate) {
  TrafficMatrix tm(3);
  EXPECT_THROW(tm.set_rate_bps(0, 1, -5.0), std::runtime_error);
}

TEST(TrafficMatrix, TotalAndScale) {
  TrafficMatrix tm(3);
  tm.set_rate_bps(0, 1, 10.0);
  tm.set_rate_bps(2, 1, 30.0);
  EXPECT_DOUBLE_EQ(tm.total_rate_bps(), 40.0);
  tm.scale(0.5);
  EXPECT_DOUBLE_EQ(tm.total_rate_bps(), 20.0);
}

TEST(UniformTraffic, RatesWithinRange) {
  Rng rng(1);
  const TrafficMatrix tm = uniform_traffic(6, 10.0, 20.0, rng);
  for (int idx = 0; idx < tm.num_pairs(); ++idx) {
    EXPECT_GE(tm.rate_by_index(idx), 10.0);
    EXPECT_LT(tm.rate_by_index(idx), 20.0);
  }
}

TEST(GravityTraffic, SumsToTotal) {
  Rng rng(2);
  const TrafficMatrix tm = gravity_traffic(8, 5000.0, rng);
  EXPECT_NEAR(tm.total_rate_bps(), 5000.0, 1e-6);
  for (int idx = 0; idx < tm.num_pairs(); ++idx) {
    EXPECT_GT(tm.rate_by_index(idx), 0.0);
  }
}

TEST(HotspotTraffic, HotRowsCarryMoreTraffic) {
  Rng rng(3);
  const int n = 10;
  const TrafficMatrix tm = hotspot_traffic(n, 2, 100.0, 5.0, rng);
  // Mean per-source row rate: the two hottest rows should clearly exceed
  // the coldest rows.
  std::vector<double> row(n, 0.0);
  for (topo::NodeId s = 0; s < n; ++s) {
    for (topo::NodeId d = 0; d < n; ++d) {
      if (s != d) row[static_cast<std::size_t>(s)] += tm.rate_bps(s, d);
    }
  }
  std::sort(row.begin(), row.end());
  EXPECT_GT(row[static_cast<std::size_t>(n - 1)],
            2.0 * row[0]);
}

TEST(LinkLoads, SingleFlowLoadsItsPathOnly) {
  const topo::Topology t = topo::line(4);
  const routing::RoutingScheme scheme = routing::shortest_path_routing(t);
  TrafficMatrix tm(4);
  tm.set_rate_bps(0, 3, 7.0);
  const std::vector<double> loads = link_loads_bps(t, scheme, tm);
  double total = 0.0;
  for (double l : loads) total += l;
  EXPECT_DOUBLE_EQ(total, 21.0);  // 3 hops × 7
  for (topo::LinkId id : scheme.path(0, 3)) {
    EXPECT_DOUBLE_EQ(loads[static_cast<std::size_t>(id)], 7.0);
  }
}

TEST(ScaleToMaxUtilization, HitsTarget) {
  const topo::Topology t = topo::nsfnet();
  const routing::RoutingScheme scheme = routing::shortest_path_routing(t);
  Rng rng(4);
  TrafficMatrix tm = uniform_traffic(t.num_nodes(), 10.0, 100.0, rng);
  scale_to_max_utilization(tm, t, scheme, 0.7);
  const std::vector<double> loads = link_loads_bps(t, scheme, tm);
  double max_util = 0.0;
  for (topo::LinkId id = 0; id < t.num_links(); ++id) {
    max_util = std::max(max_util, loads[static_cast<std::size_t>(id)] /
                                      t.link(id).capacity_bps);
  }
  EXPECT_NEAR(max_util, 0.7, 1e-9);
}

TEST(ScaleToMaxUtilization, RejectsUnstableTargets) {
  const topo::Topology t = topo::line(3);
  const routing::RoutingScheme scheme = routing::shortest_path_routing(t);
  TrafficMatrix tm(3);
  tm.set_rate_bps(0, 2, 1.0);
  EXPECT_THROW(scale_to_max_utilization(tm, t, scheme, 1.2),
               std::runtime_error);
  EXPECT_THROW(scale_to_max_utilization(tm, t, scheme, 0.0),
               std::runtime_error);
}

TEST(ScaleToMaxUtilization, RejectsAllZeroMatrix) {
  const topo::Topology t = topo::line(3);
  const routing::RoutingScheme scheme = routing::shortest_path_routing(t);
  TrafficMatrix tm(3);
  EXPECT_THROW(scale_to_max_utilization(tm, t, scheme, 0.5),
               std::runtime_error);
}

TEST(TrafficModel, BimodalLargeSizePreservesMean) {
  TrafficModel m;
  m.sizes = PacketSizeModel::kBimodal;
  m.mean_pkt_size_bits = 1000.0;
  m.small_pkt_prob = 0.6;
  m.small_pkt_bits = 300.0;
  const double large = m.large_pkt_bits();
  EXPECT_NEAR(0.6 * 300.0 + 0.4 * large, 1000.0, 1e-9);
}

TEST(TrafficModel, TruncatedParetoMeanMatchesConfig) {
  TrafficModel m;
  m.sizes = PacketSizeModel::kTruncatedPareto;
  m.mean_pkt_size_bits = 1000.0;
  EXPECT_NEAR(m.pareto_moment(1), 1000.0, 1e-9);
  EXPECT_GT(m.pareto_xm_bits(), 0.0);
  EXPECT_LT(m.pareto_xm_bits(), 1000.0);  // xm below the mean for alpha>1
}

TEST(TrafficModel, TruncatedParetoHeavierThanExponential) {
  TrafficModel m;
  m.sizes = PacketSizeModel::kTruncatedPareto;
  m.mean_pkt_size_bits = 1000.0;
  m.pareto_alpha = 1.2;
  m.pareto_max_factor = 200.0;
  // Second moment far above the exponential's 2·mean² — the property that
  // makes Poisson-assumption analytics underestimate queueing delay.
  EXPECT_GT(m.pareto_moment(2), 4.0 * 1000.0 * 1000.0);
  EXPECT_GT(m.pareto_moment(3), m.pareto_moment(2) * m.pareto_moment(1));
}

TEST(TrafficModel, TruncatedParetoRejectsBadShape) {
  TrafficModel m;
  m.sizes = PacketSizeModel::kTruncatedPareto;
  m.pareto_alpha = 0.9;  // infinite mean
  EXPECT_THROW(m.pareto_moment(1), std::runtime_error);
  m.pareto_alpha = 2.0;  // collides with the k=2 moment formula
  EXPECT_THROW(m.pareto_moment(2), std::runtime_error);
  m.pareto_alpha = 1.5;
  m.pareto_max_factor = 0.5;  // truncation below the scale
  EXPECT_THROW(m.pareto_moment(1), std::runtime_error);
}

TEST(TrafficModel, BimodalRejectsImpossibleMean) {
  TrafficModel m;
  m.sizes = PacketSizeModel::kBimodal;
  m.mean_pkt_size_bits = 100.0;  // below the small packet size share
  m.small_pkt_prob = 0.9;
  m.small_pkt_bits = 300.0;
  EXPECT_THROW(m.large_pkt_bits(), std::runtime_error);
}

}  // namespace
}  // namespace rn::traffic
