# Sharded-corpus end-to-end test (ctest -R dataset_shard_smoke): drives the
# real routenet CLI through the paper-scale generation workflow — four
# independent `dataset gen --shard i/4` runs, `dataset verify`, `dataset
# merge` — and proves the merged file is byte-for-byte identical to one
# unsharded run. Then trains once from the streamed RNDS1 corpus and once
# from the equivalent legacy RNDATA1 blob and byte-compares the models,
# checking the dataset.stream.* telemetry along the way. Finally corrupts a
# shard and demands `dataset verify` fail. Invoked with -DRN_CLI=<binary>
# -DWORK_DIR=<dir>.

if(NOT DEFINED RN_CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DRN_CLI=... -DWORK_DIR=... -P dataset_shard_smoke.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_step)
  execute_process(COMMAND ${ARGN}
                  WORKING_DIRECTORY "${WORK_DIR}"
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "step failed (${rc}): ${ARGN}\n${out}\n${err}")
  endif()
endfunction()

function(expect_fail)
  execute_process(COMMAND ${ARGN}
                  WORKING_DIRECTORY "${WORK_DIR}"
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR "step succeeded but must fail: ${ARGN}\n${out}")
  endif()
endfunction()

function(expect_identical a b what)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                          "${WORK_DIR}/${a}" "${WORK_DIR}/${b}"
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${what}: ${a} and ${b} differ")
  endif()
endfunction()

run_step("${RN_CLI}" make-topology --kind ring --nodes 6 --out net.topo)

# One unsharded RNDS1 run vs four independent shard processes.
run_step("${RN_CLI}" dataset gen --topology net.topo --count 8 --seed 5
         --pkts-per-flow 30 --out single.rnds)
foreach(i 0 1 2 3)
  run_step("${RN_CLI}" dataset gen --topology net.topo --count 8 --seed 5
           --pkts-per-flow 30 --shard ${i}/4 --out shard_${i}.rnds)
endforeach()
run_step("${RN_CLI}" dataset verify
         --inputs shard_0.rnds,shard_1.rnds,shard_2.rnds,shard_3.rnds)
run_step("${RN_CLI}" dataset merge
         --inputs shard_0.rnds,shard_1.rnds,shard_2.rnds,shard_3.rnds
         --out merged.rnds)
expect_identical(single.rnds merged.rnds "4-shard merge vs unsharded run")

# The legacy generator with the same seed/config produces the same samples
# in the RNDATA1 container; streamed training over the shard must land on
# the same model bytes as in-RAM training over the blob.
run_step("${RN_CLI}" gen-dataset --topology net.topo --count 8 --seed 5
         --pkts-per-flow 30 --out legacy.ds)
run_step("${RN_CLI}" train --dataset legacy.ds --epochs 1 --batch 4 --dim 8
         --iterations 2 --threads 1 --out inram.model)
run_step("${RN_CLI}" train --dataset merged.rnds --epochs 1 --batch 4 --dim 8
         --iterations 2 --threads 1 --out streamed.model
         --metrics-out streamed.jsonl)
expect_identical(inram.model streamed.model "streamed vs in-RAM training")

# The streamed run must report its residency telemetry.
file(READ "${WORK_DIR}/streamed.jsonl" stream_log)
foreach(needle "dataset.stream.records_read_total"
               "dataset.stream.resident_peak_bytes")
  string(FIND "${stream_log}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "streamed.jsonl is missing ${needle}")
  endif()
endforeach()
run_step("${RN_CLI}" obs summarize streamed.jsonl)

# info understands the shard container.
execute_process(COMMAND "${RN_CLI}" info --dataset merged.rnds
                WORKING_DIRECTORY "${WORK_DIR}"
                RESULT_VARIABLE rc OUTPUT_VARIABLE info_out
                ERROR_VARIABLE info_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "info --dataset merged.rnds failed: ${info_err}")
endif()
string(FIND "${info_out}" "RNDS1" found)
if(found EQUAL -1)
  message(FATAL_ERROR "info did not identify the RNDS1 container:\n${info_out}")
endif()

# A torn/corrupted shard must fail verification, merge, and training.
file(APPEND "${WORK_DIR}/shard_2.rnds" "torn-write garbage")
expect_fail("${RN_CLI}" dataset verify
            --inputs shard_0.rnds,shard_1.rnds,shard_2.rnds,shard_3.rnds)
expect_fail("${RN_CLI}" dataset merge
            --inputs shard_0.rnds,shard_1.rnds,shard_2.rnds,shard_3.rnds
            --out merged2.rnds)
# An incomplete shard set must also be rejected.
expect_fail("${RN_CLI}" dataset verify --inputs shard_0.rnds,shard_1.rnds)

message(STATUS "dataset shard smoke OK")
