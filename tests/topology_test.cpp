#include "topology/topology.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "topology/generators.h"

namespace rn::topo {
namespace {

TEST(Topology, AddLinkBookkeeping) {
  Topology t("t", 3);
  const LinkId a = t.add_link(0, 1, 100.0, 0.001);
  const LinkId b = t.add_link(1, 2, 200.0);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(t.num_links(), 2);
  EXPECT_EQ(t.link(a).dst, 1);
  EXPECT_DOUBLE_EQ(t.link(a).prop_delay_s, 0.001);
  EXPECT_EQ(t.out_degree(0), 1);
  EXPECT_EQ(t.out_degree(2), 0);
}

TEST(Topology, DuplexAddsBothDirections) {
  Topology t("t", 2);
  t.add_duplex_link(0, 1, 100.0);
  EXPECT_EQ(t.num_links(), 2);
  EXPECT_TRUE(t.find_link(0, 1).has_value());
  EXPECT_TRUE(t.find_link(1, 0).has_value());
}

TEST(Topology, RejectsInvalidLinks) {
  Topology t("t", 2);
  EXPECT_THROW(t.add_link(0, 0, 100.0), std::runtime_error);   // self loop
  EXPECT_THROW(t.add_link(0, 5, 100.0), std::runtime_error);   // bad node
  EXPECT_THROW(t.add_link(0, 1, 0.0), std::runtime_error);     // zero cap
  EXPECT_THROW(t.add_link(0, 1, 10.0, -1.0), std::runtime_error);
}

TEST(Topology, FindLinkMissing) {
  Topology t("t", 3);
  t.add_link(0, 1, 10.0);
  EXPECT_FALSE(t.find_link(1, 2).has_value());
}

TEST(Topology, BfsHops) {
  const Topology t = line(4);
  const std::vector<int> d = t.bfs_hops(0);
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[3], 3);
}

TEST(Topology, StronglyConnectedDetection) {
  Topology t("t", 3);
  t.add_link(0, 1, 10.0);
  t.add_link(1, 2, 10.0);
  EXPECT_FALSE(t.is_strongly_connected());
  t.add_link(2, 0, 10.0);
  EXPECT_TRUE(t.is_strongly_connected());
}

TEST(PairIndex, RoundTripsAllPairs) {
  const int n = 7;
  std::set<int> seen;
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s == d) continue;
      const int idx = pair_index(s, d, n);
      EXPECT_GE(idx, 0);
      EXPECT_LT(idx, n * (n - 1));
      EXPECT_TRUE(seen.insert(idx).second) << "duplicate index";
      const auto [s2, d2] = pair_from_index(idx, n);
      EXPECT_EQ(s2, s);
      EXPECT_EQ(d2, d);
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), n * (n - 1));
}

TEST(PairIndex, RejectsDiagonalAndOutOfRange) {
  EXPECT_THROW(pair_index(1, 1, 4), std::runtime_error);
  EXPECT_THROW(pair_index(4, 0, 4), std::runtime_error);
  EXPECT_THROW(pair_from_index(12, 4), std::runtime_error);
}

TEST(Generators, NsfnetShape) {
  const Topology t = nsfnet();
  EXPECT_EQ(t.num_nodes(), 14);
  EXPECT_EQ(t.num_links(), 42);  // 21 duplex
  EXPECT_TRUE(t.is_strongly_connected());
}

TEST(Generators, Geant2Shape) {
  const Topology t = geant2();
  EXPECT_EQ(t.num_nodes(), 24);
  EXPECT_EQ(t.num_links(), 74);  // 37 duplex
  EXPECT_TRUE(t.is_strongly_connected());
}

TEST(Generators, GbnShape) {
  const Topology t = gbn();
  EXPECT_EQ(t.num_nodes(), 17);
  EXPECT_EQ(t.num_links(), 52);  // 26 duplex
  EXPECT_TRUE(t.is_strongly_connected());
}

TEST(Generators, Geant2MinimumDegree) {
  const Topology t = geant2();
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    EXPECT_GE(t.out_degree(n), 1) << "isolated node " << n;
  }
}

TEST(Generators, NamedTopologiesAreDeterministic) {
  const Topology a = nsfnet();
  const Topology b = nsfnet();
  ASSERT_EQ(a.num_links(), b.num_links());
  for (LinkId i = 0; i < a.num_links(); ++i) {
    EXPECT_EQ(a.link(i).src, b.link(i).src);
    EXPECT_EQ(a.link(i).dst, b.link(i).dst);
    EXPECT_DOUBLE_EQ(a.link(i).capacity_bps, b.link(i).capacity_bps);
  }
}

TEST(Generators, CapacityOptionsRespected) {
  GeneratorOptions opts;
  opts.capacity_options_bps = {123.0};
  const Topology t = nsfnet(opts);
  for (const Link& l : t.links()) {
    EXPECT_DOUBLE_EQ(l.capacity_bps, 123.0);
  }
}

TEST(Generators, SyntheticBaShape) {
  Rng rng(1);
  const Topology t = synthetic_ba(50, 2, rng);
  EXPECT_EQ(t.num_nodes(), 50);
  EXPECT_TRUE(t.is_strongly_connected());
  // m=2 attachment on a 3-clique: 3 + 2*(50-3) = 97 duplex edges.
  EXPECT_EQ(t.num_links(), 2 * 97);
}

TEST(Generators, SyntheticBaSeedReproducible) {
  Rng r1(9), r2(9);
  const Topology a = synthetic_ba(20, 2, r1);
  const Topology b = synthetic_ba(20, 2, r2);
  ASSERT_EQ(a.num_links(), b.num_links());
  for (LinkId i = 0; i < a.num_links(); ++i) {
    EXPECT_EQ(a.link(i).src, b.link(i).src);
    EXPECT_EQ(a.link(i).dst, b.link(i).dst);
  }
}

TEST(Generators, SyntheticErAlwaysConnected) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    const Topology t = synthetic_er(16, 0.05, rng);  // sparse → needs repair
    EXPECT_TRUE(t.is_strongly_connected()) << "seed " << seed;
  }
}

TEST(Generators, SmallShapes) {
  EXPECT_EQ(ring(5).num_links(), 10);
  EXPECT_EQ(line(5).num_links(), 8);
  EXPECT_EQ(star(4).num_nodes(), 5);
  EXPECT_EQ(star(4).num_links(), 8);
  const Topology d = dumbbell(3, 100.0, 40.0);
  EXPECT_EQ(d.num_nodes(), 8);
  EXPECT_TRUE(d.is_strongly_connected());
  EXPECT_DOUBLE_EQ(d.min_capacity_bps(), 40.0);
  EXPECT_DOUBLE_EQ(d.max_capacity_bps(), 100.0);
}

TEST(Generators, GridShapeAndDegrees) {
  const Topology t = grid(3, 4);
  EXPECT_EQ(t.num_nodes(), 12);
  // Edges: horizontal 2*4 + vertical 3*3 = 17 duplex.
  EXPECT_EQ(t.num_links(), 34);
  EXPECT_TRUE(t.is_strongly_connected());
  EXPECT_EQ(t.out_degree(0), 2);      // corner
  EXPECT_EQ(t.out_degree(4), 4);      // interior (x=1, y=1)
}

TEST(Generators, TorusIsDegreeRegular) {
  const Topology t = torus(4, 3);
  EXPECT_EQ(t.num_nodes(), 12);
  EXPECT_EQ(t.num_links(), 2 * 2 * 12);  // 2 duplex links added per node
  EXPECT_TRUE(t.is_strongly_connected());
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    EXPECT_EQ(t.out_degree(n), 4);
  }
}

TEST(Generators, TorusDiameterBeatsGrid) {
  // Wraparound halves the worst-case hop distance along each dimension.
  const Topology g = grid(6, 6);
  const Topology t = torus(6, 6);
  const std::vector<int> gd = g.bfs_hops(0);
  const std::vector<int> td = t.bfs_hops(0);
  EXPECT_GT(*std::max_element(gd.begin(), gd.end()),
            *std::max_element(td.begin(), td.end()));
}

TEST(Generators, FatTreeShape) {
  const Topology t = fat_tree(4);
  // 4 core + 4 pods × (2 agg + 2 edge) = 20 nodes.
  EXPECT_EQ(t.num_nodes(), 20);
  // Links: per pod, 2 agg × (2 core uplinks + 2 edge downlinks) = 8 duplex
  // → 32 duplex total.
  EXPECT_EQ(t.num_links(), 64);
  EXPECT_TRUE(t.is_strongly_connected());
  // Core links faster than pod links by default.
  EXPECT_DOUBLE_EQ(t.max_capacity_bps(), 40'000.0);
  EXPECT_DOUBLE_EQ(t.min_capacity_bps(), 10'000.0);
}

TEST(Generators, FatTreeRejectsOddArity) {
  EXPECT_THROW(fat_tree(3), std::runtime_error);
}

TEST(Generators, BaDegreeSkew) {
  // Preferential attachment should concentrate degree: max degree well above
  // the mean (property-style check over several seeds).
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    const Topology t = synthetic_ba(60, 2, rng);
    int max_deg = 0;
    double sum_deg = 0.0;
    for (NodeId n = 0; n < t.num_nodes(); ++n) {
      max_deg = std::max(max_deg, t.out_degree(n));
      sum_deg += t.out_degree(n);
    }
    const double mean_deg = sum_deg / t.num_nodes();
    EXPECT_GT(max_deg, 2.0 * mean_deg) << "seed " << seed;
  }
}

}  // namespace
}  // namespace rn::topo
