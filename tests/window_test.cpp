// Tests for the sliding-window histogram (src/obs/window.h): quantile
// accuracy against an exact sort, window expiry and slot rotation through
// the deterministic record_at/stats_at seams, registry integration, and
// thread-safety of concurrent records + reads (tsan-labeled). Includes the
// acceptance lock for the live-telemetry PR: after a load ramp the sliding
// p99 must differ from the all-time p99.
#include "obs/window.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "util/rng.h"

namespace rn::obs {
namespace {

// Exact quantile of a sample by sorting (nearest-rank with interpolation,
// close enough for the ratio bounds used below).
double exact_quantile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

TEST(WindowedHistogramTest, ConstructorValidatesGeometry) {
  EXPECT_THROW(WindowedHistogram(0.0, 4), std::runtime_error);
  EXPECT_THROW(WindowedHistogram(-1.0, 4), std::runtime_error);
  EXPECT_THROW(WindowedHistogram(10.0, 1), std::runtime_error);
  WindowedHistogram w(30.0, 15);
  EXPECT_DOUBLE_EQ(w.window_s(), 30.0);
  EXPECT_EQ(w.slots(), 15);
}

TEST(WindowedHistogramTest, EmptyWindowReportsZeros) {
  WindowedHistogram w(10.0, 5);
  const WindowedHistogram::Stats s = w.stats_at(100.0);
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

// Log-bucket quantiles carry at most one bucket of relative error: with 5
// buckets per decade a bucket spans a factor of 10^(1/5) ~ 1.585.
TEST(WindowedHistogramTest, QuantilesMatchExactSortWithinBucketError) {
  WindowedHistogram w(60.0, 6);
  Rng rng(42);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) {
    // Latency-shaped sample: log-uniform over [100us, 1s).
    const double x = std::pow(10.0, rng.uniform(-4.0, 0.0));
    xs.push_back(x);
    w.record_at(x, 10.0);
  }
  const WindowedHistogram::Stats s = w.stats_at(10.0);
  ASSERT_EQ(s.count, xs.size());
  constexpr double kBucketFactor = 1.5849;  // 10^(1/5)
  for (const auto& [q, est] :
       {std::pair<double, double>{0.50, s.p50},
        std::pair<double, double>{0.95, s.p95},
        std::pair<double, double>{0.99, s.p99}}) {
    const double exact = exact_quantile(xs, q);
    EXPECT_GT(est, exact / kBucketFactor) << "q=" << q;
    EXPECT_LT(est, exact * kBucketFactor) << "q=" << q;
  }
  // Mean and max are tracked exactly, not bucketed.
  double sum = 0.0;
  for (double x : xs) sum += x;
  EXPECT_NEAR(s.mean, sum / static_cast<double>(xs.size()), 1e-12);
  EXPECT_DOUBLE_EQ(s.max, *std::max_element(xs.begin(), xs.end()));
}

// Same samples, same timestamp: the windowed view must agree with a plain
// Histogram — both run the shared quantile_from_buckets interpolation.
TEST(WindowedHistogramTest, AgreesWithAllTimeHistogramWhenNothingExpired) {
  WindowedHistogram w(30.0, 15);
  Histogram h;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform(0.001, 0.101);
    w.record_at(x, 3.0);
    h.record(x);
  }
  const WindowedHistogram::Stats s = w.stats_at(3.0);
  EXPECT_EQ(s.count, h.count());
  EXPECT_DOUBLE_EQ(s.p50, h.quantile(0.50));
  EXPECT_DOUBLE_EQ(s.p95, h.quantile(0.95));
  EXPECT_DOUBLE_EQ(s.p99, h.quantile(0.99));
  EXPECT_DOUBLE_EQ(s.max, h.max());
}

TEST(WindowedHistogramTest, OldSamplesExpireOutOfTheWindow) {
  WindowedHistogram w(10.0, 5);  // 2 s slots
  for (int i = 0; i < 100; ++i) w.record_at(5.0, 1.0);
  ASSERT_EQ(w.stats_at(1.0).count, 100u);
  // Still visible near the end of the window...
  EXPECT_EQ(w.stats_at(9.9).count, 100u);
  // ...gone once their slot rotates out. (Slot-granular: epoch 0 leaves the
  // window of epoch 5, i.e. now >= 10.)
  const WindowedHistogram::Stats later = w.stats_at(20.0);
  EXPECT_EQ(later.count, 0u);
  EXPECT_DOUBLE_EQ(later.p99, 0.0);
}

// Walk many epochs so every slot is reused several times; the merged view
// must only ever contain the last `slots` spans.
TEST(WindowedHistogramTest, SlotRotationKeepsExactlyTheWindow) {
  constexpr int kSlots = 4;
  WindowedHistogram w(4.0, kSlots);  // 1 s slots
  for (int epoch = 0; epoch < 20; ++epoch) {
    const double t = static_cast<double>(epoch) + 0.5;
    w.record_at(static_cast<double>(epoch + 1), t);
    const WindowedHistogram::Stats s = w.stats_at(t);
    const int expect = std::min(epoch + 1, kSlots);
    EXPECT_EQ(s.count, static_cast<std::uint64_t>(expect)) << "epoch " << epoch;
    // Max always comes from the newest in-window value.
    EXPECT_DOUBLE_EQ(s.max, static_cast<double>(epoch + 1));
  }
  // A reader far in the future sees nothing without any rotation having run.
  EXPECT_EQ(w.stats_at(1000.0).count, 0u);
}

// Acceptance lock: under a ramp-then-recover load the sliding-window p99
// must track "now" while the all-time histogram stays anchored to the bad
// past. This is the property the serve loop's `serve.latency_s` window
// exists for.
TEST(WindowedHistogramTest, SlidingP99DivergesFromAllTimeAfterLoadRamp) {
  WindowedHistogram window(30.0, 15);
  Histogram all_time;
  // Phase 1: overloaded — 1 s latencies.
  for (int i = 0; i < 2000; ++i) {
    window.record_at(1.0, 5.0);
    all_time.record(1.0);
  }
  // Phase 2 (after the window slid past phase 1): healthy — 1 ms.
  for (int i = 0; i < 2000; ++i) {
    window.record_at(0.001, 100.0);
    all_time.record(0.001);
  }
  const WindowedHistogram::Stats live = window.stats_at(100.0);
  EXPECT_EQ(live.count, 2000u);
  // All-time p99 still reports the overload; the window reports recovery.
  EXPECT_GT(all_time.quantile(0.99), 0.5);
  EXPECT_LT(live.p99, 0.01);
  EXPECT_GT(all_time.quantile(0.99), live.p99 * 50.0);
}

TEST(WindowedHistogramTest, ResetClearsEverySlot) {
  WindowedHistogram w(10.0, 5);
  for (int i = 0; i < 10; ++i) w.record_at(1.0, static_cast<double>(i));
  ASSERT_GT(w.stats_at(9.0).count, 0u);
  w.reset();
  EXPECT_EQ(w.stats_at(9.0).count, 0u);
}

TEST(WindowedHistogramTest, RecordUsesTheMonotonicClock) {
  WindowedHistogram w(30.0, 15);
  w.record(0.25);
  w.record(0.5);
  const WindowedHistogram::Stats s = w.stats();
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.max, 0.5);
  EXPECT_GE(windowed_now_s(), 0.0);
}

TEST(WindowedHistogramTest, RegistryReturnsSameInstanceAndSnapshots) {
  Registry& reg = Registry::global();
  reg.reset();
  WindowedHistogram& w = reg.windowed("test.window_s", 20.0, 10);
  EXPECT_EQ(&w, &reg.windowed("test.window_s"));
  EXPECT_DOUBLE_EQ(w.window_s(), 20.0);
  w.record(0.125);
  const RegistrySnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.windows.size(), 1u);
  EXPECT_EQ(snap.windows[0].name, "test.window_s");
  EXPECT_EQ(snap.windows[0].count, 1u);
  EXPECT_GT(snap.windows[0].p99, 0.0);
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"windows\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"window_s\":20"), std::string::npos) << json;
  // Registry::reset clears windowed histograms too.
  reg.reset();
  EXPECT_EQ(w.stats().count, 0u);
}

// --- Exemplars -------------------------------------------------------------

TEST(WindowedHistogramTest, ExemplarKeepsSlowestTaggedSamplePerBucket) {
  WindowedHistogram w(30.0, 15);
  // Three samples in the same log bucket: the largest one's tag must win
  // regardless of arrival order.
  ASSERT_EQ(Histogram::bucket_index(0.010), Histogram::bucket_index(0.012));
  w.record_tagged_at(0.011, 101, 5.0);
  w.record_tagged_at(0.012, 102, 5.0);
  w.record_tagged_at(0.010, 103, 5.0);
  // A clearly different bucket gets its own exemplar.
  ASSERT_NE(Histogram::bucket_index(0.010), Histogram::bucket_index(1.0));
  w.record_tagged_at(1.0, 201, 5.0);

  const std::vector<Exemplar> ex = w.exemplars_at(5.0);
  ASSERT_EQ(ex.size(), 2u);
  // Ordered by bucket: slow bucket last.
  EXPECT_EQ(ex[0].bucket, Histogram::bucket_index(0.012));
  EXPECT_DOUBLE_EQ(ex[0].value, 0.012);
  EXPECT_EQ(ex[0].tag, 102u);
  EXPECT_EQ(ex[1].bucket, Histogram::bucket_index(1.0));
  EXPECT_DOUBLE_EQ(ex[1].value, 1.0);
  EXPECT_EQ(ex[1].tag, 201u);
}

TEST(WindowedHistogramTest, UntaggedAndNonPositiveRecordsLeaveNoExemplar) {
  WindowedHistogram w(30.0, 15);
  w.record_at(0.5, 5.0);               // untagged: counted, no exemplar
  w.record_tagged_at(0.25, 0, 5.0);    // tag 0 is the "no tag" sentinel
  w.record_tagged_at(0.0, 7, 5.0);     // underflow bucket keeps no exemplar
  w.record_tagged_at(-1.0, 8, 5.0);
  EXPECT_EQ(w.stats_at(5.0).count, 4u);
  EXPECT_TRUE(w.exemplars_at(5.0).empty());
}

TEST(WindowedHistogramTest, ExemplarsExpireWithTheirSlots) {
  WindowedHistogram w(10.0, 5);
  w.record_tagged_at(0.5, 42, 1.0);
  ASSERT_EQ(w.exemplars_at(1.0).size(), 1u);
  // Still inside the window…
  EXPECT_EQ(w.exemplars_at(9.9).size(), 1u);
  // …gone once its slot rotates out, exactly like the sample counts.
  EXPECT_TRUE(w.exemplars_at(20.0).empty());
  // A fresh tagged record after expiry starts a new exemplar set.
  w.record_tagged_at(0.25, 43, 21.0);
  const std::vector<Exemplar> ex = w.exemplars_at(21.0);
  ASSERT_EQ(ex.size(), 1u);
  EXPECT_EQ(ex[0].tag, 43u);
}

TEST(WindowedHistogramTest, RegistrySnapshotCarriesExemplars) {
  Registry& reg = Registry::global();
  reg.reset();
  WindowedHistogram& w = reg.windowed("test.exemplar_s", 20.0, 10);
  w.record_tagged(0.125, 0xBEEF);
  const RegistrySnapshot snap = reg.snapshot();
  // Registered windows persist across Registry::reset (values clear, names
  // stay), so earlier tests' windows may still be listed — find ours.
  const RegistrySnapshot::WindowStats* mine = nullptr;
  for (const RegistrySnapshot::WindowStats& ws : snap.windows) {
    if (ws.name == "test.exemplar_s") mine = &ws;
  }
  ASSERT_NE(mine, nullptr);
  ASSERT_EQ(mine->exemplars.size(), 1u);
  EXPECT_EQ(mine->exemplars[0].tag, 0xBEEFu);
  EXPECT_DOUBLE_EQ(mine->exemplars[0].value, 0.125);
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"exemplars\""), std::string::npos) << json;
  reg.reset();
}

// Concurrent writers plus a racing reader; run under tsan via the "tsan"
// label. Every record lands in the live window, so the final merged count
// is exact.
TEST(WindowedHistogramTest, ConcurrentRecordsAndReadsAreSafeAndLossless) {
  WindowedHistogram w(60.0, 6);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const WindowedHistogram::Stats s = w.stats();
      ASSERT_LE(s.count,
                static_cast<std::uint64_t>(kThreads) * kPerThread);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&w, t] {
      for (int i = 0; i < kPerThread; ++i) {
        w.record(0.001 * static_cast<double>(t + 1));
      }
    });
  }
  for (std::thread& th : writers) th.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  const WindowedHistogram::Stats s = w.stats();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(s.max, 0.001 * kThreads);
}

}  // namespace
}  // namespace rn::obs
