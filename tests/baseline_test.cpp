#include "baseline/fcnn.h"

#include <memory>

#include <gtest/gtest.h>

#include "baseline/path_mlp.h"
#include "topology/generators.h"

namespace rn::baseline {
namespace {

std::vector<dataset::Sample> tiny_dataset(int count, std::uint64_t seed) {
  dataset::GeneratorConfig cfg;
  cfg.target_pkts_per_flow = 60.0;
  cfg.warmup_s = 0.5;
  cfg.min_delivered = 5;
  cfg.k_paths = 1;  // FCNN has no routing input; keep routing fixed
  dataset::DatasetGenerator gen(cfg, seed);
  auto topology = std::make_shared<const topo::Topology>(topo::ring(6));
  return gen.generate_many(topology, count);
}

FcnnConfig fast_config() {
  FcnnConfig cfg;
  cfg.hidden1 = 32;
  cfg.hidden2 = 16;
  cfg.epochs = 40;
  cfg.batch_size = 8;
  return cfg;
}

TEST(FcnnBaseline, PredictShape) {
  const std::vector<dataset::Sample> data = tiny_dataset(4, 1);
  FcnnBaseline model(data[0].num_pairs(), fast_config());
  model.fit(data);
  const std::vector<double> pred = model.predict_delay(data[0]);
  EXPECT_EQ(static_cast<int>(pred.size()), data[0].num_pairs());
  for (double d : pred) EXPECT_GT(d, 0.0);
}

TEST(FcnnBaseline, LearnsFixedTopologyDataset) {
  const std::vector<dataset::Sample> data = tiny_dataset(16, 2);
  FcnnBaseline model(data[0].num_pairs(), fast_config());
  model.fit(data);
  const double mre = model.evaluate_delay_mre(data);
  EXPECT_LT(mre, 0.5);  // learns something usable on its training set
}

TEST(FcnnBaseline, RejectsMismatchedTopologySize) {
  const std::vector<dataset::Sample> data = tiny_dataset(2, 3);
  FcnnBaseline model(data[0].num_pairs(), fast_config());
  model.fit(data);
  // A 14-node sample cannot be encoded by a 6-node-ring-sized model —
  // this is precisely the fixed-input-width limitation the paper contrasts
  // RouteNet against.
  dataset::GeneratorConfig cfg;
  cfg.target_pkts_per_flow = 40.0;
  cfg.warmup_s = 0.5;
  dataset::DatasetGenerator gen(cfg, 4);
  auto nsf = std::make_shared<const topo::Topology>(topo::nsfnet());
  const dataset::Sample other = gen.generate(nsf);
  EXPECT_THROW(model.predict_delay(other), std::runtime_error);
}

TEST(FcnnBaseline, ParamCountMatchesWidths) {
  FcnnConfig cfg = fast_config();
  const int pairs = 30;
  FcnnBaseline model(pairs, cfg);
  const std::size_t expected =
      (2 * pairs * 32 + 32) + (32 * 16 + 16) + (16 * pairs + pairs);
  EXPECT_EQ(model.num_parameters(), expected);
}

TEST(FcnnBaseline, RejectsBadNumPairs) {
  EXPECT_THROW(FcnnBaseline(0, fast_config()), std::runtime_error);
}

PathMlpConfig fast_path_mlp() {
  PathMlpConfig cfg;
  cfg.hidden1 = 32;
  cfg.hidden2 = 16;
  cfg.epochs = 80;
  cfg.learning_rate = 3e-3f;
  return cfg;
}

TEST(PathMlpBaseline, PredictsOnAnyTopology) {
  // Unlike the FCNN, the per-path encoding accepts any graph size.
  const std::vector<dataset::Sample> train = tiny_dataset(8, 5);
  PathMlpBaseline model(fast_path_mlp());
  model.fit(train);
  dataset::GeneratorConfig cfg;
  cfg.target_pkts_per_flow = 40.0;
  cfg.warmup_s = 0.5;
  dataset::DatasetGenerator gen(cfg, 6);
  auto nsf = std::make_shared<const topo::Topology>(topo::nsfnet());
  const dataset::Sample other = gen.generate(nsf);
  const std::vector<double> pred = model.predict_delay(other);
  EXPECT_EQ(static_cast<int>(pred.size()), other.num_pairs());
  for (double d : pred) EXPECT_GT(d, 0.0);
}

TEST(PathMlpBaseline, LearnsItsTrainingDistribution) {
  const std::vector<dataset::Sample> train = tiny_dataset(16, 7);
  PathMlpBaseline model(fast_path_mlp());
  model.fit(train);
  EXPECT_LT(model.evaluate_delay_mre(train), 0.35);
}

TEST(PathMlpBaseline, GeneralizesToUnseenTopologySize) {
  // The features themselves are topology-agnostic, so a feature MLP should
  // transfer at least roughly; RouteNet's advantage is quantitative.
  const std::vector<dataset::Sample> train = tiny_dataset(16, 8);
  PathMlpBaseline model(fast_path_mlp());
  model.fit(train);
  dataset::GeneratorConfig cfg;
  cfg.target_pkts_per_flow = 60.0;
  cfg.warmup_s = 0.5;
  cfg.min_delivered = 5;
  dataset::DatasetGenerator gen(cfg, 9);
  auto ring8 = std::make_shared<const topo::Topology>(topo::ring(8));
  const std::vector<dataset::Sample> unseen = gen.generate_many(ring8, 3);
  EXPECT_LT(model.evaluate_delay_mre(unseen), 0.8);
}

TEST(PathMlpBaseline, ParamCountMatchesWidths) {
  PathMlpBaseline model(fast_path_mlp());
  const std::size_t expected = (8 * 32 + 32) + (32 * 16 + 16) + (16 + 1);
  EXPECT_EQ(model.num_parameters(), expected);
}

}  // namespace
}  // namespace rn::baseline
