#include "sim/simulator.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "topology/generators.h"

namespace rn::sim {
namespace {

// Single directed bottleneck: one flow 0→1.
struct SingleLinkScenario {
  SingleLinkScenario(double capacity_bps, double rate_bps)
      : topology("single", 2), scheme(2), tm(2) {
    topology.add_link(0, 1, capacity_bps);
    scheme.set_path(0, 1, {0});
    scheme.set_path(1, 0, {});  // unused (zero traffic)
    tm.set_rate_bps(0, 1, rate_bps);
  }
  topo::Topology topology;
  routing::RoutingScheme scheme;
  traffic::TrafficMatrix tm;
};

TEST(PacketSimulator, MM1MeanDelayMatchesTheory) {
  // M/M/1: W = 1/(μ − λ). μ = 10 pkt/s, λ = 5 pkt/s → W = 0.2 s.
  SingleLinkScenario sc(10'000.0, 5'000.0);
  SimConfig cfg;
  cfg.warmup_s = 50.0;
  cfg.horizon_s = 2'050.0;  // ~10k post-warmup packets
  cfg.seed = 42;
  const PacketSimulator sim(cfg);
  const SimResult res = sim.run(sc.topology, sc.scheme, sc.tm);
  const PathStats& ps = res.paths[static_cast<std::size_t>(
      topo::pair_index(0, 1, 2))];
  EXPECT_GT(ps.delivered, 5'000u);
  EXPECT_NEAR(ps.mean_delay_s, 0.2, 0.02);
  // M/M/1 sojourn is exponential: std == mean.
  EXPECT_NEAR(ps.jitter_s, 0.2, 0.03);
}

TEST(PacketSimulator, MM1UtilizationMatchesRho) {
  SingleLinkScenario sc(10'000.0, 7'000.0);
  SimConfig cfg;
  cfg.warmup_s = 50.0;
  cfg.horizon_s = 1'050.0;
  cfg.seed = 7;
  const SimResult res =
      PacketSimulator(cfg).run(sc.topology, sc.scheme, sc.tm);
  EXPECT_NEAR(res.links[0].utilization, 0.7, 0.03);
}

TEST(PacketSimulator, MM1MeanQueueMatchesTheory) {
  // Mean waiting-queue length (excluding in service): Lq = ρ²/(1−ρ).
  SingleLinkScenario sc(10'000.0, 5'000.0);
  SimConfig cfg;
  cfg.warmup_s = 100.0;
  cfg.horizon_s = 4'100.0;
  cfg.seed = 11;
  const SimResult res =
      PacketSimulator(cfg).run(sc.topology, sc.scheme, sc.tm);
  // ρ = 0.5 → Lq = ρ²/(1−ρ) = 0.5.
  EXPECT_NEAR(res.links[0].mean_queue_pkts, 0.5, 0.08);
}

TEST(PacketSimulator, LowLoadDelayApproachesTransmissionTime) {
  // At ρ→0 the sojourn is just the service time: mean size / capacity.
  SingleLinkScenario sc(100'000.0, 1'000.0);  // ρ = 0.01
  SimConfig cfg;
  cfg.warmup_s = 10.0;
  cfg.horizon_s = 4'010.0;
  cfg.seed = 3;
  const SimResult res =
      PacketSimulator(cfg).run(sc.topology, sc.scheme, sc.tm);
  const double service = 1000.0 / 100'000.0;  // 10 ms
  const PathStats& ps = res.paths[static_cast<std::size_t>(
      topo::pair_index(0, 1, 2))];
  EXPECT_NEAR(ps.mean_delay_s, service, service * 0.1);
}

TEST(PacketSimulator, PropagationDelayAddsUp) {
  topo::Topology t("prop", 3);
  t.add_link(0, 1, 1e9, 0.010);
  t.add_link(1, 2, 1e9, 0.020);
  routing::RoutingScheme scheme(3);
  scheme.set_path(0, 2, {0, 1});
  traffic::TrafficMatrix tm(3);
  tm.set_rate_bps(0, 2, 1'000.0);  // negligible load on 1 Gbps
  SimConfig cfg;
  cfg.warmup_s = 1.0;
  cfg.horizon_s = 2'001.0;
  const SimResult res = PacketSimulator(cfg).run(t, scheme, tm);
  const PathStats& ps = res.paths[static_cast<std::size_t>(
      topo::pair_index(0, 2, 3))];
  ASSERT_GT(ps.delivered, 100u);
  EXPECT_NEAR(ps.mean_delay_s, 0.030, 0.002);  // dominated by propagation
}

TEST(PacketSimulator, TandemDelayExceedsSingleHop) {
  const topo::Topology t = topo::line(3, 10'000.0);
  const routing::RoutingScheme scheme = routing::shortest_path_routing(t);
  traffic::TrafficMatrix tm(3);
  tm.set_rate_bps(0, 2, 5'000.0);
  tm.set_rate_bps(0, 1, 1'000.0);
  SimConfig cfg;
  cfg.warmup_s = 20.0;
  cfg.horizon_s = 1'020.0;
  const SimResult res = PacketSimulator(cfg).run(t, scheme, tm);
  const double two_hop = res.paths[static_cast<std::size_t>(
      topo::pair_index(0, 2, 3))].mean_delay_s;
  const double one_hop = res.paths[static_cast<std::size_t>(
      topo::pair_index(0, 1, 3))].mean_delay_s;
  EXPECT_GT(two_hop, one_hop);
}

TEST(PacketSimulator, DeterministicForSameSeed) {
  SingleLinkScenario sc(10'000.0, 6'000.0);
  SimConfig cfg;
  cfg.warmup_s = 5.0;
  cfg.horizon_s = 105.0;
  cfg.seed = 99;
  const SimResult a = PacketSimulator(cfg).run(sc.topology, sc.scheme, sc.tm);
  const SimResult b = PacketSimulator(cfg).run(sc.topology, sc.scheme, sc.tm);
  EXPECT_EQ(a.packets_created, b.packets_created);
  EXPECT_DOUBLE_EQ(a.paths[0].mean_delay_s, b.paths[0].mean_delay_s);
  EXPECT_DOUBLE_EQ(a.paths[0].jitter_s, b.paths[0].jitter_s);
}

TEST(PacketSimulator, DifferentSeedsDiffer) {
  SingleLinkScenario sc(10'000.0, 6'000.0);
  SimConfig cfg;
  cfg.warmup_s = 5.0;
  cfg.horizon_s = 105.0;
  cfg.seed = 1;
  const SimResult a = PacketSimulator(cfg).run(sc.topology, sc.scheme, sc.tm);
  cfg.seed = 2;
  const SimResult b = PacketSimulator(cfg).run(sc.topology, sc.scheme, sc.tm);
  EXPECT_NE(a.paths[0].mean_delay_s, b.paths[0].mean_delay_s);
}

TEST(PacketSimulator, FiniteBufferDropsUnderOverload) {
  SingleLinkScenario sc(10'000.0, 20'000.0);  // ρ = 2: heavy overload
  SimConfig cfg;
  cfg.warmup_s = 1.0;
  cfg.horizon_s = 61.0;
  cfg.link_buffer_pkts = 8;
  const SimResult res =
      PacketSimulator(cfg).run(sc.topology, sc.scheme, sc.tm);
  EXPECT_GT(res.links[0].drops, 0u);
  EXPECT_GT(res.paths[0].dropped, 0u);
  // Bounded queue keeps delay bounded: at most (buffer+1) service times of
  // any realistic packet; check a loose cap.
  EXPECT_LT(res.paths[0].mean_delay_s, 10.0);
}

TEST(PacketSimulator, InfiniteBufferNeverDrops) {
  SingleLinkScenario sc(10'000.0, 8'000.0);
  SimConfig cfg;
  cfg.warmup_s = 5.0;
  cfg.horizon_s = 205.0;
  const SimResult res =
      PacketSimulator(cfg).run(sc.topology, sc.scheme, sc.tm);
  EXPECT_EQ(res.links[0].drops, 0u);
  EXPECT_EQ(res.paths[0].dropped, 0u);
}

TEST(PacketSimulator, DeliveredNeverExceedsCreated) {
  const topo::Topology t = topo::nsfnet();
  const routing::RoutingScheme scheme = routing::shortest_path_routing(t);
  Rng rng(5);
  traffic::TrafficMatrix tm =
      traffic::uniform_traffic(t.num_nodes(), 10.0, 50.0, rng);
  traffic::scale_to_max_utilization(tm, t, scheme, 0.6);
  SimConfig cfg;
  cfg.warmup_s = 0.0;
  cfg.horizon_s = 30.0;
  const SimResult res = PacketSimulator(cfg).run(t, scheme, tm);
  std::size_t delivered = 0;
  for (const PathStats& ps : res.paths) delivered += ps.delivered;
  EXPECT_LE(delivered, res.packets_created);
  EXPECT_GT(delivered, 0u);
}

TEST(PacketSimulator, OnOffDelaysExceedPoissonAtSameMeanRate) {
  // Bursty arrivals at identical average load queue more.
  SingleLinkScenario sc(10'000.0, 6'000.0);
  SimConfig cfg;
  cfg.warmup_s = 50.0;
  cfg.horizon_s = 2'050.0;
  cfg.seed = 21;
  const double poisson_delay =
      PacketSimulator(cfg).run(sc.topology, sc.scheme, sc.tm)
          .paths[0].mean_delay_s;
  cfg.model.arrivals = traffic::ArrivalProcess::kOnOff;
  cfg.model.on_fraction = 0.3;
  cfg.model.mean_on_s = 0.5;
  const double onoff_delay =
      PacketSimulator(cfg).run(sc.topology, sc.scheme, sc.tm)
          .paths[0].mean_delay_s;
  EXPECT_GT(onoff_delay, 1.3 * poisson_delay);
}

TEST(PacketSimulator, OnOffPreservesMeanRate) {
  SingleLinkScenario sc(100'000.0, 5'000.0);  // low load: no drops, no bias
  SimConfig cfg;
  cfg.warmup_s = 0.0;
  cfg.horizon_s = 2'000.0;
  cfg.model.arrivals = traffic::ArrivalProcess::kOnOff;
  cfg.model.on_fraction = 0.25;
  cfg.model.mean_on_s = 0.4;
  const SimResult res =
      PacketSimulator(cfg).run(sc.topology, sc.scheme, sc.tm);
  const double pkt_rate =
      static_cast<double>(res.packets_created) / cfg.horizon_s;
  EXPECT_NEAR(pkt_rate, 5.0, 0.4);  // 5000 bps / 1000 bits
}

TEST(PacketSimulator, FixedSizeMD1BeatsMM1Delay) {
  // M/D/1 waits are half M/M/1 waits at equal ρ; total sojourn is smaller.
  SingleLinkScenario sc(10'000.0, 7'000.0);
  SimConfig cfg;
  cfg.warmup_s = 50.0;
  cfg.horizon_s = 2'050.0;
  const double mm1 = PacketSimulator(cfg)
                         .run(sc.topology, sc.scheme, sc.tm)
                         .paths[0].mean_delay_s;
  cfg.model.sizes = traffic::PacketSizeModel::kFixed;
  const double md1 = PacketSimulator(cfg)
                         .run(sc.topology, sc.scheme, sc.tm)
                         .paths[0].mean_delay_s;
  EXPECT_LT(md1, mm1);
}

TEST(PacketSimulator, CollectSamplesGivesP99AboveMean) {
  SingleLinkScenario sc(10'000.0, 6'000.0);
  SimConfig cfg;
  cfg.warmup_s = 10.0;
  cfg.horizon_s = 510.0;
  cfg.collect_samples = true;
  const SimResult res =
      PacketSimulator(cfg).run(sc.topology, sc.scheme, sc.tm);
  EXPECT_GT(res.paths[0].p99_delay_s, res.paths[0].mean_delay_s);
}

TEST(PacketSimulator, CoverageReportsActiveFraction) {
  SingleLinkScenario sc(10'000.0, 5'000.0);
  SimConfig cfg;
  cfg.warmup_s = 1.0;
  cfg.horizon_s = 101.0;
  const SimResult res =
      PacketSimulator(cfg).run(sc.topology, sc.scheme, sc.tm);
  // 1 of 2 pairs carries traffic.
  EXPECT_DOUBLE_EQ(res.coverage(1), 0.5);
}

TEST(PacketSimulator, PropagationAndQueueingCompose) {
  // With both queueing and propagation, mean delay ≈ M/M/1 sojourn + prop.
  topo::Topology t("pq", 2);
  t.add_link(0, 1, 10'000.0, 0.050);
  routing::RoutingScheme scheme(2);
  scheme.set_path(0, 1, {0});
  traffic::TrafficMatrix tm(2);
  tm.set_rate_bps(0, 1, 5'000.0);
  SimConfig cfg;
  cfg.warmup_s = 50.0;
  cfg.horizon_s = 2'050.0;
  const SimResult res = PacketSimulator(cfg).run(t, scheme, tm);
  const auto idx = static_cast<std::size_t>(topo::pair_index(0, 1, 2));
  EXPECT_NEAR(res.paths[idx].mean_delay_s, 0.2 + 0.050, 0.02);
  // Propagation is constant: jitter still reflects only the queueing part.
  EXPECT_NEAR(res.paths[idx].jitter_s, 0.2, 0.03);
}

TEST(PacketSimulator, ZeroRateFlowsEmitNothing) {
  const topo::Topology t = topo::ring(4);
  const routing::RoutingScheme scheme = routing::shortest_path_routing(t);
  traffic::TrafficMatrix tm(4);
  tm.set_rate_bps(0, 2, 1'000.0);  // single active flow
  SimConfig cfg;
  cfg.warmup_s = 0.5;
  cfg.horizon_s = 60.5;
  const SimResult res = PacketSimulator(cfg).run(t, scheme, tm);
  for (int idx = 0; idx < t.num_pairs(); ++idx) {
    if (idx == topo::pair_index(0, 2, 4)) continue;
    EXPECT_EQ(res.paths[static_cast<std::size_t>(idx)].delivered, 0u);
  }
  EXPECT_GT(res.paths[static_cast<std::size_t>(
      topo::pair_index(0, 2, 4))].delivered, 20u);
}

TEST(PacketSimulator, ReservoirP99IsStableAcrossCapSizes) {
  // The reservoir estimate with a small cap should approximate the
  // large-cap estimate (same seed, same traffic).
  SingleLinkScenario sc(10'000.0, 6'000.0);
  SimConfig cfg;
  cfg.warmup_s = 20.0;
  cfg.horizon_s = 1'020.0;
  cfg.collect_samples = true;
  cfg.max_samples_per_path = 4096;
  const double p99_big = PacketSimulator(cfg)
                             .run(sc.topology, sc.scheme, sc.tm)
                             .paths[0].p99_delay_s;
  cfg.max_samples_per_path = 256;
  const double p99_small = PacketSimulator(cfg)
                               .run(sc.topology, sc.scheme, sc.tm)
                               .paths[0].p99_delay_s;
  EXPECT_NEAR(p99_small, p99_big, 0.35 * p99_big);
}

TEST(PacketSimulator, HigherLoadMeansHigherDelayMonotonic) {
  // Property: mean delay grows with utilization (same seed & horizon).
  double prev = 0.0;
  for (const double rate : {2'000.0, 4'000.0, 6'000.0, 8'000.0}) {
    SingleLinkScenario sc(10'000.0, rate);
    SimConfig cfg;
    cfg.warmup_s = 20.0;
    cfg.horizon_s = 1'020.0;
    cfg.seed = 9;
    const double d = PacketSimulator(cfg)
                         .run(sc.topology, sc.scheme, sc.tm)
                         .paths[0].mean_delay_s;
    EXPECT_GT(d, prev) << "rate " << rate;
    prev = d;
  }
}

TEST(PacketSimulator, RejectsBadConfig) {
  SimConfig cfg;
  cfg.warmup_s = 10.0;
  cfg.horizon_s = 5.0;
  EXPECT_THROW(PacketSimulator{cfg}, std::runtime_error);
}

// Whole-run packet accounting must reconcile exactly for every scheduling
// discipline: created == delivered + dropped + in_flight.
class PacketReconciliation : public ::testing::TestWithParam<Scheduling> {};

TEST_P(PacketReconciliation, CreatedEqualsDeliveredPlusDroppedPlusInFlight) {
  // Overloaded bottleneck with a tiny finite buffer so all three outcomes
  // (delivered, dropped, and potentially in-flight) actually occur.
  SingleLinkScenario sc(10'000.0, 18'000.0);
  SimConfig cfg;
  cfg.warmup_s = 1.0;
  cfg.horizon_s = 41.0;
  cfg.link_buffer_pkts = 4;
  cfg.seed = 17;
  cfg.scheduling = GetParam();
  if (cfg.scheduling != Scheduling::kFifo) {
    cfg.num_classes = 2;
    cfg.class_of_flow = [](int pair_idx) { return pair_idx % 2; };
  }
  const SimResult res =
      PacketSimulator(cfg).run(sc.topology, sc.scheme, sc.tm);
  EXPECT_EQ(res.packets_created,
            res.packets_delivered + res.packets_dropped +
                res.packets_in_flight);
  EXPECT_GT(res.packets_delivered, 0u);
  EXPECT_GT(res.packets_dropped, 0u);  // ρ=1.8 with 4-pkt buffer must drop
  // Run-level telemetry sanity.
  EXPECT_GT(res.events_per_wall_s, 0.0);
  EXPECT_GT(res.wall_time_s, 0.0);
  EXPECT_GT(res.peak_queue_pkts, 0u);
  EXPECT_LE(res.peak_queue_pkts, 4u);  // bounded by the buffer cap
  EXPECT_EQ(res.warmup_s, cfg.warmup_s);
  EXPECT_NEAR(res.measured_time_s(), res.simulated_time_s - cfg.warmup_s,
              1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllDisciplines, PacketReconciliation,
                         ::testing::Values(Scheduling::kFifo,
                                           Scheduling::kStrictPriority,
                                           Scheduling::kDeficitRoundRobin),
                         [](const auto& info) {
                           switch (info.param) {
                             case Scheduling::kFifo: return "Fifo";
                             case Scheduling::kStrictPriority:
                               return "StrictPriority";
                             default: return "DeficitRoundRobin";
                           }
                         });

TEST(PacketSimulator, PerLinkPeakQueueBoundsRunPeak) {
  // The run-level peak is the max over per-link peaks, and each per-link
  // peak is at least the time-averaged queue depth.
  const topo::Topology t = topo::nsfnet();
  const routing::RoutingScheme scheme = routing::shortest_path_routing(t);
  Rng rng(8);
  traffic::TrafficMatrix tm =
      traffic::uniform_traffic(t.num_nodes(), 10.0, 50.0, rng);
  traffic::scale_to_max_utilization(tm, t, scheme, 0.7);
  SimConfig cfg;
  cfg.warmup_s = 0.5;
  cfg.horizon_s = 20.5;
  const SimResult res = PacketSimulator(cfg).run(t, scheme, tm);
  std::size_t max_link_peak = 0;
  for (const LinkStats& ls : res.links) {
    EXPECT_GE(static_cast<double>(ls.peak_queue_pkts), ls.mean_queue_pkts);
    max_link_peak = std::max(max_link_peak, ls.peak_queue_pkts);
  }
  EXPECT_EQ(res.peak_queue_pkts, max_link_peak);
  EXPECT_EQ(res.packets_created,
            res.packets_delivered + res.packets_dropped +
                res.packets_in_flight);
}

TEST(HorizonForTargetPackets, ScalesInversely) {
  traffic::TrafficMatrix tm(3);
  tm.set_rate_bps(0, 1, 1'000.0);
  tm.set_rate_bps(1, 2, 1'000.0);
  traffic::TrafficModel model;
  const double h100 = horizon_for_target_packets(tm, model, 1.0, 100.0);
  const double h200 = horizon_for_target_packets(tm, model, 1.0, 200.0);
  EXPECT_GT(h200, h100);
  EXPECT_NEAR((h200 - 1.0) / (h100 - 1.0), 2.0, 1e-9);
}

}  // namespace
}  // namespace rn::sim
