// InferenceServer contract: batched serving returns exactly what single-
// request predict() returns (merged graphs are disjoint, so coalescing must
// not change a single bit), backpressure rejects deterministically and is
// counted, and stop() drains every queued request. The whole suite also runs
// under -DRN_SANITIZE=thread (label `tsan`): concurrent submitters + worker
// loops + the shared model must be race-free.
#include "serve/server.h"

#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "par/thread_pool.h"
#include "topology/generators.h"

namespace rn::serve {
namespace {

core::RouteNetConfig tiny_config() {
  core::RouteNetConfig cfg;
  cfg.link_state_dim = 6;
  cfg.path_state_dim = 6;
  cfg.iterations = 2;
  cfg.readout_hidden = 8;
  return cfg;
}

// Distinct inference scenarios on one topology: routing and traffic drawn
// per seed, wrapped by the inference-sample factory.
dataset::Sample make_request(
    const std::shared_ptr<const topo::Topology>& topology,
    std::uint64_t seed) {
  Rng rng(seed);
  routing::RoutingScheme scheme =
      routing::random_k_shortest_routing(*topology, 2, rng);
  traffic::TrafficMatrix tm =
      traffic::uniform_traffic(topology->num_nodes(), 50.0, 150.0, rng);
  return dataset::make_inference_sample(topology, std::move(scheme),
                                        std::move(tm));
}

void expect_identical(const core::RouteNet::Prediction& a,
                      const core::RouteNet::Prediction& b) {
  ASSERT_EQ(a.delay_s.size(), b.delay_s.size());
  ASSERT_EQ(a.jitter_s.size(), b.jitter_s.size());
  for (std::size_t i = 0; i < a.delay_s.size(); ++i) {
    EXPECT_EQ(a.delay_s[i], b.delay_s[i]) << "delay row " << i;
    EXPECT_EQ(a.jitter_s[i], b.jitter_s[i]) << "jitter row " << i;
  }
}

TEST(PredictBatch, MatchesSinglePredictAtEveryBatchSize) {
  auto topology = std::make_shared<const topo::Topology>(topo::nsfnet());
  core::RouteNet model(tiny_config());
  std::vector<dataset::Sample> samples;
  for (std::uint64_t i = 0; i < 32; ++i) {
    samples.push_back(make_request(topology, i + 1));
  }
  std::vector<core::RouteNet::Prediction> single;
  single.reserve(samples.size());
  for (const dataset::Sample& s : samples) single.push_back(model.predict(s));
  for (int batch_size : {1, 8, 32}) {
    const std::vector<core::RouteNet::Prediction> batched =
        model.predict_batch(samples, batch_size);
    ASSERT_EQ(batched.size(), single.size()) << "batch size " << batch_size;
    for (std::size_t i = 0; i < single.size(); ++i) {
      expect_identical(batched[i], single[i]);
    }
  }
}

TEST(InferenceServer, ConcurrentClientsGetExactlySinglePredictResults) {
  par::set_global_threads(4);
  auto topology = std::make_shared<const topo::Topology>(topo::nsfnet());
  core::RouteNet model(tiny_config());
  constexpr int kClients = 4;
  constexpr int kPerClient = 8;
  std::vector<dataset::Sample> samples;
  for (std::uint64_t i = 0; i < kClients * kPerClient; ++i) {
    samples.push_back(make_request(topology, 100 + i));
  }
  std::vector<core::RouteNet::Prediction> expected;
  expected.reserve(samples.size());
  for (const dataset::Sample& s : samples) {
    expected.push_back(model.predict(s));
  }

  ServerConfig cfg;
  cfg.max_batch = 8;
  cfg.batch_deadline_s = 0.002;
  cfg.queue_capacity = samples.size();
  cfg.workers = 2;
  InferenceServer server(model, cfg);
  std::vector<core::RouteNet::Prediction> got(samples.size());
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kPerClient; ++r) {
        const std::size_t i = static_cast<std::size_t>(c * kPerClient + r);
        got[i] = server.submit(samples[i]).get();
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.stop();

  for (std::size_t i = 0; i < samples.size(); ++i) {
    expect_identical(got[i], expected[i]);
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, samples.size());
  EXPECT_EQ(stats.served, samples.size());
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_LE(stats.batches, stats.served);
}

TEST(InferenceServer, QueueOverflowRejectsDeterministically) {
  par::set_global_threads(2);
  auto topology = std::make_shared<const topo::Topology>(topo::ring(5));
  core::RouteNet model(tiny_config());
  // Paused workers take nothing off the queue, so capacity 4 fills with
  // exactly four submits and the fifth rejects — no long-deadline trick,
  // no dependence on how fast the worker wakes.
  ServerConfig cfg;
  cfg.max_batch = 8;
  cfg.batch_deadline_s = 0.001;
  cfg.queue_capacity = 4;
  cfg.workers = 1;
  InferenceServer server(model, cfg);
  server.set_paused_for_test(true);
  std::vector<std::future<core::RouteNet::Prediction>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(server.submit(make_request(topology, 200 + i)));
  }
  EXPECT_EQ(server.queue_depth(), 4u);
  EXPECT_THROW(server.submit(make_request(topology, 299)), RejectedError);
  // Resume: the four queued requests are served as if nothing happened.
  server.set_paused_for_test(false);
  for (std::future<core::RouteNet::Prediction>& f : futures) {
    const core::RouteNet::Prediction pred = f.get();
    EXPECT_FALSE(pred.delay_s.empty());
  }
  server.stop();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.served, 4u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_THROW(server.submit(make_request(topology, 300)), RejectedError);
}

TEST(InferenceServer, PauseHoldsTheQueueAcrossDeadlinesAndStopOverrides) {
  par::set_global_threads(2);
  auto topology = std::make_shared<const topo::Topology>(topo::ring(4));
  core::RouteNet model(tiny_config());
  ServerConfig cfg;
  cfg.max_batch = 2;
  cfg.batch_deadline_s = 0.0;  // immediate dispatch when not paused
  cfg.queue_capacity = 8;
  cfg.workers = 1;
  InferenceServer server(model, cfg);
  server.set_paused_for_test(true);
  std::vector<std::future<core::RouteNet::Prediction>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(server.submit(make_request(topology, 600 + i)));
  }
  EXPECT_EQ(server.queue_depth(), 3u);
  // stop() overrides the pause: everything queued is still drained.
  server.stop();
  for (std::future<core::RouteNet::Prediction>& f : futures) {
    EXPECT_FALSE(f.get().delay_s.empty());
  }
  EXPECT_EQ(server.stats().served, 3u);
  EXPECT_EQ(server.queue_depth(), 0u);
}

TEST(InferenceServer, BatchDeadlineIsRetunableLive) {
  par::set_global_threads(2);
  auto topology = std::make_shared<const topo::Topology>(topo::ring(4));
  core::RouteNet model(tiny_config());
  ServerConfig cfg;
  cfg.max_batch = 4;
  cfg.batch_deadline_s = 0.004;
  cfg.queue_capacity = 8;
  cfg.workers = 1;
  InferenceServer server(model, cfg);
  EXPECT_DOUBLE_EQ(server.batch_deadline_s(), 0.004);
  server.set_batch_deadline(0.0);
  EXPECT_DOUBLE_EQ(server.batch_deadline_s(), 0.0);
  EXPECT_THROW(server.set_batch_deadline(-0.001), std::runtime_error);
  // Still serves after the retune (and with a zero deadline, immediately).
  EXPECT_FALSE(
      server.submit(make_request(topology, 700)).get().delay_s.empty());
  server.stop();
}

TEST(InferenceServer, StopDrainsEveryQueuedRequest) {
  par::set_global_threads(2);
  auto topology = std::make_shared<const topo::Topology>(topo::ring(6));
  core::RouteNet model(tiny_config());
  ServerConfig cfg;
  cfg.max_batch = 4;
  cfg.batch_deadline_s = 5.0;  // stop() must not wait for deadlines
  cfg.queue_capacity = 64;
  cfg.workers = 2;
  InferenceServer server(model, cfg);
  std::vector<std::future<core::RouteNet::Prediction>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(server.submit(make_request(topology, 400 + i)));
  }
  server.stop();
  for (std::future<core::RouteNet::Prediction>& f : futures) {
    EXPECT_FALSE(f.get().delay_s.empty());
  }
  EXPECT_EQ(server.stats().served, 16u);
  EXPECT_EQ(server.queue_depth(), 0u);
}

TEST(InferenceServer, WorksOnAnInlineOneThreadPool) {
  // A 1-thread pool runs submit() inline on the caller; the server must
  // fall back to dedicated threads instead of wedging its constructor.
  par::set_global_threads(1);
  auto topology = std::make_shared<const topo::Topology>(topo::ring(4));
  core::RouteNet model(tiny_config());
  ServerConfig cfg;
  cfg.max_batch = 2;
  cfg.batch_deadline_s = 0.001;
  cfg.queue_capacity = 8;
  cfg.workers = 2;
  InferenceServer server(model, cfg);
  std::vector<std::future<core::RouteNet::Prediction>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(server.submit(make_request(topology, 500 + i)));
  }
  for (std::future<core::RouteNet::Prediction>& f : futures) {
    EXPECT_FALSE(f.get().delay_s.empty());
  }
  server.stop();
  EXPECT_EQ(server.stats().served, 6u);
  par::set_global_threads(0);  // restore the default pool for later suites
}

}  // namespace
}  // namespace rn::serve
