// Command-level tests of the routenet CLI: each cmd_* is driven through
// its real flag interface against temp-file artifacts, covering the full
// make-topology → … → train → predict pipeline at miniature scale.
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "commands.h"
#include "core/routenet.h"
#include "dataset/dataset.h"
#include "topology/text_io.h"
#include "traffic/text_io.h"

namespace rn::cli {
namespace {

class CliCommands : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "cli_cmd_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
  }

  std::string path(const std::string& name) const { return dir_ + "/" + name; }

  // Builds Flags from a flat list like {"--kind", "ring", "--out", f}.
  static Flags flags_of(std::vector<std::string> args) {
    std::vector<const char*> argv = {"routenet", "cmd"};
    for (const std::string& a : args) argv.push_back(a.c_str());
    return Flags(static_cast<int>(argv.size()), argv.data(), 2, {"bursty"});
  }

  std::string dir_;
};

TEST_F(CliCommands, MakeTopologyWritesLoadableFile) {
  EXPECT_EQ(cmd_make_topology(flags_of(
                {"--kind", "ring", "--nodes", "6", "--out", path("r.topo")})),
            0);
  const topo::Topology t = topo::load_topology_file(path("r.topo"));
  EXPECT_EQ(t.num_nodes(), 6);
  EXPECT_EQ(t.num_links(), 12);
}

TEST_F(CliCommands, MakeTopologyRejectsUnknownKind) {
  EXPECT_THROW(cmd_make_topology(flags_of(
                   {"--kind", "mobius", "--out", path("x.topo")})),
               std::runtime_error);
}

TEST_F(CliCommands, MakeTopologyRejectsTypoFlag) {
  EXPECT_THROW(cmd_make_topology(flags_of({"--kind", "ring", "--node", "6",
                                           "--out", path("x.topo")})),
               std::runtime_error);
}

TEST_F(CliCommands, FullPipelineEndToEnd) {
  // topology → routing → traffic → simulate → dataset → train → eval →
  // predict → whatif, all through the public command surface.
  ASSERT_EQ(cmd_make_topology(flags_of(
                {"--kind", "ring", "--nodes", "6", "--out", path("n.topo")})),
            0);
  ASSERT_EQ(cmd_make_routing(flags_of({"--topology", path("n.topo"), "--k",
                                       "2", "--seed", "3", "--out",
                                       path("n.routes")})),
            0);
  ASSERT_EQ(cmd_make_traffic(flags_of(
                {"--topology", path("n.topo"), "--routing", path("n.routes"),
                 "--kind", "gravity", "--util", "0.6", "--out",
                 path("n.traffic")})),
            0);
  ASSERT_EQ(cmd_simulate(flags_of(
                {"--topology", path("n.topo"), "--routing", path("n.routes"),
                 "--traffic", path("n.traffic"), "--pkts-per-flow", "40",
                 "--out", path("sim.csv")})),
            0);
  EXPECT_TRUE(std::filesystem::exists(path("sim.csv")));

  ASSERT_EQ(cmd_gen_dataset(flags_of(
                {"--topology", path("n.topo"), "--count", "8",
                 "--pkts-per-flow", "40", "--seed", "5", "--out",
                 path("train.ds")})),
            0);
  const std::vector<dataset::Sample> ds =
      dataset::load_dataset(path("train.ds"));
  EXPECT_EQ(ds.size(), 8u);

  ASSERT_EQ(cmd_train(flags_of(
                {"--dataset", path("train.ds"), "--epochs", "3", "--dim",
                 "8", "--iterations", "2", "--out", path("m.model")})),
            0);
  const core::RouteNet model = core::RouteNet::load(path("m.model"));
  EXPECT_EQ(model.config().link_state_dim, 8);

  EXPECT_EQ(cmd_eval(flags_of(
                {"--model", path("m.model"), "--dataset", path("train.ds")})),
            0);
  EXPECT_EQ(cmd_predict(flags_of(
                {"--model", path("m.model"), "--topology", path("n.topo"),
                 "--routing", path("n.routes"), "--traffic",
                 path("n.traffic"), "--top", "3", "--out", path("pred.csv")})),
            0);
  EXPECT_TRUE(std::filesystem::exists(path("pred.csv")));

  EXPECT_EQ(cmd_whatif(flags_of(
                {"--model", path("m.model"), "--topology", path("n.topo"),
                 "--routing", path("n.routes"), "--traffic",
                 path("n.traffic"), "--upgrades", "2", "--failures", "2"})),
            0);

  EXPECT_EQ(cmd_info(flags_of({"--model", path("m.model")})), 0);
  EXPECT_EQ(cmd_info(flags_of({"--dataset", path("train.ds")})), 0);
  EXPECT_EQ(cmd_info(flags_of({"--topology", path("n.topo")})), 0);
}

TEST_F(CliCommands, GenDatasetBurstyFlag) {
  ASSERT_EQ(cmd_gen_dataset(flags_of(
                {"--topology", "gbn", "--count", "2", "--pkts-per-flow",
                 "30", "--bursty", "--out", path("b.ds")})),
            0);
  EXPECT_EQ(dataset::load_dataset(path("b.ds")).size(), 2u);
}

TEST_F(CliCommands, NamedTopologiesResolve) {
  for (const char* name : {"nsfnet", "geant2", "gbn"}) {
    EXPECT_EQ(cmd_info(flags_of({"--topology", name})), 0) << name;
  }
}

TEST_F(CliCommands, TrainRejectsMissingDataset) {
  EXPECT_THROW(cmd_train(flags_of({"--dataset", path("nope.ds"), "--out",
                                   path("m.model")})),
               std::runtime_error);
}

TEST_F(CliCommands, InfoWithoutSelectorReturnsUsageCode) {
  EXPECT_EQ(cmd_info(flags_of({})), 2);
}

TEST_F(CliCommands, ObsTraceSummarizesValidFile) {
  {
    std::ofstream out(path("ok.trace.json"));
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
           "{\"name\":\"outer\",\"cat\":\"rn\",\"ph\":\"X\",\"pid\":1,"
           "\"tid\":1,\"ts\":0.0,\"dur\":100.0,"
           "\"args\":{\"id\":1,\"parent\":0}},"
           "{\"name\":\"inner\",\"cat\":\"rn\",\"ph\":\"X\",\"pid\":1,"
           "\"tid\":1,\"ts\":10.0,\"dur\":50.0,"
           "\"args\":{\"id\":2,\"parent\":1}}]}";
  }
  EXPECT_EQ(cmd_obs({"trace", path("ok.trace.json")}), 0);
  EXPECT_EQ(cmd_obs({"trace", path("ok.trace.json"), "5"}), 0);
}

TEST_F(CliCommands, ObsTraceErrorsAreOneLineNonzeroExits) {
  // Missing file, malformed JSON, and a non-integer top_n: each is an
  // operator mistake, reported as rc 1 — never an uncaught exception.
  EXPECT_EQ(cmd_obs({"trace", path("missing.json")}), 1);
  {
    std::ofstream out(path("garbage.json"));
    out << "this is not a trace";
  }
  EXPECT_EQ(cmd_obs({"trace", path("garbage.json")}), 1);
  EXPECT_EQ(cmd_obs({"trace", path("garbage.json"), "soon"}), 1);
}

TEST_F(CliCommands, ObsSummarizeMissingFileReturnsError) {
  EXPECT_EQ(cmd_obs({"summarize", path("missing.jsonl")}), 1);
}

TEST_F(CliCommands, ObsBadUsageReturnsUsageCode) {
  EXPECT_EQ(cmd_obs({}), 2);
  EXPECT_EQ(cmd_obs({"frobnicate"}), 2);
  EXPECT_EQ(cmd_obs({"trace"}), 2);
  EXPECT_EQ(cmd_obs({"diff", "only_one.json"}), 2);
}

TEST_F(CliCommands, ObsDiffGatesOnDirectionAwareRegressions) {
  {
    std::ofstream out(path("base.json"));
    out << "{\"telemetry\":{\"gauges\":{\"bench.wall_s\":10.0,"
           "\"serve.throughput_rps\":100.0}}}";
  }
  {
    std::ofstream out(path("same.json"));
    out << "{\"telemetry\":{\"gauges\":{\"bench.wall_s\":10.0,"
           "\"serve.throughput_rps\":100.0}}}";
  }
  {
    std::ofstream out(path("worse.json"));
    out << "{\"telemetry\":{\"gauges\":{\"bench.wall_s\":30.0,"
           "\"serve.throughput_rps\":100.0}}}";
  }
  // Identical reports pass; a 3x wall-time regression fails the gate; a
  // loose enough threshold lets the same pair pass again.
  EXPECT_EQ(cmd_obs({"diff", path("base.json"), path("same.json")}), 0);
  EXPECT_EQ(cmd_obs({"diff", path("base.json"), path("worse.json")}), 1);
  EXPECT_EQ(cmd_obs({"diff", path("base.json"), path("worse.json"),
                     "--threshold", "500"}),
            0);
  // Improvements never fail: worse -> base is wall-time shrinking.
  EXPECT_EQ(cmd_obs({"diff", path("worse.json"), path("base.json")}), 0);
}

TEST_F(CliCommands, ObsDiffErrorAndUsageExits) {
  {
    std::ofstream out(path("ok.json"));
    out << "{\"x\":1.0}";
  }
  // Operator mistakes: missing file and bad threshold are rc 1.
  EXPECT_EQ(cmd_obs({"diff", path("missing.json"), path("ok.json")}), 1);
  EXPECT_EQ(cmd_obs({"diff", path("ok.json"), path("ok.json"), "--threshold",
                     "soon"}),
            1);
  EXPECT_EQ(cmd_obs({"diff", path("ok.json"), path("ok.json"), "--threshold",
                     "-5"}),
            1);
  // Unknown extra flag is a usage error.
  EXPECT_EQ(cmd_obs({"diff", path("ok.json"), path("ok.json"), "--frob"}), 2);
}

}  // namespace
}  // namespace rn::cli
