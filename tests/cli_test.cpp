#include "flags.h"

#include <gtest/gtest.h>

namespace rn::cli {
namespace {

Flags make_flags(std::vector<const char*> args,
                 const std::vector<std::string>& bools = {}) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()), args.data(), 1, bools);
}

TEST(Flags, ParsesStringIntDouble) {
  const Flags f = make_flags({"--name", "hello", "--count", "42",
                              "--rate", "2.5"});
  EXPECT_EQ(f.get_string("name", ""), "hello");
  EXPECT_EQ(f.get_int("count", 0), 42);
  EXPECT_DOUBLE_EQ(f.get_double("rate", 0.0), 2.5);
}

TEST(Flags, FallbacksWhenAbsent) {
  const Flags f = make_flags({});
  EXPECT_EQ(f.get_string("name", "dflt"), "dflt");
  EXPECT_EQ(f.get_int("count", 7), 7);
  EXPECT_DOUBLE_EQ(f.get_double("rate", 1.5), 1.5);
  EXPECT_FALSE(f.get_bool("verbose"));
}

TEST(Flags, BooleanFlagsTakeNoValue) {
  const Flags f = make_flags({"--bursty", "--out", "x.bin"}, {"bursty"});
  EXPECT_TRUE(f.get_bool("bursty"));
  EXPECT_EQ(f.get_string("out", ""), "x.bin");
}

TEST(Flags, RequireStringThrowsWhenMissing) {
  const Flags f = make_flags({});
  EXPECT_THROW(f.require_string("out"), std::runtime_error);
}

TEST(Flags, MalformedNumberThrows) {
  const Flags f = make_flags({"--count", "banana"});
  EXPECT_THROW(f.get_int("count", 0), std::runtime_error);
}

TEST(Flags, MissingValueThrows) {
  EXPECT_THROW(make_flags({"--out"}), std::runtime_error);
}

TEST(Flags, NonFlagArgumentThrows) {
  EXPECT_THROW(make_flags({"stray"}), std::runtime_error);
}

TEST(Flags, RejectUnusedCatchesTypos) {
  const Flags f = make_flags({"--epoch", "5"});  // should be --epochs
  EXPECT_THROW(f.reject_unused(), std::runtime_error);
}

TEST(Flags, RejectUnusedPassesWhenAllRead) {
  const Flags f = make_flags({"--epochs", "5"});
  EXPECT_EQ(f.get_int("epochs", 0), 5);
  EXPECT_NO_THROW(f.reject_unused());
}

TEST(Flags, SeedParsesLargeValues) {
  const Flags f = make_flags({"--seed", "18446744073709551615"});
  EXPECT_EQ(f.get_seed("seed", 0), 18446744073709551615ull);
}

}  // namespace
}  // namespace rn::cli
