// Tests for the src/obs hierarchical span tracer: automatic nesting via
// thread-local stacks, cross-thread propagation through parallel_for (1 and
// 4 threads, tsan-labeled), the Chrome trace-event exporter re-parsed with
// the strict JSON parser, merge-on-resume, the spill path under sustained
// span volume, and the zero-allocation guarantee of the disabled path.
#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <new>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "par/thread_pool.h"

// Global allocation counter (same pattern as obs_test): every operator new
// in this binary bumps it, so tests can prove a code path never allocates.
namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rn::obs {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "trace_" + name;
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { Tracer::global().reset_for_tests(); }
  void TearDown() override { Tracer::global().reset_for_tests(); }
};

// Records indexed by span id, for parentage checks.
std::map<std::uint64_t, TraceRecord> by_id(
    const std::vector<TraceRecord>& records) {
  std::map<std::uint64_t, TraceRecord> out;
  for (const TraceRecord& r : records) out[r.id] = r;
  return out;
}

TEST_F(TraceTest, SpansNestViaThreadLocalStack) {
  Tracer::global().enable();
  std::uint64_t outer_id = 0;
  std::uint64_t inner_id = 0;
  {
    TraceSpan outer("outer");
    outer_id = outer.id();
    EXPECT_EQ(trace_current_span(), outer_id);
    {
      TraceSpan inner("inner");
      inner_id = inner.id();
      EXPECT_EQ(trace_current_span(), inner_id);
    }
    EXPECT_EQ(trace_current_span(), outer_id);
  }
  EXPECT_EQ(trace_current_span(), 0u);

  const auto records = by_id(Tracer::global().collect());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records.at(outer_id).parent, 0u);
  EXPECT_EQ(records.at(inner_id).parent, outer_id);
  EXPECT_STREQ(records.at(inner_id).name, "inner");
  EXPECT_GE(records.at(outer_id).dur_s, records.at(inner_id).dur_s);
}

TEST_F(TraceTest, EndIsIdempotentAndArgsAreRecorded) {
  Tracer::global().enable();
  TraceSpan span("with_arg");
  span.arg("batch", 41);
  span.arg("batch", 42);  // last call wins
  span.end();
  span.end();  // no-op
  const std::vector<TraceRecord> records = Tracer::global().collect();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_STREQ(records[0].arg_key, "batch");
  EXPECT_EQ(records[0].arg_val, 42);
}

TEST_F(TraceTest, ExplicitParentWinsOverThreadStack) {
  Tracer::global().enable();
  TraceSpan a("a");
  {
    TraceSpan b("b", /*parent=*/12345);
    EXPECT_NE(b.id(), 0u);
  }
  a.end();
  const std::vector<TraceRecord> records = Tracer::global().collect();
  for (const TraceRecord& r : records) {
    if (std::string(r.name) == "b") EXPECT_EQ(r.parent, 12345u);
  }
}

// Worker chunks must nest under the caller's open span with the worker's
// own tid — the cross-thread propagation contract. Runs at both pool
// widths: 1 thread takes the inline path, 4 threads the submit path.
void run_parallel_for_nesting(int threads) {
  par::set_global_threads(threads);
  Tracer::global().reset_for_tests();
  Tracer::global().enable();

  std::uint64_t root_id = 0;
  {
    TraceSpan root("loop_root");
    root_id = root.id();
    par::parallel_for(0, 64, /*grain=*/1, [](std::int64_t lo,
                                             std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        TraceSpan work("work");
        work.arg("i", i);
      }
    });
  }

  const std::vector<TraceRecord> records = Tracer::global().collect();
  const auto index = by_id(records);
  std::size_t chunks = 0;
  std::size_t works = 0;
  std::set<std::uint32_t> tids;
  for (const TraceRecord& r : records) {
    tids.insert(r.tid);
    if (std::string(r.name) == "par.chunk") {
      ++chunks;
      EXPECT_EQ(r.parent, root_id) << "chunk not parented to caller span";
    }
    if (std::string(r.name) == "work") {
      ++works;
      ASSERT_NE(index.find(r.parent), index.end());
      EXPECT_STREQ(index.at(r.parent).name, "par.chunk")
          << "work span must nest under its chunk";
      // The automatic (stack) parent must live on the same thread.
      EXPECT_EQ(index.at(r.parent).tid, r.tid);
    }
  }
  EXPECT_GE(chunks, 1u);
  EXPECT_EQ(works, 64u);
  EXPECT_EQ(Tracer::global().dropped(), 0u);
}

TEST_F(TraceTest, ParallelForPropagatesSpanAtOneThread) {
  run_parallel_for_nesting(1);
}

TEST_F(TraceTest, ParallelForPropagatesSpanAtFourThreads) {
  run_parallel_for_nesting(4);
}

TEST_F(TraceTest, ChromeExportParsesAndCarriesHierarchy) {
  Tracer::global().enable();
  {
    TraceSpan outer("outer");
    TraceSpan inner("inner");
    inner.arg("k", 7);
  }
  const std::string path = temp_path("export.json");
  Tracer::write_chrome_trace(path, Tracer::global().collect());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  JsonValue root;
  std::string err;
  ASSERT_TRUE(parse_json(text, &root, &err)) << err;
  ASSERT_TRUE(root.is_object());
  const JsonValue* unit = root.find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->string, "ms");
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type, JsonValue::Type::kArray);
  ASSERT_EQ(events->array.size(), 2u);

  std::map<double, const JsonValue*> by_span_id;
  for (const JsonValue& ev : events->array) {
    ASSERT_TRUE(ev.is_object());
    EXPECT_EQ(ev.find("ph")->string, "X");
    EXPECT_EQ(ev.find("pid")->number, 1.0);
    ASSERT_NE(ev.find("name"), nullptr);
    ASSERT_NE(ev.find("tid"), nullptr);
    ASSERT_TRUE(ev.find("ts")->is_number());
    ASSERT_TRUE(ev.find("dur")->is_number());
    EXPECT_GE(ev.find("dur")->number, 0.0);
    const JsonValue* args = ev.find("args");
    ASSERT_NE(args, nullptr);
    ASSERT_NE(args->find("id"), nullptr);
    ASSERT_NE(args->find("parent"), nullptr);
    by_span_id[args->find("id")->number] = &ev;
  }
  // The inner span's parent id resolves to the outer event.
  for (const JsonValue& ev : events->array) {
    if (ev.find("name")->string != "inner") continue;
    const double parent = ev.find("args")->find("parent")->number;
    ASSERT_NE(by_span_id.find(parent), by_span_id.end());
    EXPECT_EQ(by_span_id.at(parent)->find("name")->string, "outer");
    EXPECT_EQ(ev.find("args")->find("k")->number, 7.0);
  }
}

TEST_F(TraceTest, MergeExistingAppendsToAPriorExport) {
  const std::string path = temp_path("merge.json");
  Tracer::global().enable();
  { TraceSpan first("first_run"); }
  Tracer::write_chrome_trace(path, Tracer::global().collect());

  { TraceSpan second("second_run"); }
  Tracer::write_chrome_trace(path, Tracer::global().collect(),
                             /*merge_existing=*/true);

  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  JsonValue root;
  std::string err;
  ASSERT_TRUE(parse_json(text, &root, &err)) << err;
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 2u);
  std::set<std::string> names;
  for (const JsonValue& ev : events->array) {
    names.insert(ev.find("name")->string);
  }
  EXPECT_TRUE(names.count("first_run"));
  EXPECT_TRUE(names.count("second_run"));

  // Without the flag the old events are gone (fresh-run truncation).
  { TraceSpan third("third_run"); }
  Tracer::write_chrome_trace(path, Tracer::global().collect());
  std::ifstream in2(path);
  std::string text2((std::istreambuf_iterator<char>(in2)),
                    std::istreambuf_iterator<char>());
  ASSERT_TRUE(parse_json(text2, &root, &err)) << err;
  EXPECT_EQ(root.find("traceEvents")->array.size(), 1u);
}

TEST_F(TraceTest, DisabledPathDoesNotAllocateOrRecord) {
  ASSERT_FALSE(Tracer::global().enabled());
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    TraceSpan span("never.recorded");
    span.arg("i", i);
    (void)trace_current_span();
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before)
      << "disabled TraceSpan must not allocate";
  // And nothing was written to any ring.
  EXPECT_TRUE(Tracer::global().collect().empty());
  EXPECT_EQ(Tracer::global().dropped(), 0u);
}

TEST_F(TraceTest, SustainedVolumeSpillsWithoutDropping) {
  Tracer::global().enable();
  // Far beyond one ring's capacity: the half-full spill must hand records
  // to the collector so nothing is lost.
  constexpr int kSpans = 100'000;
  for (int i = 0; i < kSpans; ++i) {
    TraceSpan span("hot");
  }
  const std::vector<TraceRecord> records = Tracer::global().collect();
  EXPECT_EQ(records.size(), static_cast<std::size_t>(kSpans));
  EXPECT_EQ(Tracer::global().dropped(), 0u);
  // Ids are unique process-wide.
  std::set<std::uint64_t> ids;
  for (const TraceRecord& r : records) ids.insert(r.id);
  EXPECT_EQ(ids.size(), records.size());
}

TEST_F(TraceTest, SummaryJsonParsesAndCountsByName) {
  Tracer::global().enable();
  {
    TraceSpan a("alpha");
    TraceSpan b("beta");
  }
  { TraceSpan a2("alpha"); }
  const std::vector<TraceRecord> records = Tracer::global().collect();
  const std::string json = trace_summary_json(records, /*dropped=*/3);
  JsonValue root;
  std::string err;
  ASSERT_TRUE(parse_json(json, &root, &err)) << err << "\n" << json;
  EXPECT_EQ(root.find("spans")->number, 3.0);
  EXPECT_EQ(root.find("dropped")->number, 3.0);
  const JsonValue* by_name = root.find("by_name");
  ASSERT_NE(by_name, nullptr);
  const JsonValue* alpha = by_name->find("alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(alpha->find("count")->number, 2.0);
  EXPECT_GE(alpha->find("total_s")->number, 0.0);
  EXPECT_GE(alpha->find("self_s")->number, 0.0);
}

TEST_F(TraceTest, SummarizeTraceFileReportsTopSpansAndThrowsOnBadInput) {
  Tracer::global().enable();
  {
    TraceSpan outer("outer");
    TraceSpan inner("inner");
  }
  const std::string path = temp_path("summary.json");
  Tracer::write_chrome_trace(path, Tracer::global().collect());
  const std::string summary = summarize_trace_file(path, /*top_n=*/5);
  EXPECT_NE(summary.find("2 spans"), std::string::npos) << summary;
  EXPECT_NE(summary.find("outer"), std::string::npos);
  EXPECT_NE(summary.find("inner"), std::string::npos);
  EXPECT_NE(summary.find("util"), std::string::npos);

  EXPECT_THROW(summarize_trace_file(temp_path("missing.json")),
               std::runtime_error);
  const std::string bad = temp_path("bad.json");
  {
    std::ofstream out(bad);
    out << "not json at all";
  }
  EXPECT_THROW(summarize_trace_file(bad), std::runtime_error);
  const std::string no_events = temp_path("no_events.json");
  {
    std::ofstream out(no_events);
    out << "{\"displayTimeUnit\":\"ms\"}";
  }
  EXPECT_THROW(summarize_trace_file(no_events), std::runtime_error);
}

// The min-duration filter suppresses quick spans at close time but keeps
// their (necessarily longer) parents, and counts every suppression.
TEST_F(TraceTest, MinDurationFilterDropsShortSpansButKeepsParents) {
  Tracer::global().set_min_duration_s(0.002);
  Tracer::global().enable();
  std::uint64_t parent_id = 0;
  {
    TraceSpan parent("slow_parent");
    parent_id = parent.id();
    for (int i = 0; i < 10; ++i) {
      TraceSpan child("fast_child");  // closes in microseconds
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const std::vector<TraceRecord> records = Tracer::global().collect();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_STREQ(records[0].name, "slow_parent");
  EXPECT_EQ(records[0].id, parent_id);
  EXPECT_EQ(Tracer::global().sampled_out(), 10u);
  EXPECT_EQ(Tracer::global().dropped(), 0u);

  // The suppressed children never disturbed the nesting stack: a sibling
  // opened after them still parents to the enclosing span.
  {
    TraceSpan outer("outer2");
    const std::uint64_t outer_id = outer.id();
    { TraceSpan quick("quick"); }  // suppressed
    {
      TraceSpan sib("sibling");
      EXPECT_EQ(trace_current_span(), sib.id());
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    EXPECT_EQ(trace_current_span(), outer_id);
  }
  const auto again = by_id(Tracer::global().collect());
  bool saw_sibling = false;
  for (const auto& [id, r] : again) {
    if (std::string(r.name) == "sibling") {
      saw_sibling = true;
      ASSERT_NE(again.find(r.parent), again.end());
      EXPECT_STREQ(again.at(r.parent).name, "outer2");
    }
  }
  EXPECT_TRUE(saw_sibling);
}

TEST_F(TraceTest, SamplingSpecKeepsOneInNPerPrefix) {
  Tracer::global().set_sampling_spec("hot=4,warm=2");
  Tracer::global().enable();
  for (int i = 0; i < 8; ++i) {
    TraceSpan span("hot.loop");  // matches "hot" by prefix
  }
  for (int i = 0; i < 4; ++i) {
    TraceSpan span("warm.step");
  }
  { TraceSpan span("cold.unsampled"); }  // no rule: always recorded
  const std::vector<TraceRecord> records = Tracer::global().collect();
  std::size_t hot = 0;
  std::size_t warm = 0;
  std::size_t cold = 0;
  for (const TraceRecord& r : records) {
    const std::string name(r.name);
    hot += name == "hot.loop" ? 1 : 0;
    warm += name == "warm.step" ? 1 : 0;
    cold += name == "cold.unsampled" ? 1 : 0;
  }
  EXPECT_EQ(hot, 2u);   // spans 0 and 4 of 8
  EXPECT_EQ(warm, 2u);  // spans 0 and 2 of 4
  EXPECT_EQ(cold, 1u);
  EXPECT_EQ(Tracer::global().sampled_out(), 8u);  // 6 hot + 2 warm
}

TEST_F(TraceTest, SamplingSpecValidationAndImmutabilityOnceEnabled) {
  EXPECT_THROW(Tracer::global().set_sampling_spec("no_rate"),
               std::runtime_error);
  EXPECT_THROW(Tracer::global().set_sampling_spec("hot=0"),
               std::runtime_error);
  EXPECT_THROW(Tracer::global().set_sampling_spec("=4"), std::runtime_error);
  EXPECT_THROW(Tracer::global().set_min_duration_s(-1.0), std::runtime_error);
  Tracer::global().enable();
  EXPECT_THROW(Tracer::global().set_sampling_spec("hot=4"),
               std::runtime_error);
  // reset_for_tests clears sampling state for the next test.
  Tracer::global().reset_for_tests();
  EXPECT_EQ(Tracer::global().sampled_out(), 0u);
  EXPECT_EQ(Tracer::global().min_duration_s(), 0.0);
}

TEST_F(TraceTest, ExportCarriesSampledOutAndSummarizeReportsIt) {
  Tracer::global().set_sampling_spec("chatty=2");
  Tracer::global().enable();
  { TraceSpan keep("kept_span"); }
  for (int i = 0; i < 4; ++i) {
    TraceSpan span("chatty.op");
  }
  const std::string path = temp_path("sampled.json");
  Tracer::write_chrome_trace(path, Tracer::global().collect(),
                             /*merge_existing=*/false,
                             Tracer::global().dropped(),
                             Tracer::global().sampled_out());
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  JsonValue root;
  std::string err;
  ASSERT_TRUE(parse_json(text, &root, &err)) << err;
  ASSERT_NE(root.find("rnSampledOut"), nullptr);
  EXPECT_EQ(root.find("rnSampledOut")->number, 2.0);
  ASSERT_NE(root.find("rnDropped"), nullptr);
  EXPECT_EQ(root.find("rnDropped")->number, 0.0);

  // The CLI rollup surfaces the loss so a filtered trace stays honest.
  const std::string summary = summarize_trace_file(path);
  EXPECT_NE(summary.find("sampled out"), std::string::npos) << summary;
  EXPECT_NE(summary.find("3 spans"), std::string::npos) << summary;

  // Merging a second export accumulates the recording losses.
  Tracer::global().reset_for_tests();
  Tracer::global().enable();
  { TraceSpan more("second_run"); }
  Tracer::write_chrome_trace(path, Tracer::global().collect(),
                             /*merge_existing=*/true, /*dropped=*/1,
                             /*sampled_out=*/5);
  std::ifstream in2(path);
  std::string text2((std::istreambuf_iterator<char>(in2)),
                    std::istreambuf_iterator<char>());
  ASSERT_TRUE(parse_json(text2, &root, &err)) << err;
  EXPECT_EQ(root.find("rnSampledOut")->number, 7.0);
  EXPECT_EQ(root.find("rnDropped")->number, 1.0);
}

TEST_F(TraceTest, SummaryJsonCarriesSampledOut) {
  Tracer::global().enable();
  { TraceSpan span("one"); }
  const std::string json = trace_summary_json(Tracer::global().collect(),
                                              /*dropped=*/2,
                                              /*sampled_out=*/9);
  JsonValue root;
  std::string err;
  ASSERT_TRUE(parse_json(json, &root, &err)) << err << "\n" << json;
  EXPECT_EQ(root.find("dropped")->number, 2.0);
  EXPECT_EQ(root.find("sampled_out")->number, 9.0);
}

TEST_F(TraceTest, ExportAndCloseWritesOutPathAndDisables) {
  const std::string path = temp_path("auto.json");
  Tracer::global().set_out_path(path);
  EXPECT_TRUE(Tracer::global().enabled());
  { TraceSpan span("auto_span"); }
  Tracer::global().export_and_close();
  EXPECT_FALSE(Tracer::global().enabled());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("auto_span"), std::string::npos);
}

}  // namespace
}  // namespace rn::obs
