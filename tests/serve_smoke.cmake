# Serving smoke test (ctest -R serve_smoke): builds a tiny scenario + model
# with the real routenet CLI, then drives `routenet serve` end to end — once
# under normal load (every request served, serve.run + serve.* telemetry
# emitted) and once with a one-slot queue and a long deadline so backpressure
# deterministically rejects (counted, no crash). Invoked with
# -DRN_CLI=<binary> -DWORK_DIR=<dir>.

if(NOT DEFINED RN_CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DRN_CLI=... -DWORK_DIR=... -P serve_smoke.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_step)
  execute_process(COMMAND ${ARGN}
                  WORKING_DIRECTORY "${WORK_DIR}"
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "step failed (${rc}): ${ARGN}\n${out}\n${err}")
  endif()
  set(step_out "${out}" PARENT_SCOPE)
endfunction()

run_step("${RN_CLI}" make-topology --kind ring --nodes 6 --out net.topo)
run_step("${RN_CLI}" make-routing --topology net.topo --k 2 --seed 3
         --out net.routes)
run_step("${RN_CLI}" make-traffic --topology net.topo --routing net.routes
         --kind gravity --util 0.6 --out net.traffic)
run_step("${RN_CLI}" gen-dataset --topology net.topo --count 4
         --pkts-per-flow 30 --seed 5 --out mini.ds)
run_step("${RN_CLI}" train --dataset mini.ds --epochs 2 --batch 2 --dim 8
         --iterations 2 --out mini.model)

# Normal load: everything is served, the run event and serve.* counters land
# in the telemetry stream, and `obs summarize` accepts every line. The
# periodic stats reporter (--stats-every-s) must contribute at least one
# obs.snapshot carrying the sliding-window serve latency quantiles (stop()
# emits a final snapshot even when the run beats the first period).
run_step("${RN_CLI}" serve --model mini.model --topology net.topo
         --routing net.routes --traffic net.traffic --requests 24
         --clients 4 --batch-max 8 --batch-deadline-ms 2 --threads 2
         --stats-every-s 0.2 --metrics-out serve.jsonl)
run_step("${RN_CLI}" obs summarize serve.jsonl)

file(READ "${WORK_DIR}/serve.jsonl" serve_log)
foreach(needle "\"kind\":\"serve.run\"" "\"served\":24" "\"rejected\":0"
        "serve.batches_total" "serve.requests_total"
        "\"kind\":\"obs.snapshot\"" "serve.latency_s.window_p99"
        "serve.latency_s.window_count" "trace.sampled_out")
  string(FIND "${serve_log}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "serve.jsonl is missing ${needle}")
  endif()
endforeach()

# Backpressure: --force-overflow pauses the workers while submitting, so a
# one-slot queue accepts exactly 1 of 12 requests and rejects the other 11
# — an exact count, independent of scheduling, deadlines, or machine load.
run_step("${RN_CLI}" serve --model mini.model --topology net.topo
         --routing net.routes --traffic net.traffic --requests 12
         --queue-cap 1 --force-overflow --threads 1
         --metrics-out reject.jsonl)
run_step("${RN_CLI}" obs summarize reject.jsonl)

file(READ "${WORK_DIR}/reject.jsonl" reject_log)
foreach(needle "\"kind\":\"serve.run\"" "\"served\":1" "\"rejected\":11")
  string(FIND "${reject_log}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "reject.jsonl is missing ${needle} — the forced \
overflow must reject exactly 11 of 12 requests:\n${reject_log}")
  endif()
endforeach()

message(STATUS "serve smoke OK")
