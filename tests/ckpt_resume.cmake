# Checkpoint/resume end-to-end test (ctest -R ckpt_resume): drives the real
# routenet CLI through a kill-and-resume cycle and proves the resumed model
# is byte-for-byte identical to an uninterrupted reference run — at 1 and 4
# threads — plus the CRC-fallback path when the newest checkpoint is
# corrupted. Invoked with -DRN_CLI=<binary> -DWORK_DIR=<dir>.

if(NOT DEFINED RN_CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DRN_CLI=... -DWORK_DIR=... -P ckpt_resume.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_step)
  execute_process(COMMAND ${ARGN}
                  WORKING_DIRECTORY "${WORK_DIR}"
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "step failed (${rc}): ${ARGN}\n${out}\n${err}")
  endif()
endfunction()

function(expect_identical a b what)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                          "${WORK_DIR}/${a}" "${WORK_DIR}/${b}"
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${what}: ${a} and ${b} differ")
  endif()
endfunction()

run_step("${RN_CLI}" make-topology --kind ring --nodes 6 --out net.topo)
run_step("${RN_CLI}" gen-dataset --topology net.topo --count 6
         --pkts-per-flow 30 --seed 5 --out mini.ds)

# 6 samples / batch 2 = 3 batches per epoch; 3 epochs = 9 batches total.
# The crash run checkpoints at batches 2 and 4, then dies cold at batch 5
# (--max-batches simulates a kill: no checkpoint, no model written).
foreach(t 1 4)
  run_step("${RN_CLI}" train --dataset mini.ds --epochs 3 --batch 2 --dim 8
           --iterations 2 --threads ${t} --out ref${t}.model)

  run_step("${RN_CLI}" train --dataset mini.ds --epochs 3 --batch 2 --dim 8
           --iterations 2 --threads ${t} --out crash${t}.model
           --ckpt-state run${t}.ckpt --ckpt-every 2 --max-batches 5)
  if(EXISTS "${WORK_DIR}/crash${t}.model")
    message(FATAL_ERROR "interrupted run published crash${t}.model")
  endif()
  if(NOT EXISTS "${WORK_DIR}/run${t}.ckpt.000002")
    message(FATAL_ERROR "crash run left no run${t}.ckpt.000002 checkpoint")
  endif()

  run_step("${RN_CLI}" train --dataset mini.ds --epochs 3 --batch 2 --dim 8
           --iterations 2 --threads ${t} --out resumed${t}.model
           --ckpt-state run${t}.ckpt --resume run${t}.ckpt
           --metrics-out resume${t}.jsonl)
  expect_identical(ref${t}.model resumed${t}.model
                   "kill-and-resume at ${t} thread(s)")

  # The resume run must report its telemetry: a ckpt.resume event for the
  # restart and ckpt.save events for its own rotation.
  file(READ "${WORK_DIR}/resume${t}.jsonl" resume_log)
  foreach(needle "\"kind\":\"ckpt.resume\"" "\"kind\":\"ckpt.save\"")
    string(FIND "${resume_log}" "${needle}" found)
    if(found EQUAL -1)
      message(FATAL_ERROR "resume${t}.jsonl is missing ${needle}")
    endif()
  endforeach()
  run_step("${RN_CLI}" obs summarize resume${t}.jsonl)
endforeach()

# Thread invariance: the kernels are bitwise deterministic at any pool
# width, so the two reference models must match byte for byte.
expect_identical(ref1.model ref4.model "thread invariance")

# CRC fallback: corrupt the newest checkpoint of a fresh crash run and
# resume — the loader must skip it, restart from the older file, and still
# land on the reference bit pattern.
run_step("${RN_CLI}" train --dataset mini.ds --epochs 3 --batch 2 --dim 8
         --iterations 2 --threads 1 --out crash_c.model
         --ckpt-state run_c.ckpt --ckpt-every 2 --max-batches 5)
file(APPEND "${WORK_DIR}/run_c.ckpt.000002" "torn-write garbage")
run_step("${RN_CLI}" train --dataset mini.ds --epochs 3 --batch 2 --dim 8
         --iterations 2 --threads 1 --out resumed_c.model
         --ckpt-state run_c.ckpt --resume run_c.ckpt
         --metrics-out resume_c.jsonl)
expect_identical(ref1.model resumed_c.model "resume after corrupt newest")
file(READ "${WORK_DIR}/resume_c.jsonl" fallback_log)
string(FIND "${fallback_log}" "\"fallbacks\":1" found)
if(found EQUAL -1)
  message(FATAL_ERROR "resume_c.jsonl did not record the CRC fallback")
endif()

message(STATUS "ckpt resume OK")
