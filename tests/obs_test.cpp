// Tests for the src/obs telemetry layer: histogram bucket geometry,
// concurrent counter/histogram updates, JSONL round-trips through the
// parser, the summarize rollup, and the zero-allocation guarantee of the
// disabled-sink hot path.
#include "obs/event.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/summarize.h"
#include "obs/timer.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <new>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

// Global allocation counter: every operator new in this test binary bumps
// it, so tests can assert that a code path performs no heap allocation.
namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rn::obs {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "obs_" + name;
}

TEST(Histogram, BucketBoundariesAreHalfOpenAndMonotonic) {
  double prev_upper = Histogram::bucket_upper(0);
  EXPECT_EQ(Histogram::bucket_lower(0), 0.0);
  EXPECT_EQ(prev_upper, Histogram::kMinBound);
  for (int i = 1; i < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(Histogram::bucket_lower(i), prev_upper) << "bucket " << i;
    EXPECT_GT(Histogram::bucket_upper(i), Histogram::bucket_lower(i));
    prev_upper = Histogram::bucket_upper(i);
  }
  EXPECT_TRUE(std::isinf(Histogram::bucket_upper(Histogram::kNumBuckets - 1)));
}

TEST(Histogram, ValuesLandInTheirBucket) {
  // A boundary value belongs to the bucket it opens (half-open ranges).
  for (int i = 1; i < Histogram::kNumBuckets - 1; ++i) {
    const double lo = Histogram::bucket_lower(i);
    EXPECT_EQ(Histogram::bucket_index(lo), i) << "lower edge of bucket " << i;
    const double mid = lo * 1.5;
    if (mid < Histogram::bucket_upper(i)) {
      EXPECT_EQ(Histogram::bucket_index(mid), i) << "interior of bucket " << i;
    }
  }
  EXPECT_EQ(Histogram::bucket_index(0.0), 0);
  EXPECT_EQ(Histogram::bucket_index(-1.0), 0);
  EXPECT_EQ(Histogram::bucket_index(1e-12), 0);
  EXPECT_EQ(Histogram::bucket_index(1e9), Histogram::kNumBuckets - 1);
}

TEST(Histogram, CountsSumAndQuantilesTrackRecords) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(1e-3 * i);  // 1ms .. 100ms
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.sum(), 5.050, 1e-9);
  EXPECT_NEAR(h.mean(), 0.0505, 1e-9);
  EXPECT_EQ(h.max(), 0.1);
  // Log-bucket interpolation is coarse; one bucket spans ~10^0.2 ≈ 1.58x,
  // so quantile estimates are within that factor of the truth.
  EXPECT_GT(h.quantile(0.5), 0.050 / 1.6);
  EXPECT_LT(h.quantile(0.5), 0.050 * 1.6);
  EXPECT_GE(h.quantile(1.0), h.quantile(0.5));
  EXPECT_LE(h.quantile(1.0), h.max() + 1e-12);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(Metrics, ConcurrentCounterAndHistogramUpdatesAreExact) {
  Counter c;
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add(1);
        h.record(1e-3);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_NEAR(h.sum(), kThreads * kPerThread * 1e-3, 1e-6);
}

TEST(Metrics, GaugeSetMaxKeepsLargest) {
  Gauge g;
  g.set_max(3.0);
  g.set_max(1.0);
  EXPECT_EQ(g.value(), 3.0);
  g.set(0.5);
  EXPECT_EQ(g.value(), 0.5);
}

TEST(Metrics, RegistryResetPreservesMetricAddresses) {
  Registry& reg = Registry::global();
  Counter& c = reg.counter("obs_test.reset_counter");
  c.add(7);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&reg.counter("obs_test.reset_counter"), &c);
}

TEST(Metrics, SnapshotJsonParses) {
  Registry& reg = Registry::global();
  reg.counter("obs_test.snap_counter").add(3);
  reg.histogram("obs_test.snap_hist").record(0.25);
  const std::string json = reg.snapshot().to_json();
  JsonValue root;
  std::string err;
  ASSERT_TRUE(parse_json(json, &root, &err)) << err << "\n" << json;
  const JsonValue* counters = root.find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* c = counters->find("obs_test.snap_counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->number, 3.0);
  const JsonValue* hists = root.find("histograms");
  ASSERT_NE(hists, nullptr);
  const JsonValue* h = hists->find("obs_test.snap_hist");
  ASSERT_NE(h, nullptr);
  ASSERT_NE(h->find("p95"), nullptr);
}

TEST(Event, JsonlRoundTripsThroughParser) {
  Event ev("test.kind");
  ev.f("loss", 0.03125)
      .f("epoch", 42)
      .f("label", "quotes \" and \\ and\nnewline")
      .f("tiny", 1.25e-9);
  const std::string line = ev.jsonl(1234.5);
  JsonValue root;
  std::string err;
  ASSERT_TRUE(parse_json(line, &root, &err)) << err << "\n" << line;
  EXPECT_EQ(root.find("ts")->number, 1234.5);
  EXPECT_EQ(root.find("kind")->string, "test.kind");
  const JsonValue* fields = root.find("fields");
  ASSERT_NE(fields, nullptr);
  EXPECT_EQ(fields->find("loss")->number, 0.03125);
  EXPECT_EQ(fields->find("epoch")->number, 42.0);
  EXPECT_EQ(fields->find("label")->string, "quotes \" and \\ and\nnewline");
  EXPECT_NEAR(fields->find("tiny")->number, 1.25e-9, 1e-21);
}

TEST(Event, ConsoleLineIsHumanReadable) {
  Event ev("trainer.epoch");
  ev.f("epoch", 3).f("loss", 0.5);
  EXPECT_EQ(ev.console_line(), "[trainer.epoch] epoch=3 loss=0.5");
}

TEST(Json, RejectsMalformedInput) {
  JsonValue v;
  std::string err;
  EXPECT_FALSE(parse_json("{\"a\":}", &v, &err));
  EXPECT_FALSE(parse_json("{\"a\":1", &v, &err));
  EXPECT_FALSE(parse_json("{\"a\":1} trailing", &v, &err));
  EXPECT_FALSE(parse_json("not json", &v, &err));
  EXPECT_TRUE(parse_json("{\"a\":[1,2,{\"b\":true}],\"c\":null}", &v, &err))
      << err;
}

TEST(EventSink, WritesParseableJsonlFile) {
  const std::string path = temp_path("sink.jsonl");
  EventSink& sink = EventSink::global();
  sink.open(path);
  ASSERT_TRUE(sink.enabled());
  {
    Event ev("test.write");
    ev.f("x", 1.5);
    sink.emit(ev);
  }
  emit_registry_snapshot();
  sink.close();
  EXPECT_FALSE(sink.enabled());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    JsonValue root;
    std::string err;
    EXPECT_TRUE(parse_json(line, &root, &err)) << err << "\n" << line;
    ++lines;
  }
  EXPECT_EQ(lines, 2u);  // the event + the snapshot
}

TEST(EventSink, AppendModeKeepsExistingEvents) {
  const std::string path = temp_path("append.jsonl");
  EventSink& sink = EventSink::global();
  sink.open(path);
  {
    Event ev("run.first");
    ev.f("x", 1);
    sink.emit(ev);
  }
  sink.close();

  // Default reopen truncates; append mode (the --resume path) must not.
  sink.open(path, /*append=*/true);
  {
    Event ev("run.second");
    ev.f("x", 2);
    sink.emit(ev);
  }
  sink.close();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string all, line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    all += line;
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(all.find("run.first"), std::string::npos);
  EXPECT_NE(all.find("run.second"), std::string::npos);

  // And the default mode really truncates (regression guard: a fresh run
  // starting over must not inherit a stale log).
  sink.open(path);
  sink.close();
  std::ifstream in2(path);
  std::size_t lines2 = 0;
  while (std::getline(in2, line)) ++lines2;
  EXPECT_EQ(lines2, 0u);
}

TEST(EventSink, DisabledHotPathDoesNotAllocate) {
  EventSink& sink = EventSink::global();
  sink.close();
  ASSERT_FALSE(sink.enabled());
  // Pre-resolve registry references (lookup itself may allocate).
  Counter& c = Registry::global().counter("obs_test.noop_counter");
  Histogram& h = Registry::global().histogram("obs_test.noop_hist");

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    // The guarded-emit pattern every hot path uses: when the sink is
    // disabled no Event is built, and metric updates are lock-free.
    if (sink.enabled()) {
      Event ev("never.built");
      sink.emit(ev);
    }
    c.add(1);
    h.record(1e-4);
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);
}

TEST(ScopedTimer, RecordsPositiveElapsedOnce) {
  Histogram h;
  {
    ScopedTimer timer(h);
    volatile double sink_v = 0.0;
    for (int i = 0; i < 1000; ++i) sink_v = sink_v + i;
    const double first = timer.stop();
    EXPECT_GT(first, 0.0);
    EXPECT_EQ(timer.stop(), first);  // idempotent
  }
  EXPECT_EQ(h.count(), 1u);
}

TEST(Summarize, RollsUpKindsFieldsAndSnapshot) {
  const std::string path = temp_path("summary.jsonl");
  {
    std::ofstream out(path);
    out << "{\"ts\":1.0,\"kind\":\"trainer.batch\",\"fields\":"
           "{\"forward_s\":0.010,\"loss\":1.0}}\n";
    out << "{\"ts\":2.0,\"kind\":\"trainer.batch\",\"fields\":"
           "{\"forward_s\":0.030,\"loss\":0.5}}\n";
    out << "{\"ts\":3.0,\"kind\":\"metrics.snapshot\",\"fields\":"
           "{\"sim.events_total\":123}}\n";
  }
  const std::string summary = summarize_jsonl_file(path);
  EXPECT_NE(summary.find("3 events"), std::string::npos) << summary;
  EXPECT_NE(summary.find("trainer.batch"), std::string::npos);
  EXPECT_NE(summary.find("forward_s"), std::string::npos);
  EXPECT_NE(summary.find("sim.events_total"), std::string::npos);
  EXPECT_NE(summary.find("123"), std::string::npos);
}

TEST(Summarize, ThrowsOnMalformedLineWithLineNumber) {
  const std::string path = temp_path("bad.jsonl");
  {
    std::ofstream out(path);
    out << "{\"ts\":1.0,\"kind\":\"ok\",\"fields\":{}}\n";
    out << "this is not json\n";
  }
  try {
    summarize_jsonl_file(path);
    FAIL() << "expected malformed-line error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(":2"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(summarize_jsonl_file(temp_path("does_not_exist.jsonl")),
               std::runtime_error);
}

TEST(Summarize, RequiresRecordSchema) {
  const std::string path = temp_path("schema.jsonl");
  {
    std::ofstream out(path);
    out << "{\"kind\":\"missing_ts\",\"fields\":{}}\n";
  }
  EXPECT_THROW(summarize_jsonl_file(path), std::runtime_error);
}

}  // namespace
}  // namespace rn::obs
