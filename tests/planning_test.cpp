#include "planning/whatif.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "queueing/queueing.h"
#include "topology/generators.h"

namespace rn::planning {
namespace {

// The analytic M/G/1 model is a deterministic, fast predictor — ideal for
// exercising the engine's mechanics without training a GNN.
PredictDelaysFn analytic_predictor() {
  return [](const Scenario& sc) {
    const queueing::QueueingPredictor predictor{traffic::TrafficModel{}};
    return predictor.predict(*sc.topology, sc.routing, sc.tm).delay_s;
  };
}

Scenario make_scenario(std::shared_ptr<const topo::Topology> topology,
                       double util, std::uint64_t seed) {
  Rng rng(seed);
  routing::RoutingScheme scheme = routing::shortest_path_routing(*topology);
  traffic::TrafficMatrix tm = traffic::uniform_traffic(
      topology->num_nodes(), 50.0, 150.0, rng);
  traffic::scale_to_max_utilization(tm, *topology, scheme, util);
  return Scenario{std::move(topology), std::move(scheme), std::move(tm)};
}

TEST(ScenarioEdits, CapacityScaleAffectsBothDirections) {
  const topo::Topology base = topo::nsfnet();
  const auto upgraded = with_link_capacity_scaled(base, 0, 2.0);
  const topo::Link& fwd = base.link(0);
  EXPECT_DOUBLE_EQ(upgraded->link(0).capacity_bps, fwd.capacity_bps * 2.0);
  const auto rev = upgraded->find_link(fwd.dst, fwd.src);
  ASSERT_TRUE(rev.has_value());
  EXPECT_DOUBLE_EQ(upgraded->link(*rev).capacity_bps,
                   base.link(*base.find_link(fwd.dst, fwd.src)).capacity_bps *
                       2.0);
  // Other links untouched; link count unchanged.
  EXPECT_EQ(upgraded->num_links(), base.num_links());
}

TEST(ScenarioEdits, FailRemovesBothDirections) {
  const topo::Topology base = topo::nsfnet();
  const auto degraded = with_link_failed(base, 0);
  EXPECT_EQ(degraded->num_links(), base.num_links() - 2);
  EXPECT_TRUE(degraded->is_strongly_connected());
  const topo::Link& gone = base.link(0);
  EXPECT_FALSE(degraded->find_link(gone.src, gone.dst).has_value());
  EXPECT_FALSE(degraded->find_link(gone.dst, gone.src).has_value());
}

TEST(ScenarioEdits, FailThrowsWhenDisconnecting) {
  // A line's middle link is a bridge.
  const topo::Topology line = topo::line(3);
  EXPECT_THROW(with_link_failed(line, 0), std::runtime_error);
}

TEST(ScenarioEdits, FailAndRerouteProducesValidRouting) {
  auto topology = std::make_shared<const topo::Topology>(topo::geant2());
  const Scenario sc = make_scenario(topology, 0.5, 1);
  const Scenario degraded = fail_and_reroute(sc, 0);
  EXPECT_NO_THROW(
      routing::validate_routing(*degraded.topology, degraded.routing));
  // Traffic matrix carried over unchanged.
  EXPECT_DOUBLE_EQ(degraded.tm.rate_by_index(3), sc.tm.rate_by_index(3));
}

TEST(ScenarioEdits, FailAndReroutePreservesUnaffectedPaths) {
  // Pairs whose route avoided the failed cable must keep the same node
  // sequence — only affected pairs are re-routed.
  auto topology = std::make_shared<const topo::Topology>(topo::nsfnet());
  Rng rng(9);
  Scenario sc{topology,
              routing::random_k_shortest_routing(*topology, 3, rng),
              traffic::TrafficMatrix(topology->num_nodes())};
  const topo::LinkId failed = 0;
  const topo::Link& cable = topology->link(failed);
  const Scenario degraded = fail_and_reroute(sc, failed);
  int preserved = 0;
  for (topo::NodeId s = 0; s < topology->num_nodes(); ++s) {
    for (topo::NodeId d = 0; d < topology->num_nodes(); ++d) {
      if (s == d) continue;
      const auto old_nodes =
          routing::path_nodes(*topology, sc.routing.path(s, d), s);
      bool used_cable = false;
      for (std::size_t i = 0; i + 1 < old_nodes.size(); ++i) {
        if ((old_nodes[i] == cable.src && old_nodes[i + 1] == cable.dst) ||
            (old_nodes[i] == cable.dst && old_nodes[i + 1] == cable.src)) {
          used_cable = true;
          break;
        }
      }
      const auto new_nodes = routing::path_nodes(
          *degraded.topology, degraded.routing.path(s, d), s);
      if (!used_cable) {
        EXPECT_EQ(new_nodes, old_nodes) << s << "->" << d;
        ++preserved;
      } else {
        // Re-routed paths must avoid the failed cable.
        for (std::size_t i = 0; i + 1 < new_nodes.size(); ++i) {
          EXPECT_FALSE(
              (new_nodes[i] == cable.src && new_nodes[i + 1] == cable.dst) ||
              (new_nodes[i] == cable.dst && new_nodes[i + 1] == cable.src));
        }
      }
    }
  }
  EXPECT_GT(preserved, 0);
}

TEST(Objectives, MeanAndMax) {
  EXPECT_DOUBLE_EQ(mean_delay({0.1, 0.2, 0.3}), 0.2);
  EXPECT_DOUBLE_EQ(max_delay({0.1, 0.5, 0.3}), 0.5);
  EXPECT_THROW(mean_delay({}), std::runtime_error);
}

TEST(WhatIfEngine, UpgradingHotLinkImprovesAnalyticObjective) {
  auto topology = std::make_shared<const topo::Topology>(topo::nsfnet());
  const Scenario sc = make_scenario(topology, 0.8, 2);
  const WhatIfEngine engine(sc, analytic_predictor());
  EXPECT_GT(engine.baseline_objective(), 0.0);
  const std::vector<UpgradeOption> options = engine.rank_upgrades(5, 2.5);
  ASSERT_EQ(options.size(), 5u);
  // The best option must actually improve the objective, and the list must
  // be sorted by improvement.
  EXPECT_GT(options.front().improvement, 0.0);
  for (std::size_t i = 1; i < options.size(); ++i) {
    EXPECT_GE(options[i - 1].improvement, options[i].improvement);
  }
  // Candidates are drawn from the most utilized links.
  EXPECT_GT(options.front().utilization, 0.3);
}

TEST(WhatIfEngine, FailureRankingIsSortedAndPositive) {
  auto topology = std::make_shared<const topo::Topology>(topo::nsfnet());
  const Scenario sc = make_scenario(topology, 0.6, 3);
  const WhatIfEngine engine(sc, analytic_predictor());
  const std::vector<FailureImpact> impacts = engine.rank_failures(6);
  ASSERT_EQ(impacts.size(), 6u);
  for (std::size_t i = 1; i < impacts.size(); ++i) {
    EXPECT_GE(impacts[i - 1].degradation, impacts[i].degradation);
  }
  // Failing a loaded link and rerouting onto alternatives should hurt.
  EXPECT_GT(impacts.front().degradation, 0.0);
}

TEST(WhatIfEngine, DisconnectingFailureIsFlaggedNotThrown) {
  // star: every leaf link is a bridge, all failures disconnect.
  auto topology = std::make_shared<const topo::Topology>(topo::star(4));
  const Scenario sc = make_scenario(topology, 0.5, 4);
  const WhatIfEngine engine(sc, analytic_predictor());
  const std::vector<FailureImpact> impacts = engine.rank_failures();
  ASSERT_FALSE(impacts.empty());
  for (const FailureImpact& impact : impacts) {
    EXPECT_TRUE(impact.disconnects);
    EXPECT_TRUE(std::isinf(impact.degradation));
  }
}

TEST(WhatIfEngine, ScenarioToSampleShape) {
  auto topology = std::make_shared<const topo::Topology>(topo::ring(4));
  const Scenario sc = make_scenario(topology, 0.5, 5);
  const dataset::Sample sample = scenario_to_sample(sc);
  EXPECT_EQ(sample.num_pairs(), 12);
  EXPECT_EQ(sample.num_valid(), 12);
}

TEST(WhatIfEngine, RejectsNullPredictor) {
  auto topology = std::make_shared<const topo::Topology>(topo::ring(4));
  const Scenario sc = make_scenario(topology, 0.5, 6);
  EXPECT_THROW(WhatIfEngine(sc, nullptr), std::runtime_error);
}

}  // namespace
}  // namespace rn::planning
